(* Benchmark harness: regenerates every figure and table of the paper's
   evaluation (Section 4) on the modeled machines, plus the derived tables
   and ablations indexed in DESIGN.md.

   Usage:
     dune exec bench/main.exe                 (full run, logn <= 18)
     dune exec bench/main.exe -- --fast       (logn <= 12)
     dune exec bench/main.exe -- --max-logn 20
     dune exec bench/main.exe -- --only fig3a,crossover

   Real wall-clock mode (not the machine simulator):
     dune exec bench/main.exe -- --json       (writes BENCH_wallclock.json)
     dune exec bench/main.exe -- --json --min-logn 8 --max-logn 10 --reps 50 *)

open Spiral_rewrite
open Spiral_codegen
open Spiral_sim

let max_logn = ref 18
let min_logn = ref 10
let only : string list ref = ref []
let json_out : string option ref = ref None
let reps_override : int option ref = ref None
let trace_out : string option ref = ref None
let residency_name = ref "auto"

let () =
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
        max_logn := 12;
        parse rest
    | "--max-logn" :: v :: rest ->
        max_logn := int_of_string v;
        parse rest
    | "--min-logn" :: v :: rest ->
        min_logn := int_of_string v;
        parse rest
    | "--only" :: v :: rest ->
        only := String.split_on_char ',' v;
        parse rest
    | "--json" :: rest ->
        if !json_out = None then json_out := Some "BENCH_wallclock.json";
        parse rest
    | "--json-out" :: v :: rest ->
        json_out := Some v;
        parse rest
    | "--reps" :: v :: rest ->
        reps_override := Some (int_of_string v);
        parse rest
    | "--trace" :: v :: rest ->
        trace_out := Some v;
        parse rest
    | "--spin-limit" :: v :: rest ->
        Spiral_smp.Par_exec.default_spin_limit := Some (int_of_string v);
        parse rest
    | "--resident" :: v :: rest ->
        (Spiral_smp.Par_exec.default_residency :=
           match v with
           | "auto" -> `Auto
           | "on" -> `On
           | "off" -> `Off
           | _ -> failwith "expected --resident auto|on|off");
        residency_name := v;
        parse rest
    | "--resident-idle" :: v :: rest ->
        Spiral_smp.Par_exec.default_resident_idle := float_of_string v;
        parse rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv))

let enabled section = !only = [] || List.mem section !only

let sizes () =
  let rec go l = if l > !max_logn then [] else l :: go (l + 1) in
  go 6

(* ------------------------------------------------------------------ *)
(* Plan construction per series, memoized per (machine, size).         *)

let seq_tree_cache : (int, Ruletree.t) Hashtbl.t = Hashtbl.create 32

let best_seq_tree machine n =
  match Hashtbl.find_opt seq_tree_cache n with
  | Some t -> t
  | None ->
      let measure t =
        (Simulate.run machine Seq (Plan.of_formula (Ruletree.expand t)))
          .Simulate.cycles
      in
      let candidates =
        [ Ruletree.mixed_radix n; Ruletree.right_expanded ~radix:8 n;
          Ruletree.balanced n ]
      in
      let best =
        List.fold_left
          (fun (bt, bc) t ->
            let c = measure t in
            if c < bc then (t, c) else (bt, bc))
          (List.hd candidates, measure (List.hd candidates))
          (List.tl candidates)
      in
      Hashtbl.add seq_tree_cache n (fst best);
      fst best

(* Truncated search over valid top splits for the multicore formula:
   power-of-two splits within a factor 8 of sqrt(n). *)
let multicore_plans machine p mu n =
  let q = p * mu in
  let sqrt_n =
    let rec go m = if m * m >= n then m else go (2 * m) in
    go 1
  in
  let rec splits m acc =
    if m > n / q then acc
    else
      let acc =
        if n mod m = 0 && m mod q = 0 && (n / m) mod q = 0
           && m >= sqrt_n / 8 && m <= sqrt_n * 8
        then m :: acc
        else acc
      in
      splits (m * 2) acc
  in
  splits q []
  |> List.filter_map (fun m ->
         let tree =
           Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix (n / m))
         in
         match Derive.multicore_dft ~p ~mu tree with
         | Ok f -> Some (Plan.of_formula f)
         | Error _ -> None)
  |> fun plans ->
  ignore machine;
  plans

let best_result machine backend plans =
  List.fold_left
    (fun acc plan ->
      let r = Simulate.run machine backend plan in
      match acc with
      | Some (best : Simulate.result) when best.cycles <= r.cycles -> acc
      | _ -> Some r)
    None plans

(* ------------------------------------------------------------------ *)
(* Figure 3: five series per machine.                                  *)

type series_point = {
  spiral_pthreads : float;
  spiral_openmp : float;
  spiral_seq : float;
  fftw_pthreads : float;
  fftw_seq : float;
  raw_parallel : float;  (** Spiral pthreads without the max(seq, ·). *)
}

let figure_point machine logn =
  let n = 1 lsl logn in
  let p = machine.Machine.cores in
  let mu = Machine.mu machine in
  let seq_plan = Plan.of_formula (Ruletree.expand (best_seq_tree machine n)) in
  let r_seq = Simulate.run machine Seq seq_plan in
  let mc = multicore_plans machine p mu n in
  let r_pool = best_result machine (Pooled p) mc in
  let r_fj = best_result machine (ForkJoin p) mc in
  let fftw_seq_plan = Spiral_fft.Fftw_like.sequential_plan n in
  let r_fftw_seq = Simulate.run machine Seq fftw_seq_plan in
  let r_fftw_par =
    match Spiral_fft.Fftw_like.parallel_plan ~p n with
    | Some plan ->
        Some
          (Simulate.run machine
             ~schedule:(Spiral_fft.Fftw_like.schedule ~p ~count:(n / 8))
             (ForkJoin p) plan)
    | None -> None
  in
  let pm = function Some (r : Simulate.result) -> r.pseudo_mflops | None -> 0.0 in
  (* the paper plots the best of 1..p threads: parallel series branch off
     the sequential line at the size where threads start to pay *)
  {
    spiral_pthreads = Float.max r_seq.pseudo_mflops (pm r_pool);
    spiral_openmp = Float.max r_seq.pseudo_mflops (pm r_fj);
    spiral_seq = r_seq.pseudo_mflops;
    fftw_pthreads = Float.max r_fftw_seq.pseudo_mflops (pm r_fftw_par);
    fftw_seq = r_fftw_seq.pseudo_mflops;
    raw_parallel = pm r_pool;
  }

let fig_cache : (string * int, series_point) Hashtbl.t = Hashtbl.create 64

let point machine logn =
  let key = (machine.Machine.name, logn) in
  match Hashtbl.find_opt fig_cache key with
  | Some p -> p
  | None ->
      let p = figure_point machine logn in
      Hashtbl.add fig_cache key p;
      p

let run_figure tag machine =
  if enabled tag then begin
    Printf.printf
      "\n# %s: %s — pseudo Mflop/s = 5 N lg N / time (higher is better)\n" tag
      machine.Machine.name;
    Printf.printf "%-6s %16s %14s %11s %14s %9s\n" "logN" "Spiral-pthreads"
      "Spiral-OpenMP" "Spiral-seq" "FFTW-pthreads" "FFTW-seq";
    List.iter
      (fun logn ->
        let pt = point machine logn in
        Printf.printf "%-6d %16.0f %14.0f %11.0f %14.0f %9.0f\n" logn
          pt.spiral_pthreads pt.spiral_openmp pt.spiral_seq pt.fftw_pthreads
          pt.fftw_seq)
      (sizes ());
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* T1: crossover sizes.                                                *)

let run_crossover () =
  if enabled "crossover" then begin
    Printf.printf
      "\n# T1 (Section 4 claims): smallest N with parallel speedup\n";
    Printf.printf
      "%-44s %-14s %-14s\n" "machine" "Spiral" "FFTW-like";
    List.iter
      (fun machine ->
        let first pred =
          List.find_opt (fun logn -> pred (point machine logn)) (sizes ())
        in
        let spiral =
          first (fun pt -> pt.raw_parallel > pt.spiral_seq)
        in
        let fftw = first (fun pt -> pt.fftw_pthreads > pt.fftw_seq) in
        let show = function
          | Some l -> Printf.sprintf "2^%d" l
          | None -> "none"
        in
        Printf.printf "%-44s %-14s %-14s\n" machine.Machine.name (show spiral)
          (show fftw))
      Machine.all;
    Printf.printf
      "(paper: Spiral speeds up from 2^8 on the CMP; FFTW only from 2^13)\n";
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* T2: sequential parity.                                              *)

let run_seq_parity () =
  if enabled "seq_parity" then begin
    Printf.printf
      "\n# T2: Spiral-seq vs FFTW-like-seq (paper: within 10%%), Core Duo model\n";
    Printf.printf "%-6s %12s %12s %8s\n" "logN" "Spiral" "FFTW-like" "ratio";
    List.iter
      (fun logn ->
        let pt = point Machine.core_duo logn in
        Printf.printf "%-6d %12.0f %12.0f %8.2f\n" logn pt.spiral_seq
          pt.fftw_seq
          (pt.spiral_seq /. pt.fftw_seq))
      (sizes ());
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* T3: in-L1 speedup at 2^8 (headline claim).                          *)

let run_l1_speedup () =
  if enabled "l1_speedup" then begin
    Printf.printf
      "\n# T3: parallelization of an L1-resident DFT_{2^8} (Core Duo model)\n";
    let machine = Machine.core_duo in
    let n = 256 in
    let seq = Simulate.run machine Seq (Plan.of_formula (Ruletree.expand (best_seq_tree machine n))) in
    match best_result machine (Pooled 2) (multicore_plans machine 2 (Machine.mu machine) n) with
    | None -> Printf.printf "no multicore plan for 2^8\n"
    | Some par ->
        Printf.printf "sequential: %8.0f cycles (%5.0f pMflop/s)\n"
          seq.Simulate.cycles seq.Simulate.pseudo_mflops;
        Printf.printf "2 threads:  %8.0f cycles (%5.0f pMflop/s)  speedup %.2fx\n"
          par.Simulate.cycles par.Simulate.pseudo_mflops
          (seq.Simulate.cycles /. par.Simulate.cycles);
        Printf.printf
          "(paper: speedup at 2^8, in L1, running at less than 10,000 cycles: %s)\n"
          (if par.Simulate.cycles < 10_000.0 then "reproduced" else "NOT reproduced");
        flush stdout
  end

(* ------------------------------------------------------------------ *)
(* T4: false sharing.                                                  *)

let run_false_sharing () =
  if enabled "false_sharing" then begin
    Printf.printf
      "\n# T4: false-sharing events per transform at N = 2^12 (proof of Definition 1)\n";
    Printf.printf "%-44s %18s %22s\n" "machine" "multicore-CT (14)"
      "block-cyclic schedule";
    List.iter
      (fun machine ->
        let p = machine.Machine.cores and mu = Machine.mu machine in
        match multicore_plans machine p mu 4096 with
        | [] -> ()
        | plan :: _ ->
            let good = Simulate.run machine (Pooled p) plan in
            let bad =
              Simulate.run machine
                ~schedule:(Spiral_smp.Par_exec.Cyclic 1) (Pooled p) plan
            in
            Printf.printf "%-44s %18d %22d\n" machine.Machine.name
              good.Simulate.false_sharing bad.Simulate.false_sharing)
      Machine.all;
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* T5: load balance (static schedule of formula 14).                   *)

let run_load_balance () =
  if enabled "load_balance" then begin
    Printf.printf
      "\n# T5: per-processor flop counts of the multicore Cooley-Tukey formula\n";
    Printf.printf "%-8s %-4s %-40s %10s\n" "N" "p" "per-core flops" "imbalance";
    List.iter
      (fun (logn, p, mu) ->
        let n = 1 lsl logn in
        let half =
          let rec go m = if m * m >= n then m else go (2 * m) in
          go (p * mu)
        in
        let tree =
          Ruletree.Ct (Ruletree.mixed_radix half, Ruletree.mixed_radix (n / half))
        in
        match Derive.multicore_dft ~p ~mu tree with
        | Error _ -> ()
        | Ok f ->
            let w = Spiral_spl.Cost.per_processor ~p f in
            Printf.printf "2^%-6d %-4d %-40s %10.4f\n" logn p
              (String.concat " "
                 (Array.to_list (Array.map string_of_int w)))
              (Spiral_spl.Cost.imbalance ~p f))
      [ (8, 2, 4); (10, 2, 4); (12, 4, 4); (14, 4, 4); (16, 4, 4) ];
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* A1: synchronization ablation — pooled spin barrier vs fork-join.    *)

let run_ablation_sync () =
  if enabled "ablation_sync" then begin
    Printf.printf
      "\n# A1 (ablation): thread pool + spin barrier vs per-call thread start\n";
    Printf.printf "%-6s %18s %18s %10s\n" "logN" "pooled (cycles)"
      "fork-join (cycles)" "overhead";
    let machine = Machine.core_duo in
    List.iter
      (fun logn ->
        let n = 1 lsl logn in
        match multicore_plans machine 2 4 n with
        | [] -> ()
        | plan :: _ ->
            let pool = Simulate.run machine (Pooled 2) plan in
            let fj = Simulate.run machine (ForkJoin 2) plan in
            Printf.printf "%-6d %18.0f %18.0f %9.1fx\n" logn
              pool.Simulate.cycles fj.Simulate.cycles
              (fj.Simulate.cycles /. pool.Simulate.cycles))
      (List.filter (fun l -> l >= 8) (sizes ()));
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* A2: µ-aware derivation ablation.                                    *)

let run_ablation_mu () =
  if enabled "ablation_mu" then begin
    Printf.printf
      "\n# A2 (ablation): cache-line-aware rules (µ = 4) vs µ-ignorant (µ = 1)\n";
    Printf.printf "%-8s %22s %22s\n" "N" "µ=4: false sharing"
      "µ=1: false sharing";
    let machine = Machine.core_duo in
    List.iter
      (fun n ->
        let derive mu =
          let q = 2 * mu in
          let m =
            List.find_opt
              (fun m -> m mod q = 0 && (n / m) mod q = 0)
              (Spiral_util.Int_util.divisors n)
          in
          match m with
          | None -> None
          | Some m -> (
              let tree =
                Ruletree.Ct
                  (Ruletree.mixed_radix m, Ruletree.mixed_radix (n / m))
              in
              match Derive.multicore_dft ~p:2 ~mu tree with
              | Ok f ->
                  Some
                    (Simulate.run machine (Pooled 2) (Plan.of_formula f))
                      .Simulate.false_sharing
              | Error _ -> None)
        in
        let show = function Some v -> string_of_int v | None -> "n/a" in
        Printf.printf "%-8d %22s %22s\n" n (show (derive 4)) (show (derive 1)))
      [ 196; 484; 900; 4096; 9216 ];
    Printf.printf
      "(µ-ignorant derivations split mid-line; the µ-aware formula exists \
       only when (pµ)² | N — the paper's condition)\n";
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* T6: multicore Cooley-Tukey (14) vs the traditional six-step (3).     *)

let run_sixstep () =
  if enabled "sixstep" then begin
    Printf.printf
      "\n# T6: formula (14) vs the traditional six-step algorithm (Core Duo, p=2)\n";
    Printf.printf "%-6s %16s %16s %18s\n" "logN" "multicore (14)"
      "six-step merged" "six-step explicit";
    let machine = Machine.core_duo in
    List.iter
      (fun logn ->
        if logn mod 2 = 0 then begin
          let n = 1 lsl logn in
          let half = 1 lsl (logn / 2) in
          match
            ( multicore_plans machine 2 4 n,
              Derive.six_step_dft ~p:2 ~mu:4 ~m:half ~n:half )
          with
          | mc :: _, Ok ss ->
              let r14 = Simulate.run machine (Pooled 2) mc in
              let rm = Simulate.run machine (Pooled 2) (Plan.of_formula ss) in
              let re =
                Simulate.run machine (Pooled 2)
                  (Plan.of_formula ~explicit_data:true ss)
              in
              Printf.printf "%-6d %16.0f %16.0f %18.0f   pMflop/s\n" logn
                r14.Simulate.pseudo_mflops rm.Simulate.pseudo_mflops
                re.Simulate.pseudo_mflops
          | _ -> ()
        end)
      (List.filter (fun l -> l >= 8) (sizes ()));
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* A3: loop-merging ablation — Spiral's Sigma-SPL merging [11] vs
   explicit permutation/diagonal passes.                                *)

let run_ablation_merge () =
  if enabled "ablation_merge" then begin
    Printf.printf
      "\n# A3 (ablation): loop merging vs explicit data passes (six-step, Core Duo)\n";
    Printf.printf "%-6s %8s %8s %18s %18s %8s\n" "logN" "passes" "passes"
      "merged (cycles)" "explicit (cycles)" "gain";
    let machine = Machine.core_duo in
    List.iter
      (fun logn ->
        let n = 1 lsl logn in
        let half = 1 lsl (logn / 2) in
        match Derive.six_step_dft ~p:2 ~mu:4 ~m:half ~n:(n / half) with
        | Error _ -> ()
        | Ok f ->
            let merged = Plan.of_formula f in
            let explicit = Plan.of_formula ~explicit_data:true f in
            let rm = Simulate.run machine (Pooled 2) merged in
            let re = Simulate.run machine (Pooled 2) explicit in
            Printf.printf "%-6d %8d %8d %18.0f %18.0f %7.2fx\n" logn
              (Array.length merged.Plan.passes)
              (Array.length explicit.Plan.passes)
              rm.Simulate.cycles re.Simulate.cycles
              (re.Simulate.cycles /. rm.Simulate.cycles))
      (List.filter (fun l -> l >= 8 && l mod 2 = 0) (sizes ()));
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* B2: numerical accuracy of generated plans vs the naive definition.   *)

let run_accuracy () =
  if enabled "accuracy" then begin
    Printf.printf
      "\n# B2: numerical accuracy (relative L-inf error vs the O(n^2) definition)\n";
    Printf.printf "%-6s %14s %14s\n" "logN" "generated" "bluestein(n-1)";
    List.iter
      (fun logn ->
        if logn <= 12 then begin
          let n = 1 lsl logn in
          let open Spiral_util in
          let x = Cvec.random ~seed:logn n in
          let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)) in
          let y = Cvec.create n in
          Plan.execute plan x y;
          let want = Naive_dft.dft x in
          let scale = Cvec.l2_norm want in
          let gen_err = Cvec.max_abs_diff y want /. scale in
          (* an awkward odd size via the chirp transform *)
          let nb = n - 1 in
          let xb = Cvec.random ~seed:(logn + 50) nb in
          let b = Spiral_fft.Bluestein.plan nb in
          let yb = Cvec.create nb in
          Spiral_fft.Bluestein.execute_into b ~src:xb ~dst:yb;
          Spiral_fft.Bluestein.destroy b;
          let wantb = Naive_dft.dft xb in
          let berr = Cvec.max_abs_diff yb wantb /. Cvec.l2_norm wantb in
          Printf.printf "%-6d %14.2e %14.2e\n" logn gen_err berr
        end)
      (sizes ());
    flush stdout
  end

(* ------------------------------------------------------------------ *)
(* B1: host wall-clock benchmark of sequential plans (bechamel).        *)

let run_host_seq () =
  if enabled "host_seq" then begin
    Printf.printf
      "\n# B1: host wall-clock, sequential generated plans (this machine, 1 core)\n";
    let open Bechamel in
    let tests =
      List.filter_map
        (fun logn ->
          if logn > 14 then None
          else
            let n = 1 lsl logn in
            let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)) in
            let x = Spiral_util.Cvec.random n in
            let y = Spiral_util.Cvec.create n in
            Some
              (Test.make
                 ~name:(Printf.sprintf "dft 2^%d" logn)
                 (Staged.stage (fun () -> Plan.execute plan x y))))
        (sizes ())
    in
    let test = Test.make_grouped ~name:"host-seq" ~fmt:"%s %s" tests in
    let benchmark () =
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg =
        Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
      in
      let raw = Benchmark.all cfg instances test in
      List.map (fun i -> Analyze.all ols i raw) instances
    in
    match benchmark () with
    | [ results ] ->
        Printf.printf "%-14s %14s %14s\n" "size" "ns/transform" "pseudo-Mflop/s";
        Hashtbl.iter
          (fun name ols ->
            match Analyze.OLS.estimates ols with
            | Some [ ns ] ->
                (* recover n from the name "host-seq dft 2^k" *)
                let logn =
                  try Scanf.sscanf name "host-seq dft 2^%d" (fun k -> k)
                  with _ -> 0
                in
                let n = float_of_int (1 lsl logn) in
                let pmf = 5.0 *. n *. (log n /. log 2.0) /. ns *. 1000.0 in
                Printf.printf "%-14s %14.0f %14.0f\n" name ns pmf
            | _ -> ())
          results
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* W: real wall-clock benchmark (--json).  Unlike the simulator sections
   above, this measures this machine, this process: Unix.gettimeofday
   around repeated transforms.  Series per size:
     - seq_baseline   pre-optimization hot path (legacy codelets with
                      per-call scratch, closure addressing, no fusion)
     - seq            current sequential executor
     - sixstep_explicit / sixstep_fused   permutation-pass fusion
                      ablation on the explicit six-step plan (even logN)
     - vec / vec_boundary   short-vector lowering: the scalar formula
                      rewritten to vec(ν) and executed in split re/im
                      (planar) layout — resident, and including the
                      interleaved<->planar transposes Engine pays
     - par1 / par2 / par4   worker sweep: prepared pooled executor on an
                      autotuned multicore plan for p workers
     - par2_batch     execute_many over 8 transforms in one parallel region
     - par2_noelide   barrier-elision ablation, plus elisions per transform
   Each size also records which worker counts beat seq ("beats_seq") and
   the file ends with the measured "crossover_logn" per worker count.  *)

let wallclock_us ?(warmup_frac = 10) ?(best_of = 3) reps call =
  for _ = 1 to max 3 (reps / warmup_frac) do
    call ()
  done;
  (* min over a few timed loops: scheduler noise only ever inflates a
     wall-clock measurement, so the minimum is the least-biased estimate *)
  let best = ref infinity in
  for _ = 1 to best_of do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      call ()
    done;
    let t = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6 in
    if t < !best then best := t
  done;
  !best

let pmflops n us = 5.0 *. n *. (log n /. log 2.0) /. us

let reps_for logn =
  match !reps_override with
  | Some r -> max 1 r
  | None -> max 20 (1 lsl max 0 (21 - logn))

let worker_counts = [ 1; 2; 4 ]

(* Autotuned multicore plan per (n, p): power-of-two top splits within a
   factor 4 of sqrt(n), µ in {4, 2}; a quick measured sweep over the
   candidates (prepared executor, a handful of reps) picks the fastest —
   the paper's search step, collapsed to the wall clock of this machine. *)
let mc_candidates p n =
  (* the rewrite system needs p >= 2; par1 runs the p=2 plan on one worker *)
  let p = max p 2 in
  let sqrt_n =
    let rec go m = if m * m >= n then m else go (2 * m) in
    go 1
  in
  List.concat_map
    (fun mu ->
      let q = p * mu in
      let rec splits m acc =
        if m > n / q then acc
        else
          let acc =
            if n mod m = 0 && m mod q = 0 && (n / m) mod q = 0
               && m >= sqrt_n / 4 && m <= sqrt_n * 4
            then m :: acc
            else acc
          in
          splits (m * 2) acc
      in
      splits q []
      |> List.concat_map (fun m ->
             let shapes k =
               [ Ruletree.mixed_radix k; Ruletree.right_expanded ~radix:8 k ]
             in
             List.concat_map
               (fun a ->
                 List.filter_map
                   (fun b ->
                     match Derive.multicore_dft ~p ~mu (Ruletree.Ct (a, b)) with
                     | Ok f -> Some (Plan.of_formula f)
                     | Error _ -> None)
                   (shapes (n / m)))
               (shapes m)))
    [ 4; 2 ]

let mc_tuned_cache : (int * int, Plan.t option) Hashtbl.t = Hashtbl.create 32

(* Two-stage search, as in the paper: a coarse timing pass shortlists the
   3 fastest candidates, a careful pass (longer loops, more rounds) picks
   the winner — one noisy 8-rep shootout is not enough to trust a plan
   with a whole benchmark series. *)
let mc_tuned pool p n =
  match Hashtbl.find_opt mc_tuned_cache (n, p) with
  | Some r -> r
  | None ->
      let open Spiral_util in
      let x = Cvec.random ~seed:(n + p) n and y = Cvec.create n in
      let time ~best_of reps plan =
        let prep = Spiral_smp.Par_exec.prepare pool plan in
        wallclock_us ~warmup_frac:2 ~best_of reps (fun () ->
            Spiral_smp.Par_exec.execute_prepared prep x y)
      in
      let logn =
        let rec go l m = if m >= n then l else go (l + 1) (2 * m) in
        go 0 1
      in
      let shortlist =
        List.map (fun plan -> (time ~best_of:2 4 plan, plan)) (mc_candidates p n)
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.filteri (fun i _ -> i < 3)
      in
      let best =
        List.fold_left
          (fun acc (_, plan) ->
            let t = time ~best_of:3 (max 8 (reps_for logn / 8)) plan in
            match acc with
            | Some (_, bt) when bt <= t -> acc
            | _ -> Some (plan, t))
          None shortlist
      in
      let r = Option.map fst best in
      Hashtbl.add mc_tuned_cache (n, p) r;
      r

let run_json file =
  let open Spiral_util in
  let buf = Buffer.create 4096 in
  let field name us n =
    Printf.sprintf "\"%s\": {\"us_per_call\": %.3f, \"pseudo_mflops\": %.1f}"
      name us (pmflops n us)
  in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"benchmark\": \"spiral-smp wall-clock (host machine, not simulated)\",\n";
  Buffer.add_string buf
    "  \"pseudo_mflops\": \"5 N log2(N) / microseconds per transform\",\n";
  (* the host the numbers were taken on: the crossover guard only holds
     parallel-speedup ceilings against runs with cores >= 2 *)
  Buffer.add_string buf
    (Printf.sprintf
       "  \"machine\": {\"cores\": %d, \"residency\": \"%s\"},\n"
       Spiral_smp.Spinwait.cores !residency_name);
  Buffer.add_string buf "  \"sizes\": [\n";
  let pools = List.map (fun p -> (p, Spiral_smp.Pool.create p)) worker_counts in
  (* (logn, t_seq, (p, t_par) list), for the final crossover summary *)
  let sweep : (int * float * (int * float) list) list ref = ref [] in
  (* Chrome trace_event JSON of the latest (largest) size's traced par2
     execution, exported at the end when --trace FILE was given *)
  let last_trace : (int * string) option ref = ref None in
  let logns =
    let rec go l = if l > !max_logn then [] else l :: go (l + 1) in
    go !min_logn
  in
  List.iteri
    (fun i logn ->
      let n = 1 lsl logn in
      let fn = float_of_int n in
      let reps = reps_for logn in
      let x = Cvec.random ~seed:logn n and y = Cvec.create n in
      let tree = Ruletree.expand (Ruletree.mixed_radix n) in
      let seq = Plan.of_formula tree in
      let baseline = Plan.of_formula ~baseline:true ~fuse:false tree in
      (* gather every series as a named thunk first, then time them in
         interleaved rounds: all series of a size share the same noise
         window, and the minimum over rounds drops scheduler inflation —
         the seq/par ratios stay fair even when the host load shifts *)
      let items : (string * int * (unit -> unit)) list ref = ref [] in
      let add name reps call = items := (name, reps, call) :: !items in
      add "seq" reps (fun () -> Plan.execute seq x y);
      add "seq_baseline" reps (fun () -> Plan.execute baseline x y);
      (* the same formula lowered to vec(ν): "vec" is the planar-resident
         split executor, "vec_boundary" adds the per-call transposes *)
      let vec_nu = ref 0 in
      (let vf, nu = Spiral_fft.Planner.vectorize_formula ~vec:`Auto tree in
       if nu > 0 then
         match Plan.of_formula ~layout:Plan.Split vf with
         | vplan ->
             vec_nu := nu;
             let px = Array.make (2 * n) 0.0
             and py = Array.make (2 * n) 0.0 in
             Cvec.to_planar x px;
             add "vec" reps (fun () -> Plan.execute vplan px py);
             add "vec_boundary" reps (fun () ->
                 Cvec.to_planar x px;
                 Plan.execute vplan px py;
                 Cvec.of_planar py y)
         | exception Ir.Unsupported _ -> ());
      (if logn mod 2 = 0 then
         let half = 1 lsl (logn / 2) in
         match Derive.six_step_dft ~p:2 ~mu:4 ~m:half ~n:half with
         | Error _ -> ()
         | Ok f ->
             let explicit = Plan.of_formula ~explicit_data:true f in
             let fused = Plan.of_formula ~explicit_data:true ~fuse:true f in
             add "sixstep_explicit" reps (fun () -> Plan.execute explicit x y);
             add "sixstep_fused" reps (fun () -> Plan.execute fused x y));
      (* 2-D engine series (square shapes, so even logN only): the
         sequential strided schedule as the baseline, both parallel
         column schedules at p = 2 — the crossover guard's dft2d table
         reads these *)
      let d2d_plans = ref [] in
      (if logn mod 2 = 0 then begin
         let half = 1 lsl (logn / 2) in
         let dst2d = Cvec.create n in
         let mk name threads variant =
           let t =
             Spiral_fft.Dft2d.plan ~threads ~variant ~rows:half ~cols:half ()
           in
           d2d_plans := t :: !d2d_plans;
           add name reps (fun () ->
               Spiral_fft.Dft2d.execute_into t ~src:x ~dst:dst2d)
         in
         mk "dft2d_seq" 1 Spiral_fft.Dft2d.Strided;
         mk "dft2d_par2_strided" 2 Spiral_fft.Dft2d.Strided;
         mk "dft2d_par2_tiled" 2 Spiral_fft.Dft2d.Tiled
       end);
      let elisions = ref 0 in
      let par2_prep = ref None in
      let par_ps =
        List.filter_map
          (fun (p, pool) ->
            match mc_tuned pool p n with
            | None -> None
            | Some mc ->
                let prep = Spiral_smp.Par_exec.prepare pool mc in
                add
                  (Printf.sprintf "par%d" p)
                  reps
                  (fun () -> Spiral_smp.Par_exec.execute_prepared prep x y);
                if p = 2 then begin
                  par2_prep := Some prep;
                  add "par2_noelide" reps (fun () ->
                      Spiral_smp.Par_exec.execute pool ~elide:false mc x y);
                  let jobs = Array.make 8 (x, y) in
                  add "par2_batch8"
                    (max 1 (reps / 8))
                    (fun () -> Spiral_smp.Par_exec.execute_many prep jobs);
                  Counters.reset ();
                  Spiral_smp.Par_exec.execute_prepared prep x y;
                  elisions := Counters.get "par_exec.barrier_elided"
                end;
                Some p)
          pools
      in
      let items = List.rev !items in
      let best : (string, float) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (name, reps, call) ->
          Hashtbl.replace best name infinity;
          for _ = 1 to max 3 (reps / 10) do
            call ()
          done)
        items;
      for _ = 1 to 3 do
        List.iter
          (fun (name, reps, call) ->
            let t0 = Unix.gettimeofday () in
            for _ = 1 to reps do
              call ()
            done;
            let t = (Unix.gettimeofday () -. t0) /. float_of_int reps *. 1e6 in
            if t < Hashtbl.find best name then Hashtbl.replace best name t)
          items
      done;
      let time name = Hashtbl.find best name in
      let has name = Hashtbl.mem best name in
      let t_seq = time "seq" and t_base = time "seq_baseline" in
      let fields = ref [] in
      let addf f = fields := f :: !fields in
      addf (field "seq" t_seq fn);
      addf (field "seq_baseline" t_base fn);
      addf
        (Printf.sprintf "\"seq_speedup_vs_baseline\": %.2f" (t_base /. t_seq));
      if has "sixstep_explicit" then begin
        addf (field "sixstep_explicit" (time "sixstep_explicit") fn);
        addf (field "sixstep_fused" (time "sixstep_fused") fn);
        addf
          (Printf.sprintf "\"fusion_speedup\": %.2f"
             (time "sixstep_explicit" /. time "sixstep_fused"))
      end;
      if has "vec" then begin
        addf (field "vec" (time "vec") fn);
        addf (field "vec_boundary" (time "vec_boundary") fn);
        addf (Printf.sprintf "\"vec_nu\": %d" !vec_nu);
        addf
          (Printf.sprintf "\"vec_speedup\": %.2f" (t_seq /. time "vec"))
      end;
      if has "dft2d_seq" then begin
        addf (field "dft2d_seq" (time "dft2d_seq") fn);
        addf (field "dft2d_par2_strided" (time "dft2d_par2_strided") fn);
        addf (field "dft2d_par2_tiled" (time "dft2d_par2_tiled") fn);
        let t_str = time "dft2d_par2_strided"
        and t_til = time "dft2d_par2_tiled" in
        addf
          (Printf.sprintf "\"dft2d_par2_speedup\": %.2f"
             (time "dft2d_seq" /. Float.min t_str t_til));
        addf
          (Printf.sprintf "\"dft2d_best_variant\": \"%s\""
             (if t_str <= t_til then "strided" else "tiled"))
      end;
      let pars =
        List.map (fun p -> (p, time (Printf.sprintf "par%d" p))) par_ps
      in
      List.iter
        (fun (p, t) -> addf (field (Printf.sprintf "par%d" p) t fn))
        pars;
      if has "par2_noelide" then begin
        addf (field "par2_batch" (time "par2_batch8" /. 8.0) fn);
        addf (field "par2_noelide" (time "par2_noelide") fn);
        addf
          (Printf.sprintf "\"par2_speedup_vs_seq\": %.2f"
             (t_seq /. List.assoc 2 pars));
        addf
          (Printf.sprintf "\"barrier_elisions_per_transform\": %d" !elisions);
        (* traced executions, strictly after every timed round of this
           size, so tracing never contaminates the reported series.
           Scheduler noise only ever inflates a traced wait, so each
           observability figure is the minimum over a few rounds *)
        Option.iter
          (fun prep ->
            let best_wait = ref infinity
            and best_imb = ref infinity
            and best_disp = ref infinity in
            for round = 1 to 5 do
              Trace.enable ~workers:2 ();
              Spiral_smp.Par_exec.execute_prepared prep x y;
              Trace.disable ();
              let r = Trace.report () in
              if r.Trace.barrier_wait_frac < !best_wait then
                best_wait := r.Trace.barrier_wait_frac;
              if r.Trace.load_imbalance < !best_imb then
                best_imb := r.Trace.load_imbalance;
              if r.Trace.dispatch_latency_ns < !best_disp then
                best_disp := r.Trace.dispatch_latency_ns;
              if round = 5 then
                last_trace := Some (logn, Trace.to_chrome_json ());
              Trace.clear ()
            done;
            addf
              (Printf.sprintf
                 "\"par2_observability\": {\"barrier_wait_frac\": %.4f, \
                  \"load_imbalance\": %.3f, \"dispatch_latency_us\": %.3f}"
                 !best_wait !best_imb (!best_disp /. 1000.0)))
          !par2_prep
      end;
      List.iter Spiral_fft.Dft2d.destroy !d2d_plans;
      sweep := (logn, t_seq, pars) :: !sweep;
      let beats = List.filter (fun (_, t) -> t < t_seq) pars in
      addf
        (Printf.sprintf "\"beats_seq\": [%s]"
           (String.concat ", "
              (List.map (fun (p, _) -> string_of_int p) beats)));
      Buffer.add_string buf
        (Printf.sprintf "    {\"logn\": %d, \"n\": %d, \"reps\": %d,\n      %s}%s\n"
           logn n reps
           (String.concat ",\n      " (List.rev !fields))
           (if i = List.length logns - 1 then "" else ","));
      Printf.printf
        "  2^%-2d  seq %8.1f pMflop/s   baseline %8.1f   (%.2fx)%s%s\n" logn
        (pmflops fn t_seq) (pmflops fn t_base) (t_base /. t_seq)
        (if has "vec" then
           Printf.sprintf "   vec%d %8.1f (%.2fx)" !vec_nu
             (pmflops fn (time "vec"))
             (t_seq /. time "vec")
         else "")
        (String.concat ""
           (List.map
              (fun (p, t) ->
                Printf.sprintf "   par%d %8.1f%s" p (pmflops fn t)
                  (if t < t_seq then " <" else ""))
              pars));
      flush stdout)
    logns;
  List.iter (fun (_, pool) -> Spiral_smp.Pool.shutdown pool) pools;
  Buffer.add_string buf "  ],\n";
  (* smallest measured logn at which p workers beat the sequential plan *)
  let crossover p =
    List.fold_left
      (fun acc (logn, t_seq, pars) ->
        match List.assoc_opt p pars with
        | Some t when t < t_seq -> (
            match acc with Some l when l <= logn -> acc | _ -> Some logn)
        | _ -> acc)
      None !sweep
  in
  Buffer.add_string buf "  \"crossover_logn\": {";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun p ->
            Printf.sprintf "\"par%d\": %s" p
              (match crossover p with
              | Some l -> string_of_int l
              | None -> "null"))
          worker_counts));
  Buffer.add_string buf "}\n}\n";
  List.iter
    (fun p ->
      Printf.printf "crossover par%d: %s\n" p
        (match crossover p with
        | Some l -> Printf.sprintf "2^%d" l
        | None -> "none"))
    worker_counts;
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" file;
  Option.iter
    (fun tf ->
      match !last_trace with
      | None -> Printf.printf "no par2 series ran; %s not written\n" tf
      | Some (logn, json) ->
          let oc = open_out tf in
          output_string oc json;
          close_out oc;
          Printf.printf "wrote %s (par2 trace of 2^%d)\n" tf logn)
    !trace_out

(* ------------------------------------------------------------------ *)

let () =
  match !json_out with
  | Some file ->
      Printf.printf
        "spiral-smp wall-clock benchmark, logN in [%d, %d]\n" !min_logn
        !max_logn;
      run_json file
  | None ->
  Printf.printf
    "spiral-smp benchmark harness (paper: Franchetti et al., SC 2006)\n";
  Printf.printf "max logN = %d%s\n" !max_logn
    (if !only = [] then "" else "; sections: " ^ String.concat "," !only);
  run_figure "fig3a" Machine.core_duo;
  run_figure "fig3b" Machine.opteron;
  run_figure "fig3c" Machine.pentium_d;
  run_figure "fig3d" Machine.xeon_mp;
  run_crossover ();
  run_seq_parity ();
  run_l1_speedup ();
  run_false_sharing ();
  run_load_balance ();
  run_sixstep ();
  run_ablation_sync ();
  run_ablation_mu ();
  run_ablation_merge ();
  run_accuracy ();
  run_host_seq ()
