(* CI guard for the parallel runtime: compares the par2 wall-clock of a
   fresh smoke sweep (bench_smoke.json, 2 sizes) against the committed
   BENCH_wallclock.json and fails if the largest smoke size regressed by
   more than the tolerance factor.  Hand-rolled JSON scanning — the bench
   emitter writes one series per line, so substring search suffices and
   the repo needs no JSON dependency.

   Usage: check_crossover SMOKE.json COMMITTED.json *)

let tolerance = 2.0

let read_file f = In_channel.with_open_text f In_channel.input_all

(* index just past the first occurrence of [sub] at or after [i] *)
let after s i sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go i

let parse_number s i =
  let n = String.length s in
  let j = ref i in
  while
    !j < n
    && match s.[!j] with '0' .. '9' | '.' | '-' | '+' | 'e' -> true | _ -> false
  do
    incr j
  done;
  float_of_string (String.sub s i (!j - i))

(* (logn, par2 us_per_call option) for every size block of a bench JSON *)
let sizes content =
  let rec go i acc =
    match after content i "\"logn\": " with
    | None -> List.rev acc
    | Some j ->
        let logn = int_of_float (parse_number content j) in
        let stop =
          match after content j "\"logn\": " with
          | Some k -> k
          | None -> String.length content
        in
        let par2 =
          match after content j "\"par2\": {\"us_per_call\": " with
          | Some k when k < stop -> Some (parse_number content k)
          | _ -> None
        in
        go j ((logn, par2) :: acc)
  in
  go 0 []

let () =
  if Array.length Sys.argv <> 3 then begin
    prerr_endline "usage: check_crossover SMOKE.json COMMITTED.json";
    exit 2
  end;
  let smoke = sizes (read_file Sys.argv.(1)) in
  let committed = sizes (read_file Sys.argv.(2)) in
  let largest =
    List.fold_left
      (fun acc (logn, par2) ->
        match (par2, acc) with
        | Some t, Some (bl, _) when logn > bl -> Some (logn, t)
        | Some t, None -> Some (logn, t)
        | _ -> acc)
      None smoke
  in
  match largest with
  | None ->
      Printf.eprintf "check-crossover: no par2 series in %s\n" Sys.argv.(1);
      exit 1
  | Some (logn, t_smoke) -> (
      match List.assoc_opt logn committed with
      | Some (Some t_committed) ->
          Printf.printf
            "check-crossover: par2 at 2^%d: %.1f us (committed %.1f us, \
             tolerance %.0fx)\n"
            logn t_smoke t_committed tolerance;
          if t_smoke > tolerance *. t_committed then begin
            Printf.eprintf
              "check-crossover: FAIL — par2 at 2^%d regressed: %.1f us > \
               %.0fx committed %.1f us\n"
              logn t_smoke tolerance t_committed;
            exit 1
          end
          else print_endline "check-crossover: OK"
      | _ ->
          Printf.eprintf
            "check-crossover: committed %s has no par2 series at 2^%d\n"
            Sys.argv.(2) logn;
          exit 1)
