(* CI guard for the parallel runtime.  Three families of checks:

   1. Regression: the par2 wall-clock of a fresh smoke sweep
      (bench_smoke.json, 2 sizes) must stay within [tolerance] of the
      committed BENCH_wallclock.json at the largest smoke size.
   2. Crossover: the committed sweep must show par2 beating the
      sequential plan at some size ("crossover_logn": {"par2": N}) —
      a parallel runtime that never wins is a regression, not a tuning
      detail.
   3. Dispatch ceilings, per size band: the traced par2_observability
      of the committed sweep must show dispatch_latency_us and
      barrier_wait_frac under the band's ceiling.

   Checks 2 and the barrier_wait_frac half of 3 only hold on a machine
   that can actually run two workers at once: each bench JSON records
   the host under "machine": {"cores": N}, and on a single-core host
   the guard SKIPs them loudly instead of failing — there a second
   domain only ever runs when the OS preempts the first, so parallel
   wall-clock and wait fractions measure the scheduler, not the
   runtime.  The dispatch-latency ceiling is enforced even on one core
   with a relaxed bound: resident-region dispatch is one CAS plus a
   wake, and even a preempted worker must start the job within an OS
   scheduling quantum, not a pool-rendezvous worth of eventcount
   round-trips.

   Hand-rolled JSON scanning — the bench emitter writes one series per
   line, so substring search suffices and the repo needs no JSON
   dependency.

   Usage: check_crossover SMOKE.json COMMITTED.json *)

let tolerance = 2.0

(* ceilings per size band: (max logn inclusive, multi-core dispatch us,
   single-core dispatch us, multi-core barrier_wait_frac) *)
let bands =
  [ (10, 5.0, 150.0, 0.40);
    (14, 10.0, 300.0, 0.30);
    (99, 50.0, 1000.0, 0.25) ]

let band logn =
  let rec go = function
    | [ last ] -> last
    | (hi, _, _, _) as b :: rest -> if logn <= hi then b else go rest
    | [] -> assert false
  in
  go bands

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      incr failures;
      Printf.eprintf "check-crossover: FAIL — %s\n" msg)
    fmt

let read_file f = In_channel.with_open_text f In_channel.input_all

(* index just past the first occurrence of [sub] at or after [i] *)
let after s i sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go i

let parse_number s i =
  let n = String.length s in
  let j = ref i in
  while
    !j < n
    && match s.[!j] with '0' .. '9' | '.' | '-' | '+' | 'e' -> true | _ -> false
  do
    incr j
  done;
  float_of_string (String.sub s i (!j - i))

let number_after content key =
  Option.map (parse_number content) (after content 0 key)

type size_block = {
  logn : int;
  par2 : float option;  (* us_per_call *)
  dispatch_us : float option;
  wait_frac : float option;
  vec_speedup : float option;  (* seq time / vectorized split time *)
  dft2d_seq : float option;  (* us_per_call of the 2-D series *)
  dft2d_strided : float option;
  dft2d_tiled : float option;
  dft2d_speedup : float option;  (* 2-D seq time / best parallel *)
}

(* every size block of a bench JSON, with its traced observability *)
let sizes content =
  let field stop key j =
    match after content j key with
    | Some k when k < stop -> Some (parse_number content k)
    | _ -> None
  in
  let rec go i acc =
    match after content i "\"logn\": " with
    | None -> List.rev acc
    | Some j ->
        let logn = int_of_float (parse_number content j) in
        let stop =
          match after content j "\"logn\": " with
          | Some k -> k
          | None -> String.length content
        in
        let block =
          {
            logn;
            par2 = field stop "\"par2\": {\"us_per_call\": " j;
            dispatch_us = field stop "\"dispatch_latency_us\": " j;
            wait_frac = field stop "\"barrier_wait_frac\": " j;
            vec_speedup = field stop "\"vec_speedup\": " j;
            dft2d_seq = field stop "\"dft2d_seq\": {\"us_per_call\": " j;
            dft2d_strided =
              field stop "\"dft2d_par2_strided\": {\"us_per_call\": " j;
            dft2d_tiled =
              field stop "\"dft2d_par2_tiled\": {\"us_per_call\": " j;
            dft2d_speedup = field stop "\"dft2d_par2_speedup\": " j;
          }
        in
        go j (block :: acc)
  in
  go 0 []

(* cores recorded by the run; a pre-machine-stamp JSON counts as 1 core
   (never enforce multi-core ceilings against unknown hardware) *)
let cores content =
  match number_after content "\"machine\": {\"cores\": " with
  | Some c -> int_of_float c
  | None -> 1

let check_regression smoke committed =
  let largest =
    List.fold_left
      (fun acc b ->
        match (b.par2, acc) with
        | Some t, Some (bl, _) when b.logn > bl -> Some (b.logn, t)
        | Some t, None -> Some (b.logn, t)
        | _ -> acc)
      None smoke
  in
  match largest with
  | None -> fail "no par2 series in the smoke run"
  | Some (logn, t_smoke) -> (
      match
        List.find_opt (fun b -> b.logn = logn && b.par2 <> None) committed
      with
      | Some { par2 = Some t_committed; _ } ->
          Printf.printf
            "check-crossover: par2 at 2^%d: %.1f us (committed %.1f us, \
             tolerance %.0fx)\n"
            logn t_smoke t_committed tolerance;
          if t_smoke > tolerance *. t_committed then
            fail "par2 at 2^%d regressed: %.1f us > %.0fx committed %.1f us"
              logn t_smoke tolerance t_committed
      | _ -> fail "committed sweep has no par2 series at 2^%d" logn)

let check_crossover_exists content ncores =
  match number_after content "\"crossover_logn\": {\"par2\": " with
  | Some l ->
      Printf.printf "check-crossover: committed par2 crossover at 2^%d\n"
        (int_of_float l)
  | None ->
      if ncores >= 2 then
        fail
          "committed sweep shows par2 never beating seq on a %d-core host"
          ncores
      else
        Printf.printf
          "check-crossover: SKIP crossover check — committed sweep was taken \
           on 1 core, where par2 cannot beat seq by construction\n"

let check_ceilings label blocks ncores =
  List.iter
    (fun b ->
      let hi, disp_multi, disp_single, wait_ceiling = band b.logn in
      ignore hi;
      (match b.dispatch_us with
      | None -> ()
      | Some d ->
          let ceiling = if ncores >= 2 then disp_multi else disp_single in
          Printf.printf
            "check-crossover: %s 2^%d dispatch %.1f us (ceiling %.0f, %d \
             core%s)\n"
            label b.logn d ceiling ncores
            (if ncores = 1 then "" else "s");
          if d > ceiling then
            fail "%s 2^%d dispatch latency %.1f us exceeds %.0f us" label
              b.logn d ceiling);
      match b.wait_frac with
      | None -> ()
      | Some w ->
          if ncores >= 2 then begin
            Printf.printf
              "check-crossover: %s 2^%d barrier wait frac %.3f (ceiling %.2f)\n"
              label b.logn w wait_ceiling;
            if w > wait_ceiling then
              fail "%s 2^%d barrier wait fraction %.3f exceeds %.2f" label
                b.logn w wait_ceiling
          end)
    blocks

(* SKIP/WARN advisories as data, so the plain checker and the --summary
   markdown renderer emit the same determinations: the checker prints
   them as "check-crossover: …" log lines, the renderer as a bullet
   list in the job summary (previously the renderer dropped them
   entirely, so a summary against a pre-vec artifact silently showed an
   empty column where the checker would have said SKIP).

   - Vec: by 2^10 the working set has left L1 and the planar layout
     halves the per-line footprint, so the vectorized split path is
     expected to win there.  Losing is worth a loud line — but it is a
     tuning outcome on this host, not a correctness failure.
   - Dft2d: on a multi-core host the parallel 2-D schedule is expected
     to beat its own sequential schedule once the image leaves L2;
     cores-gated like the barrier-wait ceilings.
   - A JSON written before the bench emitted a series has no such key
     at all; that is an old artifact, not a missing measurement, so the
     whole advisory SKIPs in one line rather than muttering per size. *)
let advisories label content blocks ncores =
  let out = ref [] in
  let advise fmt = Printf.ksprintf (fun m -> out := m :: !out) fmt in
  if ncores < 2 then
    advise
      "SKIP %s barrier_wait_frac ceilings — 1-core host (waits there \
       measure OS preemption, not the rendezvous)"
      label;
  if after content 0 "\"vec_speedup\": " = None then
    advise "SKIP %s vec-speedup advisory — JSON predates the vec series"
      label
  else
    List.iter
      (fun b ->
        match b.vec_speedup with
        | Some s when b.logn >= 10 && s < 1.0 ->
            advise
              "WARN — %s 2^%d vectorized split path loses to scalar \
               (%.2fx); advisory, not a failure"
              label b.logn s
        | _ -> ())
      blocks;
  if after content 0 "\"dft2d_par2_speedup\": " = None then
    advise "SKIP %s dft2d advisory — JSON predates the dft2d series" label
  else if ncores < 2 then
    advise
      "SKIP %s dft2d speedup advisory — 1-core host (the parallel 2-D \
       schedule cannot beat its sequential one by construction)"
      label
  else
    List.iter
      (fun b ->
        match b.dft2d_speedup with
        | Some s when b.logn >= 12 && s < 1.0 ->
            advise
              "WARN — %s 2^%d 2-D engine: parallel column schedules lose \
               to the sequential one (%.2fx); advisory, not a failure"
              label b.logn s
        | _ -> ())
      blocks;
  List.rev !out

(* --summary FRESH.json COMMITTED.json: markdown table of the traced
   par2 observability of a fresh run against the committed sweep, for a
   CI job summary.  Informational — always exits 0. *)
let print_summary fresh_file committed_file =
  let fresh_json = read_file fresh_file in
  let committed_json = read_file committed_file in
  let fresh = sizes fresh_json and committed = sizes committed_json in
  Printf.printf "### par2 observability: this run vs committed\n\n";
  Printf.printf
    "Fresh run on %d core(s), committed sweep on %d core(s).  Figures are \
     minima over traced rounds; `us/call` is the timed par2 series.\n\n"
    (cores fresh_json) (cores committed_json);
  Printf.printf
    "| size | dispatch us (run) | dispatch us (committed) | wait frac (run) \
     | wait frac (committed) | us/call (run) | us/call (committed) |\n";
  Printf.printf "|---|---|---|---|---|---|---|\n";
  let show = function Some v -> Printf.sprintf "%.2f" v | None -> "—" in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.logn = b.logn) committed with
      | None -> ()
      | Some c ->
          Printf.printf "| 2^%d | %s | %s | %s | %s | %s | %s |\n" b.logn
            (show b.dispatch_us) (show c.dispatch_us) (show b.wait_frac)
            (show c.wait_frac) (show b.par2) (show c.par2))
    fresh;
  (* 2-D engine series: square images, both parallel column schedules *)
  let has_2d bs = List.exists (fun b -> b.dft2d_seq <> None) bs in
  if has_2d fresh then begin
    Printf.printf
      "\n### dft2d: row/column-parallel 2-D engine (square images, p = 2)\n\n";
    Printf.printf
      "| size | seq us (run) | strided us (run) | tiled us (run) | speedup \
       (run) | speedup (committed) |\n";
    Printf.printf "|---|---|---|---|---|---|\n";
    List.iter
      (fun b ->
        if b.dft2d_seq <> None then
          let c =
            List.find_opt
              (fun c -> c.logn = b.logn && c.dft2d_seq <> None)
              committed
          in
          Printf.printf "| 2^%d (%dx%d) | %s | %s | %s | %s | %s |\n" b.logn
            (1 lsl (b.logn / 2))
            (1 lsl (b.logn / 2))
            (show b.dft2d_seq) (show b.dft2d_strided) (show b.dft2d_tiled)
            (show b.dft2d_speedup)
            (match c with Some c -> show c.dft2d_speedup | None -> "—"))
      fresh
  end;
  let adv =
    advisories "run" fresh_json fresh (cores fresh_json)
    @ advisories "committed" committed_json committed (cores committed_json)
  in
  if adv <> [] then begin
    Printf.printf "\n#### Advisories\n\n";
    List.iter (fun m -> Printf.printf "- %s\n" m) adv
  end

let () =
  if
    Array.length Sys.argv = 4 && Sys.argv.(1) = "--summary"
  then begin
    print_summary Sys.argv.(2) Sys.argv.(3);
    exit 0
  end;
  if Array.length Sys.argv <> 3 then begin
    prerr_endline
      "usage: check_crossover [--summary] SMOKE.json COMMITTED.json";
    exit 2
  end;
  let smoke_json = read_file Sys.argv.(1) in
  let committed_json = read_file Sys.argv.(2) in
  let smoke = sizes smoke_json and committed = sizes committed_json in
  check_regression smoke committed;
  check_crossover_exists committed_json (cores committed_json);
  check_ceilings "committed" committed (cores committed_json);
  check_ceilings "smoke" smoke (cores smoke_json);
  List.iter
    (fun m -> Printf.printf "check-crossover: %s\n" m)
    (advisories "committed" committed_json committed (cores committed_json)
    @ advisories "smoke" smoke_json smoke (cores smoke_json));
  if !failures > 0 then begin
    Printf.eprintf "check-crossover: %d failure(s)\n" !failures;
    exit 1
  end
  else print_endline "check-crossover: OK"
