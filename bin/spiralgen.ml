(* spiralgen: command-line front end to the generator.

   Subcommands:
     formula   — derive and print the SPL formula for a DFT
     generate  — emit C code (sequential / OpenMP / pthreads)
     codegen   — emit vector-lowered SIMD C code (sse2/avx2/neon/generic)
     run       — execute a transform on this host and verify it
     search    — autotune a ruletree (DP over the machine model)
     simulate  — performance-simulate a plan on a modeled machine
     serve     — resident FFT daemon on a Unix-domain socket
     client    — talk to a running daemon (exec/ping/info/stats) *)

open Cmdliner
open Spiral_util
open Spiral_rewrite
open Spiral_codegen
open Spiral_sim

let machine_of_string = function
  | "core-duo" -> Ok Machine.core_duo
  | "pentium-d" -> Ok Machine.pentium_d
  | "opteron" -> Ok Machine.opteron
  | "xeon-mp" -> Ok Machine.xeon_mp
  | s -> Error (`Msg ("unknown machine: " ^ s ^ " (core-duo|pentium-d|opteron|xeon-mp)"))

let machine_conv =
  Arg.conv
    ( machine_of_string,
      fun ppf m -> Format.pp_print_string ppf m.Machine.name )

let n_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"Transform size.")

let p_arg =
  Arg.(value & opt int 1 & info [ "p"; "threads" ] ~docv:"P" ~doc:"Number of processors.")

let mu_arg =
  Arg.(value & opt int 4 & info [ "mu" ] ~docv:"MU" ~doc:"Cache line length in complex elements.")

let machine_arg =
  Arg.(value & opt machine_conv Machine.core_duo
       & info [ "machine" ] ~docv:"M" ~doc:"Machine model (core-duo|pentium-d|opteron|xeon-mp).")

let vec_conv =
  Arg.conv
    ( (function
      | "off" -> Ok `Off
      | "auto" -> Ok `Auto
      | s -> (
          match int_of_string_opt s with
          | Some nu when nu >= 2 -> Ok (`Nu nu)
          | _ -> Error (`Msg ("expected off|auto|NU (NU >= 2), got " ^ s)))),
      fun ppf v ->
        Format.pp_print_string ppf
          (match v with
          | `Off -> "off"
          | `Auto -> "auto"
          | `Nu nu -> string_of_int nu) )

let vec_arg ~default =
  Arg.(
    value & opt vec_conv default
    & info [ "vec" ] ~docv:"V"
        ~doc:
          "Short-vector lowering of the derived formula: $(b,off), \
           $(b,auto) (try nu=4 then nu=2, fall back to scalar), or an \
           explicit vector length nu >= 2.")

let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Discharge every optimizer certificate exhaustively at plan time \
           (every index of every pass, every boundary witness) instead of \
           the sampled default.  Slower planning, same execution speed; \
           results appear under the $(b,validate.*) counters in --metrics \
           output.")

let apply_paranoid paranoid =
  if paranoid then Spiral_validate.mode := Spiral_validate.Exhaustive

let backend_conv =
  Arg.conv
    ( (function
      | "omp" | "openmp" -> Ok `OpenMP
      | "pthreads" -> Ok `Pthreads
      | "seq" -> Ok `None
      | s -> Error (`Msg ("unknown backend: " ^ s))),
      fun ppf b ->
        Format.pp_print_string ppf
          (match b with
          | `OpenMP -> "openmp"
          | `Pthreads -> "pthreads"
          | `None -> "seq") )

let backend_arg =
  Arg.(
    value & opt backend_conv `OpenMP
    & info [ "backend" ] ~docv:"B" ~doc:"omp | pthreads | seq")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")

let write_source out src =
  match out with
  | None ->
      print_string src;
      0
  | Some file ->
      let oc = open_out file in
      output_string oc src;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" file (String.length src);
      0

let size_supported n =
  n >= 1
  && List.for_all
       (fun f -> f <= Ruletree.leaf_max)
       (Int_util.prime_factors (max n 1))

let derive_plan ~p ~mu n =
  if n < 1 then Error "N must be >= 1"
  else if not (size_supported n) then
    Error
      (Printf.sprintf
         "N=%d has a prime factor beyond the codelet range; formula/C \
          generation needs generated code for the exact size (the `run` \
          subcommand handles such sizes via Bluestein)"
         n)
  else if p <= 1 then Ok (Ruletree.expand (Ruletree.mixed_radix n))
  else
    let q = p * mu in
    let split =
      List.find_opt
        (fun m -> m mod q = 0 && (n / m) mod q = 0)
        (List.rev (Int_util.divisors n))
    in
    match split with
    | None ->
        Error
          (Printf.sprintf
             "no top split with (p*mu)^2 | N exists for N=%d, p=%d, mu=%d" n p mu)
    | Some m -> (
        let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix (n / m)) in
        match Derive.multicore_dft ~p ~mu tree with
        | Ok f -> Ok f
        | Error e -> Error (Derive.error_to_string e))

(* ------------------------------------------------------------------ *)

let cmd_formula =
  let run n p mu =
    match derive_plan ~p ~mu n with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok f ->
        Format.printf "%a@." Spiral_spl.Formula.pp f;
        if p > 1 then begin
          Printf.printf "\nload balanced (p=%d):      %b\n" p
            (Spiral_spl.Props.load_balanced ~p f);
          Printf.printf "avoids false sharing (µ=%d): %b\n" mu
            (Spiral_spl.Props.avoids_false_sharing ~mu f);
          Printf.printf "flops: %d, per processor: %s\n"
            (Spiral_spl.Cost.flops f)
            (String.concat " "
               (Array.to_list
                  (Array.map string_of_int (Spiral_spl.Cost.per_processor ~p f))))
        end;
        0
  in
  Cmd.v (Cmd.info "formula" ~doc:"Derive and print the SPL formula")
    Term.(const run $ n_arg $ p_arg $ mu_arg)

let cmd_generate =
  let run n p mu backend out =
    match derive_plan ~p ~mu n with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok f -> (
        match C_emit.to_c ~backend (Plan.of_formula f) with
        | exception Invalid_argument msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | src -> write_source out src)
  in
  Cmd.v (Cmd.info "generate" ~doc:"Emit C code for the transform")
    Term.(const run $ n_arg $ p_arg $ mu_arg $ backend_arg $ out_arg)

let cmd_codegen =
  let simd_conv =
    Arg.conv
      ( (function
        | "sse2" -> Ok `SSE2
        | "avx2" -> Ok `AVX2
        | "neon" -> Ok `NEON
        | "generic" -> Ok `Generic
        | s ->
            Error (`Msg ("unknown SIMD ISA: " ^ s ^ " (sse2|avx2|neon|generic)"))),
        fun ppf s ->
          Format.pp_print_string ppf
            (match s with
            | `SSE2 -> "sse2"
            | `AVX2 -> "avx2"
            | `NEON -> "neon"
            | `Generic -> "generic") )
  in
  let simd_arg =
    Arg.(
      value & opt simd_conv `AVX2
      & info [ "simd" ] ~docv:"ISA"
          ~doc:
            "SIMD instruction set for vec-tagged passes: sse2 | avx2 | \
             neon | generic (GCC vector extensions).  Compile avx2 output \
             with -mavx2; neon needs an AArch64 target.")
  in
  let run n p mu vec simd backend out =
    match derive_plan ~p ~mu n with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok f -> (
        let vf, nu =
          match vec with
          | `Off -> (f, 0)
          | v -> Spiral_fft.Planner.vectorize_formula ~vec:v f
        in
        match (vec, nu) with
        | `Nu want, 0 ->
            Printf.eprintf
              "error: vector lowering with nu=%d does not apply to DFT_%d \
               (p=%d, mu=%d)\n"
              want n p mu;
            1
        | _ -> (
            if vec <> `Off && nu = 0 then
              Printf.eprintf
                "note: vector lowering does not apply; emitting scalar code\n";
            match C_emit.to_c ~backend ~simd (Plan.of_formula vf) with
            | exception Invalid_argument msg ->
                Printf.eprintf "error: %s\n" msg;
                1
            | src -> write_source out src))
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:
         "Emit SIMD C code: the vec(nu)-tagged passes of the \
          vector-lowered formula become intrinsic vector kernels composed \
          with the usual OpenMP/pthreads worksharing")
    Term.(
      const run $ n_arg $ p_arg $ mu_arg $ vec_arg ~default:`Auto $ simd_arg
      $ backend_arg $ out_arg)

let cmd_run =
  let problem_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"PROBLEM"
          ~doc:
            "What to run: a plain size $(b,N) (shorthand for $(b,dft[N]f)) \
             or a problem descriptor such as $(b,dft2d[512x512]f), \
             $(b,rdft2d[64x64]f) or $(b,dft2d[256x256]fx8) (a batch of 8 \
             spectra through one parallel region).")
  in
  let variant_conv =
    Arg.conv
      ( (function
        | "strided" -> Ok Spiral_fft.Dft2d.Strided
        | "tiled" -> Ok Spiral_fft.Dft2d.Tiled
        | "auto" -> Ok Spiral_fft.Dft2d.Auto
        | s -> Error (`Msg ("expected strided|tiled|auto, got " ^ s))),
        fun ppf v ->
          Format.pp_print_string ppf
            (match v with
            | Spiral_fft.Dft2d.Strided -> "strided"
            | Spiral_fft.Dft2d.Tiled -> "tiled"
            | Spiral_fft.Dft2d.Auto -> "auto") )
  in
  let variant_arg =
    Arg.(
      value & opt variant_conv Spiral_fft.Dft2d.Auto
      & info [ "variant" ] ~docv:"V"
          ~doc:
            "Column schedule for 2-D problems: $(b,strided) \
             (transpose-free, column-strided passes), $(b,tiled) \
             (cache-blocked transpose between the row and column \
             transforms), or $(b,auto) (measure both once and remember \
             the winner; the default).")
  in
  let reps_arg =
    Arg.(value & opt int 100 & info [ "reps" ] ~docv:"R" ~doc:"Timing repetitions.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "After the timed runs, record one traced execution and write it \
             as Chrome trace_event JSON to $(docv) (load in Perfetto or \
             chrome://tracing); also prints a per-pass summary.  Tracing \
             never overlaps the timed repetitions.")
  in
  let metrics_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "On exit, write the runtime counters as a Prometheus-style text \
             dump to $(docv).")
  in
  (* one traced execution, exported after the run has joined *)
  let with_trace trace workers run_once =
    Option.iter
      (fun file ->
        Trace.enable ~workers:(max workers 1) ();
        run_once ();
        Trace.disable ();
        let oc = open_out file in
        output_string oc (Trace.to_chrome_json ());
        close_out oc;
        print_string (Trace.summary ());
        Printf.printf "wrote trace to %s\n" file;
        Trace.clear ())
      trace
  in
  let write_metrics metrics =
    Option.iter
      (fun file ->
        let oc = open_out file in
        output_string oc (Counters.to_prometheus ());
        close_out oc;
        Printf.printf "wrote metrics to %s\n" file)
      metrics
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"B"
          ~doc:
            "Plan $(docv) same-size DFTs as one batch (rule (9)) and time \
             both per-call execution and Batch.execute_many, which runs a \
             whole sequence of batches inside a single parallel region.")
  in
  let residency_conv =
    Arg.conv
      ( (function
        | "auto" -> Ok `Auto
        | "on" -> Ok `On
        | "off" -> Ok `Off
        | s -> Error (`Msg ("expected auto|on|off, got " ^ s))),
        fun ppf r ->
          Format.pp_print_string ppf
            (match r with `Auto -> "auto" | `On -> "on" | `Off -> "off") )
  in
  let resident_arg =
    Arg.(
      value & opt residency_conv `Auto
      & info [ "resident" ] ~docv:"MODE"
          ~doc:
            "Cross-call residency policy for prepared parallel plans: \
             $(b,on) pins the pool's workers inside a resident region on \
             the first execution, $(b,off) pays a full pool rendezvous per \
             call, $(b,auto) (default) pins after a few consecutive \
             executions.  A non-zero $(b,smp.timed_sleep) counter in \
             --metrics output means residency was lost (workers fell \
             through spin and park to timed sleep).")
  in
  let resident_idle_arg =
    Arg.(
      value & opt float 0.25
      & info [ "resident-idle" ] ~docv:"SECONDS"
          ~doc:
            "Idle deadline after which a resident region's workers release \
             themselves back to the shared pool (counted under \
             $(b,pool.region_decay)).")
  in
  let spin_limit_arg =
    Arg.(
      value & opt (some int) None
      & info [ "spin-limit" ] ~docv:"ITERS"
          ~doc:
            "Spin budget before a waiting worker parks on the OS \
             eventcount — governs barrier waits and resident workers' \
             between-call pickup (default: the machine-derived \
             Spinwait limit).")
  in
  let apply_smp_knobs resident resident_idle spin_limit =
    Spiral_smp.Par_exec.default_residency := resident;
    Spiral_smp.Par_exec.default_resident_idle := resident_idle;
    Spiral_smp.Par_exec.default_spin_limit := spin_limit
  in
  let run_batch n p mu vec reps batch trace metrics =
    Spiral_fft.Batch.with_plan ~threads:p ~mu ~vec ~count:batch n (fun bt ->
        let x = Cvec.random (batch * n) in
        let y = Spiral_fft.Batch.execute bt x in
        (* verify row 0 against the O(n^2) definition when affordable *)
        let err =
          if n > 4096 then nan
          else begin
            let row = Cvec.create n in
            for i = 0 to n - 1 do
              Cvec.set row i (Cvec.get x i)
            done;
            let want = Naive_dft.dft row in
            let d = ref 0.0 in
            for i = 0 to n - 1 do
              let a = Cvec.get y i and b = Cvec.get want i in
              d := Float.max !d (Complex.norm (Complex.sub a b))
            done;
            !d
          end
        in
        let time call =
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            call ()
          done;
          (Unix.gettimeofday () -. t0) /. float_of_int reps
        in
        let t_each = time (fun () -> ignore (Spiral_fft.Batch.execute bt x)) in
        let jobs = Array.init 4 (fun i -> Cvec.random ~seed:i (batch * n)) in
        let t_many =
          time (fun () -> ignore (Spiral_fft.Batch.execute_many bt jobs))
          /. 4.0
        in
        let nf = float_of_int n and bf = float_of_int batch in
        let pmf dt = 5.0 *. nf *. (log nf /. log 2.0) /. (dt /. bf) /. 1e6 in
        Printf.printf
          "DFT_%d x %d threads=%d: %.3f us/batch (%.0f pseudo-Mflop/s), \
           execute_many %.3f us/batch (%.0f pseudo-Mflop/s)"
          n batch p (t_each *. 1e6) (pmf t_each) (t_many *. 1e6) (pmf t_many);
        if Float.is_nan err then print_newline ()
        else Printf.printf ", max err vs naive %.2e\n" err;
        Printf.printf "parallel: %b\n" (Spiral_fft.Batch.parallel bt);
        with_trace trace p (fun () -> ignore (Spiral_fft.Batch.execute bt x));
        write_metrics metrics;
        0)
  in
  (* separable O(RC(R+C)) reference: naive DFT on every row, then on
     every column of the result *)
  let naive_dft2d rows cols x =
    let tmp = Cvec.create (rows * cols) in
    let row = Cvec.create cols in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 1 do
        Cvec.set row c (Cvec.get x ((r * cols) + c))
      done;
      let fr = Naive_dft.dft row in
      for c = 0 to cols - 1 do
        Cvec.set tmp ((r * cols) + c) (Cvec.get fr c)
      done
    done;
    let out = Cvec.create (rows * cols) in
    let col = Cvec.create rows in
    for c = 0 to cols - 1 do
      for r = 0 to rows - 1 do
        Cvec.set col r (Cvec.get tmp ((r * cols) + c))
      done;
      let fc = Naive_dft.dft col in
      for r = 0 to rows - 1 do
        Cvec.set out ((r * cols) + c) (Cvec.get fc r)
      done
    done;
    out
  in
  let naive_idft2d rows cols x =
    let n = rows * cols in
    let cx = Cvec.create n in
    for i = 0 to n - 1 do
      Cvec.set cx i (Complex.conj (Cvec.get x i))
    done;
    let f = naive_dft2d rows cols cx in
    let s = 1.0 /. float_of_int n in
    for i = 0 to n - 1 do
      let v = Complex.conj (Cvec.get f i) in
      Cvec.set f i { Complex.re = v.Complex.re *. s; im = v.Complex.im *. s }
    done;
    f
  in
  let time_reps reps call =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      call ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let pseudo_mflops n dt =
    let nf = float_of_int n in
    5.0 *. nf *. (log nf /. log 2.0) /. dt /. 1e6
  in
  let run_dft2d problem variant p mu reps trace metrics =
    let dims = Spiral_fft.Problem.dims problem in
    let rows = dims.(0) and cols = dims.(1) in
    let direction =
      match Spiral_fft.Problem.direction problem with
      | Spiral_fft.Problem.Forward -> Spiral_fft.Dft2d.Forward
      | Spiral_fft.Problem.Inverse -> Spiral_fft.Dft2d.Inverse
    in
    Spiral_fft.Dft2d.with_plan ~threads:p ~mu ~variant ~direction ~rows ~cols
      (fun t ->
        let n = rows * cols in
        let batch = Spiral_fft.Problem.batch problem in
        let jobs =
          Array.init batch (fun i -> (Cvec.random ~seed:i n, Cvec.create n))
        in
        let src, dst = jobs.(0) in
        Spiral_fft.Dft2d.execute_into t ~src ~dst;
        let err =
          if n > 16384 then nan
          else
            let want =
              match direction with
              | Spiral_fft.Dft2d.Forward -> naive_dft2d rows cols src
              | Spiral_fft.Dft2d.Inverse -> naive_idft2d rows cols src
            in
            Cvec.max_abs_diff dst want
        in
        let dt =
          if batch > 1 then
            time_reps reps (fun () -> Spiral_fft.Dft2d.execute_many t jobs)
            /. float_of_int batch
          else
            time_reps reps (fun () ->
                Spiral_fft.Dft2d.execute_into t ~src ~dst)
        in
        Printf.printf "DFT2D_%dx%d%s threads=%d: %.3f us/transform, %.0f \
                       pseudo-Mflop/s"
          rows cols
          (if batch > 1 then Printf.sprintf " x %d" batch else "")
          p (dt *. 1e6) (pseudo_mflops n dt);
        if Float.is_nan err then print_newline ()
        else Printf.printf ", max err vs naive %.2e\n" err;
        Printf.printf "schedule: %s, parallel: %b, barriers per region: %d\n"
          (Spiral_fft.Dft2d.schedule t)
          (Spiral_fft.Dft2d.parallel t)
          (Spiral_fft.Dft2d.barriers t);
        with_trace trace p (fun () ->
            Spiral_fft.Dft2d.execute_into t ~src ~dst);
        write_metrics metrics;
        0)
  in
  let run_rdft2d problem variant p mu reps trace metrics =
    let dims = Spiral_fft.Problem.dims problem in
    let rows = dims.(0) and cols = dims.(1) in
    if cols mod 2 <> 0 || cols < 2 then begin
      Printf.eprintf "error: rdft2d needs an even number of columns\n";
      1
    end
    else
      Spiral_fft.Rfft2d.with_plan ~threads:p ~mu ~variant ~rows ~cols
        (fun t ->
          let n = rows * cols in
          let h = (cols / 2) + 1 in
          let x =
            Array.init n (fun i ->
                sin (0.7 *. float_of_int i)
                +. (0.25 *. cos (2.3 *. float_of_int (i * i mod 97))))
          in
          let s = Cvec.create (rows * h) in
          let back = Array.make n 0.0 in
          Spiral_fft.Rfft2d.forward_into t ~src:x ~dst:s;
          let err =
            if n > 16384 then nan
            else begin
              let cx = Cvec.create n in
              for i = 0 to n - 1 do
                Cvec.set cx i { Complex.re = x.(i); im = 0.0 }
              done;
              let want = naive_dft2d rows cols cx in
              let d = ref 0.0 in
              for k1 = 0 to rows - 1 do
                for k2 = 0 to h - 1 do
                  let a = Cvec.get s ((k1 * h) + k2)
                  and b = Cvec.get want ((k1 * cols) + k2) in
                  d := Float.max !d (Complex.norm (Complex.sub a b))
                done
              done;
              !d
            end
          in
          let dt =
            match Spiral_fft.Problem.direction problem with
            | Spiral_fft.Problem.Forward ->
                time_reps reps (fun () ->
                    Spiral_fft.Rfft2d.forward_into t ~src:x ~dst:s)
            | Spiral_fft.Problem.Inverse ->
                time_reps reps (fun () ->
                    Spiral_fft.Rfft2d.inverse_into t ~src:s ~dst:back)
          in
          (* the round trip must reproduce the input regardless of which
             direction was timed *)
          Spiral_fft.Rfft2d.inverse_into t ~src:s ~dst:back;
          let rt = ref 0.0 in
          for i = 0 to n - 1 do
            rt := Float.max !rt (Float.abs (back.(i) -. x.(i)))
          done;
          Printf.printf "RDFT2D_%dx%d threads=%d: %.3f us/transform, %.0f \
                         pseudo-Mflop/s"
            rows cols p (dt *. 1e6)
            (pseudo_mflops n dt /. 2.0)
          (* real input: half the complex flop count *);
          if Float.is_nan err then Printf.printf ", round trip %.2e\n" !rt
          else
            Printf.printf ", max err vs naive %.2e, round trip %.2e\n" err !rt;
          Printf.printf "inner schedule: %s, parallel: %b\n"
            (Spiral_fft.Rfft2d.schedule t)
            (Spiral_fft.Rfft2d.parallel t);
          with_trace trace p (fun () ->
              Spiral_fft.Rfft2d.forward_into t ~src:x ~dst:s);
          write_metrics metrics;
          0)
  in
  let run_dft1d n p mu vec reps batch trace metrics =
    if n < 1 || batch < 1 then begin
      Printf.eprintf "error: N and B must be >= 1\n";
      1
    end
    else if batch > 1 then run_batch n p mu vec reps batch trace metrics
    else
      (* the library API dispatches to Bluestein for sizes with large
         prime factors, so `run` works for any N *)
      Spiral_fft.Dft.with_plan ~threads:p ~mu ~vec n (fun t ->
          let x = Cvec.random n in
          let y = Cvec.create n in
          Spiral_fft.Dft.execute_into t ~src:x ~dst:y;
          let err =
            if n <= 4096 then Cvec.max_abs_diff y (Naive_dft.dft x) else nan
          in
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            Spiral_fft.Dft.execute_into t ~src:x ~dst:y
          done;
          let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
          let nf = float_of_int n in
          Printf.printf "DFT_%d threads=%d: %.3f us/transform, %.0f \
                         pseudo-Mflop/s" n
            (Spiral_fft.Dft.threads t)
            (dt *. 1e6)
            (5.0 *. nf *. (log nf /. log 2.0) /. dt /. 1e6);
          if Float.is_nan err then print_newline ()
          else Printf.printf ", max err vs naive %.2e\n" err;
          print_string (Spiral_fft.Dft.description t);
          (* surface degradations: a run that survived worker failures by
             retrying or falling back sequentially is correct but not the
             performance the plan promises.  Informational counters
             (barrier elisions, fused passes, wisdom skips) are not
             degradations and stay silent here. *)
          let degradation k =
            List.mem k
              [
                "barrier.timeout"; "par_exec.retry";
                "par_exec.sequential_fallback"; "pool.deadlock"; "pool.rebuild";
              ]
          in
          let fb = Counters.get "engine.seq_fallback" in
          if fb > 0 then
            Printf.printf
              "note: %d plan(s) fell back to the sequential formula (size \
               or divisibility ruled out the requested thread count)\n"
              fb;
          (match
             List.filter (fun (k, _) -> degradation k) (Counters.snapshot ())
           with
          | [] -> ()
          | cs ->
              Printf.printf "degradations:";
              List.iter (fun (k, v) -> Printf.printf " %s=%d" k v) cs;
              print_newline ());
          with_trace trace
            (Spiral_fft.Dft.threads t)
            (fun () -> Spiral_fft.Dft.execute_into t ~src:x ~dst:y);
          write_metrics metrics;
          0)
  in
  let run spec variant p mu vec reps batch trace metrics resident
      resident_idle spin_limit paranoid =
    apply_smp_knobs resident resident_idle spin_limit;
    apply_paranoid paranoid;
    match int_of_string_opt spec with
    | Some n -> run_dft1d n p mu vec reps batch trace metrics
    | None -> (
        match Spiral_fft.Problem.of_string spec with
        | None ->
            Printf.eprintf
              "error: %S is neither a size nor a problem descriptor \
               (expected e.g. 4096, dft[4096]f, dft2d[512x512]f, \
               rdft2d[64x64]f)\n"
              spec;
            1
        | Some problem -> (
            match
              (Spiral_fft.Problem.kind problem,
               Spiral_fft.Problem.direction problem)
            with
            | Spiral_fft.Problem.Dft, Spiral_fft.Problem.Forward ->
                let dims = Spiral_fft.Problem.dims problem in
                let vec' =
                  if Spiral_fft.Problem.vec problem >= 2 then
                    `Nu (Spiral_fft.Problem.vec problem)
                  else vec
                in
                run_dft1d dims.(0) p mu vec' reps
                  (max batch (Spiral_fft.Problem.batch problem))
                  trace metrics
            | Spiral_fft.Problem.Dft2d, _ ->
                run_dft2d problem variant p mu reps trace metrics
            | Spiral_fft.Problem.Rdft2d, _ ->
                run_rdft2d problem variant p mu reps trace metrics
            | _ ->
                Printf.eprintf
                  "error: `run` executes dft, dft2d and rdft2d problems; \
                   %s is served by `spiralgen serve`\n"
                  spec;
                1))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute on this host and verify.  Takes a plain size N \
          (DFT_N) or a problem descriptor: dft2d[RxC]f runs the \
          row/column-parallel 2-D engine (see --variant), rdft2d[RxC]f \
          the real-input 2-D transform, dft2d[RxC]fxB a batch of B \
          spectra through Engine.execute_many.")
    Term.(
      const run $ problem_arg $ variant_arg $ p_arg $ mu_arg
      $ vec_arg ~default:`Off $ reps_arg $ batch_arg $ trace_arg
      $ metrics_arg $ resident_arg $ resident_idle_arg $ spin_limit_arg
      $ paranoid_arg)

let cmd_search =
  let run n machine =
    let measure t =
      (Simulate.run machine Simulate.Seq (Plan.of_formula (Ruletree.expand t)))
        .Simulate.cycles
    in
    let tree, cycles = Spiral_search.Dp.search ~measure n in
    Printf.printf "best ruletree for DFT_%d on %s:\n  %s\n  (%.0f simulated cycles)\n"
      n machine.Machine.name (Ruletree.to_string tree) cycles;
    0
  in
  Cmd.v (Cmd.info "search" ~doc:"DP-autotune a ruletree on a machine model")
    Term.(const run $ n_arg $ machine_arg)

let cmd_simulate =
  let run n p mu machine =
    match derive_plan ~p ~mu n with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok f ->
        let plan = Plan.of_formula f in
        let backend = if p > 1 then Simulate.Pooled p else Simulate.Seq in
        let r = Simulate.run machine backend plan in
        Printf.printf "%s, DFT_%d, p=%d:\n" machine.Machine.name n p;
        Printf.printf "  %.0f cycles = %.2f us, %.0f pseudo-Mflop/s\n"
          r.Simulate.cycles (r.Simulate.seconds *. 1e6) r.Simulate.pseudo_mflops;
        Printf.printf "  L1 misses %d, L2 misses %d, coherence events %d, false sharing %d\n"
          r.Simulate.l1_misses r.Simulate.l2_misses r.Simulate.coherence_events
          r.Simulate.false_sharing;
        Printf.printf "  per-core busy cycles: %s\n"
          (String.concat " "
             (Array.to_list
                (Array.map (Printf.sprintf "%.0f") r.Simulate.per_core_cycles)));
        0
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate on a modeled machine")
    Term.(const run $ n_arg $ p_arg $ mu_arg $ machine_arg)

(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let cmd_serve =
  let run socket threads mu max_pending max_per_client max_conns max_plans
      pool_timeout send_timeout warm paranoid =
    apply_paranoid paranoid;
    let warm =
      List.filter (fun s -> s <> "")
        (List.map String.trim (String.split_on_char ',' warm))
    in
    let cfg = Spiral_service.Server.default_config ~socket_path:socket () in
    let cfg =
      {
        cfg with
        Spiral_service.Server.threads;
        mu;
        max_pending;
        max_per_client;
        max_conns;
        max_plans;
        pool_timeout;
        send_timeout;
        warm;
      }
    in
    match Spiral_service.Server.start cfg with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot bind %s: %s\n" socket (Unix.error_message e);
        1
    | server ->
        let stop = Atomic.make false in
        let request_stop _ = Atomic.set stop true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
        Printf.printf "spiralgen: serving on %s (threads=%d, mu=%d)\n%!" socket
          threads mu;
        if warm <> [] then begin
          let ok = Counters.get "service.warm_plan"
          and bad = Counters.get "service.warm_fail" in
          Printf.printf "spiralgen: warmed %d plan(s)%s\n%!" ok
            (if bad = 0 then ""
             else Printf.sprintf " (%d descriptor(s) failed to plan)" bad)
        end;
        while not (Atomic.get stop) do
          Unix.sleepf 0.2
        done;
        Printf.printf "spiralgen: draining...\n%!";
        Spiral_service.Server.stop server;
        Printf.printf "spiralgen: stopped\n%!";
        0
  in
  let threads =
    Arg.(value & opt int 2 & info [ "p"; "threads" ] ~docv:"P"
         ~doc:"Worker count requests are planned for.")
  in
  let max_pending =
    Arg.(value & opt int 256 & info [ "max-pending" ] ~docv:"N"
         ~doc:"Admission queue bound; excess load is shed.")
  in
  let max_per_client =
    Arg.(value & opt int 32 & info [ "max-per-client" ] ~docv:"N"
         ~doc:"Per-client pending bound.")
  in
  let max_conns =
    Arg.(value & opt int 64 & info [ "max-conns" ] ~docv:"N"
         ~doc:"Concurrent connection cap; excess connects are rejected.")
  in
  let max_plans =
    Arg.(value & opt int 64 & info [ "max-plans" ] ~docv:"N"
         ~doc:"Resident compiled plans before LRU eviction.")
  in
  let pool_timeout =
    Arg.(value & opt float 5.0 & info [ "pool-timeout" ] ~docv:"SECONDS"
         ~doc:"Bound on every parallel wait.")
  in
  let send_timeout =
    Arg.(value & opt float 1.0 & info [ "send-timeout" ] ~docv:"SECONDS"
         ~doc:"Bound on any one reply write; a client that stops reading \
               is disconnected.")
  in
  let warm =
    Arg.(value & opt string "" & info [ "warm" ] ~docv:"DESCS"
         ~doc:"Comma-separated problem descriptors (e.g. \
               'dft[1024]f,rfft[512]f') planned at boot, before the \
               socket accepts — the first request for a warmed transform \
               skips derivation and plan-cache population.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the resident FFT daemon on a Unix-domain socket")
    Term.(
      const run $ socket_arg $ threads $ mu_arg $ max_pending $ max_per_client
      $ max_conns $ max_plans $ pool_timeout $ send_timeout $ warm
      $ paranoid_arg)

let cmd_client =
  let run socket op descriptor deadline_ms count tenant seed =
    let open Spiral_service in
    match Client.connect socket with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "error: cannot connect to %s: %s\n" socket
          (Unix.error_message e);
        1
    | c -> (
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        try
          if tenant <> "" then ignore (Client.hello c tenant);
          match op with
          | "ping" ->
              let t0 = Unix.gettimeofday () in
              let r = Client.ping c in
              Printf.printf "%s (%.1f us)\n" r.Protocol.message
                ((Unix.gettimeofday () -. t0) *. 1e6);
              0
          | "stats" ->
              print_string (Client.stats c);
              0
          | "info" ->
              let r = Client.info c descriptor in
              if r.Protocol.status = Protocol.Ok then begin
                Printf.printf "%s: %s\n" descriptor r.Protocol.message;
                0
              end
              else begin
                Printf.eprintf "error: %s: %s\n"
                  (Protocol.status_to_string r.Protocol.status)
                  r.Protocol.message;
                1
              end
          | "exec" ->
              let r = Client.info c descriptor in
              if r.Protocol.status <> Protocol.Ok then begin
                Printf.eprintf "error: %s: %s\n"
                  (Protocol.status_to_string r.Protocol.status)
                  r.Protocol.message;
                1
              end
              else begin
                let in_floats = Scanf.sscanf r.Protocol.message "in=%d out=%d"
                    (fun i _ -> i)
                in
                let rng = Random.State.make [| seed |] in
                let failures = ref 0 in
                for i = 1 to count do
                  let x =
                    Array.init in_floats (fun _ ->
                        Random.State.float rng 2.0 -. 1.0)
                  in
                  let t0 = Unix.gettimeofday () in
                  let reply = Client.exec c ~deadline_ms ~descriptor x in
                  let us = (Unix.gettimeofday () -. t0) *. 1e6 in
                  match reply.Protocol.status with
                  | Protocol.Ok ->
                      Printf.printf "%d: ok, %d float64s out, %.1f us\n" i
                        (Array.length reply.Protocol.payload) us
                  | s ->
                      incr failures;
                      Printf.printf "%d: %s: %s (%.1f us)\n" i
                        (Protocol.status_to_string s) reply.Protocol.message us
                done;
                if !failures = 0 then 0 else 1
              end
          | s ->
              Printf.eprintf "error: unknown op %s (exec|ping|info|stats)\n" s;
              1
        with Client.Disconnected ->
          Printf.eprintf "error: server closed the connection\n";
          1)
  in
  let op_arg =
    Arg.(value & opt string "exec" & info [ "op" ] ~docv:"OP"
         ~doc:"Operation: exec, ping, info, or stats.")
  in
  let desc_arg =
    Arg.(value & pos 0 string "dft[1024]f" & info [] ~docv:"DESC"
         ~doc:"Problem descriptor, e.g. dft[1024]f or dft2d[16x16]f.")
  in
  let deadline_arg =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Per-request deadline in milliseconds (0 = none).")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N"
         ~doc:"Number of exec requests to send.")
  in
  let tenant_arg =
    Arg.(value & opt string "" & info [ "tenant" ] ~docv:"NAME"
         ~doc:"Identify as this tenant before sending requests.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Payload PRNG seed.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Talk to a running daemon")
    Term.(
      const run $ socket_arg $ op_arg $ desc_arg $ deadline_arg $ count_arg
      $ tenant_arg $ seed_arg)

let () =
  let info =
    Cmd.info "spiralgen" ~version:"1.0"
      ~doc:"FFT program generation for shared memory (SC 2006 reproduction)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            cmd_formula; cmd_generate; cmd_codegen; cmd_run; cmd_search;
            cmd_simulate; cmd_serve; cmd_client;
          ]))
