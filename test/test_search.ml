open Spiral_util
open Spiral_rewrite
open Spiral_search
open Spiral_sim

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let sim_measure = Timer.measure_sim Machine.core_duo Simulate.Seq

let test_dp_valid_tree () =
  let tree, cost = Dp.search ~measure:sim_measure 256 in
  check ci "size" 256 (Ruletree.size tree);
  Ruletree.validate tree;
  check cb "positive cost" true (cost > 0.0)

let test_dp_beats_or_ties_standard_trees () =
  let memo = Hashtbl.create 64 in
  let _, best = Dp.search ~memo ~measure:sim_measure 1024 in
  check cb "<= mixed radix" true (best <= sim_measure (Ruletree.mixed_radix 1024));
  check cb "<= balanced" true (best <= sim_measure (Ruletree.balanced 1024));
  check cb "<= right radix-2" true
    (best <= sim_measure (Ruletree.right_expanded ~radix:2 1024))

let test_dp_memo_reuse () =
  let memo = Hashtbl.create 64 in
  let _ = Dp.search ~memo ~measure:sim_measure 512 in
  let before = Hashtbl.length memo in
  (* all divisors of 512 solved already: searching 256 must be free *)
  let calls = ref 0 in
  let counting t = incr calls; sim_measure t in
  let _ = Dp.search ~memo ~measure:counting 256 in
  check ci "no new measurements" 0 !calls;
  check ci "memo unchanged" before (Hashtbl.length memo)

let test_dp_non_power_of_two () =
  let tree, _ = Dp.search ~measure:sim_measure 360 in
  check ci "size 360" 360 (Ruletree.size tree);
  Ruletree.validate tree

let test_dp_prime_rejected () =
  try
    ignore (Dp.search ~measure:sim_measure 37);
    Alcotest.fail "prime beyond leaf_max must fail"
  with Invalid_argument _ -> ()

let test_dp_parallel () =
  let measure_formula f =
    (Simulate.run Machine.core_duo (Simulate.Pooled 2)
       (Spiral_codegen.Plan.of_formula f))
      .Simulate.cycles
  in
  match
    Dp.search_parallel ~p:2 ~mu:4 ~measure_formula ~measure:sim_measure 4096
  with
  | None -> Alcotest.fail "split must exist for 2^12"
  | Some (tree, cost) ->
      check ci "tree size" 4096 (Ruletree.size tree);
      check cb "cost positive" true (cost > 0.0);
      (match tree with
      | Ruletree.Ct (l, r) ->
          check ci "pmu | m" 0 (Ruletree.size l mod 8);
          check ci "pmu | n" 0 (Ruletree.size r mod 8)
      | Leaf _ -> Alcotest.fail "must be a split")

let test_dp_parallel_no_split () =
  match
    Dp.search_parallel ~p:4 ~mu:4 ~measure_formula:(fun _ -> 0.0)
      ~measure:sim_measure 64
  with
  | None -> ()
  | Some _ -> Alcotest.fail "(pmu)^2 = 256 > 64: no valid split"

let test_evolve () =
  let t, c = Evolve.search ~measure:sim_measure 512 in
  check ci "size" 512 (Ruletree.size t);
  Ruletree.validate t;
  (* never worse than the seeds it starts from *)
  check cb "no worse than mixed radix" true
    (c <= sim_measure (Ruletree.mixed_radix 512))

let test_evolve_deterministic () =
  let p = { Evolve.default_params with seed = 42 } in
  let a = Evolve.search ~params:p ~measure:sim_measure 256 in
  let b = Evolve.search ~params:p ~measure:sim_measure 256 in
  check cb "same result" true (fst a = fst b)

let test_plan_cache_roundtrip () =
  let c = Plan_cache.create () in
  let k1 = { Plan_cache.kind = "dft"; n = 1024; p = 2; mu = 4; vec = 0; machine = "core duo" } in
  let k2 = { Plan_cache.kind = "dft"; n = 512; p = 1; mu = 4; vec = 0; machine = "host" } in
  Plan_cache.add c k1 (Ruletree.mixed_radix 1024);
  Plan_cache.add c k2 (Ruletree.balanced 512);
  check ci "two entries" 2 (Plan_cache.size c);
  let file = Filename.temp_file "spiral_cache" ".txt" in
  Plan_cache.save c file;
  let c' = Plan_cache.load file in
  Sys.remove file;
  check ci "loaded size" 2 (Plan_cache.size c');
  (* keys are stored with escaped machine names *)
  let k1' = { k1 with machine = "core_duo" } in
  check cb "entry 1" true
    (Plan_cache.find c' k1' = Some (Ruletree.mixed_radix 1024));
  check cb "missing key" true
    (Plan_cache.find c' { k1' with n = 2048 } = None)

let test_plan_cache_unescaped_lookup () =
  (* regression: find must canonicalize the machine name like add does *)
  let c = Plan_cache.create () in
  let k = { Plan_cache.kind = "dft"; n = 64; p = 2; mu = 4; vec = 0; machine = "core duo" } in
  Plan_cache.add c k (Ruletree.mixed_radix 64);
  check cb "raw key with spaces found" true
    (Plan_cache.find c k = Some (Ruletree.mixed_radix 64))

let test_plan_cache_find_or_add () =
  let c = Plan_cache.create () in
  let k = { Plan_cache.kind = "dft"; n = 64; p = 1; mu = 4; vec = 0; machine = "m" } in
  let calls = ref 0 in
  let make () = incr calls; Ruletree.mixed_radix 64 in
  let _ = Plan_cache.find_or_add c k make in
  let _ = Plan_cache.find_or_add c k make in
  check ci "made once" 1 !calls

let test_plan_cache_find_or_add_raising_generator () =
  (* a generator that raises must cache nothing, so a later retry works *)
  let c = Plan_cache.create () in
  let k = { Plan_cache.kind = "dft"; n = 64; p = 1; mu = 4; vec = 0; machine = "m" } in
  (try
     ignore (Plan_cache.find_or_add c k (fun () -> failwith "search blew up"));
     Alcotest.fail "generator exception swallowed"
   with Failure _ -> ());
  check ci "nothing cached after raise" 0 (Plan_cache.size c);
  let calls = ref 0 in
  let t =
    Plan_cache.find_or_add c k (fun () -> incr calls; Ruletree.mixed_radix 64)
  in
  check cb "retry populates the entry" true (t = Ruletree.mixed_radix 64);
  check ci "generator re-ran" 1 !calls

(* -- wisdom persistence: crash safety and corruption tolerance -------- *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = go [] in
  close_in ic;
  lines

let entry n = { Plan_cache.kind = "dft"; n; p = 1; mu = 4; vec = 0; machine = "test" }

let cache_of sizes =
  let c = Plan_cache.create () in
  List.iter (fun n -> Plan_cache.add c (entry n) (Ruletree.mixed_radix n)) sizes;
  c

let test_plan_cache_empty_and_blank () =
  let file = Filename.temp_file "spiral_cache" ".txt" in
  write_file file "";
  check ci "empty file, strict" 0 (Plan_cache.size (Plan_cache.load file));
  write_file file "\n\n  \n";
  let c, r = Plan_cache.load_tolerant file in
  check ci "blank lines ignored" 0 (Plan_cache.size c);
  check ci "nothing skipped" 0 r.Plan_cache.skipped;
  Sys.remove file

let test_plan_cache_trailing_newlines () =
  let file = Filename.temp_file "spiral_cache" ".txt" in
  Plan_cache.save (cache_of [ 64; 128 ]) file;
  (* extra trailing newlines must not produce phantom or failed entries *)
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "\n\n";
  close_out oc;
  check ci "strict load" 2 (Plan_cache.size (Plan_cache.load file));
  let c, r = Plan_cache.load_tolerant file in
  check ci "tolerant load" 2 (Plan_cache.size c);
  check ci "no skips" 0 r.Plan_cache.skipped;
  Sys.remove file

let test_plan_cache_v1_compat () =
  (* headerless, checksum-free v1 files still load *)
  let file = Filename.temp_file "spiral_cache" ".txt" in
  write_file file
    (Printf.sprintf "64 1 4 host %s\n"
       (Ruletree.to_string (Ruletree.mixed_radix 64)));
  let c = Plan_cache.load file in
  check ci "one v1 entry" 1 (Plan_cache.size c);
  check cb "entry found" true
    (Plan_cache.find c { kind = "dft"; n = 64; p = 1; mu = 4; vec = 0; machine = "host" }
    = Some (Ruletree.mixed_radix 64));
  Sys.remove file

(* FNV-1a, duplicated from the implementation to forge legacy v2 lines *)
let fnv payload =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    payload;
  Printf.sprintf "%08x" !h

let test_plan_cache_v2_migration_roundtrip () =
  (* a v2-era file: checksummed lines without the kind field *)
  let file = Filename.temp_file "spiral_cache" ".txt" in
  let payload n =
    Printf.sprintf "%d 2 4 host %s" n (Ruletree.to_string (Ruletree.mixed_radix n))
  in
  write_file file
    (String.concat "\n"
       [ "# spiral-wisdom v2";
         fnv (payload 64) ^ " " ^ payload 64;
         fnv (payload 256) ^ " " ^ payload 256; "" ]);
  let c, r = Plan_cache.load_tolerant file in
  check ci "v2 entries load" 2 (Plan_cache.size c);
  check ci "none skipped" 0 r.Plan_cache.skipped;
  (* kind-less legacy keys default to dft *)
  let key kind n = { Plan_cache.kind; n; p = 2; mu = 4; vec = 0; machine = "host" } in
  check cb "defaults to dft kind" true
    (Plan_cache.find c (key "dft" 64) = Some (Ruletree.mixed_radix 64));
  check cb "not under another kind" true
    (Plan_cache.find c (key "wht" 64) = None);
  (* add a kinded entry and round-trip through the current format *)
  Plan_cache.add c (key "wht" 128) (Ruletree.mixed_radix 128);
  Plan_cache.save c file;
  (match read_lines file with
  | hdr :: _ -> check Alcotest.string "v4 header" "# spiral-wisdom v4" hdr
  | [] -> Alcotest.fail "empty saved file");
  let c' = Plan_cache.load file in
  check ci "all entries survive the rewrite" 3 (Plan_cache.size c');
  check cb "migrated dft entry" true
    (Plan_cache.find c' (key "dft" 256) = Some (Ruletree.mixed_radix 256));
  check cb "kinded entry roundtrips" true
    (Plan_cache.find c' (key "wht" 128) = Some (Ruletree.mixed_radix 128));
  Sys.remove file

let test_plan_cache_v3_migration () =
  (* a v3-era file: checksummed, kinded lines without the vec field.
     Loading must default vec to 0 and re-save in the v4 format. *)
  let file = Filename.temp_file "spiral_cache" ".txt" in
  let payload kind n =
    Printf.sprintf "%s %d 2 4 host %s" kind n
      (Ruletree.to_string (Ruletree.mixed_radix n))
  in
  write_file file
    (String.concat "\n"
       [ "# spiral-wisdom v3";
         fnv (payload "dft" 64) ^ " " ^ payload "dft" 64;
         fnv (payload "wht" 256) ^ " " ^ payload "wht" 256; "" ]);
  let c, r = Plan_cache.load_tolerant file in
  check ci "v3 entries load" 2 (Plan_cache.size c);
  check ci "none skipped" 0 r.Plan_cache.skipped;
  let key ?(vec = 0) kind n =
    { Plan_cache.kind; n; p = 2; mu = 4; vec; machine = "host" }
  in
  check cb "legacy entry found under vec=0" true
    (Plan_cache.find c (key "dft" 64) = Some (Ruletree.mixed_radix 64));
  check cb "not under a vectorized key" true
    (Plan_cache.find c (key ~vec:4 "dft" 64) = None);
  (* add a vectorized entry and round-trip: the rewrite is v4 *)
  Plan_cache.add c (key ~vec:4 "dft" 1024) (Ruletree.balanced 1024);
  Plan_cache.save c file;
  (match read_lines file with
  | hdr :: _ -> check Alcotest.string "v4 header" "# spiral-wisdom v4" hdr
  | [] -> Alcotest.fail "empty saved file");
  let c' = Plan_cache.load file in
  check ci "all survive the rewrite" 3 (Plan_cache.size c');
  check cb "migrated scalar entry" true
    (Plan_cache.find c' (key "wht" 256) = Some (Ruletree.mixed_radix 256));
  check cb "vectorized entry roundtrips" true
    (Plan_cache.find c' (key ~vec:4 "dft" 1024) = Some (Ruletree.balanced 1024));
  check cb "scalar and vectorized keys stay distinct" true
    (Plan_cache.find c' (key "dft" 1024) = None);
  Sys.remove file

let test_dp_search_vector () =
  (* synthetic measures: scalar cost is flat, vectorization at nu divides
     the cost by nu but is only "lowerable" for nu = 2.  search_vector
     must pick nu = 2 and report its (cheaper) cost. *)
  let measure t = float_of_int (Ruletree.size t) in
  let measure_plan ~vec t =
    let base = float_of_int (Ruletree.size t) in
    match vec with
    | 0 -> Some base
    | 2 -> Some (base /. 2.0)
    | _ -> None
  in
  let nu, tree, cost = Dp.search_vector ~measure ~measure_plan 1024 in
  check ci "picks nu=2" 2 nu;
  check ci "tree size" 1024 (Ruletree.size tree);
  Ruletree.validate tree;
  check cb "vector cost is the halved one" true (cost = 512.0);
  (* when lowering always fails, the scalar candidate must win *)
  let nu0, _, cost0 =
    Dp.search_vector
      ~measure_plan:(fun ~vec t ->
        if vec = 0 then Some (float_of_int (Ruletree.size t)) else None)
      ~measure 256
  in
  check ci "falls back to scalar" 0 nu0;
  check cb "scalar cost" true (cost0 = 256.0);
  (* no measurable candidate at all is a caller error *)
  try
    ignore
      (Dp.search_vector ~measure ~measure_plan:(fun ~vec:_ _ -> None) 64);
    Alcotest.fail "must reject when nothing measures"
  with Invalid_argument _ -> ()

let test_plan_cache_salvage_corrupted () =
  let file = Filename.temp_file "spiral_cache" ".txt" in
  Plan_cache.save (cache_of [ 64; 128; 256 ]) file;
  (match read_lines file with
  | hdr :: e1 :: e2 :: e3 :: _ ->
      (* e1 stays valid; inject a garbage line; flip a payload byte of e2
         (checksum mismatch); truncate e3 mid-line *)
      let tampered = e2 ^ "x" in
      let truncated = String.sub e3 0 (String.length e3 / 2) in
      write_file file
        (String.concat "\n"
           [ hdr; e1; "total garbage, not an entry"; tampered; truncated ])
  | _ -> Alcotest.fail "expected header + 3 entries");
  (* strict load refuses *)
  (try
     ignore (Plan_cache.load file);
     Alcotest.fail "strict load accepted corruption"
   with Invalid_argument _ -> ());
  (* tolerant load salvages the valid entry and reports the rest *)
  let c, r = Plan_cache.load_tolerant file in
  check ci "salvaged" 1 (Plan_cache.size c);
  check ci "loaded" 1 r.Plan_cache.loaded;
  check ci "skipped" 3 r.Plan_cache.skipped;
  check ci "complaints" 3 (List.length r.Plan_cache.complaints);
  (* which entry survives depends on save order; whichever it is, it must
     be bit-intact *)
  check cb "surviving entry intact" true
    (List.exists
       (fun n -> Plan_cache.find c (entry n) = Some (Ruletree.mixed_radix n))
       [ 64; 128; 256 ]);
  Sys.remove file

let test_plan_cache_interrupted_save_atomic () =
  Fault.reset ();
  let file = Filename.temp_file "spiral_cache" ".txt" in
  Plan_cache.save (cache_of [ 64 ]) file;
  (* crash after writing one entry of the new wisdom *)
  Fault.arm ~site:"plan_cache.save" ~after:1 ~times:1 ();
  (try
     Plan_cache.save (cache_of [ 128; 256 ]) file;
     Alcotest.fail "injected crash did not fire"
   with Fault.Injected _ -> ());
  Fault.reset ();
  (* the previous wisdom file is fully intact *)
  let c = Plan_cache.load file in
  check ci "old wisdom intact" 1 (Plan_cache.size c);
  check cb "old entry readable" true
    (Plan_cache.find c (entry 64) = Some (Ruletree.mixed_radix 64));
  (* and a clean retry replaces it atomically *)
  Plan_cache.save (cache_of [ 128; 256 ]) file;
  check ci "new wisdom after retry" 2 (Plan_cache.size (Plan_cache.load file));
  Sys.remove file

let test_plan_cache_concurrent_writers () =
  (* several domains rewrite the same wisdom file while a reader loads
     it continuously.  The save path is write-temp-then-rename, so every
     load must observe some writer's complete file — never a torn or
     half-written one.  (Each writer uses a distinct temp name: the
     temp-file draw is per-call, so concurrent savers cannot clobber
     each other's scratch.) *)
  let file = Filename.temp_file "spiral_cache" ".txt" in
  let writers = 4 and rounds = 30 in
  (* writer w saves sizes [64 * 2^w .. +3 entries]: each writer's file
     content has a distinct, recognizable entry set *)
  let sizes_of w = List.init 4 (fun i -> 64 * (1 lsl w) * (i + 1)) in
  let caches = Array.init writers (fun w -> cache_of (sizes_of w)) in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let reads = ref 0 in
        while not (Atomic.get stop) do
          incr reads;
          match Plan_cache.load file with
          | c ->
              (* a complete file from any single writer has exactly 4
                 entries (or 0 before the first save lands) *)
              let n = Plan_cache.size c in
              if n <> 0 && n <> 4 then Atomic.incr torn
          | exception _ -> Atomic.incr torn
        done;
        !reads)
  in
  let ds =
    Array.init writers (fun w ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Plan_cache.save caches.(w) file
            done))
  in
  Array.iter Domain.join ds;
  Atomic.set stop true;
  let reads = Domain.join reader in
  check cb "reader made progress" true (reads > 0);
  check ci "no torn or unloadable file observed" 0 (Atomic.get torn);
  (* the survivor is one complete writer's wisdom, checksums intact *)
  let c = Plan_cache.load file in
  check ci "final file complete" 4 (Plan_cache.size c);
  let owner =
    List.init writers (fun w ->
        List.for_all
          (fun n -> Plan_cache.find c (entry n) <> None)
          (sizes_of w))
  in
  check cb "final file belongs to exactly one writer" true
    (List.exists (fun x -> x) owner);
  Sys.remove file

let suite =
  [
    Alcotest.test_case "dp: returns valid tree" `Quick test_dp_valid_tree;
    Alcotest.test_case "dp: beats standard trees" `Quick test_dp_beats_or_ties_standard_trees;
    Alcotest.test_case "dp: memo reuse" `Quick test_dp_memo_reuse;
    Alcotest.test_case "dp: non-power-of-two" `Quick test_dp_non_power_of_two;
    Alcotest.test_case "dp: oversized prime rejected" `Quick test_dp_prime_rejected;
    Alcotest.test_case "dp: parallel top split" `Quick test_dp_parallel;
    Alcotest.test_case "dp: no valid parallel split" `Quick test_dp_parallel_no_split;
    Alcotest.test_case "evolve: finds valid tree" `Quick test_evolve;
    Alcotest.test_case "evolve: deterministic for a seed" `Quick test_evolve_deterministic;
    Alcotest.test_case "plan cache: save/load roundtrip" `Quick test_plan_cache_roundtrip;
    Alcotest.test_case "plan cache: unescaped lookup" `Quick test_plan_cache_unescaped_lookup;
    Alcotest.test_case "plan cache: find_or_add" `Quick test_plan_cache_find_or_add;
    Alcotest.test_case "plan cache: raising generator caches nothing" `Quick
      test_plan_cache_find_or_add_raising_generator;
    Alcotest.test_case "plan cache: empty and blank files" `Quick
      test_plan_cache_empty_and_blank;
    Alcotest.test_case "plan cache: trailing newlines" `Quick
      test_plan_cache_trailing_newlines;
    Alcotest.test_case "plan cache: v1 format compatibility" `Quick
      test_plan_cache_v1_compat;
    Alcotest.test_case "plan cache: v2 migration roundtrip" `Quick
      test_plan_cache_v2_migration_roundtrip;
    Alcotest.test_case "plan cache: v3 migration (vec default)" `Quick
      test_plan_cache_v3_migration;
    Alcotest.test_case "dp: vector search" `Quick test_dp_search_vector;
    Alcotest.test_case "plan cache: salvages corrupted file" `Quick
      test_plan_cache_salvage_corrupted;
    Alcotest.test_case "plan cache: interrupted save is atomic" `Quick
      test_plan_cache_interrupted_save_atomic;
    Alcotest.test_case "plan cache: concurrent writers never tear" `Quick
      test_plan_cache_concurrent_writers;
  ]
