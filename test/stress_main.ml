(* Fault-injection stress harness (dune aliases @stress and the smoke
   subset run by @runtest).

   For each seed, arms every declared injection site in turn with a
   probabilistic fault schedule and drives the supervised executor
   (Par_exec.execute_safe) on a multicore Cooley-Tukey plan, checking
   every result against the O(n²) reference DFT: faults may cost a
   retry or a sequential fallback, never a wrong answer or a hang.
   Also exercises wisdom crash safety: an interrupted Plan_cache.save
   must leave the previous file intact, and a corrupted file must load
   tolerantly with the valid entries salvaged.

   Usage: stress_main.exe [--seeds 1,2,3] [--iters N] [--smoke] *)

open Spiral_util
open Spiral_rewrite
open Spiral_codegen
open Spiral_smp
open Spiral_search

let failures = ref 0

let checkf name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "stress FAIL: %s\n%!" name
  end

let timeout = 0.4

let mc_plan () =
  match
    Derive.multicore_dft ~p:4 ~mu:2
      (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
  with
  | Ok f -> Plan.of_formula f
  | Error e -> failwith (Derive.error_to_string e)

(* Repeatedly execute under a per-iteration fault schedule at [site];
   roughly half the iterations inject a fault somewhere in the parallel
   run.  The pool is reused across iterations, so healed state must keep
   working. *)
let site_scenario ~seed ~iters site =
  Fault.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout 4 (fun pool ->
      for i = 1 to iters do
        Fault.arm ~site ~prob:0.5 ~times:1 ~seed:((seed * 1000003) + i) ();
        let y = Cvec.create 256 in
        Par_exec.execute_safe pool ~timeout plan x y;
        Fault.disarm site;
        checkf
          (Printf.sprintf "site=%s seed=%d iter=%d: result matches naive DFT"
             site seed i)
          (Cvec.max_abs_diff y want < 1e-9)
      done);
  Fault.reset ()

let wisdom_scenario ~seed =
  Fault.reset ();
  let file = Filename.temp_file "spiral_stress_wisdom" ".txt" in
  let entry n = { Plan_cache.kind = "dft"; n; p = 1; mu = 4; vec = 0; machine = "stress" } in
  let cache_of sizes =
    let c = Plan_cache.create () in
    List.iter (fun n -> Plan_cache.add c (entry n) (Ruletree.mixed_radix n)) sizes;
    c
  in
  Plan_cache.save (cache_of [ 64 ]) file;
  (* crash at a seed-dependent point of the rewrite *)
  Fault.arm ~site:"plan_cache.save" ~after:(1 + (seed mod 3)) ~times:1 ();
  (match Plan_cache.save (cache_of [ 128; 256; 512; 1024 ]) file with
  | () -> checkf (Printf.sprintf "seed=%d: interrupted save raised" seed) false
  | exception Fault.Injected _ -> ());
  Fault.reset ();
  let c = Plan_cache.load file in
  checkf
    (Printf.sprintf "seed=%d: previous wisdom intact after crashed save" seed)
    (Plan_cache.size c = 1
    && Plan_cache.find c (entry 64) = Some (Ruletree.mixed_radix 64));
  (* corruption: garbage appended to a good file is salvaged around *)
  Plan_cache.save (cache_of [ 128; 256; 512 ]) file;
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "garbage line that is not wisdom\n";
  close_out oc;
  let _, r = Plan_cache.load_tolerant file in
  checkf
    (Printf.sprintf "seed=%d: tolerant load salvages 3, skips 1" seed)
    (r.Plan_cache.loaded = 3 && r.Plan_cache.skipped = 1);
  Sys.remove file

let run_seed ~iters seed =
  List.iter
    (site_scenario ~seed ~iters)
    [ "pool.worker"; "barrier.wait"; "par_exec.pass" ];
  wisdom_scenario ~seed

let () =
  let seeds = ref [ 1; 2; 3 ] and iters = ref 6 in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        seeds := [ 1 ];
        iters := 2;
        parse rest
    | "--seeds" :: s :: rest ->
        seeds := List.map int_of_string (String.split_on_char ',' s);
        parse rest
    | "--iters" :: n :: rest ->
        iters := int_of_string n;
        parse rest
    | arg :: _ -> failwith ("stress_main: unknown argument " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  Counters.reset ();
  List.iter (run_seed ~iters:!iters) !seeds;
  let counters =
    Counters.snapshot ()
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat " "
  in
  Printf.printf "stress: %d seed(s) x %d iter(s)/site, %d failure(s); %s\n%!"
    (List.length !seeds) !iters !failures
    (if counters = "" then "no degradations" else counters);
  if !failures > 0 then exit 1
