(* Test runner: one Alcotest suite per library. *)

let () =
  Alcotest.run "spiral-smp"
    [
      ("util", Test_util.suite);
      ("spl", Test_spl.suite);
      ("rules", Test_rules.suite);
      ("derive", Test_derive.suite);
      ("codegen", Test_codegen.suite);
      ("optimize", Test_optimize.suite);
      ("validate", Test_validate.suite);
      ("smp", Test_smp.suite);
      ("sim", Test_sim.suite);
      ("search", Test_search.suite);
      ("vector", Test_vector.suite);
      ("fft", Test_fft.suite);
      ("dft2d", Test_dft2d.suite);
      ("engine", Test_engine.suite);
      ("service", Test_service.suite);
      ("trace", Test_trace.suite);
    ]
