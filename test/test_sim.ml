open Spiral_rewrite
open Spiral_codegen
open Spiral_sim

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Cache model                                                         *)

let tiny_cache =
  { Machine.size_bytes = 4 * 64; line_bytes = 64; assoc = 2; hit_cycles = 1 }

let test_cache_hit_after_access () =
  let c = Cache.create tiny_cache in
  check cb "cold miss" false (Cache.access c 5);
  check cb "warm hit" true (Cache.access c 5)

let test_cache_lru_eviction () =
  (* 2 sets x 2 ways; lines 0,2,4 map to set 0: accessing all three evicts
     the least recently used (0) *)
  let c = Cache.create tiny_cache in
  ignore (Cache.access c 0);
  ignore (Cache.access c 2);
  ignore (Cache.access c 4);
  check cb "0 evicted" false (Cache.access c 0);
  (* 2 was LRU after the miss on 0 installed it -> now 4 or 2 evicted;
     after re-accessing 0, line 4 must still be resident (MRU before 0) *)
  check cb "4 resident" true (Cache.access c 4)

let test_cache_lru_touch () =
  let c = Cache.create tiny_cache in
  ignore (Cache.access c 0);
  ignore (Cache.access c 2);
  ignore (Cache.access c 0);
  (* touch 0 *)
  ignore (Cache.access c 4);
  (* evicts 2, not 0 *)
  check cb "0 survives (recently used)" true (Cache.access c 0);
  check cb "2 evicted" false (Cache.access c 2)

let test_cache_invalidate () =
  let c = Cache.create tiny_cache in
  ignore (Cache.access c 7);
  Cache.invalidate c 7;
  check cb "gone" false (Cache.access c 7);
  (* invalidating an absent line is a no-op *)
  Cache.invalidate c 1000

let test_cache_sets_isolated () =
  (* lines in different sets do not evict each other *)
  let c = Cache.create tiny_cache in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1);
  ignore (Cache.access c 3);
  ignore (Cache.access c 5);
  check cb "set 0 untouched" true (Cache.access c 0)

let test_cache_stats () =
  let c = Cache.create tiny_cache in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 1);
  let hits, misses = Cache.stats c in
  check ci "hits" 1 hits;
  check ci "misses" 2 misses;
  Cache.clear c;
  check cb "cleared" false (Cache.access c 0)

(* ------------------------------------------------------------------ *)
(* Machine descriptors                                                 *)

let test_machines_mu () =
  List.iter
    (fun m -> check ci (m.Machine.name ^ " mu") 4 (Machine.mu m))
    Machine.all;
  check ci "four machines" 4 (List.length Machine.all)

let test_machines_cores () =
  check ci "core duo" 2 Machine.core_duo.Machine.cores;
  check ci "pentium d" 2 Machine.pentium_d.Machine.cores;
  check ci "opteron" 4 Machine.opteron.Machine.cores;
  check ci "xeon" 4 Machine.xeon_mp.Machine.cores;
  check cb "core duo shares L2" true Machine.core_duo.Machine.l2_shared;
  check cb "opteron private L2" false Machine.opteron.Machine.l2_shared

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)

let mc_plan p mu n =
  let half =
    (* balanced power-of-two split *)
    let rec go m = if m * m >= n then m else go (2 * m) in
    go (p * mu)
  in
  match
    Derive.multicore_dft ~p ~mu
      (Ruletree.Ct (Ruletree.mixed_radix half, Ruletree.mixed_radix (n / half)))
  with
  | Ok f -> Plan.of_formula f
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let seq_plan n = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n))

let test_sim_deterministic () =
  let m = Machine.core_duo in
  let plan = mc_plan 2 4 1024 in
  let a = Simulate.run m (Pooled 2) plan and b = Simulate.run m (Pooled 2) plan in
  check (Alcotest.float 0.0) "same cycles" a.Simulate.cycles b.Simulate.cycles;
  check ci "same misses" a.Simulate.l1_misses b.Simulate.l1_misses

let test_sim_no_false_sharing_multicore () =
  (* Definition 1, validated dynamically on every machine model *)
  List.iter
    (fun m ->
      let p = m.Machine.cores and mu = Machine.mu m in
      let plan = mc_plan p mu 4096 in
      let r = Simulate.run m (Pooled p) plan in
      check ci (m.Machine.name ^ " false sharing") 0 r.Simulate.false_sharing)
    Machine.all

let test_sim_cyclic_false_sharing () =
  (* the cyclic-1 schedule writes neighbouring cache lines from different
     cores: false sharing must be detected *)
  let m = Machine.core_duo in
  let plan = mc_plan 2 4 1024 in
  let r =
    Simulate.run m ~schedule:(Spiral_smp.Par_exec.Cyclic 1) (Pooled 2) plan
  in
  check cb "false sharing > 0" true (r.Simulate.false_sharing > 0);
  check cb "coherence traffic > 0" true (r.Simulate.coherence_events > 0)

let test_sim_parallel_speedup_midsize () =
  let m = Machine.core_duo in
  let rs = Simulate.run m Seq (seq_plan 4096) in
  let rp = Simulate.run m (Pooled 2) (mc_plan 2 4 4096) in
  check cb "pooled faster at 2^12" true
    (rp.Simulate.pseudo_mflops > rs.Simulate.pseudo_mflops)

let test_sim_forkjoin_overhead_small () =
  (* thread startup dominates small transforms: fork-join must lose to
     sequential at 2^6 (why FFTW does not thread small sizes) *)
  let m = Machine.core_duo in
  let rs = Simulate.run m Seq (seq_plan 64) in
  let rf = Simulate.run m (ForkJoin 2) (mc_plan 2 2 64) in
  check cb "fork-join slower at 2^6" true
    (rf.Simulate.pseudo_mflops < rs.Simulate.pseudo_mflops)

let test_sim_pooled_beats_forkjoin_small () =
  let m = Machine.core_duo in
  let plan = mc_plan 2 4 1024 in
  let rp = Simulate.run m (Pooled 2) plan in
  let rf = Simulate.run m (ForkJoin 2) plan in
  check cb "pooling wins at small n" true
    (rp.Simulate.pseudo_mflops > rf.Simulate.pseudo_mflops)

let test_sim_load_balance () =
  let m = Machine.opteron in
  let plan = mc_plan 4 4 4096 in
  let r = Simulate.run m (Pooled 4) plan in
  let mx = Array.fold_left max 0.0 r.Simulate.per_core_cycles in
  let mn = Array.fold_left min infinity r.Simulate.per_core_cycles in
  check cb "cores within 15%" true ((mx -. mn) /. mx < 0.15)

let test_sim_seq_uses_one_core () =
  let m = Machine.opteron in
  let r = Simulate.run m Seq (seq_plan 1024) in
  check cb "only core 0 busy" true
    (r.Simulate.per_core_cycles.(1) = 0.0
     && r.Simulate.per_core_cycles.(0) > 0.0)

let test_sim_cache_size_effect () =
  (* an out-of-cache transform must have more L2 misses per point than an
     in-cache one *)
  let m = Machine.core_duo in
  let small = Simulate.run m Seq (seq_plan 1024) in
  let large = Simulate.run m Seq (seq_plan (1 lsl 18)) in
  let rate r n = float_of_int r.Simulate.l2_misses /. float_of_int n in
  check cb "miss rate grows" true (rate large (1 lsl 18) > rate small 1024);
  check cb "pmflops drop" true
    (large.Simulate.pseudo_mflops < small.Simulate.pseudo_mflops)

let test_sim_warm_vs_cold () =
  let m = Machine.core_duo in
  let plan = seq_plan 1024 in
  let warm = Simulate.run ~warm:true m Seq plan in
  let cold = Simulate.run ~warm:false m Seq plan in
  (* 1024 complex fit in L2: warm run must be faster *)
  check cb "warm faster" true (warm.Simulate.cycles < cold.Simulate.cycles)

let test_sim_explicit_perms_slower () =
  (* the six-step with explicit transpositions pays extra memory sweeps *)
  match Derive.six_step_dft ~p:2 ~mu:4 ~m:64 ~n:64 with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let m = Machine.core_duo in
      let merged = Simulate.run m (Pooled 2) (Plan.of_formula f) in
      let explicit =
        Simulate.run m (Pooled 2) (Plan.of_formula ~explicit_data:true f)
      in
      check cb "merging wins" true (merged.Simulate.cycles < explicit.Simulate.cycles)

let suite =
  [
    Alcotest.test_case "cache: hit after install" `Quick test_cache_hit_after_access;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache: LRU touch order" `Quick test_cache_lru_touch;
    Alcotest.test_case "cache: invalidate" `Quick test_cache_invalidate;
    Alcotest.test_case "cache: set isolation" `Quick test_cache_sets_isolated;
    Alcotest.test_case "cache: stats/clear" `Quick test_cache_stats;
    Alcotest.test_case "machines: mu = 4" `Quick test_machines_mu;
    Alcotest.test_case "machines: topology" `Quick test_machines_cores;
    Alcotest.test_case "sim: deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "sim: multicore CT has zero false sharing" `Quick
      test_sim_no_false_sharing_multicore;
    Alcotest.test_case "sim: cyclic schedule false-shares" `Quick
      test_sim_cyclic_false_sharing;
    Alcotest.test_case "sim: parallel speedup at midsize" `Quick
      test_sim_parallel_speedup_midsize;
    Alcotest.test_case "sim: fork-join overhead at small n" `Quick
      test_sim_forkjoin_overhead_small;
    Alcotest.test_case "sim: pooling beats fork-join" `Quick
      test_sim_pooled_beats_forkjoin_small;
    Alcotest.test_case "sim: load balance across cores" `Quick test_sim_load_balance;
    Alcotest.test_case "sim: sequential uses one core" `Quick test_sim_seq_uses_one_core;
    Alcotest.test_case "sim: cache size effect" `Quick test_sim_cache_size_effect;
    Alcotest.test_case "sim: warm vs cold" `Quick test_sim_warm_vs_cold;
    Alcotest.test_case "sim: explicit transposes cost more" `Quick
      test_sim_explicit_perms_slower;
  ]
