open Spiral_util
open Spiral_spl
open Spiral_rewrite
open Ruletree
open Spiral_codegen

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Codelets: every addressing path against the naive DFT.              *)

let cs = Codelet.make_scratch ()

let run_strided (c : Codelet.t) x =
  let r = c.radix in
  let y = Cvec.create r in
  c.strided cs x 0 1 y 0 1;
  y

let run_strided_rev (c : Codelet.t) x =
  (* feed the input reversed via stride -1, then un-reverse *)
  let r = c.radix in
  let y = Cvec.create r in
  c.strided cs x (r - 1) (-1) y (r - 1) (-1);
  y

let run_strided_u (c : Codelet.t) x =
  let r = c.radix in
  let y = Cvec.create r in
  c.strided_u cs x 0 y 0;
  y

let run_indexed (c : Codelet.t) x =
  let r = c.radix in
  let y = Cvec.create r in
  let idx = Array.init r (fun l -> l) in
  c.indexed cs x idx 0 y idx 0;
  y

let run_tw (c : Codelet.t) x tw =
  let r = c.radix in
  let y = Cvec.create r in
  c.strided_tw cs x 0 1 y 0 1 tw 0;
  y

let run_tw_u (c : Codelet.t) x tw =
  let r = c.radix in
  let y = Cvec.create r in
  c.strided_u_tw cs x 0 y 0 tw 0;
  y

let scale_vec x (d : Complex.t array) =
  let n = Cvec.length x in
  let y = Cvec.create n in
  for i = 0 to n - 1 do
    let z = Complex.mul (Cvec.get x i) d.(i) in
    Cvec.set y i z
  done;
  y

let codelet_sizes = [ 1; 2; 3; 4; 5; 6; 7; 8; 11; 16; 31; 32 ]

let test_codelet_strided () =
  List.iter
    (fun r ->
      let c = Codelet.dft r in
      let x = Cvec.random ~seed:r r in
      let want = Naive_dft.dft x in
      check cb (Printf.sprintf "dft%d" r) true
        (Cvec.max_abs_diff (run_strided c x) want < 1e-9);
      (* the monomorphized unit-stride fast path must agree exactly *)
      check cb
        (Printf.sprintf "dft%d unit" r)
        true
        (Cvec.max_abs_diff (run_strided_u c x) (run_strided c x) = 0.0))
    codelet_sizes

let test_codelet_negative_stride () =
  List.iter
    (fun r ->
      let c = Codelet.dft r in
      let x = Cvec.random ~seed:r r in
      (* reversing input and output with stride -1 computes the DFT of the
         reversed vector, scattered reversed *)
      let want =
        let rev = Cvec.create r in
        for i = 0 to r - 1 do
          Cvec.set rev i (Cvec.get x (r - 1 - i))
        done;
        let f = Naive_dft.dft rev in
        let out = Cvec.create r in
        for i = 0 to r - 1 do
          Cvec.set out (r - 1 - i) (Cvec.get f i)
        done;
        out
      in
      check cb (Printf.sprintf "dft%d rev" r) true
        (Cvec.max_abs_diff (run_strided_rev c x) want < 1e-9))
    [ 2; 3; 4; 8 ]

let test_codelet_indexed () =
  List.iter
    (fun r ->
      let c = Codelet.dft r in
      let x = Cvec.random ~seed:(r + 17) r in
      check cb (Printf.sprintf "dft%d idx" r) true
        (Cvec.max_abs_diff (run_indexed c x) (Naive_dft.dft x) < 1e-9))
    codelet_sizes

let test_codelet_indexed_scattered () =
  (* gather through a permutation *)
  let r = 4 in
  let c = Codelet.dft r in
  let x = Cvec.random ~seed:31 r in
  let perm = [| 2; 0; 3; 1 |] in
  let y = Cvec.create r in
  let id = Array.init r (fun l -> l) in
  c.indexed cs x perm 0 y id 0;
  let gathered = Cvec.create r in
  for l = 0 to r - 1 do
    Cvec.set gathered l (Cvec.get x perm.(l))
  done;
  check cb "permuted gather" true
    (Cvec.max_abs_diff y (Naive_dft.dft gathered) < 1e-10)

let test_codelet_twiddled () =
  List.iter
    (fun r ->
      let c = Codelet.dft r in
      let x = Cvec.random ~seed:(r + 5) r in
      let d = Array.init r (fun i -> Twiddle.omega (2 * r) i) in
      let tw = Array.make (2 * r) 0.0 in
      Array.iteri
        (fun i (z : Complex.t) ->
          tw.(2 * i) <- z.re;
          tw.((2 * i) + 1) <- z.im)
        d;
      let want = Naive_dft.dft (scale_vec x d) in
      check cb (Printf.sprintf "dft%d tw" r) true
        (Cvec.max_abs_diff (run_tw c x tw) want < 1e-9);
      check cb
        (Printf.sprintf "dft%d tw unit" r)
        true
        (Cvec.max_abs_diff (run_tw_u c x tw) (run_tw c x tw) = 0.0))
    codelet_sizes

let test_codelet_flops_sync () =
  (* the SPL cost model and the codelet implementation must agree *)
  List.iter
    (fun r ->
      check ci (Printf.sprintf "flops %d" r) (Cost.leaf_flops r)
        (Codelet.dft r).Codelet.flops)
    [ 1; 2; 3; 4; 5; 8; 16; 32 ]

let test_codelet_wht () =
  List.iter
    (fun r ->
      let c = Codelet.wht r in
      let x = Cvec.random ~seed:r r in
      let want = Cmatrix.apply (Semantics.to_matrix (Formula.WHT r)) x in
      check cb (Printf.sprintf "wht%d" r) true
        (Cvec.max_abs_diff (run_strided c x) want < 1e-9))
    [ 1; 2; 4; 8; 16; 32 ]

let test_codelet_copy () =
  let c = Codelet.copy 4 in
  let x = Cvec.random ~seed:2 4 in
  check cb "copy" true (Cvec.max_abs_diff (run_strided c x) x < 1e-15)

let test_codelet_bad_radix () =
  Alcotest.check_raises "radix 0"
    (Invalid_argument "Codelet.dft: radix 0 outside [1, 32]") (fun () ->
      ignore (Codelet.dft 0));
  Alcotest.check_raises "radix 33"
    (Invalid_argument "Codelet.dft: radix 33 outside [1, 32]") (fun () ->
      ignore (Codelet.dft 33))

(* ------------------------------------------------------------------ *)
(* IR and plans                                                        *)

let plan_matches_naive ?(tol_scale = 1e-6) ?explicit_data f =
  let n = Formula.dim f in
  let plan = Plan.of_formula ?explicit_data f in
  let x = Cvec.random ~seed:n n in
  let y = Cvec.create n in
  Plan.execute plan x y;
  Cvec.max_abs_diff y (Naive_dft.dft x) < tol_scale *. float_of_int n

let test_plan_trees () =
  List.iter
    (fun tree ->
      check cb (Ruletree.to_string tree) true
        (plan_matches_naive (Ruletree.expand tree)))
    [ Ruletree.Leaf 16;
      Ct (Leaf 2, Leaf 8);
      Ct (Ct (Leaf 2, Leaf 4), Ct (Leaf 8, Leaf 2));
      Ruletree.mixed_radix 512;
      Ruletree.balanced 720;
      Ruletree.random ~seed:21 480;
      Ruletree.right_expanded ~radix:4 1024;
      Ruletree.left_expanded ~radix:8 512 ]

let test_plan_multicore () =
  List.iter
    (fun (p, mu, m, n) ->
      let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.multicore_dft ~p ~mu tree with
      | Error e -> Alcotest.fail (Derive.error_to_string e)
      | Ok f -> check cb "multicore plan" true (plan_matches_naive f))
    [ (2, 2, 8, 8); (4, 4, 16, 32); (3, 2, 12, 12) ]

let test_plan_explicit_data () =
  match Derive.six_step_dft ~p:2 ~mu:2 ~m:8 ~n:8 with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      check cb "explicit passes correct" true (plan_matches_naive ~explicit_data:true f);
      let merged = Plan.of_formula f in
      let explicit = Plan.of_formula ~explicit_data:true f in
      check cb "merging reduces passes" true
        (Array.length merged.Plan.passes < Array.length explicit.Plan.passes);
      (* six-step: 3 explicit transpositions + 1 explicit twiddle pass +
         2 compute stages = 6 *)
      check ci "six-step explicit pass count" 6 (Array.length explicit.Plan.passes)

let test_plan_merging_pass_count () =
  (* 2-factor Cooley-Tukey merges to exactly 2 passes: the L, D factors
     disappear into gather/twiddle *)
  let plan = Plan.of_formula (Ruletree.expand (Ct (Leaf 8, Leaf 8))) in
  check ci "2 passes" 2 (Array.length plan.Plan.passes);
  (* pass 1 carries the twiddles *)
  check cb "twiddle merged" true (plan.Plan.passes.(1).Plan.tw <> None);
  check cb "no twiddle on pass 0" true (plan.Plan.passes.(0).Plan.tw = None)

let test_plan_strided_addressing () =
  let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix 4096)) in
  Array.iteri
    (fun k (p : Plan.pass) ->
      match p.Plan.addr with
      | Plan.Strided _ -> ()
      | Plan.Indexed _ -> Alcotest.failf "pass %d fell back to indexed" k)
    plan.Plan.passes

let test_plan_pure_perm () =
  (* a bare stride permutation compiles to a single merged data pass *)
  let f = Formula.Perm (Perm.L (16, 4)) in
  let plan = Plan.of_formula f in
  check ci "one pass" 1 (Array.length plan.Plan.passes);
  let x = Cvec.random ~seed:4 16 in
  let y = Cvec.create 16 in
  Plan.execute plan x y;
  check cb "applies sigma" true
    (Cvec.max_abs_diff y (Semantics.apply f x) < 1e-12)

let test_plan_pure_diag () =
  let f = Formula.twiddle 4 4 in
  let plan = Plan.of_formula f in
  let x = Cvec.random ~seed:8 16 in
  let y = Cvec.create 16 in
  Plan.execute plan x y;
  check cb "diag pass" true (Cvec.max_abs_diff y (Semantics.apply f x) < 1e-12)

let test_plan_perm_diag_chain () =
  (* data-only composition merges into one pass *)
  let f =
    Formula.compose
      [ Formula.l_perm 16 4; Formula.twiddle 4 4; Formula.l_perm 16 2 ]
  in
  let plan = Plan.of_formula f in
  check ci "merged to one pass" 1 (Array.length plan.Plan.passes);
  let x = Cvec.random ~seed:12 16 in
  let y = Cvec.create 16 in
  Plan.execute plan x y;
  check cb "semantics" true
    (Cvec.max_abs_diff y (Semantics.apply f x) < 1e-10)

let test_plan_wht () =
  match Derive.multicore_wht ~p:2 ~mu:2 ~m:8 ~n:8 with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Plan.of_formula f in
      let x = Cvec.random ~seed:3 64 in
      let y = Cvec.create 64 in
      Plan.execute plan x y;
      check cb "wht plan" true
        (Cvec.max_abs_diff y (Cmatrix.apply (Semantics.to_matrix (Formula.WHT 64)) x)
         < 1e-9)

let prop_plan_linear =
  QCheck.Test.make ~name:"compiled plans are linear" ~count:20
    QCheck.(int_range 2 64)
    (fun seed ->
      let tree = Ruletree.random ~seed 64 in
      let plan = Plan.of_formula (Ruletree.expand tree) in
      let x = Cvec.random ~seed 64 and y = Cvec.random ~seed:(seed + 99) 64 in
      let run v =
        let out = Cvec.create 64 in
        Plan.execute plan v out;
        out
      in
      Cvec.max_abs_diff (run (Cvec.add x y)) (Cvec.add (run x) (run y)) < 1e-8)

let prop_random_tree_plans =
  QCheck.Test.make ~name:"plans of random ruletrees match naive DFT" ~count:25
    QCheck.(pair (int_range 1 10000) (int_range 4 256))
    (fun (seed, n) ->
      (* sizes with a prime factor beyond the codelet range are rejected at
         planning time; skip them here *)
      QCheck.assume
        (List.for_all (fun f -> f <= Ruletree.leaf_max)
           (Int_util.prime_factors n));
      let tree = Ruletree.random ~seed n in
      (try Ruletree.validate tree with Invalid_argument _ -> QCheck.assume_fail ());
      plan_matches_naive (Ruletree.expand tree))

let test_ir_validate () =
  let ir = Ir.of_formula (Ruletree.expand (Ct (Leaf 4, Leaf 8))) in
  Ir.validate ir;
  check ci "total flops positive" (Ir.total_flops ir)
    (Plan.total_flops (Plan.of_ir ir))

let test_ir_unsupported () =
  (try
     ignore (Ir.of_formula (Formula.DFT 64));
     Alcotest.fail "DFT_64 leaf exceeds max radix"
   with Ir.Unsupported _ -> ());
  try
    ignore (Ir.of_formula (Formula.DirectSum [ Formula.DFT 2; Formula.DFT 2 ]));
    Alcotest.fail "general direct sums are unsupported"
  with Ir.Unsupported _ -> ()

let test_plan_execute_validation () =
  let plan = Plan.of_formula (Formula.DFT 4) in
  Alcotest.check_raises "short input"
    (Invalid_argument "Plan.execute: wrong vector length") (fun () ->
      Plan.execute plan (Cvec.create 3) (Cvec.create 4))

(* ------------------------------------------------------------------ *)
(* C emission                                                          *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let mc_plan_64 () =
  match Derive.multicore_dft ~p:2 ~mu:2 (Ct (Leaf 8, Leaf 8)) with
  | Ok f -> Plan.of_formula f
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let test_cemit_markers () =
  let plan = mc_plan_64 () in
  let omp = C_emit.to_c ~backend:`OpenMP plan in
  check cb "omp pragma" true (contains omp "#pragma omp parallel for");
  let pthr = C_emit.to_c ~backend:`Pthreads plan in
  check cb "pthread include" true (contains pthr "#include <pthread.h>");
  check cb "barrier" true (contains pthr "barrier_wait");
  let seq = C_emit.to_c ~backend:`None plan in
  check cb "no pragma in seq" false (contains seq "#pragma omp");
  check cb "self test" true (contains seq "max_abs_err")

let test_cemit_balanced_braces () =
  let src = C_emit.to_c (mc_plan_64 ()) in
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' then incr depth else if c = '}' then decr depth;
      if !depth < 0 then Alcotest.fail "unbalanced braces")
    src;
  check ci "balanced" 0 !depth

let test_cemit_size_limit () =
  let plan = Plan.of_formula (Formula.DFT 2) in
  ignore (C_emit.to_c plan);
  (* limit guard *)
  let big = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix 32768)) in
  try
    ignore (C_emit.to_c big);
    Alcotest.fail "should refuse n > limit"
  with Invalid_argument _ -> ()

let gcc_available =
  lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

let compile_and_run name src cflags =
  let dir = Filename.get_temp_dir_name () in
  let cfile = Filename.concat dir ("spiral_test_" ^ name ^ ".c") in
  let exe = Filename.concat dir ("spiral_test_" ^ name) in
  let oc = open_out cfile in
  output_string oc src;
  close_out oc;
  let rc =
    Sys.command
      (Printf.sprintf "gcc -O2 %s -o %s %s -lm > /dev/null 2>&1" cflags exe cfile)
  in
  if rc <> 0 then Alcotest.failf "gcc failed for %s" name;
  let rc = Sys.command (Printf.sprintf "%s > /dev/null 2>&1" exe) in
  check ci (name ^ " self-test exit code") 0 rc

let test_cemit_compile_seq () =
  if not (Lazy.force gcc_available) then ()
  else
    compile_and_run "seq"
      (C_emit.to_c (Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix 128))))
      ""

let test_cemit_compile_omp () =
  if not (Lazy.force gcc_available) then ()
  else compile_and_run "omp" (C_emit.to_c ~backend:`OpenMP (mc_plan_64 ())) "-fopenmp"

let test_cemit_compile_pthreads () =
  if not (Lazy.force gcc_available) then ()
  else
    compile_and_run "pthr" (C_emit.to_c ~backend:`Pthreads (mc_plan_64 ())) "-pthread"

let test_plan_clone_concurrent () =
  (* two domains execute clones of the same plan concurrently; results
     must match the original *)
  let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix 256)) in
  let x1 = Cvec.random ~seed:1 256 and x2 = Cvec.random ~seed:2 256 in
  let w1 = Cvec.create 256 and w2 = Cvec.create 256 in
  Plan.execute plan x1 w1;
  Plan.execute plan x2 w2;
  let c1 = Plan.clone plan and c2 = Plan.clone plan in
  let y1 = Cvec.create 256 and y2 = Cvec.create 256 in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to 50 do
          Plan.execute c1 x1 y1
        done)
  in
  for _ = 1 to 50 do
    Plan.execute c2 x2 y2
  done;
  Domain.join d;
  check cb "clone 1" true (Cvec.max_abs_diff y1 w1 = 0.0);
  check cb "clone 2" true (Cvec.max_abs_diff y2 w2 = 0.0)

let test_cemit_vectorized_formula () =
  (* vectorized formulas go through the same C backend *)
  match Derive.short_vector_dft ~nu:2 (Ct (Leaf 8, Leaf 8)) with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let src = C_emit.to_c (Plan.of_formula f) in
      check cb "self test present" true (contains src "max_abs_err");
      if Lazy.force gcc_available then compile_and_run "vec" src ""

let test_cemit_compile_pthreads_p4 () =
  if not (Lazy.force gcc_available) then ()
  else
    match
      Derive.multicore_dft ~p:4 ~mu:2
        (Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
    with
    | Error e -> Alcotest.fail (Derive.error_to_string e)
    | Ok f ->
        compile_and_run "pthr4"
          (C_emit.to_c ~backend:`Pthreads (Plan.of_formula f))
          "-pthread"

let test_cemit_compile_generic_radix () =
  if not (Lazy.force gcc_available) then ()
  else
    compile_and_run "gen"
      (C_emit.to_c (Plan.of_formula (Ruletree.expand (Ruletree.balanced 360))))
      ""

(* -- SIMD emission ----------------------------------------------------- *)

(* [gcc -mavx2 ...] may be unsupported (non-x86 hosts): probe each flag
   set with an empty translation unit before attempting the real build *)
let cflags_supported flags =
  Lazy.force gcc_available
  && Sys.command
       (Printf.sprintf
          "echo 'int main(void){return 0;}' | gcc -O2 %s -x c - -o /dev/null \
           > /dev/null 2>&1"
          flags)
     = 0

let vec_plan_64 () =
  match Derive.multicore_vector_dft ~p:2 ~mu:2 ~nu:2 (Ct (Leaf 8, Leaf 8)) with
  | Ok f -> Plan.of_formula f
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let test_cemit_simd_markers () =
  let plan = vec_plan_64 () in
  let avx = C_emit.to_c ~backend:`OpenMP ~simd:`AVX2 plan in
  check cb "immintrin" true (contains avx "immintrin.h");
  check cb "avx2 loads" true (contains avx "_mm256_loadu_pd");
  check cb "omp composes with simd" true (contains avx "#pragma omp parallel for");
  check cb "self test" true (contains avx "max_abs_err");
  let sse = C_emit.to_c ~simd:`SSE2 plan in
  check cb "emmintrin" true (contains sse "emmintrin.h");
  check cb "sse2 loads" true (contains sse "_mm_loadu_pd");
  let neon = C_emit.to_c ~simd:`NEON plan in
  check cb "arm_neon" true (contains neon "arm_neon.h");
  check cb "neon loads" true (contains neon "vld1q_f64");
  let gen = C_emit.to_c ~simd:`Generic plan in
  check cb "generic vector ext" true (contains gen "__attribute__((vector_size");
  check cb "no intrinsics headers in generic" false (contains gen "immintrin.h")

let test_cemit_compile_simd_avx2 () =
  if not (cflags_supported "-mavx2 -fopenmp") then ()
  else
    compile_and_run "avx2"
      (C_emit.to_c ~backend:`OpenMP ~simd:`AVX2 (vec_plan_64 ()))
      "-mavx2 -fopenmp"

let test_cemit_compile_simd_sse2 () =
  if not (cflags_supported "-msse2") then ()
  else compile_and_run "sse2" (C_emit.to_c ~simd:`SSE2 (vec_plan_64 ())) "-msse2"

let test_cemit_compile_simd_generic () =
  if not (Lazy.force gcc_available) then ()
  else compile_and_run "gvec" (C_emit.to_c ~simd:`Generic (vec_plan_64 ())) ""

let test_cemit_compile_simd_pthreads_large () =
  (* a bigger tandem: smp(2,4) x vec(2) for DFT_4096 under pthreads *)
  if not (cflags_supported "-mavx2 -pthread") then ()
  else
    match
      Derive.multicore_vector_dft ~p:2 ~mu:4 ~nu:2
        (Ct (Ruletree.mixed_radix 64, Ruletree.mixed_radix 64))
    with
    | Error e -> Alcotest.fail (Derive.error_to_string e)
    | Ok f ->
        compile_and_run "avx2pthr"
          (C_emit.to_c ~backend:`Pthreads ~simd:`AVX2 (Plan.of_formula f))
          "-mavx2 -pthread"

let suite =
  [
    Alcotest.test_case "codelets: strided" `Quick test_codelet_strided;
    Alcotest.test_case "codelets: negative stride" `Quick test_codelet_negative_stride;
    Alcotest.test_case "codelets: indexed" `Quick test_codelet_indexed;
    Alcotest.test_case "codelets: permuted gather" `Quick test_codelet_indexed_scattered;
    Alcotest.test_case "codelets: twiddled load" `Quick test_codelet_twiddled;
    Alcotest.test_case "codelets: flops = cost model" `Quick test_codelet_flops_sync;
    Alcotest.test_case "codelets: WHT" `Quick test_codelet_wht;
    Alcotest.test_case "codelets: copy" `Quick test_codelet_copy;
    Alcotest.test_case "codelets: radix bounds" `Quick test_codelet_bad_radix;
    Alcotest.test_case "plans: tree battery" `Quick test_plan_trees;
    Alcotest.test_case "plans: multicore formulas" `Quick test_plan_multicore;
    Alcotest.test_case "plans: explicit data passes" `Quick test_plan_explicit_data;
    Alcotest.test_case "plans: merging pass count" `Quick test_plan_merging_pass_count;
    Alcotest.test_case "plans: strided addressing" `Quick test_plan_strided_addressing;
    Alcotest.test_case "plans: pure permutation" `Quick test_plan_pure_perm;
    Alcotest.test_case "plans: pure diagonal" `Quick test_plan_pure_diag;
    Alcotest.test_case "plans: data-only chain merges" `Quick test_plan_perm_diag_chain;
    Alcotest.test_case "plans: WHT" `Quick test_plan_wht;
    QCheck_alcotest.to_alcotest prop_plan_linear;
    QCheck_alcotest.to_alcotest prop_random_tree_plans;
    Alcotest.test_case "IR: validate" `Quick test_ir_validate;
    Alcotest.test_case "IR: unsupported constructs" `Quick test_ir_unsupported;
    Alcotest.test_case "plans: execute validation" `Quick test_plan_execute_validation;
    Alcotest.test_case "C: backend markers" `Quick test_cemit_markers;
    Alcotest.test_case "C: balanced braces" `Quick test_cemit_balanced_braces;
    Alcotest.test_case "C: size limit" `Quick test_cemit_size_limit;
    Alcotest.test_case "C: compile+run sequential" `Slow test_cemit_compile_seq;
    Alcotest.test_case "C: compile+run OpenMP" `Slow test_cemit_compile_omp;
    Alcotest.test_case "C: compile+run pthreads" `Slow test_cemit_compile_pthreads;
    Alcotest.test_case "C: compile+run generic radix" `Slow test_cemit_compile_generic_radix;
    Alcotest.test_case "plans: clone for concurrency" `Quick test_plan_clone_concurrent;
    Alcotest.test_case "C: vectorized formula" `Slow test_cemit_vectorized_formula;
    Alcotest.test_case "C: pthreads p=4" `Slow test_cemit_compile_pthreads_p4;
    Alcotest.test_case "C: SIMD markers" `Quick test_cemit_simd_markers;
    Alcotest.test_case "C: compile+run AVX2+OpenMP" `Slow
      test_cemit_compile_simd_avx2;
    Alcotest.test_case "C: compile+run SSE2" `Slow test_cemit_compile_simd_sse2;
    Alcotest.test_case "C: compile+run generic SIMD" `Slow
      test_cemit_compile_simd_generic;
    Alcotest.test_case "C: compile+run AVX2+pthreads 4096" `Slow
      test_cemit_compile_simd_pthreads_large;
  ]
