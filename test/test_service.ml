(* Service layer: wire protocol, admission queue, and end-to-end daemon
   behavior — correctness per descriptor kind, structured error replies,
   deadlines, load shedding, tenant isolation, abrupt disconnects, and
   the in-process chaos soak. *)

open Spiral_util
open Spiral_service

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "spiral-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(threads = 2) ?(tweak = fun c -> c) f =
  let path = sock_path () in
  let cfg = Server.default_config ~socket_path:path () in
  let cfg = tweak { cfg with Server.threads } in
  let server = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Server.stop server)
    (fun () -> f path server)

let with_client path f =
  let c = Client.connect path in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let check_status msg expected got = Alcotest.(check string) msg expected got

let status_name (r : Protocol.reply) = Protocol.status_to_string r.status

(* ---- protocol ---- *)

let test_protocol_roundtrip () =
  let req : Protocol.request =
    {
      op = Protocol.Exec;
      id = 0xDEAD;
      deadline_ms = 1500;
      descriptor = "dft2d[16x16]f";
      payload = [| 1.5; -0.0; Float.min_float; 1e300; -3.25 |];
    }
  in
  (match Protocol.decode_request (Protocol.encode_request req) with
  | Error e -> Alcotest.failf "decode_request: %s" e
  | Ok got ->
      Alcotest.(check int) "id" req.id got.id;
      Alcotest.(check int) "deadline" req.deadline_ms got.deadline_ms;
      Alcotest.(check string) "descriptor" req.descriptor got.descriptor;
      Alcotest.(check bool) "op" true (got.op = Protocol.Exec);
      Alcotest.(check int) "payload length" 5 (Array.length got.payload);
      Array.iteri
        (fun i x ->
          Alcotest.(check bool)
            (Printf.sprintf "float bit-exact at %d" i)
            true
            (Int64.equal (Int64.bits_of_float x)
               (Int64.bits_of_float got.payload.(i))))
        req.payload);
  let reply : Protocol.reply =
    { id = 7; status = Protocol.Overloaded; message = "queue full"; payload = [||] }
  in
  match Protocol.decode_reply (Protocol.encode_reply reply) with
  | Error e -> Alcotest.failf "decode_reply: %s" e
  | Ok got ->
      Alcotest.(check int) "reply id" 7 got.id;
      Alcotest.(check bool) "reply status" true (got.status = Protocol.Overloaded);
      Alcotest.(check string) "reply message" "queue full" got.message

let test_protocol_garbage () =
  (match Protocol.decode_request (Bytes.of_string "xx") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated request decoded");
  (* a valid header with a descriptor length pointing past the body *)
  let b = Bytes.make 12 '\000' in
  Bytes.set b 0 '\001';
  Bytes.set b 10 '\255';
  (match Protocol.decode_request b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "overlong descriptor decoded");
  match Protocol.decode_reply (Bytes.of_string "") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty reply decoded"

(* ---- admission ---- *)

let test_admission_fairness () =
  let q = Admission.create ~max_pending:16 ~max_per_client:8 () in
  (* client 1 floods three deep, client 2 submits one item: round-robin
     serves client 2 after a single item of the flood, not after the
     whole backlog *)
  for i = 1 to 3 do
    Alcotest.(check bool)
      "accepted" true
      (Admission.submit q ~client:1 (1000 + i) = Admission.Accepted)
  done;
  Alcotest.(check bool)
    "accepted" true
    (Admission.submit q ~client:2 2001 = Admission.Accepted);
  Alcotest.(check (option int)) "flood head" (Some 1001) (Admission.take q);
  Alcotest.(check (option int)) "client 2 next" (Some 2001) (Admission.take q);
  Alcotest.(check (option int)) "back to flood" (Some 1002) (Admission.take q);
  Alcotest.(check (option int)) "flood tail" (Some 1003) (Admission.take q)

let test_admission_bounds () =
  let q = Admission.create ~max_pending:4 ~max_per_client:2 () in
  Alcotest.(check bool) "a1" true (Admission.submit q ~client:1 1 = Admission.Accepted);
  Alcotest.(check bool) "a2" true (Admission.submit q ~client:1 2 = Admission.Accepted);
  Alcotest.(check bool)
    "client bound" true
    (Admission.submit q ~client:1 3 = Admission.Client_full);
  Alcotest.(check bool) "b1" true (Admission.submit q ~client:2 4 = Admission.Accepted);
  Alcotest.(check bool) "c1" true (Admission.submit q ~client:3 5 = Admission.Accepted);
  Alcotest.(check bool)
    "global bound" true
    (Admission.submit q ~client:4 6 = Admission.Queue_full);
  Alcotest.(check int) "pending" 4 (Admission.pending q)

let test_admission_drop_and_close () =
  let q = Admission.create () in
  ignore (Admission.submit q ~client:1 1);
  ignore (Admission.submit q ~client:1 2);
  ignore (Admission.submit q ~client:2 3);
  Alcotest.(check (list int)) "purged" [ 1; 2 ] (Admission.drop_client q 1);
  Alcotest.(check int) "left" 1 (Admission.pending q);
  Admission.close q;
  Alcotest.(check bool)
    "closed" true
    (Admission.submit q ~client:2 4 = Admission.Closed);
  (* graceful: accepted work still drains, then None *)
  Alcotest.(check (option int)) "drains" (Some 3) (Admission.take q);
  Alcotest.(check (option int)) "then closed" None (Admission.take q)

(* ---- end-to-end ---- *)

let reference = lazy (Plans.create ~threads:1 ())

let checked_exec c descriptor =
  match Plans.lookup (Lazy.force reference) descriptor with
  | Error e -> Alcotest.failf "reference plan: %s" (Spiral_fft.Engine.error_to_string e)
  | Ok entry ->
      let rng = Random.State.make [| Hashtbl.hash descriptor |] in
      let x = Array.init entry.in_floats (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let reply = Client.exec c ~descriptor x in
      check_status (descriptor ^ " status") "ok" (status_name reply);
      let expected = entry.exec (Array.copy x) in
      let err = ref 0.0 in
      Array.iteri
        (fun i v -> err := Float.max !err (Float.abs (v -. reply.payload.(i))))
        expected;
      Alcotest.(check bool)
        (descriptor ^ " matches sequential reference")
        true (!err < 1e-8)

let test_e2e_kinds () =
  with_server (fun path _server ->
      with_client path (fun c ->
          List.iter (checked_exec c)
            [
              "dft[64]f"; "dft[64]i"; "dft[12]f"; "dft2d[8x8]f"; "wht[64]f";
              "rfft[64]f"; "rfft[64]i"; "dct[32]f"; "dft[16]fx4";
            ]))

let test_e2e_errors () =
  with_server (fun path _server ->
      with_client path (fun c ->
          let exec ?deadline_ms descriptor payload =
            status_name (Client.exec c ?deadline_ms ~descriptor payload)
          in
          check_status "parse failure" "bad-descriptor" (exec "nonsense" [||]);
          check_status "empty" "bad-descriptor" (exec "" [||]);
          check_status "oversized" "unsupported" (exec "dft[16777216]f" [||]);
          check_status "unsupported inverse batch" "unsupported"
            (exec "dft[16]ix4" (Array.make 128 0.0));
          check_status "short payload" "bad-payload"
            (exec "dft[64]f" (Array.make 7 0.0));
          check_status "non-finite payload" "bad-payload"
            (exec "dft[64]f"
               (Array.init 128 (fun i -> if i = 77 then Float.nan else 0.5)));
          (* the connection is still perfectly usable after every error *)
          checked_exec c "dft[64]f"))

let test_e2e_info_ping_stats () =
  with_server (fun path _server ->
      with_client path (fun c ->
          let pong = Client.ping c in
          check_status "ping" "ok" (status_name pong);
          let r = Client.info c "rfft[64]f" in
          check_status "info" "ok" (status_name r);
          Alcotest.(check string) "geometry" "in=64 out=66" r.message;
          let r = Client.info c "bogus" in
          check_status "info error" "bad-descriptor" (status_name r);
          let stats = Client.stats c in
          let contains hay needle =
            let nl = String.length needle and hl = String.length hay in
            let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            "stats mention service counters" true
            (contains stats "service.")))

let test_e2e_deadline () =
  with_server (fun path _server ->
      with_client path (fun c ->
          ignore (Client.hello c "slow-tenant");
          (* every request of this tenant stalls 50 ms in the executor;
             a 1 ms deadline must produce a Deadline reply, not a hang
             and not an Ok *)
          Fault.arm ~site:"service.delay" ~scope:"slow-tenant" ~times:max_int ();
          let reply = Client.exec c ~deadline_ms:1 ~descriptor:"dft[64]f"
              (Array.make 128 0.25)
          in
          check_status "deadline" "deadline-exceeded" (status_name reply);
          Fault.reset ();
          (* no deadline: same request now succeeds *)
          checked_exec c "dft[64]f"))

let test_e2e_shedding () =
  with_server
    ~tweak:(fun c -> { c with Server.max_pending = 8; max_per_client = 4 })
    (fun path _server ->
      with_client path (fun c ->
          ignore (Client.hello c "pipeliner");
          Fault.arm ~site:"service.delay" ~scope:"pipeliner" ~times:max_int ();
          let x = Array.make 128 0.5 in
          let ids =
            List.init 12 (fun _ -> Client.exec_async c ~descriptor:"dft[64]f" x)
          in
          Fault.disarm "service.delay";
          let replies = List.map (Client.wait c) ids in
          let count s =
            List.length (List.filter (fun r -> status_name r = s) replies)
          in
          Alcotest.(check int) "everything answered" 12 (List.length replies);
          Alcotest.(check bool) "some shed" true (count "overloaded" > 0);
          Alcotest.(check bool) "some served" true (count "ok" > 0);
          (* overload is shed, never silently dropped or crashed *)
          Alcotest.(check int)
            "ok + overloaded = all" 12
            (count "ok" + count "overloaded")))

let test_e2e_isolation () =
  with_server (fun path server ->
      with_client path (fun evil ->
          with_client path (fun honest ->
              ignore (Client.hello evil "evil");
              ignore (Client.hello honest "honest");
              (* warm the plan both tenants share *)
              checked_exec honest "dft[64]f";
              let plans_before = Server.plan_count server in
              Fault.arm ~site:"service.exec" ~scope:"evil" ~times:max_int ();
              let x = Array.make 128 0.125 in
              for _ = 1 to 5 do
                let r = Client.exec evil ~descriptor:"dft[64]f" x in
                check_status "evil gets structured error" "internal-error"
                  (status_name r)
              done;
              (* the honest tenant is untouched: same descriptor, same
                 shared plan, correct answers all along *)
              for _ = 1 to 3 do
                checked_exec honest "dft[64]f"
              done;
              Alcotest.(check int)
                "cached plans survive the faulted tenant" plans_before
                (Server.plan_count server);
              Fault.reset ();
              (* the faulted tenant recovers the moment faults stop *)
              checked_exec evil "dft[64]f")))

let test_e2e_abrupt_disconnect () =
  with_server (fun path _server ->
      (* clients that post work and vanish without reading — the server
         must reap them and keep serving everyone else *)
      for _ = 1 to 5 do
        let c = Client.connect path in
        ignore (Client.exec_async c ~descriptor:"dft[64]f" (Array.make 128 1.0));
        ignore (Client.exec_async c ~descriptor:"dft[64]f" (Array.make 128 2.0));
        Client.close c
      done;
      with_client path (fun c ->
          check_status "ping after rogues" "ok" (status_name (Client.ping c));
          checked_exec c "dft[64]f"))

let test_e2e_frame_limits () =
  with_server (fun path _server ->
      (* a raw oversized frame header: the server must reply Bad_request
         and drop the connection without reading the announced body *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 0x7FFFFFFFl;
      ignore (Unix.write fd header 0 4);
      (match Protocol.read_frame fd with
      | Protocol.Frame body -> (
          match Protocol.decode_reply body with
          | Ok r ->
              check_status "oversized rejected" "bad-request"
                (Protocol.status_to_string r.status)
          | Error e -> Alcotest.failf "undecodable reply: %s" e)
      | Protocol.Eof -> Alcotest.fail "connection dropped without a reply"
      | Protocol.Oversized _ -> Alcotest.fail "reply oversized");
      Unix.close fd;
      (* and the server is still fine *)
      with_client path (fun c ->
          check_status "ping" "ok" (status_name (Client.ping c))))

let test_e2e_stalled_reader () =
  (* a LIVE client that stops reading (slow or malicious) must not wedge
     the executor: its reply writes hit the send timeout, the connection
     is dropped like a dead peer, and other tenants stay promptly
     served *)
  with_server
    ~tweak:(fun c -> { c with Server.send_timeout = 0.2 })
    (fun path _server ->
      let stalled0 = Counters.get "service.client_stalled" in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      (* 16 x dft[2048] replies = 16 x 32 KiB, far beyond a unix socket
         buffer; the stall is guaranteed once we never read them *)
      let payload = Array.make 4096 0.5 in
      (try
         for id = 1 to 16 do
           Protocol.write_frame fd
             (Protocol.encode_request
                {
                  op = Protocol.Exec;
                  id;
                  deadline_ms = 0;
                  descriptor = "dft[2048]f";
                  payload;
                })
         done
       with Unix.Unix_error _ ->
         (* the server may drop us mid-burst once replies start timing
            out — that is exactly the behavior under test *)
         ());
      let t0 = Unix.gettimeofday () in
      with_client path (fun c ->
          checked_exec c "dft[64]f";
          check_status "ping after stall" "ok" (status_name (Client.ping c)));
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "honest tenant served promptly (%.2fs)" elapsed)
        true (elapsed < 10.0);
      let rec settle tries =
        if Counters.get "service.client_stalled" > stalled0 then ()
        else if tries = 0 then Alcotest.fail "stalled client never detected"
        else begin
          Unix.sleepf 0.1;
          settle (tries - 1)
        end
      in
      settle 100;
      Unix.close fd)

let test_e2e_conn_cap () =
  with_server
    ~tweak:(fun c -> { c with Server.max_conns = 2 })
    (fun path _server ->
      with_client path (fun c1 ->
          with_client path (fun c2 ->
              check_status "c1" "ok" (status_name (Client.ping c1));
              check_status "c2" "ok" (status_name (Client.ping c2));
              (* a third connection is rejected with a structured reply
                 and closed — the server never grows a reader for it *)
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX path);
              (match Protocol.read_frame fd with
              | Protocol.Frame body -> (
                  match Protocol.decode_reply body with
                  | Ok r ->
                      check_status "over-cap rejected" "overloaded"
                        (Protocol.status_to_string r.status)
                  | Error e -> Alcotest.failf "undecodable reject: %s" e)
              | Protocol.Eof -> Alcotest.fail "no rejection reply"
              | Protocol.Oversized _ -> Alcotest.fail "reject oversized");
              (match Protocol.read_frame fd with
              | Protocol.Eof -> ()
              | _ -> Alcotest.fail "rejected connection left open");
              Unix.close fd);
          (* closing a connection frees its slot (after the reader reaps
             it, hence the retry) *)
          let rec retry tries =
            let c = Client.connect path in
            match Client.ping c with
            | r ->
                Client.close c;
                check_status "slot freed" "ok" (status_name r)
            | exception Client.Disconnected ->
                Client.close c;
                if tries = 0 then Alcotest.fail "slot never freed"
                else begin
                  Unix.sleepf 0.1;
                  retry (tries - 1)
                end
          in
          retry 30))

let test_e2e_derived_frame_limit () =
  (* the per-frame memory bound follows the configured max_total: a
     frame far under the permissive 128 MiB default must still be
     rejected when the server is sized for small problems *)
  with_server
    ~tweak:(fun c -> { c with Server.max_total = 1024 })
    (fun path _server ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 (Int32.of_int (1024 * 1024));
      ignore (Unix.write fd header 0 4);
      (match Protocol.read_frame fd with
      | Protocol.Frame body -> (
          match Protocol.decode_reply body with
          | Ok r ->
              check_status "1 MiB frame rejected on a 1k-element server"
                "bad-request"
                (Protocol.status_to_string r.status)
          | Error e -> Alcotest.failf "undecodable reply: %s" e)
      | Protocol.Eof -> Alcotest.fail "connection dropped without a reply"
      | Protocol.Oversized _ -> Alcotest.fail "reply oversized");
      Unix.close fd;
      (* legitimate requests still fit comfortably under the bound *)
      with_client path (fun c -> checked_exec c "dft[64]f"))

let test_e2e_reader_prune () =
  (* connection churn must not grow the reader-thread table: each reader
     prunes its own entry when its connection dies *)
  with_server (fun path server ->
      for _ = 1 to 10 do
        with_client path (fun c ->
            check_status "ping" "ok" (status_name (Client.ping c)))
      done;
      let rec settle tries =
        if Server.reader_count server = 0 then ()
        else if tries = 0 then
          Alcotest.failf "reader threads not pruned: %d left"
            (Server.reader_count server)
        else begin
          Unix.sleepf 0.05;
          settle (tries - 1)
        end
      in
      settle 60)

let test_e2e_graceful_stop () =
  let path = sock_path () in
  let cfg = Server.default_config ~socket_path:path () in
  let server = Server.start cfg in
  with_client path (fun c -> check_status "up" "ok" (status_name (Client.ping c)));
  Server.stop server;
  Server.stop server (* idempotent *);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path);
  match Client.connect path with
  | exception Unix.Unix_error _ -> ()
  | c ->
      Client.close c;
      Alcotest.fail "connect succeeded after stop"

(* ---- chaos soak (the tentpole invariants) ---- *)

let test_soak () =
  let r = Soak.run ~seed:42 ~clients:3 ~requests:200 () in
  Format.printf "%a@." Soak.pp_report r;
  Alcotest.(check bool) "enough traffic" true (r.total >= 800);
  Alcotest.(check int) "zero wrong answers" 0 r.wrong;
  Alcotest.(check bool) "server survived" true r.server_survived;
  Alcotest.(check int) "honest tenants isolated from chaos" 0 r.honest_internal;
  Alcotest.(check bool) "chaos tenant saw its faults" true (r.internal > 0);
  (* bounded = a few multiples of the 5 s pool timeout, never the 30 s
     unbounded-wait signature *)
  Alcotest.(check bool)
    "error replies bounded (worst < 15s)" true
    (r.max_error_reply_us < 15e6);
  Alcotest.(check bool) "rogue kept connecting" true (r.rogue_connects > 0)

(* warm plans are compiled at boot, before the socket accepts: the first
   request for a warmed descriptor must not plan, and a bad descriptor in
   the warm list is counted, never fatal *)
let test_warm_plans () =
  Counters.reset ();
  with_server
    ~tweak:(fun c ->
      { c with Server.warm = [ "dft[256]f"; "rfft[128]f"; "nonsense[1]" ] })
    (fun path server ->
      Alcotest.(check int) "two descriptors planned" 2 (Server.plan_count server);
      Alcotest.(check int) "warm successes" 2 (Counters.get "service.warm_plan");
      Alcotest.(check int) "warm failures" 1 (Counters.get "service.warm_fail");
      with_client path (fun c ->
          let x = Array.init 512 (fun i -> float_of_int (i mod 7) /. 7.0) in
          let r = Client.exec c ~descriptor:"dft[256]f" x in
          check_status "warm exec ok" "ok" (status_name r);
          Alcotest.(check int) "first request hit the warmed plan" 2
            (Server.plan_count server)))

let suite =
  [
    Alcotest.test_case "protocol: roundtrip is bit-exact" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "protocol: garbage is rejected" `Quick
      test_protocol_garbage;
    Alcotest.test_case "admission: round-robin fairness" `Quick
      test_admission_fairness;
    Alcotest.test_case "admission: global and per-client bounds" `Quick
      test_admission_bounds;
    Alcotest.test_case "admission: drop_client and graceful close" `Quick
      test_admission_drop_and_close;
    Alcotest.test_case "e2e: every descriptor kind matches reference" `Quick
      test_e2e_kinds;
    Alcotest.test_case "e2e: structured error replies" `Quick test_e2e_errors;
    Alcotest.test_case "e2e: info, ping, stats" `Quick test_e2e_info_ping_stats;
    Alcotest.test_case "e2e: deadline enforcement" `Quick test_e2e_deadline;
    Alcotest.test_case "e2e: load shedding under pipelining" `Quick
      test_e2e_shedding;
    Alcotest.test_case "e2e: tenant isolation under scoped faults" `Quick
      test_e2e_isolation;
    Alcotest.test_case "e2e: abrupt disconnects don't wedge" `Quick
      test_e2e_abrupt_disconnect;
    Alcotest.test_case "e2e: oversized frame rejected" `Quick
      test_e2e_frame_limits;
    Alcotest.test_case "e2e: stalled reader can't wedge the executor" `Quick
      test_e2e_stalled_reader;
    Alcotest.test_case "e2e: connection cap" `Quick test_e2e_conn_cap;
    Alcotest.test_case "e2e: frame limit derives from max_total" `Quick
      test_e2e_derived_frame_limit;
    Alcotest.test_case "e2e: reader threads are pruned" `Quick
      test_e2e_reader_prune;
    Alcotest.test_case "e2e: graceful stop" `Quick test_e2e_graceful_stop;
    Alcotest.test_case "e2e: warm plans at boot" `Quick test_warm_plans;
    Alcotest.test_case "soak: chaos invariants" `Slow test_soak;
  ]
