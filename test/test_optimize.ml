(* Permutation-pass fusion (Optimize) and its interaction with the
   zero-allocation executor and barrier elision: the optimized plans must
   be bit-for-bit the unoptimized ones, across sizes, worker counts, both
   schedules, and under injected faults. *)

open Spiral_util
open Spiral_rewrite
open Spiral_codegen
open Spiral_smp

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let sixstep m n =
  match Derive.six_step_dft ~p:2 ~mu:4 ~m ~n with
  | Ok f -> f
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let exec plan n x =
  let y = Cvec.create n in
  Plan.execute plan x y;
  y

(* ------------------------------------------------------------------ *)
(* Fusion: pass-count shrink, counter, exactness                       *)

let test_fusion_shrinks () =
  Counters.reset ();
  let ir = Ir.of_formula ~explicit_data:true (sixstep 16 16) in
  check cb "explicit IR has data passes" true
    (List.exists Optimize.is_data_pass ir.Ir.passes);
  let fused = Optimize.fuse_data ir in
  check cb "no data passes left" false
    (List.exists Optimize.is_data_pass fused.Ir.passes);
  check cb "fewer passes" true
    (List.length fused.Ir.passes < List.length ir.Ir.passes);
  check ci "eliminations counted"
    (List.length ir.Ir.passes - List.length fused.Ir.passes)
    (Counters.get "optimize.fused_passes");
  Ir.validate fused

let test_fusion_idempotent () =
  let ir = Optimize.fuse_data (Ir.of_formula ~explicit_data:true (sixstep 16 16)) in
  check ci "second fuse is a no-op"
    (List.length ir.Ir.passes)
    (List.length (Optimize.fuse_data ir).Ir.passes)

let test_fused_exact () =
  List.iter
    (fun (m, n2) ->
      let n = m * n2 in
      let f = sixstep m n2 in
      let unfused = Plan.of_formula ~explicit_data:true f in
      let fused = Plan.of_formula ~explicit_data:true ~fuse:true f in
      check cb
        (Printf.sprintf "n=%d shrinks" n)
        true
        (Array.length fused.Plan.passes < Array.length unfused.Plan.passes);
      let x = Cvec.random ~seed:n n in
      let yu = exec unfused n x and yf = exec fused n x in
      check cb
        (Printf.sprintf "n=%d bit-for-bit vs unfused" n)
        true
        (Cvec.max_abs_diff yu yf = 0.0);
      if n <= 1024 then
        check cb
          (Printf.sprintf "n=%d matches naive" n)
          true
          (Cvec.max_abs_diff yf (Naive_dft.dft x) < 1e-9))
    [ (16, 16); (16, 32); (32, 32); (64, 64) ]

(* ------------------------------------------------------------------ *)
(* Residual path: a data pass that fails the legality checks (not
   full-size, or a scatter with a collision) must be emitted verbatim,
   never absorbed — and never change the transform.  Randomized over
   hand-built IR because the formula compiler only produces legal
   permutations. *)

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let data_pass ~count ~gather ~scatter =
  {
    Ir.count;
    radix = 1;
    par = None;
    mu = None;
    vec = None;
    kernel = Codelet.dft 1;
    gather;
    scatter;
    scale = None;
    hint = [ count ];
  }

let prop_residual_preserved =
  QCheck.Test.make
    ~name:"fusion: illegal data passes stay residual, bit-for-bit" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 0 1))
    (fun (seed, kind) ->
      let n = 16 in
      let st = Random.State.make [| seed; kind |] in
      let perm () =
        let a = Array.init n Fun.id in
        shuffle st a;
        a
      in
      (* the bad pass: non-total (covers a strict subset of [0, n)) or
         non-bijective (two iterations write the same position) *)
      let bad =
        let gp = perm () and sp = perm () in
        match kind with
        | 0 ->
            let count = 1 + Random.State.int st (n - 1) in
            data_pass ~count
              ~gather:(fun i _ -> gp.(i))
              ~scatter:(fun i _ -> sp.(i))
        | _ ->
            let j = Random.State.int st n in
            let k = (j + 1 + Random.State.int st (n - 1)) mod n in
            sp.(j) <- sp.(k);
            data_pass ~count:n
              ~gather:(fun i _ -> gp.(i))
              ~scatter:(fun i _ -> sp.(i))
      in
      (* a legal permutation right before the compute pass, so the run
         exercises fusion and residual emission side by side *)
      let gp = perm () in
      let good =
        data_pass ~count:n ~gather:(fun i _ -> gp.(i)) ~scatter:(fun i _ -> i)
      in
      let compute =
        {
          Ir.count = 4;
          radix = 4;
          par = None;
          mu = None;
          vec = None;
          kernel = Codelet.dft 4;
          gather = (fun i l -> i + (4 * l));
          scatter = (fun i l -> (4 * i) + l);
          scale = None;
          hint = [ 4 ];
        }
      in
      let ir = { Ir.n; passes = [ bad; good; compute ] } in
      Counters.reset ();
      let fused_ir, cert = Optimize.fuse_data_certified ir in
      (* exactly the good permutation fused; the bad pass survived *)
      let ok_shape =
        List.length fused_ir.Ir.passes = 2
        && Counters.get "optimize.fused_passes" = 1
        && List.exists Optimize.is_data_pass fused_ir.Ir.passes
      in
      let unfused = Plan.of_ir ~fuse:false ir in
      let fused = Plan.of_ir ~fuse:false fused_ir in
      let x = Cvec.random ~seed n in
      let yu = Cvec.create n and yf = Cvec.create n in
      Plan.execute unfused x yu;
      Plan.execute fused x yf;
      ok_shape
      && Cvec.max_abs_diff yu yf = 0.0
      && Result.is_ok
           (Spiral_validate.check_fusion ~mode:Spiral_validate.Exhaustive cert))

(* ------------------------------------------------------------------ *)
(* Legacy-kernel baseline plans compute the same transform              *)

let test_baseline_exact () =
  List.iter
    (fun logn ->
      let n = 1 lsl logn in
      let tree = Ruletree.expand (Ruletree.mixed_radix n) in
      let cur = Plan.of_formula tree in
      let base = Plan.of_formula ~baseline:true ~fuse:false tree in
      let x = Cvec.random ~seed:logn n in
      check cb
        (Printf.sprintf "legacy kernels bit-identical, n=%d" n)
        true
        (Cvec.max_abs_diff (exec cur n x) (exec base n x) = 0.0))
    [ 6; 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* Fused plans under every executor configuration                      *)

let test_fused_parallel_all_workers () =
  let plan = Plan.of_formula ~explicit_data:true ~fuse:true (sixstep 16 16) in
  let x = Cvec.random ~seed:99 256 in
  let want = exec plan 256 x in
  check cb "sanity vs naive" true
    (Cvec.max_abs_diff want (Naive_dft.dft x) < 1e-9);
  List.iter
    (fun p ->
      Pool.with_pool p (fun pool ->
          let y = Cvec.create 256 in
          Par_exec.execute pool plan x y;
          check cb (Printf.sprintf "block p=%d" p) true
            (Cvec.max_abs_diff y want = 0.0);
          Cvec.fill_zero y;
          Par_exec.execute pool ~schedule:(Par_exec.Cyclic 2) plan x y;
          check cb (Printf.sprintf "cyclic p=%d" p) true
            (Cvec.max_abs_diff y want = 0.0);
          Cvec.fill_zero y;
          Par_exec.execute pool ~elide:false plan x y;
          check cb (Printf.sprintf "no-elide p=%d" p) true
            (Cvec.max_abs_diff y want = 0.0));
      let y = Cvec.create 256 in
      Par_exec.execute_fork_join ~p plan x y;
      check cb (Printf.sprintf "fork-join p=%d" p) true
        (Cvec.max_abs_diff y want = 0.0))
    [ 1; 2; 3; 4; 5 ]

let test_fused_safe_under_fault () =
  Fault.reset ();
  Counters.reset ();
  let plan = Plan.of_formula ~explicit_data:true ~fuse:true (sixstep 16 16) in
  let x = Cvec.random ~seed:5 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      Fault.arm ~site:"par_exec.pass" ~after:3 ~times:1 ();
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool ~timeout:0.5 plan x y;
      check cb "fused plan exact under fault" true
        (Cvec.max_abs_diff y want < 1e-9));
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* Zero allocation in the steady-state hot path                        *)

(* Total minor-heap words allocated by [iters] warm executions.  A few
   words of slack cover the boxing of the Gc counter samples themselves;
   anything per-iteration would show up as >= iters words. *)
let alloc_words iters call =
  call ();
  call ();
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    call ()
  done;
  Gc.minor_words () -. w0

let test_zero_alloc () =
  let n = 1024 in
  let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)) in
  let x = Cvec.random ~seed:1 n and y = Cvec.create n in
  check cb "Plan.execute steady state allocation-free" true
    (alloc_words 50 (fun () -> Plan.execute plan x y) < 8.0);
  (match
     Derive.multicore_dft ~p:4 ~mu:2
       (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
   with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let mc = Plan.of_formula f in
      let x = Cvec.random ~seed:2 256 and y = Cvec.create 256 in
      check cb "twiddled multicore plan allocation-free" true
        (alloc_words 50 (fun () -> Plan.execute mc x y) < 8.0));
  let base =
    Plan.of_formula ~baseline:true ~fuse:false
      (Ruletree.expand (Ruletree.mixed_radix n))
  in
  check cb "legacy baseline allocates (the ablation is real)" true
    (alloc_words 50 (fun () -> Plan.execute base x y) > 1000.0)

(* The real-input front-ends keep their packing/reorder buffers in the
   plan, so the _into variants must be as allocation-free as the raw
   Plan.execute hot path they wrap. *)
let test_zero_alloc_frontends () =
  let n = 512 in
  Spiral_fft.Rfft.with_plan n (fun t ->
      let st = Random.State.make [| 7 |] in
      let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let spec = Cvec.create ((n / 2) + 1) in
      check cb "Rfft.forward_into allocation-free" true
        (alloc_words 50 (fun () -> Spiral_fft.Rfft.forward_into t ~src:x ~dst:spec)
        < 8.0);
      let back = Array.make n 0.0 in
      check cb "Rfft.inverse_into allocation-free" true
        (alloc_words 50 (fun () ->
             Spiral_fft.Rfft.inverse_into t ~src:spec ~dst:back)
        < 8.0));
  Spiral_fft.Dct.with_plan n (fun t ->
      let st = Random.State.make [| 8 |] in
      let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
      let c = Array.make n 0.0 in
      check cb "Dct.forward_into allocation-free" true
        (alloc_words 50 (fun () -> Spiral_fft.Dct.forward_into t ~src:x ~dst:c)
        < 8.0);
      let back = Array.make n 0.0 in
      check cb "Dct.inverse_into allocation-free" true
        (alloc_words 50 (fun () -> Spiral_fft.Dct.inverse_into t ~src:c ~dst:back)
        < 8.0));
  (* the inverse DFT's conjugate pass uses plan scratch, not fresh vectors *)
  Spiral_fft.Dft.with_plan ~direction:Spiral_fft.Dft.Inverse n (fun t ->
      let x = Cvec.random ~seed:9 n and y = Cvec.create n in
      check cb "inverse Dft.execute_into allocation-free" true
        (alloc_words 50 (fun () -> Spiral_fft.Dft.execute_into t ~src:x ~dst:y)
        < 8.0))

let suite =
  [
    Alcotest.test_case "fusion: shrinks explicit six-step" `Quick
      test_fusion_shrinks;
    Alcotest.test_case "fusion: idempotent" `Quick test_fusion_idempotent;
    Alcotest.test_case "fusion: bit-for-bit" `Quick test_fused_exact;
    QCheck_alcotest.to_alcotest prop_residual_preserved;
    Alcotest.test_case "baseline: legacy kernels bit-identical" `Quick
      test_baseline_exact;
    Alcotest.test_case "fused: all workers and schedules" `Quick
      test_fused_parallel_all_workers;
    Alcotest.test_case "fused: supervised under fault" `Quick
      test_fused_safe_under_fault;
    Alcotest.test_case "hot path: zero allocation" `Quick test_zero_alloc;
    Alcotest.test_case "hot path: rfft/dct/inverse allocation-free" `Quick
      test_zero_alloc_frontends;
  ]
