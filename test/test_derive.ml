open Spiral_spl
open Spiral_rewrite
open Ruletree
open Formula

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let sem_equal = Semantics.equal_semantics ~tol:1e-8

(* ------------------------------------------------------------------ *)
(* Ruletrees                                                           *)

let test_tree_size () =
  check ci "leaf" 8 (Ruletree.size (Leaf 8));
  check ci "ct" 32 (Ruletree.size (Ct (Leaf 4, Leaf 8)));
  check ci "depth" 3
    (Ruletree.depth (Ct (Ct (Leaf 2, Leaf 2), Leaf 2)))

let test_tree_expand_semantics () =
  List.iter
    (fun tree ->
      check cb (Ruletree.to_string tree) true
        (sem_equal (DFT (Ruletree.size tree)) (Ruletree.expand tree)))
    [ Ruletree.Leaf 6;
      Ct (Leaf 2, Leaf 3);
      Ct (Ct (Leaf 2, Leaf 2), Leaf 4);
      Ct (Leaf 3, Ct (Leaf 2, Leaf 5));
      Ruletree.mixed_radix 64;
      Ruletree.balanced 48;
      Ruletree.random ~seed:11 36 ]

let test_tree_constructors () =
  check ci "mixed 256" 256 (Ruletree.size (Ruletree.mixed_radix 256));
  check ci "balanced 360" 360 (Ruletree.size (Ruletree.balanced 360));
  check ci "right 64" 64 (Ruletree.size (Ruletree.right_expanded ~radix:4 64));
  check ci "left 64" 64 (Ruletree.size (Ruletree.left_expanded ~radix:4 64));
  Ruletree.validate (Ruletree.mixed_radix 4096);
  Ruletree.validate (Ruletree.balanced 1000)

let test_mixed_radix_avoids_trailing_2 () =
  (* 2^10 should not end in a radix-2 leaf *)
  let rec leaves = function
    | Ruletree.Leaf n -> [ n ]
    | Ct (l, r) -> leaves l @ leaves r
  in
  let ls = leaves (Ruletree.mixed_radix 1024) in
  check cb "no radix 2" true (not (List.mem 2 ls));
  check cb "all good leaves" true
    (List.for_all (fun l -> l <= Ruletree.good_leaf_max) ls)

let test_tree_validate_errors () =
  (try
     Ruletree.validate (Leaf 1);
     Alcotest.fail "leaf 1 should be invalid"
   with Invalid_argument _ -> ());
  try
    Ruletree.validate (Leaf 64);
    Alcotest.fail "leaf 64 exceeds leaf_max"
  with Invalid_argument _ -> ()

let test_all_trees_16 () =
  (* trees(2)=1, trees(4)=2, trees(8)=5,
     trees(16) = 1 leaf + (2,8):5 + (4,4):4 + (8,2):5 = 15 *)
  check ci "trees 16" 15 (List.length (Ruletree.all_trees 16));
  check ci "trees 8" 5 (List.length (Ruletree.all_trees 8));
  check ci "trees 7 (prime)" 1 (List.length (Ruletree.all_trees 7))

let test_tree_string_roundtrip () =
  List.iter
    (fun t ->
      check cb (Ruletree.to_string t) true
        (Ruletree.of_string (Ruletree.to_string t) = t))
    [ Ruletree.Leaf 8;
      Ct (Leaf 4, Leaf 8);
      Ct (Ct (Leaf 2, Leaf 3), Ct (Leaf 5, Leaf 7));
      Ruletree.mixed_radix 512 ]

let prop_tree_string_roundtrip =
  QCheck.Test.make ~name:"ruletree to_string/of_string roundtrip" ~count:60
    QCheck.(int_range 4 2048)
    (fun n ->
      let t = Ruletree.random ~seed:n n in
      Ruletree.of_string (Ruletree.to_string t) = t)

let test_tree_parse_errors () =
  List.iter
    (fun s ->
      try
        ignore (Ruletree.of_string s);
        Alcotest.failf "parsed %S" s
      with Invalid_argument _ -> ())
    [ ""; "( 2 x 3"; "2 x 3"; "(2 y 3)"; "(2 x 3) junk"; "abc" ]

(* ------------------------------------------------------------------ *)
(* Multicore derivation (formula 14)                                   *)

let test_multicore_structure () =
  (* with leaf subtrees the result is literally the 7-factor formula (14) *)
  match Derive.multicore_dft ~p:2 ~mu:2 (Ct (Leaf 8, Leaf 8)) with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f -> (
      match f with
      | Compose
          [ CacheTensor (Tensor (Perm _, I _), _);
            ParTensor (_, Tensor (DFT _, I _));
            CacheTensor (Tensor (Perm _, I _), _);
            ParDirectSum _;
            ParTensor (_, Tensor (I _, DFT _));
            ParTensor (_, Perm _);
            CacheTensor (Tensor (Perm _, I _), _) ] ->
          ()
      | _ -> Alcotest.failf "not the shape of formula (14): %s" (to_string f))

let test_multicore_semantics_various () =
  List.iter
    (fun (p, mu, m, n) ->
      let tree = Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.multicore_dft ~p ~mu tree with
      | Error e -> Alcotest.failf "p%d mu%d: %s" p mu (Derive.error_to_string e)
      | Ok f ->
          check cb "fully optimized" true (Props.fully_optimized ~p ~mu f);
          check cb "semantics" true (sem_equal f (DFT (m * n)));
          check (Alcotest.float 0.0) "load balance" 0.0 (Cost.imbalance ~p f))
    [ (2, 1, 4, 4); (2, 2, 8, 8); (2, 4, 8, 8); (4, 1, 8, 8); (4, 2, 16, 16);
      (3, 1, 6, 12); (2, 2, 12, 20) ]

let test_multicore_bad_sizes () =
  (match Derive.multicore_dft ~p:2 ~mu:4 (Ct (Leaf 4, Leaf 8)) with
  | Error (Derive.Bad_size _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Derive.error_to_string e)
  | Ok _ -> Alcotest.fail "pµ=8 does not divide 4");
  match Derive.multicore_dft ~p:2 ~mu:2 (Leaf 16) with
  | Error (Derive.Bad_size _) -> ()
  | _ -> Alcotest.fail "leaf has no top split"

let test_multicore_mu_condition () =
  (* formula exists iff pµ | m and pµ | n: µ=4, p=2 needs 8 | both *)
  (match Derive.multicore_dft ~p:2 ~mu:4 (Ct (Leaf 8, Leaf 8)) with
  | Ok f -> check cb "8x8 ok" true (Props.fully_optimized ~p:2 ~mu:4 f)
  | Error e -> Alcotest.fail (Derive.error_to_string e));
  match Derive.multicore_dft ~p:2 ~mu:4 (Ct (Leaf 8, Ct (Leaf 2, Leaf 6))) with
  | Error (Derive.Bad_size _) -> ()
  | _ -> Alcotest.fail "12 not divisible by 8"

let test_sequential_dft () =
  check cb "expand alias" true
    (Derive.sequential_dft (Ct (Leaf 4, Leaf 4))
    = Ruletree.expand (Ct (Leaf 4, Leaf 4)))

(* ------------------------------------------------------------------ *)
(* Six-step, WHT, naive parallelization                                *)

let test_six_step () =
  (match Derive.six_step_dft ~p:2 ~mu:2 ~m:8 ~n:8 with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      check cb "semantics" true (sem_equal f (DFT 64));
      (* the six-step keeps explicit stride permutations: not fully
         optimized in the sense of Definition 1 *)
      check cb "not fully optimized" false (Props.fully_optimized ~p:2 ~mu:2 f));
  match Derive.six_step_dft ~p:4 ~mu:1 ~m:6 ~n:8 with
  | Error (Derive.Bad_size _) -> ()
  | _ -> Alcotest.fail "p=4 does not divide 6"

let test_six_step_large_subtransforms () =
  match Derive.six_step_dft ~p:2 ~mu:2 ~m:64 ~n:64 with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      (* 64 > leaf_max forces recursive expansion of the sub-DFTs *)
      check cb "no nonterminal > leaf_max" true
        (not
           (exists
              (function DFT k -> k > Ruletree.leaf_max | _ -> false)
              f))

let test_multicore_wht () =
  (match Derive.multicore_wht ~p:2 ~mu:2 ~m:8 ~n:8 with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      check cb "fully optimized" true (Props.fully_optimized ~p:2 ~mu:2 f);
      check cb "semantics" true (sem_equal f (WHT 64)));
  match Derive.multicore_wht ~p:2 ~mu:2 ~m:6 ~n:8 with
  | Error (Derive.Bad_size _) -> ()
  | _ -> Alcotest.fail "WHT size must be 2^k"

let test_parallelize_loops () =
  let f = Ruletree.expand (Ct (Leaf 8, Leaf 8)) in
  let g = Derive.parallelize_loops ~p:2 f in
  check cb "semantics preserved" true (sem_equal f g);
  check cb "has parallel constructs" true
    (exists (function ParTensor _ -> true | _ -> false) g);
  check cb "not fully optimized (explicit perms)" false
    (Props.fully_optimized ~p:2 ~mu:4 g)

(* end-to-end property: for random valid (p, mu, tree), the full pipeline
   (derive -> compile -> execute) is correct and optimized *)
let prop_multicore_end_to_end =
  QCheck.Test.make ~name:"multicore pipeline: derive/compile/execute" ~count:30
    QCheck.(triple (int_range 1 200) (int_range 2 4) (int_range 1 4))
    (fun (seed, p, mu) ->
      let q = p * mu in
      (* random multiples of pmu for the two halves, kept small *)
      let st = Random.State.make [| seed |] in
      let m = q * (1 + Random.State.int st 3) in
      let n = q * (1 + Random.State.int st 3) in
      QCheck.assume (m * n <= 1024);
      let tree = Ct (Ruletree.random ~seed m, Ruletree.random ~seed:(seed + 1) n) in
      (try Ruletree.validate tree with Invalid_argument _ -> QCheck.assume_fail ());
      match Derive.multicore_dft ~p ~mu tree with
      | Error _ -> QCheck.assume_fail ()
      | Ok f ->
          let open Spiral_util in
          Props.fully_optimized ~p ~mu f
          && Cost.imbalance ~p f = 0.0
          &&
          let plan = Spiral_codegen.Plan.of_formula f in
          let x = Cvec.random ~seed (m * n) in
          let y = Cvec.create (m * n) in
          Spiral_codegen.Plan.execute plan x y;
          Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-6 *. float_of_int (m * n))

let suite =
  [
    Alcotest.test_case "tree size/depth" `Quick test_tree_size;
    Alcotest.test_case "tree expansion semantics" `Quick test_tree_expand_semantics;
    Alcotest.test_case "tree constructors" `Quick test_tree_constructors;
    Alcotest.test_case "mixed radix avoids trailing 2" `Quick test_mixed_radix_avoids_trailing_2;
    Alcotest.test_case "tree validation errors" `Quick test_tree_validate_errors;
    Alcotest.test_case "all_trees counts" `Quick test_all_trees_16;
    Alcotest.test_case "tree string roundtrip" `Quick test_tree_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_tree_string_roundtrip;
    Alcotest.test_case "tree parse errors" `Quick test_tree_parse_errors;
    Alcotest.test_case "formula (14) structure" `Quick test_multicore_structure;
    Alcotest.test_case "multicore semantics (p, mu sweep)" `Quick test_multicore_semantics_various;
    Alcotest.test_case "multicore bad sizes" `Quick test_multicore_bad_sizes;
    Alcotest.test_case "multicore (pmu)^2 | N condition" `Quick test_multicore_mu_condition;
    Alcotest.test_case "sequential derivation" `Quick test_sequential_dft;
    Alcotest.test_case "six-step derivation" `Quick test_six_step;
    Alcotest.test_case "six-step large subtransforms" `Quick test_six_step_large_subtransforms;
    Alcotest.test_case "multicore WHT" `Quick test_multicore_wht;
    Alcotest.test_case "naive loop parallelization" `Quick test_parallelize_loops;
    QCheck_alcotest.to_alcotest prop_multicore_end_to_end;
  ]
