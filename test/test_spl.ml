open Spiral_util
open Spiral_spl
open Formula

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

let sem_equal ?(tol = 1e-9) f g =
  Cmatrix.equal_approx ~tol (Semantics.to_matrix f) (Semantics.to_matrix g)

(* ------------------------------------------------------------------ *)
(* Perm                                                                *)

let test_l_definition () =
  (* L^{mn}_m: output position i*n + j takes input position j*m + i
     (0 <= i < m, 0 <= j < n) — the convention verified against the
     Cooley-Tukey rule and the matrix-transposition reading. *)
  let m = 2 and n = 3 in
  let p = Perm.L (m * n, m) in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let out = (i * n) + j and inp = (j * m) + i in
      check ci (Printf.sprintf "gather(%d)" out) inp (Perm.gather p out)
    done
  done

let test_l_transpose () =
  (* viewing x as n x m row-major, L^{mn}_m transposes *)
  let m = 4 and n = 2 in
  let p = Perm.L (m * n, m) in
  let x = Array.init (m * n) (fun i -> i) in
  let y = Array.map (fun s -> x.(s)) (Perm.to_array p) in
  (* y as m x n row-major must satisfy y[b][a] = x[a][b] *)
  for a = 0 to n - 1 do
    for b = 0 to m - 1 do
      check ci "transpose" x.((a * m) + b) y.((b * n) + a)
    done
  done

let test_l_inverse () =
  (* (L^{mn}_m)^{-1} = L^{mn}_n *)
  let m = 4 and n = 6 in
  let inv = Perm.inverse (Perm.L (m * n, m)) in
  check cb "inverse is L mn n" true
    (Perm.to_array inv = Perm.to_array (Perm.L (m * n, n)))

let test_l_identity_cases () =
  check cb "L(n,1)" true (Perm.is_identity (Perm.L (6, 1)));
  check cb "L(n,n)" true (Perm.is_identity (Perm.L (6, 6)));
  check cb "L(6,2) not id" false (Perm.is_identity (Perm.L (6, 2)))

let test_perm_validate () =
  Perm.validate (Perm.L (12, 4));
  Alcotest.check_raises "L bad" (Invalid_argument "Perm.L: m must divide mn, both positive")
    (fun () -> Perm.validate (Perm.L (12, 5)));
  Alcotest.check_raises "explicit bad" (Invalid_argument "Perm.Explicit: not a bijection")
    (fun () -> Perm.validate (Perm.Explicit [| 0; 0; 1 |]))

(* ------------------------------------------------------------------ *)
(* Diag                                                                *)

let test_diag_twiddle () =
  let d = Diag.Twiddle (2, 4) in
  check ci "size" 8 (Diag.size d);
  let a = Diag.to_array d in
  check cb "matches util table" true
    (Array.for_all2
       (fun (x : Complex.t) (y : Complex.t) -> Complex.norm (Complex.sub x y) < 1e-12)
       a
       (Twiddle.twiddle_diag ~m:2 ~n:4))

let test_diag_split () =
  let d = Diag.Twiddle (4, 4) in
  let parts = Diag.split d 4 in
  check ci "parts" 4 (List.length parts);
  let reassembled = Array.concat (List.map Diag.to_array parts) in
  check cb "concat = original" true (reassembled = Diag.to_array d);
  Alcotest.check_raises "bad split" (Invalid_argument "Diag.split: p must divide size")
    (fun () -> ignore (Diag.split d 3))

let test_diag_segment_nested () =
  let d = Diag.Segment (Diag.Segment (Diag.Twiddle (4, 4), 4, 8), 2, 4) in
  check ci "size" 4 (Diag.size d);
  check cb "entry" true
    (Complex.norm (Complex.sub (Diag.entry d 0) (Diag.entry (Diag.Twiddle (4, 4)) 6))
     < 1e-12)

let test_diag_to_table () =
  let d = Diag.Explicit [| { Complex.re = 1.0; im = 2.0 }; { re = 3.0; im = 4.0 } |] in
  check cb "interleave" true (Diag.to_table d = [| 1.0; 2.0; 3.0; 4.0 |])

(* ------------------------------------------------------------------ *)
(* Formula: dimensions and smart constructors                          *)

let test_dims () =
  check ci "dft" 8 (dim (DFT 8));
  check ci "tensor" 12 (dim (Tensor (DFT 4, I 3)));
  check ci "compose" 6 (dim (Compose [ I 6; DFT 6 ]));
  check ci "dirsum" 7 (dim (DirectSum [ I 3; DFT 4 ]));
  check ci "smp" 4 (dim (Smp (2, 2, DFT 4)));
  check ci "partensor" 8 (dim (ParTensor (2, DFT 4)));
  check ci "cachetensor" 8 (dim (CacheTensor (DFT 4, 2)))

let test_compose_smart () =
  (match compose [ Compose [ DFT 4; I 4 ]; Compose [ I 4; DFT 4 ] ] with
  | Compose [ DFT 4; DFT 4 ] -> ()
  | f -> Alcotest.failf "unexpected: %s" (to_string f));
  check cb "single" true (compose [ I 3; DFT 3 ] = DFT 3);
  check cb "all ids" true (compose [ I 3; I 3 ] = I 3);
  Alcotest.check_raises "empty" (Invalid_argument "Formula.compose: empty")
    (fun () -> ignore (compose []));
  (try
     ignore (compose [ DFT 3; DFT 4 ]);
     Alcotest.fail "dimension mismatch accepted"
   with Invalid_argument _ -> ())

let test_tensor_smart () =
  check cb "I1 left" true (tensor (I 1) (DFT 4) = DFT 4);
  check cb "I1 right" true (tensor (DFT 4) (I 1) = DFT 4);
  check cb "I merge" true (tensor (I 2) (I 3) = I 6);
  check cb "real" true (tensor (DFT 2) (I 2) = Tensor (DFT 2, I 2))

let test_l_perm_smart () =
  check cb "id low" true (l_perm 8 1 = I 8);
  check cb "id high" true (l_perm 8 8 = I 8);
  check cb "perm" true (l_perm 8 2 = Perm (Perm.L (8, 2)))

let test_traversal () =
  let f = Compose [ Tensor (DFT 2, I 2); Smp (2, 1, Tensor (I 2, DFT 2)) ] in
  check ci "count_nodes" 8 (count_nodes f);
  check cb "has_tag" true (has_tag f);
  check cb "has_nonterminal" true (has_nonterminal f);
  check cb "no tag" false (has_tag (DFT 4))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pp' () =
  let s = to_string (Compose [ Tensor (DFT 4, I 2); Perm (Perm.L (8, 4)) ]) in
  check cb "DFT_4" true (contains s "DFT_4");
  check cb "L(8,4)" true (contains s "L(8,4)");
  let s2 = to_string (ParTensor (2, DFT 4)) in
  check cb "par marker" true (contains s2 "(x)||")

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)

let test_sem_dft_vs_naive () =
  List.iter
    (fun n ->
      let x = Cvec.random ~seed:n n in
      let y = Semantics.apply (DFT n) x in
      check cb (Printf.sprintf "dft%d" n) true
        (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-9))
    [ 1; 2; 3; 4; 5; 8; 12 ]

let test_sem_tensor_id () =
  (* I_m (x) A applies A blockwise *)
  let f = Tensor (I 2, DFT 2) in
  let x = Cvec.of_real_list [ 1.0; 2.0; 3.0; 4.0 ] in
  let y = Semantics.apply f x in
  check cb "blockwise" true
    (Cvec.max_abs_diff y (Cvec.of_real_list [ 3.0; -1.0; 7.0; -1.0 ]) < 1e-12)

let test_sem_tensor_strided () =
  (* A (x) I_n: strided application; compare against matrix semantics *)
  let f = Tensor (DFT 3, I 2) in
  let x = Cvec.random ~seed:7 6 in
  check cb "strided" true
    (Cvec.max_abs_diff (Semantics.apply f x)
       (Cmatrix.apply (Semantics.to_matrix f) x) < 1e-9)

let test_sem_tagged_transparent () =
  let f = Tensor (I 2, DFT 4) in
  check cb "partensor" true (sem_equal (ParTensor (2, DFT 4)) f);
  check cb "cachetensor" true (sem_equal (CacheTensor (DFT 4, 2)) (Tensor (DFT 4, I 2)));
  check cb "smp tag" true (sem_equal (Smp (4, 2, f)) f);
  check cb "pardirsum" true
    (sem_equal (ParDirectSum [ DFT 2; DFT 2 ]) (DirectSum [ DFT 2; DFT 2 ]))

let test_sem_wht () =
  (* WHT_2 = DFT_2; WHT_4 = DFT_2 (x) DFT_2 *)
  check cb "wht2" true (sem_equal (WHT 2) (DFT 2));
  check cb "wht4" true (sem_equal (WHT 4) (Tensor (DFT 2, DFT 2)))

(* random small formulas: apply and to_matrix agree *)
let gen_formula =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun n -> DFT (n + 1)) (int_bound 5);
        map (fun n -> I (n + 1)) (int_bound 4);
        map (fun m -> Perm (Perm.L (2 * m, 2))) (int_range 1 4);
        map (fun m -> Diag (Diag.Twiddle (2, m + 1))) (int_bound 3) ]
  in
  let rec f depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (2, map2 (fun a b -> Tensor (a, b)) (f (depth - 1)) (f (depth - 1)));
          (1, map (fun a -> Compose [ a; I (dim a) ]) (f (depth - 1)));
          (1, map2 (fun a b -> DirectSum [ a; b ]) (f (depth - 1)) (f (depth - 1)))
        ]
  in
  f 2

let prop_apply_matches_matrix =
  QCheck.Test.make ~name:"apply f x = (matrix f) x" ~count:60
    (QCheck.make gen_formula ~print:to_string)
    (fun f ->
      let n = dim f in
      QCheck.assume (n <= 64);
      let x = Cvec.random ~seed:n n in
      Cvec.max_abs_diff (Semantics.apply f x)
        (Cmatrix.apply (Semantics.to_matrix f) x)
      < 1e-8)

(* ------------------------------------------------------------------ *)
(* Shape analysis                                                      *)

let test_shape_perm () =
  let f = Compose [ Tensor (I 2, Perm (Perm.L (4, 2))); Tensor (Perm (Perm.L (4, 2)), I 2) ] in
  (match Shape.perm_sigma f with
  | None -> Alcotest.fail "should be a permutation"
  | Some sigma ->
      let want = Semantics.to_matrix f in
      let got = Cmatrix.of_permutation (Array.init 8 sigma) in
      check cb "sigma matches matrix" true (Cmatrix.equal_approx want got));
  check cb "dft is not perm" true (Shape.perm_sigma (DFT 4) = None);
  check cb "diag is not perm" true (Shape.perm_sigma (twiddle 2 2) = None)

let test_shape_partensor_perm () =
  let f = ParTensor (2, Perm (Perm.L (4, 2))) in
  match Shape.perm_sigma f with
  | None -> Alcotest.fail "partensor of perm is a perm"
  | Some sigma ->
      check cb "matches" true
        (Cmatrix.equal_approx (Semantics.to_matrix f)
           (Cmatrix.of_permutation (Array.init 8 sigma)))

let test_shape_diag () =
  let parts = List.map (fun s -> Diag s) (Diag.split (Diag.Twiddle (4, 2)) 2) in
  let f = ParDirectSum parts in
  (match Shape.diag_entry f with
  | None -> Alcotest.fail "pardirsum of diags is a diag"
  | Some e ->
      let want = Diag.to_array (Diag.Twiddle (4, 2)) in
      Array.iteri
        (fun i w ->
          if Complex.norm (Complex.sub (e i) w) > 1e-12 then
            Alcotest.failf "entry %d" i)
        want);
  check cb "perm is not diag" true (Shape.diag_entry (Perm (Perm.L (4, 2))) = None)

let test_shape_is_data () =
  check cb "perm" true (Shape.is_data (Perm (Perm.L (6, 2))));
  check cb "diag" true (Shape.is_data (twiddle 2 3));
  check cb "dft" false (Shape.is_data (DFT 4));
  check cb "tensor with dft" false (Shape.is_data (Tensor (DFT 2, I 2)))

(* ------------------------------------------------------------------ *)
(* Props (Definition 1)                                                *)

let test_props_positive () =
  let f =
    Compose
      [ CacheTensor (Tensor (Perm (Perm.L (4, 2)), I 2), 2);
        ParTensor (2, DFT 8);
        ParDirectSum [ twiddle 2 4; twiddle 2 4 ] ]
  in
  check cb "load balanced" true (Props.load_balanced ~p:2 f);
  check cb "no false sharing" true (Props.avoids_false_sharing ~mu:2 f);
  check cb "fully optimized" true (Props.fully_optimized ~p:2 ~mu:2 f)

let test_props_negative () =
  (* bare permutation: sequential pass, not load balanced *)
  check cb "bare perm" false (Props.load_balanced ~p:2 (Perm (Perm.L (8, 2))));
  (* wrong processor count *)
  check cb "wrong p" false (Props.load_balanced ~p:4 (ParTensor (2, DFT 4)));
  (* block not a multiple of mu *)
  check cb "mu violation" false
    (Props.avoids_false_sharing ~mu:4 (ParTensor (2, DFT 6)));
  (* unequal direct sum blocks *)
  check cb "unbalanced sum" false
    (Props.load_balanced ~p:2 (ParDirectSum [ DFT 2; DFT 4 ]))

let test_props_nested () =
  let f = Tensor (I 4, ParTensor (2, DFT 4)) in
  check cb "I_m (x) lb" true (Props.load_balanced ~p:2 f)

let test_parallel_degree () =
  check cb "none" true (Props.parallel_degree (DFT 8) = None);
  check cb "two" true (Props.parallel_degree (ParTensor (2, DFT 4)) = Some 2);
  check cb "mixed" true
    (Props.parallel_degree
       (Compose [ ParTensor (2, DFT 4); ParTensor (4, DFT 2) ])
     = None)

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)

let test_cost_compose () =
  let f = Compose [ DFT 2; DFT 2 ] in
  check ci "sum" 8 (Cost.flops f)

let test_cost_tensor () =
  (* I_4 (x) DFT_2: 4 copies *)
  check ci "tensor right" 16 (Cost.flops (Tensor (I 4, DFT 2)));
  check ci "tensor left" 16 (Cost.flops (Tensor (DFT 2, I 4)));
  check ci "perm free" 0 (Cost.flops (Perm (Perm.L (16, 4))));
  check ci "diag 6n" 48 (Cost.flops (twiddle 2 4))

let test_cost_per_processor () =
  let f = ParTensor (2, DFT 8) in
  let w = Cost.per_processor ~p:2 f in
  check ci "p0" (Cost.leaf_flops 8) w.(0);
  check ci "p1" (Cost.leaf_flops 8) w.(1);
  check (Alcotest.float 0.0) "imbalance 0" 0.0 (Cost.imbalance ~p:2 f)

let test_cost_sequential_to_p0 () =
  let f = DFT 8 in
  let w = Cost.per_processor ~p:4 f in
  check ci "all on p0" (Cost.leaf_flops 8) w.(0);
  check ci "p1 idle" 0 w.(1);
  check (Alcotest.float 0.01) "imbalance 1" 1.0 (Cost.imbalance ~p:4 f)

let suite =
  [
    Alcotest.test_case "L definition (in+j -> jm+i)" `Quick test_l_definition;
    Alcotest.test_case "L transposes row-major matrix" `Quick test_l_transpose;
    Alcotest.test_case "L inverse" `Quick test_l_inverse;
    Alcotest.test_case "L identity cases" `Quick test_l_identity_cases;
    Alcotest.test_case "perm validation" `Quick test_perm_validate;
    Alcotest.test_case "twiddle diag" `Quick test_diag_twiddle;
    Alcotest.test_case "diag split (rule 11)" `Quick test_diag_split;
    Alcotest.test_case "nested segments" `Quick test_diag_segment_nested;
    Alcotest.test_case "diag to_table" `Quick test_diag_to_table;
    Alcotest.test_case "formula dims" `Quick test_dims;
    Alcotest.test_case "compose smart constructor" `Quick test_compose_smart;
    Alcotest.test_case "tensor smart constructor" `Quick test_tensor_smart;
    Alcotest.test_case "l_perm smart constructor" `Quick test_l_perm_smart;
    Alcotest.test_case "traversal" `Quick test_traversal;
    Alcotest.test_case "pretty printing" `Quick test_pp';
    Alcotest.test_case "semantics: DFT vs naive" `Quick test_sem_dft_vs_naive;
    Alcotest.test_case "semantics: I (x) A" `Quick test_sem_tensor_id;
    Alcotest.test_case "semantics: A (x) I" `Quick test_sem_tensor_strided;
    Alcotest.test_case "semantics: tags transparent" `Quick test_sem_tagged_transparent;
    Alcotest.test_case "semantics: WHT" `Quick test_sem_wht;
    QCheck_alcotest.to_alcotest prop_apply_matches_matrix;
    Alcotest.test_case "shape: perm extraction" `Quick test_shape_perm;
    Alcotest.test_case "shape: parallel perm" `Quick test_shape_partensor_perm;
    Alcotest.test_case "shape: diag extraction" `Quick test_shape_diag;
    Alcotest.test_case "shape: is_data" `Quick test_shape_is_data;
    Alcotest.test_case "Definition 1: positive" `Quick test_props_positive;
    Alcotest.test_case "Definition 1: negative" `Quick test_props_negative;
    Alcotest.test_case "Definition 1: nested" `Quick test_props_nested;
    Alcotest.test_case "parallel degree" `Quick test_parallel_degree;
    Alcotest.test_case "cost: compose" `Quick test_cost_compose;
    Alcotest.test_case "cost: tensor/perm/diag" `Quick test_cost_tensor;
    Alcotest.test_case "cost: per-processor split" `Quick test_cost_per_processor;
    Alcotest.test_case "cost: sequential to p0" `Quick test_cost_sequential_to_p0;
  ]
