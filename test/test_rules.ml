open Spiral_spl
open Spiral_rewrite
open Formula

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let sem_equal = Semantics.equal_semantics ~tol:1e-8

(* ------------------------------------------------------------------ *)
(* Rewriting engine                                                    *)

let double_rule =
  Rule.make "double-I" (function I n when n < 8 -> Some (I (2 * n)) | _ -> None)

let test_apply_root () =
  (match Rule.apply_root [ double_rule ] (I 3) with
  | Some ("double-I", I 6) -> ()
  | _ -> Alcotest.fail "root application");
  check cb "no match" true (Rule.apply_root [ double_rule ] (DFT 4) = None)

let test_apply_once_leftmost () =
  (* first applicable position in leftmost-outermost order; the rule must
     preserve dimensions (as all real rules do) *)
  let erase = Rule.make "erase" (function DFT n -> Some (I n) | _ -> None) in
  let f = Compose [ Tensor (DFT 2, I 2); Tensor (I 2, DFT 2) ] in
  match Rule.apply_once [ erase ] f with
  | Some (_, Compose [ Tensor (I 2, I 2); Tensor (I 2, DFT 2) ]) -> ()
  | Some (_, g) -> Alcotest.failf "wrong position: %s" (to_string g)
  | None -> Alcotest.fail "no application"

let test_fixpoint_terminates () =
  let f, trace = Rule.fixpoint [ double_rule ] (I 3) in
  check cb "fixpoint value" true (f = I 12);
  check ci "trace length" 2 (List.length trace)

let test_fixpoint_limit () =
  let diverge = Rule.make "diverge" (function I n -> Some (I n) | _ -> None) in
  try
    ignore (Rule.fixpoint ~max_steps:10 [ diverge ] (I 1));
    Alcotest.fail "should hit the step limit"
  with Failure _ -> ()

(* ------------------------------------------------------------------ *)
(* Breakdown rules preserve semantics                                  *)

let test_ct_semantics () =
  List.iter
    (fun (m, n) ->
      check cb
        (Printf.sprintf "CT %dx%d" m n)
        true
        (sem_equal (DFT (m * n)) (Breakdown.cooley_tukey ~m ~n)))
    [ (2, 2); (2, 4); (4, 2); (3, 5); (5, 3); (4, 4); (2, 3); (6, 6) ]

let test_six_step_semantics () =
  List.iter
    (fun (m, n) ->
      check cb
        (Printf.sprintf "six-step %dx%d" m n)
        true
        (sem_equal (DFT (m * n)) (Breakdown.six_step ~m ~n)))
    [ (2, 2); (4, 4); (2, 4); (3, 5); (4, 8) ]

let test_wht_semantics () =
  List.iter
    (fun (m, n) ->
      check cb
        (Printf.sprintf "WHT %dx%d" m n)
        true
        (sem_equal (WHT (m * n)) (Breakdown.wht_split ~m ~n)))
    [ (2, 2); (2, 4); (4, 4); (8, 2) ]

let test_ct_rule_balanced () =
  (match Breakdown.ct_rule.Rule.rewrite (DFT 16) with
  | Some f -> check cb "16 -> 4x4 split semantics" true (sem_equal (DFT 16) f)
  | None -> Alcotest.fail "should split 16");
  check cb "prime stays" true (Breakdown.ct_rule.Rule.rewrite (DFT 7) = None);
  check cb "dft2 stays" true (Breakdown.ct_rule.Rule.rewrite (DFT 2) = None)

(* ------------------------------------------------------------------ *)
(* Table 1 rules: each preserves the matrix (qcheck over legal sizes)  *)

let gen_pmu = QCheck.Gen.(pair (int_range 2 4) (int_range 1 4))

let prop_rule7 =
  QCheck.Test.make ~name:"rule (7) preserves semantics" ~count:40
    QCheck.(make Gen.(triple (int_range 2 6) (int_range 1 4) gen_pmu))
    (fun (m, nf, (p, mu)) ->
      let n = p * nf in
      let f = Smp (p, mu, Tensor (DFT m, I n)) in
      match Parallel_rules.rule7_tensor_ai.Rule.rewrite f with
      | None -> QCheck.assume_fail ()
      | Some g -> sem_equal (Tensor (DFT m, I n)) g)

let prop_rule8 =
  QCheck.Test.make ~name:"rule (8) preserves semantics" ~count:40
    QCheck.(make Gen.(triple (int_range 1 4) (int_range 1 4) gen_pmu))
    (fun (mf, nf, (p, mu)) ->
      let m = p * mf and n = p * nf in
      let f = Smp (p, mu, Perm (Perm.L (m * n, m))) in
      match Parallel_rules.rule8_stride_perm.Rule.rewrite f with
      | None -> QCheck.assume_fail ()
      | Some g -> sem_equal (Perm (Perm.L (m * n, m))) g)

let prop_rule9 =
  QCheck.Test.make ~name:"rule (9) preserves semantics" ~count:40
    QCheck.(make Gen.(triple (int_range 1 4) (int_range 2 6) gen_pmu))
    (fun (mf, n, (p, mu)) ->
      let m = p * mf in
      let f = Smp (p, mu, Tensor (I m, DFT n)) in
      match Parallel_rules.rule9_tensor_ia.Rule.rewrite f with
      | None -> QCheck.assume_fail ()
      | Some g -> sem_equal (Tensor (I m, DFT n)) g)

let prop_rule10 =
  QCheck.Test.make ~name:"rule (10) preserves semantics" ~count:40
    QCheck.(make Gen.(triple (int_range 1 4) (int_range 1 4) gen_pmu))
    (fun (mf, nf, (p, mu)) ->
      let m = 2 * mf in
      let n = mu * nf in
      let f = Smp (p, mu, Tensor (Perm (Perm.L (2 * m, 2)), I n)) in
      match Parallel_rules.rule10_perm_cache.Rule.rewrite f with
      | None -> QCheck.assume_fail ()
      | Some g -> sem_equal (Tensor (Perm (Perm.L (2 * m, 2)), I n)) g)

let prop_rule11 =
  QCheck.Test.make ~name:"rule (11) preserves semantics" ~count:40
    QCheck.(make Gen.(triple (int_range 1 4) (int_range 1 4) gen_pmu))
    (fun (mf, nf, (p, mu)) ->
      let m = p * mf and n = p * nf in
      let f = Smp (p, mu, twiddle m n) in
      match Parallel_rules.rule11_diag_split.Rule.rewrite f with
      | None -> QCheck.assume_fail ()
      | Some g -> sem_equal (twiddle m n) g)

let test_rule6 () =
  let f = Smp (2, 2, Compose [ DFT 4; DFT 4 ]) in
  match Parallel_rules.rule6_compose.Rule.rewrite f with
  | Some (Compose [ Smp (2, 2, DFT 4); Smp (2, 2, DFT 4) ]) -> ()
  | Some g -> Alcotest.failf "unexpected: %s" (to_string g)
  | None -> Alcotest.fail "rule 6 should apply"

let test_rule_preconditions () =
  (* rule 7 requires p | n *)
  check cb "rule7 p∤n" true
    (Parallel_rules.rule7_tensor_ai.Rule.rewrite (Smp (2, 1, Tensor (DFT 3, I 3))) = None);
  (* rule 7 must not fire on permutations (rule 10 territory) *)
  check cb "rule7 perm guard" true
    (Parallel_rules.rule7_tensor_ai.Rule.rewrite
       (Smp (2, 1, Tensor (Perm (Perm.L (4, 2)), I 4)))
     = None);
  (* rule 9 requires p | m *)
  check cb "rule9 p∤m" true
    (Parallel_rules.rule9_tensor_ia.Rule.rewrite (Smp (2, 1, Tensor (I 3, DFT 2))) = None);
  (* rule 10 requires mu | n *)
  check cb "rule10 mu∤n" true
    (Parallel_rules.rule10_perm_cache.Rule.rewrite
       (Smp (2, 4, Tensor (Perm (Perm.L (4, 2)), I 2)))
     = None);
  (* rule 11 requires p | size *)
  check cb "rule11 p∤size" true
    (Parallel_rules.rule11_diag_split.Rule.rewrite (Smp (3, 1, twiddle 2 2)) = None)

let test_rule9_absorbs_i1 () =
  (* m = p: the I_{m/p} factor disappears *)
  match Parallel_rules.rule9_tensor_ia.Rule.rewrite (Smp (2, 1, Tensor (I 2, DFT 4))) with
  | Some (ParTensor (2, DFT 4)) -> ()
  | Some g -> Alcotest.failf "I_1 not absorbed: %s" (to_string g)
  | None -> Alcotest.fail "should apply"

let test_parallelize_end_to_end () =
  List.iter
    (fun (p, mu, m, n) ->
      let f = Breakdown.cooley_tukey ~m ~n in
      match Parallel_rules.parallelize ~p ~mu f with
      | Error e -> Alcotest.failf "parallelize failed: %s" e
      | Ok g ->
          check cb "no tags" false (has_tag g);
          check cb "fully optimized" true (Props.fully_optimized ~p ~mu g);
          check cb "semantics" true (sem_equal f g))
    [ (2, 1, 4, 4); (2, 2, 4, 4); (2, 2, 8, 8); (4, 2, 8, 8); (3, 1, 6, 6);
      (2, 4, 8, 16) ]

let test_parallelize_failure () =
  (* p = 4 cannot split DFT_6 x-loops (4 does not divide 6) *)
  match Parallel_rules.parallelize ~p:4 ~mu:1 (Breakdown.cooley_tukey ~m:6 ~n:6) with
  | Error _ -> ()
  | Ok g -> Alcotest.failf "expected failure, got %s" (to_string g)

let test_parallelize_termination_m_eq_p () =
  (* regression: with m = p the stride-permutation rule must not rewrite
     L^{pn}_p to itself forever; µ = 1 handles the residue as P ⊗̄ I_1 *)
  List.iter
    (fun (p, m, n) ->
      let f = Breakdown.cooley_tukey ~m ~n in
      match Parallel_rules.parallelize ~p ~mu:1 f with
      | Ok g ->
          check cb "fully optimized" true (Props.fully_optimized ~p ~mu:1 g);
          check cb "semantics" true (sem_equal f g)
      | Error e -> Alcotest.failf "p=%d %dx%d: %s" p m n e)
    [ (2, 2, 72); (2, 2, 4); (3, 3, 9); (4, 4, 16); (2, 4, 2) ]

let test_parallelize_trace_rules () =
  (* the derivation of (14) uses exactly the Table 1 rule set *)
  let f = Smp (2, 2, Breakdown.cooley_tukey ~m:8 ~n:8) in
  let _, trace = Rule.fixpoint Parallel_rules.all f in
  check cb "trace nonempty" true (trace <> []);
  List.iter
    (fun name ->
      check cb (name ^ " known") true
        (List.exists
           (fun (r : Rule.t) -> r.Rule.name = name)
           Parallel_rules.all))
    trace

let suite =
  [
    Alcotest.test_case "engine: apply_root" `Quick test_apply_root;
    Alcotest.test_case "engine: leftmost-outermost" `Quick test_apply_once_leftmost;
    Alcotest.test_case "engine: fixpoint" `Quick test_fixpoint_terminates;
    Alcotest.test_case "engine: step limit" `Quick test_fixpoint_limit;
    Alcotest.test_case "Cooley-Tukey rule (1)" `Quick test_ct_semantics;
    Alcotest.test_case "six-step rule (3)" `Quick test_six_step_semantics;
    Alcotest.test_case "WHT split" `Quick test_wht_semantics;
    Alcotest.test_case "nondeterministic CT rule" `Quick test_ct_rule_balanced;
    QCheck_alcotest.to_alcotest prop_rule7;
    QCheck_alcotest.to_alcotest prop_rule8;
    QCheck_alcotest.to_alcotest prop_rule9;
    QCheck_alcotest.to_alcotest prop_rule10;
    QCheck_alcotest.to_alcotest prop_rule11;
    Alcotest.test_case "rule (6) compose" `Quick test_rule6;
    Alcotest.test_case "rule preconditions" `Quick test_rule_preconditions;
    Alcotest.test_case "rule (9) absorbs I_1" `Quick test_rule9_absorbs_i1;
    Alcotest.test_case "parallelize: end to end" `Quick test_parallelize_end_to_end;
    Alcotest.test_case "parallelize: graceful failure" `Quick test_parallelize_failure;
    Alcotest.test_case "parallelize: m = p termination" `Quick
      test_parallelize_termination_m_eq_p;
    Alcotest.test_case "parallelize: trace uses Table 1" `Quick test_parallelize_trace_rules;
  ]
