(* Standalone chaos soak driver for the FFT service — the long-form
   companion to the single-seed soak inside the Alcotest suite.  Run via
   the dune alias:

     dune build @service-soak

   or directly with a seed sweep:

     ./service_soak_main.exe --seeds 1,2,3 --requests 500

   Exit status is non-zero if any seed violates a service invariant
   (wrong answer, daemon death, unbounded error latency, isolation
   breach). *)

let parse_seeds s =
  String.split_on_char ',' s
  |> List.filter_map (fun x ->
         match int_of_string_opt (String.trim x) with
         | Some n -> Some n
         | None ->
             Printf.eprintf "service_soak: ignoring bad seed %S\n" x;
             None)

let () =
  let seeds = ref [ 1; 2 ] in
  let requests = ref 300 in
  let clients = ref 3 in
  let args =
    [
      ("--seeds", Arg.String (fun s -> seeds := parse_seeds s),
       "LIST  comma-separated fault seeds (default 1,2)");
      ("--requests", Arg.Set_int requests,
       "N  requests per checked client (default 300)");
      ("--clients", Arg.Set_int clients,
       "N  honest client domains (default 3; chaos and rogue ride along)");
    ]
  in
  Arg.parse args
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "service_soak_main [--seeds LIST] [--requests N] [--clients N]";
  let failures = ref 0 in
  List.iter
    (fun seed ->
      Printf.printf "=== seed %d ===\n%!" seed;
      let r =
        Spiral_service.Soak.run ~seed ~clients:!clients ~requests:!requests ()
      in
      Format.printf "%a@." Spiral_service.Soak.pp_report r;
      let fail msg =
        incr failures;
        Printf.printf "FAIL(seed %d): %s\n%!" seed msg
      in
      if r.wrong > 0 then fail (Printf.sprintf "%d wrong answers" r.wrong);
      if not r.server_survived then fail "server did not survive";
      if r.honest_internal > 0 then
        fail
          (Printf.sprintf "isolation breach: %d honest internal errors"
             r.honest_internal);
      if r.max_error_reply_us >= 15e6 then
        fail
          (Printf.sprintf "error reply took %.0f us" r.max_error_reply_us))
    !seeds;
  if !failures = 0 then print_endline "service soak: all invariants held"
  else begin
    Printf.printf "service soak: %d invariant violation(s)\n" !failures;
    exit 1
  end
