(* Translation validation: every optimizer certificate discharged on the
   green path, tampered certificates and witnesses rejected, an injected
   check fault routed to the engine's sequential fallback (never a wrong
   answer), digest-keyed caching shared by clones but not by mutated
   plans, and proof that validation leaves nothing on the execution hot
   path. *)

open Spiral_util
open Spiral_rewrite
open Spiral_codegen
open Spiral_smp
module V = Spiral_validate

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let mc_formula () =
  match
    Derive.multicore_dft ~p:4 ~mu:2
      (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
  with
  | Ok f -> f
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let is_error name = function
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: tampered certificate was accepted" name

let is_ok name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: valid certificate rejected: %s" name msg

(* ------------------------------------------------------------------ *)
(* Green path: every obligation of a real optimized plan discharges    *)

let test_validate_green () =
  Counters.reset ();
  let plan = Plan.of_formula (mc_formula ()) in
  is_ok "sampled" (V.validate_plan_result ~mode:V.Sampled ~workers:4 plan);
  check cb "plan counted" true (Counters.get "validate.plan" = 1);
  check cb "obligations discharged" true (Counters.get "validate.check" >= 4);
  check ci "no failures" 0 (Counters.get "validate.failed");
  (* a second worker count revalidates only the worker-dependent
     obligations, against the same cached report *)
  is_ok "second worker count"
    (V.validate_plan_result ~mode:V.Sampled ~workers:2 plan);
  check ci "no failures after p=2" 0 (Counters.get "validate.failed")

let test_validate_exhaustive () =
  Counters.reset ();
  let plan = Plan.of_formula (mc_formula ()) in
  is_ok "exhaustive" (V.validate_plan_result ~mode:V.Exhaustive ~workers:4 plan);
  check ci "exhaustive counted" 1 (Counters.get "validate.exhaustive");
  check ci "no failures" 0 (Counters.get "validate.failed")

(* fused explicit-data plans carry non-trivial gather chains; their
   certificate must also discharge *)
let test_validate_fusion_cert () =
  let six =
    match Derive.six_step_dft ~p:2 ~mu:4 ~m:16 ~n:16 with
    | Ok f -> f
    | Error e -> Alcotest.fail (Derive.error_to_string e)
  in
  let plan = Plan.of_formula ~explicit_data:true ~fuse:true six in
  let cert =
    match plan.Plan.fusion_cert with
    | Some c -> c
    | None -> Alcotest.fail "fused plan carries no certificate"
  in
  check cb "fusion actually composed chains" true
    (List.exists (fun c -> c.Optimize.gchain <> []) cert.Optimize.claims);
  is_ok "fusion sampled" (V.check_fusion ~mode:V.Sampled cert);
  is_ok "fusion exhaustive" (V.check_fusion ~mode:V.Exhaustive cert)

(* ------------------------------------------------------------------ *)
(* Tampered certificates must be rejected                              *)

let test_tampered_fusion () =
  let six =
    match Derive.six_step_dft ~p:2 ~mu:4 ~m:16 ~n:16 with
    | Ok f -> f
    | Error e -> Alcotest.fail (Derive.error_to_string e)
  in
  let plan = Plan.of_formula ~explicit_data:true ~fuse:true six in
  let cert = Option.get plan.Plan.fusion_cert in
  (* drop one composed pass from a claim: the coverage obligation
     (every original pass accounted for exactly once) must fail *)
  let dropped =
    {
      cert with
      Optimize.claims =
        List.map
          (fun c ->
            match c.Optimize.gchain with
            | _ :: rest -> { c with Optimize.gchain = rest }
            | [] -> c)
          cert.Optimize.claims;
    }
  in
  is_error "dropped chain entry" (V.check_fusion dropped);
  (* reorder the claims: the per-claim src/shape obligations break *)
  let reordered = { cert with Optimize.claims = List.rev cert.Optimize.claims } in
  is_error "reordered claims" (V.check_fusion reordered);
  (* swap the fused IR for the original: pass counts disagree *)
  let swapped = { cert with Optimize.fused = cert.Optimize.original } in
  is_error "wrong fused IR" (V.check_fusion swapped)

let test_tampered_elision () =
  let plan = Plan.of_formula (mc_formula ()) in
  let workers = 4 in
  let mask, wits = Par_exec.elision_witness ~workers plan in
  check cb "plan elides something at p=4" true (Array.exists Fun.id mask);
  is_ok "untampered claims"
    (V.check_elision_claims ~workers plan (mask, wits));
  (* corrupt one witness's write-set: the re-derivation must disagree *)
  let forged =
    List.map
      (fun (w : Par_exec.boundary_witness) ->
        let writer = Array.copy w.Par_exec.writer in
        writer.(0) <- (writer.(0) + 1) mod workers;
        { w with Par_exec.writer })
      wits
  in
  is_error "forged write-set" (V.check_elision_claims ~workers plan (mask, forged));
  (* claim an elision with no witness at all *)
  is_error "missing witness" (V.check_elision_claims ~workers plan (mask, []));
  (* claim two consecutive elisions: the no-chain rule must fire *)
  let chained = Array.map (fun _ -> true) mask in
  is_error "chained elision"
    (V.check_elision_claims ~workers plan (chained, wits))

let test_tampered_vec_cert () =
  let f = Ruletree.expand (Ruletree.mixed_radix 1024) in
  let _, nu, cert =
    Spiral_fft.Planner.vectorize_formula_certified ~vec:(`Nu 4) f
  in
  check ci "lowering achieved nu=4" 4 nu;
  let cert = Option.get cert in
  is_ok "vec cert" (V.check_vectorization cert);
  (* claim the lowering came from a different-size scalar formula *)
  let wrong_scalar =
    { cert with V.vc_scalar = Ruletree.expand (Ruletree.mixed_radix 512) }
  in
  is_error "dimension mismatch" (V.check_vectorization wrong_scalar);
  (* a vector length below 2 is no lowering at all *)
  is_error "nu < 2" (V.check_vectorization { cert with V.vc_nu = 1 })

let test_split_coverage () =
  let f = Ruletree.expand (Ruletree.mixed_radix 1024) in
  let vf, nu, _ =
    Spiral_fft.Planner.vectorize_formula_certified ~vec:(`Nu 4) f
  in
  check ci "nu=4" 4 nu;
  let plan = Plan.of_formula ~layout:Plan.Split vf in
  is_ok "split coverage sampled"
    (V.check_split_coverage ~mode:V.Sampled ~workers:1 plan);
  is_ok "split coverage exhaustive"
    (V.check_split_coverage ~mode:V.Exhaustive ~workers:1 plan);
  (* an interleaved plan has no split obligations (vacuously Ok) *)
  is_ok "interleaved is vacuous"
    (V.check_split_coverage ~workers:1 (Plan.of_formula f))

(* ------------------------------------------------------------------ *)
(* Fault-injected checks: the engine must route to the fallback        *)

let test_injected_fault_falls_back () =
  Fault.reset ();
  Counters.reset ();
  let derive ~threads ~mu =
    Spiral_fft.Planner.derive_formula ~threads ~mu
      ~tree:(Ruletree.mixed_radix 1024) 1024
  in
  let p = Spiral_fft.Problem.make Spiral_fft.Problem.Dft [ 1024 ] in
  (* a clean plan first, to pin the expected answer *)
  let x = Cvec.random ~seed:41 1024 in
  let want = Naive_dft.dft x in
  Fault.arm ~site:"validate.check" ~after:0 ~times:1 ();
  let eng = Spiral_fft.Engine.plan ~cache:false ~vec:(`Nu 4) ~derive p in
  Fault.reset ();
  check cb "a check reported the injected fault" true
    (Counters.get "validate.failed" > 0);
  check ci "engine took the validation fallback" 1
    (Counters.get "engine.validation_fallback");
  (* the suspect plan never executes: the engine fell back to the
     unfused scalar sequential path *)
  check ci "fallback is scalar" 0 (Spiral_fft.Engine.vectorized eng);
  check ci "fallback is sequential" 1 (Spiral_fft.Engine.threads eng);
  let y = Cvec.create 1024 in
  Spiral_fft.Engine.execute_into eng ~src:x ~dst:y;
  check cb "fallback computes the right answer" true
    (Cvec.max_abs_diff y want < 1e-6);
  Spiral_fft.Engine.destroy eng;
  (* a parallel derivation that fails validation also counts the
     sequential degradation, like any other seq fallback *)
  Counters.reset ();
  Fault.arm ~site:"validate.check" ~after:0 ~times:1 ();
  let eng2 = Spiral_fft.Engine.plan ~cache:false ~threads:2 ~mu:2 ~derive p in
  Fault.reset ();
  check ci "validation fallback counted" 1
    (Counters.get "engine.validation_fallback");
  check ci "seq degradation counted" 1 (Counters.get "engine.seq_fallback");
  check ci "runs on one worker" 1 (Spiral_fft.Engine.threads eng2);
  let y2 = Cvec.create 1024 in
  Spiral_fft.Engine.execute_into eng2 ~src:x ~dst:y2;
  check cb "parallel fallback correct" true (Cvec.max_abs_diff y2 want < 1e-6);
  Spiral_fft.Engine.destroy eng2

(* ------------------------------------------------------------------ *)
(* Caching: clones share discharged certificates, mutants do not       *)

let test_clone_shares_report () =
  Counters.reset ();
  let master = Plan.of_formula (mc_formula ()) in
  is_ok "master" (V.validate_plan_result ~workers:4 master);
  let runs = Counters.get "validate.plan" in
  let checks = Counters.get "validate.check" in
  let clone = Plan.clone master in
  is_ok "clone" (V.validate_plan_result ~workers:4 clone);
  check ci "clone revalidated nothing" runs (Counters.get "validate.plan");
  check ci "clone re-checked nothing" checks (Counters.get "validate.check");
  check ci "clone was a cache hit" 1 (Counters.get "validate.cached");
  (* the clone also inherits the cached elision mask: revalidation ran
     no fresh elision analysis *)
  check cb "elision mask cache shared" true
    (Par_exec.elision_mask ~workers:4 master
    == Par_exec.elision_mask ~workers:4 clone)

let test_mutated_clone_is_stale () =
  Counters.reset ();
  (* a private plan: mutating a clone's pass array writes through the
     shared array, so nothing else may hold this plan *)
  let master = Plan.of_formula (mc_formula ()) in
  is_ok "master" (V.validate_plan_result ~workers:4 master);
  let clone = Plan.clone master in
  let p0 = clone.Plan.passes.(0) in
  clone.Plan.passes.(0) <- { p0 with Plan.mu = Some 64 };
  check ci "no stale report yet" 0 (Counters.get "validate.stale_cert");
  is_ok "mutant revalidates" (V.validate_plan_result ~workers:4 clone);
  check ci "stale certificate detected" 1 (Counters.get "validate.stale_cert");
  check ci "mutant ran a fresh validation" 2 (Counters.get "validate.plan");
  check ci "mutation did not produce a cache hit" 0
    (Counters.get "validate.cached")

(* ------------------------------------------------------------------ *)
(* Validation is plan-time only: the hot path allocates nothing        *)

let alloc_words iters call =
  call ();
  call ();
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    call ()
  done;
  Gc.minor_words () -. w0

let test_validated_zero_alloc () =
  let n = 1024 in
  let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)) in
  is_ok "sampled" (V.validate_plan_result ~mode:V.Sampled ~workers:1 plan);
  let x = Cvec.random ~seed:51 n and y = Cvec.create n in
  check cb "sampled-validated execute allocation-free" true
    (alloc_words 50 (fun () -> Plan.execute plan x y) < 8.0);
  let paranoid = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)) in
  is_ok "exhaustive"
    (V.validate_plan_result ~mode:V.Exhaustive ~workers:1 paranoid);
  check cb "paranoid-validated execute allocation-free" true
    (alloc_words 50 (fun () -> Plan.execute paranoid x y) < 8.0)

let suite =
  [
    Alcotest.test_case "green path: all obligations discharge" `Quick
      test_validate_green;
    Alcotest.test_case "green path: exhaustive mode" `Quick
      test_validate_exhaustive;
    Alcotest.test_case "fusion certificate discharges" `Quick
      test_validate_fusion_cert;
    Alcotest.test_case "tampered fusion certificate rejected" `Quick
      test_tampered_fusion;
    Alcotest.test_case "tampered elision claims rejected" `Quick
      test_tampered_elision;
    Alcotest.test_case "tampered vec certificate rejected" `Quick
      test_tampered_vec_cert;
    Alcotest.test_case "split schedule coverage" `Quick test_split_coverage;
    Alcotest.test_case "injected check fault routes to fallback" `Quick
      test_injected_fault_falls_back;
    Alcotest.test_case "clone shares the discharged report" `Quick
      test_clone_shares_report;
    Alcotest.test_case "mutated clone cannot reuse a stale report" `Quick
      test_mutated_clone_is_stale;
    Alcotest.test_case "validated plans execute allocation-free" `Quick
      test_validated_zero_alloc;
  ]
