(* Exhaustive 2-D schedule sweep — the CI `runtest-2d` lane
   (`dune build @dft2d`).

   Every (R, C) in {4..256}² × p in {1, 2, 4} × both explicit variants
   is planned, executed and checked against the separable naive
   reference, and its barrier budget is enforced: a parallel strided
   schedule crosses exactly one real barrier (the row→column boundary),
   a parallel tiled schedule at most two, and every other pass boundary
   must have been discharged by the elision certificate.  The same
   binary runs a second time under SPIRAL_PARANOID=1 (size-capped), so
   every certificate of every schedule in the sweep is discharged
   exhaustively. *)

open Spiral_util

let sizes = [ 4; 8; 16; 32; 64; 128; 256 ]
let thread_counts = [ 1; 2; 4 ]

(* separable O(RC(R+C)·max(R,C)) reference: naive DFT on every row,
   then on every column of the result *)
let naive_dft2d rows cols x =
  let tmp = Cvec.create (rows * cols) in
  let row = Cvec.create cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      Cvec.set row c (Cvec.get x ((r * cols) + c))
    done;
    let fr = Naive_dft.dft row in
    for c = 0 to cols - 1 do
      Cvec.set tmp ((r * cols) + c) (Cvec.get fr c)
    done
  done;
  let out = Cvec.create (rows * cols) in
  let col = Cvec.create rows in
  for c = 0 to cols - 1 do
    for r = 0 to rows - 1 do
      Cvec.set col r (Cvec.get tmp ((r * cols) + c))
    done;
    let fc = Naive_dft.dft col in
    for r = 0 to rows - 1 do
      Cvec.set out ((r * cols) + c) (Cvec.get fc r)
    done
  done;
  out

let () =
  let max_n = ref max_int in
  let rec parse = function
    | [] -> ()
    | "--max" :: v :: rest ->
        max_n := int_of_string v;
        parse rest
    | a :: _ ->
        prerr_endline ("dft2d_sweep: unknown argument " ^ a);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paranoid = Sys.getenv_opt "SPIRAL_PARANOID" <> None in
  let failures = ref 0 in
  let plans = ref 0 in
  List.iter
    (fun rows ->
      List.iter
        (fun cols ->
          let n = rows * cols in
          if n <= !max_n then begin
            let x = Cvec.random ~seed:((rows * 1000) + cols) n in
            let want = naive_dft2d rows cols x in
            let tol = 1e-10 *. float_of_int n in
            List.iter
              (fun p ->
                List.iter
                  (fun (vname, variant) ->
                    incr plans;
                    Spiral_fft.Dft2d.with_plan ~threads:p ~variant ~rows
                      ~cols (fun t ->
                        let y = Spiral_fft.Dft2d.execute t x in
                        let err = Cvec.max_abs_diff y want in
                        let sched = Spiral_fft.Dft2d.schedule t in
                        let barriers = Spiral_fft.Dft2d.barriers t in
                        let barrier_ok =
                          if not (Spiral_fft.Dft2d.parallel t) then
                            barriers = 0
                          else
                            match sched with
                            | "strided" -> barriers = 1
                            | "tiled" -> barriers <= 2
                            | _ -> true
                        in
                        if err > tol || not barrier_ok then begin
                          incr failures;
                          Printf.printf
                            "FAIL dft2d[%dx%d] p=%d %s: schedule=%s \
                             err=%.3e (tol %.1e) barriers=%d\n\
                             %!"
                            rows cols p vname sched err tol barriers
                        end))
                  [
                    ("strided", Spiral_fft.Dft2d.Strided);
                    ("tiled", Spiral_fft.Dft2d.Tiled);
                  ])
              thread_counts
          end)
        sizes)
    sizes;
  Printf.printf "dft2d sweep%s: %d plans, %d failures\n"
    (if paranoid then " (paranoid)" else "")
    !plans !failures;
  exit (if !failures = 0 then 0 else 1)
