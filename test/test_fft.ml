open Spiral_util
open Spiral_fft

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Public DFT API                                                      *)

let test_plan_forward () =
  List.iter
    (fun n ->
      Dft.with_plan n (fun t ->
          let x = Cvec.random ~seed:n n in
          check cb
            (Printf.sprintf "n=%d" n)
            true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x)
            < 1e-7 *. float_of_int n)))
    [ 1; 2; 4; 8; 30; 64; 100; 256; 360; 1024 ]

let prop_roundtrip =
  QCheck.Test.make ~name:"inverse (forward x) = x" ~count:25
    QCheck.(int_range 1 512)
    (fun n ->
      Dft.with_plan n (fun fwd ->
          Dft.with_plan ~direction:Dft.Inverse n (fun inv ->
              let x = Cvec.random ~seed:n n in
              Cvec.max_abs_diff (Dft.execute inv (Dft.execute fwd x)) x < 1e-8)))

let test_plan_threads () =
  Dft.with_plan ~threads:2 ~mu:2 256 (fun t ->
      check cb "parallel" true (Dft.parallel t);
      check ci "threads" 2 (Dft.threads t);
      let x = Cvec.random ~seed:1 256 in
      check cb "matches naive" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-7))

let test_plan_threads_fallback () =
  (* n = 20 cannot satisfy (pµ)² | n: silently falls back to sequential *)
  Dft.with_plan ~threads:4 ~mu:4 20 (fun t ->
      check cb "fell back" false (Dft.parallel t);
      check ci "threads 1" 1 (Dft.threads t);
      let x = Cvec.random ~seed:2 20 in
      check cb "still correct" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-8))

let test_plan_parallel_equals_sequential () =
  let x = Cvec.random ~seed:7 1024 in
  let seq = Dft.with_plan 1024 (fun t -> Dft.execute t x) in
  Dft.with_plan ~threads:4 ~mu:2 1024 (fun t ->
      check cb "parallel used" true (Dft.parallel t);
      check cb "bit-compatible result" true
        (Cvec.max_abs_diff seq (Dft.execute t x) < 1e-10))

let test_plan_inverse_parallel () =
  Dft.with_plan ~direction:Dft.Inverse ~threads:2 ~mu:2 256 (fun t ->
      let x = Cvec.random ~seed:4 256 in
      check cb "parallel inverse" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.idft x) < 1e-8))

let test_plan_custom_tree () =
  let tree = Spiral_rewrite.Ruletree.Ct (Leaf 8, Leaf 8) in
  Dft.with_plan ~tree 64 (fun t ->
      let x = Cvec.random ~seed:5 64 in
      check cb "custom tree" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-8));
  try
    Dft.with_plan ~tree 128 ignore;
    Alcotest.fail "tree size mismatch accepted"
  with Invalid_argument _ -> ()

let test_plan_oversized_leaf_tree () =
  (* regression: a user tree with an oversized leaf must surface as
     Invalid_argument, not a raw internal exception *)
  let tree = Spiral_rewrite.Ruletree.Ct (Leaf 2, Leaf 32) in
  Dft.with_plan ~tree 64 (fun t -> ignore (Dft.execute t (Cvec.random 64)));
  try
    Dft.with_plan ~tree:(Spiral_rewrite.Ruletree.Leaf 37) 37 ignore;
    Alcotest.fail "oversized leaf accepted"
  with Invalid_argument _ -> ()

let test_plan_validation () =
  (try
     Dft.with_plan 0 ignore;
     Alcotest.fail "n = 0 accepted"
   with Invalid_argument _ -> ());
  Dft.with_plan 8 (fun t ->
      try
        ignore (Dft.execute t (Cvec.create 4));
        Alcotest.fail "wrong length accepted"
      with Invalid_argument _ -> ())

let test_plan_destroy () =
  let t = Dft.plan 16 in
  Dft.destroy t;
  Dft.destroy t;
  (* idempotent *)
  try
    ignore (Dft.execute t (Cvec.create 16));
    Alcotest.fail "use after destroy"
  with Invalid_argument _ -> ()

let test_description () =
  Dft.with_plan ~threads:2 ~mu:2 64 (fun t ->
      let d = Dft.description t in
      check cb "mentions size" true (String.length d > 10);
      check cb "formula available" true
        (Spiral_spl.Formula.dim (Dft.formula t) = 64))

let test_parseval () =
  Dft.with_plan 256 (fun t ->
      let x = Cvec.random ~seed:11 256 in
      let y = Dft.execute t x in
      let ex = Cvec.l2_norm x and ey = Cvec.l2_norm y in
      check (Alcotest.float 1e-6) "parseval" (ex *. ex *. 256.0) (ey *. ey))

let test_time_shift_phase () =
  (* shifting a signal multiplies the spectrum by a phase: |bins| equal *)
  let n = 64 in
  let x = Cvec.random ~seed:13 n in
  let shifted = Cvec.create n in
  for i = 0 to n - 1 do
    Cvec.set shifted i (Cvec.get x ((i + 1) mod n))
  done;
  Dft.with_plan n (fun t ->
      let fx = Dft.execute t x and fs = Dft.execute t shifted in
      for k = 0 to n - 1 do
        let m1 = Complex.norm (Cvec.get fx k) and m2 = Complex.norm (Cvec.get fs k) in
        if Float.abs (m1 -. m2) > 1e-8 then Alcotest.failf "bin %d" k
      done)

(* ------------------------------------------------------------------ *)
(* Bluestein (arbitrary sizes, including large primes)                 *)

let test_bluestein_primes () =
  List.iter
    (fun n ->
      Dft.with_plan n (fun t ->
          check cb (Printf.sprintf "parallel flag n=%d" n) false (Dft.parallel t);
          let x = Cvec.random ~seed:n n in
          check cb (Printf.sprintf "prime n=%d" n) true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x)
            < 1e-6 *. float_of_int n)))
    [ 37; 41; 97; 127; 211; 509 ]

let test_bluestein_composite_large_factor () =
  (* 2 * 61: the factor 61 exceeds the codelet range *)
  List.iter
    (fun n ->
      Dft.with_plan n (fun t ->
          let x = Cvec.random ~seed:n n in
          check cb (Printf.sprintf "n=%d" n) true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-6)))
    [ 122; 183; 37 * 4 ]

let test_bluestein_direct_dispatch () =
  check cb "1024 direct" true (Bluestein.supported_directly 1024);
  check cb "360 direct" true (Bluestein.supported_directly 360);
  check cb "37 not direct" false (Bluestein.supported_directly 37);
  check cb "122 not direct" false (Bluestein.supported_directly 122)

let test_bluestein_inner_size () =
  let b = Bluestein.plan 100 in
  (* smallest power of two >= 199 *)
  check ci "inner size" 256 (Bluestein.inner_size b);
  Bluestein.destroy b

let test_bluestein_inverse () =
  Dft.with_plan ~direction:Dft.Inverse 101 (fun inv ->
      Dft.with_plan 101 (fun fwd ->
          let x = Cvec.random ~seed:9 101 in
          check cb "prime roundtrip" true
            (Cvec.max_abs_diff (Dft.execute inv (Dft.execute fwd x)) x < 1e-8)))

let test_bluestein_threaded_inner () =
  (* the inner power-of-two transform may be parallelized *)
  Dft.with_plan ~threads:2 ~mu:2 97 (fun t ->
      let x = Cvec.random ~seed:12 97 in
      check cb "threaded bluestein" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-7))

let prop_bluestein_matches_naive =
  QCheck.Test.make ~name:"bluestein matches naive for any size" ~count:30
    QCheck.(int_range 1 300)
    (fun n ->
      let b = Bluestein.plan n in
      let x = Cvec.random ~seed:n n in
      let y = Cvec.create n in
      Bluestein.execute_into b ~src:x ~dst:y;
      Bluestein.destroy b;
      Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-6 *. float_of_int (max 1 n))

(* ------------------------------------------------------------------ *)
(* Signal helpers                                                      *)

let direct_cyclic_convolution x y =
  let n = Cvec.length x in
  let z = Cvec.create n in
  for k = 0 to n - 1 do
    let acc = ref Complex.zero in
    for j = 0 to n - 1 do
      acc :=
        Complex.add !acc
          (Complex.mul (Cvec.get x j) (Cvec.get y ((k - j + n) mod n)))
    done;
    Cvec.set z k !acc
  done;
  z

let test_convolution_theorem () =
  let n = 32 in
  let x = Cvec.random ~seed:1 n and y = Cvec.random ~seed:2 n in
  let fast = Signal.convolve x y in
  let direct = direct_cyclic_convolution x y in
  check cb "fast = direct" true (Cvec.max_abs_diff fast direct < 1e-8)

let test_correlation_vs_convolution () =
  (* correlate x y at lag 0 = sum conj(x_j) y_j *)
  let n = 16 in
  let x = Cvec.random ~seed:3 n and y = Cvec.random ~seed:4 n in
  let c = Signal.correlate x y in
  let want = ref Complex.zero in
  for j = 0 to n - 1 do
    want :=
      Complex.add !want (Complex.mul (Complex.conj (Cvec.get x j)) (Cvec.get y j))
  done;
  check cb "lag 0" true (Complex.norm (Complex.sub (Cvec.get c 0) !want) < 1e-8)

let test_spectrum_peak () =
  let n = 128 and freq = 7 in
  let s = Signal.power_spectrum (Signal.sine_wave ~n ~freq ()) in
  match Signal.dominant_bins ~count:1 s with
  | [ (bin, _) ] -> check ci "peak at freq" freq bin
  | _ -> Alcotest.fail "no dominant bin"

let test_spectrum_two_tones () =
  let n = 256 in
  let x =
    Cvec.add (Signal.sine_wave ~n ~freq:10 ~amplitude:2.0 ())
      (Signal.sine_wave ~n ~freq:40 ())
  in
  let bins = List.map fst (Signal.dominant_bins ~count:2 (Signal.power_spectrum x)) in
  check cb "10 found" true (List.mem 10 bins);
  check cb "40 found" true (List.mem 40 bins)

let test_pointwise_mul () =
  let x = Cvec.of_complex_array [| { Complex.re = 1.0; im = 2.0 } |] in
  let y = Cvec.of_complex_array [| { Complex.re = 3.0; im = -1.0 } |] in
  let z = Signal.pointwise_mul x y in
  check cb "complex product" true
    (Complex.norm (Complex.sub (Cvec.get z 0) { Complex.re = 5.0; im = 5.0 }) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Batched transforms                                                  *)

let test_batch_matches_individual () =
  Batch.with_plan ~count:5 64 (fun t ->
      let x = Cvec.random ~seed:2 (5 * 64) in
      let y = Batch.execute t x in
      Dft.with_plan 64 (fun single ->
          for b = 0 to 4 do
            let slice = Cvec.create 64 in
            Array.blit x (2 * b * 64) slice 0 (2 * 64);
            let want = Dft.execute single slice in
            let got = Cvec.create 64 in
            Array.blit y (2 * b * 64) got 0 (2 * 64);
            if Cvec.max_abs_diff got want > 1e-10 then
              Alcotest.failf "batch element %d" b
          done))

let test_batch_parallel () =
  (* rule (9) parallelizes the batch loop directly *)
  Batch.with_plan ~threads:4 ~mu:4 ~count:8 256 (fun t ->
      check cb "parallel" true (Batch.parallel t);
      check cb "fully optimized" true
        (Spiral_spl.Props.fully_optimized ~p:4 ~mu:4 (Batch.formula t));
      let x = Cvec.random ~seed:9 (8 * 256) in
      let y = Batch.execute t x in
      Batch.with_plan ~count:8 256 (fun seq ->
          check cb "same as sequential" true
            (Cvec.max_abs_diff y (Batch.execute seq x) < 1e-10)))

let test_batch_parallel_fallback () =
  (* p does not divide the batch count and the divisibility fails *)
  Batch.with_plan ~threads:4 ~mu:4 ~count:3 5 (fun t ->
      check cb "fell back" false (Batch.parallel t);
      let x = Cvec.random ~seed:4 15 in
      ignore (Batch.execute t x))

(* ------------------------------------------------------------------ *)
(* Walsh-Hadamard transforms                                           *)

let wht_reference n x =
  Cmatrix.apply (Spiral_spl.Semantics.to_matrix (Spiral_spl.Formula.WHT n)) x

let test_wht_sequential () =
  List.iter
    (fun n ->
      Wht.with_plan n (fun t ->
          let x = Cvec.random ~seed:n n in
          check cb (Printf.sprintf "wht %d" n) true
            (Cvec.max_abs_diff (Wht.execute t x) (wht_reference n x) < 1e-8)))
    [ 1; 2; 8; 64; 256; 1024 ]

let test_wht_parallel () =
  Wht.with_plan ~threads:2 ~mu:2 256 (fun t ->
      check cb "parallel" true (Wht.parallel t);
      let x = Cvec.random ~seed:6 256 in
      check cb "matches reference" true
        (Cvec.max_abs_diff (Wht.execute t x) (wht_reference 256 x) < 1e-8))

let test_wht_validation () =
  try
    Wht.with_plan 12 ignore;
    Alcotest.fail "non power of two accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Real-input FFT                                                      *)

let test_rfft_matches_complex () =
  List.iter
    (fun n ->
      Rfft.with_plan n (fun t ->
          let st = Random.State.make [| n |] in
          let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let xc = Cvec.create n in
          Array.iteri (fun i v -> xc.(2 * i) <- v) x;
          let want = Naive_dft.dft xc in
          let got = Rfft.forward t x in
          for k = 0 to n / 2 do
            if
              Float.abs (got.(2 * k) -. want.(2 * k)) > 1e-8
              || Float.abs (got.((2 * k) + 1) -. want.((2 * k) + 1)) > 1e-8
            then Alcotest.failf "n=%d bin %d" n k
          done))
    [ 2; 4; 6; 16; 64; 100; 256 ]

let test_rfft_roundtrip () =
  List.iter
    (fun n ->
      Rfft.with_plan n (fun t ->
          let st = Random.State.make [| n + 7 |] in
          let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let back = Rfft.inverse t (Rfft.forward t x) in
          Array.iteri
            (fun i v ->
              if Float.abs (v -. x.(i)) > 1e-9 then Alcotest.failf "n=%d i=%d" n i)
            back))
    [ 2; 4; 8; 30; 64; 256; 1024 ]

let test_rfft_dc_nyquist_real () =
  Rfft.with_plan 16 (fun t ->
      let x = Array.init 16 (fun i -> float_of_int (i mod 5)) in
      let s = Rfft.forward t x in
      check cb "DC real" true (Float.abs s.(1) < 1e-12);
      check cb "Nyquist real" true (Float.abs s.((2 * 8) + 1) < 1e-12))

let test_rfft_validation () =
  (try
     Rfft.with_plan 7 ignore;
     Alcotest.fail "odd length accepted"
   with Invalid_argument _ -> ());
  Rfft.with_plan 8 (fun t ->
      try
        ignore (Rfft.forward t (Array.make 6 0.0));
        Alcotest.fail "wrong length accepted"
      with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* 2-D DFT                                                             *)

(* reference: 1-D naive DFT over every row, then every column *)
let naive_dft2d ~rows ~cols x =
  let row_done = Cvec.create (rows * cols) in
  for r = 0 to rows - 1 do
    let slice = Cvec.create cols in
    Array.blit x (2 * r * cols) slice 0 (2 * cols);
    Array.blit (Naive_dft.dft slice) 0 row_done (2 * r * cols) (2 * cols)
  done;
  let out = Cvec.create (rows * cols) in
  for c = 0 to cols - 1 do
    let col = Cvec.create rows in
    for r = 0 to rows - 1 do
      Cvec.set col r (Cvec.get row_done ((r * cols) + c))
    done;
    let f = Naive_dft.dft col in
    for r = 0 to rows - 1 do
      Cvec.set out ((r * cols) + c) (Cvec.get f r)
    done
  done;
  out

let test_dft2d_matches_naive () =
  List.iter
    (fun (rows, cols) ->
      Dft2d.with_plan ~rows ~cols (fun t ->
          let x = Cvec.random ~seed:(rows + cols) (rows * cols) in
          check cb
            (Printf.sprintf "%dx%d" rows cols)
            true
            (Cvec.max_abs_diff (Dft2d.execute t x)
               (naive_dft2d ~rows ~cols x)
            < 1e-7)))
    [ (4, 4); (8, 4); (4, 8); (16, 16); (8, 32); (6, 10) ]

let test_dft2d_parallel () =
  Dft2d.with_plan ~threads:2 ~mu:2 ~rows:16 ~cols:16 (fun t ->
      check cb "parallel derivation applied" true (Dft2d.parallel t);
      check cb "a 2-D schedule compiled" true
        (List.mem (Dft2d.schedule t) [ "strided"; "tiled" ]);
      let x = Cvec.random ~seed:3 256 in
      check cb "matches naive" true
        (Cvec.max_abs_diff (Dft2d.execute t x)
           (naive_dft2d ~rows:16 ~cols:16 x)
        < 1e-7))

let test_dft2d_parallel_fallback () =
  (* 6 x 10 with p=4, mu=4 cannot satisfy the divisibility conditions *)
  Dft2d.with_plan ~threads:4 ~mu:4 ~rows:6 ~cols:10 (fun t ->
      check cb "fell back to sequential" false (Dft2d.parallel t);
      let x = Cvec.random ~seed:5 60 in
      check cb "still correct" true
        (Cvec.max_abs_diff (Dft2d.execute t x) (naive_dft2d ~rows:6 ~cols:10 x)
        < 1e-8))

let test_dft2d_impulse () =
  (* the 2-D DFT of a unit impulse at the origin is all ones *)
  Dft2d.with_plan ~rows:8 ~cols:8 (fun t ->
      let y = Dft2d.execute t (Cvec.basis 64 0) in
      for i = 0 to 63 do
        if Float.abs (y.(2 * i) -. 1.0) > 1e-10 || Float.abs y.((2 * i) + 1) > 1e-10
        then Alcotest.failf "entry %d" i
      done)

(* ------------------------------------------------------------------ *)
(* DCT-II                                                              *)

let direct_dct2 x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc :=
          !acc
          +. x.(j)
             *. cos
                  (Float.pi *. float_of_int k
                   *. float_of_int ((2 * j) + 1)
                   /. (2.0 *. float_of_int n))
      done;
      !acc)

let test_dct_matches_definition () =
  List.iter
    (fun n ->
      Dct.with_plan n (fun t ->
          let st = Random.State.make [| n |] in
          let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let got = Dct.forward t x in
          let want = direct_dct2 x in
          Array.iteri
            (fun k v ->
              if Float.abs (v -. want.(k)) > 1e-8 then
                Alcotest.failf "n=%d k=%d: %g vs %g" n k v want.(k))
            got))
    [ 2; 4; 8; 16; 64; 100; 256 ]

let test_dct_roundtrip () =
  List.iter
    (fun n ->
      Dct.with_plan n (fun t ->
          let st = Random.State.make [| n + 3 |] in
          let x = Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let back = Dct.inverse t (Dct.forward t x) in
          Array.iteri
            (fun j v ->
              if Float.abs (v -. x.(j)) > 1e-9 then Alcotest.failf "n=%d j=%d" n j)
            back))
    [ 2; 4; 8; 30; 64; 256 ]

let test_dct_constant () =
  (* the DCT-II of a constant signal is an impulse at k = 0 of value n*c *)
  Dct.with_plan 16 (fun t ->
      let c = Dct.forward t (Array.make 16 2.5) in
      check cb "dc" true (Float.abs (c.(0) -. 40.0) < 1e-10);
      for k = 1 to 15 do
        if Float.abs c.(k) > 1e-10 then Alcotest.failf "bin %d" k
      done)

let test_dct_validation () =
  try
    Dct.with_plan 9 ignore;
    Alcotest.fail "odd length accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* FFTW-like baseline                                                  *)

let test_fftw_like_sequential () =
  let n = 512 in
  let x = Cvec.random ~seed:6 n in
  let y = Cvec.create n in
  Spiral_codegen.Plan.execute (Fftw_like.sequential_plan n) x y;
  check cb "seq correct" true (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-8)

let test_fftw_like_threshold () =
  check cb "below threshold" true (Fftw_like.parallel_plan ~p:2 4096 = None);
  check ci "threshold is 2^13" 8192 Fftw_like.threshold;
  match Fftw_like.parallel_plan ~p:2 8192 with
  | None -> Alcotest.fail "parallel plan above threshold"
  | Some plan ->
      check cb "has parallel passes" true
        (Array.exists
           (fun (p : Spiral_codegen.Plan.pass) -> p.Spiral_codegen.Plan.par <> None)
           plan.Spiral_codegen.Plan.passes)

let test_fftw_like_execute () =
  let n = 8192 in
  let x = Cvec.random ~seed:8 n in
  let y = Cvec.create n in
  Fftw_like.execute ~p:2 x y n;
  check cb "parallel baseline correct" true
    (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-6)

let suite =
  [
    Alcotest.test_case "plan: forward battery" `Quick test_plan_forward;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "plan: threads" `Quick test_plan_threads;
    Alcotest.test_case "plan: thread fallback" `Quick test_plan_threads_fallback;
    Alcotest.test_case "plan: parallel equals sequential" `Quick
      test_plan_parallel_equals_sequential;
    Alcotest.test_case "plan: parallel inverse" `Quick test_plan_inverse_parallel;
    Alcotest.test_case "plan: custom ruletree" `Quick test_plan_custom_tree;
    Alcotest.test_case "plan: oversized leaf tree" `Quick test_plan_oversized_leaf_tree;
    Alcotest.test_case "plan: validation" `Quick test_plan_validation;
    Alcotest.test_case "plan: destroy" `Quick test_plan_destroy;
    Alcotest.test_case "plan: description" `Quick test_description;
    Alcotest.test_case "bluestein: prime sizes" `Quick test_bluestein_primes;
    Alcotest.test_case "bluestein: large prime factors" `Quick
      test_bluestein_composite_large_factor;
    Alcotest.test_case "bluestein: dispatch predicate" `Quick
      test_bluestein_direct_dispatch;
    Alcotest.test_case "bluestein: inner size" `Quick test_bluestein_inner_size;
    Alcotest.test_case "bluestein: inverse roundtrip" `Quick test_bluestein_inverse;
    Alcotest.test_case "bluestein: threaded inner" `Quick test_bluestein_threaded_inner;
    QCheck_alcotest.to_alcotest prop_bluestein_matches_naive;
    Alcotest.test_case "parseval" `Quick test_parseval;
    Alcotest.test_case "time shift <-> phase" `Quick test_time_shift_phase;
    Alcotest.test_case "convolution theorem" `Quick test_convolution_theorem;
    Alcotest.test_case "correlation lag 0" `Quick test_correlation_vs_convolution;
    Alcotest.test_case "spectrum: single tone" `Quick test_spectrum_peak;
    Alcotest.test_case "spectrum: two tones" `Quick test_spectrum_two_tones;
    Alcotest.test_case "pointwise multiplication" `Quick test_pointwise_mul;
    Alcotest.test_case "batch: matches individual" `Quick test_batch_matches_individual;
    Alcotest.test_case "batch: parallel via rule 9" `Quick test_batch_parallel;
    Alcotest.test_case "batch: fallback" `Quick test_batch_parallel_fallback;
    Alcotest.test_case "wht: sequential" `Quick test_wht_sequential;
    Alcotest.test_case "wht: parallel" `Quick test_wht_parallel;
    Alcotest.test_case "wht: validation" `Quick test_wht_validation;
    Alcotest.test_case "dft2d: matches naive row-column" `Quick test_dft2d_matches_naive;
    Alcotest.test_case "dft2d: parallel derivation" `Quick test_dft2d_parallel;
    Alcotest.test_case "dft2d: parallel fallback" `Quick test_dft2d_parallel_fallback;
    Alcotest.test_case "dft2d: impulse" `Quick test_dft2d_impulse;
    Alcotest.test_case "dct: matches definition" `Quick test_dct_matches_definition;
    Alcotest.test_case "dct: roundtrip" `Quick test_dct_roundtrip;
    Alcotest.test_case "dct: constant signal" `Quick test_dct_constant;
    Alcotest.test_case "dct: validation" `Quick test_dct_validation;
    Alcotest.test_case "rfft: matches complex DFT" `Quick test_rfft_matches_complex;
    Alcotest.test_case "rfft: roundtrip" `Quick test_rfft_roundtrip;
    Alcotest.test_case "rfft: DC/Nyquist real" `Quick test_rfft_dc_nyquist_real;
    Alcotest.test_case "rfft: validation" `Quick test_rfft_validation;
    Alcotest.test_case "fftw-like: sequential" `Quick test_fftw_like_sequential;
    Alcotest.test_case "fftw-like: threshold policy" `Quick test_fftw_like_threshold;
    Alcotest.test_case "fftw-like: parallel execute" `Quick test_fftw_like_execute;
  ]
