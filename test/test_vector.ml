open Spiral_util
open Spiral_spl
open Spiral_rewrite
open Formula

let check = Alcotest.check
let cb = Alcotest.bool

let sem_equal = Semantics.equal_semantics ~tol:1e-8

(* ------------------------------------------------------------------ *)
(* New constructs: semantics                                           *)

let test_vtensor_semantics () =
  check cb "vtensor = tensor" true
    (sem_equal (VTensor (DFT 4, 2)) (Tensor (DFT 4, I 2)));
  check cb "vec transparent" true (sem_equal (Vec (4, DFT 8)) (DFT 8));
  check cb "vshuffle" true
    (sem_equal (VShuffle (3, 2)) (Tensor (I 3, Perm (Perm.L (4, 2)))))

let test_vector_constructs_in_plans () =
  let f =
    Formula.compose
      [ VTensor (DFT 4, 2); VShuffle (2, 2); VTensor (Perm (Perm.L (4, 2)), 2) ]
  in
  let plan = Spiral_codegen.Plan.of_formula f in
  let x = Cvec.random ~seed:3 8 in
  let y = Cvec.create 8 in
  Spiral_codegen.Plan.execute plan x y;
  check cb "compiled vector formula" true
    (Cvec.max_abs_diff y (Cmatrix.apply (Semantics.to_matrix f) x) < 1e-9)

(* ------------------------------------------------------------------ *)
(* The verified vector identity for stride permutations                *)

let test_vector_l_identity () =
  List.iter
    (fun (m, n, nu) ->
      let mn = m * n in
      let lhs = l_perm mn m in
      let rhs =
        compose
          [ Tensor (l_perm (mn / nu) m, I nu);
            Tensor (I (mn / (nu * nu)), l_perm (nu * nu) nu);
            Tensor (I (n / nu), Tensor (l_perm m (m / nu), I nu)) ]
      in
      check cb (Printf.sprintf "m=%d n=%d nu=%d" m n nu) true
        (sem_equal lhs rhs))
    [ (4, 4, 2); (8, 4, 2); (4, 8, 2); (8, 8, 4); (16, 8, 4); (6, 4, 2) ]

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

let prop_vec_rules_preserve_semantics =
  QCheck.Test.make ~name:"each vector rule preserves semantics" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 1 3))
    (fun (block, nuf) ->
      let nu = 2 * nuf in
      let candidates =
        [ Vec (nu, Tensor (DFT 3, I (block * nu)));
          Vec (nu, Tensor (I (block * nu), DFT (2 * nu)));
          Vec (nu, Perm (Perm.L (2 * nu * nu * block, nu * block * 2 / 2)));
          Vec (nu, twiddle (2 * nu) (block * nu));
          Vec (nu, CacheTensor (DFT 2, nu * block)) ]
      in
      List.for_all
        (fun f ->
          match Rule.apply_root Vector_rules.all f with
          | None -> true (* preconditions failed: fine *)
          | Some (_, g) ->
              let orig = match f with Vec (_, h) -> h | h -> h in
              Formula.dim g = Formula.dim orig)
        candidates)

let test_vectorize_ct () =
  List.iter
    (fun (m, n, nu) ->
      let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.short_vector_dft ~nu tree with
      | Error e -> Alcotest.failf "nu=%d %dx%d: %s" nu m n (Derive.error_to_string e)
      | Ok f ->
          check cb "vectorized" true (Props.vectorized ~nu f);
          check cb "no tags" false (Formula.has_tag f);
          check cb "semantics" true (sem_equal f (DFT (m * n))))
    [ (4, 4, 2); (8, 8, 2); (8, 8, 4); (16, 8, 4); (16, 16, 2) ]

let test_vectorize_executes () =
  match Derive.short_vector_dft ~nu:4 (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16)) with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Spiral_codegen.Plan.of_formula f in
      let x = Cvec.random ~seed:8 256 in
      let y = Cvec.create 256 in
      Spiral_codegen.Plan.execute plan x y;
      check cb "runs" true (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-7)

let test_vectorize_failure () =
  (* DFT_6 with nu = 4: 4 does not divide the loop bounds *)
  match Derive.short_vector_dft ~nu:4 (Ruletree.Ct (Ruletree.Leaf 2, Ruletree.Leaf 3)) with
  | Error (Derive.Rewrite_failed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Derive.error_to_string e)
  | Ok f -> Alcotest.failf "expected failure: %s" (to_string f)

let test_vectorize_nu1_trivial () =
  match Derive.short_vector_dft ~nu:1 (Ruletree.Ct (Ruletree.Leaf 4, Ruletree.Leaf 4)) with
  | Ok f -> check cb "nu=1 scalar ok" true (sem_equal f (DFT 16))
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let test_vectorized_predicate () =
  check cb "vtensor ok" true (Props.vectorized ~nu:2 (VTensor (DFT 5, 2)));
  check cb "wrong nu" false (Props.vectorized ~nu:4 (VTensor (DFT 5, 2)));
  check cb "bare compute" false (Props.vectorized ~nu:2 (DFT 8));
  check cb "bare perm" false (Props.vectorized ~nu:2 (Perm (Perm.L (8, 2))));
  check cb "diag ok" true (Props.vectorized ~nu:2 (twiddle 2 4));
  check cb "loop skeleton" true
    (Props.vectorized ~nu:2 (Tensor (I 4, VTensor (DFT 2, 2))));
  check cb "parallel skeleton" true
    (Props.vectorized ~nu:2 (ParTensor (2, VTensor (DFT 2, 2))))

(* ------------------------------------------------------------------ *)
(* The tandem: smp(p,µ) x vec(ν) of Section 3.2                        *)

let test_tandem () =
  List.iter
    (fun (p, mu, nu, m, n) ->
      let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.multicore_vector_dft ~p ~mu ~nu tree with
      | Error e ->
          Alcotest.failf "p%d mu%d nu%d: %s" p mu nu (Derive.error_to_string e)
      | Ok f ->
          check cb "vectorized" true (Props.vectorized ~nu f);
          check cb "fully optimized" true (Props.fully_optimized ~p ~mu f);
          check (Alcotest.float 0.0) "balanced" 0.0 (Cost.imbalance ~p f);
          (* exact dense semantics for small sizes; compiled execution
             (O(n log n)) for the larger ones *)
          if m * n <= 256 then
            check cb "semantics" true (sem_equal f (DFT (m * n)))
          else begin
            let plan = Spiral_codegen.Plan.of_formula f in
            let x = Cvec.random ~seed:m (m * n) in
            let y = Cvec.create (m * n) in
            Spiral_codegen.Plan.execute plan x y;
            check cb "executes correctly" true
              (Cvec.max_abs_diff y (Naive_dft.dft x)
              < 1e-6 *. float_of_int (m * n))
          end)
    [ (2, 4, 2, 16, 16); (2, 2, 2, 8, 8); (4, 4, 4, 32, 32); (2, 4, 4, 16, 16) ]

let test_tandem_executes_parallel () =
  match
    Derive.multicore_vector_dft ~p:2 ~mu:4 ~nu:2
      (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
  with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Spiral_codegen.Plan.of_formula f in
      let x = Cvec.random ~seed:4 256 in
      let want = Cvec.create 256 in
      Spiral_codegen.Plan.execute plan x want;
      check cb "sequential correct" true
        (Cvec.max_abs_diff want (Naive_dft.dft x) < 1e-7);
      Spiral_smp.Pool.with_pool 2 (fun pool ->
          let y = Cvec.create 256 in
          Spiral_smp.Par_exec.execute pool plan x y;
          check cb "parallel identical" true (Cvec.max_abs_diff y want = 0.0))

let test_tandem_no_false_sharing () =
  match
    Derive.multicore_vector_dft ~p:2 ~mu:4 ~nu:2
      (Ruletree.Ct (Ruletree.mixed_radix 32, Ruletree.mixed_radix 32))
  with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Spiral_codegen.Plan.of_formula f in
      let r =
        Spiral_sim.Simulate.run Spiral_sim.Machine.core_duo
          (Spiral_sim.Simulate.Pooled 2) plan
      in
      check Alcotest.int "zero false sharing" 0 r.Spiral_sim.Simulate.false_sharing

(* ------------------------------------------------------------------ *)
(* The split re/im (planar) execution backend                          *)

let split_plan f = Spiral_codegen.Plan.of_formula ~layout:Spiral_codegen.Plan.Split f

let run_split_plan plan n x =
  let px = Array.make (2 * n) 0.0 and py = Array.make (2 * n) 0.0 in
  Cvec.to_planar x px;
  Spiral_codegen.Plan.execute plan px py;
  let y = Cvec.create n in
  Cvec.of_planar py y;
  y

let test_split_plan_sweep () =
  (* vectorized derivations executed through the planar backend match
     the dense transform across 2^4..2^10 for both vector lengths *)
  List.iter
    (fun nu ->
      List.iter
        (fun logn ->
          let n = 1 lsl logn in
          match Derive.short_vector_dft ~nu (Ruletree.mixed_radix n) with
          | Error e ->
              Alcotest.failf "nu=%d n=%d: %s" nu n (Derive.error_to_string e)
          | Ok f ->
              if n <= 64 then
                check cb
                  (Printf.sprintf "dense semantics nu=%d n=%d" nu n)
                  true (sem_equal f (DFT n));
              let y = run_split_plan (split_plan f) n (Cvec.random ~seed:logn n) in
              let want = Naive_dft.dft (Cvec.random ~seed:logn n) in
              check cb
                (Printf.sprintf "split exec nu=%d n=%d" nu n)
                true
                (Cvec.max_abs_diff y want < 1e-8 *. float_of_int n))
        [ 4; 5; 6; 7; 8; 9; 10 ])
    [ 2; 4 ]

let test_split_blocked_passes () =
  (* the planar plan actually takes the blocked (lane-parallel) kernel
     path, not just the scalar planar fallback *)
  match Derive.short_vector_dft ~nu:4 (Ruletree.mixed_radix 4096) with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = split_plan f in
      let blocked =
        Array.to_list plan.Spiral_codegen.Plan.passes
        |> List.filter (fun (p : Spiral_codegen.Plan.pass) ->
               match p.Spiral_codegen.Plan.split with
               | Some se -> se.Spiral_codegen.Plan.vk.Spiral_codegen.Vcodelet.lanes > 1
               | None -> false)
        |> List.length
      in
      check cb "every pass blocked" true
        (blocked = Array.length plan.Spiral_codegen.Plan.passes)

let test_split_tandem_parallel () =
  (* smp(p,µ) x vec(ν) through the planar backend, executed at p ∈
     {2, 4}: bit-identical to the sequential run, correct vs naive *)
  List.iter
    (fun (p, mu, nu, m, n) ->
      let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.multicore_vector_dft ~p ~mu ~nu tree with
      | Error e ->
          Alcotest.failf "p%d mu%d nu%d: %s" p mu nu (Derive.error_to_string e)
      | Ok f ->
          let sz = m * n in
          let plan = split_plan f in
          let x = Cvec.random ~seed:p sz in
          let want = run_split_plan plan sz x in
          check cb "sequential split correct" true
            (Cvec.max_abs_diff want (Naive_dft.dft x)
            < 1e-8 *. float_of_int sz);
          Spiral_smp.Pool.with_pool p (fun pool ->
              let px = Array.make (2 * sz) 0.0
              and py = Array.make (2 * sz) 0.0 in
              Cvec.to_planar x px;
              Spiral_smp.Par_exec.execute pool plan px py;
              let y = Cvec.create sz in
              Cvec.of_planar py y;
              check cb
                (Printf.sprintf "p=%d parallel split identical" p)
                true
                (Cvec.max_abs_diff y want = 0.0)))
    [ (2, 2, 2, 8, 8); (2, 4, 2, 16, 16); (2, 4, 4, 32, 32);
      (4, 4, 4, 32, 32) ]

let test_split_zero_alloc () =
  (* steady-state planar execution allocates nothing: codelet scratch,
     odometer digits and ping-pong buffers are all plan/context-owned *)
  match Derive.short_vector_dft ~nu:4 (Ruletree.mixed_radix 1024) with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = split_plan f in
      let px = Array.make 2048 0.0 and py = Array.make 2048 0.0 in
      Cvec.to_planar (Cvec.random ~seed:5 1024) px;
      (* warm up: first call may fault in lazy state *)
      Spiral_codegen.Plan.execute plan px py;
      let w0 = Gc.minor_words () in
      for _ = 1 to 10 do
        Spiral_codegen.Plan.execute plan px py
      done;
      let dw = Gc.minor_words () -. w0 in
      check cb
        (Printf.sprintf "no allocation in split execute (%.0f words)" dw)
        true (dw = 0.0)

let test_vectorize_formula_fallback () =
  (* the planner-level lowering: `Auto falls back to scalar when no ν
     applies, `Nu reports 0 rather than raising *)
  let f6 = Ruletree.expand (Ruletree.Ct (Ruletree.Leaf 2, Ruletree.Leaf 3)) in
  let g, nu = Spiral_fft.Planner.vectorize_formula ~vec:`Auto f6 in
  check cb "auto fallback keeps formula" true (g == f6);
  check Alcotest.int "auto fallback nu" 0 nu;
  let _, nu = Spiral_fft.Planner.vectorize_formula ~vec:(`Nu 4) f6 in
  check Alcotest.int "explicit nu fails to 0" 0 nu;
  let f64 = Ruletree.expand (Ruletree.mixed_radix 64) in
  let g, nu = Spiral_fft.Planner.vectorize_formula ~vec:`Auto f64 in
  check Alcotest.int "auto picks 4" 4 nu;
  check cb "lowered is vectorized" true (Props.vectorized ~nu:4 g)

let suite =
  [
    Alcotest.test_case "constructs: semantics" `Quick test_vtensor_semantics;
    Alcotest.test_case "constructs: compile and run" `Quick test_vector_constructs_in_plans;
    Alcotest.test_case "vector stride-perm identity" `Quick test_vector_l_identity;
    QCheck_alcotest.to_alcotest prop_vec_rules_preserve_semantics;
    Alcotest.test_case "vectorize Cooley-Tukey" `Quick test_vectorize_ct;
    Alcotest.test_case "vectorized plan executes" `Quick test_vectorize_executes;
    Alcotest.test_case "vectorize: graceful failure" `Quick test_vectorize_failure;
    Alcotest.test_case "vectorize: nu = 1" `Quick test_vectorize_nu1_trivial;
    Alcotest.test_case "vectorized predicate" `Quick test_vectorized_predicate;
    Alcotest.test_case "tandem smp x vec" `Quick test_tandem;
    Alcotest.test_case "tandem executes in parallel" `Quick test_tandem_executes_parallel;
    Alcotest.test_case "tandem: no false sharing" `Quick test_tandem_no_false_sharing;
    Alcotest.test_case "split backend: size sweep" `Quick test_split_plan_sweep;
    Alcotest.test_case "split backend: blocked kernels" `Quick test_split_blocked_passes;
    Alcotest.test_case "split backend: smp tandem p=2,4" `Quick test_split_tandem_parallel;
    Alcotest.test_case "split backend: zero allocation" `Quick test_split_zero_alloc;
    Alcotest.test_case "vectorize_formula fallback" `Quick test_vectorize_formula_fallback;
  ]
