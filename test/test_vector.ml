open Spiral_util
open Spiral_spl
open Spiral_rewrite
open Formula

let check = Alcotest.check
let cb = Alcotest.bool

let sem_equal = Semantics.equal_semantics ~tol:1e-8

(* ------------------------------------------------------------------ *)
(* New constructs: semantics                                           *)

let test_vtensor_semantics () =
  check cb "vtensor = tensor" true
    (sem_equal (VTensor (DFT 4, 2)) (Tensor (DFT 4, I 2)));
  check cb "vec transparent" true (sem_equal (Vec (4, DFT 8)) (DFT 8));
  check cb "vshuffle" true
    (sem_equal (VShuffle (3, 2)) (Tensor (I 3, Perm (Perm.L (4, 2)))))

let test_vector_constructs_in_plans () =
  let f =
    Formula.compose
      [ VTensor (DFT 4, 2); VShuffle (2, 2); VTensor (Perm (Perm.L (4, 2)), 2) ]
  in
  let plan = Spiral_codegen.Plan.of_formula f in
  let x = Cvec.random ~seed:3 8 in
  let y = Cvec.create 8 in
  Spiral_codegen.Plan.execute plan x y;
  check cb "compiled vector formula" true
    (Cvec.max_abs_diff y (Cmatrix.apply (Semantics.to_matrix f) x) < 1e-9)

(* ------------------------------------------------------------------ *)
(* The verified vector identity for stride permutations                *)

let test_vector_l_identity () =
  List.iter
    (fun (m, n, nu) ->
      let mn = m * n in
      let lhs = l_perm mn m in
      let rhs =
        compose
          [ Tensor (l_perm (mn / nu) m, I nu);
            Tensor (I (mn / (nu * nu)), l_perm (nu * nu) nu);
            Tensor (I (n / nu), Tensor (l_perm m (m / nu), I nu)) ]
      in
      check cb (Printf.sprintf "m=%d n=%d nu=%d" m n nu) true
        (sem_equal lhs rhs))
    [ (4, 4, 2); (8, 4, 2); (4, 8, 2); (8, 8, 4); (16, 8, 4); (6, 4, 2) ]

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

let prop_vec_rules_preserve_semantics =
  QCheck.Test.make ~name:"each vector rule preserves semantics" ~count:40
    QCheck.(pair (int_range 1 4) (int_range 1 3))
    (fun (block, nuf) ->
      let nu = 2 * nuf in
      let candidates =
        [ Vec (nu, Tensor (DFT 3, I (block * nu)));
          Vec (nu, Tensor (I (block * nu), DFT (2 * nu)));
          Vec (nu, Perm (Perm.L (2 * nu * nu * block, nu * block * 2 / 2)));
          Vec (nu, twiddle (2 * nu) (block * nu));
          Vec (nu, CacheTensor (DFT 2, nu * block)) ]
      in
      List.for_all
        (fun f ->
          match Rule.apply_root Vector_rules.all f with
          | None -> true (* preconditions failed: fine *)
          | Some (_, g) ->
              let orig = match f with Vec (_, h) -> h | h -> h in
              Formula.dim g = Formula.dim orig)
        candidates)

let test_vectorize_ct () =
  List.iter
    (fun (m, n, nu) ->
      let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.short_vector_dft ~nu tree with
      | Error e -> Alcotest.failf "nu=%d %dx%d: %s" nu m n (Derive.error_to_string e)
      | Ok f ->
          check cb "vectorized" true (Props.vectorized ~nu f);
          check cb "no tags" false (Formula.has_tag f);
          check cb "semantics" true (sem_equal f (DFT (m * n))))
    [ (4, 4, 2); (8, 8, 2); (8, 8, 4); (16, 8, 4); (16, 16, 2) ]

let test_vectorize_executes () =
  match Derive.short_vector_dft ~nu:4 (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16)) with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Spiral_codegen.Plan.of_formula f in
      let x = Cvec.random ~seed:8 256 in
      let y = Cvec.create 256 in
      Spiral_codegen.Plan.execute plan x y;
      check cb "runs" true (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-7)

let test_vectorize_failure () =
  (* DFT_6 with nu = 4: 4 does not divide the loop bounds *)
  match Derive.short_vector_dft ~nu:4 (Ruletree.Ct (Ruletree.Leaf 2, Ruletree.Leaf 3)) with
  | Error (Derive.Rewrite_failed _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Derive.error_to_string e)
  | Ok f -> Alcotest.failf "expected failure: %s" (to_string f)

let test_vectorize_nu1_trivial () =
  match Derive.short_vector_dft ~nu:1 (Ruletree.Ct (Ruletree.Leaf 4, Ruletree.Leaf 4)) with
  | Ok f -> check cb "nu=1 scalar ok" true (sem_equal f (DFT 16))
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let test_vectorized_predicate () =
  check cb "vtensor ok" true (Props.vectorized ~nu:2 (VTensor (DFT 5, 2)));
  check cb "wrong nu" false (Props.vectorized ~nu:4 (VTensor (DFT 5, 2)));
  check cb "bare compute" false (Props.vectorized ~nu:2 (DFT 8));
  check cb "bare perm" false (Props.vectorized ~nu:2 (Perm (Perm.L (8, 2))));
  check cb "diag ok" true (Props.vectorized ~nu:2 (twiddle 2 4));
  check cb "loop skeleton" true
    (Props.vectorized ~nu:2 (Tensor (I 4, VTensor (DFT 2, 2))));
  check cb "parallel skeleton" true
    (Props.vectorized ~nu:2 (ParTensor (2, VTensor (DFT 2, 2))))

(* ------------------------------------------------------------------ *)
(* The tandem: smp(p,µ) x vec(ν) of Section 3.2                        *)

let test_tandem () =
  List.iter
    (fun (p, mu, nu, m, n) ->
      let tree = Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix n) in
      match Derive.multicore_vector_dft ~p ~mu ~nu tree with
      | Error e ->
          Alcotest.failf "p%d mu%d nu%d: %s" p mu nu (Derive.error_to_string e)
      | Ok f ->
          check cb "vectorized" true (Props.vectorized ~nu f);
          check cb "fully optimized" true (Props.fully_optimized ~p ~mu f);
          check (Alcotest.float 0.0) "balanced" 0.0 (Cost.imbalance ~p f);
          (* exact dense semantics for small sizes; compiled execution
             (O(n log n)) for the larger ones *)
          if m * n <= 256 then
            check cb "semantics" true (sem_equal f (DFT (m * n)))
          else begin
            let plan = Spiral_codegen.Plan.of_formula f in
            let x = Cvec.random ~seed:m (m * n) in
            let y = Cvec.create (m * n) in
            Spiral_codegen.Plan.execute plan x y;
            check cb "executes correctly" true
              (Cvec.max_abs_diff y (Naive_dft.dft x)
              < 1e-6 *. float_of_int (m * n))
          end)
    [ (2, 4, 2, 16, 16); (2, 2, 2, 8, 8); (4, 4, 4, 32, 32); (2, 4, 4, 16, 16) ]

let test_tandem_executes_parallel () =
  match
    Derive.multicore_vector_dft ~p:2 ~mu:4 ~nu:2
      (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
  with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Spiral_codegen.Plan.of_formula f in
      let x = Cvec.random ~seed:4 256 in
      let want = Cvec.create 256 in
      Spiral_codegen.Plan.execute plan x want;
      check cb "sequential correct" true
        (Cvec.max_abs_diff want (Naive_dft.dft x) < 1e-7);
      Spiral_smp.Pool.with_pool 2 (fun pool ->
          let y = Cvec.create 256 in
          Spiral_smp.Par_exec.execute pool plan x y;
          check cb "parallel identical" true (Cvec.max_abs_diff y want = 0.0))

let test_tandem_no_false_sharing () =
  match
    Derive.multicore_vector_dft ~p:2 ~mu:4 ~nu:2
      (Ruletree.Ct (Ruletree.mixed_radix 32, Ruletree.mixed_radix 32))
  with
  | Error e -> Alcotest.fail (Derive.error_to_string e)
  | Ok f ->
      let plan = Spiral_codegen.Plan.of_formula f in
      let r =
        Spiral_sim.Simulate.run Spiral_sim.Machine.core_duo
          (Spiral_sim.Simulate.Pooled 2) plan
      in
      check Alcotest.int "zero false sharing" 0 r.Spiral_sim.Simulate.false_sharing

let suite =
  [
    Alcotest.test_case "constructs: semantics" `Quick test_vtensor_semantics;
    Alcotest.test_case "constructs: compile and run" `Quick test_vector_constructs_in_plans;
    Alcotest.test_case "vector stride-perm identity" `Quick test_vector_l_identity;
    QCheck_alcotest.to_alcotest prop_vec_rules_preserve_semantics;
    Alcotest.test_case "vectorize Cooley-Tukey" `Quick test_vectorize_ct;
    Alcotest.test_case "vectorized plan executes" `Quick test_vectorize_executes;
    Alcotest.test_case "vectorize: graceful failure" `Quick test_vectorize_failure;
    Alcotest.test_case "vectorize: nu = 1" `Quick test_vectorize_nu1_trivial;
    Alcotest.test_case "vectorized predicate" `Quick test_vectorized_predicate;
    Alcotest.test_case "tandem smp x vec" `Quick test_tandem;
    Alcotest.test_case "tandem executes in parallel" `Quick test_tandem_executes_parallel;
    Alcotest.test_case "tandem: no false sharing" `Quick test_tandem_no_false_sharing;
  ]
