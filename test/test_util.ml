open Spiral_util

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Int_util                                                            *)

let test_is_pow2 () =
  List.iter (fun n -> check cb (string_of_int n) true (Int_util.is_pow2 n))
    [ 1; 2; 4; 1024; 1 lsl 30 ];
  List.iter (fun n -> check cb (string_of_int n) false (Int_util.is_pow2 n))
    [ 0; -4; 3; 6; 12; 1023 ]

let test_ilog2 () =
  check ci "ilog2 1" 0 (Int_util.ilog2 1);
  check ci "ilog2 2" 1 (Int_util.ilog2 2);
  check ci "ilog2 1024" 10 (Int_util.ilog2 1024);
  Alcotest.check_raises "ilog2 3" (Invalid_argument "Int_util.ilog2: not a power of two")
    (fun () -> ignore (Int_util.ilog2 3))

let test_pow () =
  check ci "2^10" 1024 (Int_util.pow 2 10);
  check ci "3^4" 81 (Int_util.pow 3 4);
  check ci "x^0" 1 (Int_util.pow 7 0);
  check ci "0^3" 0 (Int_util.pow 0 3)

let test_divisors () =
  check (Alcotest.list ci) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (Int_util.divisors 12);
  check (Alcotest.list ci) "divisors 1" [ 1 ] (Int_util.divisors 1);
  check (Alcotest.list ci) "divisors 7" [ 1; 7 ] (Int_util.divisors 7)

let test_factor_pairs () =
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "pairs 12"
    [ (2, 6); (3, 4); (4, 3); (6, 2) ]
    (Int_util.factor_pairs 12);
  check (Alcotest.list (Alcotest.pair ci ci)) "pairs 7" [] (Int_util.factor_pairs 7)

let test_gcd () =
  check ci "gcd 12 18" 6 (Int_util.gcd 12 18);
  check ci "gcd 0 5" 5 (Int_util.gcd 0 5);
  check ci "gcd neg" 4 (Int_util.gcd (-8) 12)

let test_prime_factors () =
  check (Alcotest.list ci) "pf 360" [ 2; 2; 2; 3; 3; 5 ] (Int_util.prime_factors 360);
  check (Alcotest.list ci) "pf 1" [] (Int_util.prime_factors 1);
  check (Alcotest.list ci) "pf 97" [ 97 ] (Int_util.prime_factors 97)

let test_ceil_div () =
  check ci "7/2" 4 (Int_util.ceil_div 7 2);
  check ci "8/2" 4 (Int_util.ceil_div 8 2);
  check ci "0/3" 0 (Int_util.ceil_div 0 3)

let prop_factor_pairs_product =
  QCheck.Test.make ~name:"factor_pairs multiply back to n" ~count:100
    QCheck.(int_range 2 3000)
    (fun n ->
      List.for_all (fun (m, k) -> m * k = n && m > 1 && k > 1)
        (Int_util.factor_pairs n))

let prop_prime_factors_product =
  QCheck.Test.make ~name:"prime factors multiply back to n" ~count:100
    QCheck.(int_range 1 100000)
    (fun n -> List.fold_left ( * ) 1 (Int_util.prime_factors n) = n)

(* ------------------------------------------------------------------ *)
(* Cvec                                                                *)

let test_cvec_get_set () =
  let x = Cvec.create 4 in
  Cvec.set x 2 { Complex.re = 1.5; im = -2.5 };
  check (Alcotest.float 0.0) "re" 1.5 (Cvec.get x 2).Complex.re;
  check (Alcotest.float 0.0) "im" (-2.5) (Cvec.get x 2).Complex.im;
  check ci "length" 4 (Cvec.length x)

let test_cvec_roundtrip () =
  let a = Array.init 5 (fun i -> { Complex.re = float_of_int i; im = -.float_of_int i }) in
  let x = Cvec.of_complex_array a in
  check cb "roundtrip" true (Cvec.to_complex_array x = a)

let test_cvec_basis () =
  let e = Cvec.basis 4 1 in
  check (Alcotest.float 0.0) "one" 1.0 e.(2);
  check (Alcotest.float 0.0) "rest" 0.0 (Cvec.l2_norm e -. 1.0)

let test_cvec_ops () =
  let x = Cvec.of_real_list [ 3.0; 4.0 ] in
  check (Alcotest.float 1e-12) "l2" 5.0 (Cvec.l2_norm x);
  Cvec.scale 2.0 x;
  check (Alcotest.float 1e-12) "scaled" 10.0 (Cvec.l2_norm x);
  let y = Cvec.add x x in
  check (Alcotest.float 1e-12) "add" 20.0 (Cvec.l2_norm y)

let test_cvec_blit_mismatch () =
  Alcotest.check_raises "blit" (Invalid_argument "Cvec.blit: length mismatch")
    (fun () -> Cvec.blit (Cvec.create 3) (Cvec.create 4))

let test_cvec_random_deterministic () =
  check cb "same seed same vector" true
    (Cvec.random ~seed:9 16 = Cvec.random ~seed:9 16);
  check cb "different seeds differ" true
    (Cvec.random ~seed:9 16 <> Cvec.random ~seed:10 16)

(* ------------------------------------------------------------------ *)
(* Twiddle                                                             *)

let capprox = Alcotest.testable
    (fun ppf (z : Complex.t) -> Format.fprintf ppf "%g%+gi" z.re z.im)
    (fun a b -> Complex.norm (Complex.sub a b) < 1e-12)

let test_omega_basic () =
  check capprox "w_4^0" Complex.one (Twiddle.omega 4 0);
  check capprox "w_4^1" { Complex.re = 0.0; im = -1.0 } (Twiddle.omega 4 1);
  check capprox "w_4^2" { Complex.re = -1.0; im = 0.0 } (Twiddle.omega 4 2);
  check capprox "w_2^1" { Complex.re = -1.0; im = 0.0 } (Twiddle.omega 2 1)

let test_omega_periodic () =
  check capprox "w_8^9 = w_8^1" (Twiddle.omega 8 1) (Twiddle.omega 8 9);
  check capprox "negative k" (Twiddle.omega 8 7) (Twiddle.omega 8 (-1))

let test_omega_pow () =
  check capprox "reduction" (Twiddle.omega 16 (3 * 5 mod 16))
    (Twiddle.omega_pow ~n:16 ~k:3 ~l:5);
  check capprox "large exponents"
    (Twiddle.omega 12 (11 * 11 mod 12))
    (Twiddle.omega_pow ~n:12 ~k:(11 + 120) ~l:(11 + 240))

let test_twiddle_diag () =
  let d = Twiddle.twiddle_diag ~m:2 ~n:4 in
  check ci "size" 8 (Array.length d);
  (* entry i*n+j = w_8^(i*j) *)
  check capprox "d[0]" Complex.one d.(0);
  check capprox "d[5]" (Twiddle.omega 8 1) d.(5);
  check capprox "d[7]" (Twiddle.omega 8 3) d.(7)

let prop_omega_unit =
  QCheck.Test.make ~name:"omega has unit magnitude" ~count:200
    QCheck.(pair (int_range 1 64) (int_range (-100) 100))
    (fun (n, k) -> Float.abs (Complex.norm (Twiddle.omega n k) -. 1.0) < 1e-12)

(* ------------------------------------------------------------------ *)
(* Naive DFT                                                           *)

let test_dft_impulse () =
  (* DFT of the unit impulse is all ones *)
  let y = Naive_dft.dft (Cvec.basis 8 0) in
  for i = 0 to 7 do
    if Float.abs (y.(2 * i) -. 1.0) > 1e-12 || Float.abs y.((2 * i) + 1) > 1e-12
    then Alcotest.failf "bin %d: %g%+gi" i y.(2 * i) y.((2 * i) + 1)
  done

let test_dft_constant () =
  (* DFT of all-ones is n * impulse *)
  let x = Cvec.of_real_list [ 1.0; 1.0; 1.0; 1.0 ] in
  let y = Naive_dft.dft x in
  check (Alcotest.float 1e-12) "dc" 4.0 y.(0);
  check (Alcotest.float 1e-12) "rest" 0.0
    (Cvec.max_abs_diff y (Cvec.of_complex_array
       [| { Complex.re = 4.0; im = 0.0 }; Complex.zero; Complex.zero; Complex.zero |]))

let test_dft_known_4 () =
  (* x = [1, 2, 3, 4]: DFT = [10, -2+2i, -2, -2-2i] *)
  let y = Naive_dft.dft (Cvec.of_real_list [ 1.0; 2.0; 3.0; 4.0 ]) in
  let want =
    Cvec.of_complex_array
      [| { Complex.re = 10.0; im = 0.0 }; { re = -2.0; im = 2.0 };
         { re = -2.0; im = 0.0 }; { re = -2.0; im = -2.0 } |]
  in
  check cb "known dft4" true (Cvec.max_abs_diff y want < 1e-12)

let prop_idft_roundtrip =
  QCheck.Test.make ~name:"idft (dft x) = x" ~count:50
    QCheck.(int_range 1 32)
    (fun n ->
      let x = Cvec.random ~seed:n n in
      Cvec.max_abs_diff (Naive_dft.idft (Naive_dft.dft x)) x < 1e-9)

let prop_dft_linear =
  QCheck.Test.make ~name:"dft is linear" ~count:50
    QCheck.(int_range 1 24)
    (fun n ->
      let x = Cvec.random ~seed:n n and y = Cvec.random ~seed:(n + 1000) n in
      let lhs = Naive_dft.dft (Cvec.add x y) in
      let rhs = Cvec.add (Naive_dft.dft x) (Naive_dft.dft y) in
      Cvec.max_abs_diff lhs rhs < 1e-9)

let test_dft_parseval () =
  let x = Cvec.random ~seed:3 16 in
  let y = Naive_dft.dft x in
  let ex = Cvec.l2_norm x and ey = Cvec.l2_norm y in
  check (Alcotest.float 1e-9) "parseval" (ex *. ex *. 16.0) (ey *. ey)

(* ------------------------------------------------------------------ *)
(* Cmatrix                                                             *)

let test_cmatrix_identity () =
  let i3 = Cmatrix.identity 3 in
  let m = Cmatrix.init 3 3 (fun i j -> { Complex.re = float_of_int ((3 * i) + j); im = 1.0 }) in
  check cb "I*m = m" true (Cmatrix.equal_approx (Cmatrix.mul i3 m) m);
  check cb "m*I = m" true (Cmatrix.equal_approx (Cmatrix.mul m i3) m)

let test_cmatrix_kron_dims () =
  let a = Cmatrix.identity 2 and b = Cmatrix.identity 3 in
  let k = Cmatrix.kronecker a b in
  check ci "rows" 6 (Cmatrix.rows k);
  check ci "cols" 6 (Cmatrix.cols k);
  check cb "I2 (x) I3 = I6" true (Cmatrix.equal_approx k (Cmatrix.identity 6))

let test_cmatrix_kron_values () =
  let two = { Complex.re = 2.0; im = 0.0 } in
  let a = Cmatrix.init 1 1 (fun _ _ -> two) in
  let b = Cmatrix.init 2 2 (fun i j -> if i = j then Complex.one else Complex.zero) in
  let k = Cmatrix.kronecker a b in
  check cb "2*I2" true
    (Cmatrix.equal_approx k (Cmatrix.init 2 2 (fun i j -> if i = j then two else Complex.zero)))

let test_cmatrix_perm () =
  (* sigma = [2;0;1]: y0 = x2, y1 = x0, y2 = x1 *)
  let p = Cmatrix.of_permutation [| 2; 0; 1 |] in
  let x = Cvec.of_real_list [ 10.0; 20.0; 30.0 ] in
  let y = Cmatrix.apply p x in
  check cb "gather convention" true
    (Cvec.max_abs_diff y (Cvec.of_real_list [ 30.0; 10.0; 20.0 ]) < 1e-12)

let test_cmatrix_direct_sum () =
  let a = Cmatrix.identity 2 in
  let b = Cmatrix.init 1 1 (fun _ _ -> { Complex.re = 5.0; im = 0.0 }) in
  let s = Cmatrix.direct_sum [ a; b ] in
  check ci "rows" 3 (Cmatrix.rows s);
  let x = Cvec.of_real_list [ 1.0; 2.0; 3.0 ] in
  check cb "apply" true
    (Cvec.max_abs_diff (Cmatrix.apply s x) (Cvec.of_real_list [ 1.0; 2.0; 15.0 ]) < 1e-12)

let test_cmatrix_apply_vs_mul () =
  let a = Cmatrix.init 3 3 (fun i j -> { Complex.re = float_of_int (i + j); im = float_of_int (i - j) }) in
  let b = Cmatrix.init 3 3 (fun i j -> { Complex.re = float_of_int (i * j); im = 1.0 }) in
  let x = Cvec.random ~seed:5 3 in
  let lhs = Cmatrix.apply (Cmatrix.mul a b) x in
  let rhs = Cmatrix.apply a (Cmatrix.apply b x) in
  check cb "assoc" true (Cvec.max_abs_diff lhs rhs < 1e-9)

let suite =
  [
    Alcotest.test_case "is_pow2" `Quick test_is_pow2;
    Alcotest.test_case "ilog2" `Quick test_ilog2;
    Alcotest.test_case "pow" `Quick test_pow;
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "factor_pairs" `Quick test_factor_pairs;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "prime_factors" `Quick test_prime_factors;
    Alcotest.test_case "ceil_div" `Quick test_ceil_div;
    QCheck_alcotest.to_alcotest prop_factor_pairs_product;
    QCheck_alcotest.to_alcotest prop_prime_factors_product;
    Alcotest.test_case "cvec get/set" `Quick test_cvec_get_set;
    Alcotest.test_case "cvec complex roundtrip" `Quick test_cvec_roundtrip;
    Alcotest.test_case "cvec basis" `Quick test_cvec_basis;
    Alcotest.test_case "cvec scale/add/norm" `Quick test_cvec_ops;
    Alcotest.test_case "cvec blit mismatch" `Quick test_cvec_blit_mismatch;
    Alcotest.test_case "cvec random determinism" `Quick test_cvec_random_deterministic;
    Alcotest.test_case "omega basic values" `Quick test_omega_basic;
    Alcotest.test_case "omega periodicity" `Quick test_omega_periodic;
    Alcotest.test_case "omega_pow reduction" `Quick test_omega_pow;
    Alcotest.test_case "twiddle diagonal" `Quick test_twiddle_diag;
    QCheck_alcotest.to_alcotest prop_omega_unit;
    Alcotest.test_case "dft impulse" `Quick test_dft_impulse;
    Alcotest.test_case "dft constant" `Quick test_dft_constant;
    Alcotest.test_case "dft known values" `Quick test_dft_known_4;
    QCheck_alcotest.to_alcotest prop_idft_roundtrip;
    QCheck_alcotest.to_alcotest prop_dft_linear;
    Alcotest.test_case "dft parseval" `Quick test_dft_parseval;
    Alcotest.test_case "cmatrix identity" `Quick test_cmatrix_identity;
    Alcotest.test_case "cmatrix kron dims" `Quick test_cmatrix_kron_dims;
    Alcotest.test_case "cmatrix kron values" `Quick test_cmatrix_kron_values;
    Alcotest.test_case "cmatrix permutation" `Quick test_cmatrix_perm;
    Alcotest.test_case "cmatrix direct sum" `Quick test_cmatrix_direct_sum;
    Alcotest.test_case "cmatrix apply vs mul" `Quick test_cmatrix_apply_vs_mul;
  ]
