(* The observability layer: ring-buffer wraparound, allocation-free
   recording, span nesting across workers on a real parallel transform,
   Chrome trace_event JSON validity (parsed back with a self-contained
   JSON reader), the Prometheus counters dump round-trip, and the
   derived per-transform report. *)

open Spiral_util

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* ------------------------------------------------------------------ *)
(* A minimal JSON parser (the repo has no JSON dependency): enough to
   validate that the Chrome exporter emits well-formed JSON and to read
   back the fields the trace viewers rely on. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let m = String.length lit in
    if !pos + m <= n && String.sub s !pos m = lit then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u";
              (* decode only to validate; non-ASCII folded to '?' *)
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              Buffer.add_char b (if code < 128 then Char.chr code else '?');
              pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape '%c'" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elems []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let test_wraparound () =
  Trace.enable ~capacity:8 ~workers:1 ();
  for k = 0 to 19 do
    Trace.begin_span 0 Trace.cat_pass k;
    Trace.end_span 0 Trace.cat_pass k
  done;
  Trace.disable ();
  let evs = Trace.events () in
  check cb "ring keeps at most capacity events" true (List.length evs <= 8);
  check ci "dropped counts the overwritten events" 32 (Trace.dropped ());
  (* timestamps are monotone within the ring, and the scrubber leaves no
     orphan End at the start after wraparound *)
  let rec monotone = function
    | (a : Trace.event) :: (b :: _ as rest) ->
        a.Trace.ts_ns <= b.Trace.ts_ns && monotone rest
    | _ -> true
  in
  check cb "ring order is chronological" true (monotone evs);
  let depth = ref 0 in
  let balanced =
    List.for_all
      (fun (e : Trace.event) ->
        match e.Trace.phase with
        | Trace.Begin ->
            incr depth;
            true
        | Trace.End ->
            decr depth;
            !depth >= 0
        | Trace.Mark -> true)
      evs
  in
  check cb "no orphan End after wraparound" true balanced;
  (* the newest event survived *)
  match List.rev evs with
  | last :: _ -> check ci "latest event retained" 19 last.Trace.arg
  | [] -> Alcotest.fail "ring empty after 20 emits"

let test_clear_and_reenable () =
  Trace.enable ~capacity:16 ~workers:2 ();
  Trace.begin_span 1 Trace.cat_pass 0;
  Trace.end_span 1 Trace.cat_pass 0;
  check ci "events recorded" 2 (List.length (Trace.events ()));
  Trace.clear ();
  check ci "clear empties the rings" 0 (List.length (Trace.events ()));
  check cb "clear keeps tracing on" true (Trace.enabled ());
  (* out-of-range workers are ignored, not an error *)
  Trace.begin_span 99 Trace.cat_pass 0;
  check ci "no ring for worker 99" 0 (List.length (Trace.events ()));
  Trace.disable ();
  check cb "disabled" false (Trace.enabled ())

(* ------------------------------------------------------------------ *)
(* Allocation-freedom of the recording hot path                        *)

let alloc_words iters call =
  call ();
  call ();
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    call ()
  done;
  Gc.minor_words () -. w0

let test_emit_allocation_free () =
  Trace.enable ~capacity:64 ~workers:2 ();
  let words =
    alloc_words 1000 (fun () ->
        Trace.begin_span 0 Trace.cat_pass 3;
        Trace.mark 1 Trace.cat_elided 3;
        Trace.end_span 0 Trace.cat_pass 3)
  in
  Trace.disable ();
  check cb "recording allocates nothing (ring is preallocated)" true
    (words < 8.0);
  let words_off =
    alloc_words 1000 (fun () ->
        Trace.begin_span 0 Trace.cat_pass 3;
        Trace.end_span 0 Trace.cat_pass 3)
  in
  check cb "disabled hooks allocate nothing" true (words_off < 8.0)

(* The PR-2 zero-allocation guarantee must hold with tracing enabled as
   well as disabled: the sequential hot path emits nothing, and the
   engine/barrier/pool hooks it does pass through only store immediate
   ints into preallocated rings. *)
let test_zero_alloc_with_tracing () =
  let open Spiral_rewrite in
  let open Spiral_codegen in
  let n = 1024 in
  let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)) in
  let x = Cvec.random ~seed:1 n and y = Cvec.create n in
  check cb "Plan.execute allocation-free with tracing disabled" true
    (alloc_words 50 (fun () -> Plan.execute plan x y) < 8.0);
  Trace.enable ();
  check cb "Plan.execute allocation-free with tracing enabled" true
    (alloc_words 50 (fun () -> Plan.execute plan x y) < 8.0);
  Trace.disable ()

(* ------------------------------------------------------------------ *)
(* Span nesting across workers on a real parallel transform            *)

let traced_dft ~threads ~capacity n =
  Spiral_fft.Dft.with_plan ~threads n (fun t ->
      let x = Cvec.random ~seed:7 n in
      let y = Cvec.create n in
      (* warm up untraced so plan caches and pools exist *)
      Spiral_fft.Dft.execute_into t ~src:x ~dst:y;
      Trace.enable ~capacity ~workers:threads ();
      Spiral_fft.Dft.execute_into t ~src:x ~dst:y;
      Trace.disable ();
      Spiral_fft.Dft.threads t)

let test_span_nesting_across_workers () =
  let threads = traced_dft ~threads:2 ~capacity:4096 256 in
  check ci "plan is parallel" 2 threads;
  let evs = Trace.events () in
  check cb "events recorded" true (evs <> []);
  (* per worker: Begin/End strictly balanced, depth never negative *)
  List.iter
    (fun w ->
      let depth = ref 0 in
      let open_cats = ref [] in
      let ok =
        List.for_all
          (fun (e : Trace.event) ->
            if e.Trace.worker <> w then true
            else
              match e.Trace.phase with
              | Trace.Begin ->
                  incr depth;
                  open_cats := e.Trace.cat :: !open_cats;
                  true
              | Trace.End ->
                  decr depth;
                  (match !open_cats with _ :: r -> open_cats := r | [] -> ());
                  !depth >= 0
              | Trace.Mark -> true)
          evs
      in
      check cb (Printf.sprintf "worker %d nesting balanced" w) true ok;
      (* an idle worker legitimately ends the trace parked in its
         dispatch wait; anything else must be closed *)
      check cb
        (Printf.sprintf "worker %d leaves at most an open park span" w)
        true
        (match !open_cats with
        | [] -> true
        | [ c ] -> c = Trace.cat_park
        | _ -> false);
      (* pass spans specifically are strictly balanced *)
      let count ph =
        List.length
          (List.filter
             (fun (e : Trace.event) ->
               e.Trace.worker = w
               && e.Trace.cat = Trace.cat_pass
               && e.Trace.phase = ph)
             evs)
      in
      check ci
        (Printf.sprintf "worker %d pass begin/end balanced" w)
        (count Trace.Begin) (count Trace.End))
    [ 0; 1 ];
  let spans = Trace.spans () in
  let has_pass w =
    List.exists
      (fun (s : Trace.span) ->
        s.Trace.worker = w && s.Trace.cat = Trace.cat_pass)
      spans
  in
  check cb "worker 0 has pass spans" true (has_pass 0);
  check cb "worker 1 has pass spans" true (has_pass 1);
  check cb "durations are non-negative" true
    (List.for_all (fun (s : Trace.span) -> s.Trace.dur_ns >= 0) spans)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export — the acceptance-criteria scenario:
   dft[4096]f at p=2 must yield a JSON file with per-worker pass spans
   and barrier-wait spans. *)

let test_chrome_json_dft4096 () =
  let threads = traced_dft ~threads:2 ~capacity:8192 4096 in
  check ci "dft[4096]f plans parallel at p=2" 2 threads;
  let js = Trace.to_chrome_json () in
  let j =
    match parse_json js with
    | j -> j
    | exception Bad_json m -> Alcotest.fail ("invalid JSON: " ^ m)
  in
  let events =
    match member "traceEvents" j with
    | Some (Arr l) -> l
    | _ -> Alcotest.fail "traceEvents array missing"
  in
  check cb "has events" true (events <> []);
  (* every event is an object with the trace_event required fields *)
  List.iter
    (fun e ->
      let has k =
        match member k e with Some _ -> true | None -> false
      in
      check cb "event has name/ph/pid/tid" true
        (has "name" && has "ph" && has "pid" && has "tid");
      match member "ph" e with
      | Some (Str ("B" | "E" | "i" | "M")) -> ()
      | _ -> Alcotest.fail "unexpected ph")
    events;
  let span_on ~cat ~tid =
    List.exists
      (fun e ->
        member "ph" e = Some (Str "B")
        && member "cat" e = Some (Str cat)
        && member "tid" e = Some (Num (float_of_int tid)))
      events
  in
  check cb "worker 0 pass spans" true (span_on ~cat:"pass" ~tid:0);
  check cb "worker 1 pass spans" true (span_on ~cat:"pass" ~tid:1);
  check cb "barrier-wait spans present" true
    (span_on ~cat:"barrier" ~tid:0 || span_on ~cat:"barrier" ~tid:1);
  (* instants carry the scope field Perfetto expects *)
  List.iter
    (fun e ->
      if member "ph" e = Some (Str "i") then
        check cb "instant has scope" true (member "s" e = Some (Str "t")))
    events

(* ------------------------------------------------------------------ *)
(* Derived report                                                      *)

let test_report () =
  ignore (traced_dft ~threads:2 ~capacity:8192 4096);
  let r = Trace.report () in
  check cb "events counted" true (r.Trace.event_count > 0);
  check cb "wall clock positive" true (r.Trace.wall_ns > 0);
  check cb "both workers computed" true
    (r.Trace.busy_ns.(0) > 0 && r.Trace.busy_ns.(1) > 0);
  check cb "barrier-wait fraction in [0,1)" true
    (r.Trace.barrier_wait_frac >= 0.0 && r.Trace.barrier_wait_frac < 1.0);
  check cb "load imbalance >= 1" true (r.Trace.load_imbalance >= 1.0);
  check cb "dispatch latency measured" true (r.Trace.dispatch_latency_ns > 0.0);
  let s = Trace.summary () in
  let contains ~sub str =
    let n = String.length str and m = String.length sub in
    let rec go i = i + m <= n && (String.sub str i m = sub || go (i + 1)) in
    go 0
  in
  check cb "summary names passes" true (contains ~sub:"pass" s);
  check cb "summary reports barrier waits" true (contains ~sub:"barrier" s)

let test_report_empty () =
  Trace.enable ~capacity:16 ~workers:1 ();
  Trace.disable ();
  let r = Trace.report () in
  check ci "no events" 0 r.Trace.event_count;
  check cb "fraction 0" true (r.Trace.barrier_wait_frac = 0.0);
  check cb "imbalance 1" true (r.Trace.load_imbalance = 1.0)

(* ------------------------------------------------------------------ *)
(* Counters dump round-trip                                            *)

let test_counters_prometheus_roundtrip () =
  Counters.reset ();
  Counters.incr ~by:3 "trace_test.alpha";
  Counters.incr "trace_test.beta";
  Counters.incr ~by:41 "trace_test.beta";
  let dump = Counters.to_prometheus () in
  let parsed =
    String.split_on_char '\n' dump
    |> List.filter_map (fun line ->
           if line = "" || line.[0] = '#' then None
           else
             try
               Scanf.sscanf line "spiral_events_total{name=%S} %d" (fun k v ->
                   Some (k, v))
             with Scanf.Scan_failure _ | End_of_file ->
               Some (("unparsable: " ^ line), -1))
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "every sample parses back to the snapshot" (Counters.snapshot ()) parsed;
  Counters.reset ()

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_wraparound;
    Alcotest.test_case "clear / re-enable / bounds" `Quick
      test_clear_and_reenable;
    Alcotest.test_case "emit is allocation-free" `Quick
      test_emit_allocation_free;
    Alcotest.test_case "zero-alloc hot path with tracing on" `Quick
      test_zero_alloc_with_tracing;
    Alcotest.test_case "span nesting across workers" `Quick
      test_span_nesting_across_workers;
    Alcotest.test_case "chrome JSON for dft[4096]f p=2" `Quick
      test_chrome_json_dft4096;
    Alcotest.test_case "derived report" `Quick test_report;
    Alcotest.test_case "empty report" `Quick test_report_empty;
    Alcotest.test_case "counters prometheus round-trip" `Quick
      test_counters_prometheus_roundtrip;
  ]
