(* The 2-D engine: strided vs tiled column schedules, single-region
   barrier accounting, inverse, batching, real-input 2-D, and the tiled
   transpose's tile-coverage certificate. *)

open Spiral_util
open Spiral_fft

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* Literal O((RC)²) reference — every output bin against every input
   sample, no factorization shared with the code under test:
   X[k1][k2] = Σ_{r,c} x[r][c] ω_R^{k1·r} ω_C^{k2·c}. *)
let naive_dft2d ~rows ~cols x =
  let wr = Array.init rows (fun k -> Twiddle.omega rows k) in
  let wc = Array.init cols (fun k -> Twiddle.omega cols k) in
  let out = Cvec.create (rows * cols) in
  for k1 = 0 to rows - 1 do
    for k2 = 0 to cols - 1 do
      let sr = ref 0.0 and si = ref 0.0 in
      for r = 0 to rows - 1 do
        let a = wr.(k1 * r mod rows) in
        let ar = a.Complex.re and ai = a.Complex.im in
        for c = 0 to cols - 1 do
          let b = wc.(k2 * c mod cols) in
          let tr = (ar *. b.Complex.re) -. (ai *. b.Complex.im)
          and ti = (ar *. b.Complex.im) +. (ai *. b.Complex.re) in
          let xr = x.(2 * ((r * cols) + c))
          and xi = x.((2 * ((r * cols) + c)) + 1) in
          sr := !sr +. (xr *. tr) -. (xi *. ti);
          si := !si +. (xr *. ti) +. (xi *. tr)
        done
      done;
      out.(2 * ((k1 * cols) + k2)) <- !sr;
      out.((2 * ((k1 * cols) + k2)) + 1) <- !si
    done
  done;
  out

let variant_name = function
  | Dft2d.Strided -> "strided"
  | Dft2d.Tiled -> "tiled"
  | Dft2d.Auto -> "auto"

(* ------------------------------------------------------------------ *)

(* ISSUE sizes: wide (8×1024) and tall (512×4), both schedules, against
   the quadratic reference *)
let test_matches_quadratic_naive () =
  List.iter
    (fun (rows, cols) ->
      let x = Cvec.random ~seed:(rows + cols) (rows * cols) in
      let want = naive_dft2d ~rows ~cols x in
      let tol = 1e-9 *. float_of_int (rows * cols) in
      List.iter
        (fun v ->
          Dft2d.with_plan ~variant:v ~rows ~cols (fun t ->
              check cb
                (Printf.sprintf "%dx%d %s schedule" rows cols
                   (variant_name v))
                true
                (Dft2d.schedule t = variant_name v);
              check cb
                (Printf.sprintf "%dx%d %s matches naive" rows cols
                   (variant_name v))
                true
                (Cvec.max_abs_diff (Dft2d.execute t x) want < tol)))
        [ Dft2d.Strided; Dft2d.Tiled ])
    [ (8, 1024); (512, 4) ]

let test_single_region_barriers () =
  (* 64×64 on 2 workers: 2 compute passes per dimension.  Strided: every
     within-stage boundary elides, only the row→column crossing
     synchronizes.  Tiled adds the transpose pass; its outgoing boundary
     elides when tile·p | C, so it costs at most one extra barrier. *)
  let x = Cvec.random ~seed:11 4096 in
  let want = naive_dft2d ~rows:64 ~cols:64 x in
  Dft2d.with_plan ~threads:2 ~variant:Dft2d.Strided ~rows:64 ~cols:64
    (fun t ->
      check cb "strided parallel" true (Dft2d.parallel t);
      check ci "strided: one real barrier" 1 (Dft2d.barriers t);
      Counters.reset ();
      let y = Cvec.create 4096 in
      Dft2d.execute_into t ~src:x ~dst:y;
      let elided = Counters.get "par_exec.barrier_elided" in
      check cb "elision certificate active" true (elided > 0);
      Dft2d.execute_into t ~src:x ~dst:y;
      check ci "elisions deterministic per execute" (2 * elided)
        (Counters.get "par_exec.barrier_elided");
      check cb "strided matches naive" true
        (Cvec.max_abs_diff y want < 1e-7));
  Dft2d.with_plan ~threads:2 ~variant:Dft2d.Tiled ~rows:64 ~cols:64 (fun t ->
      check cb "tiled parallel" true (Dft2d.parallel t);
      check cb "tiled: at most two barriers" true (Dft2d.barriers t <= 2);
      check cb "tiled matches naive" true
        (Cvec.max_abs_diff (Dft2d.execute t x) want < 1e-7))

let test_inverse_roundtrip () =
  let x = Cvec.random ~seed:21 (32 * 16) in
  Dft2d.with_plan ~rows:32 ~cols:16 (fun fwd ->
      Dft2d.with_plan ~direction:Dft2d.Inverse ~rows:32 ~cols:16 (fun inv ->
          check cb "direction introspects" true
            (Dft2d.direction inv = Dft2d.Inverse);
          let y = Dft2d.execute fwd x in
          check cb "inverse . forward = id" true
            (Cvec.max_abs_diff (Dft2d.execute inv y) x < 1e-9)));
  (* inverse of an all-ones spectrum is the unit impulse *)
  Dft2d.with_plan ~direction:Dft2d.Inverse ~rows:8 ~cols:8 (fun inv ->
      let ones = Cvec.create 64 in
      for i = 0 to 63 do
        ones.(2 * i) <- 1.0
      done;
      let y = Dft2d.execute inv ones in
      check cb "impulse recovered" true
        (Cvec.max_abs_diff y (Cvec.basis 64 0) < 1e-10))

let test_execute_many_bit_identical () =
  (* a batch through one parallel region must be bit-identical to looped
     singles — same plan, same schedule, same arithmetic order *)
  List.iter
    (fun threads ->
      Dft2d.with_plan ~threads ~variant:Dft2d.Strided ~rows:16 ~cols:16
        (fun t ->
          let jobs = 5 in
          let xs = Array.init jobs (fun j -> Cvec.random ~seed:(40 + j) 256) in
          let singles = Array.map (fun x -> Dft2d.execute t x) xs in
          let batched = Array.map (fun _ -> Cvec.create 256) xs in
          Dft2d.execute_many t (Array.mapi (fun j x -> (x, batched.(j))) xs);
          Array.iteri
            (fun j y ->
              check cb
                (Printf.sprintf "job %d bit-identical (p=%d)" j threads)
                true
                (Cvec.max_abs_diff y singles.(j) = 0.0))
            batched))
    [ 1; 2 ]

let test_zero_alloc_hot_path () =
  (* sequential steady state allocates nothing, both schedules and the
     inverse's conjugation boundary included *)
  List.iter
    (fun (v, direction) ->
      Dft2d.with_plan ~variant:v ~direction ~rows:64 ~cols:64 (fun t ->
          let x = Cvec.random ~seed:51 4096 in
          let y = Cvec.create 4096 in
          Dft2d.execute_into t ~src:x ~dst:y;
          Dft2d.execute_into t ~src:x ~dst:y;
          let w0 = Gc.minor_words () in
          for _ = 1 to 10 do
            Dft2d.execute_into t ~src:x ~dst:y
          done;
          let dw = Gc.minor_words () -. w0 in
          check cb
            (Printf.sprintf "no allocation (%s %s, %.0f words)"
               (variant_name v)
               (match direction with
               | Dft2d.Forward -> "fwd"
               | Dft2d.Inverse -> "inv")
               dw)
            true (dw = 0.0)))
    [ (Dft2d.Strided, Dft2d.Forward);
      (Dft2d.Tiled, Dft2d.Forward);
      (Dft2d.Strided, Dft2d.Inverse) ]

let test_schedule_fallbacks () =
  (* shapes the 2-D schedules cannot partition drop to the adapter-era
     path; tiled without an even tile drops to strided *)
  Dft2d.with_plan ~threads:4 ~rows:6 ~cols:10 (fun t ->
      check cb "6x10 p=4 legacy" true (Dft2d.schedule t = "legacy");
      check cb "6x10 p=4 sequential" false (Dft2d.parallel t));
  Dft2d.with_plan ~variant:Dft2d.Tiled ~rows:9 ~cols:15 (fun t ->
      check cb "odd gcd: tiled -> strided" true
        (Dft2d.schedule t = "strided");
      let x = Cvec.random ~seed:61 135 in
      check cb "9x15 strided correct" true
        (Cvec.max_abs_diff (Dft2d.execute t x)
           (naive_dft2d ~rows:9 ~cols:15 x)
        < 1e-8));
  Dft2d.with_plan ~variant:Dft2d.Auto ~rows:16 ~cols:16 (fun t ->
      check cb "auto picked a 2-D schedule" true
        (List.mem (Dft2d.schedule t) [ "strided"; "tiled" ]))

(* ------------------------------------------------------------------ *)
(* Real-input 2-D *)

let test_rdft2d_matches_naive () =
  List.iter
    (fun (rows, cols, threads) ->
      let h = cols / 2 in
      let x =
        Array.init (rows * cols) (fun i ->
            sin (float_of_int ((i * 7) mod 23)) +. (0.25 *. float_of_int (i mod 5)))
      in
      (* complexify and run the full naive 2-D DFT; compare the stored
         non-redundant half *)
      let xc = Cvec.create (rows * cols) in
      Array.iteri (fun i v -> xc.(2 * i) <- v) x;
      let want = naive_dft2d ~rows ~cols xc in
      Rfft2d.with_plan ~threads ~rows ~cols (fun t ->
          let got = Rfft2d.forward t x in
          let worst = ref 0.0 in
          for k1 = 0 to rows - 1 do
            for k2 = 0 to h do
              let o = (k1 * (h + 1)) + k2 and w = (k1 * cols) + k2 in
              worst :=
                Float.max !worst
                  (Float.max
                     (Float.abs (got.(2 * o) -. want.(2 * w)))
                     (Float.abs (got.((2 * o) + 1) -. want.((2 * w) + 1))))
            done
          done;
          check cb
            (Printf.sprintf "rdft2d %dx%d p=%d matches naive" rows cols
               threads)
            true (!worst < 1e-9)))
    [ (8, 16, 1); (16, 8, 2); (4, 6, 1) ]

let test_rdft2d_roundtrip () =
  Rfft2d.with_plan ~rows:16 ~cols:12 (fun t ->
      let x = Array.init (16 * 12) (fun i -> cos (0.37 *. float_of_int i)) in
      let back = Rfft2d.inverse t (Rfft2d.forward t x) in
      let worst = ref 0.0 in
      Array.iteri
        (fun i v -> worst := Float.max !worst (Float.abs (v -. x.(i))))
        back;
      check cb "inverse . forward = id" true (!worst < 1e-10));
  (try
     Rfft2d.with_plan ~rows:4 ~cols:7 ignore;
     Alcotest.fail "odd column count accepted"
   with Invalid_argument _ -> ());
  Rfft2d.with_plan ~rows:4 ~cols:8 (fun t ->
      try
        ignore (Rfft2d.forward t (Array.make 3 0.0));
        Alcotest.fail "wrong length accepted"
      with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* The tiled transpose's certificate *)

let test_tile_coverage_certificate () =
  let open Spiral_codegen in
  let good = Ir.transpose_pass ~rows:16 ~cols:8 ~tile:4 () in
  let plan ps = Plan.of_ir ~fuse:false { Ir.n = 128; passes = ps } in
  (match Spiral_validate.check_tile_coverage (plan [ good ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid transpose rejected: %s" e);
  (* a seamed odometer: two iterations read the same source tile row *)
  let seamed =
    { good with Ir.gather = (fun it l -> good.Ir.gather (max 1 it) l) }
  in
  (match Spiral_validate.check_tile_coverage (plan [ seamed ]) with
  | Ok () -> Alcotest.fail "seamed tile walk accepted"
  | Error _ -> ());
  (* a copy kernel that is not the identity must be rejected too *)
  let scaled = { good with Ir.scale = Some (fun _ _ -> Complex.one) } in
  match Spiral_validate.check_tile_coverage (plan [ scaled ]) with
  | Ok () -> Alcotest.fail "load-scaled copy pass accepted"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "2d-quadratic-naive" `Slow test_matches_quadratic_naive;
    Alcotest.test_case "2d-single-region-barriers" `Quick
      test_single_region_barriers;
    Alcotest.test_case "2d-inverse-roundtrip" `Quick test_inverse_roundtrip;
    Alcotest.test_case "2d-execute-many-bit-identical" `Quick
      test_execute_many_bit_identical;
    Alcotest.test_case "2d-zero-alloc" `Quick test_zero_alloc_hot_path;
    Alcotest.test_case "2d-schedule-fallbacks" `Quick test_schedule_fallbacks;
    Alcotest.test_case "rdft2d-matches-naive" `Quick test_rdft2d_matches_naive;
    Alcotest.test_case "rdft2d-roundtrip" `Quick test_rdft2d_roundtrip;
    Alcotest.test_case "tile-coverage-certificate" `Quick
      test_tile_coverage_certificate;
  ]
