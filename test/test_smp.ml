open Spiral_util
open Spiral_rewrite
open Spiral_codegen
open Spiral_smp

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Barrier                                                             *)

let test_barrier_phases () =
  (* every participant increments a counter once per phase; after the
     barrier each must observe all p increments of that phase *)
  let p = 3 and phases = 50 in
  let b = Barrier.create p in
  let errors = Atomic.make 0 in
  let counter = Atomic.make 0 in
  let domains =
    Array.init (p - 1) (fun i ->
        Domain.spawn (fun () ->
            let ctx = Barrier.make_ctx b in
            for ph = 0 to phases - 1 do
              Atomic.incr counter;
              Barrier.wait b ctx;
              (* after the barrier everyone must see p*(ph+1) *)
              if Atomic.get counter < p * (ph + 1) then Atomic.incr errors;
              Barrier.wait b ctx
            done;
            ignore i))
  in
  let ctx = Barrier.make_ctx b in
  for ph = 0 to phases - 1 do
    Atomic.incr counter;
    Barrier.wait b ctx;
    if Atomic.get counter <> p * (ph + 1) then Atomic.incr errors;
    Barrier.wait b ctx
  done;
  Array.iter Domain.join domains;
  check ci "phase errors" 0 (Atomic.get errors);
  check ci "final count" (p * phases) (Atomic.get counter)

let test_barrier_single () =
  let b = Barrier.create 1 in
  let ctx = Barrier.make_ctx b in
  Barrier.wait b ctx;
  Barrier.wait b ctx;
  check ci "parties" 1 (Barrier.parties b)

let test_barrier_invalid () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Barrier.create: need at least one participant")
    (fun () -> ignore (Barrier.create 0))

let test_barrier_timeout () =
  (* one participant of a 2-barrier: the wait must give up, not hang *)
  let b = Barrier.create ~timeout:0.1 2 in
  let ctx = Barrier.make_ctx b in
  let t0 = Unix.gettimeofday () in
  (try
     Barrier.wait b ctx;
     Alcotest.fail "barrier wait did not time out"
   with Barrier.Timeout { parties; arrived; waited } ->
     check ci "parties" 2 parties;
     check ci "arrived" 1 arrived;
     check cb "waited at least the timeout" true (waited >= 0.1));
  check cb "returned promptly" true (Unix.gettimeofday () -. t0 < 5.0);
  check cb "timeout counted" true (Counters.get "barrier.timeout" >= 1)

let test_barrier_fault_site () =
  Fault.reset ();
  Fault.arm ~site:"barrier.wait" ();
  let b = Barrier.create 1 in
  let ctx = Barrier.make_ctx b in
  (try
     Barrier.wait b ctx;
     Alcotest.fail "injection did not fire"
   with Fault.Injected site -> check Alcotest.string "site" "barrier.wait" site);
  Fault.reset ();
  (* disarmed: the same barrier context proceeds normally *)
  Barrier.wait b ctx

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)

let test_pool_sum () =
  Pool.with_pool 4 (fun pool ->
      let acc = Atomic.make 0 in
      Pool.run pool (fun w -> ignore (Atomic.fetch_and_add acc (w + 1)));
      check ci "sum of ids + 1" 10 (Atomic.get acc))

let test_pool_reuse () =
  Pool.with_pool 3 (fun pool ->
      let acc = Atomic.make 0 in
      for _ = 1 to 100 do
        Pool.run pool (fun _ -> Atomic.incr acc)
      done;
      check ci "300 increments" 300 (Atomic.get acc))

let test_pool_exception () =
  Pool.with_pool 2 (fun pool ->
      (try
         Pool.run pool (fun w -> if w = 1 then failwith "boom");
         Alcotest.fail "exception not propagated"
       with Pool.Worker_errors [ Failure m ] ->
         check Alcotest.string "message" "boom" m);
      (* pool still usable afterwards *)
      let acc = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr acc);
      check ci "recovered" 2 (Atomic.get acc))

let test_pool_errors_aggregated () =
  (* every worker fails: all failures must be reported, not just one *)
  Pool.with_pool 4 (fun pool ->
      try
        Pool.run pool (fun w -> failwith (string_of_int w));
        Alcotest.fail "exceptions not propagated"
      with Pool.Worker_errors errs ->
        check ci "all four failures collected" 4 (List.length errs))

let test_pool_reentrant_rejected () =
  Pool.with_pool 2 (fun pool ->
      let rejected = Atomic.make false in
      Pool.run pool (fun w ->
          if w = 0 then
            try Pool.run pool ignore
            with Invalid_argument _ -> Atomic.set rejected true);
      check cb "nested run rejected" true (Atomic.get rejected))

let test_pool_worker_death_supervised () =
  Fault.reset ();
  Pool.with_pool ~timeout:2.0 3 (fun pool ->
      Fault.arm ~site:"pool.worker" ~times:1 ();
      (try
         Pool.run pool ignore;
         Alcotest.fail "dead worker not detected"
       with Pool.Deadlock msg ->
         check cb "names the dead worker" true (contains msg "dead workers ["));
      Fault.disarm "pool.worker";
      check cb "pool unhealthy after death" false (Pool.healthy pool);
      (* poisoned: further runs are rejected until healed *)
      (try
         Pool.run pool ignore;
         Alcotest.fail "poisoned pool accepted a run"
       with Invalid_argument _ -> ());
      Pool.heal pool;
      check cb "healthy after heal" true (Pool.healthy pool);
      check ci "one rebuild" 1 (Pool.rebuilds pool);
      let acc = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr acc);
      check ci "full strength after heal" 3 (Atomic.get acc));
  Fault.reset ()

let test_pool_size_one () =
  Pool.with_pool 1 (fun pool ->
      let hit = ref false in
      Pool.run pool (fun w -> if w = 0 then hit := true);
      check cb "runs on caller" true !hit)

let test_pool_shutdown_rejects () =
  let pool = Pool.create 2 in
  Pool.shutdown pool;
  try
    Pool.run pool ignore;
    Alcotest.fail "run after shutdown"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Parallel execution                                                  *)

let test_worker_range_block_partition () =
  (* exact disjoint cover for awkward counts *)
  List.iter
    (fun (count, workers) ->
      let all =
        List.concat_map
          (fun w -> Par_exec.worker_range Par_exec.Block ~count ~workers w)
          (List.init workers (fun w -> w))
      in
      let total = List.fold_left (fun a (lo, hi) -> a + hi - lo) 0 all in
      check ci (Printf.sprintf "cover %d/%d" count workers) count total)
    [ (13, 4); (4, 4); (3, 4); (1000, 7); (8, 2) ]

let prop_worker_range_disjoint =
  QCheck.Test.make ~name:"worker ranges partition [0, count)" ~count:100
    QCheck.(triple (int_range 1 200) (int_range 1 8) (int_range 1 16))
    (fun (count, workers, chunk) ->
      let mark sched =
        let seen = Array.make count 0 in
        List.iter
          (fun w ->
            List.iter
              (fun (lo, hi) ->
                for i = lo to hi - 1 do
                  seen.(i) <- seen.(i) + 1
                done)
              (Par_exec.worker_range sched ~count ~workers w))
          (List.init workers (fun w -> w));
        Array.for_all (fun c -> c = 1) seen
      in
      mark Par_exec.Block && mark (Par_exec.Cyclic chunk))

let mc_plan () =
  match
    Derive.multicore_dft ~p:4 ~mu:2
      (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
  with
  | Ok f -> Plan.of_formula f
  | Error e -> Alcotest.fail (Derive.error_to_string e)

let test_par_exec_matches_seq () =
  let plan = mc_plan () in
  let x = Cvec.random ~seed:77 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 4 (fun pool ->
      let y = Cvec.create 256 in
      Par_exec.execute pool plan x y;
      check cb "pooled block" true (Cvec.max_abs_diff y want = 0.0);
      Cvec.fill_zero y;
      Par_exec.execute pool ~schedule:(Par_exec.Cyclic 1) plan x y;
      check cb "pooled cyclic" true (Cvec.max_abs_diff y want = 0.0));
  let y = Cvec.create 256 in
  Par_exec.execute_fork_join ~p:4 plan x y;
  check cb "fork-join" true (Cvec.max_abs_diff y want = 0.0)

let test_par_exec_more_workers_than_par () =
  (* pool larger than the plan's parallel degree still computes correctly *)
  let plan = mc_plan () in
  let x = Cvec.random ~seed:5 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 2 (fun pool ->
      let y = Cvec.create 256 in
      Par_exec.execute pool plan x y;
      check cb "p=2 pool on p=4 plan" true (Cvec.max_abs_diff y want = 0.0))

let test_par_exec_sequential_plan () =
  (* a plan with no parallel passes runs on worker 0 only *)
  let plan = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix 64)) in
  let x = Cvec.random ~seed:3 64 in
  let want = Cvec.create 64 in
  Plan.execute plan x want;
  Pool.with_pool 3 (fun pool ->
      let y = Cvec.create 64 in
      Par_exec.execute pool plan x y;
      check cb "seq plan via pool" true (Cvec.max_abs_diff y want = 0.0))

let test_par_exec_repeated () =
  let plan = mc_plan () in
  let x = Cvec.random ~seed:9 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 4 (fun pool ->
      let y = Cvec.create 256 in
      for _ = 1 to 30 do
        Cvec.fill_zero y;
        Par_exec.execute pool plan x y;
        if Cvec.max_abs_diff y want <> 0.0 then Alcotest.fail "nondeterminism"
      done)

(* ------------------------------------------------------------------ *)
(* Supervised execution under injected faults                          *)

let close_enough y want = Cvec.max_abs_diff y want < 1e-9

let test_execute_safe_no_fault () =
  (* without faults, execute_safe is exactly execute *)
  let plan = mc_plan () in
  let x = Cvec.random ~seed:21 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 4 (fun pool ->
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool plan x y;
      check cb "identical to sequential" true (Cvec.max_abs_diff y want = 0.0))

let test_execute_safe_worker_death () =
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:22 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      Fault.arm ~site:"pool.worker" ~times:1 ();
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool ~timeout:0.5 plan x y;
      check cb "correct despite worker death" true (close_enough y want);
      check cb "retry recorded" true (Counters.get "par_exec.retry" >= 1);
      check cb "pool was rebuilt" true (Pool.rebuilds pool >= 1));
  Fault.reset ()

let test_execute_safe_mid_pass_raise () =
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:23 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      (* one worker aborts at a pass boundary; its peers observe the
         barrier timeout instead of hanging *)
      Fault.arm ~site:"par_exec.pass" ~after:2 ~times:1 ();
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool ~timeout:0.5 plan x y;
      check cb "correct despite mid-pass fault" true (close_enough y want));
  Fault.reset ()

let test_execute_safe_sequential_fallback () =
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:24 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      (* every parallel attempt faults at the first pass boundary, on
         every worker: execute_safe must degrade to sequential *)
      Fault.arm ~site:"par_exec.pass" ~times:max_int ();
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool ~timeout:0.5 plan x y;
      Fault.reset ();
      check cb "sequential fallback is correct" true (close_enough y want);
      check cb "fallback recorded" true
        (Counters.get "par_exec.sequential_fallback" >= 1))

let test_execute_safe_barrier_fault () =
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:25 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      Fault.arm ~site:"barrier.wait" ~times:1 ();
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool ~timeout:0.5 plan x y;
      check cb "correct despite barrier fault" true (close_enough y want));
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* Schedule edge cases; barrier elision                                *)

let test_worker_range_edges () =
  (* more workers than iterations: exact cover, trailing workers empty *)
  List.iter
    (fun sched ->
      let rs =
        List.init 8 (fun w -> Par_exec.worker_range sched ~count:3 ~workers:8 w)
      in
      let seen = Array.make 3 0 in
      List.iter
        (List.iter (fun (lo, hi) ->
             check cb "bounds" true (0 <= lo && lo < hi && hi <= 3);
             for i = lo to hi - 1 do
               seen.(i) <- seen.(i) + 1
             done))
        rs;
      check cb "cover" true (Array.for_all (fun c -> c = 1) seen);
      check cb "some empty" true (List.exists (( = ) []) rs))
    [ Par_exec.Block; Par_exec.Cyclic 1; Par_exec.Cyclic 2 ];
  (* non-positive cyclic chunk clamps to 1 *)
  check cb "chunk 0 = chunk 1" true
    (Par_exec.worker_range (Par_exec.Cyclic 0) ~count:4 ~workers:2 0
    = Par_exec.worker_range (Par_exec.Cyclic 1) ~count:4 ~workers:2 0);
  check cb "negative chunk" true
    (Par_exec.worker_range (Par_exec.Cyclic (-3)) ~count:4 ~workers:2 1
    = [ (1, 2); (3, 4) ]);
  (* chunk larger than count: worker 0 takes everything *)
  check cb "oversized chunk, w0" true
    (Par_exec.worker_range (Par_exec.Cyclic 99) ~count:5 ~workers:3 0
    = [ (0, 5) ]);
  check cb "oversized chunk, w1" true
    (Par_exec.worker_range (Par_exec.Cyclic 99) ~count:5 ~workers:3 1 = []);
  check cb "zero count" true
    (Par_exec.worker_range Par_exec.Block ~count:0 ~workers:4 2 = [])

let test_elision_mask () =
  (* the multicore formula-14 plan: 4 parallel passes; under a dividing
     worker count boundaries 0 and 2 are partition-compatible and the
     no-chain rule blocks boundary 1 *)
  let plan = mc_plan () in
  let mask w = Par_exec.elision_mask ~workers:w plan in
  check cb "p=1 all elided" true (mask 1 = [| true; true; true |]);
  check cb "p=2" true (mask 2 = [| true; false; true |]);
  check cb "p=4" true (mask 4 = [| true; false; true |]);
  check cb "p=3 incompatible" true (mask 3 = [| false; false; false |]);
  check cb "cyclic never elides" true
    (Par_exec.elision_mask ~schedule:(Par_exec.Cyclic 1) ~workers:4 plan = [||]);
  check cb "mask cached per worker count" true (mask 4 == mask 4)

let test_elision_matches_and_counted () =
  let plan = mc_plan () in
  let x = Cvec.random ~seed:31 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Counters.reset ();
  Pool.with_pool 4 (fun pool ->
      let y = Cvec.create 256 in
      Par_exec.execute pool plan x y;
      check cb "elided equals sequential" true (Cvec.max_abs_diff y want = 0.0);
      check ci "elisions counted" 2 (Counters.get "par_exec.barrier_elided");
      Cvec.fill_zero y;
      Par_exec.execute pool ~elide:false plan x y;
      check cb "elide:false identical" true (Cvec.max_abs_diff y want = 0.0);
      check ci "elide:false adds none" 2
        (Counters.get "par_exec.barrier_elided"));
  let y = Cvec.create 256 in
  Par_exec.execute_fork_join ~p:4 plan x y;
  check cb "fork-join merged regions" true (Cvec.max_abs_diff y want = 0.0);
  Cvec.fill_zero y;
  Par_exec.execute_fork_join ~p:4 ~elide:false plan x y;
  check cb "fork-join unmerged" true (Cvec.max_abs_diff y want = 0.0)

let test_elision_under_fault () =
  (* supervision and elision compose: a mid-transform fault on an elided
     plan still ends in the exact transform *)
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:32 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      Fault.arm ~site:"par_exec.pass" ~after:1 ~times:1 ();
      let y = Cvec.create 256 in
      Par_exec.execute_safe pool ~timeout:0.5 plan x y;
      check cb "elided plan correct under fault" true (close_enough y want);
      check cb "elisions recorded" true
        (Counters.get "par_exec.barrier_elided" > 0));
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* Low-latency rendezvous; prepared schedules; batched execution       *)

let test_dispatch_no_sleep () =
  (* the steady-state dispatch/join/barrier path must never reach the
     timed-sleep fallback: spin and park only *)
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:41 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 4 (fun pool ->
      let prep = Par_exec.prepare pool plan in
      let y = Cvec.create 256 in
      for _ = 1 to 50 do
        Par_exec.execute_prepared prep x y
      done;
      check cb "prepared correct" true (Cvec.max_abs_diff y want = 0.0));
  check ci "no timed sleeps in steady state" 0
    (Counters.get Spinwait.timed_sleep_counter)

let test_execute_many_bit_identical () =
  let plan = mc_plan () in
  let jobs = 6 in
  let xs = Array.init jobs (fun j -> Cvec.random ~seed:(50 + j) 256) in
  let wants =
    Array.map
      (fun x ->
        let y = Cvec.create 256 in
        Plan.execute plan x y;
        y)
      xs
  in
  Pool.with_pool 4 (fun pool ->
      let prep = Par_exec.prepare pool plan in
      let ys = Array.map (fun _ -> Cvec.create 256) xs in
      Par_exec.execute_many prep (Array.init jobs (fun j -> (xs.(j), ys.(j))));
      Array.iteri
        (fun j y ->
          check cb
            (Printf.sprintf "job %d bit-identical" j)
            true
            (Cvec.max_abs_diff y wants.(j) = 0.0))
        ys)

let test_execute_many_chained () =
  (* job j+1 reads job j's output: the wrap barrier must not be elided *)
  let plan = mc_plan () in
  let x0 = Cvec.random ~seed:60 256 in
  let b1 = Cvec.create 256
  and b2 = Cvec.create 256
  and b3 = Cvec.create 256 in
  let w1 = Cvec.create 256
  and w2 = Cvec.create 256
  and w3 = Cvec.create 256 in
  Plan.execute plan x0 w1;
  Plan.execute plan w1 w2;
  Plan.execute plan w2 w3;
  Pool.with_pool 4 (fun pool ->
      let prep = Par_exec.prepare pool plan in
      Par_exec.execute_many prep [| (x0, b1); (b1, b2); (b2, b3) |];
      check cb "chain 1" true (Cvec.max_abs_diff b1 w1 = 0.0);
      check cb "chain 2" true (Cvec.max_abs_diff b2 w2 = 0.0);
      check cb "chain 3" true (Cvec.max_abs_diff b3 w3 = 0.0))

let test_execute_many_same_buffers () =
  (* re-using one (x, y) pair across the batch — the benchmark loop —
     keeps wrap elision legal and the result identical to execute *)
  let plan = mc_plan () in
  let x = Cvec.random ~seed:61 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 4 (fun pool ->
      let prep = Par_exec.prepare pool plan in
      let y = Cvec.create 256 in
      Par_exec.execute_many prep (Array.make 10 (x, y));
      check cb "identical after batch" true (Cvec.max_abs_diff y want = 0.0))

let test_prepared_reuse_after_fault () =
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:62 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 4 (fun pool ->
      let prep = Par_exec.prepare pool ~timeout:0.5 plan in
      let y = Cvec.create 256 in
      Par_exec.execute_safe_prepared prep x y;
      check cb "before fault" true (close_enough y want);
      Fault.arm ~site:"par_exec.pass" ~after:2 ~times:1 ();
      Cvec.fill_zero y;
      Par_exec.execute_safe_prepared prep x y;
      check cb "correct despite fault" true (close_enough y want);
      Fault.reset ();
      Cvec.fill_zero y;
      for _ = 1 to 10 do
        Par_exec.execute_safe_prepared prep x y
      done;
      check cb "prepared reusable after fault" true (close_enough y want));
  Fault.reset ()

let test_mu_alignment_property () =
  (* Definition 1: whenever (pµ)² | N, every aligned Block boundary of a
     µ-tagged pass falls on a multiple of µ complex elements, and the
     false-sharing residue is zero *)
  List.iter
    (fun (p, mu, m, n) ->
      match
        Derive.multicore_dft ~p ~mu
          (Ruletree.Ct (Ruletree.mixed_radix m, Ruletree.mixed_radix (n / m)))
      with
      | Error e -> Alcotest.fail (Derive.error_to_string e)
      | Ok f ->
          let plan = Plan.of_formula f in
          Array.iter
            (fun (pass : Plan.pass) ->
              match (pass.Plan.par, pass.Plan.mu) with
              | Some _, Some pmu ->
                  for w = 0 to p - 1 do
                    List.iter
                      (fun (lo, hi) ->
                        check ci
                          (Printf.sprintf "lo µ-aligned (p=%d µ=%d w=%d)" p mu
                             w)
                          0
                          (lo * pass.Plan.radix mod pmu);
                        if hi <> pass.Plan.count then
                          check ci "hi µ-aligned" 0
                            (hi * pass.Plan.radix mod pmu))
                      (Par_exec.worker_range
                         ~align:(Par_exec.pass_align pass) Par_exec.Block
                         ~count:pass.Plan.count ~workers:p w)
                  done
              | _ -> ())
            plan.Plan.passes;
          check ci
            (Printf.sprintf "no shared µ-lines at native p (p=%d µ=%d)" p mu)
            0
            (Par_exec.misaligned_lines ~workers:p plan))
    [
      (2, 2, 16, 256);
      (2, 4, 16, 256);
      (4, 2, 16, 256);
      (2, 2, 64, 4096);
      (4, 4, 64, 4096);
    ]

let test_misaligned_counter_fires () =
  (* a plan generated for p=4 processors but partitioned for 3 workers
     shares µ-lines between workers; the check must see them *)
  let plan = mc_plan () in
  check ci "native worker count is clean" 0
    (Par_exec.misaligned_lines ~workers:4 plan);
  check cb "mismatched worker count shares lines" true
    (Par_exec.misaligned_lines ~workers:3 plan > 0)

let test_worker_range_aligned () =
  let ranges align =
    List.init 3 (fun w ->
        Par_exec.worker_range ~align Par_exec.Block ~count:64 ~workers:3 w)
  in
  check cb "align=1 keeps remainder boundaries" true
    (ranges 1 = [ [ (0, 22) ]; [ (22, 43) ]; [ (43, 64) ] ]);
  check cb "align=8 floors internal boundaries" true
    (ranges 8 = [ [ (0, 16) ]; [ (16, 40) ]; [ (40, 64) ] ]);
  check cb "oversized align collapses onto one worker" true
    (ranges 64 = [ []; []; [ (0, 64) ] ])

let prop_worker_range_aligned_partition =
  QCheck.Test.make ~name:"aligned worker ranges partition [0, count)"
    ~count:200
    QCheck.(triple (int_range 1 300) (int_range 1 8) (int_range 1 32))
    (fun (count, workers, align) ->
      let seen = Array.make count 0 in
      List.iter
        (fun w ->
          List.iter
            (fun (lo, hi) ->
              for i = lo to hi - 1 do
                seen.(i) <- seen.(i) + 1
              done)
            (Par_exec.worker_range ~align Par_exec.Block ~count ~workers w))
        (List.init workers (fun w -> w));
      Array.for_all (fun c -> c = 1) seen)

(* ------------------------------------------------------------------ *)
(* Pool registry: release/acquire races                                *)

let test_registry_never_hands_out_stopped () =
  (* regression: a pool shut down behind the registry's back (a stress
     harness, an embedder) used to be handed to the next acquirer, whose
     every [run] would then raise.  acquire must revalidate and
     replace. *)
  let p = 5 (* worker count no other test uses *) in
  let a = Pool_registry.acquire p in
  Pool_registry.release a;
  Pool.shutdown a;
  let replaced0 = Counters.get "pool_registry.replaced" in
  let b = Pool_registry.acquire p in
  check cb "fresh pool, not the stopped one" true (not (b == a));
  check cb "handed-out pool is live" true (not (Pool.stopped b));
  check ci "replacement counted" (replaced0 + 1)
    (Counters.get "pool_registry.replaced");
  (* the replacement actually works *)
  let hits = Atomic.make 0 in
  Pool.run b (fun _ -> Atomic.incr hits);
  check ci "all workers ran" p (Atomic.get hits);
  Pool_registry.release b;
  Pool.shutdown b

let test_registry_acquire_release_clear_race () =
  (* churn acquire/release/clear/heal_sick from several domains at once;
     the invariant under test: an acquired pool is never stopped at
     hand-out, no matter how the operations interleave (acquire bumps
     the refcount in the same critical section clear inspects, so clear
     can only shut down pools nobody holds) *)
  let p = 6 in
  let iters = 150 in
  let bad = Atomic.make 0 in
  let worker seed =
    let rng = Random.State.make [| seed |] in
    for _ = 1 to iters do
      let pool = Pool_registry.acquire p in
      if Pool.stopped pool then Atomic.incr bad;
      if Random.State.int rng 4 = 0 then Domain.cpu_relax ();
      Pool_registry.release pool;
      match Random.State.int rng 8 with
      | 0 -> Pool_registry.clear ()
      | 1 -> ignore (Pool_registry.heal_sick ())
      | _ -> ()
    done
  in
  let domains = Array.init 4 (fun i -> Domain.spawn (fun () -> worker (17 * (i + 1)))) in
  Array.iter Domain.join domains;
  check ci "no stopped pool ever handed out" 0 (Atomic.get bad);
  (* the registry is coherent afterwards: a fresh acquire serves jobs *)
  let pool = Pool_registry.acquire p in
  let hits = Atomic.make 0 in
  Pool.run pool (fun _ -> Atomic.incr hits);
  check ci "registry coherent after churn" p (Atomic.get hits);
  Pool_registry.release pool;
  Pool_registry.clear ()

(* ------------------------------------------------------------------ *)
(* Resident regions and the specialized 2-party rendezvous             *)

let test_barrier2_phases () =
  (* the p=2 ticket protocol: many phases, both participants must
     observe each other's increments after every wait *)
  let phases = 200 in
  let b = Barrier.create 2 in
  let errors = Atomic.make 0 in
  let counter = Atomic.make 0 in
  let peer =
    Domain.spawn (fun () ->
        let ctx = Barrier.make_ctx b in
        for ph = 0 to phases - 1 do
          Atomic.incr counter;
          Barrier.wait b ctx;
          if Atomic.get counter < 2 * (ph + 1) then Atomic.incr errors;
          Barrier.wait b ctx
        done)
  in
  let ctx = Barrier.make_ctx b in
  for ph = 0 to phases - 1 do
    Atomic.incr counter;
    Barrier.wait b ctx;
    if Atomic.get counter <> 2 * (ph + 1) then Atomic.incr errors;
    Barrier.wait b ctx
  done;
  Domain.join peer;
  check ci "two-party phase errors" 0 (Atomic.get errors);
  check ci "two-party final count" (2 * phases) (Atomic.get counter)

let test_region_resident_steady () =
  (* a pinned plan executes many times inside one region: exactly one
     region establishment, no timed sleeps, bit-exact results *)
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:61 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 2 (fun pool ->
      let prep = Par_exec.prepare pool ~resident:`On plan in
      let y = Cvec.create 256 in
      for _ = 1 to 50 do
        Cvec.fill_zero y;
        Par_exec.execute_prepared prep x y;
        if Cvec.max_abs_diff y want <> 0.0 then Alcotest.fail "wrong result"
      done;
      check cb "region established" true (Pool.resident pool <> None);
      check ci "established exactly once" 1
        (Counters.get "pool.region_enter");
      Par_exec.release prep;
      check cb "released" true (Pool.resident pool = None);
      (* the pool is an ordinary pool again *)
      let acc = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr acc);
      check ci "pooled dispatch after release" 2 (Atomic.get acc));
  check ci "no timed sleeps while resident" 0
    (Counters.get Spinwait.timed_sleep_counter)

let test_region_idle_decay () =
  (* workers release themselves back to the pool's idle park after the
     idle deadline; the next execute re-establishes transparently *)
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:62 256 in
  let want = Cvec.create 256 in
  Plan.execute plan x want;
  Pool.with_pool 2 (fun pool ->
      let prep = Par_exec.prepare pool ~resident:`On ~resident_idle:0.05 plan in
      let y = Cvec.create 256 in
      Par_exec.execute_prepared prep x y;
      check ci "pinned" 1 (Counters.get "pool.region_enter");
      (* outlive the idle deadline (decay CAS happens on a watchdog-ticked
         re-check, so allow generous slack) *)
      let rec await tries =
        if Counters.get "pool.region_decay" >= 1 then ()
        else if tries = 0 then Alcotest.fail "region never decayed"
        else begin
          Unix.sleepf 0.05;
          await (tries - 1)
        end
      in
      await 100;
      (* decayed, not evicted: nothing ended the region yet *)
      Cvec.fill_zero y;
      Par_exec.execute_prepared prep x y;
      check cb "correct after decay" true (Cvec.max_abs_diff y want = 0.0);
      check cb "re-established" true (Counters.get "pool.region_enter" >= 2);
      Par_exec.release prep)

let test_region_worker_death () =
  (* a peer killed inside the region surfaces as Deadlock naming the
     dead worker; heal rebuilds, and residency is re-established *)
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:63 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:2.0 2 (fun pool ->
      let prep = Par_exec.prepare pool ~resident:`On plan in
      let y = Cvec.create 256 in
      Par_exec.execute_prepared prep x y;
      check ci "pinned before the kill" 1 (Counters.get "pool.region_enter");
      Fault.arm ~site:"pool.worker" ~times:1 ();
      (try
         Par_exec.execute_prepared prep x y;
         Alcotest.fail "dead resident worker not detected"
       with Pool.Deadlock msg ->
         check cb "names the dead worker" true (contains msg "dead workers [1]"));
      Fault.disarm "pool.worker";
      check cb "pool unhealthy after death" false (Pool.healthy pool);
      (* the failed execute dropped residency, so heal can run *)
      Pool.heal pool;
      check ci "one rebuild" 1 (Pool.rebuilds pool);
      Cvec.fill_zero y;
      Par_exec.execute_prepared prep x y;
      check cb "correct after heal" true (close_enough y want);
      check cb "residency restored" true
        (Counters.get "pool.region_enter" >= 2);
      Par_exec.release prep);
  Fault.reset ()

let test_region_death_supervised () =
  (* same kill through the supervised path: one call, correct answer *)
  Fault.reset ();
  Counters.reset ();
  let plan = mc_plan () in
  let x = Cvec.random ~seed:64 256 in
  let want = Naive_dft.dft x in
  Pool.with_pool ~timeout:0.5 2 (fun pool ->
      let prep = Par_exec.prepare pool ~resident:`On plan in
      let y = Cvec.create 256 in
      Par_exec.execute_safe_prepared prep x y;
      Fault.arm ~site:"pool.worker" ~times:1 ();
      Cvec.fill_zero y;
      Par_exec.execute_safe_prepared prep x y;
      check cb "correct despite resident worker death" true
        (close_enough y want);
      check cb "retry recorded" true (Counters.get "par_exec.retry" >= 1);
      check cb "pool was rebuilt" true (Pool.rebuilds pool >= 1);
      Par_exec.release prep);
  Fault.reset ()

let test_region_reentrant_rejected () =
  (* caller-as-worker-0 re-entrancy guard on the region fast path *)
  Pool.with_pool 2 (fun pool ->
      let r = Pool.region_begin pool in
      let rejected = Atomic.make false in
      let ok =
        Pool.region_run r (fun w ->
            if w = 0 then
              try ignore (Pool.region_run r ignore)
              with Invalid_argument _ -> Atomic.set rejected true)
      in
      check cb "outer call dispatched" true ok;
      check cb "nested region_run rejected" true (Atomic.get rejected);
      Pool.region_end r;
      (* idempotent, and the pool is usable again *)
      Pool.region_end r;
      let acc = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr acc);
      check ci "pool released" 2 (Atomic.get acc))

let test_region_eviction_shared_pool () =
  (* two plans alternating on one pool: the second evicts the first's
     region and both keep computing correctly *)
  Counters.reset ();
  let plan_a = mc_plan () and plan_b = mc_plan () in
  let x = Cvec.random ~seed:65 256 in
  let want = Cvec.create 256 in
  Plan.execute plan_a x want;
  Pool.with_pool 2 (fun pool ->
      let pa = Par_exec.prepare pool ~resident:`On plan_a in
      let pb = Par_exec.prepare pool ~resident:`Off plan_b in
      let y = Cvec.create 256 in
      Par_exec.execute_prepared pa x y;
      check cb "A pinned" true (Pool.resident pool <> None);
      Cvec.fill_zero y;
      Par_exec.execute_prepared pb x y;
      check cb "B correct after evicting A" true
        (Cvec.max_abs_diff y want = 0.0);
      check cb "eviction counted" true
        (Counters.get "pool.region_evict" >= 1);
      Cvec.fill_zero y;
      Par_exec.execute_prepared pa x y;
      check cb "A correct after being evicted" true
        (Cvec.max_abs_diff y want = 0.0);
      Par_exec.release pa;
      Par_exec.release pb)

let suite =
  [
    Alcotest.test_case "barrier: multi-phase visibility" `Quick test_barrier_phases;
    Alcotest.test_case "barrier: single participant" `Quick test_barrier_single;
    Alcotest.test_case "barrier: invalid size" `Quick test_barrier_invalid;
    Alcotest.test_case "barrier: wait times out" `Quick test_barrier_timeout;
    Alcotest.test_case "barrier: fault-injection site" `Quick test_barrier_fault_site;
    Alcotest.test_case "pool: job runs on all workers" `Quick test_pool_sum;
    Alcotest.test_case "pool: reuse across 100 jobs" `Quick test_pool_reuse;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool: all worker errors aggregated" `Quick
      test_pool_errors_aggregated;
    Alcotest.test_case "pool: re-entrant run rejected" `Quick
      test_pool_reentrant_rejected;
    Alcotest.test_case "pool: worker death detected and healed" `Quick
      test_pool_worker_death_supervised;
    Alcotest.test_case "pool: size one" `Quick test_pool_size_one;
    Alcotest.test_case "pool: shutdown rejects jobs" `Quick test_pool_shutdown_rejects;
    Alcotest.test_case "schedule: block partition" `Quick test_worker_range_block_partition;
    QCheck_alcotest.to_alcotest prop_worker_range_disjoint;
    Alcotest.test_case "schedule: edge cases" `Quick test_worker_range_edges;
    Alcotest.test_case "elision: mask legality" `Quick test_elision_mask;
    Alcotest.test_case "elision: exact and counted" `Quick
      test_elision_matches_and_counted;
    Alcotest.test_case "elision: under injected fault" `Quick
      test_elision_under_fault;
    Alcotest.test_case "par exec: equals sequential" `Quick test_par_exec_matches_seq;
    Alcotest.test_case "par exec: pool smaller than plan degree" `Quick
      test_par_exec_more_workers_than_par;
    Alcotest.test_case "par exec: sequential plan on pool" `Quick
      test_par_exec_sequential_plan;
    Alcotest.test_case "par exec: repeated determinism" `Quick test_par_exec_repeated;
    Alcotest.test_case "execute_safe: no fault" `Quick test_execute_safe_no_fault;
    Alcotest.test_case "execute_safe: worker death" `Quick
      test_execute_safe_worker_death;
    Alcotest.test_case "execute_safe: mid-pass raise" `Quick
      test_execute_safe_mid_pass_raise;
    Alcotest.test_case "execute_safe: sequential fallback" `Quick
      test_execute_safe_sequential_fallback;
    Alcotest.test_case "execute_safe: barrier fault" `Quick
      test_execute_safe_barrier_fault;
    Alcotest.test_case "dispatch: zero timed sleeps in steady state" `Quick
      test_dispatch_no_sleep;
    Alcotest.test_case "execute_many: bit-identical to execute" `Quick
      test_execute_many_bit_identical;
    Alcotest.test_case "execute_many: chained buffers keep wrap barrier"
      `Quick test_execute_many_chained;
    Alcotest.test_case "execute_many: same buffers reused across batch"
      `Quick test_execute_many_same_buffers;
    Alcotest.test_case "prepared: reusable after injected fault" `Quick
      test_prepared_reuse_after_fault;
    Alcotest.test_case "µ-alignment: boundaries on µ-lines, zero residue"
      `Quick test_mu_alignment_property;
    Alcotest.test_case "µ-alignment: misaligned counter fires off-p" `Quick
      test_misaligned_counter_fires;
    Alcotest.test_case "schedule: aligned boundaries" `Quick
      test_worker_range_aligned;
    QCheck_alcotest.to_alcotest prop_worker_range_aligned_partition;
    Alcotest.test_case "registry: stopped pool never handed out" `Quick
      test_registry_never_hands_out_stopped;
    Alcotest.test_case "registry: acquire/release/clear churn" `Quick
      test_registry_acquire_release_clear_race;
    Alcotest.test_case "barrier: two-party ticket protocol phases" `Quick
      test_barrier2_phases;
    Alcotest.test_case "region: resident steady state, one establishment"
      `Quick test_region_resident_steady;
    Alcotest.test_case "region: idle decay releases workers" `Quick
      test_region_idle_decay;
    Alcotest.test_case "region: worker death names dead worker, heals" `Quick
      test_region_worker_death;
    Alcotest.test_case "region: worker death under supervision" `Quick
      test_region_death_supervised;
    Alcotest.test_case "region: re-entrant run rejected" `Quick
      test_region_reentrant_rejected;
    Alcotest.test_case "region: eviction on a shared pool" `Quick
      test_region_eviction_shared_pool;
  ]
