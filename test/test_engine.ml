(* The unified problem planner: descriptor round-trips, every transform
   kind through the one Engine at several worker counts, the shared
   refcounted pool registry, and the engine telemetry counters. *)

open Spiral_util
open Spiral_fft

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Problem descriptors                                                 *)

let test_problem_canonical () =
  let p = Problem.make Problem.Dft [ 1024 ] in
  check cs "dft" "dft[1024]f" (Problem.to_string p);
  check cs "dft2d" "dft2d[16x8]f"
    (Problem.to_string (Problem.make Problem.Dft2d [ 16; 8 ]));
  check cs "inverse batch" "dft[256]ix8"
    (Problem.to_string
       (Problem.make ~direction:Problem.Inverse ~batch:8 Problem.Dft [ 256 ]));
  check ci "size" 128 (Problem.size (Problem.make Problem.Dft2d [ 16; 8 ]));
  check ci "total includes batch" 2048
    (Problem.total (Problem.make ~batch:8 Problem.Dft [ 256 ]))

let test_problem_roundtrip () =
  List.iter
    (fun p ->
      match Problem.of_string (Problem.to_string p) with
      | Some p' ->
          check cb (Problem.to_string p) true (Problem.equal p p');
          check ci "hash agrees" (Problem.hash p) (Problem.hash p')
      | None -> Alcotest.failf "no parse: %s" (Problem.to_string p))
    [
      Problem.make Problem.Dft [ 64 ];
      Problem.make ~direction:Problem.Inverse Problem.Dft [ 100 ];
      Problem.make Problem.Dft2d [ 8; 32 ];
      Problem.make ~batch:5 Problem.Dft [ 16 ];
      Problem.make Problem.Wht [ 256 ];
      Problem.make Problem.Rfft [ 128 ];
      Problem.make Problem.Dct [ 64 ];
    ];
  check cb "garbage rejected" true (Problem.of_string "nope[12]f" = None);
  check cb "rank mismatch rejected" true (Problem.of_string "dft[4x4]f" = None)

let test_problem_validation () =
  (try
     ignore (Problem.make Problem.Dft2d [ 8 ]);
     Alcotest.fail "rank mismatch accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Problem.make ~batch:0 Problem.Dft [ 8 ]);
     Alcotest.fail "batch 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Problem.make ~vec:1 Problem.Dft [ 8 ]);
    Alcotest.fail "vec 1 accepted"
  with Invalid_argument _ -> ()

let test_problem_vec_descriptor () =
  check cs "vec suffix" "dft[1024]fv4"
    (Problem.to_string (Problem.make ~vec:4 Problem.Dft [ 1024 ]));
  check cs "vec before batch" "dft[256]iv2x8"
    (Problem.to_string
       (Problem.make ~direction:Problem.Inverse ~batch:8 ~vec:2 Problem.Dft
          [ 256 ]));
  List.iter
    (fun p ->
      match Problem.of_string (Problem.to_string p) with
      | Some p' ->
          check cb (Problem.to_string p) true (Problem.equal p p');
          check ci "vec preserved" (Problem.vec p) (Problem.vec p')
      | None -> Alcotest.failf "no parse: %s" (Problem.to_string p))
    [
      Problem.make ~vec:4 Problem.Dft [ 1024 ];
      Problem.make ~vec:2 ~batch:8 Problem.Dft [ 256 ];
      Problem.make ~vec:2 Problem.Wht [ 64 ];
    ];
  (* scalar and vectorized descriptors are distinct problems *)
  check cb "vec distinguishes" false
    (Problem.equal
       (Problem.make Problem.Dft [ 64 ])
       (Problem.make ~vec:2 Problem.Dft [ 64 ]));
  check cb "v1 rejected" true (Problem.of_string "dft[64]fv1" = None);
  check cb "bare v rejected" true (Problem.of_string "dft[64]fvx4" = None)

(* ------------------------------------------------------------------ *)
(* Cross-transform property suite: every kind through the unified
   engine matches its naive reference at p ∈ {1, 2, 4}.               *)

let wht_reference n x =
  Cmatrix.apply (Spiral_spl.Semantics.to_matrix (Spiral_spl.Formula.WHT n)) x

let naive_dft2d ~rows ~cols x =
  let row_done = Cvec.create (rows * cols) in
  for r = 0 to rows - 1 do
    let slice = Cvec.create cols in
    Array.blit x (2 * r * cols) slice 0 (2 * cols);
    Array.blit (Naive_dft.dft slice) 0 row_done (2 * r * cols) (2 * cols)
  done;
  let out = Cvec.create (rows * cols) in
  for c = 0 to cols - 1 do
    let col = Cvec.create rows in
    for r = 0 to rows - 1 do
      Cvec.set col r (Cvec.get row_done ((r * cols) + c))
    done;
    let f = Naive_dft.dft col in
    for r = 0 to rows - 1 do
      Cvec.set out ((r * cols) + c) (Cvec.get f r)
    done
  done;
  out

let direct_dct2 x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc :=
          !acc
          +. x.(j)
             *. cos
                  (Float.pi *. float_of_int k
                   *. float_of_int ((2 * j) + 1)
                   /. (2.0 *. float_of_int n))
      done;
      !acc)

let workers = [ 1; 2; 4 ]

let test_cross_dft () =
  List.iter
    (fun p ->
      Dft.with_plan ~threads:p ~mu:2 256 (fun t ->
          let x = Cvec.random ~seed:p 256 in
          check cb
            (Printf.sprintf "dft p=%d" p)
            true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-7));
      Dft.with_plan ~direction:Dft.Inverse ~threads:p ~mu:2 256 (fun t ->
          let x = Cvec.random ~seed:(p + 10) 256 in
          check cb
            (Printf.sprintf "idft p=%d" p)
            true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.idft x) < 1e-8)))
    workers

let test_cross_bluestein () =
  List.iter
    (fun p ->
      Dft.with_plan ~threads:p ~mu:2 97 (fun t ->
          let x = Cvec.random ~seed:p 97 in
          check cb
            (Printf.sprintf "bluestein p=%d" p)
            true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-7)))
    workers

let test_cross_wht () =
  List.iter
    (fun p ->
      Wht.with_plan ~threads:p ~mu:2 256 (fun t ->
          let x = Cvec.random ~seed:p 256 in
          check cb
            (Printf.sprintf "wht p=%d" p)
            true
            (Cvec.max_abs_diff (Wht.execute t x) (wht_reference 256 x) < 1e-8)))
    workers

let test_cross_dft2d () =
  List.iter
    (fun p ->
      Dft2d.with_plan ~threads:p ~mu:2 ~rows:16 ~cols:16 (fun t ->
          let x = Cvec.random ~seed:p 256 in
          check cb
            (Printf.sprintf "dft2d p=%d" p)
            true
            (Cvec.max_abs_diff (Dft2d.execute t x)
               (naive_dft2d ~rows:16 ~cols:16 x)
            < 1e-7)))
    workers

let test_cross_batch () =
  List.iter
    (fun p ->
      Batch.with_plan ~threads:p ~mu:2 ~count:8 64 (fun t ->
          let x = Cvec.random ~seed:p (8 * 64) in
          let y = Batch.execute t x in
          for b = 0 to 7 do
            let slice = Cvec.create 64 in
            Array.blit x (2 * b * 64) slice 0 (2 * 64);
            let want = Naive_dft.dft slice in
            let got = Cvec.create 64 in
            Array.blit y (2 * b * 64) got 0 (2 * 64);
            if Cvec.max_abs_diff got want > 1e-8 then
              Alcotest.failf "batch p=%d element %d" p b
          done))
    workers

let test_cross_rfft () =
  List.iter
    (fun p ->
      Rfft.with_plan ~threads:p ~mu:2 256 (fun t ->
          let st = Random.State.make [| p |] in
          let x = Array.init 256 (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let xc = Cvec.create 256 in
          Array.iteri (fun i v -> xc.(2 * i) <- v) x;
          let want = Naive_dft.dft xc in
          let got = Rfft.forward t x in
          for k = 0 to 128 do
            if
              Float.abs (got.(2 * k) -. want.(2 * k)) > 1e-8
              || Float.abs (got.((2 * k) + 1) -. want.((2 * k) + 1)) > 1e-8
            then Alcotest.failf "rfft p=%d bin %d" p k
          done;
          let back = Rfft.inverse t got in
          Array.iteri
            (fun i v ->
              if Float.abs (v -. x.(i)) > 1e-9 then
                Alcotest.failf "rfft roundtrip p=%d i=%d" p i)
            back))
    workers

let test_cross_dct () =
  List.iter
    (fun p ->
      Dct.with_plan ~threads:p ~mu:2 256 (fun t ->
          let st = Random.State.make [| p + 5 |] in
          let x = Array.init 256 (fun _ -> Random.State.float st 2.0 -. 1.0) in
          let got = Dct.forward t x in
          let want = direct_dct2 x in
          Array.iteri
            (fun k v ->
              if Float.abs (v -. want.(k)) > 1e-7 then
                Alcotest.failf "dct p=%d k=%d" p k)
            got;
          let back = Dct.inverse t got in
          Array.iteri
            (fun j v ->
              if Float.abs (v -. x.(j)) > 1e-9 then
                Alcotest.failf "dct roundtrip p=%d j=%d" p j)
            back))
    workers

let test_rfft_dct_supervised_parallel () =
  (* the inner transforms of the real front-ends run the multicore
     formula through the engine's prepared path *)
  Rfft.with_plan ~threads:2 ~mu:2 1024 (fun t ->
      check cb "rfft parallel" true (Rfft.parallel t));
  Dct.with_plan ~threads:2 ~mu:2 1024 (fun t ->
      check cb "dct parallel" true (Dct.parallel t))

(* ------------------------------------------------------------------ *)
(* Shared pool registry                                                *)

let test_pool_registry_identity () =
  let a = Spiral_smp.Pool_registry.acquire 3 in
  let before = Counters.get "pool_registry.create" in
  Spiral_smp.Pool_registry.release a;
  (* released pools idle in the registry; the next acquire revives the
     same domains instead of respawning *)
  let b = Spiral_smp.Pool_registry.acquire 3 in
  check cb "same pool object" true (a == b);
  check ci "no new pool created" before (Counters.get "pool_registry.create");
  check cb "registry lists it" true
    (List.mem_assoc 3 (Spiral_smp.Pool_registry.stats ()));
  Spiral_smp.Pool_registry.release b

let test_pool_registry_across_plans () =
  (* successive parallel plans at the same worker count share domains *)
  let created0 = Counters.get "pool_registry.create" in
  Dft.with_plan ~threads:2 ~mu:2 256 (fun _ -> ());
  let created1 = Counters.get "pool_registry.create" in
  let reused1 = Counters.get "pool_registry.reuse" in
  Wht.with_plan ~threads:2 ~mu:2 256 (fun _ -> ());
  Dft.with_plan ~threads:2 ~mu:2 1024 (fun _ -> ());
  check ci "no extra pools after the first"
    created1
    (Counters.get "pool_registry.create");
  check cb "pool reused across plans" true
    (Counters.get "pool_registry.reuse" >= reused1 + 2);
  check cb "at most one creation for p=2" true (created1 - created0 <= 1)

(* ------------------------------------------------------------------ *)
(* Engine telemetry counters                                           *)

let test_engine_counters_consistency () =
  (* a problem no other test plans with these exact parameters *)
  let plan_once () = Dft.plan ~threads:2 ~mu:2 1600 in
  let reuse0 = Counters.get "engine.plan_reuse" in
  let create0 = Counters.get "pool_registry.create" in
  let t1 = plan_once () in
  let reuse1 = Counters.get "engine.plan_reuse" in
  let t2 = plan_once () in
  let reuse2 = Counters.get "engine.plan_reuse" in
  check ci "second identical plan hits the registry" (reuse1 + 1) reuse2;
  check cb "first plan may only miss" true (reuse1 - reuse0 <= 1);
  check ci "plan reuse spawned no pools" create0
    (Counters.get "pool_registry.create");
  (* both plans execute correctly despite sharing compiled state *)
  let x = Cvec.random ~seed:3 1600 in
  let want = Naive_dft.dft x in
  check cb "first instance correct" true
    (Cvec.max_abs_diff (Dft.execute t1 x) want < 1e-6);
  check cb "second instance correct" true
    (Cvec.max_abs_diff (Dft.execute t2 x) want < 1e-6);
  Dft.destroy t1;
  Dft.destroy t2;
  (* sequential fallback is counted when the derivation degrades *)
  let fb0 = Counters.get "engine.seq_fallback" in
  Dft.with_plan ~threads:4 ~mu:4 20 (fun t ->
      check cb "fell back" false (Dft.parallel t));
  check ci "fallback counted" (fb0 + 1) (Counters.get "engine.seq_fallback");
  check cb "registry has compiled plans" true (Engine.registry_size () > 0)

let test_engine_destroy_semantics () =
  let t = Dft.plan ~threads:2 ~mu:2 256 in
  Dft.destroy t;
  Dft.destroy t;
  (* idempotent *)
  (try
     ignore (Dft.execute t (Cvec.create 256));
     Alcotest.fail "use after destroy"
   with Invalid_argument _ -> ());
  (* destroying one engine must not break another instance of the same
     problem (plan clones share only immutable state) *)
  let a = Dft.plan ~threads:2 ~mu:2 256 in
  let b = Dft.plan ~threads:2 ~mu:2 256 in
  Dft.destroy a;
  let x = Cvec.random ~seed:9 256 in
  check cb "sibling still works" true
    (Cvec.max_abs_diff (Dft.execute b x) (Naive_dft.dft x) < 1e-7);
  Dft.destroy b

let test_engine_execute_many () =
  Batch.with_plan ~threads:2 ~mu:2 ~count:4 64 (fun t ->
      let xs = Array.init 3 (fun i -> Cvec.random ~seed:i (4 * 64)) in
      let ys = Batch.execute_many t xs in
      Array.iteri
        (fun i x ->
          check cb
            (Printf.sprintf "job %d bit-identical to execute" i)
            true
            (Cvec.max_abs_diff ys.(i) (Batch.execute t x) = 0.0))
        xs)

(* ------------------------------------------------------------------ *)
(* Vectorized engines: split-layout plans behind the same front-ends   *)

let test_engine_vec_correctness () =
  (* vectorize-derived plans must be bit-correct against naive at
     p ∈ {1, 2, 4}, forward and inverse *)
  List.iter
    (fun p ->
      Dft.with_plan ~threads:p ~mu:2 ~vec:`Auto 1024 (fun t ->
          let x = Cvec.random ~seed:(p + 20) 1024 in
          check cb
            (Printf.sprintf "vec dft p=%d" p)
            true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-6));
      Dft.with_plan ~direction:Dft.Inverse ~threads:p ~mu:2 ~vec:`Auto 1024
        (fun t ->
          let x = Cvec.random ~seed:(p + 30) 1024 in
          check cb
            (Printf.sprintf "vec idft p=%d" p)
            true
            (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.idft x) < 1e-7)))
    workers

let test_engine_vec_knob () =
  (* `Auto actually lowers for a friendly size, and the engine reports
     the chosen lane count *)
  Dft.with_plan ~mu:2 ~vec:`Auto 1024 (fun t ->
      check cb "auto lowers" true (Dft.vectorized t > 0));
  Dft.with_plan ~mu:2 ~vec:(`Nu 2) 1024 (fun t ->
      check ci "explicit nu honored" 2 (Dft.vectorized t));
  Dft.with_plan ~mu:2 1024 (fun t ->
      check ci "default is scalar" 0 (Dft.vectorized t));
  (* sizes the short-vector rules cannot lower fall back to scalar
     rather than failing the plan *)
  Dft.with_plan ~mu:2 ~vec:`Auto 6 (fun t ->
      check ci "unlowerable falls back" 0 (Dft.vectorized t);
      let x = Cvec.random ~seed:7 6 in
      check cb "fallback still correct" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-9))

let test_engine_vec_registry_separation () =
  (* scalar and vectorized requests for the same problem compile to
     distinct registry entries; repeating either hits its own entry *)
  let reuse0 = Counters.get "engine.plan_reuse" in
  let s1 = Dft.plan ~mu:2 1664 in
  let v1 = Dft.plan ~mu:2 ~vec:(`Nu 2) 1664 in
  check ci "vec plan did not reuse the scalar entry" reuse0
    (Counters.get "engine.plan_reuse");
  let v2 = Dft.plan ~mu:2 ~vec:(`Nu 2) 1664 in
  check ci "identical vec plan reuses" (reuse0 + 1)
    (Counters.get "engine.plan_reuse");
  check ci "scalar stayed scalar" 0 (Dft.vectorized s1);
  check ci "vec stayed vec" 2 (Dft.vectorized v1);
  let x = Cvec.random ~seed:11 1664 in
  let want = Naive_dft.dft x in
  check cb "scalar correct" true (Cvec.max_abs_diff (Dft.execute s1 x) want < 1e-6);
  check cb "vec correct" true (Cvec.max_abs_diff (Dft.execute v1 x) want < 1e-6);
  check cb "reused vec correct" true
    (Cvec.max_abs_diff (Dft.execute v2 x) want < 1e-6);
  Dft.destroy s1;
  Dft.destroy v1;
  Dft.destroy v2

let test_engine_vec_descriptor_flow () =
  (* a v-suffixed descriptor turns the vec knob on without any explicit
     parameter: the Engine honors Problem.vec as its default *)
  match Engine.parse_problem "dft[1024]fv4" with
  | Error e -> Alcotest.failf "v-descriptor rejected: %s" (Engine.error_to_string e)
  | Ok p ->
      let derive ~threads ~mu =
        Planner.derive_formula ~threads ~mu
          ~tree:(Spiral_rewrite.Ruletree.mixed_radix 1024) 1024
      in
      let eng = Engine.plan ~cache:false ~derive p in
      check ci "descriptor vec honored" 4 (Engine.vectorized eng);
      let x = Cvec.random ~seed:13 1024 in
      let y = Cvec.create 1024 in
      Engine.execute_into eng ~src:x ~dst:y;
      check cb "descriptor-vectorized engine correct" true
        (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-6);
      Engine.destroy eng

let test_engine_vec_bluestein_and_batch () =
  (* the Bluestein inner transforms accept the vec knob (lowering may
     or may not apply to the padded size; correctness must hold) *)
  Dft.with_plan ~mu:2 ~vec:`Auto 97 (fun t ->
      let x = Cvec.random ~seed:17 97 in
      check cb "bluestein with vec knob" true
        (Cvec.max_abs_diff (Dft.execute t x) (Naive_dft.dft x) < 1e-7));
  (* batch front-end: each element through the split path *)
  Batch.with_plan ~mu:2 ~vec:`Auto ~count:4 256 (fun t ->
      let x = Cvec.random ~seed:19 (4 * 256) in
      let y = Batch.execute t x in
      for b = 0 to 3 do
        let slice = Cvec.create 256 in
        Array.blit x (2 * b * 256) slice 0 (2 * 256);
        let want = Naive_dft.dft slice in
        let got = Cvec.create 256 in
        Array.blit y (2 * b * 256) got 0 (2 * 256);
        if Cvec.max_abs_diff got want > 1e-7 then
          Alcotest.failf "vec batch element %d" b
      done)

(* ------------------------------------------------------------------ *)
(* Structured errors (the service boundary)                            *)

let test_parse_problem_errors () =
  (match Engine.parse_problem "dft[1024]f" with
  | Ok p -> check cs "roundtrip" "dft[1024]f" (Problem.to_string p)
  | Error e -> Alcotest.failf "valid descriptor rejected: %s" (Engine.error_to_string e));
  (* parse failures name the offending descriptor *)
  List.iter
    (fun s ->
      match Engine.parse_problem s with
      | Error (Engine.Bad_descriptor d) -> check cs "offender echoed" s d
      | Error e ->
          Alcotest.failf "%S: wrong error %s" s (Engine.error_to_string e)
      | Ok _ -> Alcotest.failf "%S parsed" s)
    [ "garbage"; ""; "dft[]f"; "dft[0]f"; "dft[-4]f"; "dft[8]"; "fft[8]f" ];
  (* the admission limit bounds total elements, batch included *)
  (match Engine.parse_problem ~limit:512 "dft[1024]f" with
  | Error (Engine.Too_large { total; limit }) ->
      check ci "total" 1024 total;
      check ci "limit" 512 limit
  | _ -> Alcotest.fail "over-limit size accepted");
  (match Engine.parse_problem "dft[4096]fx4096" with
  | Error (Engine.Too_large { total; _ }) ->
      check ci "batch multiplies into total" (4096 * 4096) total
  | _ -> Alcotest.fail "oversized batch accepted");
  (* exactly at the limit is fine *)
  match Engine.parse_problem ~limit:1024 "dft[1024]f" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "at-limit rejected: %s" (Engine.error_to_string e)

let test_execute_checked_errors () =
  let derive ~threads:_ ~mu:_ =
    (Spiral_rewrite.Ruletree.expand (Spiral_rewrite.Ruletree.mixed_radix 16), 1)
  in
  let eng =
    Engine.plan ~threads:1 ~mu:4 ~cache:false ~derive
      (Problem.make Problem.Dft [ 16 ])
  in
  let x = Cvec.random ~seed:5 16 in
  let y = Cvec.create 16 in
  (match Engine.execute_into_checked eng ~src:x ~dst:y with
  | Ok () ->
      check cb "checked path computes the transform" true
        (Cvec.max_abs_diff y (Naive_dft.dft x) < 1e-7)
  | Error e -> Alcotest.failf "healthy execute: %s" (Engine.error_to_string e));
  (* wrong vector lengths are structured, with both sizes reported *)
  (match Engine.execute_into_checked eng ~src:(Cvec.create 8) ~dst:y with
  | Error (Engine.Bad_length { expected; got }) ->
      check ci "expected" 16 expected;
      check ci "got" 8 got
  | _ -> Alcotest.fail "short src accepted");
  (match Engine.execute_into_checked eng ~src:x ~dst:(Cvec.create 32) with
  | Error (Engine.Bad_length { got; _ }) -> check ci "dst got" 32 got
  | _ -> Alcotest.fail "long dst accepted");
  (* execute-after-destroy is an error value, not an exception *)
  Engine.destroy eng;
  match Engine.execute_into_checked eng ~src:x ~dst:y with
  | Error Engine.Destroyed -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Engine.error_to_string e)
  | Ok () -> Alcotest.fail "executed after destroy"

let suite =
  [
    Alcotest.test_case "problem: canonical strings" `Quick test_problem_canonical;
    Alcotest.test_case "problem: string roundtrip" `Quick test_problem_roundtrip;
    Alcotest.test_case "problem: validation" `Quick test_problem_validation;
    Alcotest.test_case "problem: vec descriptors" `Quick
      test_problem_vec_descriptor;
    Alcotest.test_case "cross: dft fwd/inv at p=1,2,4" `Quick test_cross_dft;
    Alcotest.test_case "cross: bluestein at p=1,2,4" `Quick test_cross_bluestein;
    Alcotest.test_case "cross: wht at p=1,2,4" `Quick test_cross_wht;
    Alcotest.test_case "cross: dft2d at p=1,2,4" `Quick test_cross_dft2d;
    Alcotest.test_case "cross: batch at p=1,2,4" `Quick test_cross_batch;
    Alcotest.test_case "cross: rfft at p=1,2,4" `Quick test_cross_rfft;
    Alcotest.test_case "cross: dct at p=1,2,4" `Quick test_cross_dct;
    Alcotest.test_case "rfft/dct: supervised parallel inner" `Quick
      test_rfft_dct_supervised_parallel;
    Alcotest.test_case "pool registry: reuses, not respawns" `Quick
      test_pool_registry_identity;
    Alcotest.test_case "pool registry: shared across plans" `Quick
      test_pool_registry_across_plans;
    Alcotest.test_case "engine: counters consistency" `Quick
      test_engine_counters_consistency;
    Alcotest.test_case "engine: destroy semantics" `Quick
      test_engine_destroy_semantics;
    Alcotest.test_case "engine: execute_many" `Quick test_engine_execute_many;
    Alcotest.test_case "vec: correctness at p=1,2,4" `Quick
      test_engine_vec_correctness;
    Alcotest.test_case "vec: knob and fallback" `Quick test_engine_vec_knob;
    Alcotest.test_case "vec: registry separation" `Quick
      test_engine_vec_registry_separation;
    Alcotest.test_case "vec: descriptor flow" `Quick
      test_engine_vec_descriptor_flow;
    Alcotest.test_case "vec: bluestein and batch" `Quick
      test_engine_vec_bluestein_and_batch;
    Alcotest.test_case "errors: parse_problem is structured" `Quick
      test_parse_problem_errors;
    Alcotest.test_case "errors: checked execution" `Quick
      test_execute_checked_errors;
  ]
