(* Fast convolution via the convolution theorem, checked against the
   direct O(n²) sum — and a timing comparison that shows why the FFT
   matters.

   Run with: dune exec examples/convolution.exe *)

open Spiral_util
open Spiral_fft

let direct x y =
  let n = Cvec.length x in
  let z = Cvec.create n in
  for k = 0 to n - 1 do
    let acc = ref Complex.zero in
    for j = 0 to n - 1 do
      acc :=
        Complex.add !acc
          (Complex.mul (Cvec.get x j) (Cvec.get y ((k - j + n) mod n)))
    done;
    Cvec.set z k !acc
  done;
  z

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n = 4096 in
  let x = Cvec.random ~seed:1 n and y = Cvec.random ~seed:2 n in
  let fast, t_fast = time (fun () -> Signal.convolve x y) in
  let slow, t_slow = time (fun () -> direct x y) in
  Printf.printf "cyclic convolution of two %d-point signals:\n" n;
  Printf.printf "  FFT-based: %8.2f ms\n" (t_fast *. 1e3);
  Printf.printf "  direct:    %8.2f ms  (%.0fx slower)\n" (t_slow *. 1e3)
    (t_slow /. t_fast);
  Printf.printf "  max difference: %.2e\n" (Cvec.max_abs_diff fast slow)
