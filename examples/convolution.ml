(* Fast convolution via the convolution theorem, checked against the
   direct sum — and a timing comparison that shows why the FFT matters.

   Part 1 is the classic 1-D cyclic convolution.  Part 2 filters a
   batch of images through the 2-D engine's batched path: one
   [Dft2d.execute_many] call transforms every image in a single
   resident parallel region, the spectra are multiplied pointwise by
   the kernel's spectrum, and a second batched call brings them back.

   Run with: dune exec examples/convolution.exe *)

open Spiral_util
open Spiral_fft

let direct x y =
  let n = Cvec.length x in
  let z = Cvec.create n in
  for k = 0 to n - 1 do
    let acc = ref Complex.zero in
    for j = 0 to n - 1 do
      acc :=
        Complex.add !acc
          (Complex.mul (Cvec.get x j) (Cvec.get y ((k - j + n) mod n)))
    done;
    Cvec.set z k !acc
  done;
  z

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let n = 4096 in
  let x = Cvec.random ~seed:1 n and y = Cvec.random ~seed:2 n in
  let fast, t_fast = time (fun () -> Signal.convolve x y) in
  let slow, t_slow = time (fun () -> direct x y) in
  Printf.printf "cyclic convolution of two %d-point signals:\n" n;
  Printf.printf "  FFT-based: %8.2f ms\n" (t_fast *. 1e3);
  Printf.printf "  direct:    %8.2f ms  (%.0fx slower)\n" (t_slow *. 1e3)
    (t_slow /. t_fast);
  Printf.printf "  max difference: %.2e\n" (Cvec.max_abs_diff fast slow)

(* --- part 2: batched 2-D filtering through the row/column engine --- *)

(* direct 2-D cyclic convolution, O((RC)²) — the ground truth *)
let direct2d rows cols x h =
  let z = Cvec.create (rows * cols) in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let acc = ref Complex.zero in
      for i = 0 to rows - 1 do
        for j = 0 to cols - 1 do
          let hr = (r - i + rows) mod rows and hc = (c - j + cols) mod cols in
          acc :=
            Complex.add !acc
              (Complex.mul
                 (Cvec.get x ((i * cols) + j))
                 (Cvec.get h ((hr * cols) + hc)))
        done
      done;
      Cvec.set z ((r * cols) + c) !acc
    done
  done;
  z

let pointwise_scaled a b =
  let n = Cvec.length a in
  let z = Cvec.create n in
  for i = 0 to n - 1 do
    Cvec.set z i (Complex.mul (Cvec.get a i) (Cvec.get b i))
  done;
  z

let () =
  let rows = 32 and cols = 32 and batch = 8 in
  let n = rows * cols in
  let images = Array.init batch (fun i -> Cvec.random ~seed:(10 + i) n) in
  let kernel = Cvec.random ~seed:99 n in
  Dft2d.with_plan ~threads:2 ~rows ~cols (fun fwd ->
      Dft2d.with_plan ~threads:2 ~direction:Dft2d.Inverse ~rows ~cols
        (fun inv ->
          let kf = Dft2d.execute fwd kernel in
          (* every image forward in ONE batched call: one parallel
             region for the whole batch, inter-job barriers elided when
             the schedule allows *)
          let jobs = Array.map (fun img -> (img, Cvec.create n)) images in
          let (), t_batch = time (fun () -> Dft2d.execute_many fwd jobs) in
          let filtered =
            Array.map (fun (_, spec) -> (pointwise_scaled spec kf, Cvec.create n)) jobs
          in
          Dft2d.execute_many inv filtered;
          (* the same forward work as individual calls, for comparison *)
          let (), t_loop =
            time (fun () ->
                Array.iter
                  (fun (img, dst) -> Dft2d.execute_into fwd ~src:img ~dst)
                  jobs)
          in
          let want = direct2d rows cols images.(0) kernel in
          let got = snd filtered.(0) in
          Printf.printf
            "\nbatched 2-D filtering: %d images of %dx%d (schedule %s, %d \
             barrier(s) per region)\n"
            batch rows cols (Dft2d.schedule fwd) (Dft2d.barriers fwd);
          Printf.printf "  execute_many (one region): %8.2f ms\n"
            (t_batch *. 1e3);
          Printf.printf "  execute_into x %d:          %8.2f ms\n" batch
            (t_loop *. 1e3);
          Printf.printf "  max difference vs direct 2-D sum: %.2e\n"
            (Cvec.max_abs_diff got want)))
