(* Quickstart: plan a DFT, execute it, check it, round-trip it.

   Run with: dune exec examples/quickstart.exe *)

open Spiral_util
open Spiral_fft

let () =
  let n = 1024 in

  (* Plan once (this derives a formula, rewrites it, and compiles it to
     merged loop nests), then execute as often as you like. *)
  Dft.with_plan n (fun plan ->
      let x = Cvec.random n in
      let y = Dft.execute plan x in

      (* check against the O(n²) definition *)
      let err = Cvec.max_abs_diff y (Naive_dft.dft x) in
      Printf.printf "DFT_%d: max error vs definition = %.2e\n" n err;

      (* how was it computed? *)
      print_string (Dft.description plan));

  (* A multithreaded plan: requests the multicore Cooley-Tukey formula (14)
     of the paper for p = 2 processors and cache lines of 4 complex
     numbers.  On hosts with one core this is still correct (OCaml domains
     are oversubscribed); the performance story is in bench/. *)
  Dft.with_plan ~threads:2 ~mu:4 n (fun plan ->
      Printf.printf "\nparallel plan uses %d threads (parallel = %b)\n"
        (Dft.threads plan) (Dft.parallel plan);
      let x = Cvec.random n in
      let y = Dft.execute plan x in
      (* inverse round trip *)
      Dft.with_plan ~direction:Dft.Inverse n (fun inv ->
          let back = Dft.execute inv y in
          Printf.printf "round trip error = %.2e\n" (Cvec.max_abs_diff back x)))
