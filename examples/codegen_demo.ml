(* Program generation end-to-end: derive the multicore Cooley-Tukey
   formula (14) for DFT_64, show every intermediate representation, and
   emit compilable OpenMP C — the paper's full pipeline in one page.

   Run with: dune exec examples/codegen_demo.exe *)

open Spiral_spl
open Spiral_rewrite
open Spiral_codegen

let () =
  let p = 2 and mu = 2 in

  (* 1. the algorithm as a formula: Cooley-Tukey rule (1) *)
  let top = Breakdown.cooley_tukey ~m:8 ~n:8 in
  Format.printf "Cooley-Tukey rule (1):@.  %a@.@." Formula.pp top;

  (* 2. shared-memory rewriting (Table 1): tag and normalize *)
  let tagged = Formula.Smp (p, mu, top) in
  let optimized, trace = Rule.fixpoint Parallel_rules.all tagged in
  Format.printf "after rewriting with smp(%d,%d) — formula (14):@.  %a@.@." p mu
    Formula.pp optimized;
  Printf.printf "rules applied: %s\n\n" (String.concat ", " trace);
  Printf.printf "fully optimized (Definition 1): %b\n"
    (Props.fully_optimized ~p ~mu optimized);
  Printf.printf "per-processor flops: %s\n\n"
    (String.concat " "
       (Array.to_list
          (Array.map string_of_int (Cost.per_processor ~p optimized))));

  (* 3. expand the sub-DFTs and compile to merged loop nests *)
  let tree = Ruletree.Ct (Ruletree.mixed_radix 8, Ruletree.mixed_radix 8) in
  let full =
    match Derive.multicore_dft ~p ~mu tree with
    | Ok f -> f
    | Error e -> failwith (Derive.error_to_string e)
  in
  let plan = Plan.of_formula full in
  print_string (Plan.describe plan);

  (* 4. generate C with OpenMP worksharing and write it out *)
  let c_src = C_emit.to_c ~backend:`OpenMP plan in
  let file = "generated_dft64_omp.c" in
  let oc = open_out file in
  output_string oc c_src;
  close_out oc;
  Printf.printf
    "\nwrote %s (%d lines) — compile with:\n  gcc -O2 -fopenmp %s -lm && ./a.out\n"
    file
    (List.length (String.split_on_char '\n' c_src))
    file;

  (* 5. the tandem of Section 3.2: the same derivation composed with the
     short-vector rewriting — simultaneously fully optimized for
     smp(2,4) and 2-way vectorized *)
  (match
     Derive.multicore_vector_dft ~p:2 ~mu:4 ~nu:2
       (Ruletree.Ct (Ruletree.mixed_radix 16, Ruletree.mixed_radix 16))
   with
  | Error e -> failwith (Derive.error_to_string e)
  | Ok f ->
      Printf.printf
        "\ntandem smp(2,4) x vec(2) for DFT_256: fully optimized = %b, \
         vectorized = %b\n"
        (Props.fully_optimized ~p:2 ~mu:4 f)
        (Props.vectorized ~nu:2 f));

  (* 6. the tandem lowered all the way to machine code shape: the same
     DFT_64 derivation vectorized with vec(2) and emitted as AVX2
     intrinsics inside the OpenMP worksharing — smp x vec in one
     translation unit *)
  (match Derive.multicore_vector_dft ~p ~mu ~nu:2 tree with
  | Error e -> failwith (Derive.error_to_string e)
  | Ok vf ->
      let vplan = Plan.of_formula vf in
      let simd_src = C_emit.to_c ~backend:`OpenMP ~simd:`AVX2 vplan in
      let simd_file = "generated_dft64_avx2.c" in
      let oc = open_out simd_file in
      output_string oc simd_src;
      close_out oc;
      Printf.printf
        "wrote %s (%d lines) — compile with:\n\
        \  gcc -O2 -mavx2 -fopenmp %s -lm && ./a.out\n"
        simd_file
        (List.length (String.split_on_char '\n' simd_src))
        simd_file);

  (* 7. the 2-D engine's row/column schedule as a translation unit: the
     transpose-free strided dft2d[16x16] plan — row pass, then
     column-strided passes, one real barrier between them — emitted as
     OpenMP C with a 2-D self test *)
  Spiral_fft.Dft2d.with_plan ~threads:p ~mu ~variant:Spiral_fft.Dft2d.Strided
    ~rows:16 ~cols:16 (fun t2d ->
      let plan2d = Plan.of_formula (Spiral_fft.Dft2d.formula t2d) in
      let c2d = C_emit.to_c ~backend:`OpenMP ~dims:(16, 16) plan2d in
      let file2d = "generated_dft2d16x16_omp.c" in
      let oc = open_out file2d in
      output_string oc c2d;
      close_out oc;
      Printf.printf
        "wrote %s (%d lines) — compile with:\n\
        \  gcc -O2 -fopenmp %s -lm && ./a.out\n"
        file2d
        (List.length (String.split_on_char '\n' c2d))
        file2d)
