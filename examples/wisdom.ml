(* Wisdom: persist autotuned plans across runs, FFTW-style.

   The first run searches (DP over the machine model) and saves the best
   ruletrees; later runs load them instantly.

   Run with: dune exec examples/wisdom.exe *)

open Spiral_rewrite
open Spiral_codegen
open Spiral_sim
open Spiral_search

let wisdom_file = Filename.concat (Filename.get_temp_dir_name ()) "spiral_wisdom.txt"

let () =
  let machine = Machine.core_duo in
  let cache =
    if Sys.file_exists wisdom_file then begin
      (* tolerant load: a corrupted or truncated wisdom file (crash,
         concurrent writer, manual edit) costs only the bad lines, not
         the whole cache *)
      let c, report = Plan_cache.load_tolerant wisdom_file in
      Printf.printf "loaded %d tuned plans from %s\n" (Plan_cache.size c) wisdom_file;
      if report.Plan_cache.skipped > 0 then begin
        Printf.printf "salvaged around %d corrupt line(s):\n"
          report.Plan_cache.skipped;
        List.iter (Printf.printf "  %s\n") report.Plan_cache.complaints
      end;
      c
    end
    else begin
      Printf.printf "no wisdom yet; will search and save to %s\n" wisdom_file;
      Plan_cache.create ()
    end
  in
  let measure t =
    (Simulate.run machine Simulate.Seq (Plan.of_formula (Ruletree.expand t)))
      .Simulate.cycles
  in
  let memo = Hashtbl.create 64 in
  List.iter
    (fun logn ->
      let n = 1 lsl logn in
      let key = { Plan_cache.kind = "dft"; n; p = 1; mu = 4; vec = 0; machine = "core-duo" } in
      let t0 = Unix.gettimeofday () in
      let tree =
        Plan_cache.find_or_add cache key (fun () ->
            fst (Dp.search ~memo ~measure n))
      in
      Printf.printf "2^%-3d %-30s (%.0f ms)\n" logn (Ruletree.to_string tree)
        ((Unix.gettimeofday () -. t0) *. 1e3))
    [ 6; 8; 10; 12 ];
  Plan_cache.save cache wisdom_file;
  Printf.printf "saved %d plans; run me again to see instant loads\n"
    (Plan_cache.size cache)
