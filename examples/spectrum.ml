(* Spectrum analysis: find the tones hidden in a noisy signal — the bread
   and butter DSP workload FFT libraries exist for.

   Run with: dune exec examples/spectrum.exe *)

open Spiral_util
open Spiral_fft

let () =
  let n = 4096 in
  (* a signal with three tones of different strengths, plus noise *)
  let signal =
    let tones =
      Cvec.add
        (Signal.sine_wave ~n ~freq:130 ~amplitude:2.0 ())
        (Cvec.add
           (Signal.sine_wave ~n ~freq:440 ~amplitude:1.0 ())
           (Signal.sine_wave ~n ~freq:1021 ~amplitude:0.5 ()))
    in
    let noise = Cvec.random ~seed:7 n in
    Cvec.scale 0.05 noise;
    Cvec.add tones noise
  in
  let spectrum = Signal.power_spectrum signal in
  Printf.printf "dominant bins of a %d-point spectrum:\n" n;
  List.iter
    (fun (bin, power) ->
      Printf.printf "  bin %4d: power %10.1f  (%s)\n" bin power
        (match bin with
        | 130 | 440 | 1021 -> "planted tone"
        | _ -> "?"))
    (Signal.dominant_bins ~count:3 spectrum)
