(* Autotuning: Spiral's search over the factorization space.  For each
   size, dynamic programming over ruletrees measured on the Core Duo
   machine model; compare the tuned tree against naive choices.

   Run with: dune exec examples/autotune.exe *)

open Spiral_rewrite
open Spiral_codegen
open Spiral_sim
open Spiral_search

let () =
  let machine = Machine.core_duo in
  let measure t =
    (Simulate.run machine Simulate.Seq (Plan.of_formula (Ruletree.expand t)))
      .Simulate.cycles
  in
  let memo = Hashtbl.create 64 in
  Printf.printf "DP autotuning on the %s model:\n\n" machine.Machine.name;
  Printf.printf "%-8s %-28s %12s %12s %12s\n" "N" "best ruletree" "tuned"
    "radix-2" "mixed";
  List.iter
    (fun logn ->
      let n = 1 lsl logn in
      let tree, best = Dp.search ~memo ~measure n in
      Printf.printf "2^%-6d %-28s %12.0f %12.0f %12.0f\n" logn
        (Ruletree.to_string tree) best
        (measure (Ruletree.right_expanded ~radix:2 n))
        (measure (Ruletree.mixed_radix n)))
    [ 4; 6; 8; 10; 12 ];
  Printf.printf "\n(simulated cycles per transform; smaller is better)\n";

  (* the evolutionary search explores shapes DP's bottom-up assumption
     can miss *)
  let t, c = Evolve.search ~measure 1024 in
  Printf.printf "\nevolutionary search for 2^10: %s (%.0f cycles)\n"
    (Ruletree.to_string t) c
