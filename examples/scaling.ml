(* Multicore scaling and false sharing: the paper's core claims on the
   four modeled machines, in miniature.

   Run with: dune exec examples/scaling.exe *)

open Spiral_rewrite
open Spiral_codegen
open Spiral_sim

let mc_plan p mu n =
  let half =
    let rec go m = if m * m >= n then m else go (2 * m) in
    go (p * mu)
  in
  match
    Derive.multicore_dft ~p ~mu
      (Ruletree.Ct (Ruletree.mixed_radix half, Ruletree.mixed_radix (n / half)))
  with
  | Ok f -> Plan.of_formula f
  | Error e -> failwith (Derive.error_to_string e)

let () =
  let n = 1 lsl 12 in
  Printf.printf "DFT_%d on the paper's four machines (simulated):\n\n" n;
  Printf.printf "%-44s %10s %10s %8s %6s\n" "machine" "seq pMf/s" "par pMf/s"
    "speedup" "fs";
  List.iter
    (fun machine ->
      let p = machine.Machine.cores and mu = Machine.mu machine in
      let seq =
        Simulate.run machine Simulate.Seq
          (Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n)))
      in
      let par = Simulate.run machine (Simulate.Pooled p) (mc_plan p mu n) in
      Printf.printf "%-44s %10.0f %10.0f %7.2fx %6d\n" machine.Machine.name
        seq.Simulate.pseudo_mflops par.Simulate.pseudo_mflops
        (par.Simulate.pseudo_mflops /. seq.Simulate.pseudo_mflops)
        par.Simulate.false_sharing)
    Machine.all;

  (* what goes wrong without the paper's cache-line-aware schedule: the
     same plan, but iterations handed out cyclically one at a time *)
  let machine = Machine.pentium_d in
  let plan = mc_plan 2 4 n in
  let good = Simulate.run machine (Simulate.Pooled 2) plan in
  let bad =
    Simulate.run machine ~schedule:(Spiral_smp.Par_exec.Cyclic 1)
      (Simulate.Pooled 2) plan
  in
  Printf.printf
    "\n%s, block vs cyclic(1) schedule:\n\
    \  block:  %6.0f pMf/s, %6d false-sharing events\n\
    \  cyclic: %6.0f pMf/s, %6d false-sharing events (coherence traffic %d)\n"
    machine.Machine.name good.Simulate.pseudo_mflops good.Simulate.false_sharing
    bad.Simulate.pseudo_mflops bad.Simulate.false_sharing
    bad.Simulate.coherence_events
