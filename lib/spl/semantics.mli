(** Exact dense-matrix semantics of SPL formulas.

    This is the ground truth used by the test suite to prove that every
    rewriting rule preserves the denoted matrix, and that compiled programs
    compute the formula they were compiled from.  Cost is O(dim²)–O(dim³);
    use only for small dimensions. *)

val to_matrix : Formula.t -> Spiral_util.Cmatrix.t
(** The matrix denoted by the formula. *)

val apply : Formula.t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** [apply f x] is [A_f · x] evaluated structurally (without materializing
    the matrix), usable for moderately larger dimensions. *)

val equal_semantics : ?tol:float -> Formula.t -> Formula.t -> bool
(** [true] when the two formulas denote the same matrix up to [tol]. *)
