(** Diagonal matrices occurring in SPL formulas, kept symbolic so that the
    parallelization rule (11) of the paper — splitting a diagonal into a
    direct sum of sub-diagonals — is exact and cheap. *)

type t =
  | Twiddle of int * int
      (** [Twiddle (m, n)] is the twiddle diagonal [D_{m,n}] of the
          Cooley-Tukey rule; size [m * n], entry [i*n + j] is
          [ω_{mn}^{i·j}]. *)
  | Segment of t * int * int
      (** [Segment (d, offset, len)] is the contiguous slice
          [d.(offset) … d.(offset + len - 1)] as a diagonal of size [len]. *)
  | Explicit of Complex.t array  (** Arbitrary diagonal (for tests). *)

val size : t -> int

val entry : t -> int -> Complex.t
(** [entry d i] is the [i]-th diagonal entry. *)

val to_array : t -> Complex.t array

val to_table : t -> float array
(** Interleaved re/im table of the diagonal, for kernels. *)

val split : t -> int -> t list
(** [split d p] cuts [d] into [p] contiguous segments of equal length
    (rule (11) of the paper).
    @raise Invalid_argument if [p] does not divide [size d]. *)

val pp : Format.formatter -> t -> unit
