(** Permutations occurring in SPL formulas.

    The central one is the stride permutation [L^{mn}_m] of the paper
    (Section 2.2): it permutes an input vector [x] of length [mn] by sending
    element [i*n + j] to position [j*m + i] ([0 <= i < m], [0 <= j < n]);
    viewed as an [n × m] row-major matrix, [x] is transposed.

    Convention: a permutation [P] acts as [y = P x].  We represent it by its
    {e gather} map [σ]: [y.(k) = x.(σ k)]. *)

type t =
  | L of int * int
      (** [L (mn, m)] is the stride permutation [L^{mn}_m]; [m] must
          divide [mn]. *)
  | Explicit of int array
      (** Arbitrary permutation given by its gather map (for tests). *)

val size : t -> int
(** Dimension of the (square) permutation matrix. *)

val gather : t -> int -> int
(** [gather p k] is [σ(k)]: the input index read for output position [k]. *)

val to_array : t -> int array
(** The full gather map as an array. *)

val inverse : t -> t
(** Inverse permutation (as [Explicit]). *)

val is_identity : t -> bool

val validate : t -> unit
(** @raise Invalid_argument if the parameters are malformed (e.g. [m] does
    not divide [mn], or the explicit map is not a bijection). *)

val pp : Format.formatter -> t -> unit
