open Formula

(* Exact counts for the unrolled codelets in Spiral_codegen.Codelet; the
   naive fallback costs n complex mul-adds per output. *)
let leaf_flops n =
  match n with
  | 1 -> 0
  | 2 -> 4 (* 2 complex additions *)
  | 3 -> 16
  | 4 -> 16 (* 8 complex additions, rotations free *)
  | 8 -> 56 (* 2x DFT_4 + 4 twiddled butterflies *)
  | 16 -> 180 (* 2x DFT_8 + 8 twiddled butterflies *)
  | 32 -> 508 (* 2x DFT_16 + 16 twiddled butterflies *)
  | n -> (8 * n * n) - (2 * n) (* dense matrix-vector fallback *)

let rec flops ?(leaf = leaf_flops) f =
  match f with
  | I _ | Perm _ -> 0
  | DFT n -> leaf n
  | WHT n ->
      (* 2 complex adds per butterfly, n/2 * log2 n butterflies. *)
      if n = 1 then 0 else 4 * (n / 2) * Spiral_util.Int_util.ilog2 n
  | Diag d -> 6 * Diag.size d
  | Compose fs -> List.fold_left (fun acc g -> acc + flops ~leaf g) 0 fs
  | Tensor (a, b) ->
      (* (A ⊗ B) = (A ⊗ I)(I ⊗ B): dim b copies of A + dim a copies of B. *)
      (Formula.dim b * flops ~leaf a) + (Formula.dim a * flops ~leaf b)
  | DirectSum fs | ParDirectSum fs ->
      List.fold_left (fun acc g -> acc + flops ~leaf g) 0 fs
  | Smp (_, _, g) -> flops ~leaf g
  | ParTensor (p, g) -> p * flops ~leaf g
  | CacheTensor (g, _) -> flops ~leaf g (* permutation-shaped: folded *)
  | Vec (_, g) -> flops ~leaf g
  | VTensor (g, nu) -> nu * flops ~leaf g
  | VShuffle _ -> 0

let per_processor ~p ?(leaf = leaf_flops) f =
  let acc = Array.make p 0 in
  let add i v = acc.(i) <- acc.(i) + v in
  let rec go mult f =
    match f with
    | ParTensor (q, g) ->
        let w = mult * flops ~leaf g in
        if q = p then
          for i = 0 to p - 1 do
            add i w
          done
        else add 0 (q * w)
    | ParDirectSum fs when List.length fs = p ->
        List.iteri (fun i g -> add i (mult * flops ~leaf g)) fs
    | Compose fs -> List.iter (go mult) fs
    | Tensor (I m, g) -> go (mult * m) g
    | Smp (_, _, g) -> go mult g
    | CacheTensor _ | Perm _ | I _ | VShuffle _ -> ()
    | Vec (_, g) -> go mult g
    | VTensor (g, nu) -> go (mult * nu) g
    | f -> add 0 (mult * flops ~leaf f)
  in
  go 1 f;
  acc

let imbalance ~p f =
  let w = per_processor ~p f in
  let mx = Array.fold_left max w.(0) w and mn = Array.fold_left min w.(0) w in
  if mx = 0 then 0.0 else float_of_int (mx - mn) /. float_of_int mx
