open Formula

let all_equal = function
  | [] -> true
  | x :: rest -> List.for_all (fun y -> y = x) rest

(* total identity width of nested block wrappers: CacheTensor/VTensor of
   CacheTensor/VTensor of ... *)
let rec wrapped_width f acc =
  match (f : Formula.t) with
  | CacheTensor (a, w) | VTensor (a, w) -> wrapped_width a (acc * w)
  | _ -> acc

let rec load_balanced ~p f =
  match f with
  | ParTensor (q, _) -> q = p
  | ParDirectSum fs ->
      List.length fs = p && all_equal (List.map dim fs)
  | (CacheTensor _ | VTensor _) when Shape.perm_sigma f <> None ->
      (* block-tagged data movement: folded into adjacent loops *)
      true
  | Tensor (I _, a) -> load_balanced ~p a
  | Compose fs -> List.for_all (load_balanced ~p) fs
  | Vec (_, a) -> load_balanced ~p a
  | VTensor (a, nu) -> load_balanced ~p (Tensor (a, I nu))
  | I _ | DFT _ | WHT _ | Perm _ | Diag _ | Tensor _ | DirectSum _
  | Smp _ | CacheTensor _ | VShuffle _ ->
      false

let rec avoids_false_sharing ~mu f =
  match f with
  | ParTensor (_, a) -> dim a mod mu = 0
  | ParDirectSum fs ->
      List.for_all (fun a -> dim a mod mu = 0) fs
      && all_equal (List.map dim fs)
  | CacheTensor _ | VTensor _ ->
      (* data moves in blocks of the total wrapper width *)
      wrapped_width f 1 mod mu = 0
  | Tensor (I _, a) -> avoids_false_sharing ~mu a
  | Compose fs -> List.for_all (avoids_false_sharing ~mu) fs
  | Vec (_, a) -> avoids_false_sharing ~mu a
  | I _ | DFT _ | WHT _ | Perm _ | Diag _ | Tensor _ | DirectSum _ | Smp _
  | VShuffle _ ->
      false

let fully_optimized ~p ~mu f =
  load_balanced ~p f && avoids_false_sharing ~mu f

let parallel_degree f =
  let degrees =
    fold
      (fun acc g ->
        match g with
        | ParTensor (p, _) -> p :: acc
        | ParDirectSum fs -> List.length fs :: acc
        | _ -> acc)
      [] f
  in
  match degrees with
  | [] -> None
  | d :: rest -> if List.for_all (fun x -> x = d) rest then Some d else None

let rec vectorized ~nu f =
  (* scalar code is trivially 1-way vector code *)
  if nu = 1 then true
  else
  match (f : Formula.t) with
  | VTensor (_, v) | VShuffle (_, v) -> v = nu
  | Diag _ | I _ -> true
  | DirectSum fs | ParDirectSum fs ->
      (* pointwise diagonal blocks vectorize trivially *)
      List.for_all (fun g -> Shape.diag_entry g <> None) fs
  | Compose fs -> List.for_all (vectorized ~nu) fs
  | Tensor (I _, a) -> vectorized ~nu a
  | ParTensor (_, a) -> vectorized ~nu a
  | Vec _ | Smp _ | DFT _ | WHT _ | Perm _ | Tensor _ | CacheTensor _ ->
      false
