open Spiral_util

let dft_matrix n =
  Cmatrix.init n n (fun k l -> Twiddle.omega_pow ~n ~k ~l)

let rec wht_matrix n =
  if n = 1 then Cmatrix.identity 1
  else if n = 2 then dft_matrix 2
  else begin
    if n mod 2 <> 0 then invalid_arg "Semantics: WHT size must be 2^k";
    Cmatrix.kronecker (dft_matrix 2) (wht_matrix (n / 2))
  end

let rec to_matrix (f : Formula.t) =
  match f with
  | I n -> Cmatrix.identity n
  | DFT n -> dft_matrix n
  | WHT n -> wht_matrix n
  | Perm p -> Cmatrix.of_permutation (Perm.to_array p)
  | Diag d -> Cmatrix.diag (Diag.to_array d)
  | Compose fs ->
      (* Product order: Compose [a; b] = A·B. *)
      List.fold_left
        (fun acc g ->
          match acc with
          | None -> Some (to_matrix g)
          | Some m -> Some (Cmatrix.mul m (to_matrix g)))
        None fs
      |> Option.get
  | Tensor (a, b) -> Cmatrix.kronecker (to_matrix a) (to_matrix b)
  | DirectSum fs | ParDirectSum fs ->
      Cmatrix.direct_sum (List.map to_matrix fs)
  | Smp (_, _, f) -> to_matrix f
  | ParTensor (p, f) ->
      Cmatrix.kronecker (Cmatrix.identity p) (to_matrix f)
  | CacheTensor (f, mu) | VTensor (f, mu) ->
      Cmatrix.kronecker (to_matrix f) (Cmatrix.identity mu)
  | Vec (_, f) -> to_matrix f
  | VShuffle (k, nu) ->
      Cmatrix.kronecker (Cmatrix.identity k)
        (Cmatrix.of_permutation (Perm.to_array (Perm.L (nu * nu, nu))))

let rec apply (f : Formula.t) (x : Cvec.t) =
  match f with
  | I _ -> Cvec.copy x
  | DFT _ | WHT _ -> Cmatrix.apply (to_matrix f) x
  | Perm p ->
      let n = Perm.size p in
      let y = Cvec.create n in
      for k = 0 to n - 1 do
        let s = Perm.gather p k in
        y.(2 * k) <- x.(2 * s);
        y.((2 * k) + 1) <- x.((2 * s) + 1)
      done;
      y
  | Diag d ->
      let n = Diag.size d in
      let y = Cvec.create n in
      for i = 0 to n - 1 do
        let z = Diag.entry d i in
        let xr = x.(2 * i) and xi = x.((2 * i) + 1) in
        y.(2 * i) <- (z.re *. xr) -. (z.im *. xi);
        y.((2 * i) + 1) <- (z.re *. xi) +. (z.im *. xr)
      done;
      y
  | Compose fs -> List.fold_right apply fs x
  | Tensor (a, b) -> apply_tensor (dim_of a) (dim_of b) a b x
  | DirectSum fs | ParDirectSum fs ->
      let y = Cvec.create (Formula.dim f) in
      let _ =
        List.fold_left
          (fun off g ->
            let n = dim_of g in
            let slice = Cvec.create n in
            Array.blit x (2 * off) slice 0 (2 * n);
            let out = apply g slice in
            Array.blit out 0 y (2 * off) (2 * n);
            off + n)
          0 fs
      in
      y
  | Smp (_, _, g) | Vec (_, g) -> apply g x
  | ParTensor (p, g) -> apply (Tensor (I p, g)) x
  | CacheTensor (g, mu) | VTensor (g, mu) -> apply (Tensor (g, I mu)) x
  | VShuffle (k, nu) -> apply (Tensor (I k, Perm (Perm.L (nu * nu, nu)))) x

and dim_of f = Formula.dim f

and apply_tensor m n a b x =
  (* (A ⊗ B) x: view x as m blocks of n; apply B to each block, then apply
     A across blocks (i.e. to each of the n "columns" at stride n). *)
  let y = Cvec.create (m * n) in
  (match b with
  | Formula.I _ -> Cvec.blit x y
  | _ ->
      for i = 0 to m - 1 do
        let blk = Cvec.create n in
        Array.blit x (2 * i * n) blk 0 (2 * n);
        let out = apply b blk in
        Array.blit out 0 y (2 * i * n) (2 * n)
      done);
  match a with
  | Formula.I _ -> y
  | _ ->
      let z = Cvec.create (m * n) in
      let col = Cvec.create m in
      for j = 0 to n - 1 do
        for i = 0 to m - 1 do
          col.(2 * i) <- y.(2 * ((i * n) + j));
          col.((2 * i) + 1) <- y.((2 * ((i * n) + j)) + 1)
        done;
        let out = apply a col in
        for i = 0 to m - 1 do
          z.(2 * ((i * n) + j)) <- out.(2 * i);
          z.((2 * ((i * n) + j)) + 1) <- out.((2 * i) + 1)
        done
      done;
      z

let equal_semantics ?(tol = 1e-8) f g =
  Formula.dim f = Formula.dim g
  && Cmatrix.equal_approx ~tol (to_matrix f) (to_matrix g)
