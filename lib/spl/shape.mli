(** Structural shape analysis: recognizing formulas that denote pure
    permutations or pure diagonals and extracting their semantics as index
    or entry functions.

    Spiral's loop merging [11] folds such factors into the gather/scatter
    index functions and twiddle tables of adjacent computation loops; the
    compiler ([Spiral_codegen.Ir]) uses these extractors to do the same. *)

val perm_sigma : Formula.t -> (int -> int) option
(** [perm_sigma f] is [Some σ] when [f] denotes a permutation matrix
    ([y.(k) = x.(σ k)]); covers [Perm], [I], tensor products, compositions
    and the tagged constructs ([ParTensor], [CacheTensor]) of permutations. *)

val diag_entry : Formula.t -> (int -> Complex.t) option
(** [diag_entry f] is [Some d] when [f] denotes a diagonal matrix; covers
    [Diag], [I], direct sums of diagonals ([DirectSum], [ParDirectSum]) and
    tensor products with identities. *)

val is_data : Formula.t -> bool
(** [true] when the formula is permutation- or diagonal-shaped (pure data
    movement / scaling, no butterflies). *)
