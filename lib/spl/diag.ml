open Spiral_util

type t =
  | Twiddle of int * int
  | Segment of t * int * int
  | Explicit of Complex.t array

let size = function
  | Twiddle (m, n) -> m * n
  | Segment (_, _, len) -> len
  | Explicit a -> Array.length a

let rec entry d i =
  match d with
  | Twiddle (m, n) ->
      if i < 0 || i >= m * n then invalid_arg "Diag.entry: out of range";
      Twiddle.omega_pow ~n:(m * n) ~k:(i / n) ~l:(i mod n)
  | Segment (d, offset, len) ->
      if i < 0 || i >= len then invalid_arg "Diag.entry: out of range";
      entry d (offset + i)
  | Explicit a -> a.(i)

let to_array d = Array.init (size d) (entry d)

let to_table d =
  let n = size d in
  let t = Array.make (2 * n) 0.0 in
  for i = 0 to n - 1 do
    let z = entry d i in
    t.(2 * i) <- z.re;
    t.((2 * i) + 1) <- z.im
  done;
  t

let split d p =
  let n = size d in
  if p <= 0 || n mod p <> 0 then invalid_arg "Diag.split: p must divide size";
  let len = n / p in
  List.init p (fun i -> Segment (d, i * len, len))

let rec pp ppf = function
  | Twiddle (m, n) -> Format.fprintf ppf "D(%d,%d)" m n
  | Segment (d, offset, len) ->
      Format.fprintf ppf "%a[%d..%d]" pp d offset (offset + len - 1)
  | Explicit a -> Format.fprintf ppf "diag(%d)" (Array.length a)
