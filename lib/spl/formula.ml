type t =
  | I of int
  | DFT of int
  | WHT of int
  | Perm of Perm.t
  | Diag of Diag.t
  | Compose of t list
  | Tensor of t * t
  | DirectSum of t list
  | Smp of int * int * t
  | ParTensor of int * t
  | ParDirectSum of t list
  | CacheTensor of t * int
  | Vec of int * t
  | VTensor of t * int
  | VShuffle of int * int

let rec dim = function
  | I n | DFT n | WHT n -> n
  | Perm p -> Perm.size p
  | Diag d -> Diag.size d
  | Compose [] -> invalid_arg "Formula.dim: empty composition"
  | Compose (f :: _) -> dim f
  | Tensor (a, b) -> dim a * dim b
  | DirectSum fs -> List.fold_left (fun acc f -> acc + dim f) 0 fs
  | Smp (_, _, f) -> dim f
  | ParTensor (p, f) -> p * dim f
  | ParDirectSum fs -> List.fold_left (fun acc f -> acc + dim f) 0 fs
  | CacheTensor (f, mu) -> dim f * mu
  | Vec (_, f) -> dim f
  | VTensor (f, nu) -> dim f * nu
  | VShuffle (k, nu) -> k * nu * nu

let equal (a : t) (b : t) = a = b

let compose fs =
  let rec flatten f =
    match f with Compose gs -> List.concat_map flatten gs | _ -> [ f ]
  in
  let fs = List.concat_map flatten fs in
  (match fs with
  | [] -> invalid_arg "Formula.compose: empty"
  | f0 :: rest ->
      let d = dim f0 in
      List.iter
        (fun f ->
          if dim f <> d then
            invalid_arg
              (Printf.sprintf "Formula.compose: dimension mismatch %d vs %d" d
                 (dim f)))
        rest);
  let non_id = List.filter (function I _ -> false | _ -> true) fs in
  match non_id with
  | [] -> List.hd fs
  | [ f ] -> f
  | fs -> Compose fs

let tensor a b =
  match (a, b) with
  | I 1, f | f, I 1 -> f
  | I m, I n -> I (m * n)
  | a, b -> Tensor (a, b)

let l_perm mn m =
  if mn mod m <> 0 then invalid_arg "Formula.l_perm: m must divide mn";
  if m = 1 || m = mn then I mn else Perm (Perm.L (mn, m))

let twiddle m n = Diag (Diag.Twiddle (m, n))

let map_children fn = function
  | (I _ | DFT _ | WHT _ | Perm _ | Diag _ | VShuffle _) as f -> f
  | Compose fs -> Compose (List.map fn fs)
  | Tensor (a, b) -> Tensor (fn a, fn b)
  | DirectSum fs -> DirectSum (List.map fn fs)
  | Smp (p, mu, f) -> Smp (p, mu, fn f)
  | ParTensor (p, f) -> ParTensor (p, fn f)
  | ParDirectSum fs -> ParDirectSum (List.map fn fs)
  | CacheTensor (f, mu) -> CacheTensor (fn f, mu)
  | Vec (nu, f) -> Vec (nu, fn f)
  | VTensor (f, nu) -> VTensor (fn f, nu)

let children = function
  | I _ | DFT _ | WHT _ | Perm _ | Diag _ | VShuffle _ -> []
  | Compose fs | DirectSum fs | ParDirectSum fs -> fs
  | Tensor (a, b) -> [ a; b ]
  | Smp (_, _, f) | ParTensor (_, f) | CacheTensor (f, _) | Vec (_, f)
  | VTensor (f, _) ->
      [ f ]

let rec fold fn acc f =
  let acc = fn acc f in
  List.fold_left (fold fn) acc (children f)

let exists pred f = fold (fun acc g -> acc || pred g) false f

let count_nodes f = fold (fun acc _ -> acc + 1) 0 f

let has_tag f = exists (function Smp _ | Vec _ -> true | _ -> false) f

let has_nonterminal f =
  exists (function DFT _ | WHT _ -> true | _ -> false) f

let rec pp ppf f =
  match f with
  | I n -> Format.fprintf ppf "I_%d" n
  | DFT n -> Format.fprintf ppf "DFT_%d" n
  | WHT n -> Format.fprintf ppf "WHT_%d" n
  | Perm p -> Perm.pp ppf p
  | Diag d -> Diag.pp ppf d
  | Compose fs ->
      Format.fprintf ppf "@[<hov 1>";
      List.iteri
        (fun i g ->
          if i > 0 then Format.fprintf ppf "@ ";
          pp_factor ppf g)
        fs;
      Format.fprintf ppf "@]"
  | Tensor (a, b) ->
      Format.fprintf ppf "(%a (x) %a)" pp_factor a pp_factor b
  | DirectSum fs ->
      Format.fprintf ppf "(+)[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp)
        fs
  | Smp (p, mu, f) -> Format.fprintf ppf "{%a}_smp(%d,%d)" pp f p mu
  | ParTensor (p, f) -> Format.fprintf ppf "(I_%d (x)|| %a)" p pp_factor f
  | ParDirectSum fs ->
      Format.fprintf ppf "(+)||[@[%a@]]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           pp)
        fs
  | CacheTensor (f, mu) -> Format.fprintf ppf "(%a (x)- I_%d)" pp_factor f mu
  | Vec (nu, f) -> Format.fprintf ppf "{%a}_vec(%d)" pp f nu
  | VTensor (f, nu) -> Format.fprintf ppf "(%a (x)-> I_%d)" pp_factor f nu
  | VShuffle (k, nu) -> Format.fprintf ppf "(I_%d (x) L(%d,%d))reg" k (nu * nu) nu

and pp_factor ppf f =
  match f with
  | Compose _ -> Format.fprintf ppf "(%a)" pp f
  | _ -> pp ppf f

let to_string f = Format.asprintf "%a" pp f
