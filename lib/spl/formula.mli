(** The SPL formula language (Section 2.2 of the paper) with the shared
    memory extension of Section 3.1.

    A formula denotes a square complex matrix; programs computing
    [y = A x] are obtained by compiling formulas (see [Spiral_codegen]).
    The parallel constructs [ParTensor], [ParDirectSum] and [CacheTensor]
    are the tagged operators [I_p ⊗∥ A], [⊕∥ A_i] and [P ⊗̄ I_µ] of
    equation (4): semantically identical to their untagged counterparts but
    declared fully optimized for shared memory. *)

type t =
  | I of int  (** Identity matrix [I_n]. *)
  | DFT of int
      (** The transform [DFT_n] as a terminal/nonterminal: breakdown rules
          expand it; sizes left unexpanded are computed by codelets. *)
  | WHT of int
      (** Walsh-Hadamard transform [WHT_{2^k}] (second transform exercising
          the framework's generality). *)
  | Perm of Perm.t  (** Permutation matrix, e.g. [L^{mn}_m]. *)
  | Diag of Diag.t  (** Diagonal matrix, e.g. twiddle factors [D_{m,n}]. *)
  | Compose of t list
      (** [Compose [a; b; c]] is the matrix product [A·B·C] (so [c] is
          applied to the input first). *)
  | Tensor of t * t  (** Kronecker product [A ⊗ B]. *)
  | DirectSum of t list  (** Block diagonal [⊕ A_i]. *)
  | Smp of int * int * t
      (** [Smp (p, µ, a)]: the tag [a]{_smp(p,µ)} marking a subformula for
          parallelization by the rewriting system. *)
  | ParTensor of int * t  (** [ParTensor (p, a)] is [I_p ⊗∥ A]. *)
  | ParDirectSum of t list  (** [⊕∥ A_i]; one block per processor. *)
  | CacheTensor of t * int  (** [CacheTensor (a, µ)] is [A ⊗̄ I_µ]. *)
  | Vec of int * t
      (** [Vec (ν, a)]: the vectorization tag [a]{_vec(ν)} marking a
          subformula for ν-way SIMD rewriting (companion work [10,13] the
          paper composes with). *)
  | VTensor of t * int
      (** [VTensor (a, ν)] is [A ⊗→ I_ν]: [A] executed on ν-way vectors
          (semantically [A ⊗ I_ν]). *)
  | VShuffle of int * int
      (** [VShuffle (k, ν)] is [I_k ⊗ L^{ν²}_ν]: in-register ν×ν
          transposes (SIMD shuffles). *)

val dim : t -> int
(** Dimension of the (square) matrix denoted by the formula. *)

val equal : t -> t -> bool

(** {1 Smart constructors} *)

val compose : t list -> t
(** Flattens nested compositions, drops size-preserving identities when the
    product has other factors, and checks dimension compatibility. *)

val tensor : t -> t -> t
(** [tensor a b] is [A ⊗ B] with [I_1] absorbed and [I_m ⊗ I_n = I_{mn}]. *)

val l_perm : int -> int -> t
(** [l_perm mn m] is the stride permutation [L^{mn}_m] (identity folded). *)

val twiddle : int -> int -> t
(** [twiddle m n] is [D_{m,n}]. *)

(** {1 Traversal} *)

val map_children : (t -> t) -> t -> t
(** Applies a function to the immediate subformulas. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all nodes. *)

val exists : (t -> bool) -> t -> bool

val count_nodes : t -> int

val has_tag : t -> bool
(** [true] iff an [Smp] tag remains anywhere in the formula. *)

val has_nonterminal : t -> bool
(** [true] iff a [DFT] or [WHT] node remains. *)

val pp : Format.formatter -> t -> unit
(** Notation close to the paper:
    [(DFT_4 (x) I_2) D(4,2) (I_4 (x) DFT_2) L(8,4)]. *)

val to_string : t -> string
