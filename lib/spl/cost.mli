(** Arithmetic cost model over formulas: counts real floating point
    operations (a complex addition is 2 flops, a complex multiplication 6)
    assuming permutations are folded into adjacent loops (0 flops), as
    Spiral's loop merging guarantees.

    [per_processor] reflects the static schedule implied by the parallel
    constructs and is the basis of the load-balance experiment (T5). *)

val leaf_flops : int -> int
(** Cost of a directly computed [DFT_n] codelet.  Exact for the unrolled
    codelet sizes (2, 3, 4, 8); the O(n²) direct count otherwise.  Kept in
    sync with [Spiral_codegen.Codelet] (asserted by the test suite). *)

val flops : ?leaf:(int -> int) -> Formula.t -> int
(** Total real flops to compute [y = A x] once. *)

val per_processor : p:int -> ?leaf:(int -> int) -> Formula.t -> int array
(** [per_processor ~p f].(i) is the flops executed by processor [i]: work
    inside [ParTensor]/[ParDirectSum] is split per the schedule, all other
    work is accounted to processor 0 (sequential section). *)

val imbalance : p:int -> Formula.t -> float
(** [(max - min) / max] of the per-processor flop counts; [0.] means
    perfectly load balanced. *)
