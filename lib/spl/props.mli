(** The predicates of Definition 1 of the paper.

    A formula is {e load-balanced} for [p] processors if it is one of the
    tagged parallel constructs of equation (4) with matching [p], or
    [I_m ⊗ A] / [A·B] built from load-balanced formulas.  It {e avoids
    false sharing} for cache line length [µ] when the parallel blocks have
    dimensions that are multiples of [µ] (so each cache line is owned by
    exactly one processor) and data reshuffling only moves whole cache
    lines ([P ⊗̄ I_µ]).  {e Fully optimized} = both. *)

val load_balanced : p:int -> Formula.t -> bool

val avoids_false_sharing : mu:int -> Formula.t -> bool

val fully_optimized : p:int -> mu:int -> Formula.t -> bool

val vectorized : nu:int -> Formula.t -> bool
(** [vectorized ~nu f]: every operation in [f] is expressed on ν-way
    vectors — compute and data movement appear only as [A ⊗→ I_ν]
    ([VTensor]), in-register shuffles ([VShuffle]), pointwise diagonals,
    or loops/parallel skeletons over such blocks (the target form of the
    short-vector rewriting the paper composes with). *)

val parallel_degree : Formula.t -> int option
(** [Some p] when every parallel construct in the formula uses exactly [p]
    processors, [None] if there are none or they disagree. *)
