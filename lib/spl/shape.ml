open Formula

let rec perm_sigma f =
  match f with
  | Perm p -> Some (Perm.gather p)
  | I _ -> Some (fun k -> k)
  | Tensor (a, b) -> (
      match (perm_sigma a, perm_sigma b) with
      | Some sa, Some sb ->
          let db = dim b in
          Some (fun k -> (sa (k / db) * db) + sb (k mod db))
      | _ -> None)
  | CacheTensor (a, mu) | VTensor (a, mu) -> perm_sigma (Tensor (a, I mu))
  | ParTensor (p, a) -> perm_sigma (Tensor (I p, a))
  | VShuffle (k, nu) -> perm_sigma (Tensor (I k, Perm (Perm.L (nu * nu, nu))))
  | Compose fs ->
      (* y = F1 (F2 (… x)): σ = σ_last ∘ … ∘ σ_first-applied reversed:
         reading position k goes through σ_{F1} first. *)
      let rec build = function
        | [] -> Some (fun k -> k)
        | g :: rest -> (
            match (perm_sigma g, build rest) with
            | Some sg, Some srest -> Some (fun k -> srest (sg k))
            | _ -> None)
      in
      build fs
  | Smp (_, _, a) | Vec (_, a) -> perm_sigma a
  | DFT _ | WHT _ | Diag _ | DirectSum _ | ParDirectSum _ -> None

let rec diag_entry f =
  match f with
  | Diag d -> Some (Diag.entry d)
  | I _ -> Some (fun _ -> Complex.one)
  | DirectSum fs | ParDirectSum fs ->
      let blocks = List.map (fun g -> (dim g, diag_entry g)) fs in
      if List.for_all (fun (_, e) -> e <> None) blocks then
        let blocks =
          List.map (fun (d, e) -> (d, Option.get e)) blocks
        in
        Some
          (fun k ->
            let rec find off = function
              | [] -> invalid_arg "Shape.diag_entry: index out of range"
              | (d, e) :: rest ->
                  if k < off + d then e (k - off) else find (off + d) rest
            in
            find 0 blocks)
      else None
  | Tensor (I m, a) -> (
      match diag_entry a with
      | Some e ->
          let da = dim a in
          ignore m;
          Some (fun k -> e (k mod da))
      | None -> None)
  | Tensor (a, I q) -> (
      match diag_entry a with
      | Some e -> Some (fun k -> e (k / q))
      | None -> None)
  | Smp (_, _, a) | Vec (_, a) -> diag_entry a
  | VTensor (a, nu) -> diag_entry (Tensor (a, I nu))
  | DFT _ | WHT _ | Perm _ | Compose _ | Tensor _ | ParTensor _
  | CacheTensor _ | VShuffle _ ->
      None

let is_data f =
  match perm_sigma f with
  | Some _ -> true
  | None -> ( match diag_entry f with Some _ -> true | None -> false)
