type t = L of int * int | Explicit of int array

let size = function L (mn, _) -> mn | Explicit a -> Array.length a

let gather p k =
  match p with
  | L (mn, m) ->
      (* x viewed as an (mn/m) × m row-major matrix is transposed, so output
         position i*n + j takes input position j*m + i (n = mn/m):
         σ(k) = (k mod n) * m + k / n. *)
      let n = mn / m in
      ((k mod n) * m) + (k / n)
  | Explicit a -> a.(k)

let to_array p = Array.init (size p) (gather p)

let inverse p =
  let a = to_array p in
  let inv = Array.make (Array.length a) 0 in
  Array.iteri (fun k src -> inv.(src) <- k) a;
  Explicit inv

let is_identity p =
  match p with
  | L (mn, m) -> m = 1 || m = mn
  | Explicit a ->
      let ok = ref true in
      Array.iteri (fun k src -> if k <> src then ok := false) a;
      !ok

let validate = function
  | L (mn, m) ->
      if mn <= 0 || m <= 0 || mn mod m <> 0 then
        invalid_arg "Perm.L: m must divide mn, both positive"
  | Explicit a ->
      let n = Array.length a in
      let seen = Array.make n false in
      Array.iter
        (fun v ->
          if v < 0 || v >= n || seen.(v) then
            invalid_arg "Perm.Explicit: not a bijection";
          seen.(v) <- true)
        a

let pp ppf = function
  | L (mn, m) -> Format.fprintf ppf "L(%d,%d)" mn m
  | Explicit a ->
      Format.fprintf ppf "Perm[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int a)))
