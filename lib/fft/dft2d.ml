open Spiral_util
open Spiral_spl
open Spiral_rewrite

type t = { rows : int; cols : int; engine : Engine.t }

let expand_dim n = Ruletree.expand (Ruletree.mixed_radix n)

let derive ~rows ~cols ~threads ~mu =
  (* DFT_m ⊗ DFT_n = (DFT_m ⊗ I_n)(I_m ⊗ DFT_n): parallelize both stages
     with the Table 1 rules, then expand the 1-D sub-transforms. *)
  let top =
    Formula.compose
      [ Formula.Tensor (Formula.DFT rows, Formula.I cols);
        Formula.Tensor (Formula.I rows, Formula.DFT cols) ]
  in
  if threads <= 1 then
    (Derive.substitute_nonterminals top [ expand_dim rows; expand_dim cols ], 1)
  else
    match Parallel_rules.parallelize ~p:threads ~mu top with
    | Ok f when Props.fully_optimized ~p:threads ~mu f ->
        ( Derive.substitute_nonterminals f
            [ expand_dim rows; expand_dim cols ],
          threads )
    | Ok _ | Error _ ->
        ( Derive.substitute_nonterminals top
            [ expand_dim rows; expand_dim cols ],
          1 )

let plan ?(threads = 1) ?(mu = 4) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Dft2d.plan: dimensions >= 1";
  let engine =
    Engine.plan ~threads ~mu ~derive:(derive ~rows ~cols)
      (Problem.make Problem.Dft2d [ rows; cols ])
  in
  { rows; cols; engine }

let rows t = t.rows
let cols t = t.cols
let parallel t = Engine.parallel t.engine
let formula t = Engine.formula t.engine

let execute t x =
  let y = Cvec.create (Engine.size t.engine) in
  Engine.execute_into t.engine ~src:x ~dst:y;
  y

let destroy t = Engine.destroy t.engine

let with_plan ?threads ?mu ~rows ~cols f =
  let t = plan ?threads ?mu ~rows ~cols () in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
