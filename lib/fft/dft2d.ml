open Spiral_util
open Spiral_spl
open Spiral_rewrite
open Spiral_codegen

type t = {
  rows : int;
  cols : int;
  plan : Plan.t;
  formula : Formula.t;
  pool : Spiral_smp.Pool.t option;
  prep : Spiral_smp.Par_exec.prepared option;
  mutable alive : bool;
}

let expand_dim n = Ruletree.expand (Ruletree.mixed_radix n)

let derive ~threads ~mu ~rows ~cols =
  (* DFT_m ⊗ DFT_n = (DFT_m ⊗ I_n)(I_m ⊗ DFT_n): parallelize both stages
     with the Table 1 rules, then expand the 1-D sub-transforms. *)
  let top =
    Formula.compose
      [ Formula.Tensor (Formula.DFT rows, Formula.I cols);
        Formula.Tensor (Formula.I rows, Formula.DFT cols) ]
  in
  if threads <= 1 then
    (Derive.substitute_nonterminals top [ expand_dim rows; expand_dim cols ], 1)
  else
    match Parallel_rules.parallelize ~p:threads ~mu top with
    | Ok f when Props.fully_optimized ~p:threads ~mu f ->
        ( Derive.substitute_nonterminals f
            [ expand_dim rows; expand_dim cols ],
          threads )
    | Ok _ | Error _ ->
        ( Derive.substitute_nonterminals top
            [ expand_dim rows; expand_dim cols ],
          1 )

let plan ?(threads = 1) ?(mu = 4) ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Dft2d.plan: dimensions >= 1";
  let formula, p = derive ~threads ~mu ~rows ~cols in
  let plan = Plan.of_formula formula in
  let pool = if p > 1 then Some (Spiral_smp.Pool.create p) else None in
  let prep = Option.map (fun pl -> Spiral_smp.Par_exec.prepare pl plan) pool in
  { rows; cols; plan; formula; pool; prep; alive = true }

let rows t = t.rows
let cols t = t.cols
let parallel t = t.pool <> None
let formula t = t.formula

let execute t x =
  if not t.alive then invalid_arg "Dft2d: plan was destroyed";
  let n = t.rows * t.cols in
  if Cvec.length x <> n then invalid_arg "Dft2d.execute: wrong vector length";
  let y = Cvec.create n in
  (match t.prep with
  | Some prep -> Spiral_smp.Par_exec.execute_safe_prepared prep x y
  | None -> Plan.execute t.plan x y);
  y

let destroy t =
  if t.alive then begin
    t.alive <- false;
    Option.iter Spiral_smp.Pool.shutdown t.pool
  end

let with_plan ?threads ?mu ~rows ~cols f =
  let t = plan ?threads ?mu ~rows ~cols () in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
