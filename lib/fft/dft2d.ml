open Spiral_util
open Spiral_spl
open Spiral_rewrite

(* First-class 2-D engine.  A dft2d[RxC] plan compiles the row pass, the
   column pass and (in the tiled variant) the cache-blocked transpose
   between them into ONE Plan executed in a single resident parallel
   region: workers partition rows, cross at most one real barrier, then
   partition columns, with every other pass boundary discharged by the
   barrier-elision analysis (DESIGN.md §5a/§5f).  Two column schedules:

   - {e strided}: no transpose at all.  Each compute factor of the
     expanded column transform c is conjugated as
     L(n,R) · (I_{C/p·p} ⊗ c) · L(n,C), which materializes to a single
     pass whose gather/scatter walk the matrix column-wise (stride C)
     while each worker touches only its own column block — so every
     within-stage boundary elides and only the row→column crossing
     synchronizes.
   - {e tiled}: the rows' output is relocated through
     {!Spiral_codegen.Ir.transpose_pass} (µ-aligned tile×tile cache
     blocks), the column transform then runs at unit stride on the
     transposed image, and the final pass's scatter absorbs the
     un-transposing L(n,R).  The copy pass costs one extra sweep but
     every column load after it is contiguous.

   [Auto] (the default) measures both compiled plans once per
   (R, C, threads, µ) and remembers the winner — the Dp shoot-out the
   1-D searches use, applied to whole 2-D schedules.  Shapes the
   variants cannot serve (p ∤ R, p ∤ C, or a dimension < 2) fall back
   to the adapter-era derivation, sequential when the Table 1 rules do
   not produce a fully optimized formula. *)

type variant = Strided | Tiled | Auto
type direction = Forward | Inverse

type t = {
  rows : int;
  cols : int;
  direction : direction;
  schedule : string;  (* "strided" | "tiled" | "legacy" — what compiled *)
  engine : Engine.t;
}

let expand_dim n = Ruletree.expand (Ruletree.mixed_radix n)

(* Column-dimension expansion: at most two compute factors whenever a
   balanced split with both sides inside the codelet range exists
   (R <= leaf_max²).  A deeper column pipeline puts three or more
   column passes over the ping-pong buffer, and the elision analysis
   rightly refuses the first of those boundaries: the pass after it
   scatters the transposed image into the very buffer the first column
   pass still gathers row-major (condition B).  With two, the second
   column pass writes [y] and the hazard vanishes, so the row→column
   crossing stays the only real barrier. *)
let expand_col n =
  if n <= Ruletree.leaf_max then expand_dim n
  else begin
    let best = ref None in
    List.iter
      (fun m ->
        if m <= Ruletree.leaf_max && n / m <= Ruletree.leaf_max then begin
          let bal = abs (m - (n / m)) in
          match !best with
          | Some (b, _) when b <= bal -> ()
          | _ -> best := Some (bal, m)
        end)
      (Int_util.divisors n);
    match !best with
    | Some (_, m) ->
        Ruletree.expand (Ruletree.Ct (Ruletree.Leaf m, Ruletree.Leaf (n / m)))
    | None -> expand_dim n
  end

(* ------------------------------------------------------------------ *)
(* Legacy adapter derivation — kept as the fallback for shapes the 2-D
   schedules cannot partition (p ∤ R or p ∤ C, or a unit dimension). *)

let derive_legacy ~rows ~cols ~threads ~mu =
  let top =
    Formula.compose
      [ Formula.Tensor (Formula.DFT rows, Formula.I cols);
        Formula.Tensor (Formula.I rows, Formula.DFT cols) ]
  in
  if threads <= 1 then
    (Derive.substitute_nonterminals top [ expand_dim rows; expand_dim cols ], 1)
  else
    match Parallel_rules.parallelize ~p:threads ~mu top with
    | Ok f when Props.fully_optimized ~p:threads ~mu f ->
        ( Derive.substitute_nonterminals f
            [ expand_dim rows; expand_dim cols ],
          threads )
    | Ok _ | Error _ ->
        ( Derive.substitute_nonterminals top
            [ expand_dim rows; expand_dim cols ],
          1 )

(* ------------------------------------------------------------------ *)
(* Strided (transpose-free) schedule. *)

(* Flatten an expanded 1-D formula into its pipeline atoms: the factors
   that each materialize to exactly one pass.  Tensor-by-identity
   distributes over the inner composition so a Compose buried under
   I ⊗ (..) or (..) ⊗ I comes apart too. *)
let rec atoms f =
  match f with
  | Formula.Compose fs -> List.concat_map atoms fs
  | Formula.Tensor (Formula.I m, b) ->
      List.map (fun g -> Formula.Tensor (Formula.I m, g)) (atoms b)
  | Formula.Tensor (a, Formula.I q) ->
      List.map (fun g -> Formula.Tensor (g, Formula.I q)) (atoms a)
  | _ -> [ f ]

let derive_strided ~rows ~cols ~threads ~mu =
  let n = rows * cols in
  let col_atoms = atoms (expand_col rows) in
  if threads <= 1 then
    (* column factors at stride C, row stage at unit stride; one flat
       composition so loop merging absorbs every data factor *)
    let col_stage =
      List.map (fun a -> Formula.Tensor (a, Formula.I cols)) col_atoms
    in
    let row_stage = Formula.Tensor (Formula.I rows, expand_dim cols) in
    (Formula.compose (col_stage @ [ row_stage ]), 1)
  else begin
    (* caller guarantees p | rows and p | cols *)
    let col_stage =
      List.map
        (fun a ->
          if Shape.is_data a then
            (* decor: keep it in row-major space, where it stays a
               load-time gather adjustment of the neighbouring pass *)
            Formula.Tensor (a, Formula.I cols)
          else
            (* c ⊗ I_C = L(n,R) · (I_C ⊗ c) · L(n,C), with the middle
               identity split p × C/p so each worker owns a column
               block; both L's dissolve into the pass's own
               gather/scatter, leaving one column-strided pass *)
            Formula.compose
              [ Formula.Perm (Perm.L (n, rows));
                Formula.ParTensor
                  (threads, Formula.Tensor (Formula.I (cols / threads), a));
                Formula.Perm (Perm.L (n, cols)) ])
        col_atoms
    in
    let row_stage =
      Formula.ParTensor
        (threads, Formula.Tensor (Formula.I (rows / threads), expand_dim cols))
    in
    ( Formula.Smp (threads, mu, Formula.compose (col_stage @ [ row_stage ])),
      threads )
  end

(* ------------------------------------------------------------------ *)
(* Tiled (transpose) schedule: row passes, one cache-blocked transpose
   pass, unit-stride column passes whose final scatter un-transposes. *)

(* largest power of two dividing both extents, capped at 16 (a 16×16
   complex tile is 4 KiB — comfortably cache-resident) *)
let tile_for rows cols =
  let rec pow2 g = if g mod 2 = 0 && g > 1 then 2 * pow2 (g / 2) else 1 in
  min 16 (pow2 (Int_util.gcd rows cols))

let derive_ir_tiled ~rows ~cols ~threads ~mu =
  let n = rows * cols in
  let tile = tile_for rows cols in
  let p =
    if threads > 1 && rows mod threads = 0 && cols mod threads = 0 then threads
    else 1
  in
  let rowf =
    if p <= 1 then Formula.Tensor (Formula.I rows, expand_dim cols)
    else
      Formula.Smp
        ( p,
          mu,
          Formula.ParTensor
            (p, Formula.Tensor (Formula.I (rows / p), expand_dim cols)) )
  in
  let col_mid =
    if p <= 1 then Formula.Tensor (Formula.I cols, expand_col rows)
    else
      Formula.Smp
        ( p,
          mu,
          Formula.ParTensor
            (p, Formula.Tensor (Formula.I (cols / p), expand_col rows)) )
  in
  (* the leading L(n,R) un-transposes the column stage's output back to
     row-major; as a data factor it becomes the last pass's scatter *)
  let colf = Formula.compose [ Formula.Perm (Perm.L (n, rows)); col_mid ] in
  let ir_row = Spiral_codegen.Ir.of_formula rowf in
  let ir_col = Spiral_codegen.Ir.of_formula colf in
  let xpose =
    Spiral_codegen.Ir.transpose_pass ~rows ~cols ~tile
      ?par:(if p > 1 then Some p else None)
      ~mu ()
  in
  let ir =
    {
      Spiral_codegen.Ir.n;
      passes =
        ir_row.Spiral_codegen.Ir.passes
        @ (xpose :: ir_col.Spiral_codegen.Ir.passes);
    }
  in
  let dformula =
    Formula.compose [ colf; Formula.Perm (Perm.L (n, cols)); rowf ]
  in
  (ir, dformula, p)

(* ------------------------------------------------------------------ *)

let strided_eligible ~rows ~cols ~threads =
  rows >= 2 && cols >= 2
  && (threads <= 1 || (rows mod threads = 0 && cols mod threads = 0))

let tiled_eligible ~rows ~cols ~threads =
  strided_eligible ~rows ~cols ~threads && tile_for rows cols >= 2

(* Auto shoot-out winners, one measurement per shape/schedule config *)
let auto_memo : (int * int * int * int, string) Hashtbl.t = Hashtbl.create 16
let auto_lock = Mutex.create ()

let plan ?(threads = 1) ?(mu = 4) ?(variant = Auto) ?(direction = Forward)
    ~rows ~cols () =
  if rows < 1 || cols < 1 then invalid_arg "Dft2d.plan: dimensions >= 1";
  let problem =
    Problem.make
      ~direction:
        (match direction with
        | Forward -> Problem.Forward
        | Inverse -> Problem.Inverse)
      Problem.Dft2d [ rows; cols ]
  in
  let mk_strided () =
    Engine.plan ~threads ~mu ~flavor:"strided"
      ~derive:(derive_strided ~rows ~cols)
      problem
  in
  let mk_tiled () =
    (* [derive] backs the registry signature only; the IR path compiles *)
    Engine.plan ~threads ~mu ~flavor:"tiled"
      ~derive_ir:(derive_ir_tiled ~rows ~cols)
      ~derive:(derive_strided ~rows ~cols)
      problem
  in
  let mk_legacy () =
    Counters.incr "dft2d.legacy_fallback";
    Engine.plan ~threads ~mu ~derive:(derive_legacy ~rows ~cols) problem
  in
  let strided_ok = strided_eligible ~rows ~cols ~threads in
  let tiled_ok = tiled_eligible ~rows ~cols ~threads in
  let schedule, engine =
    match variant with
    | Strided -> if strided_ok then ("strided", mk_strided ()) else ("legacy", mk_legacy ())
    | Tiled ->
        if tiled_ok then ("tiled", mk_tiled ())
        else if strided_ok then ("strided", mk_strided ())
        else ("legacy", mk_legacy ())
    | Auto ->
        if not strided_ok then ("legacy", mk_legacy ())
        else if not tiled_ok then ("strided", mk_strided ())
        else begin
          let key = (rows, cols, threads, mu) in
          let remembered =
            Mutex.lock auto_lock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock auto_lock)
              (fun () -> Hashtbl.find_opt auto_memo key)
          in
          match remembered with
          | Some "tiled" -> ("tiled", mk_tiled ())
          | Some _ -> ("strided", mk_strided ())
          | None ->
              let es = mk_strided () and et = mk_tiled () in
              let src = Cvec.random ~seed:7 (rows * cols)
              and dst = Cvec.create (rows * cols) in
              let name, winner, _ =
                Spiral_search.Dp.choose
                  ~measure:(fun e ->
                    Spiral_search.Timer.time_min ~repeats:3 (fun () ->
                        Engine.execute_into e ~src ~dst))
                  [ ("strided", es); ("tiled", et) ]
              in
              Engine.destroy (if winner == es then et else es);
              Mutex.lock auto_lock;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock auto_lock)
                (fun () -> Hashtbl.replace auto_memo key name);
              Counters.incr ("dft2d.auto_" ^ name);
              (name, winner)
        end
  in
  { rows; cols; direction; schedule; engine }

let rows t = t.rows
let cols t = t.cols
let direction t = t.direction
let schedule t = t.schedule
let parallel t = Engine.parallel t.engine
let barriers t = Engine.barriers t.engine
let formula t = Engine.formula t.engine

(* DFT2D⁻¹ = (1/n) · conj ∘ DFT2D ∘ conj — same compiled forward plan,
   conjugation at the boundary through the engine-owned scratch (the 1-D
   Dft front-end's inverse idiom, allocation-free in steady state). *)
let execute_into t ~src ~dst =
  match t.direction with
  | Forward -> Engine.execute_into t.engine ~src ~dst
  | Inverse ->
      let n = Engine.size t.engine in
      if Cvec.length src <> n || Cvec.length dst <> n then
        invalid_arg "Dft2d.execute_into: wrong vector length";
      let tmp = Engine.scratch t.engine in
      for i = 0 to n - 1 do
        tmp.(2 * i) <- src.(2 * i);
        tmp.((2 * i) + 1) <- -.src.((2 * i) + 1)
      done;
      Engine.execute_into t.engine ~src:tmp ~dst;
      let s = 1.0 /. float_of_int n in
      for i = 0 to n - 1 do
        dst.(2 * i) <- dst.(2 * i) *. s;
        dst.((2 * i) + 1) <- -.dst.((2 * i) + 1) *. s
      done

let execute t x =
  let y = Cvec.create (Engine.size t.engine) in
  execute_into t ~src:x ~dst:y;
  y

let execute_many t jobs =
  match t.direction with
  | Forward -> Engine.execute_many t.engine jobs
  | Inverse ->
      (* each job crosses the conjugation scratch, so inverse batches run
         one spectrum at a time (each still parallel inside) *)
      Array.iter (fun (x, y) -> execute_into t ~src:x ~dst:y) jobs

let destroy t = Engine.destroy t.engine

let with_plan ?threads ?mu ?variant ?direction ~rows ~cols f =
  let t = plan ?threads ?mu ?variant ?direction ~rows ~cols () in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
