(** Two-dimensional DFTs.

    As the paper notes (Section 2.2), multi-dimensional transforms are
    tensor products of their one-dimensional counterparts:
    [DFT_{m×n} = DFT_m ⊗ DFT_n] on row-major data.  The same Table 1
    rewriting parallelizes the row and column stages, so 2-D plans get the
    load-balancing and false-sharing guarantees for free. *)

type t

val plan : ?threads:int -> ?mu:int -> rows:int -> cols:int -> unit -> t
(** Transform of a [rows × cols] complex image stored row-major.  Both
    dimensions must have prime factors within codelet range. *)

val rows : t -> int
val cols : t -> int

val parallel : t -> bool

val formula : t -> Spiral_spl.Formula.t

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** Input length [rows * cols], row-major. *)

val destroy : t -> unit

val with_plan :
  ?threads:int -> ?mu:int -> rows:int -> cols:int -> (t -> 'a) -> 'a
