(** Two-dimensional DFT as a first-class engine (DESIGN.md §5f).

    A [dft2d[RxC]] plan compiles the row pass, the column pass and — in
    the tiled variant — the cache-blocked transpose between them into
    one {!Spiral_codegen.Plan} executed in a single resident parallel
    region: workers partition rows, cross at most one real barrier at
    the row→column boundary, then partition columns; every other pass
    boundary is discharged by the barrier-elision certificate
    (["par_exec.barrier_elided"] accounts for them).  The tiled
    transpose additionally discharges the tile-coverage certificate
    ({!Spiral_validate.check_tile_coverage}). *)

type variant =
  | Strided
      (** Transpose-free: column factors materialize to column-strided
          passes (stride [C]), each worker touching only its own column
          block. *)
  | Tiled
      (** Relocate the rows' output through a µ-aligned tile×tile
          blocked transpose pass, run the column transform at unit
          stride, and fold the un-transposing permutation into the last
          pass's scatter. *)
  | Auto
      (** Measure both compiled schedules once per (R, C, threads, µ) —
          {!Spiral_search.Dp.choose} — and remember the winner.  The
          default. *)

type direction = Forward | Inverse

type t

val plan :
  ?threads:int ->
  ?mu:int ->
  ?variant:variant ->
  ?direction:direction ->
  rows:int ->
  cols:int ->
  unit ->
  t
(** [plan ~rows ~cols ()] prepares a 2-D transform of an [rows × cols]
    row-major complex matrix.  Defaults: [threads = 1], [mu = 4],
    [variant = Auto], [direction = Forward].  Shapes the 2-D schedules
    cannot partition ([threads ∤ rows], [threads ∤ cols], or a
    dimension < 2; additionally [gcd rows cols] odd for [Tiled]) fall
    back — tiled to strided, strided to the adapter-era derivation
    (sequential when the Table 1 rules do not apply), counted under
    ["dft2d.legacy_fallback"].  The inverse shares the forward plan via
    conjugation at the boundary (scaled by [1/(rows·cols)]).
    @raise Invalid_argument if a dimension is [< 1]. *)

val rows : t -> int
val cols : t -> int
val direction : t -> direction

val schedule : t -> string
(** Which schedule actually compiled: ["strided"], ["tiled"] or
    ["legacy"]. *)

val parallel : t -> bool
(** [true] when the plan executes on the worker pool. *)

val barriers : t -> int
(** Real synchronization points one parallel execution crosses (pass
    boundaries the elision certificate could not discharge) — 1 for the
    strided schedule at partitionable shapes (the row→column crossing),
    at most 2 for the tiled one.  0 when sequential. *)

val formula : t -> Spiral_spl.Formula.t
(** The formula the compiled plan stands for (for the tiled schedule,
    the formula its hand-stitched IR denotes). *)

val execute_into :
  t -> src:Spiral_util.Cvec.t -> dst:Spiral_util.Cvec.t -> unit
(** One transform: rows and columns in a single parallel region.
    Allocation-free in steady state ([Inverse] conjugates through the
    engine-owned scratch).  [src] and [dst] must be distinct vectors of
    [rows·cols] complex elements. *)

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** Allocating convenience: fresh output vector per call. *)

val execute_many :
  t -> (Spiral_util.Cvec.t * Spiral_util.Cvec.t) array -> unit
(** Batch of same-shape transforms.  [Forward] batches run through
    {!Engine.execute_many} — one parallel region for the whole batch,
    with the inter-job barriers elided when the schedule allows;
    [Inverse] batches loop one spectrum at a time through the
    conjugation boundary.  Bit-identical to repeated {!execute_into}. *)

val destroy : t -> unit

val with_plan :
  ?threads:int ->
  ?mu:int ->
  ?variant:variant ->
  ?direction:direction ->
  rows:int ->
  cols:int ->
  (t -> 'a) ->
  'a
