(** A reimplementation of FFTW 3.1's multithreaded execution strategy, the
    comparison baseline of the paper's Section 4.

    Sequential plans use the same high-quality factorizations as the rest
    of this library (the paper found Spiral and FFTW sequential code within
    10% of each other).  The parallel strategy differs from the multicore
    Cooley-Tukey formula in exactly the ways the paper describes for
    FFTW 3.1:

    - loops inside the standard algorithm are parallelized directly,
      without the µ-aware cache-line tiling of rules (7)–(10);
    - loop iterations are scheduled block-cyclically;
    - threads are started per parallel region (thread pooling in FFTW 3.1
      was experimental and off by default);
    - parallelism is only used above a size {!threshold} — the FFTW
      authors' guidance that threads pay off "only for problem sizes
      beyond several thousand data points". *)

val threshold : int
(** Minimum size for which threads are used ([2¹³], cf. the paper's
    observation that FFTW parallelizes from [N >= 2¹³]). *)

val sequential_plan : int -> Spiral_codegen.Plan.t

val parallel_plan : p:int -> int -> Spiral_codegen.Plan.t option
(** [None] below {!threshold} or when the naive loop parallelization does
    not apply; the caller should fall back to {!sequential_plan}. *)

val schedule : p:int -> count:int -> Spiral_smp.Par_exec.schedule
(** The block-cyclic schedule FFTW-style generated loops use. *)

val execute :
  p:int -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> int -> unit
(** [execute ~p x y n] runs the baseline end-to-end on the host (fork-join
    domains above threshold, sequential below). *)
