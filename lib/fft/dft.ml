open Spiral_util
open Spiral_rewrite
open Spiral_codegen

type direction = Forward | Inverse

type impl =
  | Direct of {
      plan : Plan.t;
      formula : Spiral_spl.Formula.t;
      pool : Spiral_smp.Pool.t option;
      prep : Spiral_smp.Par_exec.prepared option;
          (* schedule baked at plan time; Some iff pool is Some *)
    }
  | Chirp of Bluestein.t
      (** Sizes with prime factors beyond the codelet range. *)

type t = {
  n : int;
  direction : direction;
  impl : impl;
  mutable alive : bool;
}

let plan ?(direction = Forward) ?(threads = 1) ?(mu = 4) ?tree n =
  if n < 1 then invalid_arg "Dft.plan: n >= 1";
  let impl =
    if Bluestein.supported_directly n || tree <> None then begin
      let tree =
        match tree with
        | Some t ->
            if Ruletree.size t <> n then
              invalid_arg "Dft.plan: ruletree size does not match n";
            t
        | None -> Ruletree.mixed_radix n
      in
      let formula, p = Planner.derive_formula ~threads ~mu ~tree n in
      let plan =
        try Plan.of_formula formula
        with Ir.Unsupported msg -> invalid_arg ("Dft.plan: " ^ msg)
      in
      let pool = if p > 1 then Some (Spiral_smp.Pool.create p) else None in
      let prep =
        Option.map (fun pl -> Spiral_smp.Par_exec.prepare pl plan) pool
      in
      Direct { plan; formula; pool; prep }
    end
    else Chirp (Bluestein.plan ~threads ~mu n)
  in
  { n; direction; impl; alive = true }

let n t = t.n

let threads t =
  match t.impl with
  | Direct { pool = Some p; _ } -> Spiral_smp.Pool.size p
  | Direct _ | Chirp _ -> 1

let parallel t =
  match t.impl with Direct { pool = Some _; _ } -> true | _ -> false

let formula t =
  match t.impl with
  | Direct { formula; _ } -> formula
  | Chirp _ -> Spiral_spl.Formula.DFT t.n

let description t =
  let dir = match t.direction with Forward -> "forward" | Inverse -> "inverse" in
  match t.impl with
  | Direct { plan; _ } ->
      Printf.sprintf "DFT_%d %s threads=%d\n%s" t.n dir (threads t)
        (Plan.describe plan)
  | Chirp b ->
      Printf.sprintf "DFT_%d %s via Bluestein (inner size %d)\n" t.n dir
        (Bluestein.inner_size b)

let forward_into t ~src ~dst =
  match t.impl with
  | Direct { plan; prep; _ } -> (
      match prep with
      | Some prep -> Spiral_smp.Par_exec.execute_safe_prepared prep src dst
      | None -> Plan.execute plan src dst)
  | Chirp b -> Bluestein.execute_into b ~src ~dst

let conjugate x =
  let y = Cvec.copy x in
  for i = 0 to Cvec.length x - 1 do
    y.((2 * i) + 1) <- -.y.((2 * i) + 1)
  done;
  y

let execute_into t ~src ~dst =
  if not t.alive then invalid_arg "Dft: plan was destroyed";
  if Cvec.length src <> t.n || Cvec.length dst <> t.n then
    invalid_arg "Dft.execute: wrong vector length";
  match t.direction with
  | Forward -> forward_into t ~src ~dst
  | Inverse ->
      (* DFT⁻¹ = (1/n)·conj ∘ DFT ∘ conj *)
      let tmp = conjugate src in
      forward_into t ~src:tmp ~dst;
      let scale = 1.0 /. float_of_int t.n in
      for i = 0 to t.n - 1 do
        dst.(2 * i) <- dst.(2 * i) *. scale;
        dst.((2 * i) + 1) <- -.dst.((2 * i) + 1) *. scale
      done

let execute t x =
  let y = Cvec.create t.n in
  execute_into t ~src:x ~dst:y;
  y

let destroy t =
  if t.alive then begin
    t.alive <- false;
    match t.impl with
    | Direct { pool; _ } -> Option.iter Spiral_smp.Pool.shutdown pool
    | Chirp b -> Bluestein.destroy b
  end

let with_plan ?direction ?threads ?mu ?tree n f =
  let t = plan ?direction ?threads ?mu ?tree n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
