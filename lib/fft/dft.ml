open Spiral_util
open Spiral_rewrite

type direction = Forward | Inverse

type impl =
  | Direct of Engine.t
  | Chirp of Bluestein.t
      (** Sizes with prime factors beyond the codelet range. *)

type t = {
  n : int;
  direction : direction;
  impl : impl;
  conj_buf : Cvec.t option;
      (* plan-time conjugation scratch; Some iff direction = Inverse *)
  mutable alive : bool;
}

let plan ?(direction = Forward) ?(threads = 1) ?(mu = 4) ?(vec = `Off) ?tree n
    =
  if n < 1 then invalid_arg "Dft.plan: n >= 1";
  let impl =
    if Bluestein.supported_directly n || tree <> None then begin
      let custom = tree <> None in
      let tree =
        match tree with
        | Some t ->
            if Ruletree.size t <> n then
              invalid_arg "Dft.plan: ruletree size does not match n";
            t
        | None -> Ruletree.mixed_radix n
      in
      (* the inverse is the conjugated forward transform, so both
         directions share one engine (and one plan-registry entry) —
         including a vectorized one: the conjugation happens at the
         boundary, outside the split-layout plan *)
      let eng =
        try
          Engine.plan ~threads ~mu ~cache:(not custom) ~vec
            ~derive:(fun ~threads ~mu ->
              Planner.derive_formula ~threads ~mu ~tree n)
            (Problem.make Problem.Dft [ n ])
        with Invalid_argument msg -> invalid_arg ("Dft.plan: " ^ msg)
      in
      Direct eng
    end
    else Chirp (Bluestein.plan ~threads ~mu ~vec n)
  in
  let conj_buf = if direction = Inverse then Some (Cvec.create n) else None in
  { n; direction; impl; conj_buf; alive = true }

let n t = t.n

let threads t =
  match t.impl with Direct eng -> Engine.threads eng | Chirp _ -> 1

let parallel t =
  match t.impl with Direct eng -> Engine.parallel eng | Chirp _ -> false

let vectorized t =
  match t.impl with
  | Direct eng -> Engine.vectorized eng
  | Chirp b -> Bluestein.vectorized b

let formula t =
  match t.impl with
  | Direct eng -> Engine.formula eng
  | Chirp _ -> Spiral_spl.Formula.DFT t.n

let description t =
  let dir = match t.direction with Forward -> "forward" | Inverse -> "inverse" in
  match t.impl with
  | Direct eng ->
      Printf.sprintf "DFT_%d %s threads=%d\n%s" t.n dir (threads t)
        (Engine.describe eng)
  | Chirp b ->
      Printf.sprintf "DFT_%d %s via Bluestein (inner size %d)\n" t.n dir
        (Bluestein.inner_size b)

let forward_into t ~src ~dst =
  match t.impl with
  | Direct eng -> Engine.execute_into eng ~src ~dst
  | Chirp b -> Bluestein.execute_into b ~src ~dst

let execute_into t ~src ~dst =
  if not t.alive then invalid_arg "Dft: plan was destroyed";
  if Cvec.length src <> t.n || Cvec.length dst <> t.n then
    invalid_arg "Dft.execute: wrong vector length";
  match t.direction with
  | Forward -> forward_into t ~src ~dst
  | Inverse ->
      (* DFT⁻¹ = (1/n)·conj ∘ DFT ∘ conj, conjugating through the
         plan-owned scratch so the steady state allocates nothing *)
      let tmp = match t.conj_buf with Some b -> b | None -> assert false in
      for i = 0 to t.n - 1 do
        tmp.(2 * i) <- src.(2 * i);
        tmp.((2 * i) + 1) <- -.src.((2 * i) + 1)
      done;
      forward_into t ~src:tmp ~dst;
      let scale = 1.0 /. float_of_int t.n in
      for i = 0 to t.n - 1 do
        dst.(2 * i) <- dst.(2 * i) *. scale;
        dst.((2 * i) + 1) <- -.dst.((2 * i) + 1) *. scale
      done

let execute t x =
  let y = Cvec.create t.n in
  execute_into t ~src:x ~dst:y;
  y

let destroy t =
  if t.alive then begin
    t.alive <- false;
    match t.impl with
    | Direct eng -> Engine.destroy eng
    | Chirp b -> Bluestein.destroy b
  end

let with_plan ?direction ?threads ?mu ?vec ?tree n f =
  let t = plan ?direction ?threads ?mu ?vec ?tree n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
