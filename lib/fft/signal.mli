(** Signal-processing conveniences built on the DFT: the operations the
    paper's introduction motivates FFT libraries with. *)

val convolve : Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** Cyclic convolution of two equal-length signals via the convolution
    theorem: [IDFT (DFT x · DFT y)]. *)

val correlate : Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** Cyclic cross-correlation ([IDFT (conj (DFT x) · DFT y)]). *)

val power_spectrum : Spiral_util.Cvec.t -> float array
(** [|DFT x|²] per bin. *)

val pointwise_mul :
  Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t

val sine_wave : n:int -> freq:int -> ?amplitude:float -> unit -> Spiral_util.Cvec.t
(** Real sinusoid of [freq] cycles over [n] samples. *)

val dominant_bins : ?count:int -> float array -> (int * float) list
(** The [count] (default 4) largest-magnitude bins of a spectrum, sorted by
    decreasing power, restricted to the first half (real-signal symmetry). *)
