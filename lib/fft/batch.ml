open Spiral_util
open Spiral_spl
open Spiral_rewrite
open Spiral_codegen

type t = {
  count : int;
  n : int;
  plan : Plan.t;
  formula : Formula.t;
  pool : Spiral_smp.Pool.t option;
  prep : Spiral_smp.Par_exec.prepared option;
  mutable alive : bool;
}

let plan ?(threads = 1) ?(mu = 4) ~count n =
  if count < 1 || n < 1 then invalid_arg "Batch.plan: count and n >= 1";
  let top = Formula.Tensor (Formula.I count, Formula.DFT n) in
  let inner = Ruletree.expand (Ruletree.mixed_radix n) in
  let formula, p =
    if threads <= 1 then
      (Derive.substitute_nonterminals top [ inner ], 1)
    else
      match Parallel_rules.parallelize ~p:threads ~mu top with
      | Ok f when Props.fully_optimized ~p:threads ~mu f ->
          (Derive.substitute_nonterminals f [ inner ], threads)
      | Ok _ | Error _ -> (Derive.substitute_nonterminals top [ inner ], 1)
  in
  let plan = Plan.of_formula formula in
  let pool = if p > 1 then Some (Spiral_smp.Pool.create p) else None in
  let prep = Option.map (fun pl -> Spiral_smp.Par_exec.prepare pl plan) pool in
  { count; n; plan; formula; pool; prep; alive = true }

let count t = t.count
let n t = t.n
let parallel t = t.pool <> None
let formula t = t.formula

let execute t x =
  if not t.alive then invalid_arg "Batch: plan was destroyed";
  let total = t.count * t.n in
  if Cvec.length x <> total then invalid_arg "Batch.execute: wrong length";
  let y = Cvec.create total in
  (match t.prep with
  | Some prep -> Spiral_smp.Par_exec.execute_safe_prepared prep x y
  | None -> Plan.execute t.plan x y);
  y

let execute_many t xs =
  if not t.alive then invalid_arg "Batch: plan was destroyed";
  let total = t.count * t.n in
  Array.iter
    (fun x ->
      if Cvec.length x <> total then
        invalid_arg "Batch.execute_many: wrong length")
    xs;
  let ys = Array.map (fun _ -> Cvec.create total) xs in
  (match t.prep with
  | Some prep ->
      Spiral_smp.Par_exec.execute_many_safe prep
        (Array.mapi (fun i x -> (x, ys.(i))) xs)
  | None -> Array.iteri (fun i x -> Plan.execute t.plan x ys.(i)) xs);
  ys

let destroy t =
  if t.alive then begin
    t.alive <- false;
    Option.iter Spiral_smp.Pool.shutdown t.pool
  end

let with_plan ?threads ?mu ~count n f =
  let t = plan ?threads ?mu ~count n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
