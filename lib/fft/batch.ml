open Spiral_util
open Spiral_spl
open Spiral_rewrite

type t = { count : int; n : int; engine : Engine.t }

let derive ~count ~n ~threads ~mu =
  let top = Formula.Tensor (Formula.I count, Formula.DFT n) in
  let inner = Ruletree.expand (Ruletree.mixed_radix n) in
  if threads <= 1 then (Derive.substitute_nonterminals top [ inner ], 1)
  else
    match Parallel_rules.parallelize ~p:threads ~mu top with
    | Ok f when Props.fully_optimized ~p:threads ~mu f ->
        (Derive.substitute_nonterminals f [ inner ], threads)
    | Ok _ | Error _ -> (Derive.substitute_nonterminals top [ inner ], 1)

let plan ?(threads = 1) ?(mu = 4) ?(vec = `Off) ~count n =
  if count < 1 || n < 1 then invalid_arg "Batch.plan: count and n >= 1";
  let engine =
    Engine.plan ~threads ~mu ~vec ~derive:(derive ~count ~n)
      (Problem.make ~batch:count Problem.Dft [ n ])
  in
  { count; n; engine }

let count t = t.count
let n t = t.n
let parallel t = Engine.parallel t.engine
let formula t = Engine.formula t.engine

let execute t x =
  let y = Cvec.create (Engine.size t.engine) in
  Engine.execute_into t.engine ~src:x ~dst:y;
  y

let execute_many t xs =
  let total = Engine.size t.engine in
  let ys = Array.map (fun _ -> Cvec.create total) xs in
  Engine.execute_many t.engine (Array.mapi (fun i x -> (x, ys.(i))) xs);
  ys

let destroy t = Engine.destroy t.engine

let with_plan ?threads ?mu ?vec ~count n f =
  let t = plan ?threads ?mu ?vec ~count n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
