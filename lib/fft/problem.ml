type direction = Forward | Inverse

type kind = Dft | Wht | Dft2d | Rfft | Rdft2d | Dct

type t = {
  kind : kind;
  dims : int array;
  direction : direction;
  batch : int;
  vec : int;  (* requested short-vector length ν; 0 = scalar *)
}

let kind_to_string = function
  | Dft -> "dft"
  | Wht -> "wht"
  | Dft2d -> "dft2d"
  | Rfft -> "rfft"
  | Rdft2d -> "rdft2d"
  | Dct -> "dct"

let kind_of_string = function
  | "dft" -> Some Dft
  | "wht" -> Some Wht
  | "dft2d" -> Some Dft2d
  | "rfft" -> Some Rfft
  | "rdft2d" -> Some Rdft2d
  | "dct" -> Some Dct
  | _ -> None

let rank = function Dft | Wht | Rfft | Dct -> 1 | Dft2d | Rdft2d -> 2

let make ?(direction = Forward) ?(batch = 1) ?(vec = 0) kind dims =
  let dims = Array.of_list dims in
  if Array.length dims <> rank kind then
    invalid_arg
      (Printf.sprintf "Problem.make: %s expects %d dimension(s)"
         (kind_to_string kind) (rank kind));
  Array.iter (fun d -> if d < 1 then invalid_arg "Problem.make: dims >= 1") dims;
  if batch < 1 then invalid_arg "Problem.make: batch >= 1";
  if vec < 0 || vec = 1 then invalid_arg "Problem.make: vec is 0 or >= 2";
  { kind; dims; direction; batch; vec }

let kind t = t.kind
let dims t = Array.copy t.dims
let direction t = t.direction
let batch t = t.batch
let vec t = t.vec

let size t = Array.fold_left ( * ) 1 t.dims

let total t = t.batch * size t

(* Canonical form, e.g. "dft[1024]f", "dft2d[16x16]f", "dft[256]ix8",
   "dft[1024]fv4" (request short-vector lowering with ν = 4).  The
   string is the registry key: equal problems must render equal
   strings, distinct problems distinct strings. *)
let to_string t =
  let dims =
    String.concat "x" (Array.to_list (Array.map string_of_int t.dims))
  in
  let dir = match t.direction with Forward -> "f" | Inverse -> "i" in
  let vec = if t.vec = 0 then "" else Printf.sprintf "v%d" t.vec in
  let batch = if t.batch = 1 then "" else Printf.sprintf "x%d" t.batch in
  Printf.sprintf "%s[%s]%s%s%s" (kind_to_string t.kind) dims dir vec batch

let of_string s =
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some i, Some j when i < j -> (
      let kind_s = String.sub s 0 i in
      let dims_s = String.sub s (i + 1) (j - i - 1) in
      let rest = String.sub s (j + 1) (String.length s - j - 1) in
      let dir, tail =
        if String.length rest = 0 then (None, "")
        else
          ( (match rest.[0] with
            | 'f' -> Some Forward
            | 'i' -> Some Inverse
            | _ -> None),
            String.sub rest 1 (String.length rest - 1) )
      in
      let vec_s, batch_s =
        if String.length tail > 0 && tail.[0] = 'v' then
          match String.index_opt tail 'x' with
          | Some k -> (Some (String.sub tail 1 (k - 1)), String.sub tail k (String.length tail - k))
          | None -> (Some (String.sub tail 1 (String.length tail - 1)), "")
        else (None, tail)
      in
      (* a 'v' with no digits ("dft[64]fvx4") is malformed, not vec=0 *)
      let vec =
        match vec_s with None -> Some 0 | Some s -> int_of_string_opt s
      in
      let batch =
        if batch_s = "" then Some 1
        else if String.length batch_s > 1 && batch_s.[0] = 'x' then
          int_of_string_opt (String.sub batch_s 1 (String.length batch_s - 1))
        else None
      in
      let dims =
        let fields = String.split_on_char 'x' dims_s in
        let parsed = List.filter_map int_of_string_opt fields in
        if List.length parsed = List.length fields && parsed <> [] then
          Some parsed
        else None
      in
      match (kind_of_string kind_s, dims, dir, batch, vec) with
      | Some kind, Some dims, Some direction, Some batch, Some vec -> (
          try Some (make ~direction ~batch ~vec kind dims)
          with Invalid_argument _ -> None)
      | _ -> None)
  | _ -> None

let equal a b =
  a.kind = b.kind && a.direction = b.direction && a.batch = b.batch
  && a.vec = b.vec && a.dims = b.dims

let compare a b = compare (to_string a) (to_string b)

let hash t = Hashtbl.hash (to_string t)
