(** Bluestein's chirp-z algorithm: [DFT_n] for arbitrary [n] (including
    large primes) as a cyclic convolution of a supported power-of-two size
    [m >= 2n - 1].

    The generated-FFT machinery only has codelets for prime factors up to
    [Ruletree.leaf_max]; Bluestein closes the gap the way production FFT
    libraries do, reusing the generator for the inner size-[m] transforms.
    All chirp tables and the convolution kernel's spectrum are precomputed
    at plan time.  A plan owns mutable work buffers and is therefore not
    re-entrant: do not call {!execute_into} on the same plan from two
    threads at once. *)

type t

val supported_directly : int -> bool
(** [true] when the plain generator handles the size (all prime factors
    within codelet range) — callers prefer the direct path. *)

val plan : ?threads:int -> ?mu:int -> ?vec:Planner.vec_request -> int -> t
(** [plan n] prepares [DFT_n] for any [n >= 1].  [threads] parallelizes the
    inner power-of-two transforms when the multicore derivation applies;
    [vec] requests short-vector lowering of the same inner transforms
    (they share the engine registry entry with any other size-[m] plan
    carrying the same request). *)

val inner_size : t -> int
(** The power-of-two convolution size [m]. *)

val vectorized : t -> int
(** Vector length ν of the inner engine's plan; [0] when scalar. *)

val execute_into :
  t -> src:Spiral_util.Cvec.t -> dst:Spiral_util.Cvec.t -> unit

val destroy : t -> unit
