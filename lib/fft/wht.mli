(** Walsh-Hadamard transforms: the second transform of the framework
    (Section 2.2 — SPL covers "a large class of linear transforms").
    Same rewriting machinery, no twiddle factors. *)

type t

val plan : ?threads:int -> ?mu:int -> int -> t
(** [plan n] for [n] a power of two.  With [threads > 1] and
    [(pµ) | m, n] for some split, the parallel derivation of
    [Derive.multicore_wht] is used. *)

val n : t -> int
val parallel : t -> bool

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t

val destroy : t -> unit

val with_plan : ?threads:int -> ?mu:int -> int -> (t -> 'a) -> 'a
