open Spiral_util

type t = {
  n : int;
  fwd : Dft.t;
  inv : Dft.t;
  (* chirp[k] = exp (-i pi k / (2n)) *)
  chirp : float array;
  (* plan-time work buffers (n complex elements each): the reordered /
     rebuilt spectrum and the inner transform's output *)
  v : Cvec.t;
  f : Cvec.t;
}

let plan ?threads ?mu n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Dct.plan: length must be even and >= 2";
  let chirp = Array.make (2 * n) 0.0 in
  for k = 0 to n - 1 do
    let theta = -.Float.pi *. float_of_int k /. (2.0 *. float_of_int n) in
    chirp.(2 * k) <- cos theta;
    chirp.((2 * k) + 1) <- sin theta
  done;
  {
    n;
    fwd = Dft.plan ?threads ?mu n;
    inv = Dft.plan ~direction:Dft.Inverse ?threads ?mu n;
    chirp;
    v = Cvec.create n;
    f = Cvec.create n;
  }

let n t = t.n

let parallel t = Dft.parallel t.fwd

let forward_into t ~src ~dst =
  if Array.length src <> t.n then invalid_arg "Dct.forward: wrong length";
  if Array.length dst <> t.n then
    invalid_arg "Dct.forward: output needs n coefficients";
  let n = t.n in
  (* Makhoul reordering: v = [x0 x2 x4 … x5 x3 x1]. *)
  Cvec.fill_zero t.v;
  for j = 0 to (n / 2) - 1 do
    t.v.(2 * j) <- src.(2 * j);
    t.v.(2 * (n - 1 - j)) <- src.((2 * j) + 1)
  done;
  Dft.execute_into t.fwd ~src:t.v ~dst:t.f;
  (* C_k = Re (chirp_k · F_k) *)
  for k = 0 to n - 1 do
    let fr = t.f.(2 * k) and fi = t.f.((2 * k) + 1) in
    let wr = t.chirp.(2 * k) and wi = t.chirp.((2 * k) + 1) in
    dst.(k) <- (wr *. fr) -. (wi *. fi)
  done

let forward t x =
  let c = Array.make t.n 0.0 in
  forward_into t ~src:x ~dst:c;
  c

let inverse_into t ~src ~dst =
  if Array.length src <> t.n then invalid_arg "Dct.inverse: wrong length";
  if Array.length dst <> t.n then
    invalid_arg "Dct.inverse: output needs n samples";
  let n = t.n in
  let c = src in
  (* rebuild the spectrum: with Z_k = chirp_k · F_k Hermitian symmetry
     gives Z_{n-k} = -i · conj Z_k, hence C_k = Re Z_k and
     C_{n-k} = -Im Z_k (k >= 1), so
     F_k = conj(chirp_k) · (C_k - i C_{n-k}); F_0 = C_0. *)
  let f = t.f in
  f.(0) <- c.(0);
  f.(1) <- 0.0;
  for k = 1 to n - 1 do
    let zr = c.(k) and zi = -.c.(n - k) in
    let wr = t.chirp.(2 * k) and wi = -.t.chirp.((2 * k) + 1) in
    f.(2 * k) <- (wr *. zr) -. (wi *. zi);
    f.((2 * k) + 1) <- (wr *. zi) +. (wi *. zr)
  done;
  Dft.execute_into t.inv ~src:t.f ~dst:t.v;
  (* undo the even-odd reordering *)
  for j = 0 to (n / 2) - 1 do
    dst.(2 * j) <- t.v.(2 * j);
    dst.((2 * j) + 1) <- t.v.(2 * (n - 1 - j))
  done

let inverse t c =
  let x = Array.make t.n 0.0 in
  inverse_into t ~src:c ~dst:x;
  x

let destroy t =
  Dft.destroy t.fwd;
  Dft.destroy t.inv

let with_plan ?threads ?mu n f =
  let t = plan ?threads ?mu n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
