open Spiral_util

type t = {
  n : int;
  fwd : Dft.t;
  inv : Dft.t;
  (* chirp[k] = exp (-i pi k / (2n)) *)
  chirp : float array;
}

let plan ?threads ?mu n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Dct.plan: length must be even and >= 2";
  let chirp = Array.make (2 * n) 0.0 in
  for k = 0 to n - 1 do
    let theta = -.Float.pi *. float_of_int k /. (2.0 *. float_of_int n) in
    chirp.(2 * k) <- cos theta;
    chirp.((2 * k) + 1) <- sin theta
  done;
  {
    n;
    fwd = Dft.plan ?threads ?mu n;
    inv = Dft.plan ~direction:Dft.Inverse ?threads ?mu n;
    chirp;
  }

let n t = t.n

(* Makhoul reordering: v = [x0 x2 x4 … x5 x3 x1]. *)
let reorder t x =
  let n = t.n in
  let v = Cvec.create n in
  for j = 0 to (n / 2) - 1 do
    v.(2 * j) <- x.(2 * j);
    v.(2 * (n - 1 - j)) <- x.((2 * j) + 1)
  done;
  v

let forward t x =
  if Array.length x <> t.n then invalid_arg "Dct.forward: wrong length";
  let n = t.n in
  let f = Dft.execute t.fwd (reorder t x) in
  (* C_k = Re (chirp_k · F_k) *)
  let c = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let fr = f.(2 * k) and fi = f.((2 * k) + 1) in
    let wr = t.chirp.(2 * k) and wi = t.chirp.((2 * k) + 1) in
    c.(k) <- (wr *. fr) -. (wi *. fi)
  done;
  c

let inverse t c =
  if Array.length c <> t.n then invalid_arg "Dct.inverse: wrong length";
  let n = t.n in
  (* rebuild the spectrum: with Z_k = chirp_k · F_k Hermitian symmetry
     gives Z_{n-k} = -i · conj Z_k, hence C_k = Re Z_k and
     C_{n-k} = -Im Z_k (k >= 1), so
     F_k = conj(chirp_k) · (C_k - i C_{n-k}); F_0 = C_0. *)
  let f = Cvec.create n in
  f.(0) <- c.(0);
  f.(1) <- 0.0;
  for k = 1 to n - 1 do
    let zr = c.(k) and zi = -.c.(n - k) in
    let wr = t.chirp.(2 * k) and wi = -.t.chirp.((2 * k) + 1) in
    f.(2 * k) <- (wr *. zr) -. (wi *. zi);
    f.((2 * k) + 1) <- (wr *. zi) +. (wi *. zr)
  done;
  let v = Dft.execute t.inv f in
  (* undo the even-odd reordering *)
  let x = Array.make n 0.0 in
  for j = 0 to (n / 2) - 1 do
    x.(2 * j) <- v.(2 * j);
    x.((2 * j) + 1) <- v.(2 * (n - 1 - j))
  done;
  x

let destroy t =
  Dft.destroy t.fwd;
  Dft.destroy t.inv

let with_plan ?threads ?mu n f =
  let t = plan ?threads ?mu n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
