open Spiral_util
open Spiral_codegen

(* --------------------------------------------------------------- *)
(* Descriptor-keyed plan registry: one compiled plan per (problem,
   threads, mu).  Hits hand out Plan.clone — immutable state (kernels,
   index tables, twiddles) is shared, buffers and contexts are fresh —
   so repeated planning of the same problem skips derivation and
   materialization entirely. *)

type registry_entry = {
  formula : Spiral_spl.Formula.t;
  p : int;
  nu : int;  (* achieved short-vector length; 0 = scalar interleaved *)
  master : Plan.t;
}

let registry : (string, registry_entry) Hashtbl.t = Hashtbl.create 32
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let registry_key problem ~threads ~mu ~vec ~flavor =
  Printf.sprintf "%s p%d mu%d %s%s" (Problem.to_string problem) threads mu
    (Planner.vec_request_to_string vec)
    (if flavor = "" then "" else " " ^ flavor)

let registry_size () = with_registry (fun () -> Hashtbl.length registry)

let reset_registry () = with_registry (fun () -> Hashtbl.reset registry)

(* --------------------------------------------------------------- *)

type t = {
  problem : Problem.t;
  formula : Spiral_spl.Formula.t;
  plan : Plan.t;
  p : int;
  nu : int;  (* achieved short-vector length; 0 = scalar interleaved *)
  planar : (float array * float array) option;
      (* boundary buffers of a split-layout plan: interleaved callers
         are transposed in/out of these planar re/im vectors.
         Some iff nu > 0 *)
  pool : Spiral_smp.Pool.t option;
  prep : Spiral_smp.Par_exec.prepared option;
      (* the one prepared-schedule ownership site of the library:
         Some iff pool is Some *)
  mutable scratch : Cvec.t option;  (* lazily allocated, [total] elements *)
  mutable alive : bool;
}

let plan ?(threads = 1) ?(mu = 4) ?(cache = true) ?vec ?validate
    ?(flavor = "") ?derive_ir ~derive problem =
  if threads < 1 then invalid_arg "Engine.plan: threads >= 1";
  if mu < 1 then invalid_arg "Engine.plan: mu >= 1";
  let vec =
    match vec with
    | Some v -> v
    | None -> (
        match Problem.vec problem with 0 -> `Off | nu -> `Nu nu)
  in
  let total = Problem.total problem in
  (* IR-derived plans (the stitched 2D schedules): the front-end hands a
     finished pass list plus the formula it stands for; vectorization
     does not apply, and a failed certificate recompiles the same IR
     without fusion onto the sequential path *)
  let compile_ir di =
    Trace.begin_span 0 Trace.cat_plan total;
    let ir, dformula, p = di ~threads ~mu in
    let plan =
      try Plan.of_ir ir
      with Ir.Unsupported msg -> invalid_arg ("Engine.plan: " ^ msg)
    in
    let entry =
      match
        Spiral_validate.validate_plan_result ?mode:validate ~workers:p plan
      with
      | Ok () -> { formula = dformula; p; nu = 0; master = plan }
      | Error _ ->
          Counters.incr "engine.validation_fallback";
          Trace.mark 0 Trace.cat_fallback total;
          let fallback =
            try Plan.of_ir ~fuse:false ir
            with Ir.Unsupported msg -> invalid_arg ("Engine.plan: " ^ msg)
          in
          { formula = dformula; p = 1; nu = 0; master = fallback }
    in
    Trace.end_span 0 Trace.cat_plan total;
    entry
  in
  let compile_formula () =
    Trace.begin_span 0 Trace.cat_plan total;
    let dformula, p = derive ~threads ~mu in
    let vformula, nu, vcert =
      Planner.vectorize_formula_certified ~vec dformula
    in
    let formula, nu, plan =
      if nu > 0 then
        (* vectorized formulas compile to split re/im plans; if the
           lowered formula somehow does not compile, fall back to the
           scalar derivation rather than failing the whole plan *)
        match Plan.of_formula ~layout:Plan.Split vformula with
        | plan ->
            Counters.incr "vec.plan_split";
            (vformula, nu, plan)
        | exception Ir.Unsupported _ ->
            Counters.incr "vec.compile_fail";
            let plan =
              try Plan.of_formula dformula
              with Ir.Unsupported msg -> invalid_arg ("Engine.plan: " ^ msg)
            in
            (dformula, 0, plan)
      else
        let plan =
          try Plan.of_formula dformula
          with Ir.Unsupported msg -> invalid_arg ("Engine.plan: " ^ msg)
        in
        (dformula, 0, plan)
    in
    (* discharge the optimizer certificates before the plan can execute
       or enter the registry: fusion, barrier elision, partition/split
       coverage, and — when the plan is vectorized — the vec lowering *)
    let entry =
      match
        Spiral_validate.validate_plan_result ?mode:validate ~workers:p
          ?vec:(if nu > 0 then vcert else None)
          plan
      with
      | Ok () -> { formula; p; nu; master = plan }
      | Error _ ->
          (* a certificate failed its check: never execute the suspect
             plan.  Recompile the scalar derivation without fusion and
             run it on the existing sequential path (p = 1, no pool). *)
          Counters.incr "engine.validation_fallback";
          Trace.mark 0 Trace.cat_fallback total;
          let fallback =
            try Plan.of_formula ~fuse:false dformula
            with Ir.Unsupported msg -> invalid_arg ("Engine.plan: " ^ msg)
          in
          { formula = dformula; p = 1; nu = 0; master = fallback }
    in
    Trace.end_span 0 Trace.cat_plan total;
    entry
  in
  let compile () =
    match derive_ir with
    | Some di -> compile_ir di
    | None -> compile_formula ()
  in
  let formula, p, nu, plan =
    if not cache then
      let e = compile () in
      (e.formula, e.p, e.nu, e.master)
    else
      let key = registry_key problem ~threads ~mu ~vec ~flavor in
      match with_registry (fun () -> Hashtbl.find_opt registry key) with
      | Some e ->
          Counters.incr "engine.plan_reuse";
          (e.formula, e.p, e.nu, Plan.clone e.master)
      | None ->
          (* compile outside the lock (derivation can be slow); a racing
             second planner at worst compiles a duplicate and the first
             stored entry wins *)
          let e = compile () in
          let e =
            with_registry (fun () ->
                match Hashtbl.find_opt registry key with
                | Some prior -> prior
                | None ->
                    Hashtbl.replace registry key e;
                    e)
          in
          (e.formula, e.p, e.nu, Plan.clone e.master)
  in
  if threads > 1 && p <= 1 then begin
    Counters.incr "engine.seq_fallback";
    Trace.mark 0 Trace.cat_fallback total
  end;
  let pool = if p > 1 then Some (Spiral_smp.Pool_registry.acquire p) else None in
  let prep =
    Option.map
      (fun pl ->
        Trace.begin_span 0 Trace.cat_prepare total;
        let prep = Spiral_smp.Par_exec.prepare pl plan in
        Trace.end_span 0 Trace.cat_prepare total;
        prep)
      pool
  in
  let planar =
    if nu > 0 then
      Some (Array.make (2 * total) 0.0, Array.make (2 * total) 0.0)
    else None
  in
  { problem; formula; plan; p; nu; planar; pool; prep; scratch = None;
    alive = true }

let problem t = t.problem
let formula t = t.formula
let size t = Problem.total t.problem
let threads t = t.p
let parallel t = t.pool <> None
let vectorized t = t.nu
let alive t = t.alive

let barriers t =
  if t.pool = None then 0
  else
    let mask = Spiral_smp.Par_exec.elision_mask ~workers:t.p t.plan in
    Array.fold_left (fun acc e -> if e then acc else acc + 1) 0 mask

let describe t =
  let vec = if t.nu > 0 then Printf.sprintf " vec=%d" t.nu else "" in
  Printf.sprintf "%s threads=%d%s\n%s" (Problem.to_string t.problem) t.p vec
    (Plan.describe t.plan)

let check_alive t = if not t.alive then invalid_arg "Engine: plan was destroyed"

let run_plan t src dst =
  match t.prep with
  | Some prep -> Spiral_smp.Par_exec.execute_safe_prepared prep src dst
  | None -> Plan.execute t.plan src dst

(* Split-layout plans read and write planar re/im vectors; interleaved
   callers are transposed through the engine-owned boundary buffers.
   The two transposes are O(n) sequential work against the O(n log n)
   transform — the same trade the paper's split-complex backends make. *)
let run_boundary t src dst =
  match t.planar with
  | Some (px, py) ->
      Cvec.to_planar src px;
      run_plan t px py;
      Cvec.of_planar py dst
  | None -> run_plan t src dst

let execute_into t ~src ~dst =
  check_alive t;
  let n = Problem.total t.problem in
  if Cvec.length src <> n || Cvec.length dst <> n then
    invalid_arg "Engine.execute_into: wrong vector length";
  Trace.begin_span 0 Trace.cat_execute n;
  run_boundary t src dst;
  Trace.end_span 0 Trace.cat_execute n

let execute t x =
  let y = Cvec.create (Problem.total t.problem) in
  execute_into t ~src:x ~dst:y;
  y

let execute_many t jobs =
  check_alive t;
  let n = Problem.total t.problem in
  Array.iter
    (fun (x, y) ->
      if Cvec.length x <> n || Cvec.length y <> n then
        invalid_arg "Engine.execute_many: wrong vector length")
    jobs;
  Trace.begin_span 0 Trace.cat_execute n;
  (match (t.planar, t.prep) with
  | Some _, _ ->
      (* split layout: each job crosses the planar boundary buffers, so
         the batch runs one transform at a time (each still parallel
         inside when the engine is) *)
      Array.iter (fun (x, y) -> run_boundary t x y) jobs
  | None, Some prep -> Spiral_smp.Par_exec.execute_many_safe prep jobs
  | None, None -> Array.iter (fun (x, y) -> Plan.execute t.plan x y) jobs);
  Trace.end_span 0 Trace.cat_execute n

let scratch t =
  check_alive t;
  match t.scratch with
  | Some s -> s
  | None ->
      let s = Cvec.create (Problem.total t.problem) in
      t.scratch <- Some s;
      s

let destroy t =
  if t.alive then begin
    t.alive <- false;
    (* retire any resident region before the pool goes back to the
       registry: an abandoned region would occupy the shared pool until
       another plan evicts it or its idle decay fires *)
    Option.iter Spiral_smp.Par_exec.release t.prep;
    Option.iter Spiral_smp.Pool_registry.release t.pool
  end

(* --------------------------------------------------------------- *)
(* Structured errors: the service boundary of the engine.  A resident
   daemon answering untrusted descriptors must turn every failure mode
   into a value it can put in an error reply — an exception escaping to
   the server loop is a crash, and a crash takes every tenant down. *)

type error =
  | Bad_descriptor of string
  | Too_large of { total : int; limit : int }
  | Unsupported of string
  | Destroyed
  | Bad_length of { expected : int; got : int }
  | Failed of string

let error_to_string = function
  | Bad_descriptor s -> Printf.sprintf "unparseable problem descriptor %S" s
  | Too_large { total; limit } ->
      Printf.sprintf
        "problem too large: %d elements exceeds the admission limit %d" total
        limit
  | Unsupported msg -> "unsupported problem: " ^ msg
  | Destroyed -> "plan was destroyed"
  | Bad_length { expected; got } ->
      Printf.sprintf "payload length mismatch: expected %d complex elements, \
                      got %d" expected got
  | Failed msg -> "execution failed: " ^ msg

let default_total_limit = 1 lsl 22

let parse_problem ?(limit = default_total_limit) s =
  match Problem.of_string s with
  | None -> Error (Bad_descriptor s)
  | Some p ->
      let total = Problem.total p in
      if total > limit then Error (Too_large { total; limit }) else Ok p

let execute_into_checked t ~src ~dst =
  if not t.alive then Error Destroyed
  else begin
    let n = Problem.total t.problem in
    let ls = Cvec.length src and ld = Cvec.length dst in
    if ls <> n then Error (Bad_length { expected = n; got = ls })
    else if ld <> n then Error (Bad_length { expected = n; got = ld })
    else
      match execute_into t ~src ~dst with
      | () -> Ok ()
      | exception e -> Error (Failed (Printexc.to_string e))
  end
