open Spiral_util
open Spiral_rewrite

type t = {
  n : int;
  m : int;  (* convolution size: power of two >= 2n - 1 *)
  chirp : float array;  (* c[j] = exp(-i pi j^2 / n), interleaved, n entries *)
  kernel_spectrum : float array;  (* DFT_m of the padded conj-chirp *)
  inner : Engine.t;  (* forward DFT_m through the unified engine *)
  (* work buffers (2m floats each) *)
  buf_b : float array;
  buf_fb : float array;
  buf_conv : float array;
  mutable alive : bool;
}

let supported_directly n =
  n >= 1
  && List.for_all (fun f -> f <= Ruletree.leaf_max) (Int_util.prime_factors n)

let next_pow2 v =
  let rec go m = if m >= v then m else go (2 * m) in
  go 1

(* c[j] = exp (-i pi (j^2 mod 2n) / n): j^2 reduced mod 2n keeps the
   argument small (the chirp has period 2n in j). *)
let chirp_table n =
  let t = Array.make (2 * n) 0.0 in
  for j = 0 to n - 1 do
    let j2 = j * j mod (2 * n) in
    let theta = -.Float.pi *. float_of_int j2 /. float_of_int n in
    t.(2 * j) <- cos theta;
    t.((2 * j) + 1) <- sin theta
  done;
  t

let run_inner t src dst = Engine.execute_into t.inner ~src ~dst

let plan ?(threads = 1) ?(mu = 4) ?(vec = `Off) n =
  if n < 1 then invalid_arg "Bluestein.plan: n >= 1";
  let m = next_pow2 ((2 * n) - 1) in
  let chirp = chirp_table n in
  (* the inner problem is a plain forward DFT_m: it shares the plan
     registry entry (and the pool) with any other size-m transform
     planned with the same vec request — all three inner calls per
     execution run the one (possibly vectorized) plan *)
  let inner =
    Engine.plan ~threads ~mu ~vec
      ~derive:(fun ~threads ~mu ->
        Planner.derive_formula ~threads ~mu ~tree:(Ruletree.mixed_radix m) m)
      (Problem.make Problem.Dft [ m ])
  in
  let t =
    {
      n;
      m;
      chirp;
      kernel_spectrum = Array.make (2 * m) 0.0;
      inner;
      buf_b = Array.make (2 * m) 0.0;
      buf_fb = Array.make (2 * m) 0.0;
      buf_conv = Array.make (2 * m) 0.0;
      alive = true;
    }
  in
  (* kernel h[j] = conj c[|j|] placed cyclically: h_m[j] = h[j] for
     j < n, h_m[m - j] = h[j] for 0 < j < n, zero elsewhere *)
  let h = Array.make (2 * m) 0.0 in
  let put idx re im =
    h.(2 * idx) <- re;
    h.((2 * idx) + 1) <- im
  in
  for j = 0 to n - 1 do
    let re = chirp.(2 * j) and im = -.chirp.((2 * j) + 1) in
    put j re im;
    if j > 0 then put (m - j) re im
  done;
  let spec = Array.make (2 * m) 0.0 in
  run_inner t h spec;
  Array.blit spec 0 t.kernel_spectrum 0 (2 * m);
  t

let inner_size t = t.m
let vectorized t = Engine.vectorized t.inner

let execute_into t ~src ~dst =
  if not t.alive then invalid_arg "Bluestein: plan was destroyed";
  if Cvec.length src <> t.n || Cvec.length dst <> t.n then
    invalid_arg "Bluestein.execute_into: wrong vector length";
  let n = t.n and m = t.m in
  let c = t.chirp in
  (* b[j] = x[j] * c[j], zero-padded to m *)
  Array.fill t.buf_b 0 (2 * m) 0.0;
  for j = 0 to n - 1 do
    let xr = src.(2 * j) and xi = src.((2 * j) + 1) in
    let cr = c.(2 * j) and ci = c.((2 * j) + 1) in
    t.buf_b.(2 * j) <- (xr *. cr) -. (xi *. ci);
    t.buf_b.((2 * j) + 1) <- (xr *. ci) +. (xi *. cr)
  done;
  (* B = DFT_m b; pointwise multiply with the kernel spectrum *)
  run_inner t t.buf_b t.buf_fb;
  let fb = t.buf_fb and ks = t.kernel_spectrum in
  for j = 0 to m - 1 do
    let br = fb.(2 * j) and bi = fb.((2 * j) + 1) in
    let hr = ks.(2 * j) and hi = ks.((2 * j) + 1) in
    (* conj the product: first half of IDFT-via-conj *)
    fb.(2 * j) <- (br *. hr) -. (bi *. hi);
    fb.((2 * j) + 1) <- -.((br *. hi) +. (bi *. hr))
  done;
  (* IDFT_m via conj(DFT_m(conj z)) / m: fb already conjugated *)
  run_inner t t.buf_fb t.buf_conv;
  let inv_m = 1.0 /. float_of_int m in
  (* y[k] = c[k] * conv[k] (conv needs the final conj + scaling) *)
  for k = 0 to n - 1 do
    let vr = t.buf_conv.(2 * k) *. inv_m
    and vi = -.t.buf_conv.((2 * k) + 1) *. inv_m in
    let cr = c.(2 * k) and ci = c.((2 * k) + 1) in
    dst.(2 * k) <- (vr *. cr) -. (vi *. ci);
    dst.((2 * k) + 1) <- (vr *. ci) +. (vi *. cr)
  done

let destroy t =
  if t.alive then begin
    t.alive <- false;
    Engine.destroy t.inner
  end
