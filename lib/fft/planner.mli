(** Internal planning policy shared by {!Dft} and {!Bluestein}: choose a
    formula (multicore when the paper's divisibility condition allows,
    sequential otherwise) for a given size and machine parameters. *)

val find_top_split : p:int -> mu:int -> int -> int option
(** A divisor [m] of [n] with [pµ | m] and [pµ | n/m] (most balanced),
    the existence condition of the multicore Cooley-Tukey formula. *)

val derive_formula :
  threads:int ->
  mu:int ->
  tree:Spiral_rewrite.Ruletree.t ->
  int ->
  Spiral_spl.Formula.t * int
(** [(formula, p)]: the formula to compile and the worker count actually
    used ([1] when the multicore derivation is not applicable). *)

type vec_request = [ `Off | `Auto | `Nu of int ]
(** Short-vector lowering request: [`Off] keeps the scalar formula,
    [`Nu ν] demands vector length ν, [`Auto] tries ν = 4 then ν = 2 and
    falls back to scalar.  Lowered formulas compile to split re/im
    (planar) plans executed by the blocked {!Spiral_codegen.Vcodelet}
    path, and to SIMD intrinsics under {!Spiral_codegen.C_emit.to_c}. *)

val vec_request_to_string : vec_request -> string
(** Deterministic tag ("v0", "va", "v4", …) for registry keys. *)

val vectorize_formula_certified :
  vec:vec_request ->
  Spiral_spl.Formula.t ->
  Spiral_spl.Formula.t * int * Spiral_validate.vec_cert option
(** As {!vectorize_formula}, additionally returning the lowering
    certificate (scalar formula, lowered formula, ν) for
    [Spiral_validate.check_vectorization] to discharge; [None] iff the
    achieved ν is 0. *)

val vectorize_formula :
  vec:vec_request -> Spiral_spl.Formula.t -> Spiral_spl.Formula.t * int
(** [(g, ν)]: the vectorized formula and the vector length achieved, or
    [(f, 0)] unchanged when [`Off] or when no requested ν passes
    {!Spiral_rewrite.Props.vectorized} (counted under [vec.lowered] /
    [vec.lower_fail]).  Works on any derived formula — the composition
    is identical to [Derive.short_vector_dft] /
    [Derive.multicore_vector_dft]. *)
