(** Internal planning policy shared by {!Dft} and {!Bluestein}: choose a
    formula (multicore when the paper's divisibility condition allows,
    sequential otherwise) for a given size and machine parameters. *)

val find_top_split : p:int -> mu:int -> int -> int option
(** A divisor [m] of [n] with [pµ | m] and [pµ | n/m] (most balanced),
    the existence condition of the multicore Cooley-Tukey formula. *)

val derive_formula :
  threads:int ->
  mu:int ->
  tree:Spiral_rewrite.Ruletree.t ->
  int ->
  Spiral_spl.Formula.t * int
(** [(formula, p)]: the formula to compile and the worker count actually
    used ([1] when the multicore derivation is not applicable). *)
