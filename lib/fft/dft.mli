(** The user-facing DFT interface: plan once, execute many times.

    A plan fixes the transform size, direction, the factorization
    (ruletree), the machine parameters (threads [p], cache line length [µ])
    and the execution backend.  When [threads > 1] and the size satisfies
    the paper's divisibility condition ([(pµ)² | n] with a suitable top
    split), planning derives the multicore Cooley-Tukey formula (14) and
    executes on a persistent domain pool with spin barriers; otherwise it
    falls back to the best sequential formula. *)

type direction = Forward | Inverse

type t

val plan :
  ?direction:direction ->
  ?threads:int ->
  ?mu:int ->
  ?vec:Planner.vec_request ->
  ?tree:Spiral_rewrite.Ruletree.t ->
  int ->
  t
(** [plan n] creates a plan for [DFT_n], any [n >= 1].  Defaults:
    [Forward], 1 thread, [mu = 4] (64-byte lines, complex doubles),
    [vec = `Off], the standard mixed-radix ruletree.  [vec] requests
    short-vector lowering ({!Planner.vec_request}); both directions
    share one (possibly vectorized) engine — the inverse is the
    conjugated forward transform, and the conjugation happens outside
    the split-layout plan.  Sizes with prime factors beyond the codelet
    range transparently use Bluestein's chirp-z algorithm over a
    generated power-of-two transform, whose inner transforms honour the
    same [vec] request.  @raise Invalid_argument if [n < 1] or the tree
    size does not match. *)

val n : t -> int

val threads : t -> int
(** Number of worker domains actually used (1 when the multicore
    derivation was not applicable). *)

val parallel : t -> bool
(** [true] when the plan executes the multicore Cooley-Tukey formula. *)

val vectorized : t -> int
(** Vector length ν achieved by short-vector lowering ([0] when the plan
    is scalar — either [vec = `Off] or the lowering did not apply). *)

val formula : t -> Spiral_spl.Formula.t

val description : t -> string

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** [execute t x] returns the transform of [x] (length [n]). *)

val execute_into : t -> src:Spiral_util.Cvec.t -> dst:Spiral_util.Cvec.t -> unit
(** In-place-free variant; [src] and [dst] must be distinct. *)

val destroy : t -> unit
(** Shuts down the worker pool (no-op for sequential plans).  The plan must
    not be used afterwards. *)

val with_plan :
  ?direction:direction ->
  ?threads:int ->
  ?mu:int ->
  ?vec:Planner.vec_request ->
  ?tree:Spiral_rewrite.Ruletree.t ->
  int ->
  (t -> 'a) ->
  'a
(** Scoped plan: always destroyed on exit. *)
