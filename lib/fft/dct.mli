(** Type-II discrete cosine transforms via the FFT (Makhoul's even-odd
    reordering): one complex [DFT_n] plus O(n) twiddling — the transform
    behind JPEG/audio coding, demonstrating the generator on a transform
    beyond the DFT/WHT.

    Convention (unnormalized DCT-II):
    [C_k = Σ_j x_j · cos(π k (2j + 1) / (2n))]. *)

type t

val plan : ?threads:int -> ?mu:int -> int -> t
(** [plan n] for even [n >= 2]. *)

val n : t -> int

val forward : t -> float array -> float array
(** Real input of length [n] to the [n] DCT-II coefficients. *)

val inverse : t -> float array -> float array
(** Exact inverse of {!forward} (the scaled DCT-III). *)

val destroy : t -> unit

val with_plan : ?threads:int -> ?mu:int -> int -> (t -> 'a) -> 'a
