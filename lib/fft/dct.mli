(** Type-II discrete cosine transforms via the FFT (Makhoul's even-odd
    reordering): one complex [DFT_n] plus O(n) twiddling — the transform
    behind JPEG/audio coding, demonstrating the generator on a transform
    beyond the DFT/WHT.

    Convention (unnormalized DCT-II):
    [C_k = Σ_j x_j · cos(π k (2j + 1) / (2n))].

    The inner complex transforms run through the unified {!Engine}
    (supervised prepared parallel execution when [threads > 1]); all work
    buffers live in the plan, so the {!forward_into}/{!inverse_into}
    steady state allocates nothing. *)

type t

val plan : ?threads:int -> ?mu:int -> int -> t
(** [plan n] for even [n >= 2]. *)

val n : t -> int

val parallel : t -> bool
(** [true] when the inner DFT executes the multicore formula. *)

val forward : t -> float array -> float array
(** Real input of length [n] to the [n] DCT-II coefficients. *)

val forward_into : t -> src:float array -> dst:float array -> unit
(** As {!forward} into a caller-provided length-[n] array;
    allocation-free in steady state.  Not re-entrant: the plan owns the
    reorder buffers. *)

val inverse : t -> float array -> float array
(** Exact inverse of {!forward} (the scaled DCT-III). *)

val inverse_into : t -> src:float array -> dst:float array -> unit
(** As {!inverse} into a caller-provided length-[n] array;
    allocation-free in steady state. *)

val destroy : t -> unit

val with_plan : ?threads:int -> ?mu:int -> int -> (t -> 'a) -> 'a
