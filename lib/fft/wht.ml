open Spiral_util
open Spiral_spl
open Spiral_rewrite

type t = { engine : Engine.t }

let seq_formula n =
  let rec split n =
    if n <= Ruletree.leaf_max then Formula.WHT n
    else
      Formula.compose
        [ Formula.Tensor (Formula.WHT 2, Formula.I (n / 2));
          Formula.Tensor (Formula.I 2, split (n / 2)) ]
  in
  split n

let derive n ~threads ~mu =
  if threads <= 1 || n < Int_util.pow (threads * mu) 2 then (seq_formula n, 1)
  else
    (* most balanced power split with pµ | both halves *)
    let rec half m = if m * m >= n then m else half (2 * m) in
    let m = half (threads * mu) in
    match Derive.multicore_wht ~p:threads ~mu ~m ~n:(n / m) with
    | Ok f -> (f, threads)
    | Error _ -> (seq_formula n, 1)

let plan ?(threads = 1) ?(mu = 4) n =
  if not (Int_util.is_pow2 n) then invalid_arg "Wht.plan: n must be 2^k";
  { engine = Engine.plan ~threads ~mu ~derive:(derive n) (Problem.make Problem.Wht [ n ]) }

let n t = Engine.size t.engine
let parallel t = Engine.parallel t.engine

let execute t x =
  let y = Cvec.create (Engine.size t.engine) in
  Engine.execute_into t.engine ~src:x ~dst:y;
  y

let destroy t = Engine.destroy t.engine

let with_plan ?threads ?mu n f =
  let t = plan ?threads ?mu n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
