open Spiral_util
open Spiral_spl
open Spiral_rewrite
open Spiral_codegen

type t = {
  n : int;
  plan : Plan.t;
  pool : Spiral_smp.Pool.t option;
  prep : Spiral_smp.Par_exec.prepared option;
  mutable alive : bool;
}

let seq_formula n =
  let rec split n =
    if n <= Ruletree.leaf_max then Formula.WHT n
    else
      Formula.compose
        [ Formula.Tensor (Formula.WHT 2, Formula.I (n / 2));
          Formula.Tensor (Formula.I 2, split (n / 2)) ]
  in
  split n

let plan ?(threads = 1) ?(mu = 4) n =
  if not (Int_util.is_pow2 n) then invalid_arg "Wht.plan: n must be 2^k";
  let formula, p =
    if threads <= 1 || n < Int_util.pow (threads * mu) 2 then (seq_formula n, 1)
    else
      (* most balanced power split with pµ | both halves *)
      let rec half m = if m * m >= n then m else half (2 * m) in
      let m = half (threads * mu) in
      match Derive.multicore_wht ~p:threads ~mu ~m ~n:(n / m) with
      | Ok f -> (f, threads)
      | Error _ -> (seq_formula n, 1)
  in
  let plan = Plan.of_formula formula in
  let pool = if p > 1 then Some (Spiral_smp.Pool.create p) else None in
  let prep = Option.map (fun pl -> Spiral_smp.Par_exec.prepare pl plan) pool in
  { n; plan; pool; prep; alive = true }

let n t = t.n
let parallel t = t.pool <> None

let execute t x =
  if not t.alive then invalid_arg "Wht: plan was destroyed";
  if Cvec.length x <> t.n then invalid_arg "Wht.execute: wrong length";
  let y = Cvec.create t.n in
  (match t.prep with
  | Some prep -> Spiral_smp.Par_exec.execute_safe_prepared prep x y
  | None -> Plan.execute t.plan x y);
  y

let destroy t =
  if t.alive then begin
    t.alive <- false;
    Option.iter Spiral_smp.Pool.shutdown t.pool
  end

let with_plan ?threads ?mu n f =
  let t = plan ?threads ?mu n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
