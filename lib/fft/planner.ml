open Spiral_util
open Spiral_rewrite

let find_top_split ~p ~mu n =
  let q = p * mu in
  let candidates =
    Int_util.divisors n
    |> List.filter (fun m -> m mod q = 0 && (n / m) mod q = 0 && m <= n / m)
  in
  match List.rev candidates with m :: _ -> Some m | [] -> None

let derive_formula ~threads ~mu ~tree n =
  if threads <= 1 then (Ruletree.expand tree, 1)
  else
    let try_tree =
      match tree with
      | Ruletree.Ct (l, r)
        when Ruletree.size l mod (threads * mu) = 0
             && Ruletree.size r mod (threads * mu) = 0 ->
          Some tree
      | _ -> (
          match find_top_split ~p:threads ~mu n with
          | Some m ->
              Some
                (Ruletree.Ct
                   (Ruletree.mixed_radix m, Ruletree.mixed_radix (n / m)))
          | None -> None)
    in
    match try_tree with
    | None -> (Ruletree.expand tree, 1)
    | Some t -> (
        match Derive.multicore_dft ~p:threads ~mu t with
        | Ok f -> (f, threads)
        | Error _ -> (Ruletree.expand tree, 1))
