open Spiral_util
open Spiral_rewrite

let find_top_split ~p ~mu n =
  let q = p * mu in
  let candidates =
    Int_util.divisors n
    |> List.filter (fun m -> m mod q = 0 && (n / m) mod q = 0 && m <= n / m)
  in
  match List.rev candidates with m :: _ -> Some m | [] -> None

let derive_formula ~threads ~mu ~tree n =
  if threads <= 1 then (Ruletree.expand tree, 1)
  else
    let try_tree =
      match tree with
      | Ruletree.Ct (l, r)
        when Ruletree.size l mod (threads * mu) = 0
             && Ruletree.size r mod (threads * mu) = 0 ->
          Some tree
      | _ -> (
          match find_top_split ~p:threads ~mu n with
          | Some m ->
              Some
                (Ruletree.Ct
                   (Ruletree.mixed_radix m, Ruletree.mixed_radix (n / m)))
          | None -> None)
    in
    match try_tree with
    | None -> (Ruletree.expand tree, 1)
    | Some t -> (
        match Derive.multicore_dft ~p:threads ~mu t with
        | Ok f -> (f, threads)
        | Error _ -> (Ruletree.expand tree, 1))

(* Short-vector lowering as post-processing of any derived formula:
   [Derive.short_vector_dft] and [Derive.multicore_vector_dft] are
   exactly [Vector_rules.vectorize] composed after the scalar
   derivations, so the same composition applies to every formula the
   planner produces, for every transform kind. *)

type vec_request = [ `Off | `Auto | `Nu of int ]

let vec_request_to_string = function
  | `Off -> "v0"
  | `Auto -> "va"
  | `Nu nu -> Printf.sprintf "v%d" nu

let vectorize_formula_certified ~vec f =
  match vec with
  | `Off -> (f, 0, None)
  | (`Auto | `Nu _) as v ->
      let nus = match v with `Nu nu -> [ nu ] | `Auto -> [ 4; 2 ] in
      let rec go = function
        | [] ->
            Counters.incr "vec.lower_fail";
            (f, 0, None)
        | nu :: rest -> (
            match Vector_rules.vectorize ~nu f with
            | Ok g when Spiral_spl.Props.vectorized ~nu g ->
                Counters.incr "vec.lowered";
                ( g,
                  nu,
                  Some
                    {
                      Spiral_validate.vc_scalar = f;
                      vc_vector = g;
                      vc_nu = nu;
                    } )
            | _ -> go rest)
      in
      go nus

let vectorize_formula ~vec f =
  let g, nu, _ = vectorize_formula_certified ~vec f in
  (g, nu)
