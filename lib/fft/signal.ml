open Spiral_util

let pointwise_mul x y =
  let n = Cvec.length x in
  if Cvec.length y <> n then invalid_arg "Signal.pointwise_mul: length mismatch";
  let z = Cvec.create n in
  for i = 0 to n - 1 do
    let xr = x.(2 * i) and xi = x.((2 * i) + 1) in
    let yr = y.(2 * i) and yi = y.((2 * i) + 1) in
    z.(2 * i) <- (xr *. yr) -. (xi *. yi);
    z.((2 * i) + 1) <- (xr *. yi) +. (xi *. yr)
  done;
  z

let transform direction x =
  Dft.with_plan ~direction (Cvec.length x) (fun t -> Dft.execute t x)

let convolve x y =
  let fx = transform Dft.Forward x and fy = transform Dft.Forward y in
  transform Dft.Inverse (pointwise_mul fx fy)

let correlate x y =
  let fx = transform Dft.Forward x and fy = transform Dft.Forward y in
  let n = Cvec.length x in
  let cfx = Cvec.create n in
  for i = 0 to n - 1 do
    cfx.(2 * i) <- fx.(2 * i);
    cfx.((2 * i) + 1) <- -.fx.((2 * i) + 1)
  done;
  transform Dft.Inverse (pointwise_mul cfx fy)

let power_spectrum x =
  let f = transform Dft.Forward x in
  Array.init (Cvec.length x) (fun i ->
      (f.(2 * i) *. f.(2 * i)) +. (f.((2 * i) + 1) *. f.((2 * i) + 1)))

let sine_wave ~n ~freq ?(amplitude = 1.0) () =
  let x = Cvec.create n in
  for i = 0 to n - 1 do
    x.(2 * i) <-
      amplitude
      *. sin (2.0 *. Float.pi *. float_of_int freq *. float_of_int i
              /. float_of_int n)
  done;
  x

let dominant_bins ?(count = 4) spectrum =
  let half = max 1 (Array.length spectrum / 2) in
  let bins = List.init half (fun i -> (i, spectrum.(i))) in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) bins in
  List.filteri (fun i _ -> i < count) sorted
