(** Real-input FFTs via the packing trick: a real transform of even length
    [N] costs one complex [DFT_{N/2}] plus an O(N) untangling pass — half
    the work of the complex transform, the standard technique production
    FFT libraries use for real data. *)

type t

val plan : ?threads:int -> ?mu:int -> int -> t
(** [plan n] prepares a real-to-complex transform of even length [n >= 2].
    @raise Invalid_argument if [n] is odd or [< 2]. *)

val n : t -> int

val forward : t -> float array -> Spiral_util.Cvec.t
(** [forward t x] with [x] of length [n] (real samples) returns the
    non-redundant half-spectrum: [n/2 + 1] complex bins
    [X_0 … X_{n/2}] (the remaining bins follow from Hermitian symmetry
    [X_{n-k} = conj X_k]). *)

val inverse : t -> Spiral_util.Cvec.t -> float array
(** [inverse t s] with [s] of [n/2 + 1] bins reconstructs the [n] real
    samples ([inverse t (forward t x) ≈ x]).  Bins 0 and [n/2] must be
    (numerically) real. *)

val destroy : t -> unit

val with_plan : ?threads:int -> ?mu:int -> int -> (t -> 'a) -> 'a
