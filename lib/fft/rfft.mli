(** Real-input FFTs via the packing trick: a real transform of even length
    [N] costs one complex [DFT_{N/2}] plus an O(N) untangling pass — half
    the work of the complex transform, the standard technique production
    FFT libraries use for real data.

    The inner half-size transforms run through the unified {!Engine}
    (supervised prepared parallel execution when [threads > 1]); all work
    buffers live in the plan, so the {!forward_into}/{!inverse_into}
    steady state allocates nothing. *)

type t

val plan : ?threads:int -> ?mu:int -> int -> t
(** [plan n] prepares a real-to-complex transform of even length [n >= 2].
    @raise Invalid_argument if [n] is odd or [< 2]. *)

val n : t -> int

val parallel : t -> bool
(** [true] when the inner half-size DFT executes the multicore formula. *)

val forward : t -> float array -> Spiral_util.Cvec.t
(** [forward t x] with [x] of length [n] (real samples) returns the
    non-redundant half-spectrum: [n/2 + 1] complex bins
    [X_0 … X_{n/2}] (the remaining bins follow from Hermitian symmetry
    [X_{n-k} = conj X_k]). *)

val forward_into :
  t -> src:float array -> dst:Spiral_util.Cvec.t -> unit
(** As {!forward} into a caller-provided [n/2 + 1]-bin vector;
    allocation-free in steady state.  Not re-entrant: the plan owns the
    packing buffers. *)

val inverse : t -> Spiral_util.Cvec.t -> float array
(** [inverse t s] with [s] of [n/2 + 1] bins reconstructs the [n] real
    samples ([inverse t (forward t x) ≈ x]).  Bins 0 and [n/2] must be
    (numerically) real. *)

val inverse_into :
  t -> src:Spiral_util.Cvec.t -> dst:float array -> unit
(** As {!inverse} into a caller-provided length-[n] array;
    allocation-free in steady state. *)

val destroy : t -> unit

val with_plan : ?threads:int -> ?mu:int -> int -> (t -> 'a) -> 'a
