(** Real-input 2-D FFTs ([rdft2d[RxC]]) via the packing trick, row
    direction halved: one complex [DFT2D_{R×C/2}] through the 2-D engine
    ({!Dft2d} — single parallel region, strided or tiled column
    schedule) plus an O(RC) untangling pass using the 2-D Hermitian
    symmetry [X(k1,k2) = conj X((R−k1) mod R, (C−k2) mod C)].  All work
    buffers live in the plan, so {!forward_into}/{!inverse_into}
    allocate nothing in steady state. *)

type t

val plan :
  ?threads:int ->
  ?mu:int ->
  ?variant:Dft2d.variant ->
  rows:int ->
  cols:int ->
  unit ->
  t
(** [plan ~rows ~cols ()] prepares a real-to-complex 2-D transform of an
    [rows × cols] row-major real matrix; [cols] must be even.
    [variant] selects the inner 2-D engine's column schedule.
    @raise Invalid_argument if [rows < 1] or [cols] is odd or [< 2]. *)

val rows : t -> int
val cols : t -> int

val parallel : t -> bool
(** [true] when the inner 2-D transform executes on the worker pool. *)

val schedule : t -> string
(** The inner 2-D engine's schedule ({!Dft2d.schedule}). *)

val forward : t -> float array -> Spiral_util.Cvec.t
(** [forward t x] with [x] of [rows·cols] real samples returns the
    non-redundant half-spectrum: [rows × (cols/2 + 1)] complex bins,
    row-major (the remaining bins follow from Hermitian symmetry). *)

val forward_into : t -> src:float array -> dst:Spiral_util.Cvec.t -> unit
(** As {!forward} into a caller-provided [rows·(cols/2 + 1)]-bin vector;
    allocation-free in steady state.  Not re-entrant: the plan owns the
    packing buffers. *)

val inverse : t -> Spiral_util.Cvec.t -> float array
(** [inverse t s] with [s] of [rows·(cols/2 + 1)] bins reconstructs the
    [rows·cols] real samples ([inverse t (forward t x) ≈ x]). *)

val inverse_into : t -> src:Spiral_util.Cvec.t -> dst:float array -> unit
(** As {!inverse} into a caller-provided [rows·cols]-sample array;
    allocation-free in steady state. *)

val destroy : t -> unit

val with_plan :
  ?threads:int ->
  ?mu:int ->
  ?variant:Dft2d.variant ->
  rows:int ->
  cols:int ->
  (t -> 'a) ->
  'a
