(** The unified problem planner: one engine behind every transform.

    The paper's pipeline is one chain — tagged formula → rewriting →
    multithreaded backend — so the library runs every transform through
    one engine instead of giving each front-end its own copy of the
    plan/pool/prepare/execute lifecycle.  An engine is planned from a
    {!Problem} descriptor plus a kind-specific derivation callback and
    owns, exactly once for the whole library:

    - the descriptor-keyed {e plan registry}: planning the same
      (problem, threads, µ) twice reuses the compiled plan via
      {!Spiral_codegen.Plan.clone} (shared kernels/tables, fresh
      buffers), counted under ["engine.plan_reuse"];
    - the shared {!Spiral_smp.Pool_registry} pool (refcounted, one pool
      per worker count process-wide);
    - the baked parallel schedule ({!Spiral_smp.Par_exec.prepare}) and
      the supervised execution path
      ({!Spiral_smp.Par_exec.execute_safe_prepared}: retry on a healed
      pool, then sequential fallback);
    - plan-lifetime scratch ({!scratch}) so front-ends that post-process
      (Rfft, Dct, inverse DFT) allocate nothing per call.

    Front-ends ({!Dft}, {!Wht}, {!Dft2d}, {!Bluestein}, {!Batch},
    {!Rfft}, {!Dct}) are thin adapters: they validate arguments, derive
    their formula, and delegate everything else here.  A new transform
    kind needs only a descriptor and a derivation. *)

type t

val plan :
  ?threads:int ->
  ?mu:int ->
  ?cache:bool ->
  ?vec:Planner.vec_request ->
  ?validate:Spiral_validate.mode ->
  ?flavor:string ->
  ?derive_ir:
    (threads:int ->
    mu:int ->
    Spiral_codegen.Ir.t * Spiral_spl.Formula.t * int) ->
  derive:
    (threads:int -> mu:int -> Spiral_spl.Formula.t * int) ->
  Problem.t ->
  t
(** [plan ~derive problem] compiles the problem.  [derive ~threads ~mu]
    must return the formula to compile and the worker count it is
    parallelized for ([1] = sequential); it runs only on a plan-registry
    miss.  [cache] (default [true]) keys the compiled plan by
    (problem, threads, µ, vec request, flavor) in the process-wide
    registry — pass [false] when the derivation depends on state outside
    the descriptor (e.g. a user-supplied ruletree).  [flavor] (default
    [""]) disambiguates registry entries when one descriptor has several
    derivations (the 2D engine's strided vs tiled schedules).  When the
    derived worker count is [> 1] the engine acquires the shared pool
    and bakes the parallel schedule; a derivation that falls back to
    sequential despite [threads > 1] is counted under
    ["engine.seq_fallback"].

    [derive_ir], when given, replaces the formula compilation entirely:
    it returns a hand-stitched {!Spiral_codegen.Ir.t} (the 2D engine's
    row passes + tiled transpose + column passes), the formula the IR
    stands for (carried for {!describe}/{!formula}), and the worker
    count.  The IR compiles through [Plan.of_ir] with the same fusion
    pipeline; [vec] is ignored on this path (ν tags belong to the
    pass-level IR the caller already built).  A failed certificate
    recompiles the same IR without fusion onto the sequential path, as
    below.

    [vec] requests short-vector lowering
    ({!Planner.vectorize_formula}) of the derived formula: on success
    the engine compiles a split re/im plan (["vec.plan_split"]) and
    transposes interleaved callers through planar boundary buffers; on
    failure it keeps the scalar plan (["vec.lower_fail"]).  Default:
    [`Nu ν] when the problem descriptor carries a [vν] suffix
    ({!Problem.vec}), [`Off] otherwise.  smp × vec compose: a multicore
    derivation that vectorizes runs its vector passes inside the same
    worksharing schedule.

    Before a freshly compiled plan can execute or enter the registry,
    its optimizer certificates (fusion, barrier elision, partition and
    ν-block coverage, vec lowering) are discharged by
    [Spiral_validate.validate_plan_result] in mode [validate] (default:
    the process-wide [Spiral_validate.mode], i.e. sampled, or exhaustive
    under [--paranoid]).  A failed obligation never executes the suspect
    plan: the engine recompiles the scalar derivation without fusion and
    runs it sequentially (counted under ["engine.validation_fallback"],
    plus ["engine.seq_fallback"] when [threads > 1]).  Registry hits
    reuse the master plan's validation via [Plan.clone].
    @raise Invalid_argument if [threads < 1], [mu < 1], or the formula
    does not compile. *)

val problem : t -> Problem.t
val formula : t -> Spiral_spl.Formula.t

val size : t -> int
(** Vector length of one execution ({!Problem.total}). *)

val threads : t -> int
(** Worker count actually used (1 when sequential). *)

val parallel : t -> bool

val vectorized : t -> int
(** Short-vector length ν the plan was actually lowered with; 0 when the
    plan is scalar (no request, or the lowering did not apply). *)

val barriers : t -> int
(** Real synchronization points one parallel execution crosses: pass
    boundaries whose barrier the elision analysis could not discharge
    (the rest are accounted under ["par_exec.barrier_elided"]).  0 for
    sequential engines. *)

val alive : t -> bool

val describe : t -> string
(** Canonical problem string, worker count, and the pass-by-pass plan. *)

val execute_into : t -> src:Spiral_util.Cvec.t -> dst:Spiral_util.Cvec.t -> unit
(** Run the plan: supervised prepared parallel execution when the engine
    is parallel, plain sequential execution otherwise.  Allocation-free
    in steady state.  [src] and [dst] must be distinct vectors of length
    {!size}.  @raise Invalid_argument after {!destroy} or on a length
    mismatch. *)

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** Allocating convenience: fresh output vector per call. *)

val execute_many : t -> (Spiral_util.Cvec.t * Spiral_util.Cvec.t) array -> unit
(** Batch of executions in one parallel region
    ({!Spiral_smp.Par_exec.execute_many_safe}); sequential engines just
    loop, and vectorized (split-layout) engines run the jobs one at a
    time through the planar boundary buffers.  Bit-identical to repeated
    {!execute_into}. *)

val scratch : t -> Spiral_util.Cvec.t
(** A {!size}-element work buffer owned by the engine, allocated on
    first use and reused for the plan's lifetime — for front-ends that
    need a temporary per execution (conjugation, reordering) without
    per-call allocation.  Not valid across concurrent executions of the
    same engine. *)

val destroy : t -> unit
(** Release the pool reference (the shared pool itself stays warm in the
    registry).  Idempotent; the engine must not be used afterwards. *)

(** {2 Structured errors (the service boundary)}

    A resident daemon answering untrusted descriptor strings must turn
    every failure mode into a value for an error reply; an exception
    escaping the server loop would take every tenant down.  These
    helpers never raise. *)

type error =
  | Bad_descriptor of string  (** descriptor string did not parse *)
  | Too_large of { total : int; limit : int }
      (** admission limit: total elements (batch × size) over the cap *)
  | Unsupported of string  (** parsed, but this build cannot serve it *)
  | Destroyed  (** execute after {!destroy} *)
  | Bad_length of { expected : int; got : int }
      (** payload length mismatch (complex elements) *)
  | Failed of string  (** execution raised; the plan may need replanning *)

val error_to_string : error -> string

val default_total_limit : int
(** Default admission cap on {!Problem.total} for {!parse_problem}
    (2²² elements — a 64 MiB complex payload). *)

val parse_problem : ?limit:int -> string -> (Problem.t, error) result
(** Parse and admission-check a descriptor string: [Bad_descriptor] on a
    parse failure, [Too_large] when batch × size exceeds [limit]
    (default {!default_total_limit}).  Never raises. *)

val execute_into_checked :
  t ->
  src:Spiral_util.Cvec.t ->
  dst:Spiral_util.Cvec.t ->
  (unit, error) result
(** {!execute_into} with every failure as a value: [Destroyed] after
    {!destroy}, [Bad_length] on a length mismatch, [Failed] if the
    execution itself raised (e.g. an injected fault that escaped the
    supervised path).  Never raises. *)

(** {2 Plan registry introspection} *)

val registry_size : unit -> int
(** Number of distinct (problem, threads, µ) plans compiled so far. *)

val reset_registry : unit -> unit
(** Drop every registry entry (test isolation).  Live engines are
    unaffected — they hold their own plan clones. *)
