open Spiral_util

type t = {
  n : int;  (* real length, even *)
  half : Dft.t;  (* complex DFT of size n/2, forward *)
  half_inv : Dft.t;
  (* untangling twiddles: w[k] = exp (-2 pi i k / n), k = 0 .. n/2 - 1 *)
  w : float array;
}

let plan ?threads ?mu n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Rfft.plan: length must be even and >= 2";
  let h = n / 2 in
  let w = Array.make (2 * h) 0.0 in
  for k = 0 to h - 1 do
    let z = Twiddle.omega n k in
    w.(2 * k) <- z.re;
    w.((2 * k) + 1) <- z.im
  done;
  {
    n;
    half = Dft.plan ?threads ?mu h;
    half_inv = Dft.plan ~direction:Dft.Inverse ?threads ?mu h;
    w;
  }

let n t = t.n

let forward t x =
  if Array.length x <> t.n then invalid_arg "Rfft.forward: wrong length";
  let h = t.n / 2 in
  (* pack neighbouring samples into complex z[j] = x[2j] + i x[2j+1] *)
  let z = Cvec.create h in
  for j = 0 to h - 1 do
    z.(2 * j) <- x.(2 * j);
    z.((2 * j) + 1) <- x.((2 * j) + 1)
  done;
  let f = Dft.execute t.half z in
  (* untangle: X[k] = E[k] + w^k O[k] where
     E[k] = (F[k] + conj F[h-k]) / 2,  O[k] = (F[k] - conj F[h-k]) / (2i) *)
  let out = Cvec.create (h + 1) in
  let get k =
    let k = k mod h in
    (f.(2 * k), f.((2 * k) + 1))
  in
  for k = 0 to h do
    let fr, fi = get k in
    let gr, gi = get ((h - k) mod h) in
    (* conj F[h-k] *)
    let gr = gr and gi = -.gi in
    let er = 0.5 *. (fr +. gr) and ei = 0.5 *. (fi +. gi) in
    (* O[k] = (F - conjF)/(2i) = (-i/2)(F - conjF) *)
    let dr = fr -. gr and di = fi -. gi in
    let or_ = 0.5 *. di and oi = -0.5 *. dr in
    let wk_r, wk_i =
      if k = h then (-1.0, 0.0) else (t.w.(2 * k), t.w.((2 * k) + 1))
    in
    out.(2 * k) <- er +. (wk_r *. or_) -. (wk_i *. oi);
    out.((2 * k) + 1) <- ei +. (wk_r *. oi) +. (wk_i *. or_)
  done;
  out

let inverse t s =
  let h = t.n / 2 in
  if Cvec.length s <> h + 1 then invalid_arg "Rfft.inverse: wrong length";
  (* retangle: F[k] = E[k] + i w^{-k}-weighted odd part, where
     E[k] = (X[k] + conj X[h-k]) / 2 and
     O[k] = (X[k] - conj X[h-k]) / 2 * conj(w^k)  ... then
     F[k] = E[k] + i O[k] *)
  let f = Cvec.create h in
  for k = 0 to h - 1 do
    let xr = s.(2 * k) and xi = s.((2 * k) + 1) in
    let yr = s.(2 * (h - k)) and yi = -.s.((2 * (h - k)) + 1) in
    let er = 0.5 *. (xr +. yr) and ei = 0.5 *. (xi +. yi) in
    let dr = 0.5 *. (xr -. yr) and di = 0.5 *. (xi -. yi) in
    (* O[k] = conj(w^k) * (X[k] - conj X[h-k]) / 2 *)
    let wr = t.w.(2 * k) and wi = -.t.w.((2 * k) + 1) in
    let or_ = (wr *. dr) -. (wi *. di) and oi = (wr *. di) +. (wi *. dr) in
    (* F[k] = E[k] + i O[k] *)
    f.(2 * k) <- er -. oi;
    f.((2 * k) + 1) <- ei +. or_
  done;
  let z = Dft.execute t.half_inv f in
  let x = Array.make t.n 0.0 in
  for j = 0 to h - 1 do
    x.(2 * j) <- z.(2 * j);
    x.((2 * j) + 1) <- z.((2 * j) + 1)
  done;
  x

let destroy t =
  Dft.destroy t.half;
  Dft.destroy t.half_inv

let with_plan ?threads ?mu n f =
  let t = plan ?threads ?mu n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
