open Spiral_util

type t = {
  n : int;  (* real length, even *)
  half : Dft.t;  (* complex DFT of size n/2, forward *)
  half_inv : Dft.t;
  (* untangling twiddles: w[k] = exp (-2 pi i k / n), k = 0 .. n/2 - 1 *)
  w : float array;
  (* plan-time work buffers (n/2 complex elements each): packed input /
     retangled spectrum, and the inner transform's output *)
  z : Cvec.t;
  zf : Cvec.t;
}

let plan ?threads ?mu n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Rfft.plan: length must be even and >= 2";
  let h = n / 2 in
  let w = Array.make (2 * h) 0.0 in
  for k = 0 to h - 1 do
    let z = Twiddle.omega n k in
    w.(2 * k) <- z.re;
    w.((2 * k) + 1) <- z.im
  done;
  {
    n;
    half = Dft.plan ?threads ?mu h;
    half_inv = Dft.plan ~direction:Dft.Inverse ?threads ?mu h;
    w;
    z = Cvec.create h;
    zf = Cvec.create h;
  }

let n t = t.n

let parallel t = Dft.parallel t.half

let forward_into t ~src ~dst =
  if Array.length src <> t.n then invalid_arg "Rfft.forward: wrong length";
  let h = t.n / 2 in
  if Cvec.length dst <> h + 1 then
    invalid_arg "Rfft.forward: output needs n/2 + 1 bins";
  (* pack neighbouring samples into complex z[j] = x[2j] + i x[2j+1] *)
  for j = 0 to h - 1 do
    t.z.(2 * j) <- src.(2 * j);
    t.z.((2 * j) + 1) <- src.((2 * j) + 1)
  done;
  Dft.execute_into t.half ~src:t.z ~dst:t.zf;
  (* untangle: X[k] = E[k] + w^k O[k] where
     E[k] = (F[k] + conj F[h-k]) / 2,  O[k] = (F[k] - conj F[h-k]) / (2i) *)
  let f = t.zf in
  for k = 0 to h do
    let k1 = k mod h in
    let k2 = (h - k) mod h in
    let fr = f.(2 * k1) and fi = f.((2 * k1) + 1) in
    (* conj F[h-k] *)
    let gr = f.(2 * k2) and gi = -.f.((2 * k2) + 1) in
    let er = 0.5 *. (fr +. gr) and ei = 0.5 *. (fi +. gi) in
    (* O[k] = (F - conjF)/(2i) = (-i/2)(F - conjF) *)
    let dr = fr -. gr and di = fi -. gi in
    let or_ = 0.5 *. di and oi = -0.5 *. dr in
    (* no tuple here: the untangle loop must not allocate *)
    let wk_r = if k = h then -1.0 else t.w.(2 * k) in
    let wk_i = if k = h then 0.0 else t.w.((2 * k) + 1) in
    dst.(2 * k) <- er +. (wk_r *. or_) -. (wk_i *. oi);
    dst.((2 * k) + 1) <- ei +. (wk_r *. oi) +. (wk_i *. or_)
  done

let forward t x =
  let out = Cvec.create ((t.n / 2) + 1) in
  forward_into t ~src:x ~dst:out;
  out

let inverse_into t ~src ~dst =
  let h = t.n / 2 in
  if Cvec.length src <> h + 1 then invalid_arg "Rfft.inverse: wrong length";
  if Array.length dst <> t.n then
    invalid_arg "Rfft.inverse: output needs n samples";
  let s = src in
  (* retangle: F[k] = E[k] + i w^{-k}-weighted odd part, where
     E[k] = (X[k] + conj X[h-k]) / 2 and
     O[k] = (X[k] - conj X[h-k]) / 2 * conj(w^k)  ... then
     F[k] = E[k] + i O[k] *)
  let f = t.z in
  for k = 0 to h - 1 do
    let xr = s.(2 * k) and xi = s.((2 * k) + 1) in
    let yr = s.(2 * (h - k)) and yi = -.s.((2 * (h - k)) + 1) in
    let er = 0.5 *. (xr +. yr) and ei = 0.5 *. (xi +. yi) in
    let dr = 0.5 *. (xr -. yr) and di = 0.5 *. (xi -. yi) in
    (* O[k] = conj(w^k) * (X[k] - conj X[h-k]) / 2 *)
    let wr = t.w.(2 * k) and wi = -.t.w.((2 * k) + 1) in
    let or_ = (wr *. dr) -. (wi *. di) and oi = (wr *. di) +. (wi *. dr) in
    (* F[k] = E[k] + i O[k] *)
    f.(2 * k) <- er -. oi;
    f.((2 * k) + 1) <- ei +. or_
  done;
  Dft.execute_into t.half_inv ~src:t.z ~dst:t.zf;
  for j = 0 to h - 1 do
    dst.(2 * j) <- t.zf.(2 * j);
    dst.((2 * j) + 1) <- t.zf.((2 * j) + 1)
  done

let inverse t s =
  let x = Array.make t.n 0.0 in
  inverse_into t ~src:s ~dst:x;
  x

let destroy t =
  Dft.destroy t.half;
  Dft.destroy t.half_inv

let with_plan ?threads ?mu n f =
  let t = plan ?threads ?mu n in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
