(** Batched transforms: many independent DFTs of the same size in one
    call — the "apply an FFT to every row" workload.

    A batch is the formula [I_b ⊗ DFT_n]; rule (9) of the paper
    parallelizes it directly ([I_p ⊗∥ (I_{b/p} ⊗ DFT_n)]), giving each
    processor a contiguous block of transforms: load-balanced,
    false-sharing free, one barrier per pass. *)

type t

val plan :
  ?threads:int -> ?mu:int -> ?vec:Planner.vec_request -> count:int -> int -> t
(** [plan ~count n]: [count] transforms of size [n], stored back to back
    (row-major [count × n]).  [vec] requests short-vector lowering of
    the batched formula (falls back to scalar when the rules do not
    apply). *)

val count : t -> int
val n : t -> int
val parallel : t -> bool
val formula : t -> Spiral_spl.Formula.t

val execute : t -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t
(** Input and output are [count * n] complex elements. *)

val execute_many : t -> Spiral_util.Cvec.t array -> Spiral_util.Cvec.t array
(** Transform a whole sequence of inputs inside a single parallel region
    ({!Spiral_smp.Par_exec.execute_many}): one pool dispatch and one
    join for the entire batch instead of one per input.  Bit-identical
    to mapping {!execute}. *)

val destroy : t -> unit

val with_plan :
  ?threads:int ->
  ?mu:int ->
  ?vec:Planner.vec_request ->
  count:int ->
  int ->
  (t -> 'a) ->
  'a
