(** Transform problem descriptors — the FFTW-style "problem" half of the
    planner split.

    A problem says {e what} to compute (transform kind, dimensions,
    direction, batch count) without saying how; the {!Engine} maps a
    problem to a compiled plan and an execution backend.  Descriptors
    have a canonical string form that doubles as the plan-registry key
    and (via {!kind_to_string}) the wisdom key's kind field. *)

type direction = Forward | Inverse

type kind = Dft | Wht | Dft2d | Rfft | Rdft2d | Dct

type t

val make :
  ?direction:direction -> ?batch:int -> ?vec:int -> kind -> int list -> t
(** [make kind dims] with [dims] the transform dimensions — one entry
    for 1-D kinds, [rows; cols] for {!Dft2d}.  Defaults: [Forward],
    [batch = 1], [vec = 0].  [vec = ν ≥ 2] requests short-vector
    lowering of the derived formula with vector length ν ([vec = 0]
    means scalar; the engine may still be asked to auto-pick per plan).
    @raise Invalid_argument on a dimension-count mismatch, a
    non-positive dimension, [batch < 1], or [vec] negative or 1. *)

val kind : t -> kind
val dims : t -> int array
val direction : t -> direction
val batch : t -> int

val vec : t -> int
(** Requested short-vector length ν; 0 when none was requested. *)

val size : t -> int
(** Elements of one transform (product of [dims]). *)

val total : t -> int
(** Elements of one execution: [batch * size]. *)

val kind_to_string : kind -> string
(** Lower-case tag ("dft", "wht", "dft2d", "rfft", "rdft2d", "dct") —
    the wisdom key's kind field ({!Spiral_search.Plan_cache}). *)

val kind_of_string : string -> kind option

val to_string : t -> string
(** Canonical form, e.g. ["dft[1024]f"], ["dft2d[16x16]f"],
    ["dft[256]ix8"] (batch of 8 inverse transforms), ["dft[1024]fv4"]
    (short-vector request ν = 4; the [v] suffix sits between the
    direction and the [x<batch>] suffix).  Injective: equal strings iff
    {!equal} problems. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on anything it did not produce. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
