open Spiral_util

(* Real-input 2-D FFT via the packing trick, row direction halved: pack
   column pairs of each row into complex samples, run one complex
   DFT2D_{R×C/2} through the 2-D engine, and untangle the half-spectrum
   with the Hermitian symmetry of the full R×C real transform —
   X[k1][k2] = conj X[(R−k1) mod R][(C−k2) mod C] — which needs the
   row-mirrored bin, not just the column mirror the 1-D untangle uses.
   Output: R × (C/2 + 1) complex bins, the non-redundant half. *)

type t = {
  rows : int;
  cols : int;  (* even *)
  inner : Dft2d.t;  (* complex DFT2D of R × C/2, forward *)
  inner_inv : Dft2d.t;
  (* untangling twiddles: w[k] = exp (-2 pi i k / cols), k = 0 .. C/2 *)
  w : float array;
  (* plan-time work buffers (R · C/2 complex elements each) *)
  z : Cvec.t;
  zf : Cvec.t;
}

let plan ?threads ?mu ?variant ~rows ~cols () =
  if rows < 1 then invalid_arg "Rfft2d.plan: rows >= 1";
  if cols < 2 || cols mod 2 <> 0 then
    invalid_arg "Rfft2d.plan: cols must be even and >= 2";
  let h = cols / 2 in
  let w = Array.make (2 * (h + 1)) 0.0 in
  for k = 0 to h do
    let z = Twiddle.omega cols k in
    w.(2 * k) <- z.re;
    w.((2 * k) + 1) <- z.im
  done;
  (* the Nyquist twiddle is exactly -1 *)
  w.(2 * h) <- -1.0;
  w.((2 * h) + 1) <- 0.0;
  {
    rows;
    cols;
    inner = Dft2d.plan ?threads ?mu ?variant ~rows ~cols:h ();
    inner_inv =
      Dft2d.plan ?threads ?mu ?variant ~direction:Dft2d.Inverse ~rows ~cols:h
        ();
    w;
    z = Cvec.create (rows * h);
    zf = Cvec.create (rows * h);
  }

let rows t = t.rows
let cols t = t.cols
let parallel t = Dft2d.parallel t.inner
let schedule t = Dft2d.schedule t.inner

let forward_into t ~src ~dst =
  let h = t.cols / 2 in
  if Array.length src <> t.rows * t.cols then
    invalid_arg "Rfft2d.forward: input needs rows * cols samples";
  if Cvec.length dst <> t.rows * (h + 1) then
    invalid_arg "Rfft2d.forward: output needs rows * (cols/2 + 1) bins";
  (* pack neighbouring columns: z[r][j] = x[r][2j] + i x[r][2j+1] *)
  for r = 0 to t.rows - 1 do
    let ro = r * t.cols and zo = r * h in
    for j = 0 to h - 1 do
      t.z.(2 * (zo + j)) <- src.(ro + (2 * j));
      t.z.((2 * (zo + j)) + 1) <- src.(ro + (2 * j) + 1)
    done
  done;
  Dft2d.execute_into t.inner ~src:t.z ~dst:t.zf;
  (* untangle: X[k1][k2] = E + w^{k2} O against the row-and-column
     mirrored conjugate bin (both spectra are h-periodic in k2) *)
  let f = t.zf in
  for k1 = 0 to t.rows - 1 do
    let m1 = (t.rows - k1) mod t.rows in
    let fo = k1 * h and go = m1 * h and oo = k1 * (h + 1) in
    for k = 0 to h do
      let ka = k mod h in
      let kb = (h - k) mod h in
      let fr = f.(2 * (fo + ka)) and fi = f.((2 * (fo + ka)) + 1) in
      (* conj Z[(R-k1) mod R][(h-k2) mod h] *)
      let gr = f.(2 * (go + kb)) and gi = -.f.((2 * (go + kb)) + 1) in
      let er = 0.5 *. (fr +. gr) and ei = 0.5 *. (fi +. gi) in
      let dr = fr -. gr and di = fi -. gi in
      let or_ = 0.5 *. di and oi = -0.5 *. dr in
      let wr = t.w.(2 * k) and wi = t.w.((2 * k) + 1) in
      dst.(2 * (oo + k)) <- er +. (wr *. or_) -. (wi *. oi);
      dst.((2 * (oo + k)) + 1) <- ei +. (wr *. oi) +. (wi *. or_)
    done
  done

let forward t x =
  let out = Cvec.create (t.rows * ((t.cols / 2) + 1)) in
  forward_into t ~src:x ~dst:out;
  out

let inverse_into t ~src ~dst =
  let h = t.cols / 2 in
  if Cvec.length src <> t.rows * (h + 1) then
    invalid_arg "Rfft2d.inverse: input needs rows * (cols/2 + 1) bins";
  if Array.length dst <> t.rows * t.cols then
    invalid_arg "Rfft2d.inverse: output needs rows * cols samples";
  (* retangle: Z[k1][k2] = E + i O with E = (X_a + conj X_b)/2,
     O = conj(w^{k2}) (X_a - conj X_b)/2, X_b = X[(R-k1) mod R][h-k2] *)
  let s = src in
  let f = t.z in
  for k1 = 0 to t.rows - 1 do
    let m1 = (t.rows - k1) mod t.rows in
    let so = k1 * (h + 1) and mo = m1 * (h + 1) and fo = k1 * h in
    for k = 0 to h - 1 do
      let xr = s.(2 * (so + k)) and xi = s.((2 * (so + k)) + 1) in
      let yr = s.(2 * (mo + (h - k)))
      and yi = -.s.((2 * (mo + (h - k))) + 1) in
      let er = 0.5 *. (xr +. yr) and ei = 0.5 *. (xi +. yi) in
      let dr = 0.5 *. (xr -. yr) and di = 0.5 *. (xi -. yi) in
      let wr = t.w.(2 * k) and wi = -.t.w.((2 * k) + 1) in
      let or_ = (wr *. dr) -. (wi *. di) and oi = (wr *. di) +. (wi *. dr) in
      f.(2 * (fo + k)) <- er -. oi;
      f.((2 * (fo + k)) + 1) <- ei +. or_
    done
  done;
  Dft2d.execute_into t.inner_inv ~src:t.z ~dst:t.zf;
  for r = 0 to t.rows - 1 do
    let ro = r * t.cols and zo = r * h in
    for j = 0 to h - 1 do
      dst.(ro + (2 * j)) <- t.zf.(2 * (zo + j));
      dst.(ro + (2 * j) + 1) <- t.zf.((2 * (zo + j)) + 1)
    done
  done

let inverse t s =
  let x = Array.make (t.rows * t.cols) 0.0 in
  inverse_into t ~src:s ~dst:x;
  x

let destroy t =
  Dft2d.destroy t.inner;
  Dft2d.destroy t.inner_inv

let with_plan ?threads ?mu ?variant ~rows ~cols f =
  let t = plan ?threads ?mu ?variant ~rows ~cols () in
  Fun.protect ~finally:(fun () -> destroy t) (fun () -> f t)
