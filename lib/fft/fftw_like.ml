open Spiral_rewrite
open Spiral_codegen

let threshold = 1 lsl 13

let sequential_plan n = Plan.of_formula (Ruletree.expand (Ruletree.mixed_radix n))

let parallel_plan ~p n =
  if n < threshold then None
  else
    let f = Derive.parallelize_loops ~p (Ruletree.expand (Ruletree.mixed_radix n)) in
    if Spiral_spl.Formula.exists
         (function Spiral_spl.Formula.ParTensor _ -> true | _ -> false)
         f
    then Some (Plan.of_formula f)
    else None

let schedule ~p ~count =
  (* block-cyclic: each thread takes chunks of count/(4p) round-robin *)
  Spiral_smp.Par_exec.Cyclic (max 1 (count / (4 * p)))

let execute ~p x y n =
  match parallel_plan ~p n with
  | Some plan ->
      Spiral_smp.Par_exec.execute_fork_join ~p
        ~schedule:(schedule ~p ~count:(n / 8))
        plan x y
  | None -> Plan.execute (sequential_plan n) x y
