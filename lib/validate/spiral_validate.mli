(** Translation validation of optimized plans.

    Every plan-changing transformation in the pipeline emits a
    {e certificate} — the data an independent checker needs to verify
    the rewrite without trusting the code that performed it:

    - {!Spiral_codegen.Optimize.fuse_data_certified} records, per fused
      pass, which original passes were composed into its gather, scatter
      and load-scale ({!check_fusion} replays the composition and checks
      totality, bijectivity on [0, n) and pointwise equality of the
      rewritten index functions);
    - [Spiral_smp.Par_exec.elision_witness] returns per-boundary
      read/write-set witnesses ({!check_elision} re-derives the
      footprints from {!Spiral_codegen.Plan.iter_addresses} and
      re-checks DESIGN.md §5a's conditions A/B and the no-chain rule);
    - the planner's vector lowering carries the scalar and lowered
      formulas ({!check_vectorization} compares their structural
      semantics);
    - the µ-aligned Block partition and the ν-blocked split odometer are
      checked for exact coverage — every (pass, iteration) executed
      exactly once ({!check_partition}, {!check_split_coverage}).

    Validation runs at plan time only: {!validate_plan} leaves nothing
    on the execution hot path.  Obligations over large iteration spaces
    are densely sampled by default and checked exhaustively under
    {!Exhaustive} ([--paranoid] / [SPIRAL_PARANOID=1]).  Results are
    recorded on the plan keyed by {!Spiral_codegen.Plan.digest}, so
    clones share them and mutated plans cannot inherit a stale
    certificate.  Outcomes are surfaced as ["validate.*"] counters; a
    failed obligation raises {!Validation_failed}, which [Engine] routes
    to the sequential fallback instead of executing the suspect plan. *)

exception Validation_failed of string

type mode =
  | Off  (** Discharge nothing (trust the optimizer). *)
  | Sampled
      (** Structural obligations in full; pointwise obligations over
          iteration spaces larger than {!exhaustive_threshold} on a
          dense deterministic sample.  The default. *)
  | Exhaustive
      (** Every obligation on every point ([--paranoid]). *)

val mode : mode ref
(** Process-wide default, consulted when a caller passes no explicit
    mode.  Initialized to {!Exhaustive} when the [SPIRAL_PARANOID]
    environment variable is set to [1]/[true]/[yes]/[on] (how the dune
    [@paranoid] alias forces exhaustive validation over the whole test
    suite), {!Sampled} otherwise. *)

val mode_to_string : mode -> string

val exhaustive_threshold : int
(** Iteration spaces at most this large are checked exhaustively even
    under {!Sampled}. *)

type vec_cert = {
  vc_scalar : Spiral_spl.Formula.t;  (** The formula before lowering. *)
  vc_vector : Spiral_spl.Formula.t;  (** The ν-lowered formula. *)
  vc_nu : int;  (** Claimed vector length. *)
}
(** Certificate of a short-vector lowering
    ([Planner.vectorize_formula_certified]). *)

val check_fusion :
  ?mode:mode -> Spiral_codegen.Optimize.fusion_cert -> (unit, string) result
(** Discharge a fusion certificate: the claims partition the original
    pass list exactly once in order; every chained pass is a total
    ([count = n]) radix-1 pass with behaviourally-identity kernel,
    in-range gather and bijective scatter; replaying the composition
    reproduces the fused gather/scatter/load-scale pointwise (sampled or
    exhaustive); fused compute passes keep their original kernel and
    shape. *)

val check_partition :
  ?mode:mode -> workers:int -> Spiral_codegen.Plan.t -> (unit, string) result
(** Every pass's (µ-aligned Block) worker ranges partition [0, count)
    exactly — no gap, no overlap — and every internal boundary of a
    µ-tagged pass is aligned to µ/gcd(µ, radix) iterations. *)

val check_elision :
  ?mode:mode -> workers:int -> Spiral_codegen.Plan.t -> (unit, string) result
(** Obtain the mask and witnesses from
    [Par_exec.elision_witness] and discharge them via
    {!check_elision_claims}. *)

val check_elision_claims :
  ?mode:mode ->
  workers:int ->
  Spiral_codegen.Plan.t ->
  bool array * Spiral_smp.Par_exec.boundary_witness list ->
  (unit, string) result
(** Discharge an elision mask against its witnesses without trusting the
    analysis: no chain of three consecutive elisions, and every length-2
    chain satisfies condition C (the passes bracketing it agree
    pointwise on which worker writes each shared ping-pong position,
    re-derived from the materialized addressing); every elided boundary
    joins two parallel passes and carries a witness whose writer/reader
    arrays match a fresh re-derivation from [Plan.iter_addresses];
    conditions A (each worker reads only its own writes) and B (no
    overwrite of another worker's pending reads when the ping-pong
    buffers alias) hold on the re-derived footprints.  Exposed
    separately so tests can present tampered claims. *)

val check_split_coverage :
  ?mode:mode -> workers:int -> Spiral_codegen.Plan.t -> (unit, string) result
(** For a split-layout plan: every pass carries a planar kernel; for
    ν-blocked passes the addressing is strided with ν dividing the
    innermost extent, and replaying the blocked odometer over the
    sequential range and every worker's ranges covers each iteration
    exactly once, with no block straddling a digit carry and block
    addresses advancing by exactly the innermost stride. *)

val check_tile_coverage :
  ?mode:mode -> Spiral_codegen.Plan.t -> (unit, string) result
(** For every radix-r pure data-movement pass (zero-flop kernel — the 2D
    tiled transpose): no load-scale table, the kernel behaves as the
    radix-r identity copy on a probe, and over the full iteration walk
    the materialized gather reads every source position exactly once
    while the scatter writes every destination position exactly once
    (the tile odometer has no seams or double-writes).  Worker
    schedules inherit the coverage via {!check_partition}. *)

val check_vectorization : ?mode:mode -> vec_cert -> (unit, string) result
(** The lowered formula preserves dimension and its structural semantics
    ({!Spiral_spl.Semantics.apply}) agrees with the scalar formula on a
    deterministic pseudo-random vector.  Skipped (counted under
    ["validate.vec_skipped"]) above 2^12 points ({!Sampled}) / 2^14
    ({!Exhaustive}), where structural evaluation stops being a plan-time
    cost. *)

val validate_plan_result :
  ?mode:mode ->
  ?workers:int ->
  ?vec:vec_cert ->
  Spiral_codegen.Plan.t ->
  (unit, string) result
(** Discharge every certificate of [plan] for execution on [workers]
    (default 1): fusion and vec lowering (worker-independent), partition
    exactness, barrier elision and split coverage (per worker count).
    Results are cached on the plan ({!Spiral_codegen.Plan.vreport},
    keyed by its {!Spiral_codegen.Plan.digest}): revalidating an
    unchanged plan — or a {!Spiral_codegen.Plan.clone} of one — is a
    cache hit (["validate.cached"]), while a digest mismatch discards
    the stale report (["validate.stale_cert"]) and revalidates.  Each
    discharged obligation passes the fault-injection site
    ["validate.check"] and increments ["validate.check"]; runs are
    counted under ["validate.plan"] and ["validate.sampled"] /
    ["validate.exhaustive"], failures under ["validate.failed"].  Not
    thread-safe with respect to one plan. *)

val validate_plan :
  ?mode:mode ->
  ?workers:int ->
  ?vec:vec_cert ->
  Spiral_codegen.Plan.t ->
  unit
(** {!validate_plan_result}, raising {!Validation_failed} on a failed
    obligation. *)
