open Spiral_util
open Spiral_codegen
module Par_exec = Spiral_smp.Par_exec

exception Validation_failed of string

type mode = Off | Sampled | Exhaustive

let mode_to_string = function
  | Off -> "off"
  | Sampled -> "sampled"
  | Exhaustive -> "exhaustive"

let mode =
  ref
    (match Sys.getenv_opt "SPIRAL_PARANOID" with
    | Some ("1" | "true" | "yes" | "on") -> Exhaustive
    | _ -> Sampled)

let exhaustive_threshold = 4096
let samples = 512

type vec_cert = {
  vc_scalar : Spiral_spl.Formula.t;
  vc_vector : Spiral_spl.Formula.t;
  vc_nu : int;
}

(* Checks communicate failure through a local exception so the obligation
   code reads as straight-line assertions; [guard] converts to result. *)
exception Bad of string

let badf fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt
let guard f = match f () with () -> Ok () | exception Bad m -> Error m

(* Representative points of [lo, hi): everything when exhaustive or
   small; otherwise an even spread plus the power-of-two neighbourhoods
   (the same shape as [Plan.detect]'s affine sampling — boundaries and
   carries are where addressing goes wrong). *)
let iter_points_range md ~lo ~hi f =
  let count = hi - lo in
  if count > 0 then
    if md = Exhaustive || count <= exhaustive_threshold then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      for s = 0 to samples - 1 do
        f (lo + (s * (count - 1) / (samples - 1)))
      done;
      let i = ref 1 in
      while !i < count do
        f (lo + !i - 1);
        f (lo + !i);
        i := !i * 2
      done
    end

let iter_points md count f = iter_points_range md ~lo:0 ~hi:count f

let complex_eq (a : Complex.t) (b : Complex.t) = a.re = b.re && a.im = b.im

(* ---------------------------------------------------------------- *)
(* Fusion certificates. *)

(* Behavioural identity probe: a radix-1 kernel claimed to be pure data
   movement must copy its (complex) input unchanged.  Two probes with
   different values rule out constant outputs. *)
let identity_probe (k : Codelet.t) =
  let cs = Codelet.make_scratch () in
  let src = [| 3.25; -1.5 |] and dst = [| 0.0; 0.0 |] in
  k.Codelet.strided_u cs src 0 dst 0;
  let ok1 = dst.(0) = 3.25 && dst.(1) = -1.5 in
  src.(0) <- -0.75;
  src.(1) <- 42.0;
  k.Codelet.strided_u cs src 0 dst 0;
  ok1 && dst.(0) = -0.75 && dst.(1) = 42.0

let data_pass_checked n (orig : Ir.pass array) idx =
  if idx < 0 || idx >= Array.length orig then
    badf "claim names pass %d outside the original list" idx;
  let d = orig.(idx) in
  if d.Ir.radix <> 1 then
    badf "chained pass %d has radix %d, not 1" idx d.Ir.radix;
  if d.Ir.count <> n then
    badf "chained pass %d is not total: count %d over a size-%d vector" idx
      d.Ir.count n;
  if not (identity_probe d.Ir.kernel) then
    badf "chained pass %d kernel %S is not the identity" idx
      d.Ir.kernel.Codelet.name;
  d

(* Replay of [Optimize.compose] over a claimed chain, independently
   re-checking totality, scatter bijectivity and gather range at every
   step.  The accumulated scale multiplies in the optimizer's exact
   operation order, so a correct certificate reproduces its load-scale
   bit for bit. *)
let compose_chain n orig idxs =
  List.fold_left
    (fun (pperm, pscale) idx ->
      let d = data_pass_checked n orig idx in
      let inv = Array.make n (-1) in
      for i = 0 to n - 1 do
        let s = d.Ir.scatter i 0 in
        if s < 0 || s >= n then
          badf "chained pass %d scatter out of range at iteration %d" idx i;
        if inv.(s) >= 0 then
          badf "chained pass %d scatter is not a bijection of [0, %d)" idx n;
        inv.(s) <- i
      done;
      let perm = Array.make n 0 in
      let scale =
        if d.Ir.scale <> None || pscale <> None then
          Some (Array.make n Complex.one)
        else None
      in
      for q = 0 to n - 1 do
        let i = inv.(q) in
        let g = d.Ir.gather i 0 in
        if g < 0 || g >= n then
          badf "chained pass %d gather out of range at iteration %d" idx i;
        perm.(q) <- (match pperm with None -> g | Some pp -> pp.(g));
        match scale with
        | None -> ()
        | Some sc ->
            let s1 =
              match d.Ir.scale with Some s -> s i 0 | None -> Complex.one
            in
            let s0 =
              match pscale with Some ps -> ps.(g) | None -> Complex.one
            in
            sc.(q) <- Complex.mul s1 s0
      done;
      (Some perm, scale))
    (None, None) idxs

let invert_perm k perm =
  let n = Array.length perm in
  let pinv = Array.make n (-1) in
  Array.iteri
    (fun q s ->
      if s < 0 || s >= n || pinv.(s) >= 0 then
        badf "claim %d: backward-fused permutation is not a bijection" k;
      pinv.(s) <- q)
    perm;
  pinv

let check_scale_point k it l expected actual =
  match (expected, actual) with
  | None, None -> ()
  | Some e, Some a ->
      if not (complex_eq a e) then
        badf "claim %d: fused load-scale differs at (%d, %d)" k it l
  | Some e, None ->
      if not (complex_eq e Complex.one) then
        badf "claim %d: fused pass dropped a non-trivial load-scale" k
  | None, Some a ->
      if not (complex_eq a Complex.one) then
        badf "claim %d: fused pass invented a load-scale at (%d, %d)" k it l

let check_claim ~md n (orig : Ir.pass array) (f : Ir.pass) k
    (c : Optimize.fusion_claim) =
  let gperm, gscale = compose_chain n orig c.Optimize.gchain in
  let sperm, sscale = compose_chain n orig c.Optimize.schain in
  (match sscale with
  | Some _ -> badf "claim %d: backward-fused chain carries a diagonal" k
  | None -> ());
  let spinv = Option.map (invert_perm k) sperm in
  match c.Optimize.src with
  | Some i ->
      if i < 0 || i >= Array.length orig then
        badf "claim %d names pass %d outside the original list" k i;
      let b = orig.(i) in
      if f.Ir.count <> b.Ir.count || f.Ir.radix <> b.Ir.radix then
        badf
          "claim %d: fused pass shape (%d, %d) differs from original pass %d \
           (%d, %d)"
          k f.Ir.count f.Ir.radix i b.Ir.count b.Ir.radix;
      if f.Ir.kernel != b.Ir.kernel then
        badf "claim %d: fused pass does not run original pass %d's kernel" k i;
      iter_points md b.Ir.count (fun it ->
          for l = 0 to b.Ir.radix - 1 do
            let bg = b.Ir.gather it l in
            let eg =
              match gperm with
              | None -> bg
              | Some gp ->
                  if bg < 0 || bg >= n then
                    badf "claim %d: original pass %d gather out of range" k i;
                  gp.(bg)
            in
            if f.Ir.gather it l <> eg then
              badf "claim %d: fused gather (%d, %d) = %d, expected %d" k it l
                (f.Ir.gather it l) eg;
            let bs = b.Ir.scatter it l in
            let es =
              match spinv with
              | None -> bs
              | Some pi ->
                  if bs < 0 || bs >= n then
                    badf "claim %d: original pass %d scatter out of range" k i;
                  pi.(bs)
            in
            if f.Ir.scatter it l <> es then
              badf "claim %d: fused scatter (%d, %d) = %d, expected %d" k it l
                (f.Ir.scatter it l) es;
            let expected =
              match gscale with
              | None -> Option.map (fun s -> s it l) b.Ir.scale
              | Some sc ->
                  let s0 = sc.(bg) in
                  Some
                    (match b.Ir.scale with
                    | None -> s0
                    | Some s -> Complex.mul (s it l) s0)
            in
            check_scale_point k it l expected
              (Option.map (fun s -> s it l) f.Ir.scale)
          done)
  | None ->
      (* residual: a synthesized identity-kernel pass carrying the whole
         unabsorbed chain *)
      if f.Ir.radix <> 1 || f.Ir.count <> n then
        badf "claim %d: residual pass is not a full-size radix-1 pass" k;
      if not (identity_probe f.Ir.kernel) then
        badf "claim %d: residual kernel %S is not the identity" k
          f.Ir.kernel.Codelet.name;
      let gp =
        match gperm with
        | Some gp -> gp
        | None -> badf "claim %d: residual pass with an empty chain" k
      in
      iter_points md n (fun it ->
          if f.Ir.gather it 0 <> gp.(it) then
            badf "claim %d: residual gather %d = %d, expected %d" k it
              (f.Ir.gather it 0) gp.(it);
          let es = match spinv with None -> it | Some pi -> pi.(it) in
          if f.Ir.scatter it 0 <> es then
            badf "claim %d: residual scatter %d = %d, expected %d" k it
              (f.Ir.scatter it 0) es;
          check_scale_point k it 0
            (Option.map (fun sc -> sc.(it)) gscale)
            (Option.map (fun s -> s it 0) f.Ir.scale))

let check_fusion ?mode:(md = !mode) (cert : Optimize.fusion_cert) =
  guard (fun () ->
      let orig = Array.of_list cert.Optimize.original.Ir.passes in
      let fused = Array.of_list cert.Optimize.fused.Ir.passes in
      let claims = Array.of_list cert.Optimize.claims in
      let n = cert.Optimize.original.Ir.n in
      if cert.Optimize.fused.Ir.n <> n then
        badf "fusion changed the transform size: %d -> %d" n
          cert.Optimize.fused.Ir.n;
      if Array.length fused <> Array.length claims then
        badf "certificate carries %d claims for %d fused passes"
          (Array.length claims) (Array.length fused);
      (* the claims must spend every original pass exactly once, in
         execution order *)
      let seq = ref [] in
      Array.iter
        (fun (c : Optimize.fusion_claim) ->
          seq := List.rev_append c.Optimize.gchain !seq;
          (match c.Optimize.src with
          | Some i -> seq := i :: !seq
          | None -> ());
          seq := List.rev_append c.Optimize.schain !seq)
        claims;
      if List.rev !seq <> List.init (Array.length orig) Fun.id then
        badf
          "claims do not account for the %d original passes exactly once in \
           order"
          (Array.length orig);
      Array.iteri (fun k c -> check_claim ~md n orig fused.(k) k c) claims)

(* ---------------------------------------------------------------- *)
(* Partition exactness and µ-alignment. *)

let pass_worker_ranges ~workers (p : Plan.pass) w =
  if p.Plan.par <> None && workers > 1 then
    Par_exec.worker_range ~align:(Par_exec.pass_align p) Par_exec.Block
      ~count:p.Plan.count ~workers w
  else if w = 0 then [ (0, p.Plan.count) ]
  else []

let check_partition ?mode:(md = !mode) ~workers (plan : Plan.t) =
  guard (fun () ->
      ignore md;
      Array.iteri
        (fun k (p : Plan.pass) ->
          let align = Par_exec.pass_align p in
          let pos = ref 0 in
          for w = 0 to workers - 1 do
            List.iter
              (fun (lo, hi) ->
                if lo <> !pos then
                  badf
                    "pass %d: worker %d starts at %d, expected %d (gap or \
                     overlap)"
                    k w lo !pos;
                if hi <= lo then badf "pass %d: worker %d has an empty range" k w;
                if p.Plan.par <> None && lo > 0 && lo mod align <> 0 then
                  badf
                    "pass %d: internal boundary %d not aligned to µ-split %d"
                    k lo align;
                pos := hi)
              (pass_worker_ranges ~workers p w)
          done;
          if !pos <> p.Plan.count then
            badf "pass %d: partition covers [0, %d) of %d iterations" k !pos
              p.Plan.count)
        plan.Plan.passes)

(* ---------------------------------------------------------------- *)
(* Barrier elision. *)

let derive_footprint ~workers ~n (pk : Plan.pass) =
  let writer = Array.make n (-1) and reader = Array.make n (-1) in
  let addrs = Plan.iter_addresses pk in
  for w = 0 to workers - 1 do
    List.iter
      (fun (lo, hi) ->
        for i = lo to hi - 1 do
          let g, s = addrs i in
          for l = 0 to pk.Plan.radix - 1 do
            let sp = s l in
            if sp < 0 || sp >= n then
              badf "write footprint out of range at iteration %d" i;
            writer.(sp) <- w;
            let gp = g l in
            if gp < 0 || gp >= n then
              badf "read footprint out of range at iteration %d" i;
            if reader.(gp) = -1 then reader.(gp) <- w
            else if reader.(gp) <> w then reader.(gp) <- -2
          done
        done)
      (Par_exec.worker_range ~align:(Par_exec.pass_align pk) Par_exec.Block
         ~count:pk.Plan.count ~workers w)
  done;
  (writer, reader)

let check_elision_claims ?mode:(md = !mode) ~workers (plan : Plan.t)
    ((mask, wits) : bool array * Par_exec.boundary_witness list) =
  guard (fun () ->
      let np = Array.length plan.Plan.passes in
      let nb = max 0 (np - 1) in
      if Array.length mask <> nb then
        badf "elision mask has %d entries for %d boundaries"
          (Array.length mask) nb;
      if workers > 1 then begin
        (* Chain legality: with one worker there is no skew to bound and
           the analysis rightly elides every boundary; with several, at
           most two consecutive boundaries may elide, and each length-2
           chain must satisfy condition C — the passes bracketing it
           (b-1 and b+1, whose outputs share a ping-pong intermediate
           unless pass b+1 writes the final output) agree pointwise on
           which worker writes each position, so per-worker program
           order serializes the distance-2 WAW/WAR hazards.  Re-derived
           from the materialized addressing, not the analysis's word. *)
        for b = 1 to nb - 1 do
          if mask.(b) && mask.(b - 1) then begin
            if b >= 2 && mask.(b - 2) then
              badf "chained elision of length 3 at boundaries %d..%d" (b - 2)
                b;
            if b + 1 < np - 1 then begin
              let n = plan.Plan.n in
              let wa, _ =
                derive_footprint ~workers ~n plan.Plan.passes.(b + 1)
              and wb, _ =
                derive_footprint ~workers ~n plan.Plan.passes.(b - 1)
              in
              for q = 0 to n - 1 do
                if wa.(q) >= 0 && wb.(q) >= 0 && wa.(q) <> wb.(q) then
                  badf
                    "chained boundaries %d and %d: passes %d and %d write \
                     position %d from different workers (condition C)"
                    (b - 1) b (b - 1) (b + 1) q
              done
            end
          end
        done;
        Array.iteri
          (fun b elided ->
            if elided then begin
              let wit =
                match
                  List.find_opt
                    (fun (w : Par_exec.boundary_witness) ->
                      w.Par_exec.boundary = b)
                    wits
                with
                | Some w -> w
                | None -> badf "boundary %d elided without a witness" b
              in
              let pk = plan.Plan.passes.(b)
              and pk1 = plan.Plan.passes.(b + 1) in
              if pk.Plan.par = None || pk1.Plan.par = None then
                badf "boundary %d elided around a sequential pass" b;
              let n = plan.Plan.n in
              (* the analysis's witness must match a fresh re-derivation
                 of pass b's footprint from the materialized addressing *)
              let writer, reader = derive_footprint ~workers ~n pk in
              if writer <> wit.Par_exec.writer then
                badf
                  "boundary %d: write-set witness disagrees with the \
                   materialized addressing"
                  b;
              if reader <> wit.Par_exec.reader then
                badf
                  "boundary %d: read-set witness disagrees with the \
                   materialized addressing"
                  b;
              (* conditions A and B (DESIGN.md §5a) on the re-derived
                 footprints.  Sampling pass b+1's iterations is one-sided:
                 it can only miss a violation, never reject a valid
                 elision. *)
              let aliasing = b > 0 && b + 1 < np - 1 in
              let addrs_k1 = Plan.iter_addresses pk1 in
              for w = 0 to workers - 1 do
                List.iter
                  (fun (lo, hi) ->
                    iter_points_range md ~lo ~hi (fun i ->
                        let g, s = addrs_k1 i in
                        for l = 0 to pk1.Plan.radix - 1 do
                          let gp = g l in
                          if gp < 0 || gp >= n || writer.(gp) <> w then
                            badf
                              "boundary %d: worker %d reads position %d not \
                               written by itself (condition A)"
                              b w gp;
                          if aliasing then begin
                            let sp = s l in
                            let rd =
                              if sp < 0 || sp >= n then -2 else reader.(sp)
                            in
                            if rd <> -1 && rd <> w then
                              badf
                                "boundary %d: worker %d overwrites position \
                                 %d another worker still reads (condition B)"
                                b w sp
                          end
                        done))
                  (Par_exec.worker_range ~align:(Par_exec.pass_align pk1)
                     Par_exec.Block ~count:pk1.Plan.count ~workers w)
              done
            end)
          mask
      end)

let check_elision ?mode:(md = !mode) ~workers (plan : Plan.t) =
  check_elision_claims ~mode:md ~workers plan
    (Par_exec.elision_witness ~workers plan)

(* ---------------------------------------------------------------- *)
(* ν-blocked split-schedule coverage. *)

let check_split_coverage ?mode:(md = !mode) ~workers (plan : Plan.t) =
  guard (fun () ->
      if plan.Plan.layout = Plan.Split then
        Array.iteri
          (fun k (p : Plan.pass) ->
            match p.Plan.split with
            | None ->
                badf "pass %d of a split-layout plan has no planar kernel" k
            | Some se -> (
                if se.Plan.im <> plan.Plan.n then
                  badf "pass %d: plane offset %d, expected n = %d" k
                    se.Plan.im plan.Plan.n;
                let nu = se.Plan.vk.Vcodelet.lanes in
                if nu > 1 then
                  match p.Plan.addr with
                  | Plan.Indexed _ ->
                      badf "pass %d: ν-blocked kernel over indexed addressing"
                        k
                  | Plan.Strided { exts; suffix; gstrs; sstrs; _ } ->
                      let kk = Array.length exts in
                      if kk = 0 || exts.(kk - 1) mod nu <> 0 then
                        badf
                          "pass %d: innermost extent %d not divisible by ν = \
                           %d"
                          k
                          (if kk = 0 then 0 else exts.(kk - 1))
                          nu;
                      let ki = kk - 1 in
                      let gv = gstrs.(ki) and sv = sstrs.(ki) in
                      let addrs = Plan.iter_addresses p in
                      let blocks = ref 0 in
                      (* replay of [Plan.run_split]'s odometer stepping
                         over one [lo, hi) range *)
                      let replay seen ~lo ~hi =
                        let dig = Array.make (max 1 kk) 0 in
                        for j = 0 to kk - 1 do
                          dig.(j) <- lo / suffix.(j + 1) mod exts.(j)
                        done;
                        let i = ref lo in
                        while !i < hi do
                          let step =
                            if dig.(ki) mod nu = 0 && !i + nu <= hi then begin
                              if dig.(ki) + nu > exts.(ki) then
                                badf
                                  "pass %d: ν-block at iteration %d straddles \
                                   a digit carry"
                                  k !i;
                              (* block addresses must advance linearly by
                                 the innermost stride — what [blk] assumes *)
                              if
                                md = Exhaustive || !blocks land 63 = 0
                              then begin
                                let g0, s0 = addrs !i in
                                for v = 1 to nu - 1 do
                                  let g, s = addrs (!i + v) in
                                  for l = 0 to p.Plan.radix - 1 do
                                    if g l <> g0 l + (v * gv) then
                                      badf
                                        "pass %d: block gather at iteration \
                                         %d lane %d is not linear in the \
                                         innermost stride"
                                        k !i v;
                                    if s l <> s0 l + (v * sv) then
                                      badf
                                        "pass %d: block scatter at iteration \
                                         %d lane %d is not linear in the \
                                         innermost stride"
                                        k !i v
                                  done
                                done
                              end;
                              incr blocks;
                              for v = 0 to nu - 1 do
                                seen.(!i + v) <- seen.(!i + v) + 1
                              done;
                              nu
                            end
                            else begin
                              seen.(!i) <- seen.(!i) + 1;
                              1
                            end
                          in
                          i := !i + step;
                          dig.(ki) <- dig.(ki) + step;
                          let j = ref ki in
                          while dig.(!j) = exts.(!j) && !j > 0 do
                            dig.(!j) <- 0;
                            decr j;
                            dig.(!j) <- dig.(!j) + 1
                          done
                        done
                      in
                      let cover label range_sets =
                        List.iter
                          (fun ranges ->
                            let seen = Array.make p.Plan.count 0 in
                            List.iter
                              (fun (lo, hi) -> replay seen ~lo ~hi)
                              ranges;
                            Array.iteri
                              (fun i c ->
                                if c <> 1 then
                                  badf
                                    "pass %d: %s schedule executes iteration \
                                     %d %d times"
                                    k label i c)
                              seen)
                          range_sets
                      in
                      (* the sequential executor's range, and the union of
                         every worker's ranges when the pass is parallel *)
                      cover "sequential" [ [ (0, p.Plan.count) ] ];
                      if p.Plan.par <> None && workers > 1 then
                        cover "worker"
                          [
                            List.concat
                              (List.init workers (fun w ->
                                   Par_exec.worker_range
                                     ~align:(Par_exec.pass_align p)
                                     Par_exec.Block ~count:p.Plan.count
                                     ~workers w));
                          ]))
          plan.Plan.passes)

(* ---------------------------------------------------------------- *)
(* Tiled data-movement coverage (the 2D transpose pass).  A radix-r copy
   pass (zero-flop kernel, no load-scale) claims to relocate all n
   points: the kernel must behave as the radix-r identity, and over the
   full iteration walk the materialized gather must read every source
   position exactly once and the scatter write every destination
   position exactly once — the tile odometer has no seams, overlaps or
   double-writes.  Partition exactness (checked separately) already
   proves the union of the worker ranges is that same walk, so the
   per-worker schedules inherit the coverage. *)

let copy_probe (k : Codelet.t) =
  let r = k.Codelet.radix in
  let cs = Codelet.make_scratch () in
  let src = Array.init (2 * r) (fun i -> float_of_int (i + 3) +. 0.25) in
  let dst = Array.make (2 * r) 0.0 in
  k.Codelet.strided_u cs src 0 dst 0;
  let ok = ref true in
  for i = 0 to (2 * r) - 1 do
    if dst.(i) <> src.(i) then ok := false
  done;
  !ok

let check_tile_coverage ?mode:(md = !mode) (plan : Plan.t) =
  guard (fun () ->
      ignore md;
      let n = plan.Plan.n in
      Array.iteri
        (fun k (p : Plan.pass) ->
          if p.Plan.radix > 1 && p.Plan.kernel.Codelet.flops = 0 then begin
            if p.Plan.tw <> None then
              badf "pass %d: zero-flop copy pass carries a load-scale table" k;
            if not (copy_probe p.Plan.kernel) then
              badf "pass %d: kernel %S is not the radix-%d identity copy" k
                p.Plan.kernel.Codelet.name p.Plan.radix;
            if p.Plan.count * p.Plan.radix <> n then
              badf "pass %d: copy pass moves %d of %d points" k
                (p.Plan.count * p.Plan.radix) n;
            let read = Array.make n 0 and written = Array.make n 0 in
            let addrs = Plan.iter_addresses p in
            for i = 0 to p.Plan.count - 1 do
              let g, s = addrs i in
              for l = 0 to p.Plan.radix - 1 do
                let gp = g l and sp = s l in
                if gp < 0 || gp >= n then
                  badf "pass %d: tile gather out of range at (%d, %d)" k i l;
                if sp < 0 || sp >= n then
                  badf "pass %d: tile scatter out of range at (%d, %d)" k i l;
                read.(gp) <- read.(gp) + 1;
                written.(sp) <- written.(sp) + 1
              done
            done;
            for q = 0 to n - 1 do
              if read.(q) <> 1 then
                badf "pass %d: tile walk reads position %d %d times" k q
                  read.(q);
              if written.(q) <> 1 then
                badf "pass %d: tile walk writes position %d %d times" k q
                  written.(q)
            done
          end)
        plan.Plan.passes)

(* ---------------------------------------------------------------- *)
(* Short-vector lowering. *)

let vec_check_limit = 1 lsl 12
let vec_check_limit_paranoid = 1 lsl 14

let check_vectorization ?mode:(md = !mode) (c : vec_cert) =
  guard (fun () ->
      let dim = Spiral_spl.Formula.dim c.vc_scalar in
      if Spiral_spl.Formula.dim c.vc_vector <> dim then
        badf "vectorized formula changed dimension: %d -> %d" dim
          (Spiral_spl.Formula.dim c.vc_vector);
      if c.vc_nu < 2 then badf "vectorization certificate claims ν = %d" c.vc_nu;
      let limit =
        if md = Exhaustive then vec_check_limit_paranoid else vec_check_limit
      in
      if dim > limit then Counters.incr "validate.vec_skipped"
      else begin
        (* structural semantics of both formulas on a deterministic
           pseudo-random vector *)
        let x = Cvec.random ~seed:(0x5eed + dim) dim in
        let ys = Spiral_spl.Semantics.apply c.vc_scalar x in
        let yv = Spiral_spl.Semantics.apply c.vc_vector x in
        let err = Cvec.max_abs_diff ys yv in
        let tol = 1e-9 *. log (float_of_int (max 2 dim)) in
        if err > tol then
          badf "lowered formula diverges from scalar semantics (max err %.3e)"
            err
      end)

(* ---------------------------------------------------------------- *)
(* Plan-level orchestration. *)

let counter_plan = "validate.plan"
let counter_check = "validate.check"
let counter_cached = "validate.cached"
let counter_stale = "validate.stale_cert"
let counter_failed = "validate.failed"
let fault_site = "validate.check"

(* One obligation: short-circuits on an earlier failure, passes the
   fault-injection site (so tests can forge a bad certificate at any
   obligation) and counts the discharge. *)
let discharge acc name f =
  match acc with
  | Error _ -> acc
  | Ok () -> (
      match
        Fault.check fault_site;
        f ()
      with
      | Ok () ->
          Counters.incr counter_check;
          Ok ()
      | Error m -> Error (name ^ ": " ^ m)
      | exception Fault.Injected _ ->
          Error (name ^ ": injected certificate fault"))

let validate_plan_result ?mode:(md = !mode) ?(workers = 1) ?vec
    (plan : Plan.t) =
  if md = Off then Ok ()
  else begin
    let dg = Plan.digest plan in
    let report =
      match plan.Plan.validation with
      | Some r when r.Plan.vdigest = dg -> Some r
      | Some _ ->
          (* the plan changed under its certificate: discard, revalidate *)
          Counters.incr counter_stale;
          plan.Plan.validation <- None;
          None
      | None -> None
    in
    let need_base =
      match report with Some r -> not r.Plan.vbase | None -> true
    in
    let need_workers =
      match report with
      | Some r -> not (List.mem workers r.Plan.vworkers)
      | None -> true
    in
    if (not need_base) && not need_workers then begin
      Counters.incr counter_cached;
      Ok ()
    end
    else begin
      Counters.incr counter_plan;
      Counters.incr
        (match md with
        | Exhaustive -> "validate.exhaustive"
        | _ -> "validate.sampled");
      let r = Ok () in
      let r =
        if not need_base then r
        else
          let r =
            discharge r "fusion" (fun () ->
                match plan.Plan.fusion_cert with
                | None -> Ok ()
                | Some c -> check_fusion ~mode:md c)
          in
          let r =
            discharge r "tile-coverage" (fun () ->
                check_tile_coverage ~mode:md plan)
          in
          match vec with
          | None -> r
          | Some c ->
              discharge r "vec-lowering" (fun () ->
                  check_vectorization ~mode:md c)
      in
      let r =
        if not need_workers then r
        else
          let r =
            discharge r "partition" (fun () ->
                check_partition ~mode:md ~workers plan)
          in
          let r =
            discharge r "barrier-elision" (fun () ->
                check_elision ~mode:md ~workers plan)
          in
          discharge r "split-coverage" (fun () ->
              check_split_coverage ~mode:md ~workers plan)
      in
      match r with
      | Ok () ->
          (match plan.Plan.validation with
          | Some rep when rep.Plan.vdigest = dg ->
              if need_base then rep.Plan.vbase <- true;
              if not (List.mem workers rep.Plan.vworkers) then
                rep.Plan.vworkers <- workers :: rep.Plan.vworkers
          | _ ->
              plan.Plan.validation <-
                Some { Plan.vdigest = dg; vbase = true; vworkers = [ workers ] });
          Ok ()
      | Error m ->
          Counters.incr counter_failed;
          Error m
    end
  end

let validate_plan ?mode ?workers ?vec plan =
  match validate_plan_result ?mode ?workers ?vec plan with
  | Ok () -> ()
  | Error m -> raise (Validation_failed m)
