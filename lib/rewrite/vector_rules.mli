(** Short-vector (SIMD) rewriting rules — the companion framework [10,13]
    that Section 3.2 of the paper composes with the multicore Cooley-Tukey
    FFT ("in tandem with the efficient short vector Cooley-Tukey FFT on
    machines with SIMD extensions").

    A [Vec (ν, f)] tag is rewritten until every operation is a ν-way
    vector block: [A ⊗→ I_ν] ([VTensor]), an in-register shuffle stage
    [I_k ⊗ L^{ν²}_ν] ([VShuffle]), or a pointwise diagonal.  The key
    identity (verified against dense matrix semantics in the test suite)
    decomposes the stride permutation for [ν | m], [ν | n]:

    [L^{mn}_m = (L^{mn/ν}_m ⊗ I_ν) (I_{mn/ν²} ⊗ L^{ν²}_ν)
                (I_{n/ν} ⊗ L^{m}_{m/ν} ⊗ I_ν)] *)

val rule_compose : Rule.t
(** [(A B)_vec → A_vec B_vec]. *)

val rule_tensor_ai : Rule.t
(** [(A ⊗ I_n)_vec → (A ⊗ I_{n/ν}) ⊗→ I_ν] for [ν | n] — covers compute
    and permutation factors alike. *)

val rule_tensor_ia : Rule.t
(** [(I_m ⊗ A_k)_vec → (L^{mk}_m)_vec ((A ⊗ I_m)_vec) (L^{mk}_k)_vec] for
    [ν | m], [ν | k]: commute to the vector-friendly form. *)

val rule_stride_perm : Rule.t
(** The three-factor decomposition above; emits final vector constructs
    directly. *)

val rule_diag : Rule.t
(** Diagonals are pointwise and vectorize as they are (tag removed). *)

val rule_partensor : Rule.t
(** [(I_p ⊗∥ A)_vec → I_p ⊗∥ (A_vec)]: vectorize inside parallel blocks —
    the smp × vec tandem. *)

val rule_cachetensor : Rule.t
(** [(A ⊗̄ I_µ)_vec → (A ⊗̄ I_{µ/ν}) ⊗→ I_ν] for [ν | µ]: cache-line
    blocks subsume vector blocks when lines are at least a vector wide. *)

val rule_identity : Rule.t

val all : Rule.t list

val vectorize :
  nu:int -> Spiral_spl.Formula.t -> (Spiral_spl.Formula.t, string) result
(** Tag with [vec(ν)] and rewrite to fixpoint; [Ok g] iff no tag remains
    (then [Props.vectorized ~nu g] is expected to hold for formulas in the
    Cooley-Tukey algebra). *)
