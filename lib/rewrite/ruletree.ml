open Spiral_spl
open Formula

type t = Leaf of int | Ct of t * t

let rec size = function Leaf n -> n | Ct (l, r) -> size l * size r

let leaf_max = 32

let rec validate = function
  | Leaf n ->
      if n < 2 || n > leaf_max then
        invalid_arg
          (Printf.sprintf "Ruletree: leaf size %d outside [2, %d]" n leaf_max)
  | Ct (l, r) ->
      validate l;
      validate r

let rec depth = function Leaf _ -> 1 | Ct (l, r) -> 1 + max (depth l) (depth r)

let rec expand = function
  | Leaf n -> DFT n
  | Ct (l, r) ->
      let m = size l and n = size r in
      compose
        [ Tensor (expand l, I n); twiddle m n; Tensor (I m, expand r);
          l_perm (m * n) m ]

let rec right_expanded ~radix n =
  if n <= leaf_max && n <= radix then Leaf n
  else if n mod radix = 0 && n / radix >= 2 then
    Ct (Leaf radix, right_expanded ~radix (n / radix))
  else Leaf n

let rec left_expanded ~radix n =
  if n <= leaf_max && n <= radix then Leaf n
  else if n mod radix = 0 && n / radix >= 2 then
    Ct (left_expanded ~radix (n / radix), Leaf radix)
  else Leaf n

(* Unrolled codelets exist up to size 8; larger leaves fall back to the
   O(r²) generic kernel, so the standard trees split down to this size. *)
let good_leaf_max = 8

let balanced_split n =
  let rec best m acc =
    if m * m > n then acc
    else if n mod m = 0 then best (m + 1) (Some m)
    else best (m + 1) acc
  in
  best 2 None

let mixed_radix n =
  (* Greedy right-expanded decomposition preferring efficient codelets:
     take radix 8 while possible (avoiding a trailing 2), then 4, then 2;
     odd factors become a single leaf if small enough. *)
  let rec go n =
    if n <= good_leaf_max then Leaf n
    else if n mod 8 = 0 && n / 8 <> 2 then Ct (Leaf 8, go (n / 8))
    else if n mod 4 = 0 then Ct (Leaf 4, go (n / 4))
    else if n mod 2 = 0 then Ct (Leaf 2, go (n / 2))
    else if n <= leaf_max then Leaf n
    else
      match balanced_split n with
      | Some m -> Ct (go m, go (n / m))
      | None -> Leaf n
  in
  go n

let rec balanced n =
  if n <= good_leaf_max then Leaf n
  else
    match balanced_split n with
    | Some m -> Ct (balanced m, balanced (n / m))
    | None -> Leaf n (* prime: codelet leaf (must be <= leaf_max) *)

let random ~seed n =
  let st = Random.State.make [| seed; n |] in
  let rec go n =
    let splits = Spiral_util.Int_util.factor_pairs n in
    if n <= leaf_max && (splits = [] || Random.State.bool st) then Leaf n
    else
      match splits with
      | [] -> Leaf n
      | _ ->
          let m, k = List.nth splits (Random.State.int st (List.length splits)) in
          Ct (go m, go k)
  in
  go n

let all_trees ?(max_count = 2000) n =
  let tbl = Hashtbl.create 64 in
  let rec go n =
    match Hashtbl.find_opt tbl n with
    | Some ts -> ts
    | None ->
        let leaves = if n >= 2 && n <= leaf_max then [ Leaf n ] else [] in
        let splits =
          Spiral_util.Int_util.factor_pairs n
          |> List.concat_map (fun (m, k) ->
                 let ls = go m and rs = go k in
                 List.concat_map (fun l -> List.map (fun r -> Ct (l, r)) rs) ls)
        in
        let ts =
          let all = leaves @ splits in
          if List.length all > max_count then
            List.filteri (fun i _ -> i < max_count) all
          else all
        in
        Hashtbl.add tbl n ts;
        ts
  in
  go n

let rec to_string = function
  | Leaf n -> string_of_int n
  | Ct (l, r) -> Printf.sprintf "(%s x %s)" (to_string l) (to_string r)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_string s =
  (* grammar: tree ::= INT | '(' tree 'x' tree ')' *)
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () = while !pos < n && s.[!pos] = ' ' do incr pos done in
  let fail msg = invalid_arg (Printf.sprintf "Ruletree.of_string: %s at %d" msg !pos) in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let rec tree () =
    skip_ws ();
    if !pos < n && s.[!pos] = '(' then begin
      expect '(';
      let l = tree () in
      expect 'x';
      let r = tree () in
      expect ')';
      Ct (l, r)
    end
    else begin
      let start = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
      if !pos = start then fail "expected integer";
      Leaf (int_of_string (String.sub s start (!pos - start)))
    end
  in
  let t = tree () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  t
