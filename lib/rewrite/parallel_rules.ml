open Spiral_spl
open Formula

let rule6_compose =
  Rule.make "smp-compose(6)" (fun f ->
      match f with
      | Smp (p, mu, Compose fs) ->
          Some (compose (List.map (fun g -> Smp (p, mu, g)) fs))
      | _ -> None)

(* A ⊗ I_n is "computational" when A is not itself a permutation, diagonal
   or identity: those cases belong to rules (8)/(10)/(11) or need no work. *)
let is_computational = function
  | Perm _ | Diag _ | I _ | VShuffle _ -> false
  | DFT _ | WHT _ | Compose _ | Tensor _ | DirectSum _ | Smp _ | ParTensor _
  | ParDirectSum _ | CacheTensor _ | Vec _ | VTensor _ ->
      true

let rule7_tensor_ai =
  Rule.make "smp-tensor-AI(7)" (fun f ->
      match f with
      | Smp (p, mu, Tensor (a, I n))
        when is_computational a && n mod p = 0 && n >= p ->
          let m = dim a in
          let np = n / p in
          Some
            (compose
               [ Smp (p, mu, tensor (l_perm (m * p) m) (I np));
                 Smp (p, mu, tensor (I p) (tensor a (I np)));
                 Smp (p, mu, tensor (l_perm (m * p) p) (I np)) ])
      | _ -> None)

let rule8_stride_perm =
  Rule.make "smp-stride-perm(8)" (fun f ->
      match f with
      | Smp (p, mu, Perm (Perm.L (mn, m))) ->
          let n = mn / m in
          (* progress guards: with m = p (resp. n = p) a variant would
             reproduce the original L^{pn}_p and loop forever *)
          if m mod p = 0 && m > p then
            (* variant 1: (I_p ⊗ L^{mn/p}_{m/p}) (L^{pn}_p ⊗ I_{m/p}) *)
            Some
              (compose
                 [ Smp (p, mu, tensor (I p) (l_perm (mn / p) (m / p)));
                   Smp (p, mu, tensor (l_perm (p * n) p) (I (m / p))) ])
          else if n mod p = 0 && n > p then
            (* variant 2: (L^{pm}_m ⊗ I_{n/p}) (I_p ⊗ L^{mn/p}_m) *)
            Some
              (compose
                 [ Smp (p, mu, tensor (l_perm (p * m) m) (I (n / p)));
                   Smp (p, mu, tensor (I p) (l_perm (mn / p) m)) ])
          else None
      | _ -> None)

let rule9_tensor_ia =
  Rule.make "smp-tensor-IA(9)" (fun f ->
      match f with
      | Smp (p, _, Tensor (I m, a)) when m mod p = 0 ->
          Some (ParTensor (p, tensor (I (m / p)) a))
      | _ -> None)

let rule10_perm_cache =
  Rule.make "smp-perm-cache(10)" (fun f ->
      match f with
      | Smp (_, mu, Tensor (Perm q, I n)) when n mod mu = 0 ->
          Some (CacheTensor (tensor (Perm q) (I (n / mu)), mu))
      | Smp (_, 1, Perm q) ->
          (* µ = 1: every permutation moves whole (one-element) cache
             lines, so a bare permutation is directly [P ⊗̄ I_1] *)
          Some (CacheTensor (Perm q, 1))
      | _ -> None)

let rule11_diag_split =
  Rule.make "smp-diag-split(11)" (fun f ->
      match f with
      | Smp (p, _, Diag d) when Diag.size d mod p = 0 ->
          Some
            (ParDirectSum (List.map (fun s -> Diag s) (Diag.split d p)))
      | _ -> None)

let rule_identity_untag =
  Rule.make "smp-identity" (fun f ->
      match f with Smp (_, _, (I _ as id)) -> Some id | _ -> None)

(* Priority: decompositions of structured factors first; the generic loop
   tiling rule (7) last so permutations are never treated as compute. *)
let all =
  [ rule6_compose; rule_identity_untag; rule10_perm_cache; rule8_stride_perm;
    rule9_tensor_ia; rule11_diag_split; rule7_tensor_ai ]

let parallelize ~p ~mu f =
  if p <= 0 || mu <= 0 then invalid_arg "Parallel_rules.parallelize";
  let g, _trace = Rule.fixpoint all (Smp (p, mu, f)) in
  if has_tag g then
    Error
      (Format.asprintf
         "parallelization incomplete (divisibility preconditions failed) \
          for p=%d mu=%d: %a"
         p mu pp g)
  else Ok g
