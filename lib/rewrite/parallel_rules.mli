(** The shared memory parallelization rules of Table 1 of the paper.

    Each rule rewrites an [Smp (p, µ, f)] tagged node.  Together they
    transform any formula built from tensor products, stride permutations
    and twiddle diagonals into a {e fully optimized} formula in the sense
    of Definition 1: load-balanced for [p] processors and free of false
    sharing for cache lines of [µ] complex elements.  An expression [n/p]
    on a right-hand side implies the precondition [p | n]; rules do not
    fire when preconditions fail, leaving the tag in place (callers detect
    this with {!Spiral_spl.Formula.has_tag}). *)

val rule6_compose : Rule.t
(** [(A B)_smp → A_smp B_smp]. *)

val rule7_tensor_ai : Rule.t
(** [(A_m ⊗ I_n)_smp → (L^{mp}_m ⊗ I_{n/p})_smp (I_p ⊗ (A_m ⊗ I_{n/p}))_smp
    (L^{mp}_p ⊗ I_{n/p})_smp] — loop tiling and scheduling so that [n/p]
    consecutive iterations run on the same processor.  Requires [p | n];
    [A] must be computational (not a permutation or diagonal). *)

val rule8_stride_perm : Rule.t
(** [(L^{mn}_m)_smp → (I_p ⊗ L^{mn/p}_{m/p})_smp (L^{pn}_p ⊗ I_{m/p})_smp]
    when [p | m], else
    [(L^{pm}_m ⊗ I_{n/p})_smp (I_p ⊗ L^{mn/p}_m)_smp] when [p | n]. *)

val rule9_tensor_ia : Rule.t
(** [(I_m ⊗ A_n)_smp → I_p ⊗∥ (I_{m/p} ⊗ A_n)].  Requires [p | m]. *)

val rule10_perm_cache : Rule.t
(** [(P ⊗ I_n)_smp → (P ⊗ I_{n/µ}) ⊗̄ I_µ].  Requires [µ | n]. *)

val rule11_diag_split : Rule.t
(** [D_smp → ⊕∥ D_i] with [p] equal contiguous segments.  Requires
    [p | size D]. *)

val rule_identity_untag : Rule.t
(** [(I_n)_smp → I_n] (an identity needs no parallelization). *)

val all : Rule.t list
(** The rule set in application-priority order. *)

val parallelize :
  p:int -> mu:int -> Spiral_spl.Formula.t -> (Spiral_spl.Formula.t, string) result
(** [parallelize ~p ~mu f] tags [f] and rewrites to fixpoint.  [Ok g] when
    no tag remains; [Error msg] when some subformula could not be
    parallelized (e.g. divisibility preconditions fail). *)
