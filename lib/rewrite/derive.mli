(** End-to-end derivation of the multicore Cooley-Tukey FFT (formula (14)
    of the paper) and of the baseline algorithm formulas.

    [multicore_dft] performs exactly the paper's Section 3.2 procedure:
    apply the Cooley-Tukey rule (1) once at the top, tag with [smp(p, µ)],
    rewrite with the Table 1 rules to a fully optimized formula, then
    expand the sequential sub-DFTs with their ruletrees. *)

type error =
  | Bad_size of string  (** Divisibility requirements violated. *)
  | Rewrite_failed of string  (** A tag could not be eliminated. *)
  | Not_fully_optimized of string
      (** Defensive check: rewriting finished but Definition 1 fails. *)

val error_to_string : error -> string

val multicore_dft :
  p:int -> mu:int -> Ruletree.t -> (Spiral_spl.Formula.t, error) result
(** [multicore_dft ~p ~mu tree] derives the multicore Cooley-Tukey FFT for
    [DFT_N], [N = Ruletree.size tree].  The tree's top split [Ct (l, r)]
    with [m = size l], [n = size r] must satisfy [pµ | m] and [pµ | n]
    (the paper's condition, guaranteeing [(pµ)² | N]).  The result is
    fully optimized per Definition 1 (verified). *)

val sequential_dft : Ruletree.t -> Spiral_spl.Formula.t
(** The sequential formula for the tree ([Ruletree.expand]). *)

val six_step_dft :
  p:int -> mu:int -> m:int -> n:int -> (Spiral_spl.Formula.t, error) result
(** The traditional six-step algorithm (3) with each stage parallelized by
    the same rule set (explicit stride-permutation passes remain), as a
    baseline against the multicore Cooley-Tukey FFT. *)

val parallelize_loops :
  p:int -> Spiral_spl.Formula.t -> Spiral_spl.Formula.t
(** Naive loop parallelization (what a parallelizing compiler or FFTW-style
    loop scheduler does): wraps every [I_m ⊗ A] with [p | m] into
    [I_p ⊗∥ (I_{m/p} ⊗ A)] and every [A ⊗ I_n] into the cyclic schedule
    [I_p ⊗∥ …] obtained {e without} the µ-aware rules — used as the
    false-sharing counterexample in tests and benchmarks. *)

val substitute_nonterminals :
  Spiral_spl.Formula.t -> Spiral_spl.Formula.t list -> Spiral_spl.Formula.t
(** Replace the [DFT]/[WHT] nonterminals of a formula, in pre-order, with
    the given expansions (sizes checked; substituted formulas are not
    re-traversed).  @raise Failure on arity or size mismatch. *)

val multicore_wht :
  p:int -> mu:int -> m:int -> n:int -> (Spiral_spl.Formula.t, error) result
(** Parallelized Walsh-Hadamard transform [WHT_{mn}] (framework
    generality beyond the DFT). *)

val short_vector_dft :
  nu:int -> Ruletree.t -> (Spiral_spl.Formula.t, error) result
(** Sequential short-vector FFT: expand the tree and rewrite with
    {!Vector_rules} so every operation is ν-way ([Props.vectorized]). *)

val multicore_vector_dft :
  p:int -> mu:int -> nu:int -> Ruletree.t -> (Spiral_spl.Formula.t, error) result
(** The tandem of Section 3.2: the multicore Cooley-Tukey formula (14)
    with its blocks subsequently vectorized — simultaneously fully
    optimized for [smp(p, µ)] (Definition 1) and ν-way vectorized. *)
