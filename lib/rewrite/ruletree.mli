(** Ruletrees: explicit recursive factorization plans for [DFT_n].

    A ruletree records which breakdown rule (with which split) is applied
    at every level — the objects Spiral's search module optimizes over. *)

type t =
  | Leaf of int  (** [DFT_n] computed directly by a codelet. *)
  | Ct of t * t
      (** [Ct (l, r)]: Cooley-Tukey rule (1) with [m = size l],
          [n = size r]. *)

val size : t -> int
(** The transform size the tree computes. *)

val leaf_max : int
(** Largest size computed directly by a codelet (no further split). *)

val good_leaf_max : int
(** Largest leaf with an unrolled (efficient) codelet; the standard tree
    constructors split down to this size. *)

val validate : t -> unit
(** @raise Invalid_argument on empty/undersized leaves. *)

val depth : t -> int

val expand : t -> Spiral_spl.Formula.t
(** The fully expanded sequential SPL formula for the tree. *)

(** {1 Standard tree shapes} *)

val right_expanded : radix:int -> int -> t
(** [right_expanded ~radix n]: iterative-FFT shape
    [Ct (Leaf radix, Ct (Leaf radix, …))]; requires [n] to be a power of
    [radix] (trailing factor may be smaller). *)

val left_expanded : radix:int -> int -> t

val mixed_radix : int -> t
(** Right-expanded tree over radices 8/4/2 (best unrolled codelets),
    avoiding a trailing radix-2 pass; the default high-quality tree. *)

val balanced : int -> t
(** Splits at the divisor closest to [√n] recursively, leaves of size
    [<= leaf_max]. *)

val random : seed:int -> int -> t
(** A random valid tree (for search and property tests). *)

val all_trees : ?max_count:int -> int -> t list
(** All distinct ruletrees for size [n], capped at [max_count]
    (default 2000) — the DP search space. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Parses the {!to_string} format, e.g. ["(8 x (4 x 2))"].
    @raise Invalid_argument on malformed input. *)
