open Spiral_spl
open Formula

type error =
  | Bad_size of string
  | Rewrite_failed of string
  | Not_fully_optimized of string

let error_to_string = function
  | Bad_size s -> "bad size: " ^ s
  | Rewrite_failed s -> "rewrite failed: " ^ s
  | Not_fully_optimized s -> "not fully optimized: " ^ s

(* Replace the [DFT]/[WHT] nonterminals of [f] in pre-order with the given
   expansions (sizes are checked).  Substituted formulas are not themselves
   traversed, so their own codelet-sized [DFT] leaves are preserved. *)
let substitute_nonterminals f expansions =
  let q = ref expansions in
  let rec go f =
    match f with
    | DFT n | WHT n -> (
        match !q with
        | g :: rest when dim g = n ->
            q := rest;
            g
        | g :: _ ->
            failwith
              (Printf.sprintf
                 "Derive.substitute: expansion size %d for nonterminal %d"
                 (dim g) n)
        | [] -> failwith "Derive.substitute: not enough expansions")
    | f -> map_children go f
  in
  let g = go f in
  match !q with
  | [] -> g
  | _ -> failwith "Derive.substitute: unused expansions"

let sequential_dft = Ruletree.expand

let multicore_dft ~p ~mu (tree : Ruletree.t) =
  match tree with
  | Leaf n ->
      Error
        (Bad_size
           (Printf.sprintf
              "DFT_%d: multicore derivation needs a top Cooley-Tukey split" n))
  | Ct (l, r) -> (
      let m = Ruletree.size l and n = Ruletree.size r in
      if m mod (p * mu) <> 0 || n mod (p * mu) <> 0 then
        Error
          (Bad_size
             (Printf.sprintf
                "top split %dx%d: the paper requires pµ | m and pµ | n \
                 (p=%d, µ=%d)"
                m n p mu))
      else
        let top = Breakdown.cooley_tukey ~m ~n in
        match Parallel_rules.parallelize ~p ~mu top with
        | Error e -> Error (Rewrite_failed e)
        | Ok f ->
            if not (Props.fully_optimized ~p ~mu f) then
              Error (Not_fully_optimized (to_string f))
            else
              Ok
                (substitute_nonterminals f
                   [ Ruletree.expand l; Ruletree.expand r ]))

let parallelize_stage ~p ~mu stage =
  match Parallel_rules.parallelize ~p ~mu stage with
  | Ok f -> f
  | Error _ -> stage

let six_step_dft ~p ~mu ~m ~n =
  if m mod p <> 0 || n mod p <> 0 then
    Error (Bad_size (Printf.sprintf "six-step %dx%d: p | m and p | n needed" m n))
  else
    let mn = m * n in
    let par = parallelize_stage ~p ~mu in
    let expand_sub k =
      if k <= Ruletree.leaf_max then DFT k
      else Ruletree.expand (Ruletree.balanced k)
    in
    let stages =
      [ l_perm mn m;
        par (Tensor (I n, DFT m));
        l_perm mn n;
        par (twiddle m n);
        par (Tensor (I m, DFT n));
        l_perm mn m ]
    in
    let f = compose stages in
    Ok (substitute_nonterminals f [ expand_sub m; expand_sub n ])

let rec parallelize_loops ~p f =
  match f with
  | Tensor (I m, a) when m mod p = 0 && m >= p ->
      ParTensor (p, tensor (I (m / p)) a)
  | Tensor (a, I n) when n mod p = 0 && n >= p && not (is_data a) ->
      (* Transpose, run the now-contiguous loop in parallel, transpose
         back: the traditional explicit-permutation approach. *)
      let m = dim a in
      let mn = m * n in
      compose
        [ l_perm mn m;
          ParTensor (p, tensor (I (n / p)) a);
          l_perm mn n ]
  | Diag d when Diag.size d mod p = 0 ->
      ParDirectSum (List.map (fun s -> Diag s) (Diag.split d p))
  | Compose fs -> compose (List.map (parallelize_loops ~p) fs)
  | f -> f

and is_data = function Perm _ | Diag _ | I _ -> true | _ -> false

let multicore_wht ~p ~mu ~m ~n =
  if not Spiral_util.Int_util.(is_pow2 m && is_pow2 n) then
    Error (Bad_size "WHT sizes must be powers of two")
  else if m mod (p * mu) <> 0 || n mod (p * mu) <> 0 then
    Error
      (Bad_size
         (Printf.sprintf "WHT %dx%d: pµ | m and pµ | n needed (p=%d, µ=%d)" m
            n p mu))
  else
    let top = Breakdown.wht_split ~m ~n in
    match Parallel_rules.parallelize ~p ~mu top with
    | Error e -> Error (Rewrite_failed e)
    | Ok f ->
        if not (Props.fully_optimized ~p ~mu f) then
          Error (Not_fully_optimized (to_string f))
        else
          let expand_wht k =
            if k <= Ruletree.leaf_max then WHT k
            else
              (* fully split WHT_k = (WHT_2 ⊗ I)(I ⊗ WHT_{k/2}) … keep
                 codelet-sized leaves. *)
              let rec split k =
                if k <= Ruletree.leaf_max then WHT k
                else
                  compose
                    [ Tensor (WHT 2, I (k / 2)); Tensor (I 2, split (k / 2)) ]
              in
              split k
          in
          Ok (substitute_nonterminals f [ expand_wht m; expand_wht n ])

let short_vector_dft ~nu tree =
  let f = Ruletree.expand tree in
  match Vector_rules.vectorize ~nu f with
  | Error e -> Error (Rewrite_failed e)
  | Ok g ->
      if not (Props.vectorized ~nu g) then
        Error (Not_fully_optimized (to_string g))
      else Ok g

let multicore_vector_dft ~p ~mu ~nu tree =
  match multicore_dft ~p ~mu tree with
  | Error e -> Error e
  | Ok f -> (
      match Vector_rules.vectorize ~nu f with
      | Error e -> Error (Rewrite_failed e)
      | Ok g ->
          if not (Props.vectorized ~nu g && Props.fully_optimized ~p ~mu g)
          then Error (Not_fully_optimized (to_string g))
          else Ok g)
