open Spiral_spl

type t = {
  name : string;
  rewrite : Formula.t -> Formula.t option;
}

let make name rewrite = { name; rewrite }

let apply_root rules f =
  List.find_map
    (fun r -> match r.rewrite f with Some g -> Some (r.name, g) | None -> None)
    rules

let apply_once rules f =
  (* Leftmost-outermost: try the root first, then children left to right,
     rebuilding the spine of the first successful rewrite. *)
  let rec go f =
    match apply_root rules f with
    | Some _ as hit -> hit
    | None -> go_children f
  and go_children f =
    let rebuild mk fs =
      let rec loop prefix = function
        | [] -> None
        | g :: rest -> (
            match go g with
            | Some (name, g') ->
                Some (name, mk (List.rev_append prefix (g' :: rest)))
            | None -> loop (g :: prefix) rest)
      in
      loop [] fs
    in
    match (f : Formula.t) with
    | I _ | DFT _ | WHT _ | Perm _ | Diag _ | VShuffle _ -> None
    | Compose fs -> rebuild Formula.compose fs
    | DirectSum fs -> rebuild (fun fs -> Formula.DirectSum fs) fs
    | ParDirectSum fs -> rebuild (fun fs -> Formula.ParDirectSum fs) fs
    | Tensor (a, b) -> (
        match go a with
        | Some (name, a') -> Some (name, Tensor (a', b))
        | None -> (
            match go b with
            | Some (name, b') -> Some (name, Tensor (a, b'))
            | None -> None))
    | Smp (p, mu, g) ->
        Option.map (fun (name, g') -> (name, Formula.Smp (p, mu, g'))) (go g)
    | ParTensor (p, g) ->
        Option.map (fun (name, g') -> (name, Formula.ParTensor (p, g'))) (go g)
    | CacheTensor (g, mu) ->
        Option.map
          (fun (name, g') -> (name, Formula.CacheTensor (g', mu)))
          (go g)
    | Vec (nu, g) ->
        Option.map (fun (name, g') -> (name, Formula.Vec (nu, g'))) (go g)
    | VTensor (g, nu) ->
        Option.map (fun (name, g') -> (name, Formula.VTensor (g', nu))) (go g)
  in
  go f

let fixpoint ?(max_steps = 10_000) rules f =
  let rec loop steps trace f =
    if steps >= max_steps then
      failwith "Rule.fixpoint: step limit exceeded (non-terminating rules?)"
    else
      match apply_once rules f with
      | None -> (f, List.rev trace)
      | Some (name, g) -> loop (steps + 1) (name :: trace) g
  in
  loop 0 [] f
