(** A generic rewriting engine over SPL formulas.

    Rules are partial functions tried at a node; strategies lift them over
    whole formulas.  This mirrors Spiral's formula-level rewriting system:
    the expensive dependence analysis of a parallelizing compiler is
    replaced by cheap pattern matching on formula constructs. *)

type t = {
  name : string;  (** For traces and error messages. *)
  rewrite : Spiral_spl.Formula.t -> Spiral_spl.Formula.t option;
      (** [rewrite f] is [Some g] if the rule applies at the root of [f]. *)
}

val make :
  string -> (Spiral_spl.Formula.t -> Spiral_spl.Formula.t option) -> t

val apply_root : t list -> Spiral_spl.Formula.t -> (string * Spiral_spl.Formula.t) option
(** First rule (in list order) applicable at the root. *)

val apply_once :
  t list -> Spiral_spl.Formula.t -> (string * Spiral_spl.Formula.t) option
(** One leftmost-outermost rewriting step anywhere in the formula. *)

val fixpoint :
  ?max_steps:int ->
  t list ->
  Spiral_spl.Formula.t ->
  Spiral_spl.Formula.t * string list
(** Repeats {!apply_once} until no rule applies (or [max_steps], default
    10_000, is reached — a safety net against non-terminating rule sets).
    Returns the normal form and the trace of applied rule names. *)
