open Spiral_spl
open Formula

let cooley_tukey ~m ~n =
  if m < 2 || n < 2 then invalid_arg "Breakdown.cooley_tukey: factors >= 2";
  compose
    [ Tensor (DFT m, I n); twiddle m n; Tensor (I m, DFT n);
      l_perm (m * n) m ]

let six_step ~m ~n =
  if m < 2 || n < 2 then invalid_arg "Breakdown.six_step: factors >= 2";
  let mn = m * n in
  compose
    [ l_perm mn m; Tensor (I n, DFT m); l_perm mn n; twiddle m n;
      Tensor (I m, DFT n); l_perm mn m ]

let wht_split ~m ~n =
  if not (Spiral_util.Int_util.is_pow2 m && Spiral_util.Int_util.is_pow2 n)
  then invalid_arg "Breakdown.wht_split: factors must be powers of two";
  compose [ Tensor (WHT m, I n); Tensor (I m, WHT n) ]

let balanced_split n =
  (* The divisor pair (m, n/m) with m closest to sqrt n from below. *)
  let rec best m acc =
    if m * m > n then acc
    else if n mod m = 0 then best (m + 1) (Some m)
    else best (m + 1) acc
  in
  best 2 None

let ct_rule =
  Rule.make "cooley-tukey" (fun f ->
      match f with
      | DFT n when n > 2 -> (
          match balanced_split n with
          | Some m -> Some (cooley_tukey ~m ~n:(n / m))
          | None -> None (* prime: stays a codelet *))
      | _ -> None)
