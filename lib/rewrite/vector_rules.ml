open Spiral_spl
open Formula

(* identity blocks need no vector op: fold them away so composes drop them *)
let vtensor a nu =
  match a with I k -> I (k * nu) | a -> VTensor (a, nu)

let rule_compose =
  Rule.make "vec-compose" (fun f ->
      match f with
      | Vec (nu, Compose fs) ->
          Some (compose (List.map (fun g -> Vec (nu, g)) fs))
      | _ -> None)

let rule_tensor_ai =
  Rule.make "vec-tensor-AI" (fun f ->
      match f with
      | Vec (nu, Tensor (a, I n)) when n mod nu = 0 ->
          Some (vtensor (tensor a (I (n / nu))) nu)
      | _ -> None)

let rule_tensor_ia =
  Rule.make "vec-tensor-IA" (fun f ->
      match f with
      | Vec (nu, Tensor (I m, a))
        when m mod nu = 0 && Formula.dim a mod nu = 0 ->
          (* I_m ⊗ A_k = L^{mk}_m (A_k ⊗ I_m) L^{mk}_k *)
          let k = Formula.dim a in
          Some
            (compose
               [ Vec (nu, l_perm (m * k) m);
                 Vec (nu, tensor a (I m));
                 Vec (nu, l_perm (m * k) k) ])
      | _ -> None)

let rule_stride_perm =
  Rule.make "vec-stride-perm" (fun f ->
      match f with
      | Vec (nu, Perm (Perm.L (mn, m)))
        when m mod nu = 0 && (mn / m) mod nu = 0 && nu > 1 ->
          let n = mn / m in
          Some
            (compose
               [ vtensor (l_perm (mn / nu) m) nu;
                 VShuffle (mn / (nu * nu), nu);
                 vtensor (tensor (I (n / nu)) (l_perm m (m / nu))) nu ])
      | _ -> None)

let rule_diag =
  Rule.make "vec-diag" (fun f ->
      match f with
      | Vec (_, (Diag _ as d)) -> Some d
      | Vec (_, ((DirectSum fs | ParDirectSum fs) as d))
        when List.for_all (fun g -> Shape.diag_entry g <> None) fs ->
          Some d
      | _ -> None)

let rule_partensor =
  Rule.make "vec-par-tensor" (fun f ->
      match f with
      | Vec (nu, ParTensor (p, a)) -> Some (ParTensor (p, Vec (nu, a)))
      | _ -> None)

let rule_cachetensor =
  Rule.make "vec-cache-tensor" (fun f ->
      match f with
      | Vec (nu, CacheTensor (a, mu)) when mu mod nu = 0 ->
          Some
            (if mu = nu then VTensor (a, nu)
             else VTensor (CacheTensor (a, mu / nu), nu))
      | _ -> None)

let rule_identity =
  Rule.make "vec-identity" (fun f ->
      match f with
      | Vec (_, (I _ as id)) -> Some id
      | Vec (1, g) -> Some g (* ν = 1: scalar code is trivially "vector" *)
      | _ -> None)

let all =
  [ rule_compose; rule_identity; rule_diag; rule_cachetensor;
    rule_stride_perm; rule_partensor; rule_tensor_ai; rule_tensor_ia ]

let vectorize ~nu f =
  if nu <= 0 then invalid_arg "Vector_rules.vectorize";
  let g, _ = Rule.fixpoint all (Vec (nu, f)) in
  if has_tag g then
    Error
      (Format.asprintf
         "vectorization incomplete for nu=%d (divisibility preconditions \
          failed): %a"
         nu pp g)
  else Ok g
