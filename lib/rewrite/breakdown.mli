(** Breakdown rules: recursive factorizations of transforms.

    These are the "→" rules of Section 2.2 of the paper; each function
    returns the right-hand side formula for a given split. *)

val cooley_tukey : m:int -> n:int -> Spiral_spl.Formula.t
(** Rule (1): [DFT_{mn} → (DFT_m ⊗ I_n) D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m].
    The sub-DFTs remain nonterminals. *)

val six_step : m:int -> n:int -> Spiral_spl.Formula.t
(** Rule (3), the traditional shared-memory FFT:
    [DFT_{mn} → L^{mn}_m (I_n ⊗ DFT_m) L^{mn}_n D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m]
    with the stride permutations executed as explicit passes. *)

val wht_split : m:int -> n:int -> Spiral_spl.Formula.t
(** [WHT_{mn} → (WHT_m ⊗ I_n)(I_m ⊗ WHT_n)] (no twiddles, no stride
    permutation; both sizes powers of two). *)

val ct_rule : Rule.t
(** Nondeterministic Cooley-Tukey as a rewriting rule: splits [DFT_n] at
    the balanced factorization (used by search strategies; ruletree
    expansion is the precise mechanism). *)
