type t = float array

let create n = Array.make (2 * n) 0.0

let length x = Array.length x / 2

let get x i = { Complex.re = x.(2 * i); im = x.((2 * i) + 1) }

let set x i (z : Complex.t) =
  x.(2 * i) <- z.re;
  x.((2 * i) + 1) <- z.im

let of_complex_array a =
  let x = create (Array.length a) in
  Array.iteri (fun i z -> set x i z) a;
  x

let to_complex_array x = Array.init (length x) (fun i -> get x i)

let copy = Array.copy

let blit src dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Cvec.blit: length mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let fill_zero x = Array.fill x 0 (Array.length x) 0.0

let of_real_list l =
  let x = create (List.length l) in
  List.iteri (fun i re -> x.(2 * i) <- re) l;
  x

let random ?(seed = 42) n =
  let st = Random.State.make [| seed; n |] in
  Array.init (2 * n) (fun _ -> Random.State.float st 2.0 -. 1.0)

let basis n i =
  let x = create n in
  x.(2 * i) <- 1.0;
  x

(* Planar (split re/im) view: same 2n float array, re plane at [0, n),
   im plane at [n, 2n).  The boundary conversions of split-layout plans. *)

let to_planar x dst =
  let n = length x in
  if Array.length dst <> 2 * n then
    invalid_arg "Cvec.to_planar: length mismatch";
  for i = 0 to n - 1 do
    dst.(i) <- x.(2 * i);
    dst.(n + i) <- x.((2 * i) + 1)
  done

let of_planar src x =
  let n = length x in
  if Array.length src <> 2 * n then
    invalid_arg "Cvec.of_planar: length mismatch";
  for i = 0 to n - 1 do
    x.(2 * i) <- src.(i);
    x.((2 * i) + 1) <- src.(n + i)
  done

let max_abs_diff x y =
  if Array.length x <> Array.length y then
    invalid_arg "Cvec.max_abs_diff: length mismatch";
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = Float.abs (x.(i) -. y.(i)) in
    if d > !m then m := d
  done;
  !m

let l2_norm x =
  let s = ref 0.0 in
  Array.iter (fun v -> s := !s +. (v *. v)) x;
  sqrt !s

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let add x y =
  if Array.length x <> Array.length y then invalid_arg "Cvec.add: length mismatch";
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let equal_approx ?tol x y =
  let tol =
    match tol with
    | Some t -> t
    | None -> Float.max 1e-9 (1e-9 *. Float.max (l2_norm x) (l2_norm y))
  in
  max_abs_diff x y <= tol

let pp ppf x =
  Format.fprintf ppf "[@[";
  for i = 0 to length x - 1 do
    if i > 0 then Format.fprintf ppf ";@ ";
    Format.fprintf ppf "%.4g%+.4gi" x.(2 * i) x.((2 * i) + 1)
  done;
  Format.fprintf ppf "@]]"
