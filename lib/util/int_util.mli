(** Integer helpers used throughout the generator: powers of two, divisor
    enumeration, exact logarithms.  All functions are total on the stated
    domains and raise [Invalid_argument] outside them. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two (1 included). *)

val ilog2 : int -> int
(** [ilog2 n] is the exact base-2 logarithm of [n].
    @raise Invalid_argument if [n] is not a positive power of two. *)

val pow : int -> int -> int
(** [pow b e] is [b] raised to [e >= 0] using integer arithmetic. *)

val divides : int -> int -> bool
(** [divides d n] is [true] iff [d > 0] and [d] divides [n]. *)

val divisors : int -> int list
(** All positive divisors of [n > 0] in increasing order. *)

val factor_pairs : int -> (int * int) list
(** [factor_pairs n] lists all pairs [(m, k)] with [m * k = n] and
    [m > 1 && k > 1], in increasing order of [m].  Empty for primes and 1. *)

val gcd : int -> int -> int
(** Greatest common divisor (non-negative result). *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [a / b] rounded towards positive infinity, [b > 0]. *)

val range : int -> int list
(** [range n] is [[0; 1; ...; n - 1]]. *)

val prime_factors : int -> int list
(** Prime factorization of [n > 0] in increasing order, with multiplicity. *)
