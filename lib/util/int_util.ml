let is_pow2 n = n > 0 && n land (n - 1) = 0

let ilog2 n =
  if not (is_pow2 n) then invalid_arg "Int_util.ilog2: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let pow b e =
  if e < 0 then invalid_arg "Int_util.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e lsr 1)
    else go acc (b * b) (e lsr 1)
  in
  go 1 b e

let divides d n = d > 0 && n mod d = 0

let divisors n =
  if n <= 0 then invalid_arg "Int_util.divisors: non-positive";
  let rec go d acc =
    if d > n then List.rev acc
    else if n mod d = 0 then go (d + 1) (d :: acc)
    else go (d + 1) acc
  in
  go 1 []

let factor_pairs n =
  divisors n
  |> List.filter (fun m -> m > 1 && m < n)
  |> List.map (fun m -> (m, n / m))

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let ceil_div a b =
  if b <= 0 then invalid_arg "Int_util.ceil_div: non-positive divisor";
  (a + b - 1) / b

let range n = List.init n (fun i -> i)

let prime_factors n =
  if n <= 0 then invalid_arg "Int_util.prime_factors: non-positive";
  let rec go n d acc =
    if n = 1 then List.rev acc
    else if d * d > n then List.rev (n :: acc)
    else if n mod d = 0 then go (n / d) d (d :: acc)
    else go n (d + 1) acc
  in
  go n 2 []
