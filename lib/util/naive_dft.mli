(** Reference O(n²) discrete Fourier transform, used as ground truth in
    tests and benchmarks.  Forward transform uses [ω_n = exp (-2πi/n)]. *)

val dft : Cvec.t -> Cvec.t
(** [dft x] is [DFT_n x] computed by the definition (no scaling). *)

val idft : Cvec.t -> Cvec.t
(** Inverse transform including the [1/n] normalization, so
    [idft (dft x) ≈ x]. *)

val dft_complex : Complex.t array -> Complex.t array
(** Same as {!dft} on boxed complex arrays. *)
