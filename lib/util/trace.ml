external now_ns : unit -> int = "spiral_trace_now_ns" [@@noalloc]

(* ---- categories ---- *)

let cat_pass = 0
let cat_barrier = 1
let cat_dispatch = 2
let cat_job = 3
let cat_join = 4
let cat_park = 5
let cat_plan = 6
let cat_prepare = 7
let cat_execute = 8
let cat_fallback = 9
let cat_elided = 10
let cat_request = 11

let cat_names =
  [|
    "pass"; "barrier"; "dispatch"; "job"; "join"; "park"; "plan"; "prepare";
    "execute"; "fallback"; "barrier_elided"; "request";
  |]

let cat_name c =
  if c >= 0 && c < Array.length cat_names then cat_names.(c)
  else "cat" ^ string_of_int c

(* ---- rings ---- *)

(* 3 ints per event: tag = (phase lsl 8) lor cat, arg, timestamp.  Only
   immediate values are ever stored, so recording allocates nothing; the
   ring is owned by exactly one worker, so there is no synchronization
   beyond the global enabled flag. *)
type ring = {
  data : int array;
  capacity : int;  (* in events *)
  mutable pos : int;  (* next slot *)
  mutable total : int;  (* events ever emitted *)
}

let default_capacity = 8192
let default_workers = 8
let enabled_flag = Atomic.make false
let rings : ring array ref = ref [||]

let enabled () = Atomic.get enabled_flag

let enable ?(capacity = default_capacity) ?(workers = default_workers) () =
  if capacity < 2 then invalid_arg "Trace.enable: capacity >= 2";
  if workers < 1 then invalid_arg "Trace.enable: workers >= 1";
  rings :=
    Array.init workers (fun _ ->
        { data = Array.make (3 * capacity) 0; capacity; pos = 0; total = 0 });
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let clear () =
  Array.iter
    (fun r ->
      r.pos <- 0;
      r.total <- 0)
    !rings

(* ---- recording ---- *)

let phase_begin = 0
let phase_end = 1
let phase_mark = 2

let emit w ph cat arg =
  if Atomic.get enabled_flag then begin
    let rs = !rings in
    if w >= 0 && w < Array.length rs then begin
      let r = rs.(w) in
      let i = r.pos * 3 in
      r.data.(i) <- (ph lsl 8) lor (cat land 0xff);
      r.data.(i + 1) <- arg;
      r.data.(i + 2) <- now_ns ();
      r.pos <- (if r.pos + 1 = r.capacity then 0 else r.pos + 1);
      r.total <- r.total + 1
    end
  end

let begin_span w cat arg = emit w phase_begin cat arg
let end_span w cat arg = emit w phase_end cat arg
let mark w cat arg = emit w phase_mark cat arg

(* ---- decoding ---- *)

type phase = Begin | End | Mark

type event = { worker : int; phase : phase; cat : int; arg : int; ts_ns : int }

let ring_events w r =
  let nev = min r.total r.capacity in
  let start = if r.total <= r.capacity then 0 else r.pos in
  List.init nev (fun j ->
      let i = (start + j) mod r.capacity * 3 in
      let tag = r.data.(i) in
      {
        worker = w;
        phase =
          (match tag lsr 8 with 0 -> Begin | 1 -> End | _ -> Mark);
        cat = tag land 0xff;
        arg = r.data.(i + 1);
        ts_ns = r.data.(i + 2);
      })

(* After wraparound a ring can start with End events whose Begin was
   overwritten; drop them so exporters always see balanced nesting. *)
let scrubbed w r =
  let depth = ref 0 in
  List.filter
    (fun e ->
      match e.phase with
      | Begin ->
          incr depth;
          true
      | End ->
          if !depth > 0 then begin
            decr depth;
            true
          end
          else false
      | Mark -> true)
    (ring_events w r)

let per_worker_events () = Array.to_list (Array.mapi scrubbed !rings)

let events () = List.concat (per_worker_events ())

let dropped () =
  Array.fold_left (fun a r -> a + max 0 (r.total - r.capacity)) 0 !rings

(* ---- span pairing ---- *)

type span = { worker : int; cat : int; arg : int; ts_ns : int; dur_ns : int }

let worker_spans evs =
  let stack = ref [] in
  let out = ref [] in
  List.iter
    (fun e ->
      match e.phase with
      | Begin -> stack := e :: !stack
      | End -> (
          match !stack with
          | b :: rest ->
              stack := rest;
              out :=
                {
                  worker = e.worker;
                  cat = b.cat;
                  arg = b.arg;
                  ts_ns = b.ts_ns;
                  dur_ns = e.ts_ns - b.ts_ns;
                }
                :: !out
          | [] -> ())
      | Mark -> ())
    evs;
  List.rev !out

let spans () = List.concat_map worker_spans (per_worker_events ())

(* ---- Chrome trace_event export ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_name (e : event) =
  match e.cat with
  | c when c = cat_pass -> Printf.sprintf "pass %d" e.arg
  | c when c = cat_elided -> Printf.sprintf "barrier elided after pass %d" e.arg
  | c -> cat_name c

let to_chrome_json () =
  let per_worker = per_worker_events () in
  let t0 =
    List.fold_left
      (fun acc evs ->
        List.fold_left (fun acc (e : event) -> min acc e.ts_ns) acc evs)
      max_int per_worker
  in
  let t0 = if t0 = max_int then 0 else t0 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [";
  let first = ref true in
  let add_obj s =
    if not !first then Buffer.add_string b ",\n ";
    first := false;
    Buffer.add_string b s
  in
  List.iter
    (fun evs ->
      match evs with
      | [] -> ()
      | (e : event) :: _ ->
          add_obj
            (Printf.sprintf
               "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \
                \"tid\": %d, \"args\": {\"name\": \"worker %d\"}}"
               e.worker e.worker))
    per_worker;
  List.iter
    (List.iter (fun (e : event) ->
         let ts = float_of_int (e.ts_ns - t0) /. 1e3 in
         let common =
           Printf.sprintf
             "\"name\": \"%s\", \"cat\": \"%s\", \"ts\": %.3f, \"pid\": 1, \
              \"tid\": %d"
             (json_escape (event_name e))
             (json_escape (cat_name e.cat))
             ts e.worker
         in
         match e.phase with
         | Begin ->
             add_obj
               (Printf.sprintf "{%s, \"ph\": \"B\", \"args\": {\"arg\": %d}}"
                  common e.arg)
         | End -> add_obj (Printf.sprintf "{%s, \"ph\": \"E\"}" common)
         | Mark ->
             add_obj
               (Printf.sprintf
                  "{%s, \"ph\": \"i\", \"s\": \"t\", \"args\": {\"arg\": \
                   %d}}"
                  common e.arg)))
    per_worker;
  Buffer.add_string b "],\n\"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

(* ---- derived metrics ---- *)

type report = {
  event_count : int;
  dropped_count : int;
  wall_ns : int;
  busy_ns : int array;
  barrier_ns : int array;
  barrier_wait_frac : float;
  load_imbalance : float;
  dispatch_latency_ns : float;
}

let report () =
  let per_worker = per_worker_events () in
  let workers = List.length per_worker in
  let busy = Array.make (max 1 workers) 0 in
  let barrier = Array.make (max 1 workers) 0 in
  let count = ref 0 in
  let tmin = ref max_int and tmax = ref min_int in
  List.iter
    (List.iter (fun (e : event) ->
         incr count;
         if e.ts_ns < !tmin then tmin := e.ts_ns;
         if e.ts_ns > !tmax then tmax := e.ts_ns))
    per_worker;
  List.iter
    (fun evs ->
      List.iter
        (fun (s : span) ->
          if s.cat = cat_pass then busy.(s.worker) <- busy.(s.worker) + s.dur_ns
          else if s.cat = cat_barrier then
            barrier.(s.worker) <- barrier.(s.worker) + s.dur_ns)
        (worker_spans evs))
    per_worker;
  let total_busy = Array.fold_left ( + ) 0 busy in
  let total_barrier = Array.fold_left ( + ) 0 barrier in
  let frac =
    if total_busy + total_barrier = 0 then 0.0
    else float_of_int total_barrier /. float_of_int (total_busy + total_barrier)
  in
  let active = Array.fold_left (fun a b -> if b > 0 then a + 1 else a) 0 busy in
  let imbalance =
    if active = 0 then 1.0
    else
      let mx = Array.fold_left max 0 busy in
      let mean = float_of_int total_busy /. float_of_int active in
      if mean <= 0.0 then 1.0 else float_of_int mx /. mean
  in
  (* dispatch latency: match each dispatch mark (worker 0, arg = pool
     generation) with the job Begin events carrying the same generation
     on workers other than the caller *)
  let dispatches = Hashtbl.create 8 in
  let latencies = ref [] in
  List.iter
    (List.iter (fun (e : event) ->
         if e.phase = Mark && e.cat = cat_dispatch then
           Hashtbl.replace dispatches e.arg e.ts_ns))
    per_worker;
  List.iter
    (List.iter (fun (e : event) ->
         if e.phase = Begin && e.cat = cat_job && e.worker > 0 then
           match Hashtbl.find_opt dispatches e.arg with
           | Some t -> latencies := (e.ts_ns - t) :: !latencies
           | None -> ()))
    per_worker;
  let dispatch_latency =
    match !latencies with
    | [] -> 0.0
    | l ->
        float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  {
    event_count = !count;
    dropped_count = dropped ();
    wall_ns = (if !tmax >= !tmin then !tmax - !tmin else 0);
    busy_ns = busy;
    barrier_ns = barrier;
    barrier_wait_frac = frac;
    load_imbalance = imbalance;
    dispatch_latency_ns = dispatch_latency;
  }

let summary () =
  let all = spans () in
  let r = report () in
  let workers = Array.length r.busy_ns in
  let b = Buffer.create 1024 in
  Printf.bprintf b "trace: %d worker ring(s), %d event(s), %d dropped\n"
    workers r.event_count r.dropped_count;
  Printf.bprintf b "wall clock: %.1f us\n" (float_of_int r.wall_ns /. 1e3);
  (* per-pass table: one row per pass index, one column per worker *)
  let pass_ids =
    List.sort_uniq compare
      (List.filter_map
         (fun (s : span) -> if s.cat = cat_pass then Some s.arg else None)
         all)
  in
  if pass_ids <> [] then begin
    Printf.bprintf b "%-10s" "pass";
    for w = 0 to workers - 1 do
      Printf.bprintf b "%12s" (Printf.sprintf "w%d (us)" w)
    done;
    Printf.bprintf b "%12s\n" "max/mean";
    List.iter
      (fun k ->
        let per_w = Array.make workers 0 in
        List.iter
          (fun (s : span) ->
            if s.cat = cat_pass && s.arg = k then
              per_w.(s.worker) <- per_w.(s.worker) + s.dur_ns)
          all;
        Printf.bprintf b "%-10d" k;
        Array.iter
          (fun ns -> Printf.bprintf b "%12.1f" (float_of_int ns /. 1e3))
          per_w;
        let total = Array.fold_left ( + ) 0 per_w in
        let active =
          Array.fold_left (fun a v -> if v > 0 then a + 1 else a) 0 per_w
        in
        let ratio =
          if active = 0 || total = 0 then 1.0
          else
            float_of_int (Array.fold_left max 0 per_w)
            /. (float_of_int total /. float_of_int active)
        in
        Printf.bprintf b "%12.2f\n" ratio)
      pass_ids
  end;
  Printf.bprintf b "barrier wait:";
  Array.iteri
    (fun w ns ->
      Printf.bprintf b "  w%d %.1fus" w (float_of_int ns /. 1e3))
    r.barrier_ns;
  Printf.bprintf b "   (fraction %.1f%%)\n" (100.0 *. r.barrier_wait_frac);
  Printf.bprintf b "load imbalance (max/mean busy): %.2f\n" r.load_imbalance;
  Printf.bprintf b "dispatch latency: %.2f us\n" (r.dispatch_latency_ns /. 1e3);
  Buffer.contents b
