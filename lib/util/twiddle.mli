(** Roots of unity and twiddle factor tables.

    The DFT convention is [ω_n = exp (-2πi / n)] (forward transform with
    negative exponent), matching the paper's definition
    [DFT_n = [ω_n^{kl}]]. *)

val omega : int -> int -> Complex.t
(** [omega n k] is [exp (-2πi k / n)], computed with argument reduction so
    that [omega n k] is accurate for any [k] (including [k >= n]). *)

val omega_pow : n:int -> k:int -> l:int -> Complex.t
(** [omega_pow ~n ~k ~l] is [ω_n^{k·l}] with the product reduced mod [n]
    before evaluation (avoids precision loss for large exponents). *)

val twiddle_diag : m:int -> n:int -> Complex.t array
(** The diagonal of the twiddle matrix [D_{m,n}] of the Cooley-Tukey rule
    [DFT_{mn} = (DFT_m ⊗ I_n) D_{m,n} (I_m ⊗ DFT_n) L^{mn}_m]:
    entry [i*n + j] is [ω_{mn}^{i·j}] for [0 <= i < m], [0 <= j < n]. *)

val twiddle_table : m:int -> n:int -> float array
(** Same as {!twiddle_diag} but interleaved re/im, ready for kernels. *)
