(** Flat interleaved complex vectors.

    A vector of [n] complex numbers is stored as a [float array] of length
    [2 * n]: the real part of element [i] at index [2 * i], the imaginary
    part at [2 * i + 1].  This is the layout the generated FFT kernels
    operate on (the same layout FFTW and Spiral-generated C code use for
    interleaved complex data). *)

type t = float array
(** Interleaved complex data; length is always even. *)

val create : int -> t
(** [create n] is a zero vector of [n] complex elements. *)

val length : t -> int
(** Number of complex elements. *)

val get : t -> int -> Complex.t
(** [get x i] is the [i]-th complex element. *)

val set : t -> int -> Complex.t -> unit
(** [set x i z] stores [z] as the [i]-th complex element. *)

val of_complex_array : Complex.t array -> t
val to_complex_array : t -> Complex.t array

val copy : t -> t

val blit : t -> t -> unit
(** [blit src dst] copies all of [src] into [dst]; lengths must match. *)

val fill_zero : t -> unit

val of_real_list : float list -> t
(** Build from real samples (imaginary parts zero). *)

val random : ?seed:int -> int -> t
(** [random n] is a vector of [n] complex elements with parts drawn
    uniformly from [[-1, 1)], deterministic for a given [seed]. *)

val basis : int -> int -> t
(** [basis n i] is the [i]-th standard basis vector of length [n]. *)

val to_planar : t -> float array -> unit
(** [to_planar x dst] transposes interleaved [x] into the planar (split
    re/im) layout: [dst] (length [2n]) receives the real plane at
    [0, n) and the imaginary plane at [n, 2n) — the boundary conversion
    into a split-layout plan. *)

val of_planar : float array -> t -> unit
(** [of_planar src x] is the inverse of {!to_planar}. *)

val max_abs_diff : t -> t -> float
(** L∞ distance between two vectors of equal length. *)

val l2_norm : t -> float

val scale : float -> t -> unit
(** In-place multiplication of every entry by a real scalar. *)

val add : t -> t -> t
(** Pointwise sum (fresh vector). *)

val equal_approx : ?tol:float -> t -> t -> bool
(** [equal_approx x y] is [true] when [max_abs_diff x y <= tol]
    (default [tol] = [1e-9] scaled by the larger norm, min 1e-9). *)

val pp : Format.formatter -> t -> unit
