exception Injected of string

type site = {
  mutable after : int;
  mutable times : int;
  prob : float option;
  scope : string option;
      (* [None] = global: the site fires for every caller.  [Some tag] =
         tenant-scoped: only [check_scoped ~scope:tag] can trip it, so a
         service can arm chaos for one client without touching the
         others. *)
  rng : Random.State.t;
  mutable hits : int;
  mutable fired : int;
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* Fast-path flag: number of armed sites.  [check] is called from hot
   loops on every transform, so it must cost one atomic load when the
   registry is empty. *)
let armed = Atomic.make 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm ~site ?(after = 0) ?(times = 1) ?prob ?scope ?(seed = 0) () =
  if after < 0 then invalid_arg "Fault.arm: after >= 0";
  if times < 0 then invalid_arg "Fault.arm: times >= 0";
  (match prob with
  | Some p when not (p >= 0.0 && p <= 1.0) ->
      invalid_arg "Fault.arm: prob in [0, 1]"
  | _ -> ());
  with_lock (fun () ->
      Hashtbl.replace registry site
        {
          after;
          times;
          prob;
          scope;
          rng = Random.State.make [| seed; Hashtbl.hash site |];
          hits = 0;
          fired = 0;
        };
      Atomic.set armed (Hashtbl.length registry))

let disarm site =
  with_lock (fun () ->
      Hashtbl.remove registry site;
      Atomic.set armed (Hashtbl.length registry))

let reset () =
  with_lock (fun () ->
      Hashtbl.reset registry;
      Atomic.set armed 0)

(* Scope matching: a global site ([scope = None]) is eligible for every
   caller; a scoped site only for callers presenting the same tag.
   Hit/after/times accounting only advances on eligible hits, so a
   scoped site's deterministic schedule is unaffected by other tenants'
   traffic. *)
let check_gen ~scope name =
  if Atomic.get armed > 0 then begin
    let fire =
      with_lock (fun () ->
          match Hashtbl.find_opt registry name with
          | None -> false
          | Some s when s.scope <> None && s.scope <> scope -> false
          | Some s ->
              s.hits <- s.hits + 1;
              if s.times <= 0 then false
              else if s.after > 0 then begin
                s.after <- s.after - 1;
                false
              end
              else
                let f =
                  match s.prob with
                  | None -> true
                  | Some p -> Random.State.float s.rng 1.0 < p
                in
                if f then begin
                  s.fired <- s.fired + 1;
                  s.times <- s.times - 1
                end;
                f)
    in
    if fire then raise (Injected name)
  end

let check name = check_gen ~scope:None name

let check_scoped ~scope name = check_gen ~scope:(Some scope) name

let hits name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with None -> 0 | Some s -> s.hits)

let fired name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with None -> 0 | Some s -> s.fired)

let active () = Atomic.get armed > 0
