let table : (string, int ref) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(by = 1) name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add table name (ref by))

let get name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with Some r -> !r | None -> 0)

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () = with_lock (fun () -> Hashtbl.reset table)

(* Prometheus text exposition format: every counter as one sample of a
   single metric family, the counter name as a label (counter names
   contain dots, which are not legal in Prometheus metric names). *)
let to_prometheus () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# HELP spiral_events_total Runtime event counters \
     (Spiral_util.Counters).\n";
  Buffer.add_string b "# TYPE spiral_events_total counter\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "spiral_events_total{name=\"%s\"} %d\n" k v))
    (snapshot ());
  Buffer.contents b
