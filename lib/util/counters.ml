let table : (string, int ref) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(by = 1) name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add table name (ref by))

let get name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with Some r -> !r | None -> 0)

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Observations: bounded-memory summaries (count/sum/max) of a measured
   quantity, e.g. reply latencies.  Like counters they are only touched
   on service/failure paths, never in the per-sample hot loop. *)

type obs = { count : int; sum : float; max : float }

let obs_table : (string, obs ref) Hashtbl.t = Hashtbl.create 16

let observe name v =
  with_lock (fun () ->
      match Hashtbl.find_opt obs_table name with
      | Some r ->
          let o = !r in
          r := { count = o.count + 1; sum = o.sum +. v; max = Float.max o.max v }
      | None -> Hashtbl.add obs_table name (ref { count = 1; sum = v; max = v }))

let observation name =
  with_lock (fun () ->
      Option.map (fun r -> !r) (Hashtbl.find_opt obs_table name))

let observations () =
  with_lock (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) obs_table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset obs_table)

(* Prometheus text exposition format: every counter as one sample of a
   single metric family, the counter name as a label (counter names
   contain dots, which are not legal in Prometheus metric names). *)
let to_prometheus () =
  let b = Buffer.create 256 in
  Buffer.add_string b
    "# HELP spiral_events_total Runtime event counters \
     (Spiral_util.Counters).\n";
  Buffer.add_string b "# TYPE spiral_events_total counter\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string b
        (Printf.sprintf "spiral_events_total{name=\"%s\"} %d\n" k v))
    (snapshot ());
  (match observations () with
  | [] -> ()
  | obs ->
      Buffer.add_string b
        "# HELP spiral_observed Observation summaries \
         (Spiral_util.Counters.observe).\n";
      Buffer.add_string b "# TYPE spiral_observed gauge\n";
      List.iter
        (fun (k, o) ->
          Buffer.add_string b
            (Printf.sprintf
               "spiral_observed{name=\"%s\",stat=\"count\"} %d\n\
                spiral_observed{name=\"%s\",stat=\"sum\"} %.6g\n\
                spiral_observed{name=\"%s\",stat=\"max\"} %.6g\n"
               k o.count k o.sum k o.max))
        obs);
  Buffer.contents b
