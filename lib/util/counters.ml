let table : (string, int ref) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let incr ?(by = 1) name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add table name (ref by))

let get name =
  with_lock (fun () ->
      match Hashtbl.find_opt table name with Some r -> !r | None -> 0)

let snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) table [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () = with_lock (fun () -> Hashtbl.reset table)
