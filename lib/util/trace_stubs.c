/* Monotonic clock for Spiral_util.Trace.

   Returns CLOCK_MONOTONIC nanoseconds as a tagged OCaml int: 63 bits
   hold ~146 years of nanoseconds, and an immediate return means the
   tracing hot path performs no allocation at all (a float- or
   int64-returning external would box its result). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value spiral_trace_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
