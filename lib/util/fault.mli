(** Deterministic fault-injection registry.

    Production code declares named injection sites by calling {!check}
    at the places where a fault can strike (worker loop entry, barrier
    entry, pass boundaries, mid-save, ...).  Tests and the stress harness
    arm sites with a failure count and/or probability; an armed site makes
    {!check} raise {!Injected}.  Draws come from a per-site
    [Random.State] so a given [(site, seed)] pair replays the same fault
    schedule, which keeps stress failures reproducible.

    When nothing is armed, {!check} is a single atomic load — cheap
    enough to leave in hot paths permanently. *)

exception Injected of string
(** Raised by {!check} at an armed site; the payload is the site name. *)

val arm :
  site:string ->
  ?after:int ->
  ?times:int ->
  ?prob:float ->
  ?scope:string ->
  ?seed:int ->
  unit ->
  unit
(** [arm ~site ()] arms an injection site.  Re-arming replaces any
    previous configuration for the same site.

    - [after] (default 0): number of {!check} hits that pass through
      unharmed before the site becomes eligible to fire;
    - [times] (default 1): maximum number of times the site fires before
      going quiet (use [max_int] for "every eligible hit");
    - [prob] (default [None], i.e. certainty): when given, each eligible
      hit fires with probability [prob], drawn from a PRNG seeded with
      [seed];
    - [scope] (default [None] = global): when given, the site only fires
      for {!check_scoped} calls presenting the same scope tag — the
      service uses this to aim chaos at a single client (tenant) while
      other tenants' requests pass the same site unharmed.  A global
      site fires for scoped and unscoped callers alike;
    - [seed] (default 0): seed of the per-site PRNG (only meaningful with
      [prob]). *)

val disarm : string -> unit
(** Disarm a single site (no-op if not armed). *)

val reset : unit -> unit
(** Disarm every site. *)

val check : string -> unit
(** Injection point.  Raises {!Injected} if the named site is armed and
    elects to fire; otherwise returns.  A site armed with a [scope] never
    fires here — only via {!check_scoped} with the matching tag.  Safe to
    call from any domain. *)

val check_scoped : scope:string -> string -> unit
(** [check_scoped ~scope name] is {!check} for a caller acting on behalf
    of tenant [scope]: the site fires when armed globally {e or} armed
    with this exact scope.  Eligibility accounting ([after]/[times]/
    {!hits}) of a scoped site only advances on matching calls, so one
    tenant's fault schedule is independent of the others' traffic. *)

val hits : string -> int
(** Number of times {!check} reached this site since it was armed
    (0 for unarmed sites; for scoped sites, only scope-matching hits
    count). *)

val fired : string -> int
(** Number of faults this site has injected since it was armed. *)

val active : unit -> bool
(** [true] when at least one site is armed. *)
