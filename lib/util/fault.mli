(** Deterministic fault-injection registry.

    Production code declares named injection sites by calling {!check}
    at the places where a fault can strike (worker loop entry, barrier
    entry, pass boundaries, mid-save, ...).  Tests and the stress harness
    arm sites with a failure count and/or probability; an armed site makes
    {!check} raise {!Injected}.  Draws come from a per-site
    [Random.State] so a given [(site, seed)] pair replays the same fault
    schedule, which keeps stress failures reproducible.

    When nothing is armed, {!check} is a single atomic load — cheap
    enough to leave in hot paths permanently. *)

exception Injected of string
(** Raised by {!check} at an armed site; the payload is the site name. *)

val arm :
  site:string ->
  ?after:int ->
  ?times:int ->
  ?prob:float ->
  ?seed:int ->
  unit ->
  unit
(** [arm ~site ()] arms an injection site.  Re-arming replaces any
    previous configuration for the same site.

    - [after] (default 0): number of {!check} hits that pass through
      unharmed before the site becomes eligible to fire;
    - [times] (default 1): maximum number of times the site fires before
      going quiet (use [max_int] for "every eligible hit");
    - [prob] (default [None], i.e. certainty): when given, each eligible
      hit fires with probability [prob], drawn from a PRNG seeded with
      [seed];
    - [seed] (default 0): seed of the per-site PRNG (only meaningful with
      [prob]). *)

val disarm : string -> unit
(** Disarm a single site (no-op if not armed). *)

val reset : unit -> unit
(** Disarm every site. *)

val check : string -> unit
(** Injection point.  Raises {!Injected} if the named site is armed and
    elects to fire; otherwise returns.  Safe to call from any domain. *)

val hits : string -> int
(** Number of times {!check} reached this site since it was armed
    (0 for unarmed sites). *)

val fired : string -> int
(** Number of faults this site has injected since it was armed. *)

val active : unit -> bool
(** [true] when at least one site is armed. *)
