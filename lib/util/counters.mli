(** Global named event counters for degradation and robustness telemetry.

    The runtime bumps counters when it survives something that should not
    happen in a healthy run — a barrier timeout, a pool rebuild, a
    sequential fallback, a salvaged wisdom line — so callers and
    operators can distinguish "fast because everything worked" from
    "correct because we degraded".  Counting is mutex-protected and safe
    from any domain; it only happens on failure paths, never in the
    per-sample hot loop. *)

val incr : ?by:int -> string -> unit
(** [incr name] adds [by] (default 1) to the named counter, creating it
    at 0 first if needed. *)

val get : string -> int
(** Current value (0 for counters never incremented). *)

val snapshot : unit -> (string * int) list
(** All nonzero counters, sorted by name. *)

val reset : unit -> unit
(** Zero every counter and observation (test isolation). *)

(** {2 Observations}

    Bounded-memory summaries of a measured quantity (count, sum, max) —
    enough to assert "every error reply left within [t] µs" without
    storing per-request samples.  Same locking discipline as the
    counters. *)

type obs = { count : int; sum : float; max : float }

val observe : string -> float -> unit
(** [observe name v] folds [v] into the named summary, creating it on
    first use. *)

val observation : string -> obs option
(** Current summary, [None] if nothing was ever observed. *)

val observations : unit -> (string * obs) list
(** All summaries, sorted by name. *)

val to_prometheus : unit -> string
(** Every nonzero counter in the Prometheus text exposition format, as
    samples of one metric family [spiral_events_total] with the counter
    name as a [name] label; observation summaries follow as
    [spiral_observed{name, stat="count"|"sum"|"max"}] samples. *)
