(** Per-worker, fixed-capacity, allocation-free tracing of the parallel
    runtime.

    Each worker owns a preallocated ring of events (3 immediate ints per
    event: tag, argument, monotonic-clock nanoseconds), so recording a
    span boundary costs three array stores and one [clock_gettime] — no
    allocation, no locks, no contention between workers.  When tracing
    is disabled ({!enabled} [= false], the default) every hook is a
    single atomic load and branch, cheap enough to leave compiled into
    the per-pass hot path permanently.

    The runtime emits spans at pass granularity: {!Pool} dispatch, job
    and join spans plus idle parking, {!Barrier} arrive→release waits,
    per-pass compute in [Par_exec] (with instant markers for elided
    barriers), and plan/prepare/execute/fallback spans in the engine.
    Exporters turn the rings into a Chrome [trace_event] JSON file
    (loadable in [chrome://tracing] or Perfetto), a per-pass text
    summary, and a derived {!report} (barrier-wait fraction, load
    imbalance, dispatch latency).

    Rings are single-writer (worker [w] writes only ring [w]) and the
    exporters are meant to run after the traced execution has joined;
    enable tracing while the runtime is idle, run the workload, then
    export.  When a ring wraps, the oldest events are overwritten and
    counted in {!dropped}. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary origin.  Immediate
    (never allocates). *)

(** {1 Lifecycle} *)

val enable : ?capacity:int -> ?workers:int -> unit -> unit
(** [enable ()] preallocates [workers] rings of [capacity] events each
    (defaults: 8 workers, 8192 events) and turns the hooks on.  Calling
    it again reallocates fresh, empty rings. *)

val disable : unit -> unit
(** Stop recording.  The rings keep their contents for the exporters. *)

val enabled : unit -> bool

val clear : unit -> unit
(** Empty every ring without reallocating (keeps tracing on if on). *)

(** {1 Event categories} *)

val cat_pass : int  (** per-worker compute of one pass; arg = pass index *)

val cat_barrier : int  (** a barrier wait, arrive to release *)

val cat_dispatch : int  (** instant: pool publishes a job; arg = generation *)

val cat_job : int  (** a worker executing one pool job; arg = generation *)

val cat_join : int  (** the caller waiting for workers to finish *)

val cat_park : int  (** an idle worker waiting for the next dispatch *)

val cat_plan : int  (** engine: derivation + compilation; arg = n *)

val cat_prepare : int  (** engine: baking the parallel schedule; arg = n *)

val cat_execute : int  (** engine: one transform execution; arg = n *)

val cat_fallback : int  (** instant: degraded to sequential execution *)

val cat_elided : int  (** instant: a barrier statically elided; arg = pass *)

val cat_request : int
(** one service request, admission to reply; arg = request id *)

val cat_name : int -> string

(** {1 Recording (the hot path)} *)

val begin_span : int -> int -> int -> unit
(** [begin_span worker cat arg].  No-op when disabled or [worker] has no
    ring; never allocates. *)

val end_span : int -> int -> int -> unit

val mark : int -> int -> int -> unit
(** An instant event. *)

(** {1 Inspection and export} *)

type phase = Begin | End | Mark

type event = { worker : int; phase : phase; cat : int; arg : int; ts_ns : int }

val events : unit -> event list
(** Every recorded event, oldest first within each worker.  [End] events
    whose [Begin] was overwritten by ring wraparound are scrubbed. *)

val dropped : unit -> int
(** Events lost to ring wraparound, summed over workers. *)

type span = { worker : int; cat : int; arg : int; ts_ns : int; dur_ns : int }

val spans : unit -> span list
(** Begin/End pairs matched per worker (LIFO), oldest first. *)

val to_chrome_json : unit -> string
(** The rings as a Chrome [trace_event] JSON object: one [pid], one
    [tid] per worker (with thread-name metadata), ["B"]/["E"] span
    events and ["i"] instants, timestamps in microseconds relative to
    the first recorded event. *)

val summary : unit -> string
(** Human-readable per-pass timing table: per-worker compute time and
    imbalance for every pass, barrier-wait totals, dispatch latency. *)

type report = {
  event_count : int;
  dropped_count : int;
  wall_ns : int;  (** first to last event timestamp *)
  busy_ns : int array;  (** per worker, total pass compute *)
  barrier_ns : int array;  (** per worker, total barrier wait *)
  barrier_wait_frac : float;
      (** total barrier wait / (total compute + total barrier wait) *)
  load_imbalance : float;
      (** max/mean of per-worker compute over workers that computed *)
  dispatch_latency_ns : float;
      (** mean delay from a pool dispatch to a worker starting the job *)
}

val report : unit -> report
(** Derived per-transform metrics (zeros when nothing was recorded). *)
