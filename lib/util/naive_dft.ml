let dft_gen ~sign ~norm x =
  let n = Cvec.length x in
  let y = Cvec.create n in
  for k = 0 to n - 1 do
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for l = 0 to n - 1 do
      let w = Twiddle.omega_pow ~n ~k ~l in
      let w_im = sign *. w.im in
      let xr = x.(2 * l) and xi = x.((2 * l) + 1) in
      acc_re := !acc_re +. (xr *. w.re) -. (xi *. w_im);
      acc_im := !acc_im +. (xr *. w_im) +. (xi *. w.re)
    done;
    y.(2 * k) <- norm *. !acc_re;
    y.((2 * k) + 1) <- norm *. !acc_im
  done;
  y

let dft x = dft_gen ~sign:1.0 ~norm:1.0 x

let idft x =
  let n = Cvec.length x in
  if n = 0 then Cvec.create 0
  else dft_gen ~sign:(-1.0) ~norm:(1.0 /. float_of_int n) x

let dft_complex a = Cvec.to_complex_array (dft (Cvec.of_complex_array a))
