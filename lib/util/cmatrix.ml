type t = Complex.t array array

let make r c = Array.make_matrix r c Complex.zero

let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))

let rows m = Array.length m

let cols m = if rows m = 0 then 0 else Array.length m.(0)

let identity n = init n n (fun i j -> if i = j then Complex.one else Complex.zero)

let mul a b =
  let ra = rows a and ca = cols a and rb = rows b and cb = cols b in
  if ca <> rb then invalid_arg "Cmatrix.mul: dimension mismatch";
  init ra cb (fun i j ->
      let acc = ref Complex.zero in
      for k = 0 to ca - 1 do
        acc := Complex.add !acc (Complex.mul a.(i).(k) b.(k).(j))
      done;
      !acc)

let kronecker a b =
  let ra = rows a and ca = cols a and rb = rows b and cb = cols b in
  init (ra * rb) (ca * cb) (fun i j ->
      Complex.mul a.(i / rb).(j / cb) b.(i mod rb).(j mod cb))

let direct_sum blocks =
  let r = List.fold_left (fun acc b -> acc + rows b) 0 blocks in
  let c = List.fold_left (fun acc b -> acc + cols b) 0 blocks in
  let m = make r c in
  let _ =
    List.fold_left
      (fun (i0, j0) b ->
        for i = 0 to rows b - 1 do
          for j = 0 to cols b - 1 do
            m.(i0 + i).(j0 + j) <- b.(i).(j)
          done
        done;
        (i0 + rows b, j0 + cols b))
      (0, 0) blocks
  in
  m

let diag d =
  let n = Array.length d in
  init n n (fun i j -> if i = j then d.(i) else Complex.zero)

let of_permutation sigma =
  let n = Array.length sigma in
  init n n (fun i j -> if sigma.(i) = j then Complex.one else Complex.zero)

let apply m x =
  let r = rows m and c = cols m in
  if Cvec.length x <> c then invalid_arg "Cmatrix.apply: dimension mismatch";
  let y = Cvec.create r in
  for i = 0 to r - 1 do
    let acc_re = ref 0.0 and acc_im = ref 0.0 in
    for j = 0 to c - 1 do
      let a : Complex.t = m.(i).(j) in
      let xr = x.(2 * j) and xi = x.((2 * j) + 1) in
      acc_re := !acc_re +. (a.re *. xr) -. (a.im *. xi);
      acc_im := !acc_im +. (a.re *. xi) +. (a.im *. xr)
    done;
    y.(2 * i) <- !acc_re;
    y.((2 * i) + 1) <- !acc_im
  done;
  y

let max_abs_diff a b =
  if rows a <> rows b || cols a <> cols b then
    invalid_arg "Cmatrix.max_abs_diff: dimension mismatch";
  let m = ref 0.0 in
  for i = 0 to rows a - 1 do
    for j = 0 to cols a - 1 do
      let d = Complex.norm (Complex.sub a.(i).(j) b.(i).(j)) in
      if d > !m then m := d
    done
  done;
  !m

let equal_approx ?(tol = 1e-9) a b =
  rows a = rows b && cols a = cols b && max_abs_diff a b <= tol

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun row ->
      Format.fprintf ppf "@[<h>";
      Array.iter
        (fun (z : Complex.t) -> Format.fprintf ppf "%6.2f%+6.2fi " z.re z.im)
        row;
      Format.fprintf ppf "@]@,")
    m;
  Format.fprintf ppf "@]"
