let two_pi = 2.0 *. Float.pi

let omega n k =
  if n <= 0 then invalid_arg "Twiddle.omega: non-positive order";
  let k = ((k mod n) + n) mod n in
  let theta = -.two_pi *. float_of_int k /. float_of_int n in
  { Complex.re = cos theta; im = sin theta }

let omega_pow ~n ~k ~l =
  if n <= 0 then invalid_arg "Twiddle.omega_pow: non-positive order";
  (* Reduce each factor first so k*l cannot overflow for the sizes we use. *)
  let k = ((k mod n) + n) mod n and l = ((l mod n) + n) mod n in
  omega n (k * l mod n)

let twiddle_diag ~m ~n =
  let mn = m * n in
  Array.init mn (fun idx ->
      let i = idx / n and j = idx mod n in
      omega_pow ~n:mn ~k:i ~l:j)

let twiddle_table ~m ~n =
  let diag = twiddle_diag ~m ~n in
  let t = Array.make (2 * m * n) 0.0 in
  Array.iteri
    (fun i (z : Complex.t) ->
      t.(2 * i) <- z.re;
      t.((2 * i) + 1) <- z.im)
    diag;
  t
