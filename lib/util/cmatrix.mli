(** Dense complex matrices, used only for the exact semantics of SPL
    formulas in tests and verification (never on the fast path). *)

type t = Complex.t array array
(** Row-major: [m.(i).(j)] is the entry at row [i], column [j].
    All rows have equal length. *)

val make : int -> int -> t
(** [make r c] is the [r × c] zero matrix. *)

val init : int -> int -> (int -> int -> Complex.t) -> t

val rows : t -> int
val cols : t -> int

val identity : int -> t

val mul : t -> t -> t
(** Matrix product. @raise Invalid_argument on dimension mismatch. *)

val kronecker : t -> t -> t
(** Tensor (Kronecker) product [A ⊗ B]. *)

val direct_sum : t list -> t
(** Block-diagonal matrix with the given blocks. *)

val diag : Complex.t array -> t

val of_permutation : int array -> t
(** [of_permutation sigma] is the matrix [P] with [P.(i).(sigma.(i)) = 1]:
    applying [P] to a vector [x] yields [y.(i) = x.(sigma.(i))], i.e.
    [sigma] maps output position to input position (gather convention). *)

val apply : t -> Cvec.t -> Cvec.t
(** Matrix-vector product on interleaved complex vectors. *)

val equal_approx : ?tol:float -> t -> t -> bool

val max_abs_diff : t -> t -> float

val pp : Format.formatter -> t -> unit
