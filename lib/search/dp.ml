open Spiral_util
open Spiral_rewrite

type measure = Ruletree.t -> float

let candidate_leaves n =
  if n >= 2 && n <= Ruletree.leaf_max then [ Ruletree.Leaf n ] else []

let search ?memo ~measure n =
  let memo =
    match memo with Some m -> m | None -> Hashtbl.create 64
  in
  let rec best n =
    match Hashtbl.find_opt memo n with
    | Some r -> r
    | None ->
        let splits =
          Int_util.factor_pairs n
          |> List.map (fun (m, k) ->
                 let tl, _ = best m and tr, _ = best k in
                 Ruletree.Ct (tl, tr))
        in
        let candidates = candidate_leaves n @ splits in
        if candidates = [] then
          invalid_arg
            (Printf.sprintf "Dp.search: no factorization for %d (prime > %d)"
               n Ruletree.leaf_max);
        let scored =
          List.map (fun t -> (t, measure t)) candidates
        in
        let best_t =
          List.fold_left
            (fun (bt, bc) (t, c) -> if c < bc then (t, c) else (bt, bc))
            (List.hd scored) (List.tl scored)
        in
        Hashtbl.add memo n best_t;
        best_t
  in
  best n

let search_parallel ?memo ~p ~mu ~measure_formula ~measure n =
  let memo = match memo with Some m -> m | None -> Hashtbl.create 64 in
  let q = p * mu in
  let splits =
    Int_util.divisors n
    |> List.filter (fun m -> m mod q = 0 && (n / m) mod q = 0)
  in
  let candidates =
    List.filter_map
      (fun m ->
        let tl, _ = search ~memo ~measure m in
        let tr, _ = search ~memo ~measure (n / m) in
        let tree = Ruletree.Ct (tl, tr) in
        match Derive.multicore_dft ~p ~mu tree with
        | Ok f -> Some (tree, measure_formula f)
        | Error _ -> None)
      splits
  in
  match candidates with
  | [] -> None
  | hd :: tl ->
      Some
        (List.fold_left
           (fun (bt, bc) (t, c) -> if c < bc then (t, c) else (bt, bc))
           hd tl)

let choose ~measure candidates =
  match candidates with
  | [] -> invalid_arg "Dp.choose: no candidates"
  | (n0, v0) :: tl ->
      List.fold_left
        (fun (bn, bv, bc) (n, v) ->
          let c = measure v in
          if c < bc then (n, v, c) else (bn, bv, bc))
        (n0, v0, measure v0) tl

let search_vector ?(nus = [ 4; 2 ]) ?memo ~measure ~measure_plan n =
  let best_tree, _ = search ?memo ~measure n in
  (* the DP winner may not satisfy the vector rules' legality conditions
     while the standard mixed-radix tree does (or vice versa), so both
     trees enter the final end-to-end shoot-out *)
  let trees =
    let std = Ruletree.mixed_radix n in
    if best_tree = std then [ best_tree ] else [ best_tree; std ]
  in
  let candidates =
    List.concat_map
      (fun tree ->
        List.filter_map
          (fun vec ->
            Option.map (fun c -> (vec, tree, c)) (measure_plan ~vec tree))
          (0 :: nus))
      trees
  in
  match candidates with
  | [] -> invalid_arg "Dp.search_vector: no measurable candidate"
  | hd :: tl ->
      List.fold_left
        (fun (bv, bt, bc) (v, t, c) ->
          if c < bc then (v, t, c) else (bv, bt, bc))
        hd tl
