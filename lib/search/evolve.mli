(** Stochastic (evolutionary) search over ruletrees, after the approach of
    Singer & Veloso cited by the paper [24]: an alternative to DP that
    explores tree shapes DP's bottom-up assumption can miss. *)

type params = {
  population : int;  (** Default 16. *)
  generations : int;  (** Default 8. *)
  mutation_rate : float;  (** Probability a node is resampled; default 0.3. *)
  seed : int;
}

val default_params : params

val search :
  ?params:params -> measure:(Spiral_rewrite.Ruletree.t -> float) -> int ->
  Spiral_rewrite.Ruletree.t * float
(** Best tree found and its measure (smaller is better). *)
