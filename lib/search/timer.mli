(** Measurement functions for the search: how "fast" a candidate ruletree
    is.  Spiral's feedback loop (Figure 1 of the paper) compiles each
    candidate and measures it; here the measurement can be host wall-clock
    time or simulated cycles on a modeled machine. *)

val time_once : (unit -> unit) -> float
(** Wall-clock seconds for one invocation. *)

val time_min : ?repeats:int -> (unit -> unit) -> float
(** Minimum over [repeats] (default 5) invocations — the standard
    noise-robust estimator for short kernels. *)

val measure_host : ?repeats:int -> Spiral_rewrite.Ruletree.t -> float
(** Seconds for one [DFT] execution of the compiled sequential plan. *)

val measure_sim :
  Spiral_sim.Machine.t ->
  Spiral_sim.Simulate.backend ->
  Spiral_rewrite.Ruletree.t ->
  float
(** Simulated cycles of the compiled sequential plan on the machine
    model.  Deterministic, fast, and machine-parameterized — the measure
    used by the benchmark harness. *)
