open Spiral_rewrite

type params = {
  population : int;
  generations : int;
  mutation_rate : float;
  seed : int;
}

let default_params =
  { population = 16; generations = 8; mutation_rate = 0.3; seed = 1 }

let random_tree st n =
  let rec go n =
    let splits = Spiral_util.Int_util.factor_pairs n in
    if n <= Ruletree.leaf_max && (splits = [] || Random.State.bool st) then
      Ruletree.Leaf n
    else
      match splits with
      | [] -> Ruletree.Leaf n
      | _ ->
          let m, k =
            List.nth splits (Random.State.int st (List.length splits))
          in
          Ruletree.Ct (go m, go k)
  in
  go n

(* Mutation: independently resample subtrees with probability
   [mutation_rate] (size-preserving). *)
let rec mutate st rate tree =
  if Random.State.float st 1.0 < rate then
    random_tree st (Ruletree.size tree)
  else
    match tree with
    | Ruletree.Leaf _ -> tree
    | Ruletree.Ct (l, r) -> Ruletree.Ct (mutate st rate l, mutate st rate r)

(* Crossover: replace a random subtree of [a] by a same-size subtree of
   [b] when one exists. *)
let crossover st a b =
  let rec subtrees t =
    t :: (match t with Ruletree.Leaf _ -> [] | Ct (l, r) -> subtrees l @ subtrees r)
  in
  let bs = subtrees b in
  let rec replace t =
    let same = List.filter (fun s -> Ruletree.size s = Ruletree.size t) bs in
    if same <> [] && Random.State.float st 1.0 < 0.25 then
      List.nth same (Random.State.int st (List.length same))
    else
      match t with
      | Ruletree.Leaf _ -> t
      | Ct (l, r) ->
          if Random.State.bool st then Ruletree.Ct (replace l, r)
          else Ruletree.Ct (l, replace r)
  in
  replace a

let search ?(params = default_params) ~measure n =
  let st = Random.State.make [| params.seed; n |] in
  let score t = (t, measure t) in
  let pop =
    ref
      (List.init params.population (fun i ->
           score
             (if i = 0 then Ruletree.mixed_radix n
              else if i = 1 then Ruletree.balanced n
              else random_tree st n)))
  in
  let best = ref (List.hd !pop) in
  let update_best () =
    List.iter (fun (t, c) -> if c < snd !best then best := (t, c)) !pop
  in
  update_best ();
  for _gen = 1 to params.generations do
    let sorted = List.sort (fun (_, a) (_, b) -> compare a b) !pop in
    let elite = List.filteri (fun i _ -> i < max 2 (params.population / 4)) sorted in
    let children =
      List.init
        (params.population - List.length elite)
        (fun _ ->
          let pick l = fst (List.nth l (Random.State.int st (List.length l))) in
          let a = pick elite and b = pick sorted in
          score (mutate st params.mutation_rate (crossover st a b)))
    in
    pop := elite @ children;
    update_best ()
  done;
  !best
