(** Persistent cache of tuned plans ("wisdom"): maps (size, threads, µ,
    machine) keys to the best ruletree found by search, with a simple
    line-oriented on-disk format. *)

type key = { n : int; p : int; mu : int; machine : string }

type t

val create : unit -> t

val find : t -> key -> Spiral_rewrite.Ruletree.t option

val add : t -> key -> Spiral_rewrite.Ruletree.t -> unit

val size : t -> int

val save : t -> string -> unit
(** Write to a file, one entry per line:
    [n p mu machine <tree>] with machine whitespace-escaped. *)

val load : string -> t
(** @raise Sys_error if the file cannot be read;
    @raise Invalid_argument on malformed entries. *)

val find_or_add :
  t -> key -> (unit -> Spiral_rewrite.Ruletree.t) -> Spiral_rewrite.Ruletree.t
