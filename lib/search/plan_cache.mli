(** Persistent cache of tuned plans ("wisdom"): maps (transform kind,
    size, threads, µ, vector length ν, machine) keys to the best
    ruletree found by search, with a simple line-oriented on-disk format
    shared by every front-end (DFT, WHT, RFFT, …).

    Persistence is crash-safe: {!save} writes a versioned, per-line
    checksummed file through a temp file + atomic rename, so an
    interrupted save leaves the previous wisdom intact, and
    {!load_tolerant} salvages the valid entries of a corrupted file
    instead of discarding all wisdom over one bad line.  Files written
    by older versions (v3/v2 with checksums, headerless v1) still load;
    vec-less keys default to [vec = 0] and kind-less keys to ["dft"]. *)

type key = {
  kind : string;
  n : int;
  p : int;
  mu : int;
  vec : int;
  machine : string;
}
(** [kind] is the transform kind tag — use
    {!Spiral_fft.Problem.kind_to_string} values ("dft", "wht", "dft2d",
    "rfft", "dct"); it must not start with a digit (numeric first fields
    mark kind-less legacy entries on disk).  [vec] is the short-vector
    length ν the entry was tuned for (0 = scalar): the best scalar tree
    and the best ν-vectorizable tree for one size are different wisdom.
    Whitespace in [kind] and [machine] is escaped to underscores on
    {!add}/{!find}. *)

type t

type report = { loaded : int; skipped : int; complaints : string list }
(** Result of a tolerant load: [skipped] lines were dropped, each with a
    human-readable entry in [complaints] ("line N: reason: content"). *)

val create : unit -> t

val find : t -> key -> Spiral_rewrite.Ruletree.t option

val add : t -> key -> Spiral_rewrite.Ruletree.t -> unit

val size : t -> int

val save : t -> string -> unit
(** Write the cache to [path] atomically (temp file in the same
    directory, then rename).  Format v4: a ["# spiral-wisdom v4"] header,
    then one entry per line — [cksum kind n p mu vec machine <tree>]
    with kind/machine whitespace-escaped and an FNV-1a checksum of the
    rest of the line.  A crash (or injected fault at site
    ["plan_cache.save"]) before the rename leaves any existing file at
    [path] untouched. *)

val load : string -> t
(** Strict load.  Accepts v4, v3 (checksummed, vec-less — keys default
    to [vec = 0]), v2 (also kind-less — kind defaults to ["dft"]) and
    headerless v1 (no checksum) files; blank lines, trailing newlines
    and [#] comment lines are ignored, and an empty file yields an empty
    cache.
    @raise Sys_error if the file cannot be read;
    @raise Invalid_argument on the first malformed or checksum-failing
    entry. *)

val load_tolerant : string -> t * report
(** Like {!load} but salvages: malformed lines, checksum mismatches and
    truncated tails are skipped (counted under the
    ["plan_cache.skipped"] counter) and reported instead of raised.
    @raise Sys_error if the file cannot be read. *)

val find_or_add :
  t -> key -> (unit -> Spiral_rewrite.Ruletree.t) -> Spiral_rewrite.Ruletree.t
(** [find_or_add t key make] returns the cached tree or evaluates
    [make ()] and caches its result.  If [make] raises, nothing is
    cached and the exception propagates. *)
