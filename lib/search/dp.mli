(** Dynamic programming over ruletrees — Spiral's standard search strategy
    (Section 2.3 of the paper): the best tree for size [n] is found by
    trying every top split with the best known subtrees, measuring the
    compiled result, and memoizing per size. *)

type measure = Spiral_rewrite.Ruletree.t -> float
(** Smaller is better (seconds or simulated cycles). *)

val search :
  ?memo:(int, Spiral_rewrite.Ruletree.t * float) Hashtbl.t ->
  measure:measure ->
  int ->
  Spiral_rewrite.Ruletree.t * float
(** [search ~measure n] returns the best tree found and its measure.
    Reusing [memo] across calls amortizes the search over a size sweep
    (smaller sizes are solved first and reused). *)

val search_parallel :
  ?memo:(int, Spiral_rewrite.Ruletree.t * float) Hashtbl.t ->
  p:int ->
  mu:int ->
  measure_formula:(Spiral_spl.Formula.t -> float) ->
  measure:measure ->
  int ->
  (Spiral_rewrite.Ruletree.t * float) option
(** Best {e top split} for the multicore Cooley-Tukey formula (14): tries
    every valid split [m·k = n] with [pµ | m, k], using DP-optimal
    sequential subtrees, and measures the derived parallel formula with
    [measure_formula].  [None] when no valid split exists. *)

val choose : measure:('a -> float) -> (string * 'a) list -> string * 'a * float
(** [choose ~measure candidates] runs the measured shoot-out the other
    searches are built from, over an explicit candidate list:
    [(name, best, cost)] minimizing [measure] (smaller is better), ties
    resolved to the earlier candidate.  The 2-D engine uses it to pick
    between its strided and tiled column schedules.
    @raise Invalid_argument on an empty candidate list. *)

val search_vector :
  ?nus:int list ->
  ?memo:(int, Spiral_rewrite.Ruletree.t * float) Hashtbl.t ->
  measure:measure ->
  measure_plan:(vec:int -> Spiral_rewrite.Ruletree.t -> float option) ->
  int ->
  int * Spiral_rewrite.Ruletree.t * float
(** Scalar-vs-vector autotuning: [(ν, tree, cost)] minimizing
    [measure_plan ~vec tree] over [vec ∈ 0 :: nus] (default
    [nus = [4; 2]]; 0 = scalar) and over the DP-optimal tree plus the
    standard mixed-radix tree.  [measure_plan] measures the end-to-end
    plan the engine would actually run at that vector length — a split
    re/im plan including the planar boundary transposes when [vec > 0] —
    and returns [None] when the lowering does not apply to that tree, so
    an unvectorizable candidate simply drops out.  The scalar candidate
    always measures, making the result total.
    @raise Invalid_argument if no candidate measures (degenerate
    [measure_plan]). *)
