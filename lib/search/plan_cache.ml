open Spiral_util
open Spiral_rewrite

type key = { kind : string; n : int; p : int; mu : int; machine : string }

type t = (key, Ruletree.t) Hashtbl.t

type report = { loaded : int; skipped : int; complaints : string list }

let create () : t = Hashtbl.create 32

let escape s =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) s

let canonical key =
  { key with machine = escape key.machine; kind = escape key.kind }

let find t key = Hashtbl.find_opt t (canonical key)

let add t key tree = Hashtbl.replace t (canonical key) tree

let size t = Hashtbl.length t

(* On-disk format v3: a header line, then one entry per line prefixed
   with an 8-hex-digit FNV-1a checksum of the payload:

     # spiral-wisdom v3
     <cksum> <kind> <n> <p> <mu> <machine> <tree>

   The kind field (e.g. "dft", "wht", "rfft") lets every front-end share
   one wisdom file.  v2 files (same shape, no kind field) and v1 files
   (no header, no checksum, no kind) are still read; a payload whose
   first field is numeric is a kind-less v1/v2 entry and defaults to
   kind "dft".  Writes go through a temp file + atomic rename so a
   crash mid-save can never corrupt existing wisdom. *)

let header = "# spiral-wisdom v3"

let header_v2 = "# spiral-wisdom v2"

let checksum payload =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    payload;
  Printf.sprintf "%08x" !h

let payload_of_entry key tree =
  Printf.sprintf "%s %d %d %d %s %s" key.kind key.n key.p key.mu key.machine
    (Ruletree.to_string tree)

let save t path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  match
    output_string oc (header ^ "\n");
    Hashtbl.iter
      (fun key tree ->
        (* Simulated crash mid-write: the rename below never happens, so
           whatever lived at [path] before stays intact. *)
        Fault.check "plan_cache.save";
        let payload = payload_of_entry key tree in
        Printf.fprintf oc "%s %s\n" (checksum payload) payload)
      t;
    close_out oc
  with
  | () -> Sys.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* [parse_payload s] parses "<kind> <n> <p> <mu> <machine> <tree>", or
   the kind-less "<n> <p> <mu> <machine> <tree>" of v1/v2 entries
   (detected by a numeric first field; kinds are never numeric),
   defaulting the kind to "dft". *)
let parse_payload payload =
  let fields = String.split_on_char ' ' payload in
  let kind, fields =
    match fields with
    | first :: rest when int_of_string_opt first = None && rest <> [] ->
        (first, rest)
    | _ -> ("dft", fields)
  in
  match fields with
  | n :: p :: mu :: machine :: (_ :: _ as rest) -> (
      match
        ( int_of_string_opt n,
          int_of_string_opt p,
          int_of_string_opt mu,
          try Ok (Ruletree.of_string (String.concat " " rest))
          with Invalid_argument m | Failure m -> Error m )
      with
      | Some n, Some p, Some mu, Ok tree ->
          Ok ({ kind; n; p; mu; machine }, tree)
      | None, _, _, _ | _, None, _, _ | _, _, None, _ ->
          Error "non-numeric key field"
      | _, _, _, Error m -> Error ("bad ruletree: " ^ m))
  | _ -> Error "too few fields"

let parse_line ~checksummed line =
  if not checksummed then parse_payload line
  else
    match String.index_opt line ' ' with
    | None -> Error "missing checksum"
    | Some i ->
        let cksum = String.sub line 0 i in
        let payload = String.sub line (i + 1) (String.length line - i - 1) in
        if checksum payload <> cksum then Error "checksum mismatch"
        else parse_payload payload

let load_gen ~strict path =
  let ic = open_in path in
  let t = create () in
  let loaded = ref 0 and skipped = ref 0 and complaints = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let checksummed = ref false in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line = "" then () (* blank lines and trailing newlines ok *)
           else if String.length line > 0 && line.[0] = '#' then begin
             if !lineno = 1 && (line = header || line = header_v2) then
               checksummed := true
             (* other comment lines are ignored in all formats *)
           end
           else
             match parse_line ~checksummed:!checksummed line with
             | Ok (key, tree) ->
                 add t key tree;
                 incr loaded
             | Error reason ->
                 let msg =
                   Printf.sprintf "line %d: %s: %s" !lineno reason line
                 in
                 if strict then
                   invalid_arg ("Plan_cache.load: malformed entry, " ^ msg)
                 else begin
                   incr skipped;
                   complaints := msg :: !complaints
                 end
         done
       with End_of_file -> ());
      if !skipped > 0 then Counters.incr ~by:!skipped "plan_cache.skipped";
      ( t,
        {
          loaded = !loaded;
          skipped = !skipped;
          complaints = List.rev !complaints;
        } ))

let load path = fst (load_gen ~strict:true path)

let load_tolerant path = load_gen ~strict:false path

let find_or_add t key make =
  match find t key with
  | Some tree -> tree
  | None ->
      (* [make] runs before [add]: a generator that raises caches
         nothing, so a later retry can still populate the entry. *)
      let tree = make () in
      add t key tree;
      tree
