open Spiral_util
open Spiral_rewrite

type key = {
  kind : string;
  n : int;
  p : int;
  mu : int;
  vec : int;  (* short-vector length ν the plan was tuned for; 0 = scalar *)
  machine : string;
}

type t = (key, Ruletree.t) Hashtbl.t

type report = { loaded : int; skipped : int; complaints : string list }

let create () : t = Hashtbl.create 32

let escape s =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) s

let canonical key =
  { key with machine = escape key.machine; kind = escape key.kind }

let find t key = Hashtbl.find_opt t (canonical key)

let add t key tree = Hashtbl.replace t (canonical key) tree

let size t = Hashtbl.length t

(* On-disk format v4: a header line, then one entry per line prefixed
   with an 8-hex-digit FNV-1a checksum of the payload:

     # spiral-wisdom v4
     <cksum> <kind> <n> <p> <mu> <vec> <machine> <tree>

   The kind field (e.g. "dft", "wht", "rfft") lets every front-end share
   one wisdom file; the vec field records the short-vector length ν the
   entry was tuned for (0 = scalar) — scalar and vectorized tunings of
   the same size are distinct wisdom.  Older files still load: v3 files
   (same shape, no vec field — vec defaults to 0), v2 files (no kind
   either) and v1 files (no header, no checksum, no kind).  A payload
   whose first field is numeric is a kind-less v1/v2 entry and defaults
   to kind "dft".  Writes go through a temp file + atomic rename so a
   crash mid-save can never corrupt existing wisdom. *)

let header = "# spiral-wisdom v4"

let header_v3 = "# spiral-wisdom v3"

let header_v2 = "# spiral-wisdom v2"

let checksum payload =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    payload;
  Printf.sprintf "%08x" !h

let payload_of_entry key tree =
  Printf.sprintf "%s %d %d %d %d %s %s" key.kind key.n key.p key.mu key.vec
    key.machine
    (Ruletree.to_string tree)

let save t path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let oc = open_out tmp in
  match
    output_string oc (header ^ "\n");
    Hashtbl.iter
      (fun key tree ->
        (* Simulated crash mid-write: the rename below never happens, so
           whatever lived at [path] before stays intact. *)
        Fault.check "plan_cache.save";
        let payload = payload_of_entry key tree in
        Printf.fprintf oc "%s %s\n" (checksum payload) payload)
      t;
    close_out oc
  with
  | () -> Sys.rename tmp path
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* [parse_payload s] parses "<kind> <n> <p> <mu> [<vec>] <machine>
   <tree>" — the vec field only when [with_vec] (v4 files; earlier
   formats default it to 0) — or the kind-less "<n> <p> <mu> <machine>
   <tree>" of v1/v2 entries (detected by a numeric first field; kinds
   are never numeric), defaulting the kind to "dft". *)
let parse_payload ~with_vec payload =
  let fields = String.split_on_char ' ' payload in
  let kind, fields =
    match fields with
    | first :: rest when int_of_string_opt first = None && rest <> [] ->
        (first, rest)
    | _ -> ("dft", fields)
  in
  let vec, fields =
    if not with_vec then (Some 0, fields)
    else
      match fields with
      | n :: p :: mu :: vec :: rest ->
          (int_of_string_opt vec, n :: p :: mu :: rest)
      | _ -> (None, fields)
  in
  match fields with
  | n :: p :: mu :: machine :: (_ :: _ as rest) -> (
      match
        ( int_of_string_opt n,
          int_of_string_opt p,
          int_of_string_opt mu,
          vec,
          try Ok (Ruletree.of_string (String.concat " " rest))
          with Invalid_argument m | Failure m -> Error m )
      with
      | Some n, Some p, Some mu, Some vec, Ok tree ->
          Ok ({ kind; n; p; mu; vec; machine }, tree)
      | None, _, _, _, _ | _, None, _, _, _ | _, _, None, _, _
      | _, _, _, None, _ ->
          Error "non-numeric key field"
      | _, _, _, _, Error m -> Error ("bad ruletree: " ^ m))
  | _ -> Error "too few fields"

let parse_line ~version line =
  match version with
  | `V1 -> parse_payload ~with_vec:false line
  | (`V2_or_v3 | `V4) as v -> (
      let with_vec = v = `V4 in
      match String.index_opt line ' ' with
      | None -> Error "missing checksum"
      | Some i ->
          let cksum = String.sub line 0 i in
          let payload = String.sub line (i + 1) (String.length line - i - 1) in
          if checksum payload <> cksum then Error "checksum mismatch"
          else parse_payload ~with_vec payload)

let load_gen ~strict path =
  let ic = open_in path in
  let t = create () in
  let loaded = ref 0 and skipped = ref 0 and complaints = ref [] in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let version = ref `V1 in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line = "" then () (* blank lines and trailing newlines ok *)
           else if String.length line > 0 && line.[0] = '#' then begin
             if !lineno = 1 then
               if line = header then version := `V4
               else if line = header_v3 || line = header_v2 then
                 version := `V2_or_v3
             (* other comment lines are ignored in all formats *)
           end
           else
             match parse_line ~version:!version line with
             | Ok (key, tree) ->
                 add t key tree;
                 incr loaded
             | Error reason ->
                 let msg =
                   Printf.sprintf "line %d: %s: %s" !lineno reason line
                 in
                 if strict then
                   invalid_arg ("Plan_cache.load: malformed entry, " ^ msg)
                 else begin
                   incr skipped;
                   complaints := msg :: !complaints
                 end
         done
       with End_of_file -> ());
      if !skipped > 0 then Counters.incr ~by:!skipped "plan_cache.skipped";
      ( t,
        {
          loaded = !loaded;
          skipped = !skipped;
          complaints = List.rev !complaints;
        } ))

let load path = fst (load_gen ~strict:true path)

let load_tolerant path = load_gen ~strict:false path

let find_or_add t key make =
  match find t key with
  | Some tree -> tree
  | None ->
      (* [make] runs before [add]: a generator that raises caches
         nothing, so a later retry can still populate the entry. *)
      let tree = make () in
      add t key tree;
      tree
