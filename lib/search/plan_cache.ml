open Spiral_rewrite

type key = { n : int; p : int; mu : int; machine : string }

type t = (key, Ruletree.t) Hashtbl.t

let create () : t = Hashtbl.create 32

let escape s =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) s

let canonical key = { key with machine = escape key.machine }

let find t key = Hashtbl.find_opt t (canonical key)

let add t key tree = Hashtbl.replace t (canonical key) tree

let size t = Hashtbl.length t

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Hashtbl.iter
        (fun key tree ->
          Printf.fprintf oc "%d %d %d %s %s\n" key.n key.p key.mu key.machine
            (Ruletree.to_string tree))
        t)

let load path =
  let ic = open_in path in
  let t = create () in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match String.split_on_char ' ' (String.trim line) with
             | n :: p :: mu :: machine :: rest ->
                 let tree = Ruletree.of_string (String.concat " " rest) in
                 add t
                   {
                     n = int_of_string n;
                     p = int_of_string p;
                     mu = int_of_string mu;
                     machine;
                   }
                   tree
             | _ -> invalid_arg ("Plan_cache.load: malformed line: " ^ line)
         done
       with End_of_file -> ());
      t)

let find_or_add t key make =
  match find t key with
  | Some tree -> tree
  | None ->
      let tree = make () in
      add t key tree;
      tree
