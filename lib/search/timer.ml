open Spiral_util
open Spiral_rewrite
open Spiral_codegen

let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let time_min ?(repeats = 5) f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t = time_once f in
    if t < !best then best := t
  done;
  !best

let measure_host ?repeats tree =
  let n = Ruletree.size tree in
  let plan = Plan.of_formula (Ruletree.expand tree) in
  let x = Cvec.random n and y = Cvec.create n in
  Plan.execute plan x y;
  (* warm *)
  time_min ?repeats (fun () -> Plan.execute plan x y)

let measure_sim machine backend tree =
  let plan = Plan.of_formula (Ruletree.expand tree) in
  (Spiral_sim.Simulate.run machine backend plan).Spiral_sim.Simulate.cycles
