open Spiral_codegen
open Spiral_smp

type backend = Seq | Pooled of int | ForkJoin of int

type result = {
  cycles : float;
  seconds : float;
  pseudo_mflops : float;
  l1_misses : int;
  l2_misses : int;
  coherence_events : int;
  false_sharing : int;
  per_core_cycles : float array;
}

(* Line-granular ownership state: -2 = memory only, -1 = shared, c >= 0 =
   modified by core c. *)
let mem_only = -2
let shared = -1

type sys = {
  m : Machine.t;
  cores : int;
  mu : int;  (* complex elements per line *)
  l1 : Cache.t array;
  l2 : Cache.t array;  (* length 1 if shared *)
  owner : int array;  (* per line *)
  last_writer : int array;  (* per line, epoch-tagged *)
  writer_epoch : int array;
  mutable epoch : int;
  mutable counting : bool;
  mutable l1_misses : int;
  mutable l2_misses : int;
  mutable coherence : int;
  mutable false_sharing : int;
  stage_cycles : float array;  (* per core, current stage *)
  total_core_cycles : float array;
  mutable stage_bus : float;  (* bus occupancy this stage *)
}

let l2_of sys c = if sys.m.Machine.l2_shared then sys.l2.(0) else sys.l2.(c)

let hierarchy_cost sys c line =
  if Cache.access sys.l1.(c) line then float_of_int sys.m.Machine.l1.hit_cycles
  else begin
    if sys.counting then sys.l1_misses <- sys.l1_misses + 1;
    if Cache.access (l2_of sys c) line then
      float_of_int sys.m.Machine.l2.hit_cycles
    else begin
      if sys.counting then begin
        sys.l2_misses <- sys.l2_misses + 1;
        sys.stage_bus <- sys.stage_bus +. float_of_int sys.m.Machine.bus_cycles
      end;
      float_of_int sys.m.Machine.mem_cycles
    end
  end

let invalidate_others sys c line =
  for c' = 0 to sys.cores - 1 do
    if c' <> c then begin
      Cache.invalidate sys.l1.(c') line;
      if not sys.m.Machine.l2_shared then Cache.invalidate sys.l2.(c') line
    end
  done

let read sys c line =
  let o = sys.owner.(line) in
  let cost =
    if o >= 0 && o <> c then begin
      (* dirty in another core's cache: cache-to-cache transfer *)
      if sys.counting then sys.coherence <- sys.coherence + 1;
      sys.owner.(line) <- shared;
      ignore (Cache.access sys.l1.(c) line);
      ignore (Cache.access (l2_of sys c) line);
      float_of_int sys.m.Machine.coherence_cycles
    end
    else hierarchy_cost sys c line
  in
  sys.stage_cycles.(c) <- sys.stage_cycles.(c) +. cost

let write sys c line =
  (* false-sharing detection: another core wrote this line in this pass *)
  if sys.writer_epoch.(line) = sys.epoch then begin
    if sys.last_writer.(line) <> c && sys.counting then
      sys.false_sharing <- sys.false_sharing + 1
  end;
  sys.writer_epoch.(line) <- sys.epoch;
  sys.last_writer.(line) <- c;
  let o = sys.owner.(line) in
  let cost =
    if o = c then hierarchy_cost sys c line
    else if o = mem_only then hierarchy_cost sys c line (* write-allocate *)
    else begin
      (* invalidate other copies; upgrades (shared) are cheaper than
         stealing a modified line *)
      if sys.counting then sys.coherence <- sys.coherence + 1;
      invalidate_others sys c line;
      ignore (Cache.access sys.l1.(c) line);
      ignore (Cache.access (l2_of sys c) line);
      float_of_int
        (if o = shared then sys.m.Machine.coherence_cycles / 2
         else sys.m.Machine.coherence_cycles)
    end
  in
  sys.owner.(line) <- c;
  sys.stage_cycles.(c) <- sys.stage_cycles.(c) +. cost

(* ---------------------------------------------------------------- *)
(* Address layout: x, y, tmp_a, tmp_b, then one twiddle region per pass,
   page-aligned, in units of complex elements. *)

type layout = {
  x_base : int;
  y_base : int;
  a_base : int;
  b_base : int;
  tw_base : int array;  (* per pass; -1 if none *)
  total_lines : int;
}

let page_elems = 4096 / 16

let make_layout (plan : Plan.t) mu =
  let align v = (v + page_elems - 1) / page_elems * page_elems in
  let cursor = ref 0 in
  let alloc n =
    let base = !cursor in
    cursor := align (!cursor + n);
    base
  in
  let x_base = alloc plan.n in
  let y_base = alloc plan.n in
  let a_base = alloc plan.n in
  let b_base = alloc plan.n in
  let tw_base =
    Array.map
      (fun (p : Plan.pass) ->
        match p.tw with None -> -1 | Some _ -> alloc (p.count * p.radix))
      plan.passes
  in
  { x_base; y_base; a_base; b_base; tw_base; total_lines = (!cursor / mu) + 2 }

(* Per-worker iteration cursor over the schedule's (lo, hi) ranges,
   without materializing the index list. *)
type cursor = { mutable ranges : (int * int) list; mutable pos : int }

let make_cursor ?align schedule ~count ~workers w =
  let ranges = Par_exec.worker_range ?align schedule ~count ~workers w in
  { ranges; pos = (match ranges with (lo, _) :: _ -> lo | [] -> 0) }

let cursor_next c =
  match c.ranges with
  | [] -> None
  | (_, hi) :: rest ->
      let i = c.pos in
      if i + 1 < hi then begin
        c.pos <- i + 1;
        Some i
      end
      else begin
        c.ranges <- rest;
        (match rest with (lo, _) :: _ -> c.pos <- lo | [] -> ());
        Some i
      end

let simulate_stream sys (plan : Plan.t) layout backend schedule mask =
  let m = sys.m in
  let p_workers = match backend with Seq -> 1 | Pooled p | ForkJoin p -> p in
  let mu = sys.mu in
  let npasses = Array.length plan.passes in
  let total = ref 0.0 in
  Array.iteri
    (fun k (pass : Plan.pass) ->
      sys.epoch <- sys.epoch + 1;
      Array.fill sys.stage_cycles 0 sys.cores 0.0;
      sys.stage_bus <- 0.0;
      let src_base, dst_base =
        let buf_out j =
          if j = npasses - 1 then layout.y_base
          else if j mod 2 = 0 then layout.a_base
          else layout.b_base
        in
        ((if k = 0 then layout.x_base else buf_out (k - 1)), buf_out k)
      in
      let twb = layout.tw_base.(k) in
      let addrs = Plan.iter_addresses pass in
      let r = pass.radix in
      let iter_cost =
        (float_of_int (pass.kernel.Codelet.flops + if twb >= 0 then 6 * r else 0)
         /. m.Machine.flops_per_cycle)
        +. m.Machine.loop_overhead_cycles
        +. (float_of_int r *. m.Machine.elem_overhead_cycles)
      in
      let do_iter c i =
        let g, s = addrs i in
        sys.stage_cycles.(c) <- sys.stage_cycles.(c) +. iter_cost;
        for l = 0 to r - 1 do
          read sys c ((src_base + g l) / mu)
        done;
        if twb >= 0 then begin
          (* twiddle table reads are sequential in the table *)
          let t0 = i * r in
          for l = 0 to r - 1 do
            read sys c ((twb + t0 + l) / mu)
          done
        end;
        for l = 0 to r - 1 do
          write sys c ((dst_base + s l) / mu)
        done
      in
      let workers = match pass.par with Some _ -> p_workers | None -> 1 in
      if workers = 1 then
        for i = 0 to pass.count - 1 do
          do_iter 0 i
        done
      else begin
        (* interleave workers iteration-by-iteration so that intra-stage
           coherence ping-pong (false sharing) is captured *)
        let cursors =
          Array.init workers (fun w ->
              make_cursor ~align:(Par_exec.pass_align pass) schedule
                ~count:pass.count ~workers w)
        in
        let progressed = ref true in
        while !progressed do
          progressed := false;
          for w = 0 to workers - 1 do
            match cursor_next cursors.(w) with
            | Some i ->
                do_iter w i;
                progressed := true
            | None -> ()
          done
        done
      end;
      (* stage wall time: slowest core, bounded below by bus occupancy *)
      let slowest = Array.fold_left max 0.0 sys.stage_cycles in
      let stage_time = Float.max slowest sys.stage_bus in
      let sync =
        match backend with
        | Seq -> 0.0
        | Pooled _ ->
            (* an elided boundary costs nothing; the final barrier after
               the last pass is never elided *)
            if k < Array.length mask && mask.(k) then 0.0
            else float_of_int m.Machine.barrier_cycles
        | ForkJoin p ->
            if pass.par = None then 0.0
            else if k > 0 && k - 1 < Array.length mask && mask.(k - 1) then
              (* continues the previous pass's spawn/join region *)
              0.0
            else float_of_int (m.Machine.thread_spawn_cycles * (p - 1) / p)
      in
      for c = 0 to sys.cores - 1 do
        sys.total_core_cycles.(c) <-
          sys.total_core_cycles.(c) +. sys.stage_cycles.(c)
      done;
      total := !total +. stage_time +. sync +. m.Machine.pass_overhead_cycles)
    plan.passes;
  !total

let run ?(schedule = Par_exec.Block) ?(warm = true) ?(elide = true) m backend
    plan =
  let mu = Machine.mu m in
  let mask =
    match backend with
    | Seq -> [||]
    | Pooled p | ForkJoin p ->
        if elide then Par_exec.elision_mask ~schedule ~workers:p plan
        else [||]
  in
  let layout = make_layout plan mu in
  let cores = m.Machine.cores in
  let sys =
    {
      m;
      cores;
      mu;
      l1 = Array.init cores (fun _ -> Cache.create m.Machine.l1);
      l2 =
        (if m.Machine.l2_shared then [| Cache.create m.Machine.l2 |]
         else Array.init cores (fun _ -> Cache.create m.Machine.l2));
      owner = Array.make layout.total_lines mem_only;
      last_writer = Array.make layout.total_lines (-1);
      writer_epoch = Array.make layout.total_lines (-1);
      epoch = 0;
      counting = false;
      l1_misses = 0;
      l2_misses = 0;
      coherence = 0;
      false_sharing = 0;
      stage_cycles = Array.make cores 0.0;
      total_core_cycles = Array.make cores 0.0;
      stage_bus = 0.0;
    }
  in
  if warm then ignore (simulate_stream sys plan layout backend schedule mask);
  Array.fill sys.total_core_cycles 0 cores 0.0;
  sys.counting <- true;
  let cycles = simulate_stream sys plan layout backend schedule mask in
  let seconds = cycles /. (m.Machine.ghz *. 1e9) in
  let n = float_of_int plan.n in
  let pseudo_flops = 5.0 *. n *. (log n /. log 2.0) in
  {
    cycles;
    seconds;
    pseudo_mflops = pseudo_flops /. seconds /. 1e6;
    l1_misses = sys.l1_misses;
    l2_misses = sys.l2_misses;
    coherence_events = sys.coherence;
    false_sharing = sys.false_sharing;
    per_core_cycles = Array.copy sys.total_core_cycles;
  }
