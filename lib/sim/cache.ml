type t = {
  sets : int;
  assoc : int;
  (* tags.(set * assoc + way): line address or -1; ways ordered by recency
     (way 0 = most recently used). *)
  tags : int array;
  mutable hits : int;
  mutable misses : int;
}

let create (p : Machine.cache_params) =
  let lines = max 1 (p.size_bytes / p.line_bytes) in
  let assoc = max 1 (min p.assoc lines) in
  let sets = max 1 (lines / assoc) in
  { sets; assoc; tags = Array.make (sets * assoc) (-1); hits = 0; misses = 0 }

let find_way t base line =
  let rec go w = if w = t.assoc then -1 else if t.tags.(base + w) = line then w else go (w + 1) in
  go 0

(* Move way [w] to the front of the recency order of its set. *)
let touch t base w =
  if w > 0 then begin
    let line = t.tags.(base + w) in
    Array.blit t.tags base t.tags (base + 1) w;
    t.tags.(base) <- line
  end

let access t line =
  let set = line mod t.sets in
  let base = set * t.assoc in
  match find_way t base line with
  | -1 ->
      t.misses <- t.misses + 1;
      (* install as MRU, evicting the LRU way *)
      Array.blit t.tags base t.tags (base + 1) (t.assoc - 1);
      t.tags.(base) <- line;
      false
  | w ->
      t.hits <- t.hits + 1;
      touch t base w;
      true

let invalidate t line =
  let set = line mod t.sets in
  let base = set * t.assoc in
  match find_way t base line with
  | -1 -> ()
  | w ->
      (* shift the younger ways up, freeing the last slot *)
      Array.blit t.tags (base + w + 1) t.tags (base + w) (t.assoc - 1 - w);
      t.tags.((base + t.assoc) - 1) <- -1

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hits <- 0;
  t.misses <- 0

let stats t = (t.hits, t.misses)
