(** Trace-driven performance simulation of compiled plans on the modeled
    shared-memory machines.

    The simulator replays the exact memory-access stream of a plan (same
    index functions, same per-worker schedule as {!Spiral_smp.Par_exec})
    through per-core L1s, shared or private L2s and a MESI-like ownership
    model with per-machine coherence costs.  Per-core compute cycles come
    from the codelet flop counts and loop overheads; a stage's wall time is
    the slowest core (plus barrier or thread-startup costs, depending on
    backend), with a shared-bus serialization bound on memory traffic.

    False sharing is counted exactly: a write to a cache line that a
    {e different} core wrote earlier within the same pass.  Since the
    scatter targets of a pass are element-disjoint by construction, any
    such intra-pass write-write line conflict is false (not true) sharing. *)

type backend =
  | Seq  (** Single-core execution, no synchronization. *)
  | Pooled of int  (** [p] pooled workers, spin barrier per pass. *)
  | ForkJoin of int
      (** [p] workers, threads started per parallel region (OpenMP-style,
          no pooling). *)

type result = {
  cycles : float;  (** Simulated wall-clock cycles for one transform. *)
  seconds : float;
  pseudo_mflops : float;  (** [5 N log2 N / time_in_us] as in the paper. *)
  l1_misses : int;
  l2_misses : int;
  coherence_events : int;
  false_sharing : int;  (** Intra-pass write-write line conflicts. *)
  per_core_cycles : float array;
      (** Total busy cycles per core (load-balance diagnostics). *)
}

val run :
  ?schedule:Spiral_smp.Par_exec.schedule ->
  ?warm:bool ->
  ?elide:bool ->
  Machine.t ->
  backend ->
  Spiral_codegen.Plan.t ->
  result
(** Simulate one execution.  [warm] (default [true]) replays the stream
    once beforehand so caches and ownership are in steady state, matching
    how the paper measures repeated transforms.  [elide] (default [true])
    mirrors the executors' barrier elision
    ({!Spiral_smp.Par_exec.elision_mask}): elided boundaries charge no
    barrier cycles under [Pooled] and extend the current spawn/join
    region under [ForkJoin]. *)
