(** Descriptors of the shared-memory machines of the paper's evaluation
    (Section 4).  The host of this reproduction has a single core, so the
    performance experiments run on this trace-driven model instead; the
    parameters below are set from the published microarchitectures, with
    [flops_per_cycle] calibrated so absolute pseudo-Mflop/s land in the
    paper's range (the claims under reproduction are about {e shapes}:
    crossover points, relative series order, parallel speedup regions). *)

type cache_params = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_cycles : int;  (** Added latency of a hit at this level. *)
}

type t = {
  name : string;
  cores : int;
  ghz : float;
  l1 : cache_params;
  l2 : cache_params;
  l2_shared : bool;  (** One L2 for all cores (Core Duo) or per-core. *)
  mem_cycles : int;  (** L2-miss penalty. *)
  bus_cycles : int;
      (** Shared-bus occupancy per L2 miss: serializes concurrent cores'
          memory traffic (stage time >= misses * bus_cycles). *)
  coherence_cycles : int;
      (** Cache-to-cache transfer / invalidation: small for on-chip CMPs,
          large for bus-based SMPs. *)
  barrier_cycles : int;  (** Spin-barrier crossing (pooled backend). *)
  thread_spawn_cycles : int;
      (** Thread startup per parallel region (fork-join backend). *)
  flops_per_cycle : float;
  loop_overhead_cycles : float;  (** Per codelet invocation. *)
  elem_overhead_cycles : float;  (** Per element load+store pair. *)
  pass_overhead_cycles : float;
      (** Fixed dispatch cost per pass (plan traversal, loop setup). *)
}

val mu : t -> int
(** Cache line length in complex doubles: [line_bytes / 16] (the paper's µ;
    µ=4 for 64-byte lines). *)

val core_duo : t
(** 2.0 GHz Intel Core Duo: 2 cores, shared 2 MB L2 — fast on-chip
    communication. *)

val pentium_d : t
(** 3.6 GHz Intel Pentium D: 2 cores on one die, private L2, coherence
    over the front-side bus. *)

val opteron : t
(** 2.2 GHz AMD Opteron dual-core x2: 4 cores, private L2, fast on-chip
    coherence within a die. *)

val xeon_mp : t
(** 2.8 GHz Intel Xeon MP: 4 processors, traditional bus-based SMP. *)

val all : t list
(** The four evaluation machines, in the paper's figure order. *)
