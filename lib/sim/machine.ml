type cache_params = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_cycles : int;
}

type t = {
  name : string;
  cores : int;
  ghz : float;
  l1 : cache_params;
  l2 : cache_params;
  l2_shared : bool;
  mem_cycles : int;
  bus_cycles : int;
  coherence_cycles : int;
  barrier_cycles : int;
  thread_spawn_cycles : int;
  flops_per_cycle : float;
  loop_overhead_cycles : float;
  elem_overhead_cycles : float;
  pass_overhead_cycles : float;
}

let mu t = t.l1.line_bytes / 16

let kib n = n * 1024
let mib n = n * 1024 * 1024

let core_duo =
  {
    name = "2.0 GHz Core Duo (2 processors)";
    cores = 2;
    ghz = 2.0;
    l1 = { size_bytes = kib 32; line_bytes = 64; assoc = 8; hit_cycles = 0 };
    l2 = { size_bytes = mib 2; line_bytes = 64; assoc = 8; hit_cycles = 8 };
    l2_shared = true;
    mem_cycles = 14;  (* effective per-line cost: streaming with prefetch *)
    bus_cycles = 13;
    coherence_cycles = 30; (* via the shared L2 *)
    barrier_cycles = 250;  (* spin barrier through the shared L2 *)
    thread_spawn_cycles = 60_000;
    flops_per_cycle = 2.8;
    loop_overhead_cycles = 12.0;
    elem_overhead_cycles = 0.7;
    pass_overhead_cycles = 1_700.0;
  }

let pentium_d =
  {
    name = "3.6 GHz Pentium D (2 processors)";
    cores = 2;
    ghz = 3.6;
    l1 = { size_bytes = kib 16; line_bytes = 64; assoc = 8; hit_cycles = 0 };
    l2 = { size_bytes = mib 1; line_bytes = 64; assoc = 8; hit_cycles = 27 };
    l2_shared = false;
    mem_cycles = 24;  (* higher clock -> more cycles per memory access *)
    bus_cycles = 20;
    coherence_cycles = 450; (* over the front-side bus *)
    barrier_cycles = 900;  (* synchronization crosses the FSB *)
    thread_spawn_cycles = 110_000;
    flops_per_cycle = 2.6;
    loop_overhead_cycles = 14.0;
    elem_overhead_cycles = 0.8;
    pass_overhead_cycles = 2_600.0;
  }

let opteron =
  {
    name = "2.2 GHz Opteron Dual-core (4 processors)";
    cores = 4;
    ghz = 2.2;
    l1 = { size_bytes = kib 64; line_bytes = 64; assoc = 2; hit_cycles = 0 };
    l2 = { size_bytes = mib 1; line_bytes = 64; assoc = 16; hit_cycles = 12 };
    l2_shared = false;
    mem_cycles = 13;
    bus_cycles = 6; (* two on-chip memory controllers: high aggregate BW *)
    coherence_cycles = 110; (* fast on-chip protocol / HyperTransport *)
    barrier_cycles = 450;
    thread_spawn_cycles = 80_000;
    flops_per_cycle = 2.6;
    loop_overhead_cycles = 12.0;
    elem_overhead_cycles = 0.7;
    pass_overhead_cycles = 1_900.0;
  }

let xeon_mp =
  {
    name = "2.8 GHz Xeon MP (4 processors)";
    cores = 4;
    ghz = 2.8;
    l1 = { size_bytes = kib 16; line_bytes = 64; assoc = 8; hit_cycles = 0 };
    l2 = { size_bytes = kib 512; line_bytes = 64; assoc = 8; hit_cycles = 20 };
    l2_shared = false;
    mem_cycles = 20;
    bus_cycles = 26; (* all four processors share one front-side bus *)
    coherence_cycles = 500;
    barrier_cycles = 1_400;
    thread_spawn_cycles = 150_000;
    flops_per_cycle = 2.2;
    loop_overhead_cycles = 14.0;
    elem_overhead_cycles = 0.8;
    pass_overhead_cycles = 2_200.0;
  }

let all = [ core_duo; opteron; pentium_d; xeon_mp ]
