(** Set-associative LRU cache model over line addresses.

    Addresses are already line-granular (the simulator divides element
    addresses by the line size before lookup). *)

type t

val create : Machine.cache_params -> t

val access : t -> int -> bool
(** [access c line] is [true] on a hit; on a miss the line is installed
    (LRU replacement).  Always updates recency. *)

val invalidate : t -> int -> unit
(** Drop a line if present (coherence invalidation). *)

val clear : t -> unit

val stats : t -> int * int
(** (hits, misses) since creation or [clear]. *)
