(* Blocking client for the FFT daemon.  Supports pipelining: several
   requests may be posted before any reply is read, and replies are
   matched by id (the server may answer out of order — a shed reply
   comes from the reader thread while earlier work is still queued), so
   the client stashes whatever it reads until the id it is waiting for
   shows up. *)

exception Disconnected

type t = {
  fd : Unix.file_descr;
  mutable next_id : int;
  stash : (int, Protocol.reply) Hashtbl.t;
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; next_id = 1; stash = Hashtbl.create 8 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let post t op ?(deadline_ms = 0) ?(descriptor = "") ?(payload = [||]) () =
  let id = t.next_id in
  t.next_id <- id + 1;
  let req : Protocol.request = { op; id; deadline_ms; descriptor; payload } in
  (try Protocol.write_frame t.fd (Protocol.encode_request req)
   with Unix.Unix_error _ | Sys_error _ -> raise Disconnected);
  id

let rec wait t id =
  match Hashtbl.find_opt t.stash id with
  | Some reply ->
      Hashtbl.remove t.stash id;
      reply
  | None -> (
      (* a peer that closed with our frame still in flight answers the
         read with RST, not a clean EOF — same outcome for the caller *)
      match
        try Protocol.read_frame t.fd
        with
        | Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
        | Sys_error _
        ->
          Protocol.Eof
      with
      | Protocol.Eof | Protocol.Oversized _ -> raise Disconnected
      | Protocol.Frame body -> (
          match Protocol.decode_reply body with
          | Error _ -> raise Disconnected
          | Ok reply ->
              if reply.id = id then reply
              else begin
                Hashtbl.replace t.stash reply.id reply;
                wait t id
              end))

let exec_async t ?deadline_ms ~descriptor payload =
  post t Protocol.Exec ?deadline_ms ~descriptor ~payload ()

let exec t ?deadline_ms ~descriptor payload =
  wait t (exec_async t ?deadline_ms ~descriptor payload)

let ping t = wait t (post t Protocol.Ping ())

let hello t name = wait t (post t Protocol.Hello ~descriptor:name ())

let stats t = (wait t (post t Protocol.Stats ())).message

let info t descriptor = wait t (post t Protocol.Info ~descriptor ())
