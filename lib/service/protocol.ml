(* Length-prefixed binary wire protocol of the FFT service.

   Every message is one frame: a 4-byte big-endian body length followed
   by the body.  Integers are big-endian ("network order"); float
   payloads are IEEE-754 doubles transported as big-endian int64 bit
   patterns.  The format is deliberately dumb — fixed header, one
   variable-length string, raw floats — so a client in any language is a
   page of code, and a malformed frame can always be rejected without
   desynchronizing the stream (the frame boundary is known before the
   body is parsed). *)

type op = Exec | Ping | Stats | Hello | Info

type status =
  | Ok
  | Bad_request
  | Bad_descriptor
  | Unsupported
  | Bad_payload
  | Overloaded
  | Deadline
  | Internal
  | Shutting_down

type request = {
  op : op;
  id : int;  (* client-chosen, echoed verbatim in the reply *)
  deadline_ms : int;  (* 0 = no deadline *)
  descriptor : string;  (* Exec/Info: problem descriptor; Hello: tenant name *)
  payload : float array;
}

type reply = {
  id : int;
  status : status;
  message : string;  (* human-readable detail; "" on success *)
  payload : float array;
}

let op_code = function Exec -> 1 | Ping -> 2 | Stats -> 3 | Hello -> 4 | Info -> 5

let op_of_code = function
  | 1 -> Some Exec
  | 2 -> Some Ping
  | 3 -> Some Stats
  | 4 -> Some Hello
  | 5 -> Some Info
  | _ -> None

let status_code = function
  | Ok -> 0
  | Bad_request -> 1
  | Bad_descriptor -> 2
  | Unsupported -> 3
  | Bad_payload -> 4
  | Overloaded -> 5
  | Deadline -> 6
  | Internal -> 7
  | Shutting_down -> 8

let status_of_code = function
  | 0 -> Some Ok
  | 1 -> Some Bad_request
  | 2 -> Some Bad_descriptor
  | 3 -> Some Unsupported
  | 4 -> Some Bad_payload
  | 5 -> Some Overloaded
  | 6 -> Some Deadline
  | 7 -> Some Internal
  | 8 -> Some Shutting_down
  | _ -> None

let status_to_string = function
  | Ok -> "ok"
  | Bad_request -> "bad-request"
  | Bad_descriptor -> "bad-descriptor"
  | Unsupported -> "unsupported"
  | Bad_payload -> "bad-payload"
  | Overloaded -> "overloaded"
  | Deadline -> "deadline-exceeded"
  | Internal -> "internal-error"
  | Shutting_down -> "shutting-down"

(* Frames over this size are rejected before the body is read, so a
   hostile length prefix cannot make the server allocate gigabytes.
   This is the permissive default (clients reading replies); the server
   tightens it per its own configuration via [request_frame_bound]. *)
let max_frame = ref (128 * 1024 * 1024)

(* The largest request body a server sized for [max_total] complex
   elements can legitimately receive: the fixed header (op u8, id u32,
   deadline u32, desc_len u16 = 11 bytes), the largest descriptor a u16
   length can announce, and 2 big-endian float64s per complex element. *)
let request_frame_bound ~max_total = 11 + 0xffff + (16 * max_total)

(* ---- body encoding ---- *)

let put_floats b off xs =
  Array.iteri
    (fun i v -> Bytes.set_int64_be b (off + (8 * i)) (Int64.bits_of_float v))
    xs

let get_floats b off =
  let n = (Bytes.length b - off) / 8 in
  Array.init n (fun i -> Int64.float_of_bits (Bytes.get_int64_be b (off + (8 * i))))

(* request body: u8 op | u32 id | u32 deadline_ms | u16 desc_len | desc
   | float64s *)
let encode_request r =
  let dlen = String.length r.descriptor in
  if dlen > 0xffff then invalid_arg "Protocol.encode_request: descriptor too long";
  let b = Bytes.create (1 + 4 + 4 + 2 + dlen + (8 * Array.length r.payload)) in
  Bytes.set_uint8 b 0 (op_code r.op);
  Bytes.set_int32_be b 1 (Int32.of_int r.id);
  Bytes.set_int32_be b 5 (Int32.of_int r.deadline_ms);
  Bytes.set_uint16_be b 9 dlen;
  Bytes.blit_string r.descriptor 0 b 11 dlen;
  put_floats b (11 + dlen) r.payload;
  b

let decode_request b =
  let len = Bytes.length b in
  if len < 11 then Error "request body shorter than the fixed header"
  else
    match op_of_code (Bytes.get_uint8 b 0) with
    | None -> Error (Printf.sprintf "unknown opcode %d" (Bytes.get_uint8 b 0))
    | Some op ->
        let id = Int32.to_int (Bytes.get_int32_be b 1) land 0xffffffff in
        let deadline_ms =
          Int32.to_int (Bytes.get_int32_be b 5) land 0xffffffff
        in
        let dlen = Bytes.get_uint16_be b 9 in
        if len < 11 + dlen then Error "descriptor length exceeds the frame"
        else if (len - 11 - dlen) mod 8 <> 0 then
          Error "payload is not a whole number of float64s"
        else
          let descriptor = Bytes.sub_string b 11 dlen in
          Stdlib.Ok
            { op; id; deadline_ms; descriptor; payload = get_floats b (11 + dlen) }

(* reply body: u8 status | u32 id | u32 msg_len | msg | float64s *)
let encode_reply r =
  let mlen = String.length r.message in
  let b = Bytes.create (1 + 4 + 4 + mlen + (8 * Array.length r.payload)) in
  Bytes.set_uint8 b 0 (status_code r.status);
  Bytes.set_int32_be b 1 (Int32.of_int r.id);
  Bytes.set_int32_be b 5 (Int32.of_int mlen);
  Bytes.blit_string r.message 0 b 9 mlen;
  put_floats b (9 + mlen) r.payload;
  b

let decode_reply b =
  let len = Bytes.length b in
  if len < 9 then Error "reply body shorter than the fixed header"
  else
    match status_of_code (Bytes.get_uint8 b 0) with
    | None -> Error (Printf.sprintf "unknown status %d" (Bytes.get_uint8 b 0))
    | Some status ->
        let id = Int32.to_int (Bytes.get_int32_be b 1) land 0xffffffff in
        let mlen = Int32.to_int (Bytes.get_int32_be b 5) in
        if mlen < 0 || len < 9 + mlen then
          Error "message length exceeds the frame"
        else if (len - 9 - mlen) mod 8 <> 0 then
          Error "payload is not a whole number of float64s"
        else
          let message = Bytes.sub_string b 9 mlen in
          Stdlib.Ok { id; status; message; payload = get_floats b (9 + mlen) }

(* ---- framing over a file descriptor ---- *)

(* [deadline] bounds the *total* wall-clock time of the frame write, so
   even a peer draining its socket one byte per second (each syscall
   succeeds, the frame never finishes) cannot hold the caller past it.
   [EAGAIN]/[EWOULDBLOCK] — [SO_SNDTIMEO] expired with a full buffer —
   and an exhausted deadline both surface as [ETIMEDOUT], so callers
   have a single "peer stopped reading" signal to act on. *)
let rec write_all ?deadline fd b off len =
  if len > 0 then begin
    (match deadline with
    | Some d when Unix.gettimeofday () > d ->
        raise (Unix.Unix_error (Unix.ETIMEDOUT, "write_frame", ""))
    | _ -> ());
    let n =
      try Unix.write fd b off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          raise (Unix.Unix_error (Unix.ETIMEDOUT, "write_frame", ""))
    in
    write_all ?deadline fd b (off + n) (len - n)
  end

let write_frame ?timeout fd body =
  let len = Bytes.length body in
  (* one write for header+body keeps small frames in one segment *)
  let all = Bytes.create (4 + len) in
  Bytes.set_int32_be all 0 (Int32.of_int len);
  Bytes.blit body 0 all 4 len;
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  write_all ?deadline fd all 0 (4 + len)

type read_result = Frame of bytes | Eof | Oversized of int

(* [read_exact] returns false on a clean or mid-read EOF: a peer that
   died (or was killed -9) mid-frame must register as a disconnect, not
   an exception. *)
let read_exact fd b off len =
  let off = ref off and len = ref len in
  let ok = ref true in
  while !ok && !len > 0 do
    match Unix.read fd b !off !len with
    | 0 -> ok := false
    | n ->
        off := !off + n;
        len := !len - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  !ok

let read_frame ?limit fd =
  let limit = match limit with Some l -> l | None -> !max_frame in
  let hdr = Bytes.create 4 in
  if not (read_exact fd hdr 0 4) then Eof
  else
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > limit then Oversized len
    else
      let body = Bytes.create len in
      if read_exact fd body 0 len then Frame body else Eof
