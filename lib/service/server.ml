open Spiral_util

(* The resident FFT daemon.  Engineering goal: stay up under hostile
   load.  The robustness layers, outermost first:

   - framing: a 4-byte length prefix bounds every read; the request
     limit is derived from the configured [max_total] (not a generous
     global), so a hostile length prefix cannot pin more memory than a
     legitimate maximal request; oversized or malformed frames get an
     error reply without desynchronizing or crashing anything;
   - admission: a bounded, client-fair queue ({!Admission}); excess load
     is shed immediately with [Overloaded], one pipelining tenant cannot
     starve the others; concurrent connections are capped at accept, so
     reader threads and frame buffers stay bounded too;
   - deadlines: a request carries its total budget; it is rejected with
     [Deadline] the moment the budget is found exhausted (at dequeue and
     after execution), and the execution itself can never hang — every
     pool/barrier wait in the runtime is bounded, surfacing as an
     exception that becomes a structured reply;
   - supervised execution: the engine's safe path already retries once
     on a healed pool and falls back to a correct sequential run; the
     server adds a circuit breaker on top — consecutive degraded
     executions open it, parallel planning is bypassed for an
     exponentially growing backoff window (requests run on cached
     sequential plans), then a probe request closes it again;
   - tenant isolation: faults are scoped per client
     ({!Spiral_util.Fault.check_scoped}); a request that trips injection
     or produces corrupt output gets an [Internal] reply, sick pools are
     healed ({!Spiral_smp.Pool_registry.heal_sick}) and the possibly
     poisoned plan is evicted — cached plans and queued requests of
     other clients are untouched;
   - connection supervision: each connection has one reader thread; a
     client that vanishes (kill -9) mid-request is detected on read or
     write failure, its queue is purged, and in-flight replies to it are
     dropped; reply writes carry a send timeout (SO_SNDTIMEO per
     syscall, a wall-clock bound per frame), so a live client that
     simply stops reading takes the same exit — neither a dead nor a
     stalled peer can wedge the executor.

   Threading: the accept loop and per-connection readers are systhreads
   (they block in I/O); the single executor runs in its own domain and
   is the only thread that executes plans, so the worker pool's
   one-dispatcher discipline holds by construction. *)

type config = {
  socket_path : string;
  threads : int;  (* worker count requests are planned for *)
  mu : int;
  max_pending : int;  (* admission: global queue bound *)
  max_per_client : int;  (* admission: per-client pending bound *)
  max_conns : int;  (* concurrent connections; excess rejected at accept *)
  max_total : int;  (* largest problem (complex elements) served *)
  max_plans : int;  (* resident compiled plans before LRU eviction *)
  pool_timeout : float;  (* bound on every parallel wait (seconds) *)
  send_timeout : float;  (* total budget for any one reply write (seconds) *)
  breaker_threshold : int;  (* consecutive sick executions to open *)
  backoff_base : float;  (* first backoff window (seconds) *)
  backoff_max : float;  (* backoff growth cap *)
  warm : string list;  (* descriptors planned at boot, before accept *)
}

let default_config ~socket_path () =
  {
    socket_path;
    threads = 2;
    mu = 4;
    max_pending = 256;
    max_per_client = 32;
    max_conns = 64;
    max_total = Spiral_fft.Engine.default_total_limit;
    max_plans = 64;
    pool_timeout = 5.0;
    send_timeout = 1.0;
    breaker_threshold = 3;
    backoff_base = 0.05;
    backoff_max = 2.0;
    warm = [];
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  mutable tenant : string;
      (* fault scope; defaults to "c<cid>".  Written only by this
         connection's reader thread (Hello) and captured into each job
         at admission — the executor domain never reads this field, so
         there is no cross-domain race and a request keeps the scope it
         was admitted under even if a Hello lands while it is queued. *)
  alive : bool Atomic.t;
  wlock : Mutex.t;  (* reader (sheds, pings) and executor both write *)
  send_timeout : float;  (* total budget for one reply write *)
}

type job = {
  conn : conn;
  req : Protocol.request;
  enq_ns : int;
  tenant : string;  (* fault scope frozen at admission *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  frame_limit : int;  (* request frames above this are rejected unread *)
  queue : job Admission.t;
  plans : Plans.t;
  stopping : bool Atomic.t;
  conns : (int, conn) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable next_cid : int;
  mutable accept_thread : Thread.t option;
  mutable executor : unit Domain.t option;
  readers : (int, Thread.t) Hashtbl.t;
      (* reader thread per live connection, keyed by cid; guarded by
         conns_lock.  Each reader registers itself on entry and prunes
         its own entry on exit, so connection churn cannot grow it. *)
  (* circuit breaker state — executor-domain private *)
  mutable sick_streak : int;
  mutable breaker_level : int;
  mutable breaker_until : float;
}

(* ---- replies ---- *)

(* Reply writes are doubly bounded: SO_SNDTIMEO on the fd caps each
   blocking syscall, and [write_frame ~timeout] caps the whole frame —
   so neither a full socket buffer (a ~64 MiB reply against a ~200 KiB
   buffer) nor a byte-at-a-time trickle reader can hold the executor.
   A write that fails takes the same exit as a dead peer: the connection
   is marked dead (queued jobs for it are skipped), and the fd is shut
   down so the blocked reader wakes, reaps the connection, and purges
   its admission queue. *)
let send_reply conn (reply : Protocol.reply) =
  if Atomic.get conn.alive then begin
    let body = Protocol.encode_reply reply in
    Mutex.lock conn.wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock conn.wlock)
      (fun () ->
        try Protocol.write_frame ~timeout:conn.send_timeout conn.fd body
        with Unix.Unix_error _ | Sys_error _ as e ->
          (* ETIMEDOUT: live peer that stopped reading; anything else
             (EPIPE after a kill -9, …): peer is gone.  Either way the
             reply is dropped and the reader reaps the connection. *)
          Atomic.set conn.alive false;
          (match e with
          | Unix.Unix_error (Unix.ETIMEDOUT, _, _) ->
              Counters.incr "service.client_stalled"
          | _ -> Counters.incr "service.client_gone");
          (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ()))
  end

let error_reply ?(payload = [||]) id status message : Protocol.reply =
  { id; status; message; payload }

(* every error reply is latency-accounted so the soak can assert the
   bound: errors must be fast, not the result of a stuck wait *)
let send_error conn ~since_ns id status message =
  Counters.incr ("service.reply." ^ Protocol.status_to_string status);
  Counters.observe "service.error_reply_us"
    (float_of_int (Trace.now_ns () - since_ns) /. 1e3);
  send_reply conn (error_reply id status message)

let status_of_engine_error : Spiral_fft.Engine.error -> Protocol.status =
  function
  | Bad_descriptor _ -> Protocol.Bad_descriptor
  | Too_large _ | Unsupported _ -> Protocol.Unsupported
  | Destroyed | Failed _ -> Protocol.Internal
  | Bad_length _ -> Protocol.Bad_payload

(* ---- executor ---- *)

let now () = Unix.gettimeofday ()

let deadline_expired job =
  job.req.deadline_ms > 0
  && Trace.now_ns () - job.enq_ns > job.req.deadline_ms * 1_000_000

let all_finite a =
  let ok = ref true in
  for i = 0 to Array.length a - 1 do
    if not (Float.is_finite (Array.unsafe_get a i)) then ok := false
  done;
  !ok

(* Degradation bookkeeping around one execution: the parallel runtime is
   "sick" when the supervised path had to retry or fall back, or a pool
   was rebuilt.  [breaker_threshold] consecutive sick executions open
   the breaker: for an exponentially growing window all requests run on
   sequential plans (counted under "service.degraded_seq" and the
   engine-wide "engine.seq_fallback"), then one probe request tries the
   parallel path again. *)
let sickness_signal () =
  Counters.get "par_exec.retry"
  + Counters.get "par_exec.sequential_fallback"
  + Counters.get "pool.rebuild"

let breaker_open t = t.breaker_level > 0 && now () < t.breaker_until

let breaker_note_sick t =
  t.sick_streak <- t.sick_streak + 1;
  if t.sick_streak >= t.cfg.breaker_threshold || t.breaker_level > 0 then begin
    t.sick_streak <- 0;
    t.breaker_level <- min 16 (t.breaker_level + 1);
    let window =
      Float.min t.cfg.backoff_max
        (t.cfg.backoff_base *. (2.0 ** float_of_int (t.breaker_level - 1)))
    in
    t.breaker_until <- now () +. window;
    Counters.incr "service.breaker_open"
  end

let breaker_note_healthy t =
  t.sick_streak <- 0;
  if t.breaker_level > 0 then begin
    t.breaker_level <- 0;
    Counters.incr "service.breaker_close"
  end

let exec_one t job =
  let { conn; req; enq_ns; tenant } = job in
  let reply_error status msg = send_error conn ~since_ns:enq_ns req.id status msg in
  if deadline_expired job then reply_error Protocol.Deadline "expired in queue"
  else begin
    (* chaos hook: a "service.delay" injection stalls this request (the
       executor survives; deadline/shedding behavior becomes testable) *)
    (try Fault.check_scoped ~scope:tenant "service.delay"
     with Fault.Injected _ -> Unix.sleepf 0.05);
    let seq = breaker_open t in
    if seq then begin
      Counters.incr "service.degraded_seq";
      Counters.incr "engine.seq_fallback"
    end
    else if t.breaker_level > 0 then Counters.incr "service.breaker_probe";
    let sick0 = sickness_signal () in
    match
      (* per-tenant injection point: a fault here is this request's
         fault and nobody else's *)
      Fault.check_scoped ~scope:tenant "service.exec";
      Plans.lookup ~seq t.plans req.descriptor
    with
    | Error e ->
        reply_error (status_of_engine_error e)
          (Spiral_fft.Engine.error_to_string e)
    | Ok entry when Array.length req.payload <> entry.in_floats ->
        reply_error Protocol.Bad_payload
          (Printf.sprintf "expected %d float64s, got %d" entry.in_floats
             (Array.length req.payload))
    | Ok _ when not (all_finite req.payload) ->
        reply_error Protocol.Bad_payload "payload contains non-finite samples"
    | Ok entry -> (
        match entry.exec req.payload with
        | out when not (all_finite out) ->
            (* finite in, non-finite out: the cached plan (or its pool)
               is corrupt.  Isolate: error reply to this tenant, heal
               sick pools, evict the plan so the next request replans —
               other tenants' plans and queued requests are untouched. *)
            Counters.incr "service.corrupt_output";
            let healed = Spiral_smp.Pool_registry.heal_sick () in
            Plans.evict t.plans req.descriptor;
            breaker_note_sick t;
            reply_error Protocol.Internal
              (Printf.sprintf
                 "non-finite output from a finite payload (plan evicted, %d \
                  pool(s) healed)"
                 healed)
        | out ->
            if sickness_signal () > sick0 then breaker_note_sick t
            else if not seq then breaker_note_healthy t;
            if deadline_expired job then
              reply_error Protocol.Deadline "completed past the deadline"
            else begin
              Counters.incr "service.reply.ok";
              Counters.observe "service.reply_us"
                (float_of_int (Trace.now_ns () - enq_ns) /. 1e3);
              send_reply conn
                { id = req.id; status = Protocol.Ok; message = ""; payload = out }
            end
        | exception e ->
            (* execution failed (injected fault, worker wreckage that
               escaped the safe path, …).  The daemon survives: error
               reply, heal what is sick, drop the possibly poisoned
               plan. *)
            Counters.incr "service.internal";
            let healed = Spiral_smp.Pool_registry.heal_sick () in
            (match e with
            | Fault.Injected _ ->
                (* request-scoped chaos; the plan is fine and one
                   tenant's faults must not open the breaker (that would
                   degrade every other tenant to sequential service) *)
                ()
            | _ ->
                Plans.evict t.plans req.descriptor;
                breaker_note_sick t);
            reply_error Protocol.Internal
              (Printf.sprintf "%s (%d pool(s) healed)" (Printexc.to_string e)
                 healed))
    | exception Fault.Injected site ->
        (* tenant-scoped injection: structured reply and pool hygiene,
           but no breaker pressure — isolation means one tenant's chaos
           cannot degrade the others *)
        Counters.incr "service.internal";
        let healed = Spiral_smp.Pool_registry.heal_sick () in
        reply_error Protocol.Internal
          (Printf.sprintf "injected fault at %s (%d pool(s) healed)" site healed)
  end

let executor_loop t =
  let rec loop () =
    match Admission.take t.queue with
    | None -> () (* closed and drained: graceful exit *)
    | Some job ->
        if Atomic.get job.conn.alive then begin
          Trace.begin_span 0 Trace.cat_request job.req.id;
          (* belt and braces: nothing may escape the executor — an
             uncaught exception here would kill the daemon for every
             tenant *)
          (try exec_one t job
           with e ->
             Counters.incr "service.executor_rescue";
             send_error job.conn ~since_ns:job.enq_ns job.req.id
               Protocol.Internal (Printexc.to_string e));
          Trace.end_span 0 Trace.cat_request job.req.id
        end
        else Counters.incr "service.orphaned";
        loop ()
  in
  loop ()

(* ---- per-connection reader ---- *)

let handle_request t conn (req : Protocol.request) =
  let since_ns = Trace.now_ns () in
  match req.op with
  | Protocol.Ping ->
      send_reply conn
        { id = req.id; status = Protocol.Ok; message = "pong"; payload = [||] }
  | Protocol.Hello ->
      (* tenant self-identification: the name becomes the fault scope *)
      if req.descriptor <> "" then conn.tenant <- req.descriptor;
      send_reply conn
        { id = req.id; status = Protocol.Ok; message = conn.tenant; payload = [||] }
  | Protocol.Stats ->
      send_reply conn
        {
          id = req.id;
          status = Protocol.Ok;
          message = Counters.to_prometheus ();
          payload = [||];
        }
  | Protocol.Info -> (
      match Spiral_fft.Engine.parse_problem ~limit:t.cfg.max_total req.descriptor with
      | Error e ->
          send_error conn ~since_ns req.id (status_of_engine_error e)
            (Spiral_fft.Engine.error_to_string e)
      | Ok problem -> (
          match Plans.io_floats problem with
          | Error e ->
              send_error conn ~since_ns req.id (status_of_engine_error e)
                (Spiral_fft.Engine.error_to_string e)
          | Ok (i, o) ->
              send_reply conn
                {
                  id = req.id;
                  status = Protocol.Ok;
                  message = Printf.sprintf "in=%d out=%d" i o;
                  payload = [||];
                }))
  | Protocol.Exec -> (
      if Atomic.get t.stopping then
        send_error conn ~since_ns req.id Protocol.Shutting_down
          "server is draining"
      else
        match
          Fault.check_scoped ~scope:conn.tenant "service.admit";
          (* freeze the fault scope here: [conn.tenant] belongs to this
             reader thread, the executor domain only ever sees the
             captured copy *)
          Admission.submit t.queue ~client:conn.cid
            { conn; req; enq_ns = since_ns; tenant = conn.tenant }
        with
        | Admission.Accepted -> Counters.incr "service.accepted"
        | Admission.Queue_full ->
            Counters.incr "service.shed";
            send_error conn ~since_ns req.id Protocol.Overloaded
              "admission queue full"
        | Admission.Client_full ->
            Counters.incr "service.shed";
            send_error conn ~since_ns req.id Protocol.Overloaded
              "per-client pending limit reached"
        | Admission.Closed ->
            send_error conn ~since_ns req.id Protocol.Shutting_down
              "server is draining"
        | exception Fault.Injected site ->
            Counters.incr "service.internal";
            send_error conn ~since_ns req.id Protocol.Internal
              ("injected fault at " ^ site))

let reader_loop t conn =
  (* register under conns_lock so [stop] can join us; the matching
     removal happens in [fin] on this same thread, so registration
     always precedes it and the table is bounded by live connections *)
  Mutex.lock t.conns_lock;
  Hashtbl.replace t.readers conn.cid (Thread.self ());
  Mutex.unlock t.conns_lock;
  let fin () =
    if Atomic.get conn.alive then begin
      Atomic.set conn.alive false;
      Counters.incr "service.disconnect"
    end;
    let purged = Admission.drop_client t.queue conn.cid in
    if purged <> [] then
      Counters.incr ~by:(List.length purged) "service.purged";
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns conn.cid;
    Hashtbl.remove t.readers conn.cid;
    Mutex.unlock t.conns_lock;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  in
  (try
     while Atomic.get conn.alive do
       match Protocol.read_frame ~limit:t.frame_limit conn.fd with
       | Protocol.Eof -> Atomic.set conn.alive false
       | Protocol.Oversized len ->
           Counters.incr "service.oversized";
           send_reply conn
             (error_reply 0 Protocol.Bad_request
                (Printf.sprintf "frame of %d bytes exceeds the limit" len));
           (* the stream position is unknown past a rejected length:
              drop the connection rather than serve garbage *)
           Atomic.set conn.alive false
       | Protocol.Frame body -> (
           match Protocol.decode_request body with
           | Error msg ->
               Counters.incr "service.bad_frame";
               send_reply conn (error_reply 0 Protocol.Bad_request msg)
           | Ok req -> handle_request t conn req)
     done
   with
  | Unix.Unix_error _ | Sys_error _ -> ()
  | e ->
      Counters.incr "service.reader_rescue";
      prerr_endline ("spiral-service reader: " ^ Printexc.to_string e));
  fin ()

(* ---- lifecycle ---- *)

(* Poll with a short timeout instead of parking in [accept]: on Linux,
   closing a socket does NOT wake a thread already blocked in accept(2)
   on it, so a blocking loop would hang shutdown.  The 200 ms tick
   bounds how long [stop] waits for this thread. *)
let accept_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.listen_fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | exception Unix.Unix_error _ -> Thread.yield ()
    | _ -> (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
            (* bound every blocking write syscall on this connection: a
               peer that stops reading makes the write fail instead of
               parking a server thread forever *)
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.send_timeout
             with Unix.Unix_error _ | Invalid_argument _ -> ());
            let over =
              Mutex.lock t.conns_lock;
              let n = Hashtbl.length t.conns in
              Mutex.unlock t.conns_lock;
              n >= t.cfg.max_conns
            in
            if over then begin
              (* connection cap: resident reader threads and per-frame
                 buffers stay bounded no matter how many peers pile in;
                 the reject is a best-effort structured reply *)
              Counters.incr "service.conn_rejected";
              (try
                 Protocol.write_frame ~timeout:t.cfg.send_timeout fd
                   (Protocol.encode_reply
                      {
                        id = 0;
                        status = Protocol.Overloaded;
                        message = "connection limit reached";
                        payload = [||];
                      })
               with Unix.Unix_error _ | Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else begin
              let conn =
                Mutex.lock t.conns_lock;
                let cid = t.next_cid in
                t.next_cid <- cid + 1;
                let conn =
                  {
                    fd;
                    cid;
                    tenant = "c" ^ string_of_int cid;
                    alive = Atomic.make true;
                    wlock = Mutex.create ();
                    send_timeout = t.cfg.send_timeout;
                  }
                in
                Hashtbl.replace t.conns cid conn;
                Mutex.unlock t.conns_lock;
                conn
              in
              Counters.incr "service.accept";
              ignore (Thread.create (fun () -> reader_loop t conn) () : Thread.t)
            end)
  done

let start cfg =
  if cfg.threads < 1 then invalid_arg "Server.start: threads >= 1";
  (* a client death between our poll of its socket and our write must be
     an EPIPE error, not a process-killing signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  (* create the shared pool up front with the service's bounded wait, so
     every plan's parallel run inherits a deadline-compatible timeout and
     the first request does not pay domain-spawn latency *)
  if cfg.threads > 1 then
    Spiral_smp.Pool_registry.release
      (Spiral_smp.Pool_registry.acquire ~timeout:cfg.pool_timeout cfg.threads);
  let t =
    {
      cfg;
      listen_fd;
      frame_limit = Protocol.request_frame_bound ~max_total:cfg.max_total;
      queue =
        Admission.create ~max_pending:cfg.max_pending
          ~max_per_client:cfg.max_per_client ();
      plans =
        Plans.create ~threads:cfg.threads ~mu:cfg.mu ~max_total:cfg.max_total
          ~max_plans:cfg.max_plans ();
      stopping = Atomic.make false;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
      next_cid = 0;
      accept_thread = None;
      executor = None;
      readers = Hashtbl.create 16;
      sick_streak = 0;
      breaker_level = 0;
      breaker_until = 0.0;
    }
  in
  (* plan warm descriptors before the socket starts accepting: the first
     request for a warmed transform hits a cached plan instead of paying
     derivation and pool-residency establishment on its own latency.
     Runs on this thread, before the executor domain exists, so the
     one-dispatcher discipline holds.  Bad descriptors are counted, not
     fatal — a typo in a boot flag must not take the service down. *)
  List.iter
    (fun d ->
      match Plans.lookup t.plans d with
      | Ok _ -> Counters.incr "service.warm_plan"
      | Error _ -> Counters.incr "service.warm_fail")
    cfg.warm;
  t.executor <- Some (Domain.spawn (fun () -> executor_loop t));
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (* the accept loop polls the flag every 200 ms; join it before
       closing the fd it selects on *)
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* graceful drain: accepted work finishes, then the executor exits *)
    Admission.close t.queue;
    Option.iter Domain.join t.executor;
    (* reap connections: closing the fds unblocks the readers *)
    let conns =
      Mutex.lock t.conns_lock;
      let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      Mutex.unlock t.conns_lock;
      cs
    in
    List.iter
      (fun c ->
        Atomic.set c.alive false;
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    let readers =
      Mutex.lock t.conns_lock;
      let rs = Hashtbl.fold (fun _ th acc -> th :: acc) t.readers [] in
      Mutex.unlock t.conns_lock;
      rs
    in
    List.iter Thread.join readers;
    Plans.destroy_all t.plans;
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  end

let plan_count t = Plans.size t.plans

let pending t = Admission.pending t.queue

let reader_count t =
  Mutex.lock t.conns_lock;
  let n = Hashtbl.length t.readers in
  Mutex.unlock t.conns_lock;
  n
