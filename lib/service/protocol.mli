(** Length-prefixed binary wire protocol of the FFT service.

    Every message is one frame: a 4-byte big-endian body length, then the
    body.  Integers are big-endian; float payloads are IEEE-754 doubles
    as big-endian int64 bit patterns.

    Request body: [u8 op | u32 id | u32 deadline_ms | u16 desc_len |
    descriptor | float64 payload…]; reply body: [u8 status | u32 id |
    u32 msg_len | message | float64 payload…].  The frame boundary is
    known before the body is parsed, so a malformed body never
    desynchronizes the stream. *)

type op =
  | Exec  (** run the transform named by [descriptor] on [payload] *)
  | Ping  (** liveness probe; empty reply *)
  | Stats  (** server counters as Prometheus text in the reply message *)
  | Hello  (** register [descriptor] as this connection's tenant name *)
  | Info  (** payload float counts for [descriptor]: "in=… out=…" *)

type status =
  | Ok
  | Bad_request  (** frame decoded but malformed (bad opcode, sizes…) *)
  | Bad_descriptor  (** descriptor string did not parse *)
  | Unsupported  (** parsed, but the server cannot serve it *)
  | Bad_payload  (** wrong float count, or non-finite samples *)
  | Overloaded  (** load shed: admission queue or per-client cap hit *)
  | Deadline  (** the request's deadline expired before completion *)
  | Internal  (** execution failed; the daemon survived and healed *)
  | Shutting_down

type request = {
  op : op;
  id : int;  (** client-chosen, echoed verbatim in the reply *)
  deadline_ms : int;  (** total budget from admission, 0 = none *)
  descriptor : string;
  payload : float array;
}

type reply = {
  id : int;
  status : status;
  message : string;  (** human-readable detail; [""] on success *)
  payload : float array;
}

val status_to_string : status -> string
val status_code : status -> int
val status_of_code : int -> status option

val max_frame : int ref
(** Default bound on an announced frame body (128 MiB), used when
    {!read_frame} is given no explicit [limit] — a hostile length prefix
    must not OOM the reader.  Clients reading replies use this; the
    server derives a much tighter per-configuration limit with
    {!request_frame_bound}. *)

val request_frame_bound : max_total:int -> int
(** The largest request body (bytes) a server capped at [max_total]
    complex elements can legitimately receive: fixed header + maximal
    descriptor + [2 * max_total] float64s. *)

val encode_request : request -> bytes
val decode_request : bytes -> (request, string) result
val encode_reply : reply -> bytes
val decode_reply : bytes -> (reply, string) result

val write_frame : ?timeout:float -> Unix.file_descr -> bytes -> unit
(** Write one frame (header + body), restarting on [EINTR].  [timeout]
    bounds the {e total} wall-clock time of the write; combined with
    [SO_SNDTIMEO] on the fd (which bounds each blocking syscall) a peer
    that stops reading — full socket buffer or byte-at-a-time trickle —
    makes the write fail with [ETIMEDOUT] instead of blocking forever.
    @raise Unix.Unix_error when the peer is gone ([EPIPE], …) or has
    stopped reading ([ETIMEDOUT]). *)

type read_result =
  | Frame of bytes
  | Eof  (** clean close, or the peer died mid-frame *)
  | Oversized of int  (** announced length; nothing was consumed after it *)

val read_frame : ?limit:int -> Unix.file_descr -> read_result
(** Read one frame, restarting on [EINTR].  A peer that disappears
    mid-frame is an [Eof], not an exception.  An announced body length
    above [limit] (default [!max_frame]) is [Oversized] and nothing is
    allocated or consumed past the header.
    @raise Unix.Unix_error on hard socket errors. *)
