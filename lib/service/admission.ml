(* Bounded, client-fair admission queue.

   Two limits protect the executor: a global cap on pending requests
   (memory bound, keeps the shed decision O(1) at submit time) and a
   per-client cap (one chatty tenant cannot fill the global budget).
   Service order is round-robin across clients — each client has a FIFO
   of its own, and [take] rotates over clients with work — so a client
   pipelining hundreds of requests adds latency to itself, not to the
   tenant sending one request per second. *)

type 'a t = {
  max_pending : int;
  max_per_client : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queues : (int, 'a Queue.t) Hashtbl.t;
  rotation : int Queue.t;
      (* client ids with a nonempty queue, in service order; ids of
         drained or dropped clients are skipped lazily by [take] *)
  mutable pending : int;
  mutable closed : bool;
}

type verdict = Accepted | Queue_full | Client_full | Closed

let create ?(max_pending = 256) ?(max_per_client = 32) () =
  if max_pending < 1 then invalid_arg "Admission.create: max_pending >= 1";
  if max_per_client < 1 then invalid_arg "Admission.create: max_per_client >= 1";
  {
    max_pending;
    max_per_client;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queues = Hashtbl.create 16;
    rotation = Queue.create ();
    pending = 0;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t ~client x =
  with_lock t (fun () ->
      if t.closed then Closed
      else if t.pending >= t.max_pending then Queue_full
      else
        let q =
          match Hashtbl.find_opt t.queues client with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace t.queues client q;
              q
        in
        if Queue.length q >= t.max_per_client then Client_full
        else begin
          if Queue.is_empty q then Queue.push client t.rotation;
          Queue.push x q;
          t.pending <- t.pending + 1;
          Condition.signal t.nonempty;
          Accepted
        end)

(* next pending item in round-robin order, skipping rotation entries
   whose queue has been drained or dropped; caller holds the lock *)
let rec pop_locked t =
  match Queue.take_opt t.rotation with
  | None -> None
  | Some client -> (
      match Hashtbl.find_opt t.queues client with
      | None -> pop_locked t
      | Some q when Queue.is_empty q -> pop_locked t
      | Some q ->
          let x = Queue.pop q in
          t.pending <- t.pending - 1;
          if not (Queue.is_empty q) then Queue.push client t.rotation;
          Some x)

let take t =
  with_lock t (fun () ->
      let rec wait () =
        match pop_locked t with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let drop_client t client =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.queues client with
      | None -> []
      | Some q ->
          Hashtbl.remove t.queues client;
          let items = List.of_seq (Queue.to_seq q) in
          t.pending <- t.pending - List.length items;
          items)

let pending t = with_lock t (fun () -> t.pending)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)
