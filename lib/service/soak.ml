open Spiral_util

(* Chaos soak for the daemon: concurrent client domains (honest tenants,
   a chaos tenant with scoped fault injection, a rogue that slams
   connections shut mid-request) hammer one server while worker faults
   fire in the parallel runtime.  The invariants the report lets a test
   assert:

   - zero wrong answers: every Ok reply matches a sequential reference
     within tolerance (degraded and retried executions included);
   - zero daemon deaths: the server still answers a ping and a fresh
     exec after the storm;
   - bounded error latency: the worst error reply (shed, deadline,
     injected) was produced in bounded time, not by a stuck wait;
   - isolation: honest tenants see no injected-fault errors even while
     the chaos tenant's requests trip them. *)

type client_stats = {
  mutable sent : int;
  mutable ok : int;
  mutable wrong : int;
  mutable shed : int;
  mutable deadline : int;
  mutable internal : int;
  mutable other_err : int;
}

let new_stats () =
  { sent = 0; ok = 0; wrong = 0; shed = 0; deadline = 0; internal = 0;
    other_err = 0 }

type report = {
  total : int;
  ok : int;
  wrong : int;
  shed : int;
  deadline : int;
  internal : int;
  other_err : int;
  honest_internal : int;  (* injected/internal errors seen by honest tenants *)
  rogue_connects : int;
  server_survived : bool;
  max_error_reply_us : float;  (* worst-case latency of an error reply *)
  pool_rebuilds : int;
  seq_fallbacks : int;
  breaker_opens : int;
}

let descriptors =
  [| "dft[64]f"; "dft[32]i"; "dft[128]f"; "dft2d[8x8]f"; "wht[64]f";
     "rfft[64]f"; "rfft[64]i"; "dct[32]f"; "dft[16]fx4" |]

(* deterministic payload for (seed, client, iteration) *)
let payload_for rng n =
  Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0)

let rms a =
  let s = ref 0.0 in
  Array.iter (fun x -> s := !s +. (x *. x)) a;
  sqrt (!s /. float_of_int (max 1 (Array.length a)))

let matches reference out =
  Array.length reference = Array.length out
  &&
  let d = Array.mapi (fun i x -> x -. out.(i)) reference in
  rms d <= 1e-6 *. Float.max 1.0 (rms reference)

(* one honest or chaos client: checked traffic over a mixed descriptor
   diet, every Ok reply verified against a sequential reference *)
let traffic_client ~socket_path ~tenant ~seed ~requests ~reference ~deadline_ms
    stats =
  let rng = Random.State.make [| seed |] in
  let c = Client.connect socket_path in
  Fun.protect
    ~finally:(fun () -> Client.close c)
    (fun () ->
      ignore (Client.hello c tenant);
      for i = 0 to requests - 1 do
        let descriptor =
          descriptors.(Random.State.int rng (Array.length descriptors))
        in
        match Plans.lookup reference descriptor with
        | Error _ -> ()
        | Ok entry ->
            let x = payload_for rng entry.in_floats in
            stats.sent <- stats.sent + 1;
            (match Client.exec c ~deadline_ms ~descriptor x with
            | { status = Protocol.Ok; payload = out; _ } ->
                let expected = entry.exec (Array.copy x) in
                if matches expected out then stats.ok <- stats.ok + 1
                else stats.wrong <- stats.wrong + 1
            | { status = Protocol.Overloaded; _ } -> stats.shed <- stats.shed + 1
            | { status = Protocol.Deadline; _ } ->
                stats.deadline <- stats.deadline + 1
            | { status = Protocol.Internal; _ } ->
                stats.internal <- stats.internal + 1
            | _ -> stats.other_err <- stats.other_err + 1
            | exception Client.Disconnected ->
                stats.other_err <- stats.other_err + 1);
            ignore i
      done)

(* the rogue: connect, post work, vanish without reading — the in-process
   stand-in for a client killed with SIGKILL mid-request.  The server
   must reap the connection and drop the orphaned replies without
   wedging. *)
let rogue_client ~socket_path ~seed ~rounds =
  let rng = Random.State.make [| seed |] in
  let connects = ref 0 in
  for _ = 1 to rounds do
    match Client.connect socket_path with
    | c ->
        incr connects;
        (try
           let descriptor =
             descriptors.(Random.State.int rng (Array.length descriptors))
           in
           let n = 128 in
           ignore (Client.exec_async c ~descriptor (payload_for rng n));
           ignore (Client.exec_async c ~descriptor (payload_for rng n))
         with Client.Disconnected -> ());
        (* no read, no goodbye *)
        Client.close c
    | exception Unix.Unix_error _ -> ()
  done;
  !connects

let run ?(seed = 42) ?(clients = 3) ?(requests = 200) ?(socket_path : string option)
    () =
  let socket_path =
    match socket_path with
    | Some p -> p
    | None ->
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "spiral-soak-%d-%d.sock" (Unix.getpid ()) seed)
  in
  let cfg = Server.default_config ~socket_path () in
  let cfg = { cfg with max_pending = 64; max_per_client = 16 } in
  let server = Server.start cfg in
  (* sequential reference plans, shared read-only by client domains *)
  let reference = Plans.create ~threads:1 () in
  let rebuilds0 = Counters.get "pool.rebuild" in
  let seqfb0 = Counters.get "par_exec.sequential_fallback" in
  let breaker0 = Counters.get "service.breaker_open" in
  (* chaos schedule: the chaos tenant's requests trip scoped faults at
     the execution and delay sites; the whole runtime sees occasional
     worker faults (absorbed by the supervised path — answers stay
     correct) *)
  Fault.arm ~site:"service.exec" ~scope:"chaos" ~prob:0.25 ~times:max_int
    ~seed ();
  Fault.arm ~site:"service.delay" ~scope:"chaos" ~prob:0.15 ~times:max_int
    ~seed:(seed + 1) ();
  Fault.arm ~site:"pool.worker" ~prob:0.002 ~times:6 ~seed:(seed + 2) ();
  let honest_stats = Array.init (max 1 clients) (fun _ -> new_stats ()) in
  let chaos_stats = new_stats () in
  Fun.protect
    ~finally:(fun () ->
      Fault.reset ();
      Server.stop server;
      Plans.destroy_all reference)
    (fun () ->
      let honest =
        Array.mapi
          (fun i stats ->
            Domain.spawn (fun () ->
                traffic_client ~socket_path
                  ~tenant:(Printf.sprintf "honest%d" i)
                  ~seed:(seed + (7 * i))
                  ~requests ~reference ~deadline_ms:10_000 stats))
          honest_stats
      in
      let chaos =
        Domain.spawn (fun () ->
            traffic_client ~socket_path ~tenant:"chaos" ~seed:(seed + 100)
              ~requests ~reference ~deadline_ms:40 chaos_stats)
      in
      let rogue =
        Domain.spawn (fun () ->
            rogue_client ~socket_path ~seed:(seed + 200)
              ~rounds:(max 8 (requests / 8)))
      in
      Array.iter Domain.join honest;
      Domain.join chaos;
      let rogue_connects = Domain.join rogue in
      (* the survival check: after the storm the daemon answers a ping
         and serves a fresh, correct transform *)
      let survived =
        match Client.connect socket_path with
        | c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                let pong = Client.ping c in
                let descriptor = "dft[64]f" in
                match Plans.lookup reference descriptor with
                | Error _ -> false
                | Ok entry ->
                    let rng = Random.State.make [| seed + 999 |] in
                    let x = payload_for rng entry.in_floats in
                    let reply = Client.exec c ~descriptor x in
                    pong.status = Protocol.Ok
                    && reply.status = Protocol.Ok
                    && matches (entry.exec (Array.copy x)) reply.payload)
        | exception (Unix.Unix_error _ | Client.Disconnected) -> false
      in
      let sum f =
        Array.fold_left (fun acc s -> acc + f s) 0 honest_stats + f chaos_stats
      in
      let honest_internal =
        Array.fold_left
          (fun acc (s : client_stats) -> acc + s.internal)
          0 honest_stats
      in
      let max_err_us =
        match Counters.observation "service.error_reply_us" with
        | Some o -> o.Counters.max
        | None -> 0.0
      in
      {
        total = sum (fun s -> s.sent);
        ok = sum (fun s -> s.ok);
        wrong = sum (fun s -> s.wrong);
        shed = sum (fun s -> s.shed);
        deadline = sum (fun s -> s.deadline);
        internal = sum (fun s -> s.internal);
        other_err = sum (fun s -> s.other_err);
        honest_internal;
        rogue_connects;
        server_survived = survived;
        max_error_reply_us = max_err_us;
        pool_rebuilds = Counters.get "pool.rebuild" - rebuilds0;
        seq_fallbacks = Counters.get "par_exec.sequential_fallback" - seqfb0;
        breaker_opens = Counters.get "service.breaker_open" - breaker0;
      })

let pp_report ppf r =
  Format.fprintf ppf
    "soak: total=%d ok=%d wrong=%d shed=%d deadline=%d internal=%d other=%d@ \
     honest_internal=%d rogue_connects=%d survived=%b@ \
     max_error_reply_us=%.0f pool_rebuilds=%d seq_fallbacks=%d \
     breaker_opens=%d"
    r.total r.ok r.wrong r.shed r.deadline r.internal r.other_err
    r.honest_internal r.rogue_connects r.server_survived r.max_error_reply_us
    r.pool_rebuilds r.seq_fallbacks r.breaker_opens
