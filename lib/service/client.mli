(** Blocking client for the FFT daemon.

    Supports pipelining: {!exec_async} posts without reading, {!wait}
    blocks for a specific reply id, stashing any other replies read in
    the meantime (the server may answer out of order — e.g. an
    [Overloaded] shed arrives before earlier accepted work completes).

    All calls raise {!Disconnected} when the server goes away. *)

exception Disconnected

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error if the socket is absent or refuses. *)

val close : t -> unit

val exec :
  t -> ?deadline_ms:int -> descriptor:string -> float array -> Protocol.reply
(** Run one transform and wait for its reply.  [deadline_ms = 0] (the
    default) means no deadline. *)

val exec_async :
  t -> ?deadline_ms:int -> descriptor:string -> float array -> int
(** Post without waiting; returns the request id for {!wait}. *)

val wait : t -> int -> Protocol.reply
(** Block until the reply with this id arrives. *)

val ping : t -> Protocol.reply
val hello : t -> string -> Protocol.reply
(** Identify this connection as the named tenant (the fault scope). *)

val stats : t -> string
(** The server's counters, Prometheus text format. *)

val info : t -> string -> Protocol.reply
(** Payload geometry for a descriptor without planning it; the message
    is ["in=<n> out=<m>"]. *)
