open Spiral_fft

(* Descriptor-keyed table of executable plans, the service's view of the
   library: one resident process serves mixed descriptor kinds (1-D,
   2-D, batched, real-input) by dispatching each parsed Problem to its
   front-end.  Entries are planned on first use, cached, and evicted
   LRU beyond [max_plans]; a "seq" variant of every descriptor (planned
   at [threads = 1]) backs the degraded path when the parallel runtime
   is sick. *)

type entry = {
  descriptor : string;
  in_floats : int;  (* request payload length, in float64s *)
  out_floats : int;  (* reply payload length *)
  parallel : bool;
  exec : float array -> float array;
  destroy : unit -> unit;
  mutable last_used : float;
}

type t = {
  threads : int;
  mu : int;
  max_total : int;
  max_plans : int;
  table : (string, entry) Hashtbl.t;  (* key carries the seq flag *)
  lock : Mutex.t;
}

let create ?(threads = 1) ?(mu = 4) ?(max_total = Engine.default_total_limit)
    ?(max_plans = 64) () =
  if threads < 1 then invalid_arg "Plans.create: threads >= 1";
  if max_plans < 1 then invalid_arg "Plans.create: max_plans >= 1";
  {
    threads;
    mu;
    max_total;
    max_plans;
    table = Hashtbl.create 32;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Payload float counts are a pure function of the problem, so Info
   requests can be answered without planning (or paying a compile on the
   reader thread). *)
let io_floats problem =
  let total = Problem.total problem in
  let n = Problem.size problem in
  match (Problem.kind problem, Problem.direction problem, Problem.batch problem)
  with
  | Problem.Dft, _, _ -> Ok (2 * total, 2 * total)
  | Problem.Dft2d, Problem.Forward, 1 -> Ok (2 * total, 2 * total)
  | Problem.Wht, Problem.Forward, 1 -> Ok (2 * total, 2 * total)
  | Problem.Rfft, Problem.Forward, 1 -> Ok (n, 2 * ((n / 2) + 1))
  | Problem.Rfft, Problem.Inverse, 1 -> Ok (2 * ((n / 2) + 1), n)
  | Problem.Rdft2d, Problem.Forward, 1 ->
      let dims = Problem.dims problem in
      Ok (n, 2 * dims.(0) * ((dims.(1) / 2) + 1))
  | Problem.Rdft2d, Problem.Inverse, 1 ->
      let dims = Problem.dims problem in
      Ok (2 * dims.(0) * ((dims.(1) / 2) + 1), n)
  | Problem.Dct, _, 1 -> Ok (n, n)
  | Problem.Dft2d, _, _ | Problem.Wht, _, _ ->
      Error
        (Engine.Unsupported
           "only forward, unbatched transforms are served for this kind")
  | (Problem.Rfft | Problem.Rdft2d | Problem.Dct), _, _ ->
      Error (Engine.Unsupported "real-input transforms are served unbatched")

(* Build the executable closure for a parsed problem.  Front-end plan
   constructors raise Invalid_argument on sizes they cannot serve (odd
   real lengths, non-power-of-two WHT, …) — surfaced as [Unsupported],
   never as an exception out of the service. *)
let build t ~seq problem descriptor =
  let threads = if seq then 1 else t.threads in
  let mu = t.mu in
  match io_floats problem with
  | Error e -> Error e
  | Ok (in_floats, out_floats) -> (
      let n = Problem.size problem in
      let mk () =
        match
          ( Problem.kind problem,
            Problem.direction problem,
            Problem.batch problem )
        with
        | Problem.Dft, dir, 1 ->
            let dir =
              match dir with
              | Problem.Forward -> Dft.Forward
              | Problem.Inverse -> Dft.Inverse
            in
            let p = Dft.plan ~direction:dir ~threads ~mu n in
            ( (fun x -> Dft.execute p x),
              (fun () -> Dft.destroy p),
              Dft.parallel p )
        | Problem.Dft, Problem.Forward, count ->
            let p = Batch.plan ~threads ~mu ~count n in
            ( (fun x -> Batch.execute p x),
              (fun () -> Batch.destroy p),
              Batch.parallel p )
        | Problem.Dft, Problem.Inverse, _ ->
            invalid_arg "batched transforms are served forward-only"
        | Problem.Dft2d, _, _ ->
            let dims = Problem.dims problem in
            let p = Dft2d.plan ~threads ~mu ~rows:dims.(0) ~cols:dims.(1) () in
            ( (fun x -> Dft2d.execute p x),
              (fun () -> Dft2d.destroy p),
              Dft2d.parallel p )
        | Problem.Wht, _, _ ->
            let p = Wht.plan ~threads ~mu n in
            ( (fun x -> Wht.execute p x),
              (fun () -> Wht.destroy p),
              Wht.parallel p )
        | Problem.Rfft, Problem.Forward, _ ->
            let p = Rfft.plan ~threads ~mu n in
            ((fun x -> Rfft.forward p x), (fun () -> Rfft.destroy p), Rfft.parallel p)
        | Problem.Rfft, Problem.Inverse, _ ->
            let p = Rfft.plan ~threads ~mu n in
            ((fun x -> Rfft.inverse p x), (fun () -> Rfft.destroy p), Rfft.parallel p)
        | Problem.Rdft2d, dir, _ -> (
            let dims = Problem.dims problem in
            let p = Rfft2d.plan ~threads ~mu ~rows:dims.(0) ~cols:dims.(1) () in
            match dir with
            | Problem.Forward ->
                ( (fun x -> Rfft2d.forward p x),
                  (fun () -> Rfft2d.destroy p),
                  Rfft2d.parallel p )
            | Problem.Inverse ->
                ( (fun x -> Rfft2d.inverse p x),
                  (fun () -> Rfft2d.destroy p),
                  Rfft2d.parallel p ))
        | Problem.Dct, Problem.Forward, _ ->
            let p = Dct.plan ~threads ~mu n in
            ((fun x -> Dct.forward p x), (fun () -> Dct.destroy p), Dct.parallel p)
        | Problem.Dct, Problem.Inverse, _ ->
            let p = Dct.plan ~threads ~mu n in
            ((fun x -> Dct.inverse p x), (fun () -> Dct.destroy p), Dct.parallel p)
      in
      match mk () with
      | exec, destroy, parallel ->
          Ok
            {
              descriptor;
              in_floats;
              out_floats;
              parallel;
              exec;
              destroy;
              last_used = Unix.gettimeofday ();
            }
      | exception Invalid_argument msg -> Error (Engine.Unsupported msg))

let key ~seq descriptor = if seq then "seq!" ^ descriptor else descriptor

(* caller holds the lock *)
let evict_lru_locked t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (k, e))
      t.table None
  in
  Option.iter
    (fun (k, e) ->
      Hashtbl.remove t.table k;
      e.destroy ();
      Spiral_util.Counters.incr "service.plan_evicted_lru")
    victim

let lookup ?(seq = false) t descriptor =
  match Engine.parse_problem ~limit:t.max_total descriptor with
  | Error e -> Error e
  | Ok problem -> (
      let k = key ~seq descriptor in
      match
        with_lock t (fun () ->
            match Hashtbl.find_opt t.table k with
            | Some e ->
                e.last_used <- Unix.gettimeofday ();
                Some e
            | None -> None)
      with
      | Some e -> Ok e
      | None -> (
          (* plan outside the lock: compilation can take milliseconds and
             Info/stat readers must not stall behind it *)
          match build t ~seq problem descriptor with
          | Error e -> Error e
          | Ok entry ->
              Ok
                (with_lock t (fun () ->
                     match Hashtbl.find_opt t.table k with
                     | Some prior ->
                         (* racing planner lost; drop ours *)
                         entry.destroy ();
                         prior
                     | None ->
                         while Hashtbl.length t.table >= t.max_plans do
                           evict_lru_locked t
                         done;
                         Hashtbl.replace t.table k entry;
                         entry))))

let evict t descriptor =
  List.iter
    (fun k ->
      match
        with_lock t (fun () ->
            match Hashtbl.find_opt t.table k with
            | Some e ->
                Hashtbl.remove t.table k;
                Some e
            | None -> None)
      with
      | Some e ->
          e.destroy ();
          Spiral_util.Counters.incr "service.plan_evicted"
      | None -> ())
    [ key ~seq:false descriptor; key ~seq:true descriptor ]

let size t = with_lock t (fun () -> Hashtbl.length t.table)

let destroy_all t =
  let entries =
    with_lock t (fun () ->
        let es = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
        Hashtbl.reset t.table;
        es)
  in
  List.iter (fun e -> e.destroy ()) entries
