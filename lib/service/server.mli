(** The resident FFT daemon behind [spiralgen serve].

    One process, one Unix-domain socket, many tenants.  The server is
    engineered to stay up under hostile load; the robustness layers,
    outermost first:

    - {b framing} — every read is bounded by a 4-byte length prefix,
      with the request limit derived from [max_total] rather than a
      generous global; malformed or oversized frames get an error reply,
      never a crash;
    - {b admission} — a bounded client-fair queue ({!Admission}); excess
      load is shed immediately with [Overloaded], and concurrent
      connections are capped at accept ([max_conns]) so reader threads
      and frame buffers stay bounded;
    - {b deadlines} — a request's [deadline_ms] budget is enforced at
      dequeue and after execution ([Deadline] replies); executions can
      never hang because every pool/barrier wait in the runtime is
      bounded and surfaces as a structured reply;
    - {b supervised execution with backoff} — the safe execution path
      retries once on a healed pool then falls back to sequential; a
      circuit breaker turns consecutive degraded executions into an
      exponentially growing window during which requests run on cached
      sequential plans, then probes the parallel path again;
    - {b tenant isolation} — faults are scoped per client; a request
      that trips injection or produces corrupt output gets an [Internal]
      reply, sick pools are healed and the suspect plan evicted, without
      touching other tenants' plans or queued requests;
    - {b connection supervision} — a client killed mid-request is
      reaped; its pending work is purged and replies to it are dropped;
      reply writes are bounded by [send_timeout], so a live client that
      stops reading is dropped the same way — neither a dead nor a
      stalled peer can wedge the executor.

    Threading: accept loop and per-connection readers are systhreads;
    a single executor domain is the only thread that runs plans (the
    worker pool's one-dispatcher discipline holds by construction). *)

type config = {
  socket_path : string;
  threads : int;  (** worker count requests are planned for *)
  mu : int;
  max_pending : int;  (** admission: global queue bound *)
  max_per_client : int;  (** admission: per-client pending bound *)
  max_conns : int;  (** concurrent connections; excess rejected at accept *)
  max_total : int;  (** largest problem (complex elements) served; also
                        sizes the request-frame limit *)
  max_plans : int;  (** resident plans before LRU eviction *)
  pool_timeout : float;  (** bound on every parallel wait (seconds) *)
  send_timeout : float;  (** total budget for any one reply write; a
                             peer that stops reading is dropped *)
  breaker_threshold : int;  (** consecutive sick executions to open *)
  backoff_base : float;  (** first backoff window (seconds) *)
  backoff_max : float;  (** backoff growth cap (seconds) *)
  warm : string list;
      (** descriptors planned at boot, before the socket accepts — the
          first request for a warmed transform skips derivation and
          plan-cache population ([spiralgen serve --warm]).  Successes
          and failures are counted under ["service.warm_plan"] /
          ["service.warm_fail"]; a bad descriptor is never fatal. *)
}

val default_config : socket_path:string -> unit -> config
(** threads = 2, mu = 4, 256 pending (32 per client), 64 connections,
    4M-element cap, 64 plans, 5 s pool timeout, 1 s send timeout,
    breaker at 3 with 50 ms base / 2 s max backoff, no warm plans. *)

type t

val start : config -> t
(** Bind the socket (unlinking any stale one), pre-warm the shared pool
    with the service's bounded timeout, and spawn the accept thread and
    the executor domain.  Ignores [SIGPIPE] process-wide (a dead client
    must surface as [EPIPE], not kill the daemon).
    @raise Unix.Unix_error if the socket cannot be bound. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain accepted requests, join the
    executor and all readers, destroy plans, unlink the socket.
    Idempotent. *)

val plan_count : t -> int
val pending : t -> int

val reader_count : t -> int
(** Live reader threads (= live connections); readers prune their own
    entry on exit, so this returns to 0 as connections close. *)
