(** Bounded, client-fair admission queue for the FFT service.

    Admission control is the first robustness layer: the queue is
    bounded globally (memory bound; excess load is shed with an
    [Overloaded] reply instead of growing without limit) and per client
    (one chatty tenant cannot consume the whole global budget).  Service
    order is round-robin across clients with pending work, FIFO within a
    client, so pipelining hundreds of requests delays the pipeliner, not
    the other tenants.

    [submit] is called from connection reader threads, [take] from the
    executor; all operations are thread- and domain-safe. *)

type 'a t

type verdict =
  | Accepted
  | Queue_full  (** global [max_pending] reached — shed *)
  | Client_full  (** this client's [max_per_client] reached — shed *)
  | Closed  (** the queue was {!close}d (server shutting down) *)

val create : ?max_pending:int -> ?max_per_client:int -> unit -> 'a t
(** Defaults: 256 pending total, 32 per client.
    @raise Invalid_argument unless both are [>= 1]. *)

val submit : 'a t -> client:int -> 'a -> verdict
(** Non-blocking; never waits for space (an overloaded server must say
    so {e now}, not stall the reader thread). *)

val take : 'a t -> 'a option
(** Next item in client-round-robin order; blocks while the queue is
    empty and open.  [None] once the queue is closed {e and} drained —
    a graceful shutdown finishes accepted work first. *)

val drop_client : 'a t -> int -> 'a list
(** Remove and return every pending item of a client (it disconnected);
    its future {!submit}s start a fresh queue. *)

val pending : 'a t -> int

val close : 'a t -> unit
(** Refuse new submissions and wake blocked {!take}s. *)
