(** Descriptor-keyed table of executable plans — the service's view of
    the transform library.

    One resident daemon serves mixed descriptor kinds (1-D, 2-D,
    batched, real-input) from a single process: each descriptor string
    is parsed into a {!Spiral_fft.Problem}, admission-checked against a
    total-size cap, dispatched to its front-end ({!Spiral_fft.Dft},
    {!Spiral_fft.Batch}, {!Spiral_fft.Dft2d}, {!Spiral_fft.Wht},
    {!Spiral_fft.Rfft}, {!Spiral_fft.Dct}), and cached.  Beyond
    [max_plans] entries the least-recently-used plan is destroyed
    (counted under ["service.plan_evicted_lru"]).

    Every descriptor also has a sequential variant ([lookup ~seq:true],
    planned at [threads = 1]) — the degraded path the server switches to
    when the parallel runtime is sick.

    Payload conventions (float64 counts; complex data interleaved
    re/im):
    - [dft]/[dft2d]/[wht] and batched [dft]: in = out = 2 × total;
    - [rfft[n]f]: in = n reals, out = 2 × (n/2 + 1) (half-spectrum);
    - [rfft[n]i]: the reverse;
    - [dct[n]f]/[dct[n]i]: in = out = n reals. *)

type entry = {
  descriptor : string;
  in_floats : int;
  out_floats : int;
  parallel : bool;
  exec : float array -> float array;
      (** runs the transform; may raise (the server catches) *)
  destroy : unit -> unit;
  mutable last_used : float;
}

type t

val create :
  ?threads:int ->
  ?mu:int ->
  ?max_total:int ->
  ?max_plans:int ->
  unit ->
  t
(** Defaults: [threads = 1], [mu = 4],
    [max_total = Engine.default_total_limit], [max_plans = 64]. *)

val io_floats :
  Spiral_fft.Problem.t -> (int * int, Spiral_fft.Engine.error) result
(** [(in_floats, out_floats)] for a problem, without planning it —
    answers Info requests from the reader thread for free. *)

val lookup :
  ?seq:bool -> t -> string -> (entry, Spiral_fft.Engine.error) result
(** Parse, admission-check, and plan (or fetch) the descriptor.
    [~seq:true] returns the sequential variant.  Never raises. *)

val evict : t -> string -> unit
(** Destroy and forget both variants of a descriptor (its plan may be
    poisoned); the next {!lookup} replans.  Counted under
    ["service.plan_evicted"]. *)

val size : t -> int

val destroy_all : t -> unit
