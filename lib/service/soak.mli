(** Chaos soak harness for the daemon.

    Spawns concurrent client domains against one in-process server:
    [clients] honest tenants running checked traffic (every Ok reply is
    verified against a sequential reference plan), one chaos tenant
    whose requests trip scoped fault injection at the execution and
    delay sites (plus a tight deadline), and one rogue client that posts
    work and slams the connection shut without reading — the in-process
    stand-in for a client killed with SIGKILL mid-request.  Meanwhile
    the whole runtime sees occasional ["pool.worker"] faults, absorbed
    by the supervised execution path.

    The report lets a test assert the service invariants: zero wrong
    answers, the server survives (answers a ping and a fresh exec after
    the storm), error replies stay fast, honest tenants are isolated
    from the chaos tenant's faults. *)

type report = {
  total : int;  (** checked requests sent (honest + chaos) *)
  ok : int;
  wrong : int;  (** Ok replies that failed verification — must be 0 *)
  shed : int;  (** [Overloaded] replies *)
  deadline : int;  (** [Deadline] replies *)
  internal : int;  (** [Internal] replies (injected faults, …) *)
  other_err : int;
  honest_internal : int;
      (** [Internal] replies seen by honest tenants — isolation gauge *)
  rogue_connects : int;
  server_survived : bool;
  max_error_reply_us : float;
  pool_rebuilds : int;
  seq_fallbacks : int;
  breaker_opens : int;
}

val run :
  ?seed:int ->
  ?clients:int ->
  ?requests:int ->
  ?socket_path:string ->
  unit ->
  report
(** Defaults: seed 42, 3 honest clients (plus chaos and rogue — five
    concurrent client domains), 200 requests per checked client, a
    fresh socket under the system temp directory.  Arms fault sites for
    the duration and resets them on exit. *)

val pp_report : Format.formatter -> report -> unit
