open Spiral_util

(* Low-latency waiting shared by Pool (dispatch/join) and Barrier.

   A wait escalates through three phases:

   1. spin  — re-check the predicate between [Domain.cpu_relax] hints.
              Free of syscalls and of clock reads; right when the poster
              is running on another core and is at most a few hundred
              nanoseconds away.
   2. park  — block on an eventcount (mutex + condvar, a futex wait on
              Linux).  This is the oversubscription path: with more
              domains than cores, spinning only burns the poster's
              timeslice, while a futex round-trip costs single-digit
              microseconds.  Timeouts are detected by a watchdog domain
              that periodically broadcasts the eventcounts so parked
              waiters can re-check their own deadline; OCaml's
              [Condition] has no timed wait.
   3. timed sleep — only when the watchdog domain cannot be spawned:
              poll the predicate with [Unix.sleepf sleep_interval].
              Every such sleep is counted under ["smp.timed_sleep"], so
              tests can assert that the steady state never reaches this
              phase (on Linux each sleep costs ~100µs of timer slack,
              which is exactly the latency this module exists to avoid).

   Waiters park on a specific {!eventcount} (each pool and barrier owns
   its own), so a post wakes only the threads that can actually make
   progress from it: a barrier release does not wake a joiner, and one
   pool's dispatch does not wake another pool's idle workers.  The
   clock starts only when spinning has failed, mirroring the original
   barrier: the fast path performs no syscalls at all. *)

(* ---- named thresholds (one place; Pool and Barrier take ?spin_limit
   overrides but default to these) ---- *)

let cores = Domain.recommended_domain_count ()

let dedicated_spin_limit = 10_000

let oversubscribed_spin_limit = 256

let default_spin_limit =
  if cores <= 1 then oversubscribed_spin_limit else dedicated_spin_limit

let spin_limit_for ~parties =
  if parties > cores then oversubscribed_spin_limit else default_spin_limit

let sleep_interval = 50e-6

let watchdog_interval = 2e-3

let watchdog_idle_exit = 1.0

let timed_sleep_counter = "smp.timed_sleep"

type outcome = Ready | Aborted | TimedOut of float

(* ---- eventcounts ---- *)

type eventcount = {
  ec_mutex : Mutex.t;
  ec_cond : Condition.t;
  ec_parked : int Atomic.t;
      (* waiters inside the parked phase; posters skip the mutex (and the
         broadcast syscall) entirely while this is 0 *)
  ec_timed : int Atomic.t;
      (* parked waiters with a finite deadline: only these need watchdog
         ticks *)
}

(* Every eventcount ever created, for the watchdog scan.  Eventcounts are
   owned by pools and barriers, so the list stays small and append-only
   (a few dozen words each; a process that created millions of pools
   would notice, nothing realistic does). *)
let registry : eventcount list Atomic.t = Atomic.make []

let eventcount () =
  let ec =
    {
      ec_mutex = Mutex.create ();
      ec_cond = Condition.create ();
      ec_parked = Atomic.make 0;
      ec_timed = Atomic.make 0;
    }
  in
  let rec push () =
    let old = Atomic.get registry in
    if not (Atomic.compare_and_set registry old (ec :: old)) then push ()
  in
  push ();
  ec

let default_eventcount = eventcount ()

let wake_all ?(ec = default_eventcount) () =
  if Atomic.get ec.ec_parked > 0 then begin
    Mutex.lock ec.ec_mutex;
    Condition.broadcast ec.ec_cond;
    Mutex.unlock ec.ec_mutex
  end

(* ---- watchdog ---- *)

let watchdog_live = Atomic.make false

(* Goes false permanently if Domain.spawn fails; waits then fall back to
   timed-sleep polling. *)
let watchdog_ok = Atomic.make true

let any_timed () =
  List.exists (fun ec -> Atomic.get ec.ec_timed > 0) (Atomic.get registry)

let tick_timed () =
  List.iter
    (fun ec ->
      if Atomic.get ec.ec_timed > 0 then begin
        Mutex.lock ec.ec_mutex;
        Condition.broadcast ec.ec_cond;
        Mutex.unlock ec.ec_mutex
      end)
    (Atomic.get registry)

let rec watchdog_loop idle_since =
  Unix.sleepf watchdog_interval;
  if any_timed () then begin
    tick_timed ();
    watchdog_loop (Unix.gettimeofday ())
  end
  else begin
    let now = Unix.gettimeofday () in
    if now -. idle_since < watchdog_idle_exit then watchdog_loop idle_since
    else begin
      Atomic.set watchdog_live false;
      (* A waiter may have registered between our last [any_timed] check
         and the flag store above; it would then observe
         [watchdog_live = true] and not spawn a replacement.  Re-check
         and take the duty back rather than leave it uncovered.  (The
         waiter increments its eventcount's timed counter before reading
         the flag, so one of the two always notices.) *)
      if any_timed () && Atomic.compare_and_set watchdog_live false true then
        watchdog_loop now
    end
  end

let ensure_watchdog () =
  if
    Atomic.get watchdog_ok
    && (not (Atomic.get watchdog_live))
    && Atomic.compare_and_set watchdog_live false true
  then
    match Domain.spawn (fun () -> watchdog_loop (Unix.gettimeofday ())) with
    | (_ : unit Domain.t) -> ()
    | exception _ ->
        Atomic.set watchdog_live false;
        Atomic.set watchdog_ok false

(* ---- phases 2 and 3 ---- *)

let sleep_poll ~start ~deadline ~abort pred =
  let rec loop () =
    if pred () then Ready
    else if abort () then Aborted
    else
      let now = Unix.gettimeofday () in
      if now > deadline then TimedOut (now -. start)
      else begin
        Counters.incr timed_sleep_counter;
        Unix.sleepf sleep_interval;
        loop ()
      end
  in
  loop ()

let park ~ec ~start ~deadline ~abort pred =
  let finite = deadline < infinity in
  Atomic.incr ec.ec_parked;
  if finite then begin
    (* Order matters: register in the timed counter before ensure_watchdog
       reads [watchdog_live] (see the exit race in watchdog_loop). *)
    Atomic.incr ec.ec_timed;
    ensure_watchdog ()
  end;
  let unpark () =
    Atomic.decr ec.ec_parked;
    if finite then Atomic.decr ec.ec_timed
  in
  if finite && not (Atomic.get watchdog_ok) then begin
    (* No watchdog to wake us at the deadline: fall back to counted
       timed-sleep polling (the only phase that ever calls sleepf). *)
    unpark ();
    sleep_poll ~start ~deadline ~abort pred
  end
  else begin
    Mutex.lock ec.ec_mutex;
    let rec loop () =
      (* The final predicate check happens under the eventcount mutex, and
         posters broadcast under the same mutex after their state change,
         so a post between our check and [Condition.wait] cannot be
         lost. *)
      if pred () then Ready
      else if abort () then Aborted
      else
        let now = Unix.gettimeofday () in
        if now > deadline then TimedOut (now -. start)
        else begin
          Condition.wait ec.ec_cond ec.ec_mutex;
          loop ()
        end
    in
    let r = loop () in
    Mutex.unlock ec.ec_mutex;
    unpark ();
    r
  end

let no_abort () = false

let wait ?(spin_limit = default_spin_limit) ?(ec = default_eventcount) ~timeout
    ?(abort = no_abort) pred =
  if pred () then Ready
  else if abort () then Aborted
  else begin
    let spins = ref 0 in
    let result = ref None in
    while !result = None && !spins < spin_limit do
      if pred () then result := Some Ready
      else if !spins land 255 = 255 && abort () then result := Some Aborted
      else begin
        incr spins;
        Domain.cpu_relax ()
      end
    done;
    match !result with
    | Some r -> r
    | None ->
        let start = Unix.gettimeofday () in
        park ~ec ~start ~deadline:(start +. timeout) ~abort pred
  end
