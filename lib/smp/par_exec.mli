(** Multithreaded execution of compiled plans.

    Two backends mirroring the paper's two generated-code variants:
    - {!execute} / {!execute_prepared} — "pthreads" style: one job
      dispatched to a persistent {!Pool}, stages separated by a
      low-latency spin {!Barrier};
    - {!execute_fork_join} — "OpenMP" style: domains are spawned per call
      and joined at every parallel stage (thread startup on the critical
      path, as in OpenMP without pooling).

    {!prepare} bakes the parallel schedule of a (plan, pool) pair once:
    per-worker iteration ranges of every pass, the barrier-elision mask,
    the barrier and its per-worker senses, and the per-worker codelet
    scratch.  A steady-state {!execute_prepared} is one pool dispatch,
    the interior barriers, and one join — no allocation, no sleeping, no
    per-call analysis.  {!execute_many} amortizes even the dispatch and
    join across a whole batch of transforms, keeping the workers inside
    a single parallel region.

    {!execute_safe} wraps {!execute} in a supervisor: any recoverable
    pool failure (worker death, barrier timeout, aggregated worker
    exceptions) is retried once on a healed pool, and a second failure
    degrades to a correct sequential execution of the same plan.

    Iterations of a parallel pass are assigned to workers according to
    [schedule]: [Block] is the paper's schedule (contiguous chunks, rule
    (7)/(9)); [Cyclic c] hands out chunks of [c] iterations round-robin
    (FFTW-style block-cyclic — the false-sharing baseline).  Block
    boundaries of µ-tagged passes are aligned to cache-line multiples
    ({!pass_align}), realizing Definition 1's false-sharing freedom; the
    ["par_exec.misaligned_split"] counter records µ-lines the partition
    nevertheless shares between workers (e.g. when a plan generated for
    [p] processors runs with a different worker count).

    Both executors elide the inter-pass barrier where a static analysis
    proves the neighbouring passes partition-compatible under the Block
    schedule ({!elision_mask}; legality conditions in DESIGN.md,
    "Barrier elision").  The pooled executor skips the {!Barrier.wait};
    the fork-join executor merges the passes into one spawn/join region. *)

type schedule = Block | Cyclic of int

val worker_range :
  ?align:int -> schedule -> count:int -> workers:int -> int ->
  (int * int) list
(** [worker_range sched ~count ~workers w] is the list of [lo, hi) iteration
    ranges executed by worker [w]; the ranges of all workers partition
    [0, count).  [align] (default 1; Block only) floors every internal
    boundary to a multiple of [align] iterations.  Exposed for the machine
    simulator, which replays the exact same schedule. *)

val pass_align : Spiral_codegen.Plan.pass -> int
(** Boundary alignment (iterations) that makes the pass's Block
    partition start each worker on a fresh µ-line: µ/gcd(µ, radix) for a
    µ-tagged pass, 1 otherwise. *)

val elision_mask :
  ?schedule:schedule -> workers:int -> Spiral_codegen.Plan.t -> bool array
(** [elision_mask ~workers plan] has one entry per pass boundary;
    [mask.(k)] is true when the barrier between passes [k] and [k+1] is
    provably unnecessary: both passes are parallel, under the (aligned)
    Block schedule every worker's pass-[k+1] gathers land in its own
    pass-[k] scatters, writes into an aliased ping-pong buffer touch no
    other worker's pending reads, and chaining stays legal: at most two
    consecutive boundaries elide (worker skew bounded by two passes), and
    a length-2 chain additionally requires the passes bracketing it to
    agree pointwise on which worker writes each position of the
    ping-pong buffer their outputs share (condition C — per-worker
    program order then serializes the distance-2 hazards).  [Cyclic]
    schedules get an empty mask (no elision).  Results are cached on the
    plan per worker count. *)

type boundary_witness = {
  boundary : int;  (** The elided boundary (between passes [b], [b+1]). *)
  writer : int array;
      (** Per buffer position of pass [b]'s output: the worker that wrote
          it under the aligned Block partition, [-1] if untouched. *)
  reader : int array;
      (** Per buffer position of pass [b]'s input: the worker that read
          it, [-1] if unread, [-2] if read by several workers. *)
}
(** Read/write-set witness of one elided barrier: what the analysis
    believed about pass [b]'s footprint when it licensed the elision.
    [Spiral_validate.check_elision] re-derives both arrays from
    {!Spiral_codegen.Plan.iter_addresses} and re-checks conditions A/B
    against them rather than trusting the analysis. *)

val elision_witness :
  workers:int ->
  Spiral_codegen.Plan.t ->
  bool array * boundary_witness list
(** {!elision_mask} recomputed with per-boundary witnesses (one per
    elided boundary; none when [workers = 1], where every boundary is
    trivially elidable).  Always recomputes — witnesses are never cached
    — and refreshes the plan's mask cache with the result. *)

val misaligned_lines : workers:int -> Spiral_codegen.Plan.t -> int
(** Number of µ-lines written by two or more workers across the plan's
    µ-tagged parallel passes under the aligned Block partition — the
    false-sharing residue Definition 1 promises to be zero for
    [smp(p, µ)]-conform plans at their native worker count.  Cached on
    the plan per worker count; a non-zero result increments
    ["par_exec.misaligned_split"] (once, on first computation). *)

type prepared
(** A plan-baked parallel schedule bound to a pool: iteration ranges,
    elision mask, barrier and per-worker senses, worker scratch — plus
    the plan's residency state (the {!Pool.region} it currently holds,
    if any). *)

type residency = [ `Auto | `On | `Off ]
(** Whether a prepared plan may pin the pool's workers inside a
    cross-call resident region ({!Pool.region_begin}): [`On] pins on the
    first execution, [`Off] never pins (every call is a full pool
    rendezvous), [`Auto] (the default) pins after a few consecutive
    executions and backs off exponentially when another plan sharing the
    pool evicts it. *)

val default_residency : residency ref
(** Residency policy applied by {!prepare} when none is given
    ([`Auto]).  The `spiralgen` [--resident] flag sets this. *)

val default_resident_idle : float ref
(** Idle-decay deadline (seconds, default 0.25) applied by {!prepare}
    when none is given: a resident region whose workers see no call for
    this long releases them back to the pool's ordinary idle park
    (counted under ["pool.region_decay"]). *)

val default_spin_limit : int option ref
(** Spin budget override applied by {!prepare} when none is given
    (default [None]: the {!Spinwait.spin_limit_for} machine default).
    Governs both the prepared barrier's waits and resident workers'
    between-call spinning. *)

val prepare :
  Pool.t ->
  ?schedule:schedule ->
  ?elide:bool ->
  ?timeout:float ->
  ?resident:residency ->
  ?resident_idle:float ->
  ?spin_limit:int ->
  Spiral_codegen.Plan.t ->
  prepared
(** Bake the parallel schedule of [plan] on this pool.  [elide] (default
    [true]) enables barrier elision; [timeout] bounds every inter-pass
    barrier wait (default: the pool's timeout).  [resident],
    [resident_idle] and [spin_limit] override the process-wide residency
    defaults above.  The prepared schedule assumes the pool keeps its
    size; it may be reused for any number of executions, including after
    failures (the barrier and residency state are refreshed internally
    when an execution raises). *)

val release : prepared -> unit
(** Retire the prepared plan's resident region, if it holds one,
    releasing the pool for other plans ({!Pool.region_end}).  Idempotent
    and cheap when nothing is pinned; call it before dropping a
    long-lived [prepared] (e.g. {!Engine.destroy}) — an abandoned
    region would otherwise occupy the pool until evicted or
    idle-decayed. *)

val execute_prepared :
  prepared -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> unit
(** Parallel execution with spin barriers between passes, through the
    three-tier dispatch: a steady-state call on a resident region costs
    one CAS on the region's sequence word (plus a wake if a worker
    parked); otherwise a full pool rendezvous ({!Pool.run}); the
    supervised wrappers add the sequential tier.  Sequential passes (no
    [par] annotation) run on worker 0 while others wait.  Elided
    barriers are counted into {!Spiral_util.Counters} under
    ["par_exec.barrier_elided"]; each pass declares the fault-injection
    site ["par_exec.pass"] ({!Spiral_util.Fault}).  The barrier after the
    final pass is subsumed by the pool/region join.  Any failure drops
    residency (so the pool can heal) and refreshes the barrier.
    @raise Pool.Worker_errors, Pool.Deadlock on worker failure. *)

val execute_safe_prepared :
  prepared -> Spiral_util.Cvec.t -> Spiral_util.Cvec.t -> unit
(** Supervised {!execute_prepared}: on a recoverable failure, heals the
    pool ({!Pool.heal}) and retries once; on a second failure, heals
    again and falls back to sequential execution of the same plan, which
    always produces the correct transform.  Degradations are recorded in
    {!Spiral_util.Counters} under ["par_exec.retry"] and
    ["par_exec.sequential_fallback"].  Never hangs: all waits are bounded
    by the pool and barrier timeouts. *)

val execute_many :
  prepared -> (Spiral_util.Cvec.t * Spiral_util.Cvec.t) array -> unit
(** [execute_many t jobs] runs the plan once per [(x, y)] pair in [jobs],
    inside a {e single} parallel region: one pool dispatch, one join, for
    the whole batch.  Where the schedule proves it safe, even the barrier
    between consecutive transforms is elided (never across chained user
    buffers — a job whose input is physically the previous job's output,
    or vice versa, always gets a barrier).  Bit-identical to calling
    {!execute_prepared} per pair. *)

val execute_many_safe :
  prepared -> (Spiral_util.Cvec.t * Spiral_util.Cvec.t) array -> unit
(** Supervised {!execute_many} (retry once on a healed pool, then
    sequential fallback per job). *)

val execute :
  Pool.t ->
  ?schedule:schedule ->
  ?elide:bool ->
  ?timeout:float ->
  Spiral_codegen.Plan.t ->
  Spiral_util.Cvec.t ->
  Spiral_util.Cvec.t ->
  unit
(** [prepare] + {!execute_prepared} in one call (the analysis pieces are
    cached on the plan, so repeated calls stay cheap; hold a [prepared]
    to also reuse the barrier and skip the per-call setup). *)

val execute_safe :
  Pool.t ->
  ?schedule:schedule ->
  ?elide:bool ->
  ?timeout:float ->
  Spiral_codegen.Plan.t ->
  Spiral_util.Cvec.t ->
  Spiral_util.Cvec.t ->
  unit
(** [prepare] + {!execute_safe_prepared} in one call. *)

val execute_fork_join :
  p:int ->
  ?schedule:schedule ->
  ?elide:bool ->
  Spiral_codegen.Plan.t ->
  Spiral_util.Cvec.t ->
  Spiral_util.Cvec.t ->
  unit
(** Spawns [p - 1] fresh domains per parallel region (joined before
    returning).  [elide] (default [true]) lets consecutive parallel
    passes whose boundary {!elision_mask} licenses share one spawn/join
    region. *)
