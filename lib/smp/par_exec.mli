(** Multithreaded execution of compiled plans.

    Two backends mirroring the paper's two generated-code variants:
    - {!execute} — "pthreads" style: one job dispatched to a persistent
      {!Pool}, stages separated by a low-latency spin {!Barrier};
    - {!execute_fork_join} — "OpenMP" style: domains are spawned per call
      and joined at every parallel stage (thread startup on the critical
      path, as in OpenMP without pooling).

    {!execute_safe} wraps {!execute} in a supervisor: any recoverable
    pool failure (worker death, barrier timeout, aggregated worker
    exceptions) is retried once on a healed pool, and a second failure
    degrades to a correct sequential execution of the same plan.

    Iterations of a parallel pass are assigned to workers according to
    [schedule]: [Block] is the paper's schedule (contiguous chunks, rule
    (7)/(9), false-sharing free); [Cyclic c] hands out chunks of [c]
    iterations round-robin (FFTW-style block-cyclic — the false-sharing
    baseline).

    Both executors elide the inter-pass barrier where a static analysis
    proves the neighbouring passes partition-compatible under the Block
    schedule ({!elision_mask}; legality conditions in DESIGN.md,
    "Barrier elision").  The pooled executor skips the {!Barrier.wait};
    the fork-join executor merges the passes into one spawn/join region. *)

type schedule = Block | Cyclic of int

val worker_range :
  schedule -> count:int -> workers:int -> int -> (int * int) list
(** [worker_range sched ~count ~workers w] is the list of [lo, hi) iteration
    ranges executed by worker [w]; the ranges of all workers partition
    [0, count).  Exposed for the machine simulator, which replays the exact
    same schedule. *)

val elision_mask :
  ?schedule:schedule -> workers:int -> Spiral_codegen.Plan.t -> bool array
(** [elision_mask ~workers plan] has one entry per pass boundary;
    [mask.(k)] is true when the barrier between passes [k] and [k+1] is
    provably unnecessary: both passes are parallel, under the Block
    schedule every worker's pass-[k+1] gathers land in its own pass-[k]
    scatters, writes into an aliased ping-pong buffer touch no other
    worker's pending reads, and the previous boundary was not itself
    elided (worker skew stays bounded by one pass).  [Cyclic] schedules
    get an empty mask (no elision).  Results are cached on the plan per
    worker count. *)

val execute :
  Pool.t ->
  ?schedule:schedule ->
  ?elide:bool ->
  ?timeout:float ->
  Spiral_codegen.Plan.t ->
  Spiral_util.Cvec.t ->
  Spiral_util.Cvec.t ->
  unit
(** Pooled execution with spin barriers between passes.  Sequential passes
    (no [par] annotation) run on worker 0 while others wait.  [elide]
    (default [true]) skips the barriers licensed by {!elision_mask},
    counting them into {!Spiral_util.Counters} under
    ["par_exec.barrier_elided"].  [timeout] bounds every inter-pass
    barrier wait (default {!Barrier.default_timeout}); each pass boundary
    declares the fault-injection site ["par_exec.pass"]
    ({!Spiral_util.Fault}).
    @raise Pool.Worker_errors, Pool.Deadlock on worker failure. *)

val execute_safe :
  Pool.t ->
  ?schedule:schedule ->
  ?elide:bool ->
  ?timeout:float ->
  Spiral_codegen.Plan.t ->
  Spiral_util.Cvec.t ->
  Spiral_util.Cvec.t ->
  unit
(** Supervised {!execute}: on a recoverable failure, heals the pool
    ({!Pool.heal}) and retries once; on a second failure, heals again and
    falls back to sequential execution of the same plan, which always
    produces the correct transform.  Degradations are recorded in
    {!Spiral_util.Counters} under ["par_exec.retry"] and
    ["par_exec.sequential_fallback"].  Never hangs: all waits are bounded
    by the pool and barrier timeouts. *)

val execute_fork_join :
  p:int ->
  ?schedule:schedule ->
  ?elide:bool ->
  Spiral_codegen.Plan.t ->
  Spiral_util.Cvec.t ->
  Spiral_util.Cvec.t ->
  unit
(** Spawns [p - 1] fresh domains per parallel region (joined before
    returning).  [elide] (default [true]) lets consecutive parallel
    passes whose boundary {!elision_mask} licenses share one spawn/join
    region. *)
