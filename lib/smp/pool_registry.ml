open Spiral_util

type entry = { pool : Pool.t; mutable refs : int }

(* worker count -> live pool.  Pools with zero references stay in the
   table (workers park on the eventcount, so an idle pool costs no CPU)
   and are handed back to the next acquirer — the whole point of the
   registry is that successive plans reuse domains instead of paying
   spawn latency per plan. *)
let table : (int, entry) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let acquire ?timeout p =
  if p < 1 then invalid_arg "Pool_registry.acquire: p >= 1";
  with_lock (fun () ->
      match Hashtbl.find_opt table p with
      | Some e ->
          e.refs <- e.refs + 1;
          Counters.incr "pool_registry.reuse";
          Option.iter (Pool.set_timeout e.pool) timeout;
          e.pool
      | None ->
          let pool = Pool.create ?timeout p in
          Hashtbl.replace table p { pool; refs = 1 };
          Counters.incr "pool_registry.create";
          pool)

let release pool =
  with_lock (fun () ->
      match Hashtbl.find_opt table (Pool.size pool) with
      | Some e when e.pool == pool ->
          if e.refs > 0 then e.refs <- e.refs - 1
      | Some _ | None -> ())

let stats () =
  with_lock (fun () ->
      Hashtbl.fold (fun p e acc -> (p, e.refs) :: acc) table []
      |> List.sort compare)

let clear () =
  with_lock (fun () ->
      let idle =
        Hashtbl.fold
          (fun p e acc -> if e.refs = 0 then (p, e) :: acc else acc)
          table []
      in
      List.iter
        (fun (p, e) ->
          Hashtbl.remove table p;
          Pool.shutdown e.pool)
        idle)
