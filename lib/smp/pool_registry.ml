open Spiral_util

type entry = { pool : Pool.t; mutable refs : int }

(* worker count -> live pool.  Pools with zero references stay in the
   table (workers park on the eventcount, so an idle pool costs no CPU)
   and are handed back to the next acquirer — the whole point of the
   registry is that successive plans reuse domains instead of paying
   spawn latency per plan.

   Concurrency discipline (all of it under [lock]):
   - [acquire] bumps [refs] before the pool leaves the critical section,
     so a pool handed out always has [refs > 0] when any concurrent
     [clear] inspects it — [clear] only ever shuts down entries whose
     refcount is zero {e inside} the same critical section, which makes
     acquire-while-clearing safe: either the acquirer got the entry
     first (refs > 0, clear skips it) or clear removed it first (the
     acquirer misses the table and creates a fresh pool).
   - [release] never drops below zero and never shuts anything down, so
     a double release cannot free a pool another plan still uses.
   - [acquire] revalidates the cached pool: a pool somebody shut down
     behind the registry's back (or that is mid-heal) is replaced with a
     fresh one instead of being handed out stopped — handing out a
     stopped pool would make every subsequent [run] raise. *)
let table : (int, entry) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let acquire ?timeout p =
  if p < 1 then invalid_arg "Pool_registry.acquire: p >= 1";
  with_lock (fun () ->
      let fresh () =
        let pool = Pool.create ?timeout p in
        Hashtbl.replace table p { pool; refs = 1 };
        Counters.incr "pool_registry.create";
        pool
      in
      match Hashtbl.find_opt table p with
      | Some e when not (Pool.stopped e.pool) ->
          e.refs <- e.refs + 1;
          Counters.incr "pool_registry.reuse";
          Option.iter (Pool.set_timeout e.pool) timeout;
          e.pool
      | Some _ ->
          (* stale entry: the pool was shut down externally; never hand
             out a stopped pool *)
          Counters.incr "pool_registry.replaced";
          fresh ()
      | None -> fresh ())

let release pool =
  let idle =
    with_lock (fun () ->
        match Hashtbl.find_opt table (Pool.size pool) with
        | Some e when e.pool == pool ->
            if e.refs > 0 then e.refs <- e.refs - 1;
            e.refs = 0
        | Some _ | None -> false)
  in
  (* Last reference gone: nobody is left to evict a resident region, so
     retire it here (outside the lock — region_end waits for the workers
     to check back in) and leave the cached pool truly idle. *)
  if idle then Option.iter Pool.region_end (Pool.resident pool)

let stats () =
  with_lock (fun () ->
      Hashtbl.fold (fun p e acc -> (p, e.refs) :: acc) table []
      |> List.sort compare)

let heal_sick () =
  (* Collect under the lock, heal outside it: Pool.heal joins and
     respawns domains, which can take milliseconds — holding the
     registry lock that long would stall concurrent acquires.  A pool
     that got busy between the check and the heal makes heal raise
     Invalid_argument; skip it, its own supervisor will deal with it. *)
  let sick =
    with_lock (fun () ->
        Hashtbl.fold
          (fun _ e acc ->
            if (not (Pool.stopped e.pool)) && not (Pool.healthy e.pool) then
              e.pool :: acc
            else acc)
          table [])
  in
  List.fold_left
    (fun n pool ->
      (* a sick pool occupied by a resident region would make heal raise
         (the region holds the busy flag); evict the region first — its
         owner re-establishes on a later execute, after the rebuild *)
      (match Pool.resident pool with
      | Some r ->
          Pool.region_end r;
          Counters.incr "pool.region_evict"
      | None -> ());
      match Pool.heal pool with
      | () -> n + 1
      | exception Invalid_argument _ -> n)
    0 sick

let clear () =
  with_lock (fun () ->
      let idle =
        Hashtbl.fold
          (fun p e acc -> if e.refs = 0 then (p, e) :: acc else acc)
          table []
      in
      List.iter
        (fun (p, e) ->
          Hashtbl.remove table p;
          Pool.shutdown e.pool)
        idle)
