open Spiral_util

exception Worker_errors of exn list

exception Deadlock of string

let () =
  Printexc.register_printer (function
    | Worker_errors errs ->
        Some
          (Printf.sprintf "Pool.Worker_errors [%s]"
             (String.concat "; " (List.map Printexc.to_string errs)))
    | Deadlock msg -> Some ("Pool.Deadlock: " ^ msg)
    | _ -> None)

(* Per-worker supervision state for workers 1 .. p-1 (worker 0 is the
   caller).  [finished] is the per-job completion flag; [alive] goes
   false when the worker's domain terminates for any reason, which is
   how the supervisor distinguishes a dead worker (will never finish)
   from a slow one. *)
type worker_state = { finished : bool Atomic.t; alive : bool Atomic.t }

(* Internal marker: a resident worker signalling that its domain must
   die (injected domain death inside a region).  The worker loop
   re-raises the payload so the usual death path (liveness flag, joiner
   wake) runs, instead of recording it as an ordinary job error. *)
exception Region_poison of exn

type t = {
  p : int;
  mutable job : int -> unit;
      (* Written by [run] strictly before the [gen] increment that
         publishes it; workers read it only after observing the new
         generation, so the plain field is never accessed concurrently. *)
  stop : bool Atomic.t;
  gen : int Atomic.t;  (* job generation; incremented to dispatch *)
  workers : worker_state array;
  mutable errors : exn list;
  err_mutex : Mutex.t;
  mutable domains : unit Domain.t array;
  mutable busy : bool;
  mutable poisoned : bool;
  mutable timeout : float;
  mutable rebuilds : int;
  spin_limit : int;
  dispatch_ec : Spinwait.eventcount;  (* idle workers park here *)
  join_ec : Spinwait.eventcount;  (* the joining caller parks here *)
  remaining : int Atomic.t;
      (* workers yet to finish the current job; the worker that brings it
         to zero wakes the joiner, so intermediate finishes never cause a
         spurious context switch of the caller *)
  mutable resident : region option;
      (* the parallel region currently pinning this pool's workers, if
         any.  Written only by the dispatching thread (the same
         single-dispatcher discipline [busy] relies on); read by dying
         workers to wake the region joiner. *)
}

(* A cross-call resident parallel region: one long-running pool job that
   occupies every worker, inside which per-call work is dispatched by a
   single CAS on [rseq] — no pool-level generation bump, no error-list
   reset, no completion-flag sweep.  Workers spin-then-park on the
   region's own eventcount between calls and decay back to the pool's
   idle park (one CAS to the [region_retired] sentinel) after [ridle]
   seconds without work, so a pinned-but-forgotten plan never burns a
   core. *)
and region = {
  rpool : t;
  rseq : int Atomic.t;
      (* current call sequence, or [region_retired] once the region is
         over (idle decay by a worker, or retirement by the dispatcher).
         Both transitions are CASes from the current sequence, so a
         decay racing a dispatch linearizes: exactly one wins. *)
  mutable rjob : int -> unit;
      (* written by [region_run] strictly before its [rseq] CAS; workers
         read it only after observing the new sequence *)
  rremaining : int Atomic.t;
  rdispatch_ec : Spinwait.eventcount;  (* idle resident workers *)
  rjoin_ec : Spinwait.eventcount;  (* the per-call joining caller *)
  rspin : int;  (* worker spin budget before parking between calls *)
  ridle : float;  (* seconds of idle before decay; infinity pins forever *)
  mutable rbusy : bool;  (* re-entrancy guard for [region_run] *)
  mutable rended : bool;
      (* dispatcher-side retirement flag: distinguishes an eviction/end
         (dispatcher sealed the region) from a worker's idle decay *)
}

let region_retired = min_int

let record t e =
  Mutex.lock t.err_mutex;
  t.errors <- e :: t.errors;
  Mutex.unlock t.err_mutex

let worker_loop t w ~seen0 =
  let st = t.workers.(w - 1) in
  let seen = ref seen0 in
  let running = ref true in
  (try
     while !running do
       (* Wait for a new job generation (or shutdown): spin briefly, then
          park on the pool's dispatch eventcount.  Idle workers use an
          infinite timeout — they are legitimately parked, not
          deadlocked — and are woken by the dispatch or shutdown
          [wake_all]. *)
       Trace.begin_span w Trace.cat_park 0;
       (match
          Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.dispatch_ec
            ~timeout:infinity
            (fun () -> Atomic.get t.gen <> !seen || Atomic.get t.stop)
        with
       | Spinwait.Ready -> ()
       | Spinwait.Aborted | Spinwait.TimedOut _ -> ());
       Trace.end_span w Trace.cat_park 0;
       if Atomic.get t.gen = !seen then running := false (* stop, no job *)
       else begin
         seen := Atomic.get t.gen;
         let job = t.job in
         Trace.begin_span w Trace.cat_job !seen;
         (* Simulated domain death: an injection here escapes the job
            try-block below, so the whole worker loop unwinds.  Inside a
            resident region the per-call fault check wraps itself in
            [Region_poison] to reach the same death path through the
            handler below. *)
         Fault.check "pool.worker";
         (try job w with
         | Region_poison e -> raise e
         | e -> record t e);
         Trace.end_span w Trace.cat_job !seen;
         Atomic.set st.finished true;
         (* Only the last finisher wakes the joiner; if this protocol is
            ever wrong the joiner still makes progress from the watchdog
            ticks of its timed park. *)
         if Atomic.fetch_and_add t.remaining (-1) = 1 then
           Spinwait.wake_all ~ec:t.join_ec ()
       end
     done
   with e ->
     (* The domain is dying without completing its job; leave the cause
        in the error list for the supervisor's Deadlock report. *)
     record t e);
  Atomic.set st.alive false;
  (* Wake a parked joiner so it notices the death now, not at a
     watchdog tick — including a joiner parked on a resident region's
     own eventcount (benign race on the mutable field: a missed wake is
     recovered by the joiner's watchdog-ticked abort check). *)
  Spinwait.wake_all ~ec:t.join_ec ();
  match t.resident with
  | Some r -> Spinwait.wake_all ~ec:r.rjoin_ec ()
  | None -> ()

let default_timeout = ref 30.0

let spawn_workers t =
  Array.iter
    (fun st ->
      Atomic.set st.finished false;
      Atomic.set st.alive true)
    t.workers;
  (* Capture the generation before spawning so a job dispatched right
     after this function returns is never mistaken for already-seen. *)
  let seen0 = Atomic.get t.gen in
  t.domains <-
    Array.init (t.p - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) ~seen0))

let create ?timeout ?spin_limit p =
  if p < 1 then invalid_arg "Pool.create: p >= 1";
  let timeout = match timeout with Some s -> s | None -> !default_timeout in
  if not (timeout > 0.0) then invalid_arg "Pool.create: timeout > 0";
  let spin_limit =
    match spin_limit with
    | Some s -> max 0 s
    | None -> Spinwait.spin_limit_for ~parties:p
  in
  let t =
    {
      p;
      job = ignore;
      stop = Atomic.make false;
      gen = Atomic.make 0;
      workers =
        Array.init (p - 1) (fun _ ->
            { finished = Atomic.make false; alive = Atomic.make true });
      errors = [];
      err_mutex = Mutex.create ();
      domains = [||];
      busy = false;
      poisoned = false;
      timeout;
      rebuilds = 0;
      spin_limit;
      dispatch_ec = Spinwait.eventcount ();
      join_ec = Spinwait.eventcount ();
      remaining = Atomic.make 0;
      resident = None;
    }
  in
  spawn_workers t;
  t

let size t = t.p

let timeout t = t.timeout

let set_timeout t s =
  if not (s > 0.0) then invalid_arg "Pool.set_timeout: timeout > 0";
  t.timeout <- s

let rebuilds t = t.rebuilds

let healthy t =
  (not (Atomic.get t.stop))
  && (not t.poisoned)
  && Array.for_all (fun st -> Atomic.get st.alive) t.workers

let stopped t = Atomic.get t.stop

let missing_report t =
  let dead = ref [] and stuck = ref [] in
  Array.iteri
    (fun i st ->
      if not (Atomic.get st.finished) then
        if Atomic.get st.alive then stuck := (i + 1) :: !stuck
        else dead := (i + 1) :: !dead)
    t.workers;
  let ids l = String.concat "," (List.rev_map string_of_int l) in
  Printf.sprintf "dead workers [%s], unresponsive workers [%s]" (ids !dead)
    (ids !stuck)

(* ---- cross-call resident regions ---- *)

let resident t = t.resident

let region_live r = (not r.rended) && Atomic.get r.rseq <> region_retired

let region_ended r = r.rended

(* The long-running pool job each resident worker executes: wait for the
   next call sequence (or decay after [ridle] seconds without one), run
   the call, check in on the region's remaining counter.  Exits on the
   [region_retired] sentinel — set by a decaying worker or by the
   dispatcher's [region_end] — after which the worker is back in the
   pool's ordinary idle park. *)
let region_worker r w ~seen0 =
  let t = r.rpool in
  let seen = ref seen0 in
  let running = ref true in
  while !running do
    Trace.begin_span w Trace.cat_park 0;
    let outcome =
      Spinwait.wait ~spin_limit:r.rspin ~ec:r.rdispatch_ec ~timeout:r.ridle
        (fun () -> Atomic.get r.rseq <> !seen)
    in
    Trace.end_span w Trace.cat_park 0;
    match outcome with
    | Spinwait.Ready ->
        let s = Atomic.get r.rseq in
        if s = region_retired then running := false
        else begin
          seen := s;
          let job = r.rjob in
          Trace.begin_span w Trace.cat_job s;
          (* Simulated domain death inside the region: route through
             [Region_poison] so the worker loop's death path runs (a
             plain raise here would be recorded as a job error and leave
             the domain alive). *)
          (match Fault.check "pool.worker" with
          | () -> ()
          | exception e -> raise (Region_poison e));
          (try job w with e -> record t e);
          Trace.end_span w Trace.cat_job s;
          if Atomic.fetch_and_add r.rremaining (-1) = 1 then
            Spinwait.wake_all ~ec:r.rjoin_ec ()
        end
    | Spinwait.TimedOut _ ->
        (* Idle decay: CAS the current sequence to the sentinel.  Losing
           the race means either a fresh dispatch (loop and run it) or a
           peer's decay (loop and exit on the sentinel). *)
        if Atomic.compare_and_set r.rseq !seen region_retired then begin
          Counters.incr "pool.region_decay";
          Spinwait.wake_all ~ec:r.rdispatch_ec ();
          running := false
        end
    | Spinwait.Aborted -> ()
  done

let region_begin ?spin_limit ?(idle = infinity) t =
  if Atomic.get t.stop then
    invalid_arg "Pool.region_begin: pool is shut down";
  if t.busy then
    invalid_arg "Pool.region_begin: pool is busy (another region or run?)";
  if t.poisoned then
    invalid_arg
      "Pool.region_begin: pool is poisoned after a deadlock; Pool.heal it";
  if not (idle > 0.0) then invalid_arg "Pool.region_begin: idle > 0";
  t.busy <- true;  (* held for the region's lifetime, until [region_end] *)
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  Array.iter (fun st -> Atomic.set st.finished false) t.workers;
  Atomic.set t.remaining (t.p - 1);
  (* Call sequences live in a range disjoint from pool generations (the
     hosting generation shifted up), so trace dispatch marks of region
     calls never collide with pool-level dispatches in a report. *)
  let seen0 = (Atomic.get t.gen + 1) lsl 20 in
  let r =
    {
      rpool = t;
      rseq = Atomic.make seen0;
      rjob = ignore;
      rremaining = Atomic.make 0;
      rdispatch_ec = Spinwait.eventcount ();
      rjoin_ec = Spinwait.eventcount ();
      rspin =
        (match spin_limit with Some s -> max 0 s | None -> t.spin_limit);
      ridle = idle;
      rbusy = false;
      rended = false;
    }
  in
  t.job <- (fun w -> region_worker r w ~seen0);
  let g = 1 + Atomic.fetch_and_add t.gen 1 in
  Trace.mark 0 Trace.cat_dispatch g;
  Spinwait.wake_all ~ec:t.dispatch_ec ();
  t.resident <- Some r;
  Counters.incr "pool.region_enter";
  r

let region_run r f =
  let t = r.rpool in
  if r.rbusy then
    invalid_arg
      "Pool.region_run: region is busy (re-entrant run from worker 0?)";
  let s = Atomic.get r.rseq in
  if r.rended || s = region_retired then false
  else begin
    r.rbusy <- true;
    Fun.protect ~finally:(fun () -> r.rbusy <- false) @@ fun () ->
    (* [errors] is only ever non-empty here if the previous call raised
       Worker_errors; the unsynchronized emptiness probe is ordered by
       that call's join (workers record strictly before their remaining
       decrement). *)
    if t.errors != [] then begin
      Mutex.lock t.err_mutex;
      t.errors <- [];
      Mutex.unlock t.err_mutex
    end;
    Atomic.set r.rremaining (t.p - 1);
    r.rjob <- f;
    (* Dispatch: one CAS.  Failure means a worker decayed the region
       between calls — nothing ran, the caller re-establishes. *)
    if not (Atomic.compare_and_set r.rseq s (s + 1)) then false
    else begin
      let s' = s + 1 in
      Trace.mark 0 Trace.cat_dispatch s';
      Spinwait.wake_all ~ec:r.rdispatch_ec ();
      (* The caller is worker 0. *)
      Trace.begin_span 0 Trace.cat_job s';
      (try f 0 with e -> record t e);
      Trace.end_span 0 Trace.cat_job s';
      let all_done () = Atomic.get r.rremaining <= 0 in
      let some_worker_dead () =
        Array.exists (fun st -> not (Atomic.get st.alive)) t.workers
      in
      Trace.begin_span 0 Trace.cat_join s';
      let gave_up =
        match
          Spinwait.wait ~spin_limit:t.spin_limit ~ec:r.rjoin_ec
            ~timeout:t.timeout ~abort:some_worker_dead all_done
        with
        | Spinwait.Ready -> false
        | Spinwait.Aborted | Spinwait.TimedOut _ -> true
      in
      Trace.end_span 0 Trace.cat_join s';
      if gave_up then begin
        t.poisoned <- true;
        Counters.incr "pool.deadlock";
        Mutex.lock t.err_mutex;
        let nerrs = List.length t.errors in
        Mutex.unlock t.err_mutex;
        raise
          (Deadlock
             (Printf.sprintf
                "resident region gave up after %.3gs: %s (%d error(s) \
                 recorded)"
                t.timeout (missing_report t) nerrs))
      end;
      Mutex.lock t.err_mutex;
      let errs = List.rev t.errors in
      Mutex.unlock t.err_mutex;
      (match errs with [] -> () | errs -> raise (Worker_errors errs));
      true
    end
  end

let region_seal r =
  let rec seal () =
    let s = Atomic.get r.rseq in
    if s <> region_retired then
      if not (Atomic.compare_and_set r.rseq s region_retired) then seal ()
  in
  seal ();
  Spinwait.wake_all ~ec:r.rdispatch_ec ()

let region_end r =
  let t = r.rpool in
  if not r.rended then begin
    r.rended <- true;
    (* Seal: no further dispatch can win the CAS; parked workers wake,
       see the sentinel, and fall back to the pool's idle park. *)
    region_seal r;
    (* Hosting-job join: wait (bounded) for every live worker to leave
       the region loop. *)
    let all_done () = Atomic.get t.remaining <= 0 in
    let some_worker_dead () =
      Array.exists
        (fun st ->
          (not (Atomic.get st.finished)) && not (Atomic.get st.alive))
        t.workers
    in
    (match
       Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.join_ec
         ~timeout:t.timeout ~abort:some_worker_dead all_done
     with
    | Spinwait.Ready -> ()
    | Spinwait.Aborted | Spinwait.TimedOut _ ->
        (* a worker died or is wedged inside the region: force a heal
           before the pool's next dispatch *)
        t.poisoned <- true;
        Counters.incr "pool.deadlock");
    (match t.resident with
    | Some r' when r' == r -> t.resident <- None
    | _ -> ());
    t.busy <- false
  end

let run t f =
  if Atomic.get t.stop then invalid_arg "Pool.run: pool is shut down";
  if t.busy then
    invalid_arg "Pool.run: pool is busy (re-entrant run from a worker?)";
  if t.poisoned then
    invalid_arg "Pool.run: pool is poisoned after a deadlock; Pool.heal it";
  t.busy <- true;
  Fun.protect ~finally:(fun () -> t.busy <- false) @@ fun () ->
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  Array.iter (fun st -> Atomic.set st.finished false) t.workers;
  Atomic.set t.remaining (t.p - 1);
  (* Dispatch: publish the job, bump the generation, wake parked
     workers.  The atomic increment orders the [job] write before any
     worker's read of the new generation. *)
  t.job <- f;
  let g = 1 + Atomic.fetch_and_add t.gen 1 in
  Trace.mark 0 Trace.cat_dispatch g;
  Spinwait.wake_all ~ec:t.dispatch_ec ();
  (* The caller is worker 0. *)
  Trace.begin_span 0 Trace.cat_job g;
  (try f 0 with e -> record t e);
  Trace.end_span 0 Trace.cat_job g;
  (* Join: same spin-then-park rendezvous as the workers.  A worker
     whose domain died can never finish, so abort on that immediately;
     otherwise give up after the pool timeout instead of waiting
     forever. *)
  let all_done () =
    Array.for_all (fun st -> Atomic.get st.finished) t.workers
  in
  let some_worker_dead () =
    Array.exists
      (fun st -> (not (Atomic.get st.finished)) && not (Atomic.get st.alive))
      t.workers
  in
  Trace.begin_span 0 Trace.cat_join g;
  let gave_up =
    match
      Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.join_ec ~timeout:t.timeout
        ~abort:some_worker_dead all_done
    with
    | Spinwait.Ready -> false
    | Spinwait.Aborted | Spinwait.TimedOut _ -> true
  in
  Trace.end_span 0 Trace.cat_join g;
  if gave_up then begin
    (* Completion flags are now meaningless (a straggler may still set
       its flag during a later job): poison the pool until healed. *)
    t.poisoned <- true;
    Counters.incr "pool.deadlock";
    Mutex.lock t.err_mutex;
    let nerrs = List.length t.errors in
    Mutex.unlock t.err_mutex;
    raise
      (Deadlock
         (Printf.sprintf "gave up after %.3gs: %s (%d error(s) recorded)"
            t.timeout (missing_report t) nerrs))
  end;
  Mutex.lock t.err_mutex;
  let errs = List.rev t.errors in
  Mutex.unlock t.err_mutex;
  match errs with [] -> () | errs -> raise (Worker_errors errs)

let join_all t =
  Array.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
  t.domains <- [||]

let heal t =
  if Atomic.get t.stop then invalid_arg "Pool.heal: pool is shut down";
  if t.busy then invalid_arg "Pool.heal: pool is busy";
  (* Ask survivors to exit, join everyone (the dead join immediately;
     stragglers unwind once their bounded barrier/pool waits fire), and
     restart from a clean slate. *)
  Atomic.set t.stop true;
  Spinwait.wake_all ~ec:t.dispatch_ec ();
  join_all t;
  Atomic.set t.stop false;
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  t.poisoned <- false;
  t.rebuilds <- t.rebuilds + 1;
  Counters.incr "pool.rebuild";
  spawn_workers t

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    (* Workers pinned in a resident region park on the region's
       eventcount, not the pool's: seal the region first so they unwind
       into the stopping worker loop instead of deadlocking the join. *)
    (match t.resident with Some r -> region_seal r | None -> ());
    Spinwait.wake_all ~ec:t.dispatch_ec ();
    join_all t
  end

let with_pool ?timeout ?spin_limit p f =
  let t = create ?timeout ?spin_limit p in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
