open Spiral_util

exception Worker_errors of exn list

exception Deadlock of string

let () =
  Printexc.register_printer (function
    | Worker_errors errs ->
        Some
          (Printf.sprintf "Pool.Worker_errors [%s]"
             (String.concat "; " (List.map Printexc.to_string errs)))
    | Deadlock msg -> Some ("Pool.Deadlock: " ^ msg)
    | _ -> None)

(* Per-worker supervision state for workers 1 .. p-1 (worker 0 is the
   caller).  [finished] is the per-job completion flag; [alive] goes
   false when the worker's domain terminates for any reason, which is
   how the supervisor distinguishes a dead worker (will never finish)
   from a slow one. *)
type worker_state = { finished : bool Atomic.t; alive : bool Atomic.t }

type t = {
  p : int;
  mutable job : int -> unit;
  mutable stop : bool;
  gen : int Atomic.t;  (* job generation; incremented to dispatch *)
  workers : worker_state array;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable errors : exn list;
  err_mutex : Mutex.t;
  mutable domains : unit Domain.t array;
  mutable busy : bool;
  mutable poisoned : bool;
  mutable timeout : float;
  mutable rebuilds : int;
}

let record t e =
  Mutex.lock t.err_mutex;
  t.errors <- e :: t.errors;
  Mutex.unlock t.err_mutex

let worker_loop t w ~seen0 =
  let st = t.workers.(w - 1) in
  let seen = ref seen0 in
  let running = ref true in
  (try
     while !running do
       (* Wait for a new job generation (or shutdown). *)
       Mutex.lock t.mutex;
       while Atomic.get t.gen = !seen && not t.stop do
         Condition.wait t.cond t.mutex
       done;
       let stop = t.stop && Atomic.get t.gen = !seen in
       let job = t.job in
       Mutex.unlock t.mutex;
       if stop then running := false
       else begin
         seen := Atomic.get t.gen;
         (* Simulated domain death: an injection here escapes the job
            try-block below, so the whole worker loop unwinds. *)
         Fault.check "pool.worker";
         (try job w
          with e -> record t e);
         Atomic.set st.finished true
       end
     done
   with e ->
     (* The domain is dying without completing its job; leave the cause
        in the error list for the supervisor's Deadlock report. *)
     record t e);
  Atomic.set st.alive false

let default_timeout = ref 30.0

let spawn_workers t =
  Array.iter
    (fun st ->
      Atomic.set st.finished false;
      Atomic.set st.alive true)
    t.workers;
  (* Capture the generation before spawning so a job dispatched right
     after this function returns is never mistaken for already-seen. *)
  let seen0 = Atomic.get t.gen in
  t.domains <-
    Array.init (t.p - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) ~seen0))

let create ?timeout p =
  if p < 1 then invalid_arg "Pool.create: p >= 1";
  let timeout = match timeout with Some s -> s | None -> !default_timeout in
  if not (timeout > 0.0) then invalid_arg "Pool.create: timeout > 0";
  let t =
    {
      p;
      job = ignore;
      stop = false;
      gen = Atomic.make 0;
      workers =
        Array.init (p - 1) (fun _ ->
            { finished = Atomic.make false; alive = Atomic.make true });
      mutex = Mutex.create ();
      cond = Condition.create ();
      errors = [];
      err_mutex = Mutex.create ();
      domains = [||];
      busy = false;
      poisoned = false;
      timeout;
      rebuilds = 0;
    }
  in
  spawn_workers t;
  t

let size t = t.p

let timeout t = t.timeout

let set_timeout t s =
  if not (s > 0.0) then invalid_arg "Pool.set_timeout: timeout > 0";
  t.timeout <- s

let rebuilds t = t.rebuilds

let healthy t =
  (not t.stop) && (not t.poisoned)
  && Array.for_all (fun st -> Atomic.get st.alive) t.workers

let missing_report t =
  let dead = ref [] and stuck = ref [] in
  Array.iteri
    (fun i st ->
      if not (Atomic.get st.finished) then
        if Atomic.get st.alive then stuck := (i + 1) :: !stuck
        else dead := (i + 1) :: !dead)
    t.workers;
  let ids l = String.concat "," (List.rev_map string_of_int l) in
  Printf.sprintf "dead workers [%s], unresponsive workers [%s]" (ids !dead)
    (ids !stuck)

let run t f =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  if t.busy then
    invalid_arg "Pool.run: pool is busy (re-entrant run from a worker?)";
  if t.poisoned then
    invalid_arg "Pool.run: pool is poisoned after a deadlock; Pool.heal it";
  t.busy <- true;
  Fun.protect ~finally:(fun () -> t.busy <- false) @@ fun () ->
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  Array.iter (fun st -> Atomic.set st.finished false) t.workers;
  Mutex.lock t.mutex;
  t.job <- f;
  Atomic.incr t.gen;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  (* The caller is worker 0. *)
  (try f 0
   with e -> record t e);
  (* Supervise the others: bounded spin, then yield.  A worker whose
     domain died can never finish, so fail fast on it; otherwise give up
     after the pool timeout instead of spinning forever. *)
  let all_done () =
    Array.for_all (fun st -> Atomic.get st.finished) t.workers
  in
  let some_worker_dead () =
    Array.exists
      (fun st -> (not (Atomic.get st.finished)) && not (Atomic.get st.alive))
      t.workers
  in
  let spins = ref 0 in
  let deadline = ref neg_infinity in
  let gave_up = ref false in
  while (not (all_done ())) && not !gave_up do
    if some_worker_dead () then gave_up := true
    else begin
      incr spins;
      if !spins < Barrier.spin_limit then Domain.cpu_relax ()
      else begin
        spins := 0;
        let now = Unix.gettimeofday () in
        if !deadline = neg_infinity then deadline := now +. t.timeout
        else if now > !deadline then gave_up := true
        else Unix.sleepf 50e-6
      end
    end
  done;
  if !gave_up then begin
    (* Completion flags are now meaningless (a straggler may still set
       its flag during a later job): poison the pool until healed. *)
    t.poisoned <- true;
    Counters.incr "pool.deadlock";
    Mutex.lock t.err_mutex;
    let nerrs = List.length t.errors in
    Mutex.unlock t.err_mutex;
    raise
      (Deadlock
         (Printf.sprintf "gave up after %.3gs: %s (%d error(s) recorded)"
            t.timeout (missing_report t) nerrs))
  end;
  Mutex.lock t.err_mutex;
  let errs = List.rev t.errors in
  Mutex.unlock t.err_mutex;
  match errs with [] -> () | errs -> raise (Worker_errors errs)

let join_all t =
  Array.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
  t.domains <- [||]

let heal t =
  if t.stop then invalid_arg "Pool.heal: pool is shut down";
  if t.busy then invalid_arg "Pool.heal: pool is busy";
  (* Ask survivors to exit, join everyone (the dead join immediately;
     stragglers unwind once their bounded barrier/pool waits fire), and
     restart from a clean slate. *)
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  join_all t;
  t.stop <- false;
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  t.poisoned <- false;
  t.rebuilds <- t.rebuilds + 1;
  Counters.incr "pool.rebuild";
  spawn_workers t

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    join_all t
  end

let with_pool ?timeout p f =
  let t = create ?timeout p in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
