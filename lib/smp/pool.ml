type t = {
  p : int;
  mutable job : int -> unit;
  mutable stop : bool;
  gen : int Atomic.t;  (* job generation; incremented to dispatch *)
  done_count : int Atomic.t;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable errors : exn list;
  err_mutex : Mutex.t;
  mutable domains : unit Domain.t array;
}

let worker_loop t w =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    (* Wait for a new job generation (or shutdown). *)
    Mutex.lock t.mutex;
    while Atomic.get t.gen = !seen && not t.stop do
      Condition.wait t.cond t.mutex
    done;
    let stop = t.stop && Atomic.get t.gen = !seen in
    let job = t.job in
    Mutex.unlock t.mutex;
    if stop then running := false
    else begin
      seen := Atomic.get t.gen;
      (try job w
       with e ->
         Mutex.lock t.err_mutex;
         t.errors <- e :: t.errors;
         Mutex.unlock t.err_mutex);
      Atomic.incr t.done_count
    end
  done

let create p =
  if p < 1 then invalid_arg "Pool.create: p >= 1";
  let t =
    {
      p;
      job = ignore;
      stop = false;
      gen = Atomic.make 0;
      done_count = Atomic.make 0;
      mutex = Mutex.create ();
      cond = Condition.create ();
      errors = [];
      err_mutex = Mutex.create ();
      domains = [||];
    }
  in
  t.domains <-
    Array.init (p - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.p

let run t f =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  t.errors <- [];
  Atomic.set t.done_count 0;
  Mutex.lock t.mutex;
  t.job <- f;
  Atomic.incr t.gen;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  (* The caller is worker 0. *)
  (try f 0
   with e ->
     Mutex.lock t.err_mutex;
     t.errors <- e :: t.errors;
     Mutex.unlock t.err_mutex);
  (* Wait for the others: bounded spin, then yield. *)
  let spins = ref 0 in
  while Atomic.get t.done_count < t.p - 1 do
    incr spins;
    if !spins < Barrier.spin_limit then Domain.cpu_relax ()
    else begin
      spins := 0;
      Unix.sleepf 50e-6
    end
  done;
  match t.errors with [] -> () | e :: _ -> raise e

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool p f =
  let t = create p in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
