open Spiral_util

exception Worker_errors of exn list

exception Deadlock of string

let () =
  Printexc.register_printer (function
    | Worker_errors errs ->
        Some
          (Printf.sprintf "Pool.Worker_errors [%s]"
             (String.concat "; " (List.map Printexc.to_string errs)))
    | Deadlock msg -> Some ("Pool.Deadlock: " ^ msg)
    | _ -> None)

(* Per-worker supervision state for workers 1 .. p-1 (worker 0 is the
   caller).  [finished] is the per-job completion flag; [alive] goes
   false when the worker's domain terminates for any reason, which is
   how the supervisor distinguishes a dead worker (will never finish)
   from a slow one. *)
type worker_state = { finished : bool Atomic.t; alive : bool Atomic.t }

type t = {
  p : int;
  mutable job : int -> unit;
      (* Written by [run] strictly before the [gen] increment that
         publishes it; workers read it only after observing the new
         generation, so the plain field is never accessed concurrently. *)
  stop : bool Atomic.t;
  gen : int Atomic.t;  (* job generation; incremented to dispatch *)
  workers : worker_state array;
  mutable errors : exn list;
  err_mutex : Mutex.t;
  mutable domains : unit Domain.t array;
  mutable busy : bool;
  mutable poisoned : bool;
  mutable timeout : float;
  mutable rebuilds : int;
  spin_limit : int;
  dispatch_ec : Spinwait.eventcount;  (* idle workers park here *)
  join_ec : Spinwait.eventcount;  (* the joining caller parks here *)
  remaining : int Atomic.t;
      (* workers yet to finish the current job; the worker that brings it
         to zero wakes the joiner, so intermediate finishes never cause a
         spurious context switch of the caller *)
}

let record t e =
  Mutex.lock t.err_mutex;
  t.errors <- e :: t.errors;
  Mutex.unlock t.err_mutex

let worker_loop t w ~seen0 =
  let st = t.workers.(w - 1) in
  let seen = ref seen0 in
  let running = ref true in
  (try
     while !running do
       (* Wait for a new job generation (or shutdown): spin briefly, then
          park on the pool's dispatch eventcount.  Idle workers use an
          infinite timeout — they are legitimately parked, not
          deadlocked — and are woken by the dispatch or shutdown
          [wake_all]. *)
       Trace.begin_span w Trace.cat_park 0;
       (match
          Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.dispatch_ec
            ~timeout:infinity
            (fun () -> Atomic.get t.gen <> !seen || Atomic.get t.stop)
        with
       | Spinwait.Ready -> ()
       | Spinwait.Aborted | Spinwait.TimedOut _ -> ());
       Trace.end_span w Trace.cat_park 0;
       if Atomic.get t.gen = !seen then running := false (* stop, no job *)
       else begin
         seen := Atomic.get t.gen;
         let job = t.job in
         Trace.begin_span w Trace.cat_job !seen;
         (* Simulated domain death: an injection here escapes the job
            try-block below, so the whole worker loop unwinds. *)
         Fault.check "pool.worker";
         (try job w with e -> record t e);
         Trace.end_span w Trace.cat_job !seen;
         Atomic.set st.finished true;
         (* Only the last finisher wakes the joiner; if this protocol is
            ever wrong the joiner still makes progress from the watchdog
            ticks of its timed park. *)
         if Atomic.fetch_and_add t.remaining (-1) = 1 then
           Spinwait.wake_all ~ec:t.join_ec ()
       end
     done
   with e ->
     (* The domain is dying without completing its job; leave the cause
        in the error list for the supervisor's Deadlock report. *)
     record t e);
  Atomic.set st.alive false;
  (* Wake a parked joiner so it notices the death now, not at a
     watchdog tick. *)
  Spinwait.wake_all ~ec:t.join_ec ()

let default_timeout = ref 30.0

let spawn_workers t =
  Array.iter
    (fun st ->
      Atomic.set st.finished false;
      Atomic.set st.alive true)
    t.workers;
  (* Capture the generation before spawning so a job dispatched right
     after this function returns is never mistaken for already-seen. *)
  let seen0 = Atomic.get t.gen in
  t.domains <-
    Array.init (t.p - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t (i + 1) ~seen0))

let create ?timeout ?spin_limit p =
  if p < 1 then invalid_arg "Pool.create: p >= 1";
  let timeout = match timeout with Some s -> s | None -> !default_timeout in
  if not (timeout > 0.0) then invalid_arg "Pool.create: timeout > 0";
  let spin_limit =
    match spin_limit with
    | Some s -> max 0 s
    | None -> Spinwait.spin_limit_for ~parties:p
  in
  let t =
    {
      p;
      job = ignore;
      stop = Atomic.make false;
      gen = Atomic.make 0;
      workers =
        Array.init (p - 1) (fun _ ->
            { finished = Atomic.make false; alive = Atomic.make true });
      errors = [];
      err_mutex = Mutex.create ();
      domains = [||];
      busy = false;
      poisoned = false;
      timeout;
      rebuilds = 0;
      spin_limit;
      dispatch_ec = Spinwait.eventcount ();
      join_ec = Spinwait.eventcount ();
      remaining = Atomic.make 0;
    }
  in
  spawn_workers t;
  t

let size t = t.p

let timeout t = t.timeout

let set_timeout t s =
  if not (s > 0.0) then invalid_arg "Pool.set_timeout: timeout > 0";
  t.timeout <- s

let rebuilds t = t.rebuilds

let healthy t =
  (not (Atomic.get t.stop))
  && (not t.poisoned)
  && Array.for_all (fun st -> Atomic.get st.alive) t.workers

let stopped t = Atomic.get t.stop

let missing_report t =
  let dead = ref [] and stuck = ref [] in
  Array.iteri
    (fun i st ->
      if not (Atomic.get st.finished) then
        if Atomic.get st.alive then stuck := (i + 1) :: !stuck
        else dead := (i + 1) :: !dead)
    t.workers;
  let ids l = String.concat "," (List.rev_map string_of_int l) in
  Printf.sprintf "dead workers [%s], unresponsive workers [%s]" (ids !dead)
    (ids !stuck)

let run t f =
  if Atomic.get t.stop then invalid_arg "Pool.run: pool is shut down";
  if t.busy then
    invalid_arg "Pool.run: pool is busy (re-entrant run from a worker?)";
  if t.poisoned then
    invalid_arg "Pool.run: pool is poisoned after a deadlock; Pool.heal it";
  t.busy <- true;
  Fun.protect ~finally:(fun () -> t.busy <- false) @@ fun () ->
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  Array.iter (fun st -> Atomic.set st.finished false) t.workers;
  Atomic.set t.remaining (t.p - 1);
  (* Dispatch: publish the job, bump the generation, wake parked
     workers.  The atomic increment orders the [job] write before any
     worker's read of the new generation. *)
  t.job <- f;
  let g = 1 + Atomic.fetch_and_add t.gen 1 in
  Trace.mark 0 Trace.cat_dispatch g;
  Spinwait.wake_all ~ec:t.dispatch_ec ();
  (* The caller is worker 0. *)
  Trace.begin_span 0 Trace.cat_job g;
  (try f 0 with e -> record t e);
  Trace.end_span 0 Trace.cat_job g;
  (* Join: same spin-then-park rendezvous as the workers.  A worker
     whose domain died can never finish, so abort on that immediately;
     otherwise give up after the pool timeout instead of waiting
     forever. *)
  let all_done () =
    Array.for_all (fun st -> Atomic.get st.finished) t.workers
  in
  let some_worker_dead () =
    Array.exists
      (fun st -> (not (Atomic.get st.finished)) && not (Atomic.get st.alive))
      t.workers
  in
  Trace.begin_span 0 Trace.cat_join g;
  let gave_up =
    match
      Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.join_ec ~timeout:t.timeout
        ~abort:some_worker_dead all_done
    with
    | Spinwait.Ready -> false
    | Spinwait.Aborted | Spinwait.TimedOut _ -> true
  in
  Trace.end_span 0 Trace.cat_join g;
  if gave_up then begin
    (* Completion flags are now meaningless (a straggler may still set
       its flag during a later job): poison the pool until healed. *)
    t.poisoned <- true;
    Counters.incr "pool.deadlock";
    Mutex.lock t.err_mutex;
    let nerrs = List.length t.errors in
    Mutex.unlock t.err_mutex;
    raise
      (Deadlock
         (Printf.sprintf "gave up after %.3gs: %s (%d error(s) recorded)"
            t.timeout (missing_report t) nerrs))
  end;
  Mutex.lock t.err_mutex;
  let errs = List.rev t.errors in
  Mutex.unlock t.err_mutex;
  match errs with [] -> () | errs -> raise (Worker_errors errs)

let join_all t =
  Array.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
  t.domains <- [||]

let heal t =
  if Atomic.get t.stop then invalid_arg "Pool.heal: pool is shut down";
  if t.busy then invalid_arg "Pool.heal: pool is busy";
  (* Ask survivors to exit, join everyone (the dead join immediately;
     stragglers unwind once their bounded barrier/pool waits fire), and
     restart from a clean slate. *)
  Atomic.set t.stop true;
  Spinwait.wake_all ~ec:t.dispatch_ec ();
  join_all t;
  Atomic.set t.stop false;
  Mutex.lock t.err_mutex;
  t.errors <- [];
  Mutex.unlock t.err_mutex;
  t.poisoned <- false;
  t.rebuilds <- t.rebuilds + 1;
  Counters.incr "pool.rebuild";
  spawn_workers t

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Spinwait.wake_all ~ec:t.dispatch_ec ();
    join_all t
  end

let with_pool ?timeout ?spin_limit p f =
  let t = create ?timeout ?spin_limit p in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
