open Spiral_util

type t = {
  p : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  timeout : float;
}

type ctx = { mutable my_sense : bool }

exception Timeout of { parties : int; arrived : int; waited : float }

let () =
  Printexc.register_printer (function
    | Timeout { parties; arrived; waited } ->
        Some
          (Printf.sprintf
             "Barrier.Timeout (%d of %d participants arrived after %.3gs)"
             arrived parties waited)
    | _ -> None)

let spin_limit = 10_000

let default_timeout = ref 30.0

let create ?timeout p =
  if p <= 0 then invalid_arg "Barrier.create: need at least one participant";
  let timeout = match timeout with Some s -> s | None -> !default_timeout in
  if not (timeout > 0.0) then invalid_arg "Barrier.create: timeout > 0";
  { p; count = Atomic.make 0; sense = Atomic.make false; timeout }

let parties t = t.p

let timeout t = t.timeout

let make_ctx _t = { my_sense = true }

let wait t ctx =
  Fault.check "barrier.wait";
  let s = ctx.my_sense in
  if Atomic.fetch_and_add t.count 1 = t.p - 1 then begin
    (* Last arrival: reset and release the others by flipping the sense. *)
    Atomic.set t.count 0;
    Atomic.set t.sense s
  end
  else begin
    let spins = ref 0 in
    let start = ref neg_infinity in
    while Atomic.get t.sense <> s do
      incr spins;
      if !spins < spin_limit then Domain.cpu_relax ()
      else begin
        (* Oversubscribed (more domains than cores): yield the timeslice.
           The clock only starts once spinning has failed, so the fast
           path stays free of syscalls. *)
        spins := 0;
        let now = Unix.gettimeofday () in
        if !start = neg_infinity then start := now
        else if now -. !start > t.timeout then begin
          Counters.incr "barrier.timeout";
          raise
            (Timeout
               {
                 parties = t.p;
                 arrived = Atomic.get t.count;
                 waited = now -. !start;
               })
        end;
        Unix.sleepf 50e-6
      end
    done
  end;
  ctx.my_sense <- not s
