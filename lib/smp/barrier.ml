open Spiral_util

type t = {
  p : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  w2 : int Atomic.t;
      (* two-party rendezvous state, used instead of [count]/[sense] when
         [p = 2]: a single word both participants fetch-and-add.  An even
         ticket is the episode's first arrival (it waits for the word to
         advance past its ticket by 2); an odd ticket is the second (its
         own increment is the release).  One cache line, no reset, no
         sense to flip — the parity of the ticket is the sense. *)
  timeout : float;
  spin_limit : int;
  ec : Spinwait.eventcount;  (* waiters of this barrier only *)
}

type ctx = { mutable my_sense : bool; mutable worker : int }
(* [worker] only attributes trace events to a ring; it has no effect on
   the rendezvous itself. *)

exception Timeout of { parties : int; arrived : int; waited : float }

let () =
  Printexc.register_printer (function
    | Timeout { parties; arrived; waited } ->
        Some
          (Printf.sprintf
             "Barrier.Timeout (%d of %d participants arrived after %.3gs)"
             arrived parties waited)
    | _ -> None)

let spin_limit = Spinwait.default_spin_limit

let default_timeout = ref 30.0

let create ?timeout ?spin_limit p =
  if p <= 0 then invalid_arg "Barrier.create: need at least one participant";
  let timeout = match timeout with Some s -> s | None -> !default_timeout in
  if not (timeout > 0.0) then invalid_arg "Barrier.create: timeout > 0";
  let spin_limit =
    match spin_limit with
    | Some s -> max 0 s
    | None -> Spinwait.spin_limit_for ~parties:p
  in
  {
    p;
    count = Atomic.make 0;
    sense = Atomic.make false;
    w2 = Atomic.make 0;
    timeout;
    spin_limit;
    ec = Spinwait.eventcount ();
  }

let parties t = t.p

let timeout t = t.timeout

let make_ctx _t = { my_sense = true; worker = 0 }

let set_worker ctx w = ctx.worker <- w

(* Specialized two-party rendezvous (p = 2).  Both participants
   fetch-and-add the single [w2] word: the even ticket arrived first and
   waits until the word has advanced 2 past its ticket; the odd ticket's
   own increment is what advances it, so the second arrival releases the
   peer for free and never waits at all.  No counter reset, no shared
   sense flip — cheaper than the generic arrive/release path by one
   atomic store and one shared-line invalidation per episode. *)
let wait2 t ctx =
  Fault.check "barrier.wait";
  Trace.begin_span ctx.worker Trace.cat_barrier 0;
  let x = Atomic.fetch_and_add t.w2 1 in
  if x land 1 = 0 then begin
    match
      Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.ec ~timeout:t.timeout
        (fun () -> Atomic.get t.w2 - x >= 2)
    with
    | Spinwait.Ready -> ()
    | Spinwait.Aborted -> assert false (* no abort condition given *)
    | Spinwait.TimedOut waited ->
        Counters.incr "barrier.timeout";
        raise
          (Timeout
             { parties = 2; arrived = Atomic.get t.w2 - x; waited })
  end
  else Spinwait.wake_all ~ec:t.ec ();
  Trace.end_span ctx.worker Trace.cat_barrier 0;
  (* parity carries the sense; [my_sense] is kept coherent anyway so a
     ctx observes the same contract on either path *)
  ctx.my_sense <- not ctx.my_sense

let wait_generic t ctx =
  Fault.check "barrier.wait";
  Trace.begin_span ctx.worker Trace.cat_barrier 0;
  let s = ctx.my_sense in
  if Atomic.fetch_and_add t.count 1 = t.p - 1 then begin
    (* Last arrival: reset and release the others by flipping the sense. *)
    Atomic.set t.count 0;
    Atomic.set t.sense s;
    Spinwait.wake_all ~ec:t.ec ()
  end
  else begin
    match
      Spinwait.wait ~spin_limit:t.spin_limit ~ec:t.ec ~timeout:t.timeout
        (fun () -> Atomic.get t.sense = s)
    with
    | Spinwait.Ready -> ()
    | Spinwait.Aborted -> assert false (* no abort condition given *)
    | Spinwait.TimedOut waited ->
        Counters.incr "barrier.timeout";
        raise
          (Timeout { parties = t.p; arrived = Atomic.get t.count; waited })
  end;
  Trace.end_span ctx.worker Trace.cat_barrier 0;
  ctx.my_sense <- not s

let wait t ctx = if t.p = 2 then wait2 t ctx else wait_generic t ctx
