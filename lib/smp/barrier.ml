type t = { p : int; count : int Atomic.t; sense : bool Atomic.t }

type ctx = { mutable my_sense : bool }

let spin_limit = 10_000

let create p =
  if p <= 0 then invalid_arg "Barrier.create: need at least one participant";
  { p; count = Atomic.make 0; sense = Atomic.make false }

let parties t = t.p

let make_ctx _t = { my_sense = true }

let wait t ctx =
  let s = ctx.my_sense in
  if Atomic.fetch_and_add t.count 1 = t.p - 1 then begin
    (* Last arrival: reset and release the others by flipping the sense. *)
    Atomic.set t.count 0;
    Atomic.set t.sense s
  end
  else begin
    let spins = ref 0 in
    while Atomic.get t.sense <> s do
      incr spins;
      if !spins < spin_limit then Domain.cpu_relax ()
      else begin
        (* Oversubscribed (more domains than cores): yield the timeslice. *)
        spins := 0;
        Unix.sleepf 50e-6
      end
    done
  end;
  ctx.my_sense <- not s
