(** A supervised, persistent pool of worker domains (thread pooling).

    The paper attributes part of Spiral's small-size parallel speedup to
    reusing threads across transform invocations instead of paying thread
    startup per call (FFTW 3.1's pooling was experimental and off by
    default).  [run] dispatches one job to all [p] workers — the calling
    domain acts as worker 0 — and returns when every worker has finished.

    On top of the seed pool this adds a failure model:

    - every completion wait is bounded by a per-pool timeout; when it
      expires, {!run} raises {!Deadlock} naming the workers that never
      checked in instead of spinning forever;
    - a worker domain that dies (its exception escapes the job) is
      detected by liveness flags and reported immediately, without
      waiting out the full timeout;
    - all worker exceptions of a job are aggregated into
      {!Worker_errors}, not just the first one;
    - after a {!Deadlock} the pool is {e poisoned} — {!heal} joins the
      survivors and respawns a fresh set of worker domains. *)

type t

exception Worker_errors of exn list
(** All exceptions recorded during one {!run}, in the order they were
    raised.  The job itself completed on every worker. *)

exception Deadlock of string
(** One or more workers never completed the job: the message names which
    worker ids were dead (domain terminated) and which were unresponsive
    when the pool gave up.  The pool is poisoned afterwards; {!heal} it
    before the next {!run}. *)

val create : ?timeout:float -> ?spin_limit:int -> int -> t
(** [create p] starts [p - 1] background domains ([p >= 1]).  [timeout]
    (seconds, default {!default_timeout}) bounds every {!run}'s
    completion wait.  [spin_limit] overrides the spin budget of the
    dispatch/join rendezvous before waiters park (default
    {!Spinwait.spin_limit_for}[ ~parties:p]); idle workers and the
    joining caller never sleep-poll — they spin briefly, then park on
    the {!Spinwait} eventcount until woken. *)

val size : t -> int

val timeout : t -> float

val set_timeout : t -> float -> unit

val default_timeout : float ref
(** Timeout applied by {!create} when none is given (30 s). *)

val run : t -> (int -> unit) -> unit
(** [run pool f] executes [f w] on worker [w] for [0 <= w < p]
    concurrently; [f 0] runs on the calling domain.

    Exceptions raised by workers are collected (lock-disciplined) and
    re-raised in the caller as [Worker_errors] after all workers finish.
    Declares the fault-injection site ["pool.worker"]
    ({!Spiral_util.Fault}): an injection there kills the worker's domain.

    Not re-entrant: a nested call (e.g. from inside a job) raises
    [Invalid_argument] instead of silently corrupting the completion
    count.
    @raise Worker_errors when the job failed on some workers;
    @raise Deadlock when some workers died or stalled past the timeout;
    @raise Invalid_argument on a shut-down, busy, or poisoned pool. *)

val healthy : t -> bool
(** [true] when the pool is not poisoned and all worker domains are
    alive, i.e. the next {!run} can be dispatched normally. *)

val stopped : t -> bool
(** [true] once {!shutdown} has been called (or a {!heal} is mid-flight
    on another thread): every {!run} will raise.  {!Pool_registry} uses
    this to revalidate cached pools on acquire. *)

val heal : t -> unit
(** Rebuild the pool's worker domains: stops survivors, joins every
    domain (bounded, since all waits time out), respawns [p - 1] fresh
    workers and clears the poisoned flag.  Increments the
    ["pool.rebuild"] counter.  @raise Invalid_argument if the pool is
    shut down or busy. *)

val rebuilds : t -> int
(** Number of times this pool has been healed. *)

val shutdown : t -> unit
(** Joins all worker domains.  The pool must not be used afterwards. *)

val with_pool : ?timeout:float -> ?spin_limit:int -> int -> (t -> 'a) -> 'a
(** [with_pool p f] creates a pool, applies [f], and always shuts down. *)
