(** A supervised, persistent pool of worker domains (thread pooling).

    The paper attributes part of Spiral's small-size parallel speedup to
    reusing threads across transform invocations instead of paying thread
    startup per call (FFTW 3.1's pooling was experimental and off by
    default).  [run] dispatches one job to all [p] workers — the calling
    domain acts as worker 0 — and returns when every worker has finished.

    On top of the seed pool this adds a failure model:

    - every completion wait is bounded by a per-pool timeout; when it
      expires, {!run} raises {!Deadlock} naming the workers that never
      checked in instead of spinning forever;
    - a worker domain that dies (its exception escapes the job) is
      detected by liveness flags and reported immediately, without
      waiting out the full timeout;
    - all worker exceptions of a job are aggregated into
      {!Worker_errors}, not just the first one;
    - after a {!Deadlock} the pool is {e poisoned} — {!heal} joins the
      survivors and respawns a fresh set of worker domains. *)

type t

exception Worker_errors of exn list
(** All exceptions recorded during one {!run}, in the order they were
    raised.  The job itself completed on every worker. *)

exception Deadlock of string
(** One or more workers never completed the job: the message names which
    worker ids were dead (domain terminated) and which were unresponsive
    when the pool gave up.  The pool is poisoned afterwards; {!heal} it
    before the next {!run}. *)

val create : ?timeout:float -> ?spin_limit:int -> int -> t
(** [create p] starts [p - 1] background domains ([p >= 1]).  [timeout]
    (seconds, default {!default_timeout}) bounds every {!run}'s
    completion wait.  [spin_limit] overrides the spin budget of the
    dispatch/join rendezvous before waiters park (default
    {!Spinwait.spin_limit_for}[ ~parties:p]); idle workers and the
    joining caller never sleep-poll — they spin briefly, then park on
    the {!Spinwait} eventcount until woken. *)

val size : t -> int

val timeout : t -> float

val set_timeout : t -> float -> unit

val default_timeout : float ref
(** Timeout applied by {!create} when none is given (30 s). *)

val run : t -> (int -> unit) -> unit
(** [run pool f] executes [f w] on worker [w] for [0 <= w < p]
    concurrently; [f 0] runs on the calling domain.

    Exceptions raised by workers are collected (lock-disciplined) and
    re-raised in the caller as [Worker_errors] after all workers finish.
    Declares the fault-injection site ["pool.worker"]
    ({!Spiral_util.Fault}): an injection there kills the worker's domain.

    Not re-entrant: a nested call (e.g. from inside a job) raises
    [Invalid_argument] instead of silently corrupting the completion
    count.
    @raise Worker_errors when the job failed on some workers;
    @raise Deadlock when some workers died or stalled past the timeout;
    @raise Invalid_argument on a shut-down, busy, or poisoned pool. *)

(** {2 Cross-call resident parallel regions}

    [run] pays a full pool rendezvous per call: error-list reset,
    completion-flag sweep, generation bump, dispatch wake, join.  A
    {e resident region} hoists all of that out of the per-call path: one
    long-running pool job pins every worker inside a loop that waits on
    the region's own eventcount, and each subsequent call is dispatched
    by a single CAS on the region's call-sequence word (plus a wake only
    if a worker actually parked).  The caller still executes partition 0
    itself and joins on a dedicated per-region eventcount.

    Workers that see no call for [idle] seconds {e decay}: one of them
    CASes the sequence word to a retirement sentinel (the same word a
    dispatch CASes, so decay-versus-dispatch is linearizable — exactly
    one wins), all of them fall back to the pool's ordinary idle park,
    and ["pool.region_decay"] is counted.  The dispatcher discovers the
    decay on its next {!region_run} (which returns [false] without
    running anything) and must {!region_end} the region — which is also
    how another plan {e evicts} a region to get the pool back, since a
    live region holds the pool's busy flag for its whole lifetime.

    All dispatcher-side operations ({!region_begin}, {!region_run},
    {!region_end}) follow the same one-dispatcher discipline as {!run}. *)

type region

val region_begin : ?spin_limit:int -> ?idle:float -> t -> region
(** Pin the pool's workers inside a fresh resident region.  [spin_limit]
    is each worker's spin budget before parking between calls (default:
    the pool's); [idle] (seconds, default [infinity]) is the decay
    deadline.  Holds the pool's busy flag until {!region_end}: an
    ordinary {!run} (or a second region) raises [Invalid_argument] until
    then.  Counted under ["pool.region_enter"].
    @raise Invalid_argument on a shut-down, busy, or poisoned pool. *)

val region_run : region -> (int -> unit) -> bool
(** [region_run r f] dispatches [f] to the resident workers with a
    single CAS and runs [f 0] on the calling domain, then joins.
    Returns [false] — without running anything — when the region has
    already decayed or been ended; the caller should {!region_end} it
    and fall back to {!run} or a fresh region.  Error semantics match
    {!run}: worker exceptions aggregate into [Worker_errors]; a dead or
    stuck worker raises [Deadlock] (naming the dead workers) and
    poisons the pool.  Declares the fault-injection site ["pool.worker"]
    at each call pickup, with domain-death semantics, exactly like the
    pooled dispatch path.
    @raise Worker_errors when the call failed on some workers;
    @raise Deadlock when some workers died or stalled past the timeout;
    @raise Invalid_argument on a re-entrant call from inside [f]. *)

val region_end : region -> unit
(** Retire the region: seal its sequence word, wake and wait (bounded)
    for every live worker to fall back to the pool's idle park, release
    the pool's busy flag.  Idempotent; never raises.  If a worker died
    or is wedged inside the region the pool is left poisoned (heal it
    before the next dispatch), but the busy flag is released regardless
    so {!heal} can run. *)

val region_live : region -> bool
(** [true] while the region can still accept {!region_run} calls (not
    decayed, not ended). *)

val region_ended : region -> bool
(** [true] once {!region_end} ran.  A region for which {!region_run}
    returns [false] but [region_ended] is still [false] decayed from
    idleness; one that is already ended was evicted by another
    dispatcher — callers use the distinction to back off their
    re-pinning threshold under pool contention. *)

val resident : t -> region option
(** The region currently pinning this pool's workers, if any. *)

val healthy : t -> bool
(** [true] when the pool is not poisoned and all worker domains are
    alive, i.e. the next {!run} can be dispatched normally. *)

val stopped : t -> bool
(** [true] once {!shutdown} has been called (or a {!heal} is mid-flight
    on another thread): every {!run} will raise.  {!Pool_registry} uses
    this to revalidate cached pools on acquire. *)

val heal : t -> unit
(** Rebuild the pool's worker domains: stops survivors, joins every
    domain (bounded, since all waits time out), respawns [p - 1] fresh
    workers and clears the poisoned flag.  Increments the
    ["pool.rebuild"] counter.  @raise Invalid_argument if the pool is
    shut down or busy. *)

val rebuilds : t -> int
(** Number of times this pool has been healed. *)

val shutdown : t -> unit
(** Joins all worker domains.  The pool must not be used afterwards. *)

val with_pool : ?timeout:float -> ?spin_limit:int -> int -> (t -> 'a) -> 'a
(** [with_pool p f] creates a pool, applies [f], and always shuts down. *)
