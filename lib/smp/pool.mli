(** A persistent pool of worker domains (thread pooling).

    The paper attributes part of Spiral's small-size parallel speedup to
    reusing threads across transform invocations instead of paying thread
    startup per call (FFTW 3.1's pooling was experimental and off by
    default).  [run] dispatches one job to all [p] workers — the calling
    domain acts as worker 0 — and returns when every worker has finished. *)

type t

val create : int -> t
(** [create p] starts [p - 1] background domains ([p >= 1]). *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run pool f] executes [f w] on worker [w] for [0 <= w < p]
    concurrently; [f 0] runs on the calling domain.  Exceptions raised by
    workers are re-raised in the caller after all workers finish.
    Not re-entrant. *)

val shutdown : t -> unit
(** Joins all worker domains.  The pool must not be used afterwards. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool p f] creates a pool, applies [f], and always shuts down. *)
