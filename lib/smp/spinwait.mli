(** Shared low-latency wait/wake machinery for {!Pool} and {!Barrier}.

    A {!wait} escalates spin → park → timed sleep:

    - {e spin}: bounded [Domain.cpu_relax] polling of the predicate — no
      syscalls, no clock reads;
    - {e park}: block on an {!eventcount} (mutex + condvar;
      single-digit-microsecond wake-up on Linux).  Each pool and barrier
      owns its own eventcount, so a post wakes only threads that can
      make progress from it — a barrier release never wakes a joiner,
      one pool's dispatch never wakes another pool's idle workers.
      Posters call {!wake_all} after their state change; when nobody is
      parked this is one atomic load and nothing else.  Deadlines of
      parked waiters are enforced by a lazily-spawned watchdog domain
      that broadcasts every eventcount with timed waiters every
      {!watchdog_interval} seconds (OCaml's [Condition] has no timed
      wait); the watchdog exits after {!watchdog_idle_exit} seconds
      without timed waiters;
    - {e timed sleep}: only if the watchdog domain cannot be spawned,
      poll with [Unix.sleepf] {!sleep_interval} — every sleep is counted
      under ["smp.timed_sleep"] ({!Spiral_util.Counters}), which is how
      tests assert the steady state performs no sleeps at all.

    The timeout clock starts only once spinning has failed, so the fast
    path performs no syscalls (same contract as the original barrier). *)

type outcome =
  | Ready  (** The predicate became true. *)
  | Aborted  (** The abort condition became true first. *)
  | TimedOut of float
      (** Neither happened within [timeout] seconds of the end of the
          spin phase; payload is the measured wait. *)

type eventcount
(** A parking lot: waiters park on one, posters wake it.  Allocate one
    per rendezvous object (pool, barrier) so wake-ups stay targeted. *)

val eventcount : unit -> eventcount
(** Fresh eventcount, registered with the watchdog for deadline ticks.
    Eventcounts are never unregistered — own them from long-lived
    objects, not per operation. *)

val wait :
  ?spin_limit:int ->
  ?ec:eventcount ->
  timeout:float ->
  ?abort:(unit -> bool) ->
  (unit -> bool) ->
  outcome
(** [wait ~ec ~timeout pred] blocks until [pred ()] ([Ready]), [abort ()]
    ([Aborted], checked at a coarser cadence than [pred]), or [timeout]
    seconds after spinning failed ([TimedOut]).  [timeout] may be
    [infinity] (park until woken; such waiters never engage the
    watchdog).  Both callbacks must be cheap and must not raise.  [ec]
    defaults to a process-wide eventcount; pass the poster's eventcount
    so its {!wake_all} reaches this waiter. *)

val wake_all : ?ec:eventcount -> unit -> unit
(** Wake every waiter parked on [ec] (default: the process-wide
    eventcount) so it re-checks its predicate.  Call after any state
    change a waiter might be blocked on.  Cheap when nobody is parked
    (one atomic load). *)

(** {2 Named thresholds}

    The single home of the spin/sleep constants both {!Pool} and
    {!Barrier} use (hoisted here from their former per-module copies). *)

val cores : int
(** Cores available to this process ([Domain.recommended_domain_count]),
    sampled once at load.  The basis of every spin-versus-park decision
    here; exported so benchmarks can record the machine a measurement
    was taken on (the crossover guard only enforces parallel-speedup
    ceilings against numbers measured with [cores >= 2]). *)

val default_spin_limit : int
(** Spin iterations before parking: {!dedicated_spin_limit} when the
    machine has more than one core, else {!oversubscribed_spin_limit}. *)

val dedicated_spin_limit : int
(** Spin budget when waiters can expect to own a core (10_000). *)

val oversubscribed_spin_limit : int
(** Spin budget when domains outnumber cores — spinning only delays the
    poster, so park almost immediately (256). *)

val spin_limit_for : parties:int -> int
(** Recommended spin limit for a rendezvous of [parties] domains on this
    machine: {!oversubscribed_spin_limit} when [parties] exceeds the
    available cores, {!default_spin_limit} otherwise. *)

val sleep_interval : float
(** Poll period of the timed-sleep fallback phase, seconds (50µs — the
    constant formerly hardcoded in both [Pool.run] and [Barrier.wait]). *)

val watchdog_interval : float
(** Period of the watchdog's deadline broadcasts, seconds.  Bounds how
    late a parked waiter notices its timeout expired. *)

val watchdog_idle_exit : float
(** Seconds without any timed parked waiter before the watchdog domain
    exits (it is respawned on demand). *)

val timed_sleep_counter : string
(** Name of the {!Spiral_util.Counters} site ("smp.timed_sleep") bumped
    once per fallback [Unix.sleepf].  Zero in any healthy steady state. *)
