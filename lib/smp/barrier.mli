(** Sense-reversing centralized barrier for a fixed set of domains.

    This is the low-latency synchronization primitive behind the paper's
    pthreads backend: workers spin (with [Domain.cpu_relax]) for a bounded
    number of iterations and then back off by sleeping, so the barrier is
    fast when cores are dedicated and still correct when domains are
    oversubscribed on fewer cores. *)

type t

val create : int -> t
(** [create p] is a barrier for [p] participants. *)

val parties : t -> int

type ctx
(** Per-participant state (the participant's current sense). *)

val make_ctx : t -> ctx

val wait : t -> ctx -> unit
(** Blocks until all [p] participants have called [wait] for the current
    phase.  Each participant must use its own [ctx] and call [wait] the
    same number of times. *)

val spin_limit : int
(** Number of spin iterations before falling back to sleeping. *)
