(** Sense-reversing centralized barrier for a fixed set of domains.

    This is the low-latency synchronization primitive behind the paper's
    pthreads backend.  A waiter escalates through {!Spinwait}'s phases:
    it spins (with [Domain.cpu_relax]) for a bounded number of
    iterations, then parks on the shared eventcount — so the barrier is
    fast when cores are dedicated and still costs only microseconds (not
    a scheduler timeslice) when domains are oversubscribed on fewer
    cores.  The last arrival flips the sense and wakes any parked peers.

    Every wait is bounded: a participant that waits longer than the
    barrier's timeout raises {!Timeout} instead of hanging forever on a
    peer that died (parked waiters are woken periodically by the
    {!Spinwait} watchdog to re-check their deadline).  A timed-out
    barrier is {e broken} — the arrival count no longer matches
    reality — and must be discarded; the supervised executor
    ({!Par_exec.execute_safe}) rebuilds the pool and the barrier after
    any timeout.

    When [p = 2] the generic arrive/release machinery is skipped for a
    specialized two-party rendezvous on a single atomic word: each
    participant fetch-and-adds a shared ticket counter; an even ticket
    is the episode's first arrival (it waits for the word to advance by
    2), an odd ticket's own increment {e is} the release.  No counter
    reset, no sense flip, one cache line of shared state.  Selected
    automatically by {!create}; the {!wait} contract (fault site,
    timeout, trace spans) is identical. *)

type t

exception Timeout of { parties : int; arrived : int; waited : float }
(** Raised by {!wait} when the remaining participants did not arrive
    within the timeout: [arrived] of [parties] had arrived when the
    waiter gave up after [waited] seconds. *)

val create : ?timeout:float -> ?spin_limit:int -> int -> t
(** [create p] is a barrier for [p] participants.  [timeout] (seconds,
    default {!default_timeout}) bounds every {!wait}.  [spin_limit]
    overrides the spin budget before parking (default
    {!Spinwait.spin_limit_for}[ ~parties:p]). *)

val parties : t -> int

val timeout : t -> float

val default_timeout : float ref
(** Timeout applied by {!create} when none is given (30 s). *)

type ctx
(** Per-participant state (the participant's current sense). *)

val make_ctx : t -> ctx

val set_worker : ctx -> int -> unit
(** Tag this participant's trace events ({!Spiral_util.Trace}) with the
    given worker index (default 0).  Attribution only — it does not
    change the rendezvous. *)

val wait : t -> ctx -> unit
(** Blocks until all [p] participants have called [wait] for the current
    phase.  Each participant must use its own [ctx] and call [wait] the
    same number of times.

    Declares the fault-injection site ["barrier.wait"]
    ({!Spiral_util.Fault}) and raises {!Timeout} after the barrier's
    timeout; either way the barrier must not be reused afterwards.
    @raise Timeout when peers fail to arrive in time. *)

val spin_limit : int
(** Default spin iterations before parking (alias of
    {!Spinwait.default_spin_limit}; kept for compatibility). *)
