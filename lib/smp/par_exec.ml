open Spiral_util
open Spiral_codegen

type schedule = Block | Cyclic of int

let worker_range sched ~count ~workers w =
  match sched with
  | Block ->
      let chunk = count / workers and rem = count mod workers in
      (* distribute the remainder one iteration at a time to the first
         [rem] workers so the partition is exact *)
      let lo = (w * chunk) + min w rem in
      let hi = lo + chunk + if w < rem then 1 else 0 in
      if hi > lo then [ (lo, hi) ] else []
  | Cyclic c ->
      let c = max 1 c in
      let rec go start acc =
        if start >= count then List.rev acc
        else
          let lo = start and hi = min count (start + c) in
          go (start + (workers * c)) ((lo, hi) :: acc)
      in
      go (w * c) []

(* ---------------------------------------------------------------- *)
(* Barrier elision.  The barrier between passes k and k+1 can be skipped
   when the passes are partition-compatible under the Block schedule
   (legality conditions in DESIGN.md):

   A. every position pass k+1 gathers for worker w was scattered by the
      same worker w in pass k (each worker reads only its own writes);
   B. when pass k's input buffer is also pass k+1's output buffer (the
      ping-pong schedule aliases them whenever both are intermediates),
      every position pass k+1 scatters for worker w is gathered in pass k
      by no worker other than w (no write-before-read of another
      worker's pending input);
   and never two boundaries in a row (an elided barrier lets workers skew
   by one pass; chaining would allow a skew of two, and conditions A/B
   are only pairwise).  With a single worker there is no concurrency and
   every boundary is elidable.

   The analysis walks the exact Block partition and the materialized
   addressing, so it is conservative only where it refuses. *)

let compute_elision ~workers (plan : Plan.t) =
  let np = Array.length plan.Plan.passes in
  let nb = max 0 (np - 1) in
  let mask = Array.make nb false in
  if workers = 1 then Array.fill mask 0 nb true
  else begin
    let n = plan.Plan.n in
    let writer = Array.make n (-1) in
    let reader = Array.make n (-1) in
    for b = 0 to nb - 1 do
      let pk = plan.Plan.passes.(b) and pk1 = plan.Plan.passes.(b + 1) in
      if pk.Plan.par <> None && pk1.Plan.par <> None then begin
        Array.fill writer 0 n (-1);
        Array.fill reader 0 n (-1);
        let addrs_k = Plan.iter_addresses pk in
        let addrs_k1 = Plan.iter_addresses pk1 in
        (* footprint of pass k per worker *)
        for w = 0 to workers - 1 do
          List.iter
            (fun (lo, hi) ->
              for i = lo to hi - 1 do
                let g, s = addrs_k i in
                for l = 0 to pk.Plan.radix - 1 do
                  writer.(s l) <- w;
                  let gp = g l in
                  if reader.(gp) = -1 then reader.(gp) <- w
                  else if reader.(gp) <> w then reader.(gp) <- -2
                done
              done)
            (worker_range Block ~count:pk.Plan.count ~workers w)
        done;
        (* in(k) and out(k+1) alias iff both are ping-pong intermediates *)
        let aliasing = b > 0 && b + 1 < np - 1 in
        let ok = ref true in
        (try
           for w = 0 to workers - 1 do
             List.iter
               (fun (lo, hi) ->
                 for i = lo to hi - 1 do
                   let g, s = addrs_k1 i in
                   for l = 0 to pk1.Plan.radix - 1 do
                     if writer.(g l) <> w then begin
                       ok := false;
                       raise Exit
                     end;
                     if aliasing then begin
                       let rd = reader.(s l) in
                       if rd <> -1 && rd <> w then begin
                         ok := false;
                         raise Exit
                       end
                     end
                   done
                 done)
               (worker_range Block ~count:pk1.Plan.count ~workers w)
           done
         with Exit -> ());
        mask.(b) <- !ok
      end
    done;
    (* no chained elisions: a skipped barrier must be followed by a real
       one, keeping worker skew bounded by a single pass *)
    for b = 1 to nb - 1 do
      if mask.(b) && mask.(b - 1) then mask.(b) <- false
    done
  end;
  mask

let empty_mask = [||]

let elision_mask ?(schedule = Block) ~workers (plan : Plan.t) =
  match schedule with
  | Cyclic _ -> empty_mask
  | Block -> (
      match List.assoc_opt workers plan.Plan.elision with
      | Some m -> m
      | None ->
          let m = compute_elision ~workers plan in
          plan.Plan.elision <- (workers, m) :: plan.Plan.elision;
          m)

let run_worker_pass ctx sched p ~src ~dst ~workers w =
  match p.Plan.par with
  | Some _ ->
      List.iter
        (fun (lo, hi) -> Plan.run_pass_range ctx p ~src ~dst ~lo ~hi)
        (worker_range sched ~count:p.Plan.count ~workers w)
  | None ->
      if w = 0 then Plan.run_pass_range ctx p ~src ~dst ~lo:0 ~hi:p.Plan.count

let execute pool ?(schedule = Block) ?(elide = true) ?timeout plan x y =
  let workers = Pool.size pool in
  let mask =
    if elide then elision_mask ~schedule ~workers plan else empty_mask
  in
  let nb = Array.length mask in
  let elided = ref 0 in
  for b = 0 to nb - 1 do
    if mask.(b) then incr elided
  done;
  if !elided > 0 then Counters.incr ~by:!elided "par_exec.barrier_elided";
  Plan.ensure_worker_ctxs plan workers;
  let barrier = Barrier.create ?timeout workers in
  let np = Array.length plan.Plan.passes in
  Pool.run pool (fun w ->
      let bctx = Barrier.make_ctx barrier in
      let ctx = Plan.worker_ctx plan w in
      for k = 0 to np - 1 do
        Fault.check "par_exec.pass";
        let src = Plan.pass_src plan ~x k and dst = Plan.pass_dst plan ~y k in
        run_worker_pass ctx schedule plan.Plan.passes.(k) ~src ~dst ~workers w;
        if k >= nb || not mask.(k) then Barrier.wait barrier bctx
      done)

(* Failures the supervised executor can recover from: worker exceptions
   (including injected faults and barrier timeouts recorded per worker)
   and pool-level deadlocks from dead or stalled domains.  Anything else
   — Out_of_memory, programming errors in [execute] itself — propagates. *)
let recoverable = function
  | Pool.Worker_errors _ | Pool.Deadlock _ | Barrier.Timeout _ -> true
  | _ -> false

let execute_safe pool ?schedule ?elide ?timeout plan x y =
  let heal_if_needed () =
    if not (Pool.healthy pool) then try Pool.heal pool with _ -> ()
  in
  try execute pool ?schedule ?elide ?timeout plan x y
  with e when recoverable e -> (
    Counters.incr "par_exec.retry";
    heal_if_needed ();
    try execute pool ?schedule ?elide ?timeout plan x y
    with e when recoverable e ->
      heal_if_needed ();
      (* Sequential execution recomputes every pass over its full range
         from the original input, so partial writes by the failed
         parallel attempts cannot leak into the result. *)
      Counters.incr "par_exec.sequential_fallback";
      Plan.execute plan x y)

let execute_fork_join ~p ?(schedule = Block) ?(elide = true) plan x y =
  if p < 1 then invalid_arg "Par_exec.execute_fork_join: p >= 1";
  let mask =
    if elide then elision_mask ~schedule ~workers:p plan else empty_mask
  in
  let np = Array.length plan.Plan.passes in
  Plan.ensure_worker_ctxs plan p;
  let k = ref 0 in
  while !k < np do
    let pass = plan.Plan.passes.(!k) in
    match pass.Plan.par with
    | None ->
        let src = Plan.pass_src plan ~x !k
        and dst = Plan.pass_dst plan ~y !k in
        Plan.run_pass_range (Plan.worker_ctx plan 0) pass ~src ~dst ~lo:0
          ~hi:pass.Plan.count;
        incr k
    | Some _ ->
        (* OpenMP-style parallel region: spawn, work, join.  Consecutive
           parallel passes joined by an elidable boundary share one
           region, saving a spawn/join cycle per elision. *)
        let k0 = !k in
        let last = ref k0 in
        while
          !last + 1 < np
          && (match plan.Plan.passes.(!last + 1).Plan.par with
             | Some _ -> true
             | None -> false)
          && !last < Array.length mask
          && mask.(!last)
        do
          incr last
        done;
        let k1 = !last in
        let work w =
          let ctx = Plan.worker_ctx plan w in
          for j = k0 to k1 do
            let src = Plan.pass_src plan ~x j
            and dst = Plan.pass_dst plan ~y j in
            run_worker_pass ctx schedule plan.Plan.passes.(j) ~src ~dst
              ~workers:p w
          done
        in
        let domains =
          Array.init (p - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
        in
        work 0;
        Array.iter Domain.join domains;
        k := k1 + 1
  done
