open Spiral_util
open Spiral_codegen

type schedule = Block | Cyclic of int

let worker_range sched ~count ~workers w =
  match sched with
  | Block ->
      let chunk = count / workers and rem = count mod workers in
      (* distribute the remainder one iteration at a time to the first
         [rem] workers so the partition is exact *)
      let lo = (w * chunk) + min w rem in
      let hi = lo + chunk + if w < rem then 1 else 0 in
      if hi > lo then [ (lo, hi) ] else []
  | Cyclic c ->
      let c = max 1 c in
      let rec go start acc =
        if start >= count then List.rev acc
        else
          let lo = start and hi = min count (start + c) in
          go (start + (workers * c)) ((lo, hi) :: acc)
      in
      go (w * c) []

let run_worker_pass sched p ~src ~dst ~workers w =
  match p.Plan.par with
  | Some _ ->
      List.iter
        (fun (lo, hi) -> Plan.run_pass_range p ~src ~dst ~lo ~hi)
        (worker_range sched ~count:p.Plan.count ~workers w)
  | None -> if w = 0 then Plan.run_pass_range p ~src ~dst ~lo:0 ~hi:p.Plan.count

let execute pool ?(schedule = Block) ?timeout plan x y =
  let workers = Pool.size pool in
  let barrier = Barrier.create ?timeout workers in
  Pool.run pool (fun w ->
      let ctx = Barrier.make_ctx barrier in
      Array.iteri
        (fun k p ->
          Fault.check "par_exec.pass";
          let src, dst = Plan.src_dst_of_pass plan ~x ~y k in
          run_worker_pass schedule p ~src ~dst ~workers w;
          Barrier.wait barrier ctx)
        plan.Plan.passes)

(* Failures the supervised executor can recover from: worker exceptions
   (including injected faults and barrier timeouts recorded per worker)
   and pool-level deadlocks from dead or stalled domains.  Anything else
   — Out_of_memory, programming errors in [execute] itself — propagates. *)
let recoverable = function
  | Pool.Worker_errors _ | Pool.Deadlock _ | Barrier.Timeout _ -> true
  | _ -> false

let execute_safe pool ?schedule ?timeout plan x y =
  let heal_if_needed () =
    if not (Pool.healthy pool) then try Pool.heal pool with _ -> ()
  in
  try execute pool ?schedule ?timeout plan x y
  with e when recoverable e -> (
    Counters.incr "par_exec.retry";
    heal_if_needed ();
    try execute pool ?schedule ?timeout plan x y
    with e when recoverable e ->
      heal_if_needed ();
      (* Sequential execution recomputes every pass over its full range
         from the original input, so partial writes by the failed
         parallel attempts cannot leak into the result. *)
      Counters.incr "par_exec.sequential_fallback";
      Plan.execute plan x y)

let execute_fork_join ~p ?(schedule = Block) plan x y =
  if p < 1 then invalid_arg "Par_exec.execute_fork_join: p >= 1";
  Array.iteri
    (fun k pass ->
      let src, dst = Plan.src_dst_of_pass plan ~x ~y k in
      match pass.Plan.par with
      | None -> Plan.run_pass_range pass ~src ~dst ~lo:0 ~hi:pass.Plan.count
      | Some _ ->
          (* OpenMP-style parallel region: spawn, work, join. *)
          let domains =
            Array.init (p - 1) (fun i ->
                Domain.spawn (fun () ->
                    run_worker_pass schedule pass ~src ~dst ~workers:p (i + 1)))
          in
          run_worker_pass schedule pass ~src ~dst ~workers:p 0;
          Array.iter Domain.join domains)
    plan.Plan.passes
