open Spiral_util
open Spiral_codegen

type schedule = Block | Cyclic of int

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Alignment of a pass's Block-partition boundaries, in iterations: a
   boundary at iteration [b] starts a fresh cache line whenever
   [b * radix] is a multiple of the pass's µ tag, i.e. when [b] is a
   multiple of µ/gcd(µ, radix).  Untagged passes need no alignment. *)
let pass_align (p : Plan.pass) =
  match p.Plan.mu with
  | None -> 1
  | Some mu when mu <= 1 -> 1
  | Some mu ->
      let r = max 1 p.Plan.radix in
      max 1 (mu / gcd mu r)

let worker_range ?(align = 1) sched ~count ~workers w =
  match sched with
  | Block ->
      let chunk = count / workers and rem = count mod workers in
      (* distribute the remainder one iteration at a time to the first
         [rem] workers so the partition is exact *)
      let raw v = (v * chunk) + min v rem in
      if align <= 1 then begin
        let lo = raw w in
        let hi = lo + chunk + if w < rem then 1 else 0 in
        if hi > lo then [ (lo, hi) ] else []
      end
      else begin
        (* µ-aligned variant: floor every internal boundary to a multiple
           of [align] (the first and last boundaries are 0 and [count]
           and need no adjustment).  Flooring a monotone sequence keeps
           it monotone, so the ranges still partition [0, count). *)
        let bound v = if v >= count then count else v / align * align in
        let lo = if w = 0 then 0 else bound (raw w) in
        let hi = if w >= workers - 1 then count else bound (raw (w + 1)) in
        if hi > lo then [ (lo, hi) ] else []
      end
  | Cyclic c ->
      let c = max 1 c in
      let rec go start acc =
        if start >= count then List.rev acc
        else
          let lo = start and hi = min count (start + c) in
          go (start + (workers * c)) ((lo, hi) :: acc)
      in
      go (w * c) []

(* ---------------------------------------------------------------- *)
(* Barrier elision.  The barrier between passes k and k+1 can be skipped
   when the passes are partition-compatible under the Block schedule
   (legality conditions in DESIGN.md):

   A. every position pass k+1 gathers for worker w was scattered by the
      same worker w in pass k (each worker reads only its own writes);
   B. when pass k's input buffer is also pass k+1's output buffer (the
      ping-pong schedule aliases them whenever both are intermediates),
      every position pass k+1 scatters for worker w is gathered in pass k
      by no worker other than w (no write-before-read of another
      worker's pending input);
   and never three boundaries in a row.  Two consecutive elisions (worker
   skew of two passes) are admitted under an extra condition C checked
   below: the two passes bracketing the chain must agree pointwise on
   which worker writes each position of the ping-pong buffer they share.
   With a single worker there is no concurrency and every boundary is
   elidable.

   The analysis walks the exact (µ-aligned) Block partition and the
   materialized addressing, so it is conservative only where it
   refuses. *)

type boundary_witness = {
  boundary : int;
  writer : int array;
  reader : int array;
}

(* [capture] snapshots the per-position writer/reader ownership arrays of
   pass k for every boundary the analysis decides to elide — the
   certificate [Spiral_validate.check_elision] re-derives and checks.
   Witnesses are only materialized on request (two int arrays of size n
   per elided boundary), never cached. *)
let compute_elision ?(capture = false) ~workers (plan : Plan.t) =
  let np = Array.length plan.Plan.passes in
  let nb = max 0 (np - 1) in
  let mask = Array.make nb false in
  let wits = ref [] in
  if workers = 1 then Array.fill mask 0 nb true
  else begin
    let n = plan.Plan.n in
    let writer = Array.make n (-1) in
    let reader = Array.make n (-1) in
    for b = 0 to nb - 1 do
      let pk = plan.Plan.passes.(b) and pk1 = plan.Plan.passes.(b + 1) in
      if pk.Plan.par <> None && pk1.Plan.par <> None then begin
        Array.fill writer 0 n (-1);
        Array.fill reader 0 n (-1);
        let addrs_k = Plan.iter_addresses pk in
        let addrs_k1 = Plan.iter_addresses pk1 in
        (* footprint of pass k per worker *)
        for w = 0 to workers - 1 do
          List.iter
            (fun (lo, hi) ->
              for i = lo to hi - 1 do
                let g, s = addrs_k i in
                for l = 0 to pk.Plan.radix - 1 do
                  writer.(s l) <- w;
                  let gp = g l in
                  if reader.(gp) = -1 then reader.(gp) <- w
                  else if reader.(gp) <> w then reader.(gp) <- -2
                done
              done)
            (worker_range ~align:(pass_align pk) Block ~count:pk.Plan.count
               ~workers w)
        done;
        (* in(k) and out(k+1) alias iff both are ping-pong intermediates *)
        let aliasing = b > 0 && b + 1 < np - 1 in
        let ok = ref true in
        (try
           for w = 0 to workers - 1 do
             List.iter
               (fun (lo, hi) ->
                 for i = lo to hi - 1 do
                   let g, s = addrs_k1 i in
                   for l = 0 to pk1.Plan.radix - 1 do
                     if writer.(g l) <> w then begin
                       ok := false;
                       raise Exit
                     end;
                     if aliasing then begin
                       let rd = reader.(s l) in
                       if rd <> -1 && rd <> w then begin
                         ok := false;
                         raise Exit
                       end
                     end
                   done
                 done)
               (worker_range ~align:(pass_align pk1) Block
                  ~count:pk1.Plan.count ~workers w)
           done
         with Exit -> ());
        mask.(b) <- !ok;
        if capture && !ok then
          wits :=
            { boundary = b; writer = Array.copy writer;
              reader = Array.copy reader }
            :: !wits
      end
    done;
    (* Chained elisions, length exactly two (worker skew ≤ 2 passes).
       With boundaries b-1 and b both elided, a fast worker can run pass
       b+1 while a straggler is still in pass b-1.  The pairwise A/B
       checks above cover every adjacent-pass hazard at skew 1; the only
       new hazards at skew 2 are between passes b+1 and b-1, whose
       outputs land in the same ping-pong intermediate (out(b+1) ≡
       out(b-1) by buffer parity — unless pass b+1 writes y).  Both the
       WAW (two writes racing) and the WAR (pass b+1 clobbering a
       position a straggler's pass-b neighbour still gathers, which
       condition A pins to the pass-(b-1) writer) are serialized by
       per-worker program order exactly when the two passes agree
       pointwise on which worker owns each co-written position.  Chains
       of three would add distance-3 hazards with no such cheap
       certificate, so a third consecutive elision is never attempted. *)
    let pass_writer = Array.make np None in
    let writer_of k =
      match pass_writer.(k) with
      | Some a -> a
      | None ->
          let p = plan.Plan.passes.(k) in
          let a = Array.make n (-1) in
          let addrs = Plan.iter_addresses p in
          for w = 0 to workers - 1 do
            List.iter
              (fun (lo, hi) ->
                for i = lo to hi - 1 do
                  let _, s = addrs i in
                  for l = 0 to p.Plan.radix - 1 do
                    a.(s l) <- w
                  done
                done)
              (worker_range ~align:(pass_align p) Block ~count:p.Plan.count
                 ~workers w)
          done;
          pass_writer.(k) <- Some a;
          a
    in
    let writers_agree j k =
      let wa = writer_of j and wb = writer_of k in
      let same = ref true in
      (try
         for q = 0 to n - 1 do
           if wa.(q) >= 0 && wb.(q) >= 0 && wa.(q) <> wb.(q) then begin
             same := false;
             raise Exit
           end
         done
       with Exit -> ());
      !same
    in
    for b = 1 to nb - 1 do
      if mask.(b) && mask.(b - 1) then begin
        let chain3 = b >= 2 && mask.(b - 2) in
        let ok =
          (not chain3) && (b + 1 = np - 1 || writers_agree (b + 1) (b - 1))
        in
        if not ok then mask.(b) <- false
      end
    done
  end;
  (* the chain-length rule may have withdrawn some elisions after their
     witnesses were captured *)
  (mask, List.rev (List.filter (fun w -> mask.(w.boundary)) !wits))

let empty_mask = [||]

let elision_mask ?(schedule = Block) ~workers (plan : Plan.t) =
  match schedule with
  | Cyclic _ -> empty_mask
  | Block -> (
      match List.assoc_opt workers plan.Plan.elision with
      | Some m -> m
      | None ->
          let m, _ = compute_elision ~workers plan in
          plan.Plan.elision <- (workers, m) :: plan.Plan.elision;
          m)

let elision_witness ~workers (plan : Plan.t) =
  let mask, wits = compute_elision ~capture:true ~workers plan in
  (* refresh the cache: the recomputed mask reflects the plan as it is
     now, which is what subsequent [prepare]s should see *)
  plan.Plan.elision <-
    (workers, mask) :: List.remove_assoc workers plan.Plan.elision;
  (mask, wits)

(* ---------------------------------------------------------------- *)
(* False-sharing check (Definition 1).  A µ-tagged parallel pass is
   false-sharing free when no µ-line of its output is written by two
   different workers.  The aligned Block partition guarantees this for
   the paper's smp(p, µ)-conform plans at their native worker count; the
   check walks the materialized scatters and counts the lines that are
   nevertheless shared — e.g. when a plan generated for p processors is
   run with a different worker count. *)

let misaligned_counter = "par_exec.misaligned_split"

let count_misaligned ~workers (plan : Plan.t) =
  let shared = ref 0 in
  if workers > 1 then
    Array.iter
      (fun (p : Plan.pass) ->
        match (p.Plan.par, p.Plan.mu) with
        | Some _, Some mu when mu > 1 ->
            let nlines = ((plan.Plan.n - 1) / mu) + 1 in
            let owner = Array.make nlines (-1) in
            let addrs = Plan.iter_addresses p in
            let align = pass_align p in
            for w = 0 to workers - 1 do
              List.iter
                (fun (lo, hi) ->
                  for i = lo to hi - 1 do
                    let _, s = addrs i in
                    for l = 0 to p.Plan.radix - 1 do
                      let line = s l / mu in
                      if owner.(line) = -1 then owner.(line) <- w
                      else if owner.(line) >= 0 && owner.(line) <> w then begin
                        owner.(line) <- -2;
                        incr shared
                      end
                    done
                  done)
                (worker_range ~align Block ~count:p.Plan.count ~workers w)
            done
        | _ -> ())
      plan.Plan.passes;
  !shared

let misaligned_lines ~workers (plan : Plan.t) =
  match List.assoc_opt workers plan.Plan.misaligned with
  | Some m -> m
  | None ->
      let m = count_misaligned ~workers plan in
      plan.Plan.misaligned <- (workers, m) :: plan.Plan.misaligned;
      if m > 0 then Counters.incr ~by:m misaligned_counter;
      m

(* ---------------------------------------------------------------- *)

let run_worker_pass ctx sched p ~src ~dst ~workers w =
  match p.Plan.par with
  | Some _ ->
      List.iter
        (fun (lo, hi) -> Plan.run_pass_range ctx p ~src ~dst ~lo ~hi)
        (worker_range ~align:(pass_align p) sched ~count:p.Plan.count
           ~workers w)
  | None ->
      if w = 0 then Plan.run_pass_range ctx p ~src ~dst ~lo:0 ~hi:p.Plan.count

(* ---------------------------------------------------------------- *)
(* Prepared parallel schedules.  [prepare] bakes, once per (plan, pool),
   everything [execute] used to recompute per call: the per-worker
   iteration ranges of every pass, the elision mask and its popcount,
   the barrier and one reusable per-worker barrier context, and the
   per-worker codelet scratch.  A steady-state [execute_prepared] is
   then exactly one pool dispatch, the interior barriers, and one join
   (the barrier after the final pass is subsumed by the join). *)

type residency = [ `Auto | `On | `Off ]

(* Process-wide residency defaults, consulted by [prepare] when the
   caller passes nothing: the CLI knobs (`spiralgen run --resident ...`)
   set these instead of threading new parameters through every
   front-end. *)
let default_residency : residency ref = ref `Auto
let default_resident_idle = ref 0.25
let default_spin_limit : int option ref = ref None

(* Adaptive residency admission: pin after [pin_initial] consecutive
   dispatches without losing the pool; double the threshold (up to
   [pin_max]) each time another plan evicts us, so two plans alternating
   on one shared pool degrade to plain pooled dispatch instead of
   ping-ponging region setup/teardown. *)
let pin_initial = 3
let pin_max = 256

type prepared = {
  plan : Plan.t;
  pool : Pool.t;
  workers : int;
  schedule : schedule;
  ranges : (int * int) array array array;
      (* ranges.(k).(w): iteration ranges of worker w in pass k
         (sequential passes run wholly on worker 0). *)
  mask : bool array;
  elided : int;  (* interior barriers skipped per execution *)
  wrap_elidable : bool;
      (* static legality of eliding the barrier between consecutive
         transforms of [execute_many]; see [compute_wrap_elidable] *)
  timeout : float option;
  residency : residency;
  idle : float;  (* resident-region decay deadline, seconds *)
  spin : int option;  (* resident workers' between-call spin budget *)
  mutable region : Pool.region option;
      (* the resident region this plan currently holds on [pool], if
         any; dispatcher-thread state like everything else here *)
  mutable streak : int;  (* consecutive dispatches since last pool loss *)
  mutable pin_after : int;  (* current adaptive admission threshold *)
  mutable barrier : Barrier.t;
  mutable bctxs : Barrier.ctx array;
      (* persistent senses: reused across calls, refreshed (with the
         barrier) after any failed execution, since an abandoned wait
         leaves the arrival count and senses inconsistent *)
}

(* Wrap boundary, condition B analogue: with an even number of passes,
   job j+1's first pass scatters into tmp_a while a straggler of job j
   may still be gathering tmp_a in its last pass.  Legal without a
   barrier only if every position worker w scatters in pass 0 is
   gathered in the last pass by no worker other than w. *)
let wrap_cond_b ~workers (plan : Plan.t) =
  let np = Array.length plan.Plan.passes in
  let pk = plan.Plan.passes.(np - 1) and pk1 = plan.Plan.passes.(0) in
  let n = plan.Plan.n in
  let reader = Array.make n (-1) in
  let addrs_k = Plan.iter_addresses pk in
  let addrs_k1 = Plan.iter_addresses pk1 in
  for w = 0 to workers - 1 do
    List.iter
      (fun (lo, hi) ->
        for i = lo to hi - 1 do
          let g, _ = addrs_k i in
          for l = 0 to pk.Plan.radix - 1 do
            let gp = g l in
            if reader.(gp) = -1 then reader.(gp) <- w
            else if reader.(gp) <> w then reader.(gp) <- -2
          done
        done)
      (worker_range ~align:(pass_align pk) Block ~count:pk.Plan.count
         ~workers w)
  done;
  let ok = ref true in
  (try
     for w = 0 to workers - 1 do
       List.iter
         (fun (lo, hi) ->
           for i = lo to hi - 1 do
             let _, s = addrs_k1 i in
             for l = 0 to pk1.Plan.radix - 1 do
               let rd = reader.(s l) in
               if rd <> -1 && rd <> w then begin
                 ok := false;
                 raise Exit
               end
             done
           done)
         (worker_range ~align:(pass_align pk1) Block ~count:pk1.Plan.count
            ~workers w)
     done
   with Exit -> ());
  !ok

let compute_wrap_elidable ~schedule ~workers mask (plan : Plan.t) =
  if workers = 1 then true
  else
    match schedule with
    | Cyclic _ -> false
    | Block ->
        let np = Array.length plan.Plan.passes in
        let first = plan.Plan.passes.(0)
        and last = plan.Plan.passes.(np - 1) in
        let nb = Array.length mask in
        first.Plan.par <> None
        && last.Plan.par <> None
        (* a single-pass plan has no interior barrier left to bound the
           skew of a fast worker racing several jobs ahead *)
        && np >= 2
        (* no chained skew across the wrap boundary *)
        && (nb = 0 || ((not mask.(0)) && not mask.(nb - 1)))
        (* tmp_a is both out(pass 0) and in(pass np-1) iff np is even *)
        && (np mod 2 = 1 || wrap_cond_b ~workers plan)

let pass_ranges schedule ~workers (p : Plan.pass) =
  match p.Plan.par with
  | Some _ ->
      Array.init workers (fun w ->
          Array.of_list
            (worker_range ~align:(pass_align p) schedule ~count:p.Plan.count
               ~workers w))
  | None ->
      Array.init workers (fun w ->
          if w = 0 then [| (0, p.Plan.count) |] else [||])

let prepare pool ?(schedule = Block) ?(elide = true) ?timeout ?resident
    ?resident_idle ?spin_limit plan =
  let workers = Pool.size pool in
  let mask =
    if elide then elision_mask ~schedule ~workers plan else empty_mask
  in
  let elided = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask in
  ignore (misaligned_lines ~workers plan);
  Plan.ensure_worker_ctxs plan workers;
  (* the barrier inherits the pool's wait bound unless overridden: a
     pool configured for short timeouts (the service) must not have its
     workers stall for the 30 s barrier default when one of them dies
     mid-pass *)
  let timeout =
    match timeout with Some t -> Some t | None -> Some (Pool.timeout pool)
  in
  let residency =
    match resident with Some r -> r | None -> !default_residency
  in
  let idle =
    match resident_idle with Some s -> s | None -> !default_resident_idle
  in
  let spin =
    match spin_limit with Some _ as s -> s | None -> !default_spin_limit
  in
  let barrier = Barrier.create ?timeout ?spin_limit:spin workers in
  {
    plan;
    pool;
    workers;
    schedule;
    ranges =
      Array.map (pass_ranges schedule ~workers) plan.Plan.passes;
    mask;
    elided;
    wrap_elidable = compute_wrap_elidable ~schedule ~workers mask plan;
    timeout;
    residency;
    idle;
    spin;
    region = None;
    streak = 0;
    pin_after = pin_initial;
    barrier;
    bctxs =
      Array.init workers (fun w ->
          let c = Barrier.make_ctx barrier in
          Barrier.set_worker c w;
          c);
  }

let refresh t =
  t.barrier <- Barrier.create ?timeout:t.timeout ?spin_limit:t.spin t.workers;
  t.bctxs <-
    Array.init t.workers (fun w ->
        let c = Barrier.make_ctx t.barrier in
        Barrier.set_worker c w;
        c)

(* ---------------------------------------------------------------- *)
(* Three-tier dispatch: resident region → pooled run → (in the
   supervised wrappers) sequential fallback.  [dispatch] is the single
   entry every prepared execution goes through. *)

let region_teardown t =
  match t.region with
  | Some r ->
      Pool.region_end r;
      t.region <- None;
      t.streak <- 0
  | None -> ()

let release t = region_teardown t

(* Another plan's region holds our pool (a live region owns the pool's
   busy flag): retire it so this dispatch can proceed.  The evicted plan
   discovers the loss on its next dispatch and backs off. *)
let evict_foreign t =
  match Pool.resident t.pool with
  | Some r ->
      Pool.region_end r;
      Counters.incr "pool.region_evict"
  | None -> ()

let dispatch_cold t body =
  evict_foreign t;
  let pin =
    t.workers > 1
    &&
    match t.residency with
    | `On -> true
    | `Off -> false
    | `Auto -> t.streak >= t.pin_after
  in
  if pin then begin
    match Pool.region_begin ?spin_limit:t.spin ~idle:t.idle t.pool with
    | r ->
        t.region <- Some r;
        if not (Pool.region_run r body) then begin
          (* decayed before the first call could win the CAS (only
             plausible with a sub-millisecond idle deadline) *)
          region_teardown t;
          Pool.run t.pool body
        end
    | exception Invalid_argument _ ->
        (* lost the pool between evict and begin (or it is poisoned):
           let the pooled path raise its own diagnostics *)
        Pool.run t.pool body
  end
  else begin
    Pool.run t.pool body;
    t.streak <- t.streak + 1
  end

let dispatch t body =
  match t.region with
  | Some r ->
      if not (Pool.region_run r body) then begin
        (* region over: idle decay (rended still false) or eviction by
           another plan sharing the pool *)
        let evicted = Pool.region_ended r in
        region_teardown t;
        if evicted then t.pin_after <- min pin_max (t.pin_after * 2);
        dispatch_cold t body
      end
  | None -> dispatch_cold t body

let check_vec name plan v =
  if Array.length v <> 2 * plan.Plan.n then
    invalid_arg (name ^ ": wrong vector length")

let run_ranges ctx p ranges ~src ~dst =
  for r = 0 to Array.length ranges - 1 do
    let lo, hi = ranges.(r) in
    Plan.run_pass_range ctx p ~src ~dst ~lo ~hi
  done

let execute_prepared t x y =
  let plan = t.plan in
  check_vec "Par_exec.execute" plan x;
  check_vec "Par_exec.execute" plan y;
  if t.elided > 0 then Counters.incr ~by:t.elided "par_exec.barrier_elided";
  let np = Array.length plan.Plan.passes in
  let nb = Array.length t.mask in
  try
    dispatch t (fun w ->
        let bctx = t.bctxs.(w) in
        let ctx = Plan.worker_ctx plan w in
        for k = 0 to np - 1 do
          Fault.check "par_exec.pass";
          let src = Plan.pass_src plan ~x k
          and dst = Plan.pass_dst plan ~y k in
          Trace.begin_span w Trace.cat_pass k;
          run_ranges ctx plan.Plan.passes.(k) t.ranges.(k).(w) ~src ~dst;
          Trace.end_span w Trace.cat_pass k;
          (* no barrier after the final pass: the pool/region join is
             the rendezvous that releases the caller *)
          if k < np - 1 then
            if k >= nb || not t.mask.(k) then Barrier.wait t.barrier bctx
            else Trace.mark w Trace.cat_elided k
        done)
  with e ->
    (* any failure strands arrival counts and senses mid-phase; drop
       residency too so a heal (which needs the pool's busy flag clear)
       can rebuild the workers *)
    region_teardown t;
    refresh t;
    raise e

let execute_many t jobs =
  let njobs = Array.length jobs in
  if njobs > 0 then begin
    let plan = t.plan in
    Array.iter
      (fun (x, y) ->
        check_vec "Par_exec.execute_many" plan x;
        check_vec "Par_exec.execute_many" plan y)
      jobs;
    (* Decide each wrap boundary up front (all workers must agree): the
       static analysis covers the plan's internal buffers; chained user
       buffers (job j's output feeding job j+1, or re-used inputs) are
       caught by physical equality. *)
    let wrap_elide =
      Array.init (njobs - 1) (fun j ->
          let x0, y0 = jobs.(j) and x1, y1 = jobs.(j + 1) in
          ignore x0;
          (* chained user buffers (job j's output feeding j+1's input, or
             the reverse) reintroduce cross-job dependences the static
             analysis cannot see; re-using the same (x, y) pair across
             jobs is fine — same pass, same partition, so cross-worker
             write sets stay disjoint *)
          t.wrap_elidable && x1 != y0 && y1 != x0)
    in
    let wraps =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 wrap_elide
    in
    let elided = (t.elided * njobs) + wraps in
    if elided > 0 then Counters.incr ~by:elided "par_exec.barrier_elided";
    let np = Array.length plan.Plan.passes in
    let nb = Array.length t.mask in
    try
      dispatch t (fun w ->
          let bctx = t.bctxs.(w) in
          let ctx = Plan.worker_ctx plan w in
          for j = 0 to njobs - 1 do
            let x, y = jobs.(j) in
            for k = 0 to np - 1 do
              Fault.check "par_exec.pass";
              let src = Plan.pass_src plan ~x k
              and dst = Plan.pass_dst plan ~y k in
              Trace.begin_span w Trace.cat_pass k;
              run_ranges ctx plan.Plan.passes.(k) t.ranges.(k).(w) ~src ~dst;
              Trace.end_span w Trace.cat_pass k;
              if k < np - 1 then begin
                if k >= nb || not t.mask.(k) then Barrier.wait t.barrier bctx
                else Trace.mark w Trace.cat_elided k
              end
              else if j < njobs - 1 then
                if wrap_elide.(j) then Trace.mark w Trace.cat_elided k
                else Barrier.wait t.barrier bctx
            done
          done)
    with e ->
      region_teardown t;
      refresh t;
      raise e
  end

(* Failures the supervised executor can recover from: worker exceptions
   (including injected faults and barrier timeouts recorded per worker)
   and pool-level deadlocks from dead or stalled domains.  Anything else
   — Out_of_memory, programming errors in [execute] itself — propagates. *)
let recoverable = function
  | Pool.Worker_errors _ | Pool.Deadlock _ | Barrier.Timeout _ -> true
  | _ -> false

let heal_if_needed pool =
  if not (Pool.healthy pool) then try Pool.heal pool with _ -> ()

let execute_safe_prepared t x y =
  try execute_prepared t x y
  with e when recoverable e -> (
    Counters.incr "par_exec.retry";
    heal_if_needed t.pool;
    try execute_prepared t x y
    with e when recoverable e ->
      heal_if_needed t.pool;
      (* Sequential execution recomputes every pass over its full range
         from the original input, so partial writes by the failed
         parallel attempts cannot leak into the result. *)
      Counters.incr "par_exec.sequential_fallback";
      Trace.mark 0 Trace.cat_fallback 0;
      Plan.execute t.plan x y)

let execute_many_safe t jobs =
  try execute_many t jobs
  with e when recoverable e -> (
    Counters.incr "par_exec.retry";
    heal_if_needed t.pool;
    try execute_many t jobs
    with e when recoverable e ->
      heal_if_needed t.pool;
      Counters.incr "par_exec.sequential_fallback";
      Trace.mark 0 Trace.cat_fallback 0;
      Array.iter (fun (x, y) -> Plan.execute t.plan x y) jobs)

(* Compatibility entry points: prepare per call (the schedule pieces are
   cached on the plan, so this costs one barrier and a few arrays). *)

let execute pool ?schedule ?elide ?timeout plan x y =
  execute_prepared (prepare pool ?schedule ?elide ?timeout plan) x y

let execute_safe pool ?schedule ?elide ?timeout plan x y =
  execute_safe_prepared (prepare pool ?schedule ?elide ?timeout plan) x y

let execute_fork_join ~p ?(schedule = Block) ?(elide = true) plan x y =
  if p < 1 then invalid_arg "Par_exec.execute_fork_join: p >= 1";
  let mask =
    if elide then elision_mask ~schedule ~workers:p plan else empty_mask
  in
  let np = Array.length plan.Plan.passes in
  Plan.ensure_worker_ctxs plan p;
  let k = ref 0 in
  while !k < np do
    let pass = plan.Plan.passes.(!k) in
    match pass.Plan.par with
    | None ->
        let src = Plan.pass_src plan ~x !k
        and dst = Plan.pass_dst plan ~y !k in
        Plan.run_pass_range (Plan.worker_ctx plan 0) pass ~src ~dst ~lo:0
          ~hi:pass.Plan.count;
        incr k
    | Some _ ->
        (* OpenMP-style parallel region: spawn, work, join.  Consecutive
           parallel passes joined by an elidable boundary share one
           region, saving a spawn/join cycle per elision. *)
        let k0 = !k in
        let last = ref k0 in
        while
          !last + 1 < np
          && (match plan.Plan.passes.(!last + 1).Plan.par with
             | Some _ -> true
             | None -> false)
          && !last < Array.length mask
          && mask.(!last)
        do
          incr last
        done;
        let k1 = !last in
        let work w =
          let ctx = Plan.worker_ctx plan w in
          for j = k0 to k1 do
            let src = Plan.pass_src plan ~x j
            and dst = Plan.pass_dst plan ~y j in
            run_worker_pass ctx schedule plan.Plan.passes.(j) ~src ~dst
              ~workers:p w
          done
        in
        let domains =
          Array.init (p - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
        in
        work 0;
        Array.iter Domain.join domains;
        k := k1 + 1
  done
