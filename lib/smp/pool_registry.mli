(** Process-wide refcounted registry of worker pools: one pool per
    worker count, shared by every plan that needs [p] workers.

    Before the registry each plan owned a private pool, so planning ten
    transforms spawned ten pools' worth of domains and destroyed them
    again.  Acquiring through the registry pays domain spawn once per
    worker count for the whole process; released pools stay parked (idle
    workers wait on the {!Spinwait} eventcount, no CPU) and are revived
    by the next acquire.  Reuses and creations are counted under
    ["pool_registry.reuse"] and ["pool_registry.create"]
    ({!Spiral_util.Counters}). *)

val acquire : ?timeout:float -> int -> Pool.t
(** [acquire p] returns the shared pool with [p] workers, creating it on
    first use and bumping its reference count.  [timeout] (seconds)
    overrides the pool's run timeout when given — the pool is shared, so
    the last setting wins.

    Never hands out a stopped pool: the refcount is bumped inside the
    same critical section that {!clear} shuts idle pools down in, so an
    acquire racing a clear either wins the entry (then clear skips it —
    refs > 0) or misses the table and creates a fresh pool; and a cached
    pool that was shut down behind the registry's back is replaced with
    a fresh one (counted under ["pool_registry.replaced"]).
    @raise Invalid_argument if [p < 1]. *)

val release : Pool.t -> unit
(** Drop one reference.  The pool is {e not} shut down when the count
    reaches zero — it idles in the registry for the next {!acquire}.
    Releasing a pool that was not acquired from the registry is a
    no-op. *)

val stats : unit -> (int * int) list
(** Live registry entries as [(workers, refs)] pairs, sorted by worker
    count — zero-ref entries are idle pools kept warm for reuse. *)

val heal_sick : unit -> int
(** Heal every registered pool that is unhealthy (poisoned or with dead
    workers) and not shut down; returns the number healed.  Pools that
    are busy mid-run are skipped (their own supervisor recovers them).
    The service calls this after a faulted request so one tenant's crash
    cannot leave a poisoned pool behind for the others. *)

val clear : unit -> unit
(** Shut down and remove every idle (zero-reference) pool.  Pools still
    referenced by live plans are left untouched.  Safe against concurrent
    {!acquire} (see there). *)
