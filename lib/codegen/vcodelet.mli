(** Planar (split re/im) codelets — the OCaml lowering target of
    {!Spiral_rewrite.Vector_rules.vectorize}d formulas.

    Buffers hold n complex elements as one float array of length 2n with
    the real plane at [0, n) and the imaginary plane at [n, 2n); entry
    points take the plane offset [im] (= n) in place of the interleaved
    path's ×2 index scaling.  The blocked entries process [lanes]
    consecutive pass iterations per call — the materialized ν-way vector
    block of a [vec(ν)]-tagged pass — with the inner radices (2 and 4)
    fully unrolled at 2 and 4 lanes.

    Instances are stateless and cached per (kernel, lanes); cloned plans
    share them exactly like interleaved {!Codelet.t} kernels. *)

type t = {
  radix : int;
  lanes : int;  (** Iterations per [blk] call; 1 = scalar planar. *)
  name : string;
  s1 : Codelet.scratch -> int -> float array -> int -> int -> float array -> int -> int -> unit;
      (** [s1 cs im src gb gl dst sb sl]: one iteration; element [l] reads
          re [src.(gb + l*gl)] and im [src.(im + gb + l*gl)], writes at
          [sb + l*sl] likewise. *)
  s1_tw :
    Codelet.scratch -> int -> float array -> int -> int -> float array ->
    int -> int -> float array -> int -> unit;
      (** As [s1] plus an interleaved twiddle table: element [l] is scaled
          on load by [tw.(2*(t0+l))] + i·[tw.(2*(t0+l)+1)]. *)
  blk :
    Codelet.scratch -> int -> float array -> int -> int -> int ->
    float array -> int -> int -> int -> unit;
      (** [blk cs im src gb gl gv dst sb sl sv]: [lanes] iterations; lane
          [v] element [l] reads [gb + l*gl + v*gv] and writes
          [sb + l*sl + v*sv]. *)
  blk_tw :
    Codelet.scratch -> int -> float array -> int -> int -> int ->
    float array -> int -> int -> int -> float array -> int -> unit;
      (** As [blk]; lane [v] element [l] uses twiddle index
          [t0 + v*radix + l]. *)
  ix1 :
    Codelet.scratch -> int -> float array -> int array -> int ->
    float array -> int array -> int -> unit;
      (** Indexed addressing: element [l] reads complex index
          [gidx.(gb + l)], writes [sidx.(sb + l)]. *)
  ix1_tw :
    Codelet.scratch -> int -> float array -> int array -> int ->
    float array -> int array -> int -> float array -> int -> unit;
}

val get : lanes:int -> Codelet.t -> t
(** The planar counterpart of an interleaved kernel at the given lane
    count.  Straight-line bodies for radices 1/2/3/4/8 (with the 2- and
    4-lane blocks of radices 2 and 4 fully unrolled), a planar
    dense-matrix fallback otherwise.  Cached; thread-safe. *)
