(** Codelets: straight-line kernels for small transforms, the base cases of
    compiled plans (the analogue of FFTW's codelets / Spiral's fully
    unrolled basic blocks).

    A codelet of radix [r] computes an [r]-point transform.  The entry
    points differ only in addressing: strided (affine index functions, the
    fast path), unit-strided (the dominant contiguous [gl = sl = 1] case,
    monomorphized so the inner loop is straight-line loads/stores), or
    indexed (precomputed index tables) — each optionally with a twiddle
    table applied to the inputs on load ("load scale").  Complex data is
    interleaved: element [k] occupies [x.(2k), x.(2k+1)].

    Every entry point takes a {!scratch} record as its first argument and
    performs no allocation: callers preallocate one scratch per worker
    ({!make_scratch}) and reuse it across calls.  A scratch must not be
    shared between concurrently executing domains. *)

type scratch = {
  stage : float array;
  out : float array;
  h1 : float array;
  h2 : float array;
}
(** Preallocated per-worker working storage (each buffer holds
    [max_radix] complex elements).  [stage] receives gathered/
    twiddle-scaled inputs, [out] the result of generic kernels; [h1]/[h2]
    are the half-transform buffers of the recursive dft32/dft16 kernels. *)

val make_scratch : unit -> scratch

type t = {
  radix : int;
  flops : int;  (** Real additions + multiplications per invocation. *)
  name : string;
  strided :
    scratch -> float array -> int -> int -> float array -> int -> int -> unit;
      (** [strided cs src g0 gl dst s0 sl]: reads element [l] at complex
          index [g0 + l*gl] of [src], writes at [s0 + l*sl] of [dst]. *)
  strided_u : scratch -> float array -> int -> float array -> int -> unit;
      (** [strided_u cs src g0 dst s0] ≡ [strided cs src g0 1 dst s0 1]:
          the contiguous fast path. *)
  strided_tw :
    scratch -> float array -> int -> int -> float array -> int -> int ->
    float array -> int -> unit;
      (** As [strided] with inputs multiplied by twiddles: element [l] is
          scaled by the complex number at [tw.(2*(t0+l)), tw.(2*(t0+l)+1)]. *)
  strided_u_tw :
    scratch -> float array -> int -> float array -> int ->
    float array -> int -> unit;
      (** Contiguous [strided_tw]. *)
  indexed :
    scratch -> float array -> int array -> int -> float array -> int array ->
    int -> unit;
      (** [indexed cs src gidx gb dst sidx sb]: element [l] read at complex
          index [gidx.(gb + l)], written at [sidx.(sb + l)]. *)
  indexed_tw :
    scratch -> float array -> int array -> int -> float array -> int array ->
    int -> float array -> int -> unit;
}

val dft : int -> t
(** [dft r] is the DFT codelet of size [r]: unrolled kernels for
    r ∈ {1, 2, 3, 4, 8, 16, 32}, a precomputed dense matrix-vector kernel
    otherwise.  Results are cached. *)

val wht : int -> t
(** Walsh-Hadamard codelet, [r] a power of two (in-register butterflies). *)

val copy : int -> t
(** Identity "codelet" of size [r] — used for explicit permutation or
    scaling passes, where all the work is in the addressing. *)

val max_radix : int
(** Largest supported codelet size (scratch buffers are sized to it). *)

val make :
  radix:int -> flops:int -> name:string ->
  (float array -> float array -> unit) -> t
(** [make ~radix ~flops ~name compute] builds all entry points from a
    local kernel [compute inp out] on contiguous length-[2*radix] buffers
    (staged through the caller's scratch, so still allocation-free).
    Used for custom transforms; the DFT/WHT codelets use fused addressing
    on the hot paths instead.  [radix] must not exceed {!max_radix}. *)

val legacy : t -> t
(** The pre-optimization implementation of a built-in codelet (per-call
    scratch allocation, closure-based addressing) behind the current
    interface: the measured baseline for the wall-clock benchmark
    ablation and a bit-for-bit reference in tests.  Custom codelets are
    returned unchanged.  Not for production plans. *)
