(** Codelets: straight-line kernels for small transforms, the base cases of
    compiled plans (the analogue of FFTW's codelets / Spiral's fully
    unrolled basic blocks).

    A codelet of radix [r] computes an [r]-point transform.  The four entry
    points differ only in addressing: strided (affine index functions, the
    fast path) or indexed (precomputed index tables), each optionally with a
    twiddle table applied to the inputs on load ("load scale").  Complex
    data is interleaved: element [k] occupies [x.(2k), x.(2k+1)]. *)

type t = {
  radix : int;
  flops : int;  (** Real additions + multiplications per invocation. *)
  name : string;
  strided : float array -> int -> int -> float array -> int -> int -> unit;
      (** [strided src g0 gl dst s0 sl]: reads element [l] at complex index
          [g0 + l*gl] of [src], writes at [s0 + l*sl] of [dst]. *)
  strided_tw :
    float array -> int -> int -> float array -> int -> int ->
    float array -> int -> unit;
      (** As [strided] with inputs multiplied by twiddles: element [l] is
          scaled by the complex number at [tw.(2*(t0+l)), tw.(2*(t0+l)+1)]. *)
  indexed :
    float array -> int array -> int -> float array -> int array -> int -> unit;
      (** [indexed src gidx gb dst sidx sb]: element [l] read at complex
          index [gidx.(gb + l)], written at [sidx.(sb + l)]. *)
  indexed_tw :
    float array -> int array -> int -> float array -> int array -> int ->
    float array -> int -> unit;
}

val dft : int -> t
(** [dft r] is the DFT codelet of size [r]: unrolled kernels for
    r ∈ {1, 2, 3, 4, 5, 8, 16}, a precomputed dense matrix-vector kernel
    otherwise.  Results are cached. *)

val wht : int -> t
(** Walsh-Hadamard codelet, [r] a power of two (in-register butterflies). *)

val copy : int -> t
(** Identity "codelet" of size [r] — used for explicit permutation or
    scaling passes, where all the work is in the addressing. *)

val max_radix : int
(** Largest supported codelet size. *)

val make :
  radix:int -> flops:int -> name:string ->
  (float array -> float array -> unit) -> t
(** [make ~radix ~flops ~name compute] builds all four entry points from a
    local kernel [compute inp out] on contiguous length-[2*radix] buffers.
    Used for custom transforms; the DFT/WHT codelets use fused addressing
    on the hot paths instead. *)
