open Spiral_util

let max_n = 1 lsl 14

let buf_add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* Codelet kernel bodies: contiguous local in/out of 2r doubles.       *)

let kernel_decl name =
  Printf.sprintf "static void %s_kernel(const double *in, double *out)" name

let unrolled_kernels =
  [
    ( "dft1",
      "{\n  out[0] = in[0]; out[1] = in[1];\n}" );
    ( "dft2",
      "{\n\
      \  out[0] = in[0] + in[2]; out[1] = in[1] + in[3];\n\
      \  out[2] = in[0] - in[2]; out[3] = in[1] - in[3];\n\
       }" );
    ( "dft3",
      "{\n\
      \  const double s3 = 0.86602540378443864676;\n\
      \  double tr = in[2] + in[4], ti = in[3] + in[5];\n\
      \  double ur = in[2] - in[4], ui = in[3] - in[5];\n\
      \  double ar = in[0] - 0.5*tr, ai = in[1] - 0.5*ti;\n\
      \  double br = s3*ur, bi = s3*ui;\n\
      \  out[0] = in[0] + tr; out[1] = in[1] + ti;\n\
      \  out[2] = ar + bi;    out[3] = ai - br;\n\
      \  out[4] = ar - bi;    out[5] = ai + br;\n\
       }" );
    ( "dft4",
      "{\n\
      \  double t0r = in[0] + in[4], t0i = in[1] + in[5];\n\
      \  double t1r = in[0] - in[4], t1i = in[1] - in[5];\n\
      \  double t2r = in[2] + in[6], t2i = in[3] + in[7];\n\
      \  double t3r = in[2] - in[6], t3i = in[3] - in[7];\n\
      \  out[0] = t0r + t2r; out[1] = t0i + t2i;\n\
      \  out[4] = t0r - t2r; out[5] = t0i - t2i;\n\
      \  out[2] = t1r + t3i; out[3] = t1i - t3r;\n\
      \  out[6] = t1r - t3i; out[7] = t1i + t3r;\n\
       }" );
    ( "dft8",
      "{\n\
      \  const double s = 0.70710678118654752440;\n\
      \  double t0r = in[0] + in[8],  t0i = in[1] + in[9];\n\
      \  double t1r = in[0] - in[8],  t1i = in[1] - in[9];\n\
      \  double t2r = in[4] + in[12], t2i = in[5] + in[13];\n\
      \  double t3r = in[4] - in[12], t3i = in[5] - in[13];\n\
      \  double e0r = t0r + t2r, e0i = t0i + t2i;\n\
      \  double e2r = t0r - t2r, e2i = t0i - t2i;\n\
      \  double e1r = t1r + t3i, e1i = t1i - t3r;\n\
      \  double e3r = t1r - t3i, e3i = t1i + t3r;\n\
      \  double u0r = in[2] + in[10],  u0i = in[3] + in[11];\n\
      \  double u1r = in[2] - in[10],  u1i = in[3] - in[11];\n\
      \  double u2r = in[6] + in[14],  u2i = in[7] + in[15];\n\
      \  double u3r = in[6] - in[14],  u3i = in[7] - in[15];\n\
      \  double f0r = u0r + u2r, f0i = u0i + u2i;\n\
      \  double f2r = u0r - u2r, f2i = u0i - u2i;\n\
      \  double f1r = u1r + u3i, f1i = u1i - u3r;\n\
      \  double f3r = u1r - u3i, f3i = u1i + u3r;\n\
      \  out[0]  = e0r + f0r; out[1]  = e0i + f0i;\n\
      \  out[8]  = e0r - f0r; out[9]  = e0i - f0i;\n\
      \  double w1r = s*(f1r + f1i), w1i = s*(f1i - f1r);\n\
      \  out[2]  = e1r + w1r; out[3]  = e1i + w1i;\n\
      \  out[10] = e1r - w1r; out[11] = e1i - w1i;\n\
      \  out[4]  = e2r + f2i; out[5]  = e2i - f2r;\n\
      \  out[12] = e2r - f2i; out[13] = e2i + f2r;\n\
      \  double w3r = s*(f3i - f3r), w3i = -s*(f3r + f3i);\n\
      \  out[6]  = e3r + w3r; out[7]  = e3i + w3i;\n\
      \  out[14] = e3r - w3r; out[15] = e3i - w3i;\n\
       }" );
  ]

(* The dense matrix for generic codelets ("dftN_generic", "whtN"). *)
let kernel_matrix name radix =
  if String.length name >= 3 && String.sub name 0 3 = "wht" then
    let rec wht n =
      if n = 1 then [| [| Complex.one |] |]
      else
        let s = wht (n / 2) in
        Cmatrix.kronecker
          [| [| Complex.one; Complex.one |];
             [| Complex.one; { Complex.re = -1.0; im = 0.0 } |] |]
          s
    in
    Some (wht radix)
  else if String.length name >= 4 && String.sub name 0 4 = "copy" then None
  else
    (* generic dft *)
    Some (Cmatrix.init radix radix (fun k l -> Twiddle.omega_pow ~n:radix ~k ~l))

let emit_mat_table b name (mat : Cmatrix.t) radix =
  buf_add b
    (Printf.sprintf "static const double mat_%s[%d] = {\n" name
       (2 * radix * radix));
  for k = 0 to radix - 1 do
    buf_add b "  ";
    for l = 0 to radix - 1 do
      let (z : Complex.t) = mat.(k).(l) in
      buf_add b (Printf.sprintf "%.17g, %.17g, " z.re z.im)
    done;
    buf_add b "\n"
  done;
  buf_add b "};\n"

let emit_generic_kernel ?(with_mat = true) b name radix =
  match kernel_matrix name radix with
  | None ->
      buf_add b
        (Printf.sprintf
           "%s {\n  for (int l = 0; l < %d; ++l) { out[2*l] = in[2*l]; \
            out[2*l+1] = in[2*l+1]; }\n}\n\n"
           (kernel_decl name) radix)
  | Some mat ->
      if with_mat then emit_mat_table b name mat radix;
      buf_add b
        (Printf.sprintf
           "%s {\n\
           \  for (int k = 0; k < %d; ++k) {\n\
           \    double ar = 0.0, ai = 0.0;\n\
           \    for (int l = 0; l < %d; ++l) {\n\
           \      double wr = mat_%s[2*(k*%d + l)], wi = mat_%s[2*(k*%d + l)+1];\n\
           \      ar += wr*in[2*l] - wi*in[2*l+1];\n\
           \      ai += wr*in[2*l+1] + wi*in[2*l];\n\
           \    }\n\
           \    out[2*k] = ar; out[2*k+1] = ai;\n\
           \  }\n\
            }\n\n"
           (kernel_decl name) radix radix name radix name radix)

let emit_kernel ?with_mat b name radix =
  match List.assoc_opt name unrolled_kernels with
  | Some body -> buf_add b (Printf.sprintf "%s %s\n\n" (kernel_decl name) body)
  | None -> emit_generic_kernel ?with_mat b name radix

(* ------------------------------------------------------------------ *)
(* SIMD backend.  A vector [vd] holds VL complex elements as 2·VL
   interleaved doubles; every ISA provides the same small macro layer
   (vld/vst/vadd/vsub/vmul plus the complex shuffles vswap/vdupre/
   vdupim/vaddsub), and the kernels and pass bodies are emitted once in
   terms of it.  SSE2 and NEON pack one complex per vector (re and im
   still move in one op); AVX2 and the GCC vector-extension fallback
   pack two. *)

type simd = [ `SSE2 | `AVX2 | `NEON | `Generic ]

let simd_vl : simd -> int = function
  | `AVX2 | `Generic -> 2
  | `SSE2 | `NEON -> 1

let simd_label : simd -> string = function
  | `SSE2 -> "SSE2"
  | `AVX2 -> "AVX2"
  | `NEON -> "NEON"
  | `Generic -> "generic vector_size"

let simd_include : simd -> string = function
  | `SSE2 -> "#include <emmintrin.h>\n"
  | `AVX2 -> "#include <immintrin.h>\n"
  | `NEON -> "#include <arm_neon.h>\n"
  | `Generic -> ""

(* The per-ISA layer.  vaddsub(a,b) = (a0-b0, a1+b1, ...) per complex;
   vdupre/vdupim broadcast one component across its complex slot. *)
let simd_prelude : simd -> string = function
  | `AVX2 ->
      "typedef __m256d vd;                 /* 2 complexes */\n\
       #define vld(p)     _mm256_loadu_pd(p)\n\
       #define vst(p, a)  _mm256_storeu_pd(p, a)\n\
       #define vadd       _mm256_add_pd\n\
       #define vsub       _mm256_sub_pd\n\
       #define vmul       _mm256_mul_pd\n\
       #define vswap(a)   _mm256_permute_pd(a, 0x5)\n\
       #define vdupre(a)  _mm256_movedup_pd(a)\n\
       #define vdupim(a)  _mm256_permute_pd(a, 0xF)\n\
       #define vaddsub    _mm256_addsub_pd\n\
       #define vzero()    _mm256_setzero_pd()\n\
       #define vbcastd(c) _mm256_set1_pd(c)\n"
  | `SSE2 ->
      "typedef __m128d vd;                 /* 1 complex */\n\
       #define vld(p)     _mm_loadu_pd(p)\n\
       #define vst(p, a)  _mm_storeu_pd(p, a)\n\
       #define vadd       _mm_add_pd\n\
       #define vsub       _mm_sub_pd\n\
       #define vmul       _mm_mul_pd\n\
       #define vswap(a)   _mm_shuffle_pd(a, a, 1)\n\
       #define vdupre(a)  _mm_unpacklo_pd(a, a)\n\
       #define vdupim(a)  _mm_unpackhi_pd(a, a)\n\
       /* SSE2 has no addsub (SSE3); emulate with a sign flip */\n\
       #define vaddsub(a, b) vadd(a, vmul(b, _mm_setr_pd(-1.0, 1.0)))\n\
       #define vzero()    _mm_setzero_pd()\n\
       #define vbcastd(c) _mm_set1_pd(c)\n"
  | `NEON ->
      "typedef float64x2_t vd;             /* 1 complex */\n\
       #define vld(p)     vld1q_f64(p)\n\
       #define vst(p, a)  vst1q_f64(p, a)\n\
       #define vadd       vaddq_f64\n\
       #define vsub       vsubq_f64\n\
       #define vmul       vmulq_f64\n\
       #define vswap(a)   vextq_f64(a, a, 1)\n\
       #define vdupre(a)  vdupq_laneq_f64(a, 0)\n\
       #define vdupim(a)  vdupq_laneq_f64(a, 1)\n\
       static inline vd v_asign(void)\n\
       { const double s[2] = { -1.0, 1.0 }; return vld1q_f64(s); }\n\
       #define vaddsub(a, b) vaddq_f64(a, vmulq_f64(b, v_asign()))\n\
       #define vzero()    vdupq_n_f64(0.0)\n\
       #define vbcastd(c) vdupq_n_f64(c)\n"
  | `Generic ->
      "typedef double vd __attribute__((vector_size(32), aligned(8)));\n\
       typedef long long vm_ __attribute__((vector_size(32)));\n\
       static inline vd vld(const double *p) { return *(const vd *)p; }\n\
       static inline void vst(double *p, vd a) { *(vd *)p = a; }\n\
       #define vadd(a, b) ((a) + (b))\n\
       #define vsub(a, b) ((a) - (b))\n\
       #define vmul(a, b) ((a) * (b))\n\
       #define vswap(a)   __builtin_shuffle(a, (vm_){1, 0, 3, 2})\n\
       #define vdupre(a)  __builtin_shuffle(a, (vm_){0, 0, 2, 2})\n\
       #define vdupim(a)  __builtin_shuffle(a, (vm_){1, 1, 3, 3})\n\
       #define vaddsub(a, b) ((a) + (b) * (vd){-1.0, 1.0, -1.0, 1.0})\n\
       static inline vd vzero(void) { return (vd){0.0, 0.0, 0.0, 0.0}; }\n\
       static inline vd vbcastd(double c) { return (vd){c, c, c, c}; }\n"

(* ISA-independent complex helpers on top of the layer:
     vmulmi(z) = -i·z              (the in-register quarter rotation)
     vcmul(z, w)   = z·w, w a vector of per-lane twiddles
     vcmulc(z, wr, wi) = z·(wr + i·wi), a constant twiddle *)
let simd_helpers =
  "static inline vd vmulmi(vd a) { return vswap(vaddsub(vzero(), a)); }\n\
   static inline vd vscale(vd a, double c) { return vmul(a, vbcastd(c)); }\n\
   static inline vd vcmul(vd z, vd w)\n\
   { return vaddsub(vmul(z, vdupre(w)), vmul(vswap(z), vdupim(w))); }\n\
   static inline vd vcmulc(vd z, double wr, double wi)\n\
   { return vaddsub(vscale(z, wr), vscale(vswap(z), wi)); }\n\n"

let vkernel_decl name =
  Printf.sprintf "static void %s_vkernel(const vd *in, vd *out)" name

(* Vector codelet bodies: the scalar unrolled kernels transliterated to
   whole-complex ops; the twiddle-free rotations become vmulmi. *)
let unrolled_vkernels =
  [
    ("dft1", "{\n  out[0] = in[0];\n}");
    ( "dft2",
      "{\n\
      \  out[0] = vadd(in[0], in[1]);\n\
      \  out[1] = vsub(in[0], in[1]);\n\
       }" );
    ( "dft3",
      "{\n\
      \  const double s3 = 0.86602540378443864676;\n\
      \  vd t = vadd(in[1], in[2]);\n\
      \  vd u = vsub(in[1], in[2]);\n\
      \  vd a = vsub(in[0], vscale(t, 0.5));\n\
      \  vd bm = vmulmi(vscale(u, s3));\n\
      \  out[0] = vadd(in[0], t);\n\
      \  out[1] = vadd(a, bm);\n\
      \  out[2] = vsub(a, bm);\n\
       }" );
    ( "dft4",
      "{\n\
      \  vd t0 = vadd(in[0], in[2]), t1 = vsub(in[0], in[2]);\n\
      \  vd t2 = vadd(in[1], in[3]), t3 = vsub(in[1], in[3]);\n\
      \  vd t3m = vmulmi(t3);\n\
      \  out[0] = vadd(t0, t2); out[2] = vsub(t0, t2);\n\
      \  out[1] = vadd(t1, t3m); out[3] = vsub(t1, t3m);\n\
       }" );
    ( "dft8",
      "{\n\
      \  const double s = 0.70710678118654752440;\n\
      \  vd t0 = vadd(in[0], in[4]), t1 = vsub(in[0], in[4]);\n\
      \  vd t2 = vadd(in[2], in[6]), t3 = vsub(in[2], in[6]);\n\
      \  vd t3m = vmulmi(t3);\n\
      \  vd e0 = vadd(t0, t2), e2 = vsub(t0, t2);\n\
      \  vd e1 = vadd(t1, t3m), e3 = vsub(t1, t3m);\n\
      \  vd u0 = vadd(in[1], in[5]), u1 = vsub(in[1], in[5]);\n\
      \  vd u2 = vadd(in[3], in[7]), u3 = vsub(in[3], in[7]);\n\
      \  vd u3m = vmulmi(u3);\n\
      \  vd f0 = vadd(u0, u2), f2 = vsub(u0, u2);\n\
      \  vd f1 = vadd(u1, u3m), f3 = vsub(u1, u3m);\n\
      \  out[0] = vadd(e0, f0); out[4] = vsub(e0, f0);\n\
      \  vd w1 = vscale(vadd(f1, vmulmi(f1)), s);\n\
      \  out[1] = vadd(e1, w1); out[5] = vsub(e1, w1);\n\
      \  vd f2m = vmulmi(f2);\n\
      \  out[2] = vadd(e2, f2m); out[6] = vsub(e2, f2m);\n\
      \  vd w3 = vscale(vsub(vmulmi(f3), f3), s);\n\
      \  out[3] = vadd(e3, w3); out[7] = vsub(e3, w3);\n\
       }" );
  ]

let emit_vkernel b name radix =
  match List.assoc_opt name unrolled_vkernels with
  | Some body -> buf_add b (Printf.sprintf "%s %s\n\n" (vkernel_decl name) body)
  | None -> (
      match kernel_matrix name radix with
      | None ->
          buf_add b
            (Printf.sprintf "%s {\n  for (int l = 0; l < %d; ++l) out[l] = in[l];\n}\n\n"
               (vkernel_decl name) radix)
      | Some _ ->
          (* mat_<name> is emitted alongside the scalar kernel *)
          buf_add b
            (Printf.sprintf
               "%s {\n\
               \  for (int k = 0; k < %d; ++k) {\n\
               \    vd acc = vzero();\n\
               \    for (int l = 0; l < %d; ++l)\n\
               \      acc = vadd(acc, vcmulc(in[l], mat_%s[2*(k*%d + l)], \
                mat_%s[2*(k*%d + l)+1]));\n\
               \    out[k] = acc;\n\
               \  }\n\
                }\n\n"
               (vkernel_decl name) radix radix name radix name radix))

(* Which loop level carries the VL-wide lane block, and on which side(s)
   it is memory-contiguous.  Loop merging can put the tagged ν dimension
   at any level and at unit stride on only one side (the in-register
   shuffle stages trade contiguity between gather and scatter), so each
   pass is classified structurally:
     Both     — unit lane stride on gather and scatter: full vector
                loads and stores;
     GatherV  — unit gather stride only: vector loads/twiddle/kernel,
                lane-unpacked scalar stores;
     ScatterV — unit scatter stride only: lane-packed scalar loads,
                vector stores.
   At VL = 1 the block is one complex (2 contiguous doubles on both
   sides by layout), so every vec-tagged strided pass vectorizes as
   Both. *)
type vform = Both | GatherV | ScatterV

let vec_form ~vl (p : Plan.pass) =
  if p.vec = None then None
  else
    match p.addr with
    | Plan.Indexed _ -> None
    | Plan.Strided { exts; gstrs; sstrs; _ } ->
        let k = Array.length exts in
        if vl = 1 then Some (k - 1, Both)
        else begin
          let best = ref None in
          let rank = function Both -> 2 | GatherV | ScatterV -> 1 in
          for j = 0 to k - 1 do
            if exts.(j) mod vl = 0 then begin
              let cand =
                match (gstrs.(j) = 1, sstrs.(j) = 1) with
                | true, true -> Some Both
                | true, false -> Some GatherV
                | false, true -> Some ScatterV
                | false, false -> None
              in
              match (cand, !best) with
              | Some f, None -> best := Some (j, f)
              | Some f, Some (_, f') when rank f >= rank f' ->
                  best := Some (j, f)
              | _ -> ()
            end
          done;
          !best
        end

(* Re-index a pass twiddle table lane-major: lane [v] of block [b],
   element [l] lands at [((b*r + l)*vl + v)], so the pass loads one
   contiguous vector of per-lane twiddles per element.  Block [b]
   enumerates the iteration digits with the lane level divided by vl;
   lane [v] restores the original digit [d*vl + v]. *)
let lane_major_tw ~vl ~level ~exts ~r tw =
  if vl = 1 then tw
  else begin
    let k = Array.length exts in
    let mexts = Array.copy exts in
    mexts.(level) <- exts.(level) / vl;
    let msuf = Array.make (k + 1) 1 and osuf = Array.make (k + 1) 1 in
    for j = k - 1 downto 0 do
      msuf.(j) <- msuf.(j + 1) * mexts.(j);
      osuf.(j) <- osuf.(j + 1) * exts.(j)
    done;
    let blocks = msuf.(0) in
    let out = Array.make (2 * blocks * r * vl) 0.0 in
    for b = 0 to blocks - 1 do
      for v = 0 to vl - 1 do
        let i = ref 0 in
        for j = 0 to k - 1 do
          let d = b / msuf.(j + 1) mod mexts.(j) in
          let d = if j = level then (d * vl) + v else d in
          i := !i + (d * osuf.(j + 1))
        done;
        for l = 0 to r - 1 do
          let si = 2 * ((!i * r) + l) in
          let di = 2 * ((((b * r) + l) * vl) + v) in
          out.(di) <- tw.(si);
          out.(di + 1) <- tw.(si + 1)
        done
      done
    done;
    out
  end

(* ------------------------------------------------------------------ *)

let emit_double_table b name (a : float array) =
  buf_add b (Printf.sprintf "static const double %s[%d] = {\n" name (Array.length a));
  Array.iteri
    (fun i v ->
      buf_add b (Printf.sprintf "%.17g,%s" v (if i mod 4 = 3 then "\n" else " ")))
    a;
  buf_add b "};\n"

let emit_int_table b name (a : int array) =
  buf_add b (Printf.sprintf "static const int %s[%d] = {\n" name (Array.length a));
  Array.iteri
    (fun i v ->
      buf_add b (Printf.sprintf "%d,%s" v (if i mod 16 = 15 then "\n" else "")))
    a;
  buf_add b "};\n"

(* Flattened pass function over iterations [lo, hi). *)
let emit_pass b ~backend ~k (p : Plan.pass) =
  let r = p.radix in
  let kname = p.kernel.Codelet.name in
  (match p.addr with
  | Plan.Indexed { gidx; sidx } ->
      emit_int_table b (Printf.sprintf "gidx_p%d" k) gidx;
      emit_int_table b (Printf.sprintf "sidx_p%d" k) sidx
  | Plan.Strided _ -> ());
  (match p.tw with
  | Some tw -> emit_double_table b (Printf.sprintf "tw_p%d" k) tw
  | None -> ());
  buf_add b
    (Printf.sprintf
       "static void pass%d(const double *restrict src, double *restrict dst, \
        long lo, long hi)\n{\n"
       k);
  let omp_pragma =
    match (backend, p.par) with
    | `OpenMP, Some q ->
        Printf.sprintf "#pragma omp parallel for num_threads(%d) schedule(static)\n" q
    | _ -> ""
  in
  buf_add b omp_pragma;
  buf_add b "  for (long it = lo; it < hi; ++it) {\n";
  (* per-iteration bases *)
  (match p.addr with
  | Plan.Strided { exts; gstrs; sstrs; g0; s0; gl; _ } ->
      let kk = Array.length exts in
      buf_add b
        (Printf.sprintf "    long gb = %d, sb = %d, rem = it;\n" g0 s0);
      for j = kk - 1 downto 0 do
        buf_add b
          (Printf.sprintf
             "    { long d = rem %% %d; rem /= %d; gb += d*%dL; sb += d*%dL; }\n"
             exts.(j) exts.(j) gstrs.(j) sstrs.(j));
      done;
      buf_add b (Printf.sprintf "    double bin[%d], bout[%d];\n" (2 * r) (2 * r));
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long s = gb + (long)l*%d;\n\
           \      bin[2*l] = src[2*s]; bin[2*l+1] = src[2*s+1]; }\n"
           r gl)
  | Plan.Indexed _ ->
      buf_add b (Printf.sprintf "    double bin[%d], bout[%d];\n" (2 * r) (2 * r));
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long s = gidx_p%d[it*%d + l];\n\
           \      bin[2*l] = src[2*s]; bin[2*l+1] = src[2*s+1]; }\n"
           r k r));
  (match p.tw with
  | Some _ ->
      buf_add b
        (Printf.sprintf
           "    { const double *twp = tw_p%d + 2*it*%d;\n\
           \      for (int l = 0; l < %d; ++l) { double xr = bin[2*l], xi = \
            bin[2*l+1];\n\
           \        bin[2*l] = twp[2*l]*xr - twp[2*l+1]*xi;\n\
           \        bin[2*l+1] = twp[2*l]*xi + twp[2*l+1]*xr; } }\n"
           k r r)
  | None -> ());
  buf_add b (Printf.sprintf "    %s_kernel(bin, bout);\n" kname);
  (match p.addr with
  | Plan.Strided { sl; _ } ->
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long d = sb + (long)l*%d;\n\
           \      dst[2*d] = bout[2*l]; dst[2*d+1] = bout[2*l+1]; }\n"
           r sl)
  | Plan.Indexed _ ->
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long d = sidx_p%d[it*%d + l];\n\
           \      dst[2*d] = bout[2*l]; dst[2*d+1] = bout[2*l+1]; }\n"
           r k r));
  buf_add b "  }\n}\n\n"

(* Vectorized pass: iterations are VL-wide lane blocks ([lo, hi) count
   blocks; call sites divide [count] by VL).  The digit decomposition is
   the scalar one with the lane level's extent divided by VL and its
   stride contribution scaled by VL; the lane offset [v] lives inside
   the vector ops (unit stride on the contiguous side(s)). *)
let emit_vpass b ~backend ~k ~vl ~level ~form (p : Plan.pass) =
  let r = p.radix in
  let kname = p.kernel.Codelet.name in
  match p.addr with
  | Plan.Indexed _ -> assert false
  | Plan.Strided { exts; gstrs; sstrs; g0; s0; gl; sl; _ } ->
      (match p.tw with
      | Some tw ->
          emit_double_table b
            (Printf.sprintf "vtw_p%d" k)
            (lane_major_tw ~vl ~level ~exts ~r tw)
      | None -> ());
      buf_add b
        (Printf.sprintf
           "/* vectorized: %s lane block at loop level %d */\n\
            static void pass%d(const double *restrict src, double *restrict \
            dst, long lo, long hi)\n\
            {\n"
           (match form with
           | Both -> "load+store"
           | GatherV -> "load-side"
           | ScatterV -> "store-side")
           level k);
      (match (backend, p.par) with
      | `OpenMP, Some q ->
          buf_add b
            (Printf.sprintf
               "#pragma omp parallel for num_threads(%d) schedule(static)\n" q)
      | _ -> ());
      buf_add b "  for (long it = lo; it < hi; ++it) {\n";
      let kk = Array.length exts in
      buf_add b (Printf.sprintf "    long gb = %d, sb = %d, rem = it;\n" g0 s0);
      for j = kk - 1 downto 0 do
        let e = if j = level then exts.(j) / vl else exts.(j) in
        let gs = if j = level then vl * gstrs.(j) else gstrs.(j) in
        let ss = if j = level then vl * sstrs.(j) else sstrs.(j) in
        buf_add b
          (Printf.sprintf
             "    { long d = rem %% %d; rem /= %d; gb += d*%dL; sb += d*%dL; }\n"
             e e gs ss)
      done;
      buf_add b (Printf.sprintf "    vd bin[%d], bout[%d];\n" r r);
      (match form with
      | Both | GatherV ->
          buf_add b
            (Printf.sprintf
               "    for (int l = 0; l < %d; ++l) bin[l] = vld(src + 2*(gb + \
                (long)l*%d));\n"
               r gl)
      | ScatterV ->
          buf_add b
            (Printf.sprintf
               "    { double tmpv[%d];\n\
               \      for (int l = 0; l < %d; ++l) {\n\
               \        for (int v = 0; v < %d; ++v) { long s_ = gb + \
                (long)l*%d + (long)v*%d;\n\
               \          tmpv[2*v] = src[2*s_]; tmpv[2*v+1] = src[2*s_+1]; }\n\
               \        bin[l] = vld(tmpv); } }\n"
               (2 * vl) r vl gl gstrs.(level)));
      (match p.tw with
      | Some _ ->
          buf_add b
            (Printf.sprintf
               "    { const double *twp = vtw_p%d + it*%d;\n\
               \      for (int l = 0; l < %d; ++l) bin[l] = vcmul(bin[l], \
                vld(twp + %d*l)); }\n"
               k
               (2 * vl * r)
               r (2 * vl))
      | None -> ());
      buf_add b (Printf.sprintf "    %s_vkernel(bin, bout);\n" kname);
      (match form with
      | Both | ScatterV ->
          buf_add b
            (Printf.sprintf
               "    for (int l = 0; l < %d; ++l) vst(dst + 2*(sb + \
                (long)l*%d), bout[l]);\n"
               r sl)
      | GatherV ->
          buf_add b
            (Printf.sprintf
               "    { double tmpv[%d];\n\
               \      for (int l = 0; l < %d; ++l) {\n\
               \        vst(tmpv, bout[l]);\n\
               \        for (int v = 0; v < %d; ++v) { long d_ = sb + \
                (long)l*%d + (long)v*%d;\n\
               \          dst[2*d_] = tmpv[2*v]; dst[2*d_+1] = tmpv[2*v+1]; } \
                } }\n"
               (2 * vl) r vl sl sstrs.(level)));
      buf_add b "  }\n}\n\n"

let pass_buffers (plan : Plan.t) k =
  let last = Array.length plan.passes - 1 in
  let out j = if j = last then "y" else if j mod 2 = 0 then "ta" else "tb" in
  ((if k = 0 then "x" else out (k - 1)), out k)

let emit_transform_seq_omp b fname (plan : Plan.t) ~counts =
  buf_add b
    (Printf.sprintf
       "void %s(const double *restrict x, double *restrict y, double \
        *restrict ta, double *restrict tb)\n{\n"
       fname);
  Array.iteri
    (fun k (_ : Plan.pass) ->
      let src, dst = pass_buffers plan k in
      buf_add b
        (Printf.sprintf "  pass%d(%s, %s, 0, %d);\n" k src dst counts.(k)))
    plan.passes;
  buf_add b "}\n\n"

let emit_transform_pthreads b fname (plan : Plan.t) ~counts p =
  buf_add b
    (Printf.sprintf
       "/* persistent worker pool with a sense-reversing spin barrier: the\n\
       \   low-overhead backend of the paper */\n\
        #define NWORKERS %d\n\
        static const double *g_x; static double *g_y, *g_ta, *g_tb;\n\
        static volatile int g_reps = 1;\n\
        static volatile int bar_sense = 0;\n\
        static volatile int bar_count = 0;\n\
        static void barrier_wait(int *sense)\n\
        {\n\
       \  *sense = !*sense;\n\
       \  if (__sync_fetch_and_add(&bar_count, 1) == NWORKERS - 1) {\n\
       \    bar_count = 0;\n\
       \    bar_sense = *sense;\n\
       \  } else\n\
       \    while (bar_sense != *sense) ;\n\
        }\n\
        static void range(long count, int w, long *lo, long *hi)\n\
        {\n\
       \  long c = count / NWORKERS, r = count %% NWORKERS;\n\
       \  *lo = w*c + (w < r ? w : r);\n\
       \  *hi = *lo + c + (w < r ? 1 : 0);\n\
        }\n\n"
       p);
  buf_add b "static void run_worker(int w)\n{\n  int sense = 0;\n  long lo, hi;\n";
  buf_add b "  for (int rep = 0; rep < g_reps; ++rep) {\n";
  Array.iteri
    (fun k (pass : Plan.pass) ->
      let src, dst = pass_buffers plan k in
      let src = if src = "x" then "g_x" else "g_" ^ src in
      let dst = if dst = "y" then "g_y" else "g_" ^ dst in
      (match pass.par with
      | Some _ ->
          buf_add b
            (Printf.sprintf "    range(%d, w, &lo, &hi);\n" counts.(k));
          buf_add b (Printf.sprintf "    pass%d(%s, %s, lo, hi);\n" k src dst)
      | None ->
          buf_add b
            (Printf.sprintf "    if (w == 0) pass%d(%s, %s, 0, %d);\n" k src
               dst counts.(k)));
      buf_add b "    barrier_wait(&sense);\n")
    plan.passes;
  buf_add b "  }\n}\n\n";
  buf_add b
    (Printf.sprintf
       "static void *worker_thread(void *arg) { run_worker((int)(long)arg); \
        return 0; }\n\n\
        void %s(const double *x, double *y, double *ta, double *tb)\n\
        {\n\
       \  pthread_t tid[NWORKERS];\n\
       \  g_x = x; g_y = y; g_ta = ta; g_tb = tb;\n\
       \  for (int w = 1; w < NWORKERS; ++w)\n\
       \    pthread_create(&tid[w], 0, worker_thread, (void *)(long)w);\n\
       \  run_worker(0);\n\
       \  for (int w = 1; w < NWORKERS; ++w) pthread_join(tid[w], 0);\n\
        }\n\n"
       fname)

let emit_main b fname n =
  buf_add b
    (Printf.sprintf
       "/* self test against the O(n^2) definition, then a timing loop */\n\
        int main(void)\n\
        {\n\
       \  enum { N = %d };\n\
       \  static double x[2*N], y[2*N], ta[2*N], tb[2*N], ref[2*N];\n\
       \  unsigned s = 123456789u;\n\
       \  for (long i = 0; i < 2*N; ++i) {\n\
       \    s = s*1664525u + 1013904223u;\n\
       \    x[i] = (double)(s >> 8) / (double)(1u << 24) - 0.5;\n\
       \  }\n\
       \  for (long k = 0; k < N; ++k) {\n\
       \    double ar = 0.0, ai = 0.0;\n\
       \    for (long l = 0; l < N; ++l) {\n\
       \      double ph = -2.0*M_PI*(double)((k*l) %% N)/(double)N;\n\
       \      double wr = cos(ph), wi = sin(ph);\n\
       \      ar += wr*x[2*l] - wi*x[2*l+1];\n\
       \      ai += wr*x[2*l+1] + wi*x[2*l];\n\
       \    }\n\
       \    ref[2*k] = ar; ref[2*k+1] = ai;\n\
       \  }\n\
       \  %s(x, y, ta, tb);\n\
       \  double err = 0.0;\n\
       \  for (long i = 0; i < 2*N; ++i) {\n\
       \    double d = fabs(y[i] - ref[i]);\n\
       \    if (d > err) err = d;\n\
       \  }\n\
       \  printf(\"max_abs_err %%.3e\\n\", err);\n\
       \  if (err > 1e-6 * (double)N) { printf(\"FAIL\\n\"); return 1; }\n\
       \  printf(\"PASS\\n\");\n\
       \  return 0;\n\
        }\n"
       n fname)

(* 2-D self test: the plan's output is the row-major 2-D transform of a
   rows x cols matrix, so the reference is the direct O((RC)^2) double
   sum, not the 1-D definition. *)
let emit_main_2d b fname rows cols =
  buf_add b
    (Printf.sprintf
       "/* self test against the O((RC)^2) 2-D definition, then a timing \
        loop */\n\
        int main(void)\n\
        {\n\
       \  enum { R = %d, C = %d, N = %d };\n\
       \  static double x[2*N], y[2*N], ta[2*N], tb[2*N], ref[2*N];\n\
       \  unsigned s = 123456789u;\n\
       \  for (long i = 0; i < 2*N; ++i) {\n\
       \    s = s*1664525u + 1013904223u;\n\
       \    x[i] = (double)(s >> 8) / (double)(1u << 24) - 0.5;\n\
       \  }\n\
       \  for (long k1 = 0; k1 < R; ++k1)\n\
       \    for (long k2 = 0; k2 < C; ++k2) {\n\
       \      double ar = 0.0, ai = 0.0;\n\
       \      for (long l1 = 0; l1 < R; ++l1)\n\
       \        for (long l2 = 0; l2 < C; ++l2) {\n\
       \          double ph = -2.0*M_PI*((double)((k1*l1) %% R)/(double)R\n\
       \                                 + (double)((k2*l2) %% C)/(double)C);\n\
       \          double wr = cos(ph), wi = sin(ph);\n\
       \          long l = l1*C + l2;\n\
       \          ar += wr*x[2*l] - wi*x[2*l+1];\n\
       \          ai += wr*x[2*l+1] + wi*x[2*l];\n\
       \        }\n\
       \      long k = k1*C + k2;\n\
       \      ref[2*k] = ar; ref[2*k+1] = ai;\n\
       \    }\n\
       \  %s(x, y, ta, tb);\n\
       \  double err = 0.0;\n\
       \  for (long i = 0; i < 2*N; ++i) {\n\
       \    double d = fabs(y[i] - ref[i]);\n\
       \    if (d > err) err = d;\n\
       \  }\n\
       \  printf(\"max_abs_err %%.3e\\n\", err);\n\
       \  if (err > 1e-6 * (double)N) { printf(\"FAIL\\n\"); return 1; }\n\
       \  printf(\"PASS\\n\");\n\
       \  return 0;\n\
        }\n"
       rows cols (rows * cols) fname)

let to_c ?backend ?simd ?fname ?dims (plan : Plan.t) =
  if plan.n > max_n then
    invalid_arg
      (Printf.sprintf "C_emit.to_c: n=%d exceeds the emitter limit %d" plan.n
         max_n);
  (match dims with
  | Some (r, c) when r * c <> plan.n ->
      invalid_arg
        (Printf.sprintf "C_emit.to_c: dims %dx%d do not factor n=%d" r c
           plan.n)
  | _ -> ());
  let has_par = Array.exists (fun (p : Plan.pass) -> p.par <> None) plan.passes in
  let backend =
    match backend with
    | Some x -> x
    | None -> if has_par then `OpenMP else `None
  in
  let par_degree =
    Array.fold_left
      (fun acc (p : Plan.pass) ->
        match p.par with Some q -> max acc q | None -> acc)
      1 plan.passes
  in
  (* Per-pass vectorization decision (SIMD mode only): passes that carry
     a vec tag and expose a VL-aligned contiguous lane level vectorize;
     the rest fall back to the scalar emission in the same TU. *)
  let vec =
    match simd with
    | None -> Array.map (fun _ -> None) plan.passes
    | Some isa ->
        let vl = simd_vl isa in
        Array.map (vec_form ~vl) plan.passes
  in
  let vl = match simd with Some isa -> simd_vl isa | None -> 1 in
  let counts =
    Array.mapi
      (fun k (p : Plan.pass) ->
        match vec.(k) with Some _ -> p.count / vl | None -> p.count)
      plan.passes
  in
  let fname =
    match (fname, dims) with
    | Some f, _ -> f
    | None, Some (r, c) -> Printf.sprintf "dft2d_%dx%d" r c
    | None, None -> Printf.sprintf "dft_%d" plan.n
  in
  let b = Buffer.create (1 lsl 16) in
  buf_add b
    (Printf.sprintf
       "/* Generated by spiral-smp (OCaml reproduction of Franchetti et al.,\n\
       \   \"FFT Program Generation for Shared Memory: SMP and Multicore\",\n\
       \   SC 2006).  %s, %d pass(es), backend: %s%s. */\n\
        #include <stdio.h>\n\
        #include <math.h>\n"
       (match dims with
       | Some (r, c) ->
           Printf.sprintf "Row-major 2-D DFT of size %dx%d (%d points)" r c
             plan.n
       | None -> Printf.sprintf "DFT of size %d" plan.n)
       (Array.length plan.passes)
       (match backend with
       | `OpenMP -> "OpenMP"
       | `Pthreads -> "pthreads"
       | `None -> "sequential")
       (match simd with
       | Some isa ->
           Printf.sprintf " + %s SIMD (%d vectorized pass(es) of %d)"
             (simd_label isa)
             (Array.fold_left
                (fun a v -> if v <> None then a + 1 else a)
                0 vec)
             (Array.length plan.passes)
       | None -> ""));
  (match backend with
  | `Pthreads -> buf_add b "#include <pthread.h>\n"
  | `OpenMP | `None -> ());
  (match simd with
  | Some isa -> buf_add b (simd_include isa)
  | None -> ());
  buf_add b "#ifndef M_PI\n#define M_PI 3.14159265358979323846\n#endif\n\n";
  (match simd with
  | Some isa ->
      buf_add b (simd_prelude isa);
      buf_add b simd_helpers
  | None -> ());
  (* Scalar kernels for scalar passes; vector kernels (plus the dense
     matrix they may need) for vectorized ones.  De-duplicated per form. *)
  let seen_scalar = Hashtbl.create 8
  and seen_vec = Hashtbl.create 8
  and seen_mat = Hashtbl.create 8 in
  Array.iteri
    (fun k (p : Plan.pass) ->
      let name = p.kernel.Codelet.name in
      match vec.(k) with
      | None ->
          if not (Hashtbl.mem seen_scalar name) then begin
            Hashtbl.add seen_scalar name ();
            let with_mat = not (Hashtbl.mem seen_mat name) in
            if kernel_matrix name p.radix <> None then
              Hashtbl.add seen_mat name ();
            emit_kernel ~with_mat b name p.radix
          end
      | Some _ ->
          if not (Hashtbl.mem seen_vec name) then begin
            Hashtbl.add seen_vec name ();
            if
              (not (List.mem_assoc name unrolled_vkernels))
              && not (Hashtbl.mem seen_mat name)
            then (
              match kernel_matrix name p.radix with
              | Some mat ->
                  Hashtbl.add seen_mat name ();
                  emit_mat_table b name mat p.radix
              | None -> ());
            emit_vkernel b name p.radix
          end)
    plan.passes;
  Array.iteri
    (fun k p ->
      match vec.(k) with
      | Some (level, form) -> emit_vpass b ~backend ~k ~vl ~level ~form p
      | None -> emit_pass b ~backend ~k p)
    plan.passes;
  (match backend with
  | `Pthreads -> emit_transform_pthreads b fname plan ~counts par_degree
  | `OpenMP | `None -> emit_transform_seq_omp b fname plan ~counts);
  (match dims with
  | Some (r, c) -> emit_main_2d b fname r c
  | None -> emit_main b fname plan.n);
  Buffer.contents b
