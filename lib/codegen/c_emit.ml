open Spiral_util

let max_n = 1 lsl 14

let buf_add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* Codelet kernel bodies: contiguous local in/out of 2r doubles.       *)

let kernel_decl name =
  Printf.sprintf "static void %s_kernel(const double *in, double *out)" name

let unrolled_kernels =
  [
    ( "dft1",
      "{\n  out[0] = in[0]; out[1] = in[1];\n}" );
    ( "dft2",
      "{\n\
      \  out[0] = in[0] + in[2]; out[1] = in[1] + in[3];\n\
      \  out[2] = in[0] - in[2]; out[3] = in[1] - in[3];\n\
       }" );
    ( "dft3",
      "{\n\
      \  const double s3 = 0.86602540378443864676;\n\
      \  double tr = in[2] + in[4], ti = in[3] + in[5];\n\
      \  double ur = in[2] - in[4], ui = in[3] - in[5];\n\
      \  double ar = in[0] - 0.5*tr, ai = in[1] - 0.5*ti;\n\
      \  double br = s3*ur, bi = s3*ui;\n\
      \  out[0] = in[0] + tr; out[1] = in[1] + ti;\n\
      \  out[2] = ar + bi;    out[3] = ai - br;\n\
      \  out[4] = ar - bi;    out[5] = ai + br;\n\
       }" );
    ( "dft4",
      "{\n\
      \  double t0r = in[0] + in[4], t0i = in[1] + in[5];\n\
      \  double t1r = in[0] - in[4], t1i = in[1] - in[5];\n\
      \  double t2r = in[2] + in[6], t2i = in[3] + in[7];\n\
      \  double t3r = in[2] - in[6], t3i = in[3] - in[7];\n\
      \  out[0] = t0r + t2r; out[1] = t0i + t2i;\n\
      \  out[4] = t0r - t2r; out[5] = t0i - t2i;\n\
      \  out[2] = t1r + t3i; out[3] = t1i - t3r;\n\
      \  out[6] = t1r - t3i; out[7] = t1i + t3r;\n\
       }" );
    ( "dft8",
      "{\n\
      \  const double s = 0.70710678118654752440;\n\
      \  double t0r = in[0] + in[8],  t0i = in[1] + in[9];\n\
      \  double t1r = in[0] - in[8],  t1i = in[1] - in[9];\n\
      \  double t2r = in[4] + in[12], t2i = in[5] + in[13];\n\
      \  double t3r = in[4] - in[12], t3i = in[5] - in[13];\n\
      \  double e0r = t0r + t2r, e0i = t0i + t2i;\n\
      \  double e2r = t0r - t2r, e2i = t0i - t2i;\n\
      \  double e1r = t1r + t3i, e1i = t1i - t3r;\n\
      \  double e3r = t1r - t3i, e3i = t1i + t3r;\n\
      \  double u0r = in[2] + in[10],  u0i = in[3] + in[11];\n\
      \  double u1r = in[2] - in[10],  u1i = in[3] - in[11];\n\
      \  double u2r = in[6] + in[14],  u2i = in[7] + in[15];\n\
      \  double u3r = in[6] - in[14],  u3i = in[7] - in[15];\n\
      \  double f0r = u0r + u2r, f0i = u0i + u2i;\n\
      \  double f2r = u0r - u2r, f2i = u0i - u2i;\n\
      \  double f1r = u1r + u3i, f1i = u1i - u3r;\n\
      \  double f3r = u1r - u3i, f3i = u1i + u3r;\n\
      \  out[0]  = e0r + f0r; out[1]  = e0i + f0i;\n\
      \  out[8]  = e0r - f0r; out[9]  = e0i - f0i;\n\
      \  double w1r = s*(f1r + f1i), w1i = s*(f1i - f1r);\n\
      \  out[2]  = e1r + w1r; out[3]  = e1i + w1i;\n\
      \  out[10] = e1r - w1r; out[11] = e1i - w1i;\n\
      \  out[4]  = e2r + f2i; out[5]  = e2i - f2r;\n\
      \  out[12] = e2r - f2i; out[13] = e2i + f2r;\n\
      \  double w3r = s*(f3i - f3r), w3i = -s*(f3r + f3i);\n\
      \  out[6]  = e3r + w3r; out[7]  = e3i + w3i;\n\
      \  out[14] = e3r - w3r; out[15] = e3i - w3i;\n\
       }" );
  ]

(* The dense matrix for generic codelets ("dftN_generic", "whtN"). *)
let kernel_matrix name radix =
  if String.length name >= 3 && String.sub name 0 3 = "wht" then
    let rec wht n =
      if n = 1 then [| [| Complex.one |] |]
      else
        let s = wht (n / 2) in
        Cmatrix.kronecker
          [| [| Complex.one; Complex.one |];
             [| Complex.one; { Complex.re = -1.0; im = 0.0 } |] |]
          s
    in
    Some (wht radix)
  else if String.length name >= 4 && String.sub name 0 4 = "copy" then None
  else
    (* generic dft *)
    Some (Cmatrix.init radix radix (fun k l -> Twiddle.omega_pow ~n:radix ~k ~l))

let emit_generic_kernel b name radix =
  match kernel_matrix name radix with
  | None ->
      buf_add b
        (Printf.sprintf
           "%s {\n  for (int l = 0; l < %d; ++l) { out[2*l] = in[2*l]; \
            out[2*l+1] = in[2*l+1]; }\n}\n\n"
           (kernel_decl name) radix)
  | Some mat ->
      buf_add b
        (Printf.sprintf "static const double mat_%s[%d] = {\n" name
           (2 * radix * radix));
      for k = 0 to radix - 1 do
        buf_add b "  ";
        for l = 0 to radix - 1 do
          let (z : Complex.t) = mat.(k).(l) in
          buf_add b (Printf.sprintf "%.17g, %.17g, " z.re z.im)
        done;
        buf_add b "\n"
      done;
      buf_add b "};\n";
      buf_add b
        (Printf.sprintf
           "%s {\n\
           \  for (int k = 0; k < %d; ++k) {\n\
           \    double ar = 0.0, ai = 0.0;\n\
           \    for (int l = 0; l < %d; ++l) {\n\
           \      double wr = mat_%s[2*(k*%d + l)], wi = mat_%s[2*(k*%d + l)+1];\n\
           \      ar += wr*in[2*l] - wi*in[2*l+1];\n\
           \      ai += wr*in[2*l+1] + wi*in[2*l];\n\
           \    }\n\
           \    out[2*k] = ar; out[2*k+1] = ai;\n\
           \  }\n\
            }\n\n"
           (kernel_decl name) radix radix name radix name radix)

let emit_kernel b name radix =
  match List.assoc_opt name unrolled_kernels with
  | Some body -> buf_add b (Printf.sprintf "%s %s\n\n" (kernel_decl name) body)
  | None -> emit_generic_kernel b name radix

(* ------------------------------------------------------------------ *)

let emit_double_table b name (a : float array) =
  buf_add b (Printf.sprintf "static const double %s[%d] = {\n" name (Array.length a));
  Array.iteri
    (fun i v ->
      buf_add b (Printf.sprintf "%.17g,%s" v (if i mod 4 = 3 then "\n" else " ")))
    a;
  buf_add b "};\n"

let emit_int_table b name (a : int array) =
  buf_add b (Printf.sprintf "static const int %s[%d] = {\n" name (Array.length a));
  Array.iteri
    (fun i v ->
      buf_add b (Printf.sprintf "%d,%s" v (if i mod 16 = 15 then "\n" else "")))
    a;
  buf_add b "};\n"

(* Flattened pass function over iterations [lo, hi). *)
let emit_pass b ~backend ~k (p : Plan.pass) =
  let r = p.radix in
  let kname = p.kernel.Codelet.name in
  (match p.addr with
  | Plan.Indexed { gidx; sidx } ->
      emit_int_table b (Printf.sprintf "gidx_p%d" k) gidx;
      emit_int_table b (Printf.sprintf "sidx_p%d" k) sidx
  | Plan.Strided _ -> ());
  (match p.tw with
  | Some tw -> emit_double_table b (Printf.sprintf "tw_p%d" k) tw
  | None -> ());
  buf_add b
    (Printf.sprintf
       "static void pass%d(const double *restrict src, double *restrict dst, \
        long lo, long hi)\n{\n"
       k);
  let omp_pragma =
    match (backend, p.par) with
    | `OpenMP, Some q ->
        Printf.sprintf "#pragma omp parallel for num_threads(%d) schedule(static)\n" q
    | _ -> ""
  in
  buf_add b omp_pragma;
  buf_add b "  for (long it = lo; it < hi; ++it) {\n";
  (* per-iteration bases *)
  (match p.addr with
  | Plan.Strided { exts; gstrs; sstrs; g0; s0; gl; _ } ->
      let kk = Array.length exts in
      buf_add b
        (Printf.sprintf "    long gb = %d, sb = %d, rem = it;\n" g0 s0);
      for j = kk - 1 downto 0 do
        buf_add b
          (Printf.sprintf
             "    { long d = rem %% %d; rem /= %d; gb += d*%dL; sb += d*%dL; }\n"
             exts.(j) exts.(j) gstrs.(j) sstrs.(j));
      done;
      buf_add b (Printf.sprintf "    double bin[%d], bout[%d];\n" (2 * r) (2 * r));
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long s = gb + (long)l*%d;\n\
           \      bin[2*l] = src[2*s]; bin[2*l+1] = src[2*s+1]; }\n"
           r gl)
  | Plan.Indexed _ ->
      buf_add b (Printf.sprintf "    double bin[%d], bout[%d];\n" (2 * r) (2 * r));
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long s = gidx_p%d[it*%d + l];\n\
           \      bin[2*l] = src[2*s]; bin[2*l+1] = src[2*s+1]; }\n"
           r k r));
  (match p.tw with
  | Some _ ->
      buf_add b
        (Printf.sprintf
           "    { const double *twp = tw_p%d + 2*it*%d;\n\
           \      for (int l = 0; l < %d; ++l) { double xr = bin[2*l], xi = \
            bin[2*l+1];\n\
           \        bin[2*l] = twp[2*l]*xr - twp[2*l+1]*xi;\n\
           \        bin[2*l+1] = twp[2*l]*xi + twp[2*l+1]*xr; } }\n"
           k r r)
  | None -> ());
  buf_add b (Printf.sprintf "    %s_kernel(bin, bout);\n" kname);
  (match p.addr with
  | Plan.Strided { sl; _ } ->
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long d = sb + (long)l*%d;\n\
           \      dst[2*d] = bout[2*l]; dst[2*d+1] = bout[2*l+1]; }\n"
           r sl)
  | Plan.Indexed _ ->
      buf_add b
        (Printf.sprintf
           "    for (int l = 0; l < %d; ++l) { long d = sidx_p%d[it*%d + l];\n\
           \      dst[2*d] = bout[2*l]; dst[2*d+1] = bout[2*l+1]; }\n"
           r k r));
  buf_add b "  }\n}\n\n"

let pass_buffers (plan : Plan.t) k =
  let last = Array.length plan.passes - 1 in
  let out j = if j = last then "y" else if j mod 2 = 0 then "ta" else "tb" in
  ((if k = 0 then "x" else out (k - 1)), out k)

let emit_transform_seq_omp b fname (plan : Plan.t) =
  buf_add b
    (Printf.sprintf
       "void %s(const double *restrict x, double *restrict y, double \
        *restrict ta, double *restrict tb)\n{\n"
       fname);
  Array.iteri
    (fun k (p : Plan.pass) ->
      let src, dst = pass_buffers plan k in
      buf_add b (Printf.sprintf "  pass%d(%s, %s, 0, %d);\n" k src dst p.count))
    plan.passes;
  buf_add b "}\n\n"

let emit_transform_pthreads b fname (plan : Plan.t) p =
  buf_add b
    (Printf.sprintf
       "/* persistent worker pool with a sense-reversing spin barrier: the\n\
       \   low-overhead backend of the paper */\n\
        #define NWORKERS %d\n\
        static const double *g_x; static double *g_y, *g_ta, *g_tb;\n\
        static volatile int g_reps = 1;\n\
        static volatile int bar_sense = 0;\n\
        static volatile int bar_count = 0;\n\
        static void barrier_wait(int *sense)\n\
        {\n\
       \  *sense = !*sense;\n\
       \  if (__sync_fetch_and_add(&bar_count, 1) == NWORKERS - 1) {\n\
       \    bar_count = 0;\n\
       \    bar_sense = *sense;\n\
       \  } else\n\
       \    while (bar_sense != *sense) ;\n\
        }\n\
        static void range(long count, int w, long *lo, long *hi)\n\
        {\n\
       \  long c = count / NWORKERS, r = count %% NWORKERS;\n\
       \  *lo = w*c + (w < r ? w : r);\n\
       \  *hi = *lo + c + (w < r ? 1 : 0);\n\
        }\n\n"
       p);
  buf_add b "static void run_worker(int w)\n{\n  int sense = 0;\n  long lo, hi;\n";
  buf_add b "  for (int rep = 0; rep < g_reps; ++rep) {\n";
  Array.iteri
    (fun k (pass : Plan.pass) ->
      let src, dst = pass_buffers plan k in
      let src = if src = "x" then "g_x" else "g_" ^ src in
      let dst = if dst = "y" then "g_y" else "g_" ^ dst in
      (match pass.par with
      | Some _ ->
          buf_add b (Printf.sprintf "    range(%d, w, &lo, &hi);\n" pass.count);
          buf_add b (Printf.sprintf "    pass%d(%s, %s, lo, hi);\n" k src dst)
      | None ->
          buf_add b
            (Printf.sprintf "    if (w == 0) pass%d(%s, %s, 0, %d);\n" k src
               dst pass.count));
      buf_add b "    barrier_wait(&sense);\n")
    plan.passes;
  buf_add b "  }\n}\n\n";
  buf_add b
    (Printf.sprintf
       "static void *worker_thread(void *arg) { run_worker((int)(long)arg); \
        return 0; }\n\n\
        void %s(const double *x, double *y, double *ta, double *tb)\n\
        {\n\
       \  pthread_t tid[NWORKERS];\n\
       \  g_x = x; g_y = y; g_ta = ta; g_tb = tb;\n\
       \  for (int w = 1; w < NWORKERS; ++w)\n\
       \    pthread_create(&tid[w], 0, worker_thread, (void *)(long)w);\n\
       \  run_worker(0);\n\
       \  for (int w = 1; w < NWORKERS; ++w) pthread_join(tid[w], 0);\n\
        }\n\n"
       fname)

let emit_main b fname n =
  buf_add b
    (Printf.sprintf
       "/* self test against the O(n^2) definition, then a timing loop */\n\
        int main(void)\n\
        {\n\
       \  enum { N = %d };\n\
       \  static double x[2*N], y[2*N], ta[2*N], tb[2*N], ref[2*N];\n\
       \  unsigned s = 123456789u;\n\
       \  for (long i = 0; i < 2*N; ++i) {\n\
       \    s = s*1664525u + 1013904223u;\n\
       \    x[i] = (double)(s >> 8) / (double)(1u << 24) - 0.5;\n\
       \  }\n\
       \  for (long k = 0; k < N; ++k) {\n\
       \    double ar = 0.0, ai = 0.0;\n\
       \    for (long l = 0; l < N; ++l) {\n\
       \      double ph = -2.0*M_PI*(double)((k*l) %% N)/(double)N;\n\
       \      double wr = cos(ph), wi = sin(ph);\n\
       \      ar += wr*x[2*l] - wi*x[2*l+1];\n\
       \      ai += wr*x[2*l+1] + wi*x[2*l];\n\
       \    }\n\
       \    ref[2*k] = ar; ref[2*k+1] = ai;\n\
       \  }\n\
       \  %s(x, y, ta, tb);\n\
       \  double err = 0.0;\n\
       \  for (long i = 0; i < 2*N; ++i) {\n\
       \    double d = fabs(y[i] - ref[i]);\n\
       \    if (d > err) err = d;\n\
       \  }\n\
       \  printf(\"max_abs_err %%.3e\\n\", err);\n\
       \  if (err > 1e-6 * (double)N) { printf(\"FAIL\\n\"); return 1; }\n\
       \  printf(\"PASS\\n\");\n\
       \  return 0;\n\
        }\n"
       n fname)

let to_c ?backend ?fname (plan : Plan.t) =
  if plan.n > max_n then
    invalid_arg
      (Printf.sprintf "C_emit.to_c: n=%d exceeds the emitter limit %d" plan.n
         max_n);
  let has_par = Array.exists (fun (p : Plan.pass) -> p.par <> None) plan.passes in
  let backend =
    match backend with
    | Some x -> x
    | None -> if has_par then `OpenMP else `None
  in
  let par_degree =
    Array.fold_left
      (fun acc (p : Plan.pass) ->
        match p.par with Some q -> max acc q | None -> acc)
      1 plan.passes
  in
  let fname = match fname with Some f -> f | None -> Printf.sprintf "dft_%d" plan.n in
  let b = Buffer.create (1 lsl 16) in
  buf_add b
    (Printf.sprintf
       "/* Generated by spiral-smp (OCaml reproduction of Franchetti et al.,\n\
       \   \"FFT Program Generation for Shared Memory: SMP and Multicore\",\n\
       \   SC 2006).  DFT of size %d, %d pass(es), backend: %s. */\n\
        #include <stdio.h>\n\
        #include <math.h>\n"
       plan.n (Array.length plan.passes)
       (match backend with
       | `OpenMP -> "OpenMP"
       | `Pthreads -> "pthreads"
       | `None -> "sequential"));
  (match backend with
  | `Pthreads -> buf_add b "#include <pthread.h>\n"
  | `OpenMP | `None -> ());
  buf_add b "#ifndef M_PI\n#define M_PI 3.14159265358979323846\n#endif\n\n";
  (* kernels, de-duplicated *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun (p : Plan.pass) ->
      let name = p.kernel.Codelet.name in
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        emit_kernel b name p.radix
      end)
    plan.passes;
  Array.iteri (fun k p -> emit_pass b ~backend ~k p) plan.passes;
  (match backend with
  | `Pthreads -> emit_transform_pthreads b fname plan par_degree
  | `OpenMP | `None -> emit_transform_seq_omp b fname plan);
  emit_main b fname plan.n;
  Buffer.contents b
